# Convenience wrappers around dune.  `make check` is the tier-1 gate:
# full build, test suite, and static verification of the example
# kernels (examples/kernels/dune).

.PHONY: all build test check bench-json clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build @check

# Solver-core benchmark: full-Cholesky analyze + legality + completion +
# codegen + verify under (cache off/on) x (jobs 1/4); writes
# BENCH_solver.json with per-config wall time, solver calls, cache hit
# rate and the baseline-vs-best speedup.  Fails if any configuration's
# rendered output differs by a byte from the sequential uncached run.
bench-json:
	dune build bench/bench_solver.exe
	./_build/default/bench/bench_solver.exe -o BENCH_solver.json
	cat BENCH_solver.json

clean:
	dune clean
