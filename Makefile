# Convenience wrappers around dune.  `make check` is the tier-1 gate:
# full build, test suite, and static verification of the example
# kernels (examples/kernels/dune).

.PHONY: all build test check fuzz-smoke search-smoke reuse-smoke bench-json perf-guard corpus-smoke corpus-bench corpus-guard exec-smoke exec-bench exec-guard clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build @check

# Deterministic differential-fuzzing smoke run (the same campaign the
# test/fuzz.t cram test pins down): fixed seed, 50 cases, per-case
# watchdog; findings are shrunk and quarantined under corpus/ and the
# summary line is persisted as corpus/summary.  Exits nonzero if the
# three judges (legality, static validation, interpreter) disagree on
# any case.
fuzz-smoke:
	dune build bin/inltool.exe
	rm -rf corpus
	./_build/default/bin/inltool.exe fuzz --seed 42 --cases 50 --timeout-ms 5000 --corpus corpus

# Serve-daemon acceptance drill (the same one the dune runtest rule
# runs): a 56-request mixed batch including malformed JSON, injected
# solver blowups, a hung request under a deadline and an oversized
# line; then a SIGKILL mid-session and a restart that must come up warm
# from the killed daemon's crash-safe snapshot.
serve-smoke:
	dune build bin/inltool.exe
	sh test/serve_smoke.sh ./_build/default/bin/inltool.exe

# Autotuner smoke run (the same tiny fixed-seed search the dune runtest
# rule and the test/search.t cram test pin down): exits nonzero if the
# winner recipe drifts or jobs=1 and jobs=2 outputs differ by a byte.
search-smoke:
	dune build bench/bench_search.exe
	./_build/default/bench/bench_search.exe --smoke --jobs 2

# Static reuse-analysis smoke (the same drill the dune runtest rule
# runs): `inltool analyze --reuse` on the paper's kji Cholesky must
# report the pinned findings (U101/U102), scores, and typed degradation
# codes (U901 singular, U902 budget), byte-reproducibly.
reuse-smoke:
	dune build bin/inltool.exe
	sh test/reuse_smoke.sh ./_build/default/bin/inltool.exe

# Solver-core benchmark: full-Cholesky analyze + legality + completion +
# codegen + verify under (cache off/on) x (jobs 1/4); writes
# BENCH_solver.json with per-config wall time, solver calls, cache hit
# rate and the baseline-vs-best speedup.  Fails if any configuration's
# rendered output differs by a byte from the sequential uncached run.
# Then the autotuner benchmark: a default-budget `Search.optimize` on
# kji Cholesky at jobs 1 vs 4; writes BENCH_search.json with wall time,
# candidates/sec, the winner recipe and its simulated miss count.
bench-json:
	dune build bench/bench_solver.exe bench/bench_search.exe
	./_build/default/bench/bench_solver.exe -o BENCH_solver.json
	cat BENCH_solver.json
	./_build/default/bench/bench_search.exe -o BENCH_search.json
	cat BENCH_search.json

# Perf regression guard (also the opt-in `dune build @perf-guard`
# alias): re-runs the default autotuner workload and exits nonzero if
# candidates/sec drops below 50% of the committed BENCH_search.json, or
# if the pinned winner recipe / simulated miss count changes.
perf-guard:
	dune build bench/bench_search.exe
	./_build/default/bench/bench_search.exe --guard BENCH_search.json -o /dev/null

# Execution-runtime smoke (the same drill the dune runtest rule runs):
# every workload row's outcome label — plan and differential verdict,
# never wall time — is pinned, with all timings masked in the report.
exec-smoke:
	dune build bench/bench_exec.exe
	./_build/default/bench/bench_exec.exe --smoke --jobs 2

# Regenerate BENCH_exec.json: real (domain-parallel) execution of the
# workload kernels, sequential vs parallel wall clock min-of-N, with
# the honest core count next to the requested worker count.  On a
# single-core box the parallel rows are a determinism check, not a
# speedup claim.
exec-bench:
	dune build bench/bench_exec.exe
	./_build/default/bench/bench_exec.exe -o BENCH_exec.json
	cat BENCH_exec.json

# Execution drift guard (also the opt-in `dune build @exec-guard`
# alias): re-runs the workload and exits nonzero if any row's outcome
# label, plan or DOALL count drifts from the committed BENCH_exec.json;
# wall-clock fields are never compared.
exec-guard:
	dune build bench/bench_exec.exe
	./_build/default/bench/bench_exec.exe --guard BENCH_exec.json -o /dev/null

# Corpus-runner acceptance drill (the same one the dune runtest rule
# runs): a 4-kernel mini-manifest with a poisoned kernel that must be
# quarantined, a SIGINT drill (exit 130, checkpoint flushed) and a
# SIGKILL drill, both resumed to a report byte-identical to the
# uninterrupted reference.
corpus-smoke:
	dune build bin/inltool.exe
	sh test/corpus_smoke.sh ./_build/default/bin/inltool.exe

# Regenerate BENCH_corpus.json from the committed manifest.  The
# manifest deliberately includes one poisoned kernel (injected hang
# under a tight deadline) so every run exercises the retry ladder and
# the quarantine path — the runner therefore exits 1, which is the
# expected outcome, not a failure of the target.
corpus-bench:
	dune build bin/inltool.exe
	-./_build/default/bin/inltool.exe corpus examples/kernels/corpus.manifest -o BENCH_corpus.json
	cat BENCH_corpus.json

# Corpus drift guard (also the opt-in `dune build @corpus-guard`
# alias): re-runs the committed manifest fresh and untimed, and exits
# nonzero if any kernel's status, winner recipe, miss counts or
# degradation tags drift from the committed BENCH_corpus.json.
corpus-guard:
	dune build @corpus-guard

clean:
	dune clean
