# Convenience wrappers around dune.  `make check` is the tier-1 gate:
# full build, test suite, and static verification of the example
# kernels (examples/kernels/dune).

.PHONY: all build test check fuzz-smoke bench-json clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build @check

# Deterministic differential-fuzzing smoke run (the same campaign the
# test/fuzz.t cram test pins down): fixed seed, 50 cases, per-case
# watchdog; findings are shrunk and quarantined under corpus/ and the
# summary line is persisted as corpus/summary.  Exits nonzero if the
# three judges (legality, static validation, interpreter) disagree on
# any case.
fuzz-smoke:
	dune build bin/inltool.exe
	rm -rf corpus
	./_build/default/bin/inltool.exe fuzz --seed 42 --cases 50 --timeout-ms 5000 --corpus corpus

# Solver-core benchmark: full-Cholesky analyze + legality + completion +
# codegen + verify under (cache off/on) x (jobs 1/4); writes
# BENCH_solver.json with per-config wall time, solver calls, cache hit
# rate and the baseline-vs-best speedup.  Fails if any configuration's
# rendered output differs by a byte from the sequential uncached run.
bench-json:
	dune build bench/bench_solver.exe
	./_build/default/bench/bench_solver.exe -o BENCH_solver.json
	cat BENCH_solver.json

clean:
	dune clean
