# Convenience wrappers around dune.  `make check` is the tier-1 gate:
# full build, test suite, and static verification of the example
# kernels (examples/kernels/dune).

.PHONY: all build test check clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build @check

clean:
	dune clean
