(* inltool — command-line driver for the imperfectly-nested-loop
   transformation framework.

     inltool show FILE            parse, validate, pretty-print + layout
     inltool deps FILE            dependence matrix (Section 3)
     inltool apply FILE OPTS      apply a transformation pipeline
     inltool complete FILE --row  complete a partial transformation
     inltool run FILE -N n        interpret and dump the final store

   Transformations compose left to right:
     inltool apply chol.loop --reorder 0:1,0 --interchange I,J --verify 6

   Failure contract: diagnostics go to stderr as "severity[CODE] phase:
   message" lines; the exit code is 0 (clean), 1 (error), or 2 (the
   analysis degraded to approximate dependences but the command still
   succeeded).  Resource budgets and fault injection are controlled by
   --budget / INL_FM_BUDGET and --inject-faults / INL_FAULTS. *)

module Interp = Inl_interp.Interp
module Diag = Inl.Diag
module Budget = Inl.Budget
module Faults = Inl.Faults
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let print_diags ds = List.iter (fun d -> prerr_endline (Diag.to_string d)) ds

let load path = Inl.analyze_source_result (read_file path)

(* ---- common arguments: resource budget and fault injection ---- *)

let budget_arg =
  let env =
    Cmd.Env.info "INL_FM_BUDGET"
      ~doc:"Default for the $(b,--budget) option: Fourier-Motzkin work budget per projection."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"N" ~env
        ~doc:
          "Fourier-Motzkin work budget: items processed per Omega projection (default \
           $(b,500000)).  A projection that exhausts the budget degrades to a conservative \
           approximate dependence instead of aborting; the command then exits with code 2.")

let faults_arg =
  let env =
    Cmd.Env.info "INL_FAULTS" ~doc:"Default for the $(b,--inject-faults) option."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-faults" ] ~docv:"SPEC" ~env
        ~doc:
          "Fault-injection spec for robustness testing: comma-separated $(b,key=value) pairs \
           among $(b,every=N) (fail every Nth projection), $(b,after=N) (fail all projections \
           after the Nth) and $(b,cap=K) (cap the work budget at K items); $(b,off) disables.")

(* Install budget + fault configuration; an unparsable fault spec is a
   driver error. *)
let setup budget faults : (unit, Diag.t list) result =
  (match budget with
  | None -> Inl.Omega.set_default_budget Budget.default
  | Some n -> Inl.Omega.set_default_budget (Budget.with_fm_work Budget.default n));
  match faults with
  | None ->
      Faults.install Faults.none;
      Ok ()
  | Some spec -> (
      match Faults.parse spec with
      | Ok f ->
          Faults.install f;
          Ok ()
      | Error msg -> Error [ Diag.error ~code:"D701" ~phase:Diag.Driver msg ])

let setup_term = Term.(const setup $ budget_arg $ faults_arg)

(* Shared driver scaffold: run [f ctx] after setup + load, merging exit
   codes (errors dominate, then degradation). *)
let with_context common file (f : Inl.context -> int) : int =
  match common with
  | Error ds ->
      print_diags ds;
      1
  | Ok () -> (
      match load file with
      | Error ds ->
          print_diags ds;
          1
      | Ok ctx ->
          let code = f ctx in
          if code = 0 then Diag.exit_code ctx.Inl.diags else code)

let file_arg = Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"FILE")

let nparam =
  Arg.(value & opt int 6 & info [ "N"; "size" ] ~docv:"N" ~doc:"Value for the size parameter N.")

(* ---- show ---- *)

let show_cmd =
  let run common file =
    with_context common file (fun ctx ->
        Format.printf "%s@." (Inl.Pp.program_to_string ctx.Inl.program);
        Format.printf "@.instance-vector positions:@.%a@." Inl.Layout.pp_positions ctx.Inl.layout;
        List.iter
          (fun (si : Inl.Layout.stmt_info) ->
            Format.printf "%s: loops=[%s] padded positions=[%s]@." si.Inl.Layout.label
              (String.concat ";"
                 (List.map (fun (_, (l : Inl.Ast.loop)) -> l.Inl.Ast.var) si.Inl.Layout.loops))
              (String.concat ";" (List.map string_of_int si.Inl.Layout.padded_pos)))
          ctx.Inl.layout.Inl.Layout.stmts;
        0)
  in
  Cmd.v (Cmd.info "show" ~doc:"Parse a program and print its instance-vector layout.")
    Term.(const run $ setup_term $ file_arg)

(* ---- deps ---- *)

let deps_cmd =
  let run common file =
    with_context common file (fun ctx ->
        Format.printf "%a@." Inl.Dep.pp_matrix ctx.Inl.deps;
        List.iter (fun d -> Format.printf "%a@." Inl.Dep.pp d) ctx.Inl.deps;
        print_diags ctx.Inl.diags;
        0)
  in
  Cmd.v
    (Cmd.info "deps"
       ~doc:
         "Print the dependence matrix (Section 3).  Exits with code 2 when any dependence is \
          approximate (analysis budget exhausted or fault injected).")
    Term.(const run $ setup_term $ file_arg)

(* ---- apply ---- *)

exception Bad_step of string

let parse_step kind spec : Inl.Pipeline.step =
  let parts = String.split_on_char ',' spec in
  let fail () = raise (Bad_step (Printf.sprintf "bad --%s argument %S" kind spec)) in
  match (kind, parts) with
  | "interchange", [ a; b ] -> Inl.Pipeline.Interchange (a, b)
  | "reverse", [ v ] -> Inl.Pipeline.Reverse v
  | "scale", [ v; k ] -> (
      match int_of_string_opt k with Some k -> Inl.Pipeline.Scale (v, k) | None -> fail ())
  | "skew", [ t; s; f ] -> (
      match int_of_string_opt f with
      | Some f -> Inl.Pipeline.Skew { target = t; source = s; factor = f }
      | None -> fail ())
  | "align", [ s; l; k ] -> (
      match int_of_string_opt k with
      | Some k -> Inl.Pipeline.Align { stmt = s; loop = l; amount = k }
      | None -> fail ())
  | "reorder", _ -> (
      (* path:perm, e.g. 0:1,0  — children of node [0] permuted *)
      match String.index_opt spec ':' with
      | None -> fail ()
      | Some i -> (
          try
            let path =
              String.sub spec 0 i |> String.split_on_char '.'
              |> List.filter (fun s -> s <> "")
              |> List.map int_of_string
            in
            let perm =
              String.sub spec (i + 1) (String.length spec - i - 1)
              |> String.split_on_char ',' |> List.map int_of_string
            in
            Inl.Pipeline.Reorder { parent = path; perm }
          with Failure _ -> fail ()))
  | _ -> fail ()

let list_opt name doc = Arg.(value & opt_all string [] & info [ name ] ~docv:"SPEC" ~doc)

let apply_cmd =
  let run common file interchanges reverses scales skews aligns reorders no_simplify verify =
    with_context common file (fun ctx ->
        match
          List.map (parse_step "interchange") interchanges
          @ List.map (parse_step "reverse") reverses
          @ List.map (parse_step "scale") scales
          @ List.map (parse_step "skew") skews
          @ List.map (parse_step "align") aligns
          @ List.map (parse_step "reorder") reorders
        with
        | exception Bad_step msg ->
            print_diags [ Diag.error ~code:"D702" ~phase:Diag.Driver msg ];
            1
        | [] ->
            print_diags
              [ Diag.error ~code:"D703" ~phase:Diag.Driver "no transformation steps given" ];
            1
        | steps -> (
            match Inl.pipeline ctx steps with
            | Error ds ->
                print_diags (ctx.Inl.diags @ ds);
                1
            | Ok total -> (
                Format.printf "transformation matrix:@.%a@.@." Inl.Mat.pp total;
                match Inl.transform ctx ~simplify:(not no_simplify) total with
                | Error ds ->
                    print_diags (ctx.Inl.diags @ ds);
                    1
                | Ok prog -> (
                    Format.printf "%s@." (Inl.Pp.program_to_string prog);
                    print_diags ctx.Inl.diags;
                    match verify with
                    | None -> 0
                    | Some n -> (
                        match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
                        | Ok () ->
                            Printf.printf "\nverified equivalent at N = %d\n" n;
                            0
                        | Error d ->
                            print_diags
                              [
                                Diag.errorf ~code:"V601" ~phase:Diag.Interp
                                  "NOT EQUIVALENT at N = %d: %s" n d;
                              ];
                            1)))))
  in
  let no_simplify =
    Arg.(value & flag & info [ "no-simplify" ] ~doc:"Skip the cleanup pass of Section 5.5.")
  in
  let verify =
    Arg.(value & opt (some int) None & info [ "verify" ] ~docv:"N" ~doc:"Check equivalence by interpretation at size N.")
  in
  Cmd.v
    (Cmd.info "apply" ~doc:"Apply a pipeline of loop transformations (Section 4).")
    Term.(
      const run $ setup_term $ file_arg
      $ list_opt "interchange" "Interchange two loops: $(i,A,B)."
      $ list_opt "reverse" "Reverse a loop: $(i,V)."
      $ list_opt "scale" "Scale a loop: $(i,V,k)."
      $ list_opt "skew" "Skew target by source: $(i,T,S,f)."
      $ list_opt "align" "Align a statement w.r.t. a loop: $(i,S,L,k)."
      $ list_opt "reorder" "Reorder children of a node: $(i,PATH:p0,p1,...)."
      $ no_simplify $ verify)

(* ---- complete ---- *)

let complete_cmd =
  let run common file rows verify =
    with_context common file (fun ctx ->
        match
          List.map
            (fun spec ->
              match
                List.map
                  (fun s ->
                    match int_of_string_opt (String.trim s) with
                    | Some n -> n
                    | None -> raise (Bad_step (Printf.sprintf "bad --row entry %S" spec)))
                  (String.split_on_char ',' spec)
              with
              | ints -> Inl.Vec.of_int_list ints)
            rows
        with
        | exception Bad_step msg ->
            print_diags [ Diag.error ~code:"D702" ~phase:Diag.Driver msg ];
            1
        | partial -> (
            match Inl.complete_result ctx ~partial with
            | Error ds ->
                print_diags (ctx.Inl.diags @ ds);
                1
            | Ok m -> (
                Format.printf "completed matrix:@.%a@.@." Inl.Mat.pp m;
                match Inl.transform ctx m with
                | Error ds ->
                    print_diags (ctx.Inl.diags @ ds);
                    1
                | Ok prog -> (
                    Format.printf "%s@." (Inl.Pp.program_to_string prog);
                    print_diags ctx.Inl.diags;
                    match verify with
                    | None -> 0
                    | Some n -> (
                        match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
                        | Ok () ->
                            Printf.printf "\nverified equivalent at N = %d\n" n;
                            0
                        | Error d ->
                            print_diags
                              [
                                Diag.errorf ~code:"V601" ~phase:Diag.Interp
                                  "NOT EQUIVALENT at N = %d: %s" n d;
                              ];
                            1)))))
  in
  let rows =
    Arg.(value & opt_all string [] & info [ "row" ] ~docv:"a,b,..." ~doc:"A partial matrix row (repeatable; the first rows of the target matrix).")
  in
  let verify =
    Arg.(value & opt (some int) None & info [ "verify" ] ~docv:"N" ~doc:"Check equivalence at size N.")
  in
  Cmd.v
    (Cmd.info "complete" ~doc:"Complete a partial transformation (Section 6).")
    Term.(const run $ setup_term $ file_arg $ rows $ verify)

(* ---- run ---- *)

let run_cmd =
  let run common file n =
    with_context common file (fun ctx ->
        match Interp.run ctx.Inl.program ~params:[ ("N", n) ] with
        | exception Invalid_argument msg ->
            print_diags [ Diag.error ~code:"I601" ~phase:Diag.Interp msg ];
            1
        | store ->
            let cells = Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [] in
            List.iter
              (fun ((name, idx), v) ->
                Printf.printf "%s(%s) = %.6g\n" name
                  (String.concat "," (List.map string_of_int idx))
                  v)
              (List.sort compare cells);
            0)
  in
  Cmd.v (Cmd.info "run" ~doc:"Interpret the program and dump the final array contents.")
    Term.(const run $ setup_term $ file_arg $ nparam)

let () =
  let doc = "transformations for imperfectly nested loops (Kodukula-Pingali, SC'96)" in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success with an exact analysis.";
      Cmd.Exit.info 1 ~doc:"on errors (parse failure, illegal transformation, failed search).";
      Cmd.Exit.info 2
        ~doc:
          "on success under a degraded (approximate) dependence analysis — some Omega \
           projection exhausted its resource budget and was replaced by a conservative \
           dependence.";
    ]
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Dependence analysis runs on an exact integer Fourier-Motzkin engine whose worst case \
         is super-exponential, so every projection is resource-bounded (work items, \
         coefficient bit growth, projection count).  When a projection exhausts its budget \
         the analyzer does not fail: it substitutes a conservative dependence (direction \
         unknown at every position beyond the carrying level), marks it approximate, and the \
         legality test can then only become stricter — transformed programs remain correct, \
         some legal transformations may be refused.";
      `P
        "Diagnostics are printed to stderr as 'severity[CODE] phase: message' lines.  The \
         fault-injection option exists to exercise the degraded path deterministically in \
         tests and operations drills.";
    ]
  in
  let info = Cmd.info "inltool" ~version:"1.1.0" ~doc ~exits ~man in
  exit (Cmd.eval' (Cmd.group info [ show_cmd; deps_cmd; apply_cmd; complete_cmd; run_cmd ]))
