(* inltool — command-line driver for the imperfectly-nested-loop
   transformation framework.

     inltool show FILE            parse, validate, pretty-print + layout
     inltool deps FILE            dependence matrix (Section 3)
     inltool apply FILE OPTS      apply a transformation pipeline
     inltool complete FILE --row  complete a partial transformation
     inltool verify FILE          static lint + DOALL analysis
                                  (--against SRC adds translation validation)
     inltool run FILE -N n        interpret and dump the final store

   Transformations compose left to right:
     inltool apply chol.loop --reorder 0:1,0 --interchange I,J --verify 6

   Failure contract: diagnostics go to stderr as "severity[CODE] phase:
   message" lines; the exit code is 0 (clean), 1 (error), or 2 (the
   analysis degraded to approximate dependences but the command still
   succeeded).  Resource budgets and fault injection are controlled by
   --budget / INL_FM_BUDGET and --inject-faults / INL_FAULTS; the solver
   core is tuned by --jobs / INL_JOBS (worker domains), --no-cache
   (disable projection memoization) and --stats (report solver calls,
   cache hit rate and per-phase wall time to stderr). *)

module Interp = Inl_interp.Interp
module Verify = Inl_verify.Verify
module Exec = Inl_exec.Exec
module Cemit = Inl_exec.Cemit
module Search = Inl_search.Search
module Reuse = Inl_reuse.Reuse
module Memo = Inl_reuse.Memo
module Diag = Inl.Diag
module Budget = Inl.Budget
module Faults = Inl.Faults
module Sigint = Inl_diag.Sigint
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let print_diags ds = List.iter (fun d -> prerr_endline (Diag.to_string d)) ds

(* Loading untrusted input must end in a typed diagnostic, never an
   uncaught backtrace: I/O failures and anything unexpected the parser
   or analyzer lets slip become D704 driver errors (exit 1). *)
let load path =
  match Inl.analyze_source_result (read_file path) with
  | result -> result
  | exception Sys_error msg -> Error [ Diag.error ~code:"D704" ~phase:Diag.Driver msg ]
  | exception e ->
      Error
        [
          Diag.errorf ~code:"D704" ~phase:Diag.Driver "unexpected failure loading %s: %s" path
            (Printexc.to_string e);
        ]

(* ---- common arguments: resource budget and fault injection ---- *)

let budget_arg =
  let env =
    Cmd.Env.info "INL_FM_BUDGET"
      ~doc:"Default for the $(b,--budget) option: Fourier-Motzkin work budget per projection."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"N" ~env
        ~doc:
          "Fourier-Motzkin work budget: items processed per Omega projection (default \
           $(b,500000)).  A projection that exhausts the budget degrades to a conservative \
           approximate dependence instead of aborting; the command then exits with code 2.")

let faults_arg =
  let env =
    Cmd.Env.info "INL_FAULTS" ~doc:"Default for the $(b,--inject-faults) option."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-faults" ] ~docv:"SPEC" ~env
        ~doc:
          "Fault-injection spec for robustness testing: comma-separated $(b,key=value) pairs \
           among $(b,every=N) (fail every Nth projection), $(b,after=N) (fail all projections \
           after the Nth), $(b,cap=K) (cap the work budget at K items) and $(b,hang=N) (hang \
           every projection after the Nth — exercises the fuzz driver's wall-clock watchdog); \
           $(b,off) disables.")

let jobs_arg =
  let env = Cmd.Env.info "INL_JOBS" ~doc:"Default for the $(b,--jobs) option." in
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N" ~env
        ~doc:
          "Worker domains for the parallel analysis phases (default $(b,1): fully \
           sequential).  With N > 1, dependence queries, per-dependence legality checks, \
           completion-search structures and verification pairs fan out over N domains; \
           results are merged in deterministic order, so the output is byte-identical to a \
           sequential run.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the Omega projection cache (memoization of canonicalized solver queries). \
           Results are identical either way; this exists for benchmarking and debugging.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "After the command, print solver statistics to stderr: solver calls, \
           projection-cache hit rate, worker domains, and wall time per phase.")

(* Install budget, parallelism, cache and fault configuration; an
   unparsable fault spec is a driver error.  Returns whether a stats
   report was requested. *)
let setup budget faults jobs no_cache stats : (bool, Diag.t list) result =
  (match budget with
  | None -> Inl.Omega.set_default_budget Budget.default
  | Some n -> Inl.Omega.set_default_budget (Budget.with_fm_work Budget.default n));
  (match jobs with None -> () | Some n -> Inl.Pool.set_jobs n);
  Inl.Omega.set_cache_enabled (not no_cache);
  Reuse.set_memo_enabled (not no_cache);
  Search.set_trace_cache_enabled (not no_cache);
  Inl.Legality.set_memo_enabled (not no_cache);
  Search.set_mat_cache_enabled (not no_cache);
  match faults with
  | None ->
      Faults.install Faults.none;
      Ok stats
  | Some spec -> (
      match Faults.parse spec with
      | Ok f ->
          Faults.install f;
          Ok stats
      | Error msg -> Error [ Diag.error ~code:"D701" ~phase:Diag.Driver msg ])

let setup_term =
  Term.(const setup $ budget_arg $ faults_arg $ jobs_arg $ no_cache_arg $ stats_arg)

(* The --stats report: everything needed to judge whether the memoized,
   parallel solver core is earning its keep. *)
let report_stats () =
  let sat, proj = Inl.Omega.solver_calls () in
  Printf.eprintf "--- solver stats ---\n";
  Printf.eprintf "jobs: %d requested, %d effective (capped at the core count)\n"
    (Inl.Pool.requested_jobs ()) (Inl.Pool.jobs ());
  Printf.eprintf "solver calls: %d satisfiable, %d project\n" sat proj;
  (if Inl.Omega.cache_enabled () then
     let cs = Inl.Omega.cache_stats () in
     Printf.eprintf
       "projection cache: %d hits, %d misses, %d evictions, %d entries (hit rate %.1f%%)\n"
       cs.Inl.Cache.hits cs.Inl.Cache.misses cs.Inl.Cache.evictions cs.Inl.Cache.entries
       (100.0 *. Inl.Cache.hit_rate cs)
   else Printf.eprintf "projection cache: disabled (--no-cache)\n");
  (if Reuse.memo_enabled () then begin
     let ms = Reuse.memo_stats () in
     Printf.eprintf
       "reuse memo: %d hits, %d misses, %d evictions, %d entries (hit rate %.1f%%)\n"
       ms.Memo.hits ms.Memo.misses ms.Memo.evictions ms.Memo.entries
       (100.0 *. Memo.hit_rate ms);
     let ts = Search.trace_cache_stats () in
     Printf.eprintf
       "trace memo: %d hits, %d misses, %d evictions, %d entries (hit rate %.1f%%)\n"
       ts.Memo.hits ts.Memo.misses ts.Memo.evictions ts.Memo.entries
       (100.0 *. Memo.hit_rate ts);
     let ls = Inl.Legality.memo_stats () in
     Printf.eprintf
       "legality memo: %d hits, %d misses, %d evictions, %d entries (hit rate %.1f%%)\n"
       ls.Memo.hits ls.Memo.misses ls.Memo.evictions ls.Memo.entries
       (100.0 *. Memo.hit_rate ls);
     let ps = Search.mat_cache_stats () and cs = Search.completion_cache_stats () in
     Printf.eprintf
       "materialize memo: %d hits, %d misses (steps) + %d hits, %d misses (completion)\n"
       ps.Memo.hits ps.Memo.misses cs.Memo.hits cs.Memo.misses
   end
   else Printf.eprintf "reuse/trace/legality/materialize memos: disabled (--no-cache)\n");
  List.iter
    (fun (phase, wall, calls) ->
      Printf.eprintf "phase %-10s %8.3f s (%d call%s)\n" phase wall calls
        (if calls = 1 then "" else "s"))
    (Inl.Stats.phases ());
  List.iter
    (fun (name, n) -> Printf.eprintf "counter %-24s %8d\n" name n)
    (Inl.Stats.counters ())

(* Print the report (when requested) without disturbing the exit code. *)
let finish stats code =
  if stats then report_stats ();
  code

(* Shared driver scaffold: run [f ctx] after setup + load, merging exit
   codes (errors dominate, then degradation). *)
let with_context common file (f : Inl.context -> int) : int =
  match common with
  | Error ds ->
      print_diags ds;
      1
  | Ok stats -> (
      match load file with
      | Error ds ->
          print_diags ds;
          1
      | Ok ctx ->
          let code = f ctx in
          finish stats (if code = 0 then Diag.exit_code ctx.Inl.diags else code))

let file_arg = Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"FILE")

(* Combine exit codes from independent checks: errors dominate, then
   degradation, then clean. *)
let merge_code a b = if a = 1 || b = 1 then 1 else max a b

(* Static post-pass behind --check: translation validation of the
   generated program against the analyzed source. *)
let run_check (ctx : Inl.context) (prog : Inl.Ast.program) : int =
  let report = Verify.run ~against:ctx.Inl.program prog in
  let ds = Verify.diags report in
  print_diags ds;
  if Diag.has_errors ds then 1
  else if Diag.has_warnings ds then (
    Printf.printf "\nstatic verification incomplete (see warnings)\n";
    2)
  else (
    Printf.printf "\nstatically verified: instance sets and dependence order preserved\n";
    0)

let nparam =
  Arg.(value & opt int 6 & info [ "N"; "size" ] ~docv:"N" ~doc:"Value for the size parameter N.")

(* ---- show ---- *)

let show_cmd =
  let run common file =
    with_context common file (fun ctx ->
        Format.printf "%s@." (Inl.Pp.program_to_string ctx.Inl.program);
        Format.printf "@.instance-vector positions:@.%a@." Inl.Layout.pp_positions ctx.Inl.layout;
        List.iter
          (fun (si : Inl.Layout.stmt_info) ->
            Format.printf "%s: loops=[%s] padded positions=[%s]@." si.Inl.Layout.label
              (String.concat ";"
                 (List.map (fun (_, (l : Inl.Ast.loop)) -> l.Inl.Ast.var) si.Inl.Layout.loops))
              (String.concat ";" (List.map string_of_int si.Inl.Layout.padded_pos)))
          ctx.Inl.layout.Inl.Layout.stmts;
        0)
  in
  Cmd.v (Cmd.info "show" ~doc:"Parse a program and print its instance-vector layout.")
    Term.(const run $ setup_term $ file_arg)

(* ---- deps ---- *)

let deps_cmd =
  let run common file =
    with_context common file (fun ctx ->
        Format.printf "%a@." Inl.Dep.pp_matrix ctx.Inl.deps;
        List.iter (fun d -> Format.printf "%a@." Inl.Dep.pp d) ctx.Inl.deps;
        print_diags ctx.Inl.diags;
        0)
  in
  Cmd.v
    (Cmd.info "deps"
       ~doc:
         "Print the dependence matrix (Section 3).  Exits with code 2 when any dependence is \
          approximate (analysis budget exhausted or fault injected).")
    Term.(const run $ setup_term $ file_arg)

(* ---- apply ---- *)

exception Bad_step of string

(* Collect the step options in CLI order; the first malformed spec is a
   D702 driver error. *)
let collect_steps groups : (Inl.Pipeline.step list, Diag.t list) result =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | (kind, specs) :: rest -> (
        let parsed =
          List.fold_left
            (fun acc spec ->
              match acc with
              | Error _ as e -> e
              | Ok steps -> (
                  match Inl.Pipeline.step_of_spec ~kind spec with
                  | Ok s -> Ok (s :: steps)
                  | Error msg -> Error msg))
            (Ok []) specs
        in
        match parsed with
        | Ok steps -> go (List.rev steps :: acc) rest
        | Error msg -> Error [ Diag.error ~code:"D702" ~phase:Diag.Driver msg ])
  in
  go [] groups

(* Interpretation-based equivalence check behind --verify N. *)
let run_interp_verify (ctx : Inl.context) prog n : int =
  match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
  | Ok () ->
      Printf.printf "\nverified equivalent at N = %d\n" n;
      0
  | Error d ->
      print_diags
        [ Diag.errorf ~code:"V601" ~phase:Diag.Interp "NOT EQUIVALENT at N = %d: %s" n d ];
      1

let list_opt name doc = Arg.(value & opt_all string [] & info [ name ] ~docv:"SPEC" ~doc)

let check_flag =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Statically verify the generated program against the source: instance-set and \
           dependence-order preservation plus the well-formedness lint (exit 1 on a \
           verification error, 2 when a check degraded under the resource budget).")

(* The shared back half of `apply`: a materialized total matrix goes
   through legality + codegen, then the optional post-passes. *)
let apply_matrix ctx ~no_simplify ~verify ~check (total : Inl.Mat.t) : int =
  Format.printf "transformation matrix:@.%a@.@." Inl.Mat.pp total;
  match Inl.transform ctx ~simplify:(not no_simplify) total with
  | Error ds ->
      print_diags (ctx.Inl.diags @ ds);
      1
  | Ok prog ->
      Format.printf "%s@." (Inl.Pp.program_to_string prog);
      print_diags ctx.Inl.diags;
      let check_code = if check then run_check ctx prog else 0 in
      let verify_code = match verify with None -> 0 | Some n -> run_interp_verify ctx prog n in
      merge_code check_code verify_code

(* Load and materialize a .tf recipe — the one replay path shared by
   fuzz quarantine pairs and search winners.  Malformed or mismatched
   recipes are typed D705 driver errors, never backtraces. *)
let materialize_recipe ctx path : (Inl.Mat.t, Diag.t list) result =
  match Inl_fuzz.Tf.of_string (read_file path) with
  | Error msg ->
      Error [ Diag.errorf ~code:"D705" ~phase:Diag.Driver "malformed recipe %s: %s" path msg ]
  | exception Sys_error msg -> Error [ Diag.error ~code:"D704" ~phase:Diag.Driver msg ]
  | Ok recipe -> (
      match Inl_fuzz.Tf.materialize ctx recipe with
      | Ok m -> Ok m
      | Error msg ->
          Error
            [
              Diag.errorf ~code:"D705" ~phase:Diag.Driver
                "recipe %s does not materialize against this program: %s" path msg;
            ]
      | exception e ->
          Error
            [
              Diag.errorf ~code:"D705" ~phase:Diag.Driver
                "recipe %s does not materialize against this program: %s" path
                (Printexc.to_string e);
            ])

let apply_cmd =
  let run common file recipe interchanges reverses scales skews aligns reorders no_simplify
      verify check =
    with_context common file (fun ctx ->
        let step_groups =
          [
            ("interchange", interchanges);
            ("reverse", reverses);
            ("scale", scales);
            ("skew", skews);
            ("align", aligns);
            ("reorder", reorders);
          ]
        in
        match recipe with
        | Some path when List.exists (fun (_, specs) -> specs <> []) step_groups ->
            print_diags
              [
                Diag.errorf ~code:"D703" ~phase:Diag.Driver
                  "--recipe %s cannot be combined with step options" path;
              ];
            1
        | Some path -> (
            match materialize_recipe ctx path with
            | Error ds ->
                print_diags ds;
                1
            | Ok total -> apply_matrix ctx ~no_simplify ~verify ~check total)
        | None -> (
            match collect_steps step_groups with
            | Error ds ->
                print_diags ds;
                1
            | Ok [] ->
                print_diags
                  [ Diag.error ~code:"D703" ~phase:Diag.Driver "no transformation steps given" ];
                1
            | Ok steps -> (
                match Inl.pipeline ctx steps with
                | Error ds ->
                    print_diags (ctx.Inl.diags @ ds);
                    1
                | Ok total -> apply_matrix ctx ~no_simplify ~verify ~check total)))
  in
  let no_simplify =
    Arg.(value & flag & info [ "no-simplify" ] ~doc:"Skip the cleanup pass of Section 5.5.")
  in
  let verify =
    Arg.(value & opt (some int) None & info [ "verify" ] ~docv:"N" ~doc:"Check equivalence by interpretation at size N.")
  in
  let recipe =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "recipe" ] ~docv:"R.tf"
          ~doc:
            "Apply a transformation recipe file (the $(b,tf v1) format shared by fuzz \
             quarantine pairs and $(b,optimize) winners) instead of step options; the recipe \
             re-materializes against FILE through the normal pipeline.")
  in
  Cmd.v
    (Cmd.info "apply" ~doc:"Apply a pipeline of loop transformations (Section 4).")
    Term.(
      const run $ setup_term $ file_arg $ recipe
      $ list_opt "interchange" "Interchange two loops: $(i,A,B)."
      $ list_opt "reverse" "Reverse a loop: $(i,V)."
      $ list_opt "scale" "Scale a loop: $(i,V,k)."
      $ list_opt "skew" "Skew target by source: $(i,T,S,f)."
      $ list_opt "align" "Align a statement w.r.t. a loop: $(i,S,L,k)."
      $ list_opt "reorder" "Reorder children of a node: $(i,PATH:p0,p1,...)."
      $ no_simplify $ verify $ check_flag)

(* ---- complete ---- *)

let complete_cmd =
  let run common file rows verify check =
    with_context common file (fun ctx ->
        match
          List.map
            (fun spec ->
              match
                List.map
                  (fun s ->
                    match int_of_string_opt (String.trim s) with
                    | Some n -> n
                    | None -> raise (Bad_step (Printf.sprintf "bad --row entry %S" spec)))
                  (String.split_on_char ',' spec)
              with
              | ints -> Inl.Vec.of_int_list ints)
            rows
        with
        | exception Bad_step msg ->
            print_diags [ Diag.error ~code:"D702" ~phase:Diag.Driver msg ];
            1
        | partial -> (
            match Inl.complete_result ctx ~partial with
            | Error ds ->
                print_diags (ctx.Inl.diags @ ds);
                1
            | Ok m -> (
                Format.printf "completed matrix:@.%a@.@." Inl.Mat.pp m;
                match Inl.transform ctx m with
                | Error ds ->
                    print_diags (ctx.Inl.diags @ ds);
                    1
                | Ok prog ->
                    Format.printf "%s@." (Inl.Pp.program_to_string prog);
                    print_diags ctx.Inl.diags;
                    let check_code = if check then run_check ctx prog else 0 in
                    let verify_code =
                      match verify with None -> 0 | Some n -> run_interp_verify ctx prog n
                    in
                    merge_code check_code verify_code)))
  in
  let rows =
    Arg.(value & opt_all string [] & info [ "row" ] ~docv:"a,b,..." ~doc:"A partial matrix row (repeatable; the first rows of the target matrix).")
  in
  let verify =
    Arg.(value & opt (some int) None & info [ "verify" ] ~docv:"N" ~doc:"Check equivalence at size N.")
  in
  Cmd.v
    (Cmd.info "complete" ~doc:"Complete a partial transformation (Section 6).")
    Term.(const run $ setup_term $ file_arg $ rows $ verify $ check_flag)

(* ---- verify ---- *)

(* Parse without building a Layout: the verifier is meant for arbitrary
   program shapes — in particular codegen output, whose If/Let nodes the
   instance-vector layout rejects by design. *)
let parse_only path : (Inl.Ast.program, Diag.t list) result =
  match Inl.Parser.parse (read_file path) with
  | Ok prog -> Ok prog
  | Error msg -> Error [ Diag.error ~code:"P101" ~phase:Diag.Parse msg ]
  | exception Sys_error msg -> Error [ Diag.error ~code:"D704" ~phase:Diag.Driver msg ]
  | exception e ->
      Error
        [
          Diag.errorf ~code:"D704" ~phase:Diag.Driver "unexpected failure loading %s: %s" path
            (Printexc.to_string e);
        ]

let verify_cmd =
  let run common file against =
    match common with
    | Error ds ->
        print_diags ds;
        1
    | Ok stats -> (
        match parse_only file with
        | Error ds ->
            print_diags ds;
            1
        | Ok prog -> (
            let source =
              match against with
              | None -> Ok None
              | Some src -> (
                  match parse_only src with Ok p -> Ok (Some p) | Error ds -> Error ds)
            in
            match source with
            | Error ds ->
                print_diags ds;
                1
            | Ok source ->
                let report = Verify.run ?against:source prog in
                print_endline (Verify.annotated prog report.Verify.loops);
                print_newline ();
                List.iter print_endline (Verify.loop_summary report.Verify.loops);
                let ds = Verify.diags report in
                print_diags ds;
                (if not (Diag.has_errors ds) then
                   match (source, Diag.has_warnings ds) with
                   | Some _, false ->
                       Printf.printf
                         "\nstatically verified: instance sets and dependence order preserved\n"
                   | Some _, true -> Printf.printf "\nstatic verification incomplete (see warnings)\n"
                   | None, _ -> ());
                finish stats (Diag.exit_code ds)))
  in
  let against =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "against" ] ~docv:"SRC"
          ~doc:
            "Source program to validate FILE against: proves instance-set preservation (no \
             dropped, extra or duplicated iterations) and dependence-order preservation.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Statically analyze a program: well-formedness lint, DOALL (parallel-loop) detection, \
          and — with $(b,--against) — translation validation against a source program.  Exits \
          1 on verification errors, 2 on lint findings or budget-degraded checks.")
    Term.(const run $ setup_term $ file_arg $ against)

(* ---- run ---- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let run_cmd =
  let run common file n recipe threads repeat no_timings emit_c =
    match common with
    | Error ds ->
        print_diags ds;
        1
    | Ok stats -> (
        (* Without --recipe, parse-only on purpose: generated programs
           (If/Let nodes) have no instance-vector layout but interpret
           fine.  With --recipe the file must be a source program (the
           recipe re-materializes against its layout, exactly as
           `apply --recipe` would) and the transformed code is run. *)
        let prog_result =
          match recipe with
          | None -> parse_only file
          | Some rpath -> (
              match load file with
              | Error ds -> Error ds
              | Ok ctx -> (
                  match materialize_recipe ctx rpath with
                  | Error ds -> Error ds
                  | Ok total -> (
                      match Inl.transform ctx total with
                      | Error ds -> Error (ctx.Inl.diags @ ds)
                      | Ok prog -> Ok prog)))
        in
        match prog_result with
        | Error ds ->
            print_diags ds;
            1
        | Ok prog -> (
            (* every program parameter is bound to the -N size, as in the
               search's simulation tier *)
            let params = List.map (fun p -> (p, n)) prog.Inl.Ast.params in
            match emit_c with
            | Some cpath -> (
                match Exec.analyze prog with
                | exception Inl.Ast.Invalid msg ->
                    print_diags [ Diag.errorf ~code:"X802" ~phase:Diag.Exec "invalid program: %s" msg ];
                    1
                | doall ->
                    write_file cpath (Cemit.emit prog ~params ~doall);
                    Printf.printf "wrote %s (%d/%d loops doall)\n" cpath
                      (Exec.doall_count doall) (List.length doall);
                    finish stats 0)
            | None -> (
                match threads with
                | Some jobs -> (
                    match Exec.benchmark ~jobs ~repeat prog ~params with
                    | Error ds ->
                        print_diags ds;
                        finish stats 1
                    | Ok r ->
                        List.iter print_endline (Exec.render ~timings:(not no_timings) r);
                        print_diags r.Exec.notes;
                        finish stats (Diag.exit_code r.Exec.notes))
                | None -> (
                    match Interp.run prog ~params with
                    | exception Invalid_argument msg ->
                        print_diags [ Diag.error ~code:"I601" ~phase:Diag.Interp msg ];
                        1
                    | store ->
                        let cells = Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [] in
                        List.iter
                          (fun ((name, idx), v) ->
                            Printf.printf "%s(%s) = %.6g\n" name
                              (String.concat "," (List.map string_of_int idx))
                              v)
                          (List.sort compare cells);
                        finish stats 0))))
  in
  let recipe =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "recipe" ] ~docv:"R.tf"
          ~doc:
            "Run the program under this transformation recipe (the $(b,tf v1) format written \
             by $(b,optimize)): the recipe re-materializes against FILE and the generated \
             code is executed.")
  in
  let threads =
    Arg.(
      value
      & opt (some int) None
      & info [ "threads" ] ~docv:"N"
          ~doc:
            "Execute for real and report wall-clock timings: the outermost provably-DOALL \
             dimension is chunked over N worker domains (the other levels run sequentially), \
             the parallel store is differentially checked against the sequential interpreter \
             before any timing is reported, and the report carries the honest core count.  \
             Without a DOALL dimension the run degrades to sequential with a typed $(b,X901) \
             / $(b,X902) warning (exit 2).")
  in
  let repeat =
    Arg.(
      value & opt int 3
      & info [ "repeat" ] ~docv:"K"
          ~doc:"Timing runs per variant under $(b,--threads); the minimum is reported.")
  in
  let no_timings =
    Arg.(
      value & flag
      & info [ "no-timings" ]
          ~doc:
            "Report the execution plan and differential verdict with every wall time masked \
             as $(b,-): byte-stable output for tests.")
  in
  let emit_c =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-c" ] ~docv:"FILE.c"
          ~doc:
            "Instead of executing, lower the program to a self-contained C99 file with \
             $(b,#pragma omp parallel for) on every proven-DOALL dimension (array extents \
             measured at size $(b,-N)); emit-only — nothing compiles it here.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Interpret the program and dump the final array contents; with $(b,--threads), \
          execute the DOALL schedule on worker domains and report measured speedups; with \
          $(b,--emit-c), emit C/OpenMP instead.  Accepts any parseable program, including \
          generated code with guards and lets.")
    Term.(
      const run $ setup_term $ file_arg $ nparam $ recipe $ threads $ repeat $ no_timings
      $ emit_c)

(* ---- optimize ---- *)

let optimize_cmd =
  let run common file beam depth finalists size seed out =
    with_context common file (fun ctx ->
        (* beam/depth default to the kernel-size-aware widened values;
           explicit --beam/--depth always win *)
        let auto = Search.config_for ctx in
        let config =
          {
            auto with
            Search.beam = Option.value beam ~default:auto.Search.beam;
            depth = Option.value depth ~default:auto.Search.depth;
            finalists;
            size;
            seed;
          }
        in
        Sigint.install ();
        try
        let o = Search.optimize ~config ctx in
        let f = o.Search.funnel in
        Printf.printf
          "search: generated=%d materialize-failed=%d duplicate=%d pruned-illegal=%d \
           scored=%d classes=%d pruned-equivalent=%d simulated=%d sim-shared=%d \
           sim-skipped=%d\n"
          f.Search.generated f.Search.materialize_failed f.Search.duplicate f.Search.illegal
          f.Search.scored f.Search.reuse_classes f.Search.reuse_pruned f.Search.simulated
          f.Search.sim_shared f.Search.sim_skipped;
        (match (o.Search.source_accesses, o.Search.source_misses) with
        | Some a, Some m ->
            Printf.printf "source: accesses=%d misses=%d miss-rate=%.2f%%\n" a m
              (100.0 *. float_of_int m /. float_of_int a)
        | _ -> ());
        Printf.printf "%4s  %10s  %8s  %6s  %s\n" "rank" "static" "misses" "miss%" "recipe";
        List.iter
          (fun (e : Search.entry) ->
            let misses, rate =
              match (e.Search.misses, e.Search.accesses) with
              | Some m, Some a ->
                  (string_of_int m, Printf.sprintf "%.2f%%" (100.0 *. float_of_int m /. float_of_int a))
              | _ -> ("-", "-")
            in
            Printf.printf "%4d  %10.3f  %8s  %6s  %s\n" e.Search.rank e.Search.static_score
              misses rate
              (Search.recipe_line e.Search.recipe))
          o.Search.entries;
        print_diags ctx.Inl.diags;
        print_diags o.Search.diags;
        (match o.Search.winner with
        | None -> 1
        | Some w ->
            let prog = Option.get w.Search.program in
            Printf.printf "\nwinner: %s\n" (Search.recipe_line w.Search.recipe);
            (match o.Search.winner_doall with
            | Some k when k > 0 ->
                Printf.printf "winner doall: %d parallel loop(s) — runnable with `inltool run --threads`\n" k
            | Some 0 -> Printf.printf "winner doall: none (sequential schedule)\n"
            | _ -> ());
            let prefix =
              match out with Some p -> p | None -> Filename.remove_extension file ^ ".opt"
            in
            write_file (prefix ^ ".loop") (Inl.Pp.program_to_string prog ^ "\n");
            write_file (prefix ^ ".tf") (Inl_fuzz.Tf.to_string w.Search.recipe);
            Printf.printf "wrote %s.loop and %s.tf\n" prefix prefix;
            Format.printf "@.%s@." (Inl.Pp.program_to_string prog);
            Diag.exit_code o.Search.diags)
        with Sigint.Interrupted ->
          (* honoured at generation boundaries inside the search: flush
             the stats report (with_context's finish) and exit 130
             instead of dying mid-write *)
          prerr_endline "optimize: interrupted; no winner written";
          Sigint.exit_code)
  in
  let beam =
    Arg.(value & opt (some int) None
         & info [ "beam" ] ~docv:"B"
             ~doc:"Beam width of the move search (default: 8, widened to 12 on kernels with \
                   at least 8 layout columns).")
  in
  let depth =
    Arg.(value & opt (some int) None
         & info [ "depth" ] ~docv:"D"
             ~doc:"Move generations after the completion seeds (default: 3, widened to 4 on \
                   kernels with at least 8 layout columns).")
  in
  let finalists =
    Arg.(value & opt int Search.default_config.Search.finalists
         & info [ "finalists" ] ~docv:"K"
             ~doc:"Statically ranked candidates promoted to the cache-simulation tier.")
  in
  let size =
    Arg.(value & opt int Search.default_config.Search.size
         & info [ "size" ] ~docv:"N"
             ~doc:"Problem size for the simulation tier (every program parameter is bound to N).")
  in
  let seed =
    Arg.(value & opt int Search.default_config.Search.seed
         & info [ "seed" ] ~docv:"S"
             ~doc:"Search seed (used only to subsample oversized move sets; the search is \
                   deterministic for a fixed seed, independent of $(b,--jobs)).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"PREFIX"
             ~doc:"Output prefix for the winning program ($(i,PREFIX).loop) and its replayable \
                   recipe ($(i,PREFIX).tf); defaults to FILE minus its extension plus \
                   $(b,.opt).")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Search the legal transformation space for a locality-optimized loop order: a \
          deterministic beam search seeded by the Section 6 completion procedure, pruned by \
          the exact legality test, ranked by a static reuse/stride model, with the finalists \
          scored by cache simulation.  The winner is statically validated against the source \
          ($(b,Inl_verify)) before being written; exits 1 when no candidate survives, 2 under \
          degraded analysis or degraded search tiers.")
    Term.(const run $ setup_term $ file_arg $ beam $ depth $ finalists $ size $ seed $ out)

(* ---- analyze ---- *)

let analyze_cmd =
  let run common file reuse recipe work line_elems =
    with_context common file (fun ctx ->
        if not reuse then begin
          print_diags
            [ Diag.error ~code:"D707" ~phase:Diag.Driver "no analysis selected (try --reuse)" ];
          1
        end
        else
          let matrix =
            match recipe with
            | None -> Ok (Inl.Mat.identity (Inl.Layout.size ctx.Inl.layout))
            | Some path -> materialize_recipe ctx path
          in
          match matrix with
          | Error ds ->
              print_diags ds;
              1
          | Ok m -> (
              match Inl.check ctx m with
              | Inl.Legality.Illegal reason ->
                  print_diags
                    [
                      Diag.errorf ~code:"L302" ~phase:Diag.Legality "illegal transformation: %s"
                        reason;
                    ];
                  1
              | Inl.Legality.Legal { structure; _ } ->
                  let work_budget =
                    match work with
                    | Some _ -> work
                    | None -> Some (Inl.Omega.get_default_budget ()).Budget.fm_work
                  in
                  let report = Reuse.analyze ?work_budget ?line_elems ctx structure in
                  print_string (Reuse.render report);
                  print_diags ctx.Inl.diags;
                  print_diags report.Reuse.diags;
                  Diag.exit_code (ctx.Inl.diags @ report.Reuse.diags)))
  in
  let reuse =
    Arg.(
      value & flag
      & info [ "reuse" ]
          ~doc:
            "Report the static reuse classification: every array reference of every statement, \
             classified per transformed loop dimension as temporal, spatial(stride) or none by \
             propagating subscript deltas through the inverse per-statement transformation.  \
             Findings are typed warnings ($(b,U101) no innermost reuse, $(b,U102) an outer \
             loop's temporal reuse could be permuted innermost, $(b,U901) singular \
             per-statement transformation, $(b,U902) work budget exhausted), so the exit code \
             is 2 when the analysis found something or degraded.")
  in
  let recipe =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "recipe" ] ~docv:"R.tf"
          ~doc:
            "Analyze the program under this transformation recipe (the $(b,tf v1) format) \
             instead of the identity: the report then describes the locality of the \
             {e transformed} loop order.")
  in
  let work =
    Arg.(
      value
      & opt (some int) None
      & info [ "work" ] ~docv:"W"
          ~doc:
            "Classification work budget, one unit per reference x loop dimension (default: the \
             Fourier-Motzkin work allowance of $(b,--budget)).  Statements past the cap are \
             reported unclassified ($(b,U902)) and scored pessimistically.")
  in
  let line_elems =
    Arg.(
      value
      & opt (some int) None
      & info [ "line-elems" ] ~docv:"E"
          ~doc:
            "Cache line size in array elements (default 8 = 64-byte lines of 8-byte \
             elements); strides of E or more elements count as no spatial reuse.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static locality analysis of a program (identity or a transformed schedule): the \
          reuse-vocabulary report behind the autotuner's static tier, as a user-facing \
          diagnostic pass.  Exits 0 when every reference has innermost reuse, 2 on findings \
          or degraded classification, 1 on errors.")
    Term.(const run $ setup_term $ file_arg $ reuse $ recipe $ work $ line_elems)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let run common seed cases timeout_ms corpus no_shrink replay =
    match common with
    | Error ds ->
        print_diags ds;
        1
    | Ok stats -> (
        match replay with
        | Some base -> (
            match Inl_fuzz.Driver.replay ~timeout_ms base with
            | Error msg ->
                print_diags [ Diag.error ~code:"D706" ~phase:Diag.Driver msg ];
                1
            | Ok reproduced -> finish stats (if reproduced then 1 else 0))
        | None -> (
            Sigint.install ();
            let cfg =
              { Inl_fuzz.Driver.seed; cases; timeout_ms; corpus; shrink = not no_shrink }
            in
            match Inl_fuzz.Driver.run ~stop:Sigint.requested cfg with
            | Error msg ->
                print_diags [ Diag.error ~code:"D706" ~phase:Diag.Driver msg ];
                1
            | Ok report ->
                finish stats
                  (if report.Inl_fuzz.Driver.interrupted then Sigint.exit_code
                   else if Inl_fuzz.Driver.findings report > 0 then 1
                   else 0)))
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign seed.  Cases are derived independently from (seed, index), so the case \
             stream is reproducible and stable under interruption and resume.")
  in
  let cases =
    Arg.(value & opt int 100 & info [ "cases" ] ~docv:"K" ~doc:"Number of cases to run.")
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ] ~docv:"T"
          ~doc:
            "Per-case wall-clock watchdog in milliseconds (0 disables).  A case that exceeds \
             it is retried once under a sharply reduced solver budget, then recorded as a \
             $(b,timeout) finding.")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Corpus directory: findings are quarantined here as replayable \
             $(b,finding-<case>-<signature>) file pairs, and a cursor file makes the campaign \
             resumable — rerunning with the same seed continues at the first case not yet \
             done.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Quarantine findings as generated, skipping delta-debugging reduction.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"BASE"
          ~doc:
            "Replay one quarantined finding ($(i,BASE).inl + $(i,BASE).tf; a trailing .inl or \
             .tf is accepted) instead of running a campaign; exits 1 when the finding \
             reproduces.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random loop nests and transformation recipes, then \
          compare the legality test, the static translation validator and the interpreter on \
          each case.  Any disagreement, crash or hang is shrunk, quarantined and reported; \
          exits 1 when the campaign produced findings.")
    Term.(const run $ setup_term $ seed $ cases $ timeout_ms $ corpus $ no_shrink $ replay)

(* ---- corpus ---- *)

let corpus_cmd =
  let module Manifest = Inl_corpus.Manifest in
  let module Runner = Inl_corpus.Runner in
  let module Record = Inl_corpus.Record in
  let module Bench = Inl_corpus.Bench in
  let code_of_records records =
    let has st = List.exists (fun (r : Record.t) -> r.Record.status = st) records in
    if has Record.Quarantined || has Record.Failed then 1
    else if has Record.Degraded then 2
    else 0
  in
  let run common manifest_path state timeout_ms no_timings out_file guard =
    match common with
    | Error ds ->
        print_diags ds;
        1
    | Ok stats -> (
        Sigint.install ();
        match Manifest.load manifest_path with
        | Error ds ->
            print_diags ds;
            1
        | Ok manifest -> (
            (* guard mode is a fresh, unpersisted, untimed run: nothing
               to resume from, nothing clobbered, wall-time noise out of
               the comparison by construction *)
            let cfg =
              {
                Runner.manifest;
                state_dir = (if guard <> None then None else state);
                timeout_ms;
                timings = (not no_timings) && guard = None;
                jobs = Inl.Pool.jobs ();
              }
            in
            match Runner.run ~stop:Sigint.requested cfg with
            | Error ds ->
                print_diags ds;
                finish stats 1
            | Ok report ->
                if report.Runner.interrupted then finish stats Sigint.exit_code
                else
                  let json =
                    Bench.render ~manifest_fingerprint:manifest.Manifest.fingerprint
                      ~jobs:cfg.Runner.jobs ~timings:cfg.Runner.timings report.Runner.records
                  in
                  finish stats
                    (match guard with
                    | None ->
                        write_file out_file json;
                        Printf.printf "wrote %s\n" out_file;
                        code_of_records report.Runner.records
                    | Some baseline_path -> (
                        match read_file baseline_path with
                        | exception Sys_error m ->
                            print_diags
                              [
                                Diag.errorf ~code:"K709" ~phase:Diag.Corpus
                                  "cannot read guard baseline: %s" m;
                              ];
                            1
                        | baseline -> (
                            match Bench.guard ~baseline ~current:json with
                            | Ok () ->
                                Printf.printf
                                  "corpus-guard PASS: %d kernels match the committed report\n"
                                  (List.length report.Runner.records);
                                0
                            | Error drifts ->
                                print_diags
                                  (List.map
                                     (fun m ->
                                       Diag.errorf ~code:"K709" ~phase:Diag.Corpus "%s" m)
                                     drifts);
                                1)))))
  in
  let manifest_arg =
    Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"MANIFEST")
  in
  let state =
    Arg.(
      value
      & opt (some string) None
      & info [ "state" ] ~docv:"DIR"
          ~doc:
            "State directory: the resumable checkpoint and quarantined kernel findings live \
             here.  After every kernel the full record set is checkpointed crash-safely \
             (write-temp + fsync + rename, checksummed header); a rerun restores completed \
             kernels and continues.  Without it the run is not persisted.")
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ] ~docv:"T"
          ~doc:
            "Default per-kernel wall-clock watchdog in milliseconds (0 disables; a \
             manifest entry's $(b,timeout_ms) key overrides).  A kernel that exceeds it is \
             retried once under a sharply reduced budget, then quarantined as a typed \
             $(b,timeout) finding — the batch always continues.")
  in
  let no_timings =
    Arg.(
      value & flag
      & info [ "no-timings" ]
          ~doc:
            "Record every kernel's wall time as 0, making the report a pure function of the \
             manifest, seed and configuration — byte-identical across runs, including a \
             SIGKILLed run resumed from its checkpoint (the acceptance drill).")
  in
  let out_file =
    Arg.(
      value & opt string "BENCH_corpus.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the consolidated JSON report.")
  in
  let guard =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "guard" ] ~docv:"FILE"
          ~doc:
            "Drift gate: rerun the corpus fresh (unpersisted, untimed) and exit 1 with typed \
             $(b,K709) diagnostics if any kernel's status, quarantine signature, winner \
             recipe, miss/access/candidate counts or degradation tags differ from the \
             committed report at $(i,FILE); wall-time noise is never compared.")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Crash-tolerant bulk optimization over a kernel manifest: run the full pipeline \
          (analyze, optimize, verify, simulate) on every kernel, each under its own budget, \
          watchdog and fault scope with one reduced-budget retry; hung or crashing kernels \
          are quarantined as replayable findings instead of aborting the batch, progress is \
          checkpointed after every kernel for SIGKILL-safe resume, and the consolidated \
          per-kernel report (miss counts, wall times, delta-inherit and memo rates, \
          degradation tags) is written as JSON.  Exits 0 all clean, 1 quarantined/failed \
          kernels or guard drift, 2 degraded, 130 interrupted.")
    Term.(
      const run $ setup_term $ manifest_arg $ state $ timeout_ms $ no_timings $ out_file
      $ guard)

(* ---- serve ---- *)

let serve_cmd =
  let module Server = Inl_serve.Server in
  let run common socket connect state queue_cap timeout_ms max_bytes checkpoint_every =
    match common with
    | Error ds ->
        print_diags ds;
        1
    | Ok stats -> (
        match connect with
        | Some path -> finish stats (Server.client ~socket:path)
        | None ->
            let config =
              {
                Server.socket;
                state_dir = state;
                queue_cap;
                request_timeout_ms = timeout_ms;
                max_request_bytes = max_bytes;
                checkpoint_every;
              }
            in
            finish stats (Server.run config))
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket at $(i,PATH) instead of serving stdin/stdout; \
             multiple clients may connect concurrently.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:
            "Client mode: forward request lines from stdin to the daemon at $(i,PATH) and \
             print its response lines.  The dial is retried briefly, so a script may start \
             daemon and client together.")
  in
  let state =
    Arg.(
      value
      & opt (some string) None
      & info [ "state" ] ~docv:"DIR"
          ~doc:
            "State directory: the projection-cache snapshot ($(b,cache.snap)) and the fuzz \
             corpus live here.  The snapshot is checkpointed crash-safely (write-temp + \
             fsync + rename, checksummed header) and restored on startup, so a restarted \
             daemon starts warm; a corrupt snapshot is a warning and a cold start.")
  in
  let queue_cap =
    Arg.(
      value
      & opt int Server.default_config.Server.queue_cap
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Bounded request-queue capacity.  Arrivals beyond it are rejected immediately \
             with a typed $(b,R704) response instead of being buffered without bound.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt int Server.default_config.Server.request_timeout_ms
      & info [ "timeout-ms" ] ~docv:"T"
          ~doc:
            "Default per-request deadline in milliseconds (0 disables; a request's own \
             $(b,timeout_ms) field overrides).  A request that exceeds it is retried once \
             under a sharply reduced budget, then answered with $(b,R706).")
  in
  let max_bytes =
    Arg.(
      value
      & opt int Server.default_config.Server.max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:"Longest accepted request line; longer lines are rejected with $(b,R705).")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt int Server.default_config.Server.checkpoint_every
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Snapshot the projection cache every $(i,N) requests (0: only on drain).  A \
             final checkpoint always runs on clean drain and on SIGTERM.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running optimization service: accept $(b,analyze), $(b,verify), \
          $(b,optimize), $(b,fuzz), $(b,stats), $(b,ping) and $(b,shutdown) requests as one \
          JSON object per line on stdin (responses on stdout) or on a Unix socket \
          ($(b,--socket)).  Every request runs under its own budget, deadline and \
          fault-injection scope; failures degrade that one request to a typed diagnostic — \
          the daemon keeps serving.  Exits 0 on a clean drain, 1 when some request was \
          answered with an error or produced fuzz findings, 2 on an internal fault.")
    Term.(
      const run $ setup_term $ socket $ connect $ state $ queue_cap $ timeout_ms $ max_bytes
      $ checkpoint_every)

let () =
  let doc = "transformations for imperfectly nested loops (Kodukula-Pingali, SC'96)" in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success with an exact analysis.";
      Cmd.Exit.info 1 ~doc:"on errors (parse failure, illegal transformation, failed search).";
      Cmd.Exit.info 2
        ~doc:
          "on success under a degraded (approximate) dependence analysis — some Omega \
           projection exhausted its resource budget and was replaced by a conservative \
           dependence.";
    ]
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Dependence analysis runs on an exact integer Fourier-Motzkin engine whose worst case \
         is super-exponential, so every projection is resource-bounded (work items, \
         coefficient bit growth, projection count).  When a projection exhausts its budget \
         the analyzer does not fail: it substitutes a conservative dependence (direction \
         unknown at every position beyond the carrying level), marks it approximate, and the \
         legality test can then only become stricter — transformed programs remain correct, \
         some legal transformations may be refused.";
      `P
        "Diagnostics are printed to stderr as 'severity[CODE] phase: message' lines.  The \
         fault-injection option exists to exercise the degraded path deterministically in \
         tests and operations drills.";
    ]
  in
  let info = Cmd.info "inltool" ~version:"1.1.0" ~doc ~exits ~man in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            show_cmd;
            deps_cmd;
            apply_cmd;
            complete_cmd;
            verify_cmd;
            run_cmd;
            analyze_cmd;
            optimize_cmd;
            fuzz_cmd;
            corpus_cmd;
            serve_cmd;
          ]))
