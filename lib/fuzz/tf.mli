(** Replayable transformation specifications.

    A fuzz case must survive three lives: the live campaign, quarantine
    on disk, and replay after shrinking — so transformations are stored
    not as raw matrices (whose dimensions die with the layout) but as the
    {e recipe} that builds them: named pipeline steps (the CLI's
    [--interchange I,J] surface syntax), or partial first rows handed to
    the Section 6 completion procedure, optionally followed by raw matrix
    edits that deliberately break well-formedness.  Recipes re-materialize
    against whatever program they are replayed with, which is what lets
    the shrinker mutate the program underneath them. *)

module Mat = Inl_linalg.Mat

type edit =
  | Negate_row of int
  | Add_entry of { row : int; col : int; delta : int }
      (** perturbations applied to the materialized matrix — the
          "possibly-illegal" half of the sampler's output *)

type t = {
  steps : (string * string) list;
      (** [(kind, spec)] in {!Inl.Pipeline.step_of_spec} surface syntax *)
  partial : int list list;
      (** when non-empty: first rows for the completion procedure
          (mutually exclusive with [steps]) *)
  edits : edit list;
}

val expected_legal : t -> bool
(** Completion-produced and unedited: if this materializes at all, the
    legality test must accept it — a rejection is a finding. *)

val to_string : t -> string
(** Line-based text format, stable for corpus files. *)

val of_string : string -> (t, string) result

val materialize : Inl.context -> t -> (Mat.t, string) result
(** Build the matrix against a concrete analyzed program.  [Error]
    covers recipe/shape mismatches and failed completion searches — a
    skip for the oracle, never a finding by itself. *)
