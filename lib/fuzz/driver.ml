module Ast = Inl_ir.Ast
module Budget = Inl_diag.Budget
module Watchdog = Inl_diag.Watchdog
module Retry = Inl_diag.Retry
module Omega = Inl_presburger.Omega

type config = {
  seed : int;
  cases : int;
  timeout_ms : int;
  corpus : string option;
  shrink : bool;
}

type report = {
  seed : int;
  cases : int;
  completed : int;
  ok : int;
  skipped : int;
  crash : int;
  divergence : int;
  verdict_mismatch : int;
  timeout : int;
  interrupted : bool;
}

let findings r = r.crash + r.divergence + r.verdict_mismatch + r.timeout

let summary_line r =
  Printf.sprintf
    "fuzz: seed=%d cases=%d completed=%d ok=%d skipped=%d findings=%d (crash=%d divergence=%d \
     verdict-mismatch=%d timeout=%d)"
    r.seed r.cases r.completed r.ok r.skipped (findings r) r.crash r.divergence
    r.verdict_mismatch r.timeout

(* Generation runs dependence-free code plus the budgeted lint, but a
   hung or crashed generator must still become a case verdict, not a
   harness abort.  The watchdog timeout always propagates (the caller
   owns the deadline). *)
let gen_guarded ~seed ~index stash =
  match Gen.case ~seed ~index with
  | pair ->
      stash := Some pair;
      `Gen pair
  | exception (Watchdog.Timeout _ as e) -> raise e
  | exception Omega.Blowup msg ->
      `Fail
        (Oracle.Finding
           { signature = Oracle.Crash; detail = "generator leaked a solver Blowup: " ^ msg })
  | exception e ->
      `Fail
        (Oracle.Finding
           { signature = Oracle.Crash; detail = "generator raised: " ^ Printexc.to_string e })

(* The per-case rungs of the shared ladder (Inl_diag.Retry): the serve
   policy, except the retry keeps the full deadline — the point of the
   starved rung is that a grinding solver blows up fast, not that it
   gets less time — and nothing is degradable (the oracle already folds
   Blowup into case verdicts; anything else escaping is a harness bug
   that should abort). *)
let retry_policy = { Retry.default_policy with timeout_divisor = 1; min_timeout_ms = 0 }

let run_case (cfg : config) ~index stash =
  (* the stash survives a retry: both attempts derive the identical case
     from (seed, index), so a retry that dies before regenerating it can
     still quarantine attempt one's program *)
  stash := None;
  let base_work = (Omega.get_default_budget ()).Budget.fm_work in
  let attempt ~fm_work ~timeout_ms:_ =
    let saved = Omega.get_default_budget () in
    Omega.set_default_budget (Budget.with_fm_work saved fm_work);
    Fun.protect
      ~finally:(fun () -> Omega.set_default_budget saved)
      (fun () ->
        match gen_guarded ~seed:cfg.seed ~index stash with
        | `Fail outcome -> outcome
        | `Gen (prog, tf) -> Oracle.run_case prog tf)
  in
  match
    Retry.run ~policy:retry_policy ~fm_work:base_work ~timeout_ms:cfg.timeout_ms
      ~degradable:(fun _ -> None)
      attempt
  with
  | Retry.Completed outcome | Retry.Recovered { value = outcome; _ } -> outcome
  | Retry.Exhausted { fm_work = reduced; _ } ->
      Oracle.Finding
        {
          signature = Oracle.Timeout;
          detail =
            Printf.sprintf
              "case exceeded the %d ms watchdog twice (reduced-budget retry at fm_work=%d)"
              cfg.timeout_ms reduced;
        }

let shrink_finding (cfg : config) ~signature prog tf =
  if not cfg.shrink then (prog, tf)
  else
    let oracle p t = Oracle.run_case ~timeout_ms:cfg.timeout_ms p t in
    (* every probe of a timeout finding pays the full timeout *)
    let max_attempts = match signature with Oracle.Timeout -> 6 | _ -> 150 in
    let p, t, _ = Shrink.shrink ~oracle ~signature ~max_attempts prog tf in
    (p, t)

let start_index (cfg : config) =
  match cfg.corpus with
  | None -> Ok 0
  | Some dir -> (
      match Corpus.ensure_dir dir with
      | Error _ as e -> e
      | Ok () -> (
          match Corpus.read_cursor ~dir with
          | Error _ as e -> e
          | Ok None -> Ok 0
          | Ok (Some c) ->
              if c.Corpus.seed <> cfg.seed then
                Error
                  (Printf.sprintf
                     "corpus %s belongs to a campaign seeded with %d, not %d (use a fresh \
                      directory or the original seed)"
                     dir c.Corpus.seed cfg.seed)
              else Ok (min c.Corpus.cases_done cfg.cases)))

let run ?(out = Format.std_formatter) ?(stop = fun () -> false) (cfg : config) =
  match start_index cfg with
  | Error _ as e -> e
  | Ok start ->
      if start > 0 then
        Format.fprintf out "fuzz: resuming at case %d of %d@." (start + 1) cfg.cases;
      let totals =
        ref
          {
            seed = cfg.seed;
            cases = cfg.cases;
            completed = 0;
            ok = 0;
            skipped = 0;
            crash = 0;
            divergence = 0;
            verdict_mismatch = 0;
            timeout = 0;
            interrupted = false;
          }
      in
      let stash = ref None in
      let next = ref start in
      while !next < cfg.cases && not !totals.interrupted do
        (* the stop hook (SIGINT) is consulted only between cases, so an
           interrupt never tears a cursor or quarantine write *)
        if stop () then totals := { !totals with interrupted = true }
        else begin
        let index = !next in
        incr next;
        let outcome = run_case cfg ~index stash in
        (match outcome with
        | Oracle.Pass _ -> totals := { !totals with ok = !totals.ok + 1 }
        | Oracle.Skip _ -> totals := { !totals with skipped = !totals.skipped + 1 }
        | Oracle.Finding { signature; detail } ->
            (totals :=
               match signature with
               | Oracle.Crash -> { !totals with crash = !totals.crash + 1 }
               | Oracle.Divergence -> { !totals with divergence = !totals.divergence + 1 }
               | Oracle.Verdict_mismatch ->
                   { !totals with verdict_mismatch = !totals.verdict_mismatch + 1 }
               | Oracle.Timeout -> { !totals with timeout = !totals.timeout + 1 });
            let where =
              match (!stash, cfg.corpus) with
              | Some (orig_prog, orig_tf), Some dir ->
                  let prog, tf = shrink_finding cfg ~signature orig_prog orig_tf in
                  let base =
                    Corpus.write_finding ~dir ~index ~signature ~detail ~prog ~tf ~orig_prog
                      ~orig_tf
                  in
                  " -> " ^ Filename.concat dir base
              | Some _, None -> " (no corpus directory; not quarantined)"
              | None, _ -> " (case hung or crashed before a program existed; nothing to quarantine)"
            in
            Format.fprintf out "fuzz: case %d: finding %s%s [%s]@." index
              (Oracle.signature_to_string signature)
              where detail);
        totals := { !totals with completed = !totals.completed + 1 };
        (match cfg.corpus with
        | Some dir -> Corpus.write_cursor ~dir { Corpus.seed = cfg.seed; cases_done = index + 1 }
        | None -> ())
        end
      done;
      if !totals.interrupted then
        Format.fprintf out "fuzz: interrupted after case %d of %d; cursor flushed, rerun to resume@."
          (start + !totals.completed) cfg.cases;
      let line = summary_line !totals in
      Format.fprintf out "%s@." line;
      (match cfg.corpus with Some dir -> Corpus.write_summary ~dir line | None -> ());
      Ok !totals

let strip_suffix base =
  match Filename.chop_suffix_opt ~suffix:".inl" base with
  | Some b -> b
  | None -> ( match Filename.chop_suffix_opt ~suffix:".tf" base with Some b -> b | None -> base)

let replay ?(timeout_ms = 0) ?(out = Format.std_formatter) base =
  let base = strip_suffix base in
  match Corpus.load_case ~inl:(base ^ ".inl") ~tf:(base ^ ".tf") with
  | Error _ as e -> e
  | Ok (prog, tf) ->
      let outcome = Oracle.run_case ~timeout_ms prog tf in
      Format.fprintf out "replay %s: %s@." (Filename.basename base)
        (Oracle.outcome_to_string outcome);
      Ok (match outcome with Oracle.Finding _ -> true | Oracle.Pass _ | Oracle.Skip _ -> false)
