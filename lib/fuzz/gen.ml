module Ast = Inl_ir.Ast
module Linexpr = Inl_presburger.Linexpr
module Layout = Inl_instance.Layout
module Diag = Inl_diag.Diag

(* Fixed vocabulary: arities are per-array constants so the dependence
   analyzer never sees the same array at two ranks. *)
let arrays = [ ("A", 2); ("B", 1); ("C", 1); ("D", 2) ]

let loop_names = [| "i"; "j"; "k"; "l"; "m"; "p" |]

let le coeffs c = Linexpr.of_terms coeffs c

(* ---- affine subscripts ---- *)

(* An affine form over the enclosing loop vars (and occasionally N):
   biased toward the identity-like subscripts of real kernels so that
   statements actually conflict and the dependence matrix is non-trivial. *)
let gen_subscript rng (vars : string list) : Ast.affine =
  match vars with
  | [] -> le [] (Rng.range rng 1 2)
  | _ ->
      let v = Rng.pick rng vars in
      let coeff = if Rng.chance rng 5 6 then 1 else Rng.pick rng [ -1; 2 ] in
      let const = if Rng.chance rng 2 3 then 0 else Rng.range rng (-2) 2 in
      let extra =
        if Rng.chance rng 1 6 && List.length vars > 1 then
          let w = Rng.pick rng (List.filter (fun w -> w <> v) vars) in
          [ ((if Rng.bool rng then 1 else -1), w) ]
        else []
      in
      le ((coeff, v) :: extra) const

let gen_aref rng vars : Ast.aref =
  let array, rank = Rng.pick rng arrays in
  { Ast.array; index = List.init rank (fun _ -> gen_subscript rng vars) }

(* ---- right-hand sides ---- *)

let rec gen_expr rng vars depth : Ast.expr =
  let leaf () =
    match Rng.int rng 4 with
    | 0 -> Ast.Econst (float_of_int (Rng.range rng 1 4))
    | 1 when vars <> [] -> Ast.Evar (Rng.pick rng vars)
    | _ -> Ast.Eref (gen_aref rng vars)
  in
  if depth <= 0 || Rng.chance rng 1 3 then leaf ()
  else
    match Rng.int rng 5 with
    | 0 -> Ast.Ecall ("sqrt", [ gen_expr rng vars (depth - 1) ])
    | 1 -> Ast.Ecall ("f", [ gen_expr rng vars (depth - 1); gen_expr rng vars (depth - 1) ])
    | _ ->
        let op = Rng.pick rng [ Ast.Add; Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ] in
        Ast.Ebin (op, gen_expr rng vars (depth - 1), gen_expr rng vars (depth - 1))

let gen_stmt rng vars : Ast.node =
  (* label is a placeholder; the whole program is relabeled afterwards *)
  Ast.Stmt { Ast.label = "S"; lhs = gen_aref rng vars; rhs = gen_expr rng vars 2 }

(* ---- loop bounds ---- *)

(* Triangular shapes ([outer+1..N], [1..outer]) are the paper's bread and
   butter; keep them common but not exclusive. *)
let gen_bounds rng (outer : string list) : Ast.bterm * Ast.bterm =
  let lower =
    match outer with
    | o :: _ when Rng.chance rng 2 5 ->
        if Rng.bool rng then Ast.bterm (le [ (1, o) ] 1) else Ast.bterm_var o
    | _ -> Ast.bterm_int 1
  in
  let upper =
    match outer with
    | o :: _ when Rng.chance rng 1 5 -> Ast.bterm_var o
    | _ -> if Rng.chance rng 1 6 then Ast.bterm (le [ (1, "N") ] (-1)) else Ast.bterm_var "N"
  in
  (lower, upper)

(* ---- program structure ---- *)

(* Free recursion over the motif space; [next_var] keeps loop variables
   globally unique so pipeline steps can name them unambiguously. *)
let rec gen_nodes rng ~depth ~next_var ~(outer : string list) ~(budget : int ref) : Ast.node list =
  let n_children = Rng.range rng 1 (if depth = 0 then 2 else 3) in
  List.concat
    (List.init n_children (fun _ ->
         if !budget <= 0 then []
         else if depth >= 3 || !next_var >= Array.length loop_names || Rng.chance rng 2 5 then begin
           decr budget;
           (* innermost vars first in [outer]: recent binders are the
              likeliest subscripts, like hand-written kernels *)
           [ gen_stmt rng outer ]
         end
         else begin
           let var = loop_names.(!next_var) in
           incr next_var;
           let lower, upper = gen_bounds rng outer in
           let body = gen_nodes rng ~depth:(depth + 1) ~next_var ~outer:(var :: outer) ~budget in
           match body with
           | [] ->
               decr budget;
               [ Ast.simple_loop var lower upper [ gen_stmt rng (var :: outer) ] ]
           | body -> [ Ast.simple_loop var lower upper body ]
         end))

let relabel (prog : Ast.program) : Ast.program =
  let n = ref 0 in
  let rec go node =
    match node with
    | Ast.Stmt s ->
        incr n;
        Ast.Stmt { s with Ast.label = Printf.sprintf "S%d" !n }
    | Ast.Loop l -> Ast.Loop { l with Ast.body = List.map go l.Ast.body }
    | Ast.If (gs, body) -> Ast.If (gs, List.map go body)
    | Ast.Let (v, b, body) -> Ast.Let (v, b, List.map go body)
  in
  { prog with Ast.nest = List.map go prog.Ast.nest }

let candidate rng : Ast.program =
  let next_var = ref 0 and budget = ref (Rng.range rng 1 4) in
  let nest = gen_nodes rng ~depth:0 ~next_var ~outer:[] ~budget in
  relabel { Ast.params = [ "N" ]; nest }

(* The always-valid fallback (the paper's simplified Cholesky): reached
   only if dozens of consecutive candidates fail the post-check. *)
let fallback : Ast.program Lazy.t =
  lazy (Inl_ir.Parser.parse_exn Inl_kernels.Paper_examples.simplified_cholesky)

(* Post-check: structural validity, an instance-vector layout, and no
   errors from the V001-V007 well-formedness lint.  (Warnings — dead
   loops, redundant guards — are legitimate fuzz inputs and stay.) *)
let well_formed (prog : Ast.program) : bool =
  match Ast.validate prog with
  | exception Ast.Invalid _ -> false
  | () -> (
      match Layout.of_program prog with
      | exception Invalid_argument _ -> false
      | layout ->
          Layout.size layout > 0
          && (not (Diag.has_errors (Inl_verify.Lint.run prog)))
          && prog.Ast.nest <> [])

let program rng : Ast.program =
  let rec attempt k =
    if k >= 50 then Lazy.force fallback
    else
      let p = candidate rng in
      if well_formed p then p else attempt (k + 1)
  in
  attempt 0

(* ---- transformation sampling ---- *)

let multi_child_nodes (prog : Ast.program) : (Ast.path * int) list =
  let acc = ref [] in
  let note path n = if n >= 2 then acc := (path, n) :: !acc in
  let rec go path i node =
    match node with
    | Ast.Loop l ->
        let p = path @ [ i ] in
        note p (List.length l.Ast.body);
        List.iteri (go p) l.Ast.body
    | _ -> ()
  in
  note [] (List.length prog.Ast.nest);
  List.iteri (go []) prog.Ast.nest;
  List.rev !acc

let path_spec (path : int list) (perm : int list) : string =
  Printf.sprintf "%s:%s"
    (String.concat "." (List.map string_of_int path))
    (String.concat "," (List.map string_of_int perm))

let gen_step rng (prog : Ast.program) : (string * string) option =
  let vars = Ast.loop_vars prog in
  let labels = List.map (fun (_, (s : Ast.stmt)) -> s.Ast.label) (Ast.stmts_with_paths prog) in
  let nodes = multi_child_nodes prog in
  let reorder_step () =
    match nodes with
    | [] -> None
    | _ ->
        let path, n = Rng.pick rng nodes in
        let perm = Rng.shuffle rng (List.init n Fun.id) in
        Some ("reorder", path_spec path perm)
  in
  if vars = [] then
    (* a loop-less statement chain: reordering is the only loop-free step *)
    reorder_step ()
  else
  let pick_two () =
    let a = Rng.pick rng vars in
    match List.filter (fun v -> v <> a) vars with [] -> None | rest -> Some (a, Rng.pick rng rest)
  in
  match Rng.int rng 6 with
  | 0 -> Option.map (fun (a, b) -> ("interchange", Printf.sprintf "%s,%s" a b)) (pick_two ())
  | 1 -> Some ("reverse", Rng.pick rng vars)
  | 2 -> Some ("scale", Printf.sprintf "%s,%d" (Rng.pick rng vars) (Rng.range rng 2 3))
  | 3 ->
      Option.map
        (fun (t, s) -> ("skew", Printf.sprintf "%s,%s,%d" t s (Rng.pick rng [ -2; -1; 1; 2 ])))
        (pick_two ())
  | 4 when labels <> [] ->
      Some
        ( "align",
          Printf.sprintf "%s,%s,%d" (Rng.pick rng labels) (Rng.pick rng vars)
            (Rng.pick rng [ -2; -1; 1; 2 ]) )
  | _ -> (
      match reorder_step () with
      | None -> Some ("reverse", Rng.pick rng vars)
      | some -> some)

let gen_steps rng prog : (string * string) list =
  List.filter_map (fun _ -> gen_step rng prog) (List.init (Rng.range rng 1 3) Fun.id)

let gen_partial rng (size : int) (loop_pos : int list) : int list list =
  let unit_row () =
    let row = Array.make size 0 in
    let p = Rng.pick rng loop_pos in
    row.(p) <- (if Rng.chance rng 4 5 then 1 else -1);
    (* occasionally a skew-like second entry *)
    if Rng.chance rng 1 4 && List.length loop_pos > 1 then begin
      let q = Rng.pick rng (List.filter (fun q -> q <> p) loop_pos) in
      row.(q) <- Rng.pick rng [ -1; 1 ]
    end;
    Array.to_list row
  in
  List.init (if Rng.chance rng 4 5 then 1 else 2) (fun _ -> unit_row ())

let gen_edits rng (size : int) : Tf.edit list =
  List.init (Rng.range rng 1 2) (fun _ ->
      if Rng.bool rng then Tf.Negate_row (Rng.int rng size)
      else
        Tf.Add_entry
          {
            row = Rng.int rng size;
            col = Rng.int rng size;
            delta = Rng.pick rng [ -2; -1; 1; 2 ];
          })

let sample_tf rng (prog : Ast.program) : Tf.t =
  let layout = Layout.of_program prog in
  let size = Layout.size layout in
  let loop_pos = Layout.loop_positions layout in
  let base =
    if loop_pos <> [] && Rng.chance rng 2 5 then
      { Tf.steps = []; partial = gen_partial rng size loop_pos; edits = [] }
    else { Tf.steps = gen_steps rng prog; partial = []; edits = [] }
  in
  if Rng.chance rng 1 5 then { base with Tf.edits = gen_edits rng size } else base

let case ~seed ~index =
  let rng = Rng.case ~seed ~index in
  let prog = program rng in
  (prog, sample_tf rng prog)
