(* splitmix64: tiny, statistically fine for test generation, and —
   decisive here — a fixed algorithm, so a corpus seed means the same
   case forever. *)

type t = { mutable state : int64 }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  mix t.state

let make seed = { state = mix (Int64.of_int seed) }

(* Case streams must not collide across (seed, index) pairs: whiten the
   seed, then offset by the whitened index. *)
let case ~seed ~index = { state = Int64.add (mix (Int64.of_int seed)) (mix (Int64.of_int (index + 1))) }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be >= 1";
  (* modulo bias is irrelevant at fuzz-generator bounds (tiny vs 2^63) *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int n))

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t k n = int t n < k

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
