module Ast = Inl_ir.Ast
module Diag = Inl_diag.Diag
module Watchdog = Inl_diag.Watchdog
module Omega = Inl_presburger.Omega
module Interp = Inl_interp.Interp
module Verify = Inl_verify.Verify

type signature = Crash | Divergence | Verdict_mismatch | Timeout

let signature_to_string = function
  | Crash -> "crash"
  | Divergence -> "divergence"
  | Verdict_mismatch -> "verdict-mismatch"
  | Timeout -> "timeout"

let signature_of_string = function
  | "crash" -> Some Crash
  | "divergence" -> Some Divergence
  | "verdict-mismatch" -> Some Verdict_mismatch
  | "timeout" -> Some Timeout
  | _ -> None

type outcome =
  | Pass of string
  | Skip of string
  | Finding of { signature : signature; detail : string }

let outcome_to_string = function
  | Pass note -> "pass: " ^ note
  | Skip note -> "skip: " ^ note
  | Finding { signature; detail } ->
      Printf.sprintf "finding %s: %s" (signature_to_string signature) detail

let sizes = [ 2; 3; 4 ]

(* Statement instances at N=4 are bounded by a few hundred for generated
   shapes; six orders of magnitude of headroom still cuts off any
   pathological generated loop long before the wall clock notices. *)
let max_steps = 100_000

let has_code code ds = List.exists (fun (d : Diag.t) -> d.Diag.code = code) ds

(* The interpreter leg: equivalence at every size, first difference wins. *)
let interp_verdict (src : Ast.program) (gen : Ast.program) : (unit, string) result =
  List.fold_left
    (fun acc n ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match Interp.equivalent ~max_steps src gen ~params:[ ("N", n) ] with
          | Ok () -> Ok ()
          | Error d -> Error (Printf.sprintf "stores differ at N=%d: %s" n d)))
    (Ok ()) sizes

let judge (prog : Ast.program) (tf : Tf.t) : outcome =
  let ctx = Inl.analyze prog in
  match Tf.materialize ctx tf with
  | Error msg ->
      (* a failed completion search or a recipe that does not fit this
         program shape is vacuous, not wrong *)
      Skip ("recipe does not materialize: " ^ msg)
  | Ok m -> (
      match Inl.check ctx m with
      | Inl.Legality.Illegal reason ->
          if Tf.expected_legal tf then
            Finding
              {
                signature = Verdict_mismatch;
                detail =
                  "completion produced a matrix the legality test rejects: " ^ reason;
              }
          else Pass "illegal (consistent: nothing to generate)"
      | Inl.Legality.Legal _ -> (
          match Inl.transform ctx m with
          | Error ds when has_code "B501" ds ->
              Skip ("code generation degraded under the resource budget: " ^ Diag.list_to_string ds)
          | Error ds ->
              Finding
                {
                  signature = Verdict_mismatch;
                  detail = "legal matrix failed code generation: " ^ Diag.list_to_string ds;
                }
          | Ok transformed -> (
              (* static translation validation of the generated program *)
              let report = Verify.run ~against:prog transformed in
              let static_errors = Diag.has_errors (Verify.diags report) in
              match (static_errors, interp_verdict prog transformed) with
              | false, Ok () -> Pass "legal, statically validated, interpreter-equivalent"
              | true, Error d ->
                  Finding
                    {
                      signature = Divergence;
                      detail =
                        Printf.sprintf
                          "legality accepted a transformation both other judges refute (%s; %s)"
                          (Diag.list_to_string (Verify.diags report))
                          d;
                    }
              | false, Error d ->
                  Finding
                    {
                      signature = Divergence;
                      detail = "interpreter refutes a legal+validated transformation: " ^ d;
                    }
              | true, Ok () ->
                  Finding
                    {
                      signature = Verdict_mismatch;
                      detail =
                        "static validator refutes an interpreter-equivalent legal \
                         transformation: "
                        ^ Diag.list_to_string (Verify.diags report);
                    })))

let guarded (f : unit -> outcome) : outcome =
  match f () with
  | outcome -> outcome
  | exception Interp.Step_limit n ->
      Skip (Printf.sprintf "interpreter execution bound exceeded (%d steps)" n)
  | exception Omega.Blowup msg ->
      (* every layer above the solver promises to degrade, not raise *)
      Finding
        { signature = Crash; detail = "solver Blowup leaked past the degradation layers: " ^ msg }
  | exception (Watchdog.Timeout _ as e) -> raise e
  | exception e ->
      Finding { signature = Crash; detail = "uncaught exception: " ^ Printexc.to_string e }

let run_case ?(timeout_ms = 0) (prog : Ast.program) (tf : Tf.t) : outcome =
  if timeout_ms <= 0 then guarded (fun () -> judge prog tf)
  else
    match Watchdog.with_timeout ~ms:timeout_ms (fun () -> guarded (fun () -> judge prog tf)) with
    | Ok outcome -> outcome
    | Error _ ->
        Finding
          {
            signature = Timeout;
            detail = Printf.sprintf "case exceeded the %d ms wall-clock watchdog" timeout_ms;
          }
