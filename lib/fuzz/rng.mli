(** Deterministic PRNG for the fuzzing harness (splitmix64).

    Not [Stdlib.Random]: corpus resumability and cross-version replay
    need a generator whose sequence is pinned by this repository, not by
    the OCaml runtime.  Each fuzz case derives its own stream from
    [(campaign seed, case index)], so case [k] is generated identically
    whether the campaign runs straight through or resumes at [k]. *)

type t

val make : int -> t
(** A stream seeded from one integer. *)

val case : seed:int -> index:int -> t
(** The stream of case [index] in the campaign with the given seed;
    independent of every other case's stream. *)

val int : t -> int -> int
(** Uniform in [\[0, n)]; [n >= 1]. *)

val range : t -> int -> int -> int
(** Uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val chance : t -> int -> int -> bool
(** [chance t k n] is true with probability [k/n]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates permutation. *)
