module Ast = Inl_ir.Ast
module Linexpr = Inl_presburger.Linexpr
module Layout = Inl_instance.Layout

(* ---- structural rewrites ----

   All rewrites preserve the source-program shape (loops and statements
   only — shrinking never introduces If/Let), so every shrunk case still
   parses, lays out and replays exactly like a generated one. *)

(* Remove statements whose label fails [keep]; loops left with an empty
   body are pruned recursively. *)
let filter_stmts (prog : Ast.program) (keep : string -> bool) : Ast.program =
  let rec go nodes =
    List.filter_map
      (fun node ->
        match node with
        | Ast.Stmt s -> if keep s.Ast.label then Some node else None
        | Ast.Loop l -> (
            match go l.Ast.body with [] -> None | body -> Some (Ast.Loop { l with Ast.body }))
        | Ast.If (gs, body) -> (
            match go body with [] -> None | body -> Some (Ast.If (gs, body)))
        | Ast.Let (v, b, body) -> (
            match go body with [] -> None | body -> Some (Ast.Let (v, b, body))))
      nodes
  in
  { prog with Ast.nest = go prog.Ast.nest }

(* Drop the loop binding [var] entirely (with its whole subtree). *)
let drop_loop (prog : Ast.program) (var : string) : Ast.program =
  let rec go nodes =
    List.filter_map
      (fun node ->
        match node with
        | Ast.Loop l when l.Ast.var = var -> None
        | Ast.Loop l -> Some (Ast.Loop { l with Ast.body = go l.Ast.body })
        | other -> Some other)
      nodes
  in
  { prog with Ast.nest = go prog.Ast.nest }

let map_loop (prog : Ast.program) (var : string) (f : Ast.loop -> Ast.loop) : Ast.program =
  let rec go nodes =
    List.map
      (fun node ->
        match node with
        | Ast.Loop l when l.Ast.var = var -> Ast.Loop (f { l with Ast.body = go l.Ast.body })
        | Ast.Loop l -> Ast.Loop { l with Ast.body = go l.Ast.body }
        | other -> other)
      nodes
  in
  { prog with Ast.nest = go prog.Ast.nest }

let map_stmt (prog : Ast.program) (label : string) (f : Ast.stmt -> Ast.stmt) : Ast.program =
  let rec go nodes =
    List.map
      (fun node ->
        match node with
        | Ast.Stmt s when s.Ast.label = label -> Ast.Stmt (f s)
        | Ast.Loop l -> Ast.Loop { l with Ast.body = go l.Ast.body }
        | Ast.If (gs, body) -> Ast.If (gs, go body)
        | Ast.Let (v, b, body) -> Ast.Let (v, b, go body)
        | other -> other)
      nodes
  in
  { prog with Ast.nest = go prog.Ast.nest }

(* A shrunk candidate must still be a program the harness can replay. *)
let usable (prog : Ast.program) : bool =
  prog.Ast.nest <> []
  && Ast.stmts_with_paths prog <> []
  && (match Ast.validate prog with () -> true | exception Ast.Invalid _ -> false)
  &&
  match Layout.of_program prog with
  | _ -> true
  | exception Invalid_argument _ -> false

(* ---- candidate reductions, most aggressive first ---- *)

let labels prog = List.map (fun (_, (s : Ast.stmt)) -> s.Ast.label) (Ast.stmts_with_paths prog)

let bound_is lower b =
  match b with
  | { Ast.combine = _; terms = [ { Ast.num; den } ] } ->
      Inl_num.Mpz.to_int den = 1
      && Linexpr.equal num (if lower then Linexpr.of_int 1 else Linexpr.var "N")
  | _ -> false

let simplify_affine (e : Ast.affine) : Ast.affine list =
  (* one candidate per dropped variable, plus dropping the constant *)
  let drops =
    List.map (fun v -> Linexpr.sub e (Linexpr.term (Linexpr.coeff e v) v)) (Linexpr.vars e)
  in
  let no_const =
    if Inl_num.Mpz.is_zero (Linexpr.constant e) then []
    else [ Linexpr.sub e (Linexpr.const (Linexpr.constant e)) ]
  in
  drops @ no_const

let rec first_ref (e : Ast.expr) : Ast.expr option =
  match e with
  | Ast.Eref _ -> Some e
  | Ast.Ebin (_, a, b) -> ( match first_ref a with Some r -> Some r | None -> first_ref b)
  | Ast.Ecall (_, args) -> List.find_map first_ref args
  | _ -> None

let candidates (prog : Ast.program) (tf : Tf.t) : (Ast.program * Tf.t) list =
  let with_prog p = (p, tf) in
  let loop_cuts = List.map (fun v -> with_prog (drop_loop prog v)) (Ast.loop_vars prog) in
  let stmt_cuts =
    List.map (fun l -> with_prog (filter_stmts prog (fun l' -> l' <> l))) (labels prog)
  in
  let tf_cuts =
    (* drop one step / one edit / the last partial row *)
    List.mapi
      (fun i _ -> (prog, { tf with Tf.steps = List.filteri (fun j _ -> j <> i) tf.Tf.steps }))
      tf.Tf.steps
    @ List.mapi
        (fun i _ -> (prog, { tf with Tf.edits = List.filteri (fun j _ -> j <> i) tf.Tf.edits }))
        tf.Tf.edits
    @
    match tf.Tf.partial with
    | _ :: _ :: _ ->
        [ (prog, { tf with Tf.partial = List.filteri (fun j _ -> j < List.length tf.Tf.partial - 1) tf.Tf.partial }) ]
    | _ -> []
  in
  let all_loops =
    let rec loops node acc =
      match node with
      | Ast.Loop l -> l :: List.fold_right loops l.Ast.body acc
      | Ast.If (_, body) | Ast.Let (_, _, body) -> List.fold_right loops body acc
      | Ast.Stmt _ -> acc
    in
    List.fold_right loops prog.Ast.nest []
  in
  let bound_cuts =
    List.concat_map
      (fun (l : Ast.loop) ->
        (if bound_is true l.Ast.lower then []
         else
           [ with_prog (map_loop prog l.Ast.var (fun l -> { l with Ast.lower = Ast.lower_bound [ Ast.bterm_int 1 ] })) ])
        @
        if bound_is false l.Ast.upper then []
        else
          [ with_prog (map_loop prog l.Ast.var (fun l -> { l with Ast.upper = Ast.upper_bound [ Ast.bterm_var "N" ] })) ])
      all_loops
  in
  let rhs_cuts =
    List.concat_map
      (fun lab ->
        [
          (match first_ref ((fun (_, s) -> s.Ast.rhs) (Ast.find_stmt_exn prog lab)) with
          | Some (Ast.Eref _ as r) ->
              [ with_prog (map_stmt prog lab (fun s -> { s with Ast.rhs = r })) ]
          | _ -> []);
          [ with_prog (map_stmt prog lab (fun s -> { s with Ast.rhs = Ast.Econst 1.0 })) ];
        ]
        |> List.concat)
      (labels prog)
  in
  let subscript_cuts =
    List.concat_map
      (fun lab ->
        let _, s = Ast.find_stmt_exn prog lab in
        List.concat
          (List.mapi
             (fun dim e ->
               List.map
                 (fun e' ->
                   with_prog
                     (map_stmt prog lab (fun s ->
                          {
                            s with
                            Ast.lhs =
                              {
                                s.Ast.lhs with
                                Ast.index =
                                  List.mapi
                                    (fun d x -> if d = dim then e' else x)
                                    s.Ast.lhs.Ast.index;
                              };
                          })))
                 (simplify_affine e))
             s.Ast.lhs.Ast.index))
      (labels prog)
  in
  loop_cuts @ stmt_cuts @ tf_cuts @ bound_cuts @ rhs_cuts @ subscript_cuts

let shrink ~oracle ~(signature : Oracle.signature) ~max_attempts (prog : Ast.program)
    (tf : Tf.t) : Ast.program * Tf.t * int =
  let attempts = ref 0 in
  let reproduces p t =
    incr attempts;
    match oracle p t with
    | Oracle.Finding { signature = s; _ } -> s = signature
    | Oracle.Pass _ | Oracle.Skip _ -> false
  in
  let rec fix prog tf =
    if !attempts >= max_attempts then (prog, tf)
    else
      let next =
        List.find_opt
          (fun (p, t) ->
            (p != prog || t != tf)
            && usable p && !attempts < max_attempts && reproduces p t)
          (candidates prog tf)
      in
      match next with Some (p, t) -> fix p t | None -> (prog, tf)
  in
  let prog', tf' = fix prog tf in
  (prog', tf', !attempts)
