module Ast = Inl_ir.Ast
module Pp = Inl_ir.Pp
module Parser = Inl_ir.Parser

type cursor = { seed : int; cases_done : int }

let rec ensure_dir dir =
  match Unix.mkdir dir 0o755 with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      if Sys.is_directory dir then Ok () else Error (dir ^ ": exists and is not a directory")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
      match ensure_dir (Filename.dirname dir) with
      | Error _ as e -> e
      | Ok () -> (
          match Unix.mkdir dir 0o755 with
          | () -> Ok ()
          | exception Unix.Unix_error (e, _, _) ->
              Error (dir ^ ": " ^ Unix.error_message e)))
  | exception Unix.Unix_error (e, _, _) -> Error (dir ^ ": " ^ Unix.error_message e)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* temp + fsync + rename + directory fsync (Inl_diag.Atomicio — the same
   discipline the serve snapshots use), so the visible file is never
   half-written and the replacement is durable even if the campaign is
   SIGKILLed mid-update *)
let write_file_atomic path contents = Inl_diag.Atomicio.write_file_atomic_exn path contents

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let cursor_path dir = Filename.concat dir "cursor"

let read_cursor ~dir =
  let path = cursor_path dir in
  if not (Sys.file_exists path) then Ok None
  else
    let parse line (acc : (int option * int option)) =
      match String.split_on_char ' ' (String.trim line) with
      | [ "seed"; v ] -> (
          match int_of_string_opt v with
          | Some s -> Ok (Some s, snd acc)
          | None -> Error ())
      | [ "done"; v ] -> (
          match int_of_string_opt v with
          | Some d -> Ok (fst acc, Some d)
          | None -> Error ())
      | [ "" ] -> Ok acc
      | _ -> Error ()
    in
    let lines = String.split_on_char '\n' (read_file path) in
    let folded =
      List.fold_left
        (fun acc line -> match acc with Error _ -> acc | Ok a -> parse line a)
        (Ok (None, None))
        lines
    in
    match folded with
    | Ok (Some seed, Some cases_done) when cases_done >= 0 ->
        Ok (Some { seed; cases_done })
    | _ -> Error (path ^ ": unreadable cursor file (delete it to start the campaign over)")

let write_cursor ~dir { seed; cases_done } =
  write_file_atomic (cursor_path dir) (Printf.sprintf "seed %d\ndone %d\n" seed cases_done)

let write_finding_base ~dir ~base ~signature ~detail ~prog ~tf ~orig_prog ~orig_tf =
  let file ext = Filename.concat dir (base ^ ext) in
  write_file (file ".inl") (Pp.program_to_string prog);
  write_file (file ".tf") (Tf.to_string tf);
  write_file (file "-orig.inl") (Pp.program_to_string orig_prog);
  write_file (file "-orig.tf") (Tf.to_string orig_tf);
  write_file (file "-detail.txt")
    (Printf.sprintf "signature: %s\ndetail: %s\nreplay: inltool fuzz --replay %s\n"
       (Oracle.signature_to_string signature)
       detail
       (Filename.concat dir base));
  base

let write_finding ~dir ~index ~signature ~detail ~prog ~tf ~orig_prog ~orig_tf =
  let base = Printf.sprintf "finding-%d-%s" index (Oracle.signature_to_string signature) in
  write_finding_base ~dir ~base ~signature ~detail ~prog ~tf ~orig_prog ~orig_tf

let load_case ~inl ~tf =
  match read_file inl with
  | exception Sys_error msg -> Error msg
  | src -> (
      match Parser.parse src with
      | Error msg -> Error (inl ^ ": " ^ msg)
      | Ok prog -> (
          match read_file tf with
          | exception Sys_error msg -> Error msg
          | spec -> (
              match Tf.of_string spec with
              | Error msg -> Error (tf ^ ": " ^ msg)
              | Ok recipe -> Ok (prog, recipe))))

let write_summary ~dir line = write_file_atomic (Filename.concat dir "summary") (line ^ "\n")
