(** The three-way differential oracle: one fuzz case, one verdict.

    For a case [(program, recipe)] the oracle compares three independent
    judgements of the same transformation: the legality test
    (Definition 6), the static translation validator
    ({!Inl_verify.Verify}, V101-V106), and the interpreter run on small
    concrete parameter bindings.  Any disagreement, crash, leaked
    {!Inl_presburger.Omega.Blowup}, or watchdog timeout is a finding with
    a triage signature; agreement (either "legal and equivalent" or
    "illegal, nothing to compare") passes. *)

module Ast = Inl_ir.Ast

type signature = Crash | Divergence | Verdict_mismatch | Timeout

val signature_to_string : signature -> string
(** ["crash" | "divergence" | "verdict-mismatch" | "timeout"] — the
    stable triage vocabulary used in corpus file names. *)

val signature_of_string : string -> signature option

type outcome =
  | Pass of string  (** the three judges agree; the note says how *)
  | Skip of string
      (** the case is vacuous: the recipe does not materialize against
          this program (failed completion search, step/shape mismatch) or
          a resource budget degraded the comparison *)
  | Finding of { signature : signature; detail : string }

val outcome_to_string : outcome -> string

val sizes : int list
(** Parameter bindings for the interpreter leg ([N] values). *)

val run_case : ?timeout_ms:int -> Ast.program -> Tf.t -> outcome
(** Analyze, materialize, judge.  Never raises: solver blowups that leak
    past the degradation machinery, interpreter errors and any other
    exception are classified as [Crash]; the wall-clock watchdog (when
    [timeout_ms > 0]) converts a hung solver into [Timeout]. *)
