(** On-disk corpus: quarantined findings and the resumable cursor.

    A corpus directory accumulates one replayable pair of files per
    finding — [finding-<case>-<signature>.inl] (the shrunk program) and
    [finding-<case>-<signature>.tf] (the shrunk recipe) — next to the
    pre-shrink originals ([...-orig.inl]/[...-orig.tf]) and a
    [...-detail.txt] triage note containing the oracle detail and the
    exact replay command.  The [cursor] file records how far a seeded
    campaign got; it is written atomically (temp file + rename) after
    every case so an interrupted run resumes at case [k+1]. *)

module Ast = Inl_ir.Ast

type cursor = { seed : int; cases_done : int }

val ensure_dir : string -> (unit, string) result
(** Create the corpus directory (and parents) if missing. *)

val read_cursor : dir:string -> (cursor option, string) result
(** [Ok None] when no campaign has run here yet; [Error] on a mangled
    cursor file (the driver refuses to guess). *)

val write_cursor : dir:string -> cursor -> unit
(** Atomic: the cursor on disk is always either the old or the new
    value, never a torn write. *)

val write_finding :
  dir:string ->
  index:int ->
  signature:Oracle.signature ->
  detail:string ->
  prog:Ast.program ->
  tf:Tf.t ->
  orig_prog:Ast.program ->
  orig_tf:Tf.t ->
  string
(** Quarantine one finding; returns the base name
    [finding-<index>-<signature>]. *)

val write_finding_base :
  dir:string ->
  base:string ->
  signature:Oracle.signature ->
  detail:string ->
  prog:Ast.program ->
  tf:Tf.t ->
  orig_prog:Ast.program ->
  orig_tf:Tf.t ->
  string
(** {!write_finding} with a caller-chosen base name — the corpus bulk
    runner quarantines kernels as [finding-<kernel>-<signature>] in the
    same replayable format. *)

val load_case : inl:string -> tf:string -> (Ast.program * Tf.t, string) result
(** Parse a quarantined pair back for replay. *)

val write_summary : dir:string -> string -> unit
(** Persist the campaign summary line to [<dir>/summary]. *)
