(** Delta-debugging shrinker for failing fuzz cases.

    Greedy reduction to a local minimum: candidate reductions — dropping
    whole loop subtrees, dropping statements (pruning loops left empty),
    resetting bounds to [1..N], zeroing subscript coefficients,
    simplifying right-hand sides, and thinning the transformation recipe
    — are tried in decreasing order of aggressiveness, and a reduction is
    kept only when the re-run oracle reproduces the {e same} triage
    signature.  The oracle is a parameter, so the machinery itself is
    testable against synthetic failure predicates. *)

module Ast = Inl_ir.Ast

val shrink :
  oracle:(Ast.program -> Tf.t -> Oracle.outcome) ->
  signature:Oracle.signature ->
  max_attempts:int ->
  Ast.program ->
  Tf.t ->
  Ast.program * Tf.t * int
(** [shrink ~oracle ~signature ~max_attempts prog tf] returns the reduced
    case and the number of oracle runs spent.  [max_attempts] bounds
    oracle runs (shrinking a timeout finding pays the timeout on every
    probe, so callers pass a small bound there). *)
