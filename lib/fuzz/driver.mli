(** The hardened batch driver behind [inltool fuzz].

    Cases are derived independently from [(seed, index)], so the stream
    is stable under interruption: a campaign resumed from the corpus
    cursor sees exactly the cases the uninterrupted campaign would have,
    starting at the first one not yet done.  Every case runs under the
    wall-clock watchdog (when [timeout_ms > 0]); a timed-out case is
    retried once at a sharply reduced Fourier-Motzkin work budget (a
    grinding solver often degrades quickly when starved) before being
    recorded as a [timeout] finding.  Findings are shrunk, quarantined
    into the corpus directory, and reported on stdout; the summary line
    is deterministic for a given seed and case count. *)

type config = {
  seed : int;
  cases : int;
  timeout_ms : int;  (** per-case wall clock; [<= 0] disables the watchdog *)
  corpus : string option;  (** quarantine + cursor directory *)
  shrink : bool;
}

type report = {
  seed : int;
  cases : int;
  completed : int;  (** cases executed by {e this} invocation *)
  ok : int;
  skipped : int;
  crash : int;
  divergence : int;
  verdict_mismatch : int;
  timeout : int;
  interrupted : bool;
      (** the [stop] hook fired between cases; the cursor is flushed and
          rerunning the same command resumes at the first unfinished
          case.  The CLI maps this to exit 130. *)
}

val findings : report -> int

val summary_line : report -> string
(** ["fuzz: seed=.. cases=.. completed=.. ok=.. skipped=.. findings=..
    (crash=.. divergence=.. verdict-mismatch=.. timeout=..)"] *)

val run : ?out:Format.formatter -> ?stop:(unit -> bool) -> config -> (report, string) result
(** Run (or resume) a campaign.  [Error] is reserved for harness-level
    problems — an unusable corpus directory or a cursor recorded under a
    different seed; case-level misbehaviour of any kind becomes a
    finding, never an [Error].  [stop] (default never) is polled between
    cases; when it returns [true] the campaign winds down cleanly with
    [interrupted = true] — the SIGINT hook. *)

val replay : ?timeout_ms:int -> ?out:Format.formatter -> string -> (bool, string) result
(** [replay base] re-runs the quarantined case [base.inl]/[base.tf]
    (a trailing [.inl]/[.tf] on [base] is accepted and stripped) and
    prints the oracle outcome; [Ok true] when the finding reproduces. *)
