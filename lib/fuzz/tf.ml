module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Mpz = Inl_num.Mpz
module Diag = Inl_diag.Diag

type edit = Negate_row of int | Add_entry of { row : int; col : int; delta : int }

type t = { steps : (string * string) list; partial : int list list; edits : edit list }

let expected_legal t = t.partial <> [] && t.edits = []

(* ---- text format ----

     tf v1
     step interchange I,J
     row 0,0,1,0
     edit negrow 2
     edit add 1,3,-1

   Lines are independent; '#' starts a comment.  Everything round-trips
   byte-exactly, which the corpus relies on. *)

let ints_to_spec ns = String.concat "," (List.map string_of_int ns)

let to_string t =
  let b = Buffer.create 128 in
  Buffer.add_string b "tf v1\n";
  List.iter (fun (kind, spec) -> Buffer.add_string b (Printf.sprintf "step %s %s\n" kind spec)) t.steps;
  List.iter (fun row -> Buffer.add_string b (Printf.sprintf "row %s\n" (ints_to_spec row))) t.partial;
  List.iter
    (fun e ->
      Buffer.add_string b
        (match e with
        | Negate_row r -> Printf.sprintf "edit negrow %d\n" r
        | Add_entry { row; col; delta } -> Printf.sprintf "edit add %d,%d,%d\n" row col delta))
    t.edits;
  Buffer.contents b

let parse_ints s =
  let parts = String.split_on_char ',' (String.trim s) in
  try Ok (List.map (fun p -> int_of_string (String.trim p)) parts)
  with Failure _ -> Error (Printf.sprintf "bad integer list %S" s)

let of_string src : (t, string) result =
  let lines = String.split_on_char '\n' src in
  let strip l = match String.index_opt l '#' with Some i -> String.sub l 0 i | None -> l in
  let rec go acc = function
    | [] ->
        Ok
          {
            steps = List.rev acc.steps;
            partial = List.rev acc.partial;
            edits = List.rev acc.edits;
          }
    | line :: rest -> (
        let line = String.trim (strip line) in
        if line = "" || line = "tf v1" then go acc rest
        else
          match String.split_on_char ' ' line with
          | "step" :: kind :: spec ->
              go { acc with steps = (kind, String.concat " " spec) :: acc.steps } rest
          | [ "row"; spec ] -> (
              match parse_ints spec with
              | Ok row -> go { acc with partial = row :: acc.partial } rest
              | Error e -> Error e)
          | [ "edit"; "negrow"; r ] -> (
              match int_of_string_opt r with
              | Some r -> go { acc with edits = Negate_row r :: acc.edits } rest
              | None -> Error (Printf.sprintf "bad edit line %S" line))
          | [ "edit"; "add"; spec ] -> (
              match parse_ints spec with
              | Ok [ row; col; delta ] ->
                  go { acc with edits = Add_entry { row; col; delta } :: acc.edits } rest
              | Ok _ | Error _ -> Error (Printf.sprintf "bad edit line %S" line))
          | _ -> Error (Printf.sprintf "unrecognized transformation line %S" line))
  in
  go { steps = []; partial = []; edits = [] } lines

(* ---- materialization ---- *)

let apply_edits (m : Mat.t) (edits : edit list) : (Mat.t, string) result =
  let m = Mat.copy m in
  let rows = Mat.rows m and cols = Mat.cols m in
  let rec go = function
    | [] -> Ok m
    | Negate_row r :: rest ->
        if r < 0 || r >= rows then Error (Printf.sprintf "edit negrow %d out of range" r)
        else begin
          for c = 0 to cols - 1 do
            Mat.set m r c (Mpz.neg (Mat.get m r c))
          done;
          go rest
        end
    | Add_entry { row; col; delta } :: rest ->
        if row < 0 || row >= rows || col < 0 || col >= cols then
          Error (Printf.sprintf "edit add %d,%d out of range" row col)
        else begin
          Mat.set m row col (Mpz.add (Mat.get m row col) (Mpz.of_int delta));
          go rest
        end
  in
  go edits

let materialize (ctx : Inl.context) (t : t) : (Mat.t, string) result =
  let base =
    match (t.partial, t.steps) with
    | [], [] -> Ok (Inl.Tmat.identity ctx.Inl.layout)
    | _ :: _, _ :: _ -> Error "a recipe cannot mix completion rows with pipeline steps"
    | partial, [] ->
        let size = Inl.Layout.size ctx.Inl.layout in
        if List.exists (fun r -> List.length r <> size) partial then
          Error
            (Printf.sprintf "partial row length does not match the layout size (%d)" size)
        else (
          match Inl.complete_result ctx ~partial:(List.map Vec.of_int_list partial) with
          | Ok m -> Ok m
          | Error ds -> Error (Diag.list_to_string ds))
    | [], steps -> (
        let parsed =
          List.fold_left
            (fun acc (kind, spec) ->
              match acc with
              | Error _ -> acc
              | Ok ss -> (
                  match Inl.Pipeline.step_of_spec ~kind spec with
                  | Ok s -> Ok (s :: ss)
                  | Error e -> Error e))
            (Ok []) steps
        in
        match parsed with
        | Error e -> Error e
        | Ok ss -> (
            match Inl.pipeline ctx (List.rev ss) with
            | Ok m -> Ok m
            | Error ds -> Error (Diag.list_to_string ds)))
  in
  match base with Error _ as e -> e | Ok m -> apply_edits m t.edits
