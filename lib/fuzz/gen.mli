(** Seeded random generation of well-formed imperfectly nested loop
    programs and of transformation recipes to throw at them.

    Programs are built directly as ASTs from the paper's motifs —
    perfect nests, Cholesky-like statement-then-inner-loop blocks,
    LU-like sequences of sibling nests, triangular bounds — over a small
    fixed array vocabulary with affine subscripts.  Every emitted program
    passes {!Inl_ir.Ast.validate}, admits an instance-vector layout, and
    is clean under the V001-V007 well-formedness lint (no errors); a
    generation attempt that fails the post-check is discarded and
    retried from the same stream, so the mapping from [(seed, index)] to
    the emitted case stays deterministic. *)

module Ast = Inl_ir.Ast

val program : Rng.t -> Ast.program
(** One well-formed program (retries internally; falls back to a fixed
    known-good kernel if the stream is persistently unlucky). *)

val sample_tf : Rng.t -> Ast.program -> Tf.t
(** A transformation recipe for the given program: a random pipeline of
    named steps (possibly illegal), completion from random partial first
    rows (expected legal), or either followed by raw matrix edits
    (possibly ill-formed). *)

val case : seed:int -> index:int -> Ast.program * Tf.t
(** The deterministic case at [(seed, index)] — the unit of campaign
    work, resume, and replay. *)
