module Q = Inl_num.Q
module Mpz = Inl_num.Mpz
module Ast = Inl_ir.Ast
module Pp = Inl_ir.Pp
module Linexpr = Inl_presburger.Linexpr
module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Gauss = Inl_linalg.Gauss
module Layout = Inl_instance.Layout
module Diag = Inl_diag.Diag

type cls = Temporal | Spatial of int | NoReuse | Unknown

type ref_sig = { array : string; text : string; is_write : bool; classes : cls array }

type stmt_sig = {
  label : string;
  depth : int;
  loops : string list;
  singular : bool;
  truncated : bool;
  refs : ref_sig list;
}

type t = { line_elems : int; stmts : stmt_sig list }

let collect_refs (stmt : Ast.stmt) : Ast.aref list =
  let rec go acc = function
    | Ast.Eref r -> r :: acc
    | Ast.Econst _ | Ast.Evar _ -> acc
    | Ast.Ebin (_, a, b) -> go (go acc a) b
    | Ast.Ecall (_, args) -> List.fold_left go acc args
  in
  stmt.Ast.lhs :: List.rev (go [] stmt.Ast.rhs)

(* ---- classification ---- *)

(* A rational column of T_S^-1, scaled to the primitive integer vector
   pointing the same way: clear denominators, divide by the gcd.  For
   unimodular T_S this is the identity (integer columns of gcd 1), so
   the score below reproduces the original static tier exactly there. *)
let primitive_col (inv : Gauss.qmat) ~k p : Vec.t =
  let col = Array.init k (fun i -> inv.(i).(p)) in
  let l = Array.fold_left (fun acc q -> Mpz.lcm acc (Q.den q)) Mpz.one col in
  let v = Array.map (fun q -> Mpz.mul (Q.num q) (fst (Mpz.divmod l (Q.den q)))) col in
  let g = Vec.gcd v in
  if Mpz.is_zero g || Mpz.is_one g then v
  else Array.map (fun x -> fst (Mpz.divmod x g)) v

(* Classify one reference along one direction of the original iteration
   space.  [vars] are the statement's loop variables outer-to-inner
   (the coordinate order of [d]); subscript deltas are exact. *)
let classify_ref ~line_elems (vars : string list) (d : Vec.t) (r : Ast.aref) : cls =
  let deltas =
    List.map
      (fun sub ->
        let acc = ref Mpz.zero in
        List.iteri
          (fun i v -> acc := Mpz.add !acc (Mpz.mul (Linexpr.coeff sub v) d.(i)))
          vars;
        !acc)
      r.Ast.index
  in
  match List.rev deltas with
  | [] -> Temporal (* scalar: always the same cell *)
  | last :: outer ->
      if Mpz.is_zero last && List.for_all Mpz.is_zero outer then Temporal
      else if List.for_all Mpz.is_zero outer then (
        match Mpz.to_int_opt (Mpz.abs last) with
        | Some s when s < line_elems -> Spatial s
        | _ -> NoReuse)
      else NoReuse

let ref_text (r : Ast.aref) = Format.asprintf "%a" Pp.pp_aref r

let mk_refs refs classes_of =
  List.mapi
    (fun i (r : Ast.aref) ->
      { array = r.Ast.array; text = ref_text r; is_write = i = 0; classes = classes_of r })
    refs

(* One statement's signature against a checked block structure.  The
   per-statement matrix is canonicalized first: classes only depend on
   the directions of T_S^-1's columns, which the row-canonical form
   preserves (Inl.Perstmt.canonical_rows). *)
let stmt_signature ~line_elems (st : Inl.Blockstruct.t) (si : Layout.stmt_info) : stmt_sig =
  let label = si.Layout.label in
  let vars = List.map (fun (_, (l : Ast.loop)) -> l.Ast.var) si.Layout.loops in
  let loops =
    List.map
      (fun (_, (l : Ast.loop)) -> l.Ast.var)
      (Inl.Blockstruct.new_stmt_info st label).Layout.loops
  in
  let refs = collect_refs si.Layout.stmt in
  let per = Inl.Perstmt.of_structure st label in
  let k = Mat.rows per.Inl.Perstmt.matrix in
  if k = 0 then
    { label; depth = 0; loops; singular = false; truncated = false;
      refs = mk_refs refs (fun _ -> [||]) }
  else
    let canon = Inl.Perstmt.canonical_rows per.Inl.Perstmt.matrix in
    match Gauss.inverse canon with
    | None ->
        { label; depth = k; loops; singular = true; truncated = false;
          refs = mk_refs refs (fun _ -> Array.make k Unknown) }
    | Some inv ->
        let dirs = Array.init k (fun p -> primitive_col inv ~k p) in
        { label; depth = k; loops; singular = false; truncated = false;
          refs =
            mk_refs refs (fun r ->
                Array.map (fun d -> classify_ref ~line_elems vars d r) dirs) }

let truncated_stmt (si : Layout.stmt_info) ~loops : stmt_sig =
  let k = List.length si.Layout.loops in
  { label = si.Layout.label; depth = k; loops; singular = false; truncated = true;
    refs = mk_refs (collect_refs si.Layout.stmt) (fun _ -> Array.make k Unknown) }

let stmt_work (si : Layout.stmt_info) : int =
  List.length (collect_refs si.Layout.stmt) * max 1 (List.length si.Layout.loops)

let compute ~line_elems ~work_budget (ctx : Inl.context) (st : Inl.Blockstruct.t) : t =
  let remaining = ref (match work_budget with None -> max_int | Some b -> max 0 b) in
  let stmts =
    List.map
      (fun (si : Layout.stmt_info) ->
        let loops =
          List.map
            (fun (_, (l : Ast.loop)) -> l.Ast.var)
            (Inl.Blockstruct.new_stmt_info st si.Layout.label).Layout.loops
        in
        let w = stmt_work si in
        if w > !remaining then truncated_stmt si ~loops
        else begin
          remaining := !remaining - w;
          stmt_signature ~line_elems st si
        end)
      ctx.Inl.layout.Layout.stmts
  in
  { line_elems; stmts }

(* ---- the process-wide memo ---- *)

let memo : t Memo.t = Memo.create ~max_entries:4096 ()

let set_memo_enabled b = Memo.set_enabled memo b
let memo_enabled () = Memo.enabled memo
let memo_stats () = Memo.stats memo
let clear_memo () = Memo.clear memo

(* The memo key must determine the stored signature bit-for-bit: the
   canonical per-statement matrices (classes depend on nothing else of
   the transformation), the rows they were read from (the rendered loop
   names depend on the positions), and the access matrices — per
   subscript, the coefficients of the statement's own iterators (offsets
   and parameters never reach a delta). *)
let memo_key ~line_elems (ctx : Inl.context) (st : Inl.Blockstruct.t) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "v1;le=%d" line_elems);
  List.iter
    (fun (si : Layout.stmt_info) ->
      let vars = List.map (fun (_, (l : Ast.loop)) -> l.Ast.var) si.Layout.loops in
      let per = Inl.Perstmt.of_structure st si.Layout.label in
      Buffer.add_string b (Printf.sprintf ";S=%s;rows=" si.Layout.label);
      List.iter (fun r -> Buffer.add_string b (string_of_int r ^ ",")) per.Inl.Perstmt.new_loop_rows;
      Buffer.add_string b ";T=";
      Array.iter
        (fun row ->
          Array.iter (fun x -> Buffer.add_string b (Mpz.to_string x ^ ",")) row;
          Buffer.add_char b '|')
        (Inl.Perstmt.canonical_rows per.Inl.Perstmt.matrix);
      Buffer.add_string b ";R=";
      List.iter
        (fun (r : Ast.aref) ->
          Buffer.add_string b (r.Ast.array ^ "(");
          List.iter
            (fun sub ->
              List.iter
                (fun v -> Buffer.add_string b (Mpz.to_string (Linexpr.coeff sub v) ^ ","))
                vars;
              Buffer.add_char b ';')
            r.Ast.index;
          Buffer.add_string b ")")
        (collect_refs si.Layout.stmt))
    ctx.Inl.layout.Layout.stmts;
  Buffer.contents b

let signature ?(line_elems = 8) ?work_budget (ctx : Inl.context) (st : Inl.Blockstruct.t) : t =
  match work_budget with
  | Some _ -> compute ~line_elems ~work_budget ctx st
  | None ->
      Memo.memo memo (memo_key ~line_elems ctx st) (fun () ->
          compute ~line_elems ~work_budget:None ctx st)

(* ---- canonical key, comparisons ---- *)

let cls_key = function
  | Temporal -> "t"
  | Spatial s -> "s" ^ string_of_int s
  | NoReuse -> "n"
  | Unknown -> "u"

let ref_key (r : ref_sig) = String.concat "" (List.map cls_key (Array.to_list r.classes))

let key (t : t) : string =
  Printf.sprintf "le%d|%s" t.line_elems
    (String.concat "|"
       (List.map
          (fun s ->
            Printf.sprintf "d%d:%s" s.depth
              (String.concat ","
                 (List.sort String.compare (List.map ref_key s.refs))))
          t.stmts))

let compare a b = String.compare (key a) (key b)
let equal a b = compare a b = 0

(* ---- the score ---- *)

(* Stand-in trip count per loop level: only the relative weighting of
   statement depths matters, not the value. *)
let nominal_trip = 16.0

let cls_cost ~line_elems = function
  | Temporal -> 0.0
  | Spatial s -> float_of_int s /. float_of_int line_elems
  | NoReuse | Unknown -> 1.0

let innermost (s : stmt_sig) (r : ref_sig) : cls =
  if s.depth = 0 then Temporal else r.classes.(s.depth - 1)

let score (t : t) : float =
  List.fold_left
    (fun acc s ->
      if s.depth = 0 then acc
      else
        let weight = nominal_trip ** float_of_int s.depth in
        acc
        +. weight
           *. List.fold_left
                (fun a r -> a +. cls_cost ~line_elems:t.line_elems (innermost s r))
                0.0 s.refs)
    0.0 t.stmts

let static_score ?line_elems (ctx : Inl.context) (st : Inl.Blockstruct.t) : float =
  score (signature ?line_elems ctx st)

(* ---- the depth-weighted score ----

   [score] reads only the innermost class of each reference, which makes
   it blind to outer-dimension reuse: jki and kji matrix multiply tie
   (both stream one reference innermost) even though jki's streaming
   reference is spatial one loop further out while kji's is not.  The
   weighted cost keeps the innermost class authoritative and lets an
   outer dimension's reuse reduce the charge with a geometric discount
   [gamma^distance]: a class [c] at distance [q] from the innermost
   position contributes cost [1 - (1 - cls_cost c) * gamma^q], and the
   reference is charged the cheapest dimension.  At [q = 0] this is
   exactly [cls_cost c], so references whose best class is innermost —
   every reference the original score ranked — are charged identically;
   only ties in the innermost-only model can split. *)

let gamma = 0.5

let ref_cost_weighted ~line_elems (s : stmt_sig) (r : ref_sig) : float =
  if s.depth = 0 then 0.0
  else begin
    let best = ref infinity in
    Array.iteri
      (fun p c ->
        let discount = gamma ** float_of_int (s.depth - 1 - p) in
        let cost = 1.0 -. ((1.0 -. cls_cost ~line_elems c) *. discount) in
        if cost < !best then best := cost)
      r.classes;
    if !best = infinity then 1.0 else !best
  end

let weighted_score (t : t) : float =
  List.fold_left
    (fun acc s ->
      if s.depth = 0 then acc
      else
        let weight = nominal_trip ** float_of_int s.depth in
        acc
        +. weight
           *. List.fold_left
                (fun a r -> a +. ref_cost_weighted ~line_elems:t.line_elems s r)
                0.0 s.refs)
    0.0 t.stmts

let weighted_static_score ?line_elems (ctx : Inl.context) (st : Inl.Blockstruct.t) : float =
  weighted_score (signature ?line_elems ctx st)

let unknown_refs (t : t) : int =
  List.fold_left
    (fun acc s ->
      if s.depth = 0 then acc
      else acc + List.length (List.filter (fun r -> innermost s r = Unknown) s.refs))
    0 t.stmts

let truncated_stmts (t : t) : int =
  List.length (List.filter (fun s -> s.truncated) t.stmts)

(* ---- the analyze report ---- *)

type report = { signature : t; score : float; weighted : float; diags : Diag.t list }

let uniq_texts refs = List.sort_uniq String.compare (List.map (fun r -> r.text) refs)

let analyze ?line_elems ?work_budget (ctx : Inl.context) (st : Inl.Blockstruct.t) : report =
  let sg = signature ?line_elems ?work_budget ctx st in
  let diags = ref [] in
  let warn code fmt =
    Format.kasprintf
      (fun m -> diags := Diag.warning ~code ~phase:Diag.Analysis m :: !diags)
      fmt
  in
  List.iter
    (fun s ->
      if s.truncated then ()
      else if s.singular then
        warn "U901"
          "statement %s: singular per-statement transformation (rank < %d); reuse unknown, \
           scored pessimistically until augmentation assigns the missing loops"
          s.label s.depth
      else if s.depth > 0 then begin
        let inner_loop = List.nth_opt s.loops (s.depth - 1) in
        let inner_name = match inner_loop with Some v -> v | None -> "?" in
        let streaming = List.filter (fun r -> innermost s r = NoReuse) s.refs in
        (match uniq_texts streaming with
        | [] -> ()
        | texts ->
            warn "U101"
              "statement %s: no temporal or spatial reuse in the innermost loop %s for %s \
               (a new cache line every iteration)"
              s.label inner_name
              (String.concat ", " texts));
        List.iteri
          (fun p loop ->
            if p < s.depth - 1 then
              let hoistable =
                List.filter
                  (fun r -> innermost s r = NoReuse && r.classes.(p) = Temporal)
                  s.refs
              in
              match uniq_texts hoistable with
              | [] -> ()
              | texts ->
                  warn "U102"
                    "statement %s: loop %s carries temporal reuse for %s; permuting it \
                     innermost would hoist the reuse"
                    s.label loop
                    (String.concat ", " texts))
          s.loops
      end)
    sg.stmts;
  (match truncated_stmts sg with
  | 0 -> ()
  | n ->
      warn "U902"
        "reuse work budget exhausted: %d of %d statement(s) unclassified and scored \
         pessimistically (raise --work or --budget)"
        n (List.length sg.stmts));
  { signature = sg; score = score sg; weighted = weighted_score sg; diags = List.rev !diags }

let cls_to_string = function
  | Temporal -> "temporal"
  | Spatial s -> Printf.sprintf "spatial(%d)" s
  | NoReuse -> "none"
  | Unknown -> "unknown"

let render (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "reuse signature (cache line = %d elements):\n" r.signature.line_elems);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%s: depth %d  loops [%s]%s\n" s.label s.depth
           (String.concat "; " s.loops)
           (if s.singular then "  (singular T_S)"
            else if s.truncated then "  (budget exhausted)"
            else ""));
      List.iter
        (fun rf ->
          Buffer.add_string b
            (Printf.sprintf "  %-5s %-14s %s\n"
               (if rf.is_write then "write" else "read")
               rf.text
               (if s.depth = 0 then "scalar context (depth 0)"
                else
                  String.concat "  "
                    (List.map2
                       (fun loop c -> loop ^ ":" ^ cls_to_string c)
                       s.loops
                       (Array.to_list rf.classes)))))
        s.refs)
    r.signature.stmts;
  Buffer.add_string b (Printf.sprintf "static score: %.3f (lower is better)\n" r.score);
  Buffer.add_string b
    (Printf.sprintf "weighted score: %.3f (outer-dimension reuse discounted by %g per level)\n"
       r.weighted gamma);
  Buffer.contents b
