(** Static reuse-vocabulary analysis of transformed loop nests.

    Implements a Kong-Pouchet-style performance vocabulary (arXiv
    1811.06043) on top of the paper's per-statement transformations
    (Definition 7): for a statement [S] with non-singular [T_S], one
    step of the [p]-th transformed loop moves the original iteration
    vector along the [p]-th column of [T_S^-1].  Every array reference's
    subscripts are affine in the original iterators, so the per-step
    subscript delta along each transformed loop is exact integer
    arithmetic, and each reference is classified {e per transformed loop
    dimension} as

    - {!Temporal} — every subscript invariant (the same cell each
      iteration),
    - [Spatial s] — only the last (fastest-varying, row-major) subscript
      moves, by [0 < s < line_elems] elements (same cache line for
      [line_elems/s] iterations),
    - {!NoReuse} — a new line per iteration (streaming or worse),
    - {!Unknown} — [T_S] singular (augmentation will add loops whose
      locality is not determined yet) or the work budget ran out.

    Directions are normalized to primitive integer vectors, so the
    classes — and the {e reuse signature} folding them per statement —
    are invariant under schedule-preserving row scaling (and row
    negation) of the transformation: locality-equivalent candidates
    collapse onto one signature, which is what lets the search score an
    equivalence class once and simulate one representative per class.
    Signatures are memoized process-wide ({!Memo}, mirroring the Omega
    projection cache) keyed on {!Inl.Perstmt.canonical_rows} of every
    [T_S] plus the access matrices, so re-scoring a known class is a
    table lookup from any worker domain.

    The numeric {!score} subsumes the search's original static cost
    tier: identical weights (a nominal trip count of 16 per loop depth)
    and identical per-reference costs ([0] temporal, [s/line_elems]
    spatial, [1] otherwise; singular statements charge [1] per
    reference), so rankings pinned before this module existed are
    preserved for unimodular candidates. *)

module Ast = Inl_ir.Ast
module Diag = Inl_diag.Diag

type cls = Temporal | Spatial of int  (** stride in elements *) | NoReuse | Unknown

type ref_sig = {
  array : string;
  text : string;  (** the reference as written, e.g. ["A(I2,K)"] *)
  is_write : bool;
  classes : cls array;
      (** one class per transformed loop dimension, outermost first;
          length = the statement's depth *)
}

type stmt_sig = {
  label : string;
  depth : int;
  loops : string list;
      (** the statement's loop variables in transformed order (names are
          the source loops' — code generation renames later) *)
  singular : bool;  (** [T_S] singular: every class is {!Unknown} *)
  truncated : bool;  (** work budget ran out: every class is {!Unknown} *)
  refs : ref_sig list;  (** left-hand side first, then right-hand side in
                            evaluation order *)
}

type t = { line_elems : int; stmts : stmt_sig list }

val collect_refs : Ast.stmt -> Ast.aref list
(** The statement's array references: left-hand side first, then every
    reference of the right-hand side in evaluation order. *)

val signature : ?line_elems:int -> ?work_budget:int -> Inl.context -> Inl.Blockstruct.t -> t
(** The reuse signature of a checked block structure.  [line_elems]
    (default 8 = 64-byte lines of 8-byte elements) is the cache line
    size in array elements.  [work_budget] caps the classification work
    at one unit per reference x dimension; statements past the cap come
    back {!stmt_sig.truncated} with {!Unknown} classes (budget-aware
    analyses pass the Fourier-Motzkin work allowance here).  Unbudgeted
    signatures are memoized process-wide; budgeted ones are not (the
    stored value would depend on the budget). *)

val key : t -> string
(** Canonical compact form: per statement (in program order) the depth
    and the {e sorted multiset} of per-reference class strings — labels,
    array names and reference order are folded away, so two signatures
    share a key exactly when every statement has the same shape of reuse.
    Equal keys imply equal {!score}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Both are {!key} comparisons. *)

val score : t -> float
(** The vectorized static score, lower is better (see the module
    preamble for the exact model).  A deterministic function of the
    signature. *)

val static_score : ?line_elems:int -> Inl.context -> Inl.Blockstruct.t -> float
(** [score] of [signature] — the drop-in replacement for the search's
    original static cost tier. *)

val weighted_score : t -> float
(** Depth-weighted variant of {!score}: each reference is charged its
    cheapest dimension, where a class at distance [q] outward from the
    innermost position costs [1 - (1 - cls_cost) * 0.5^q].  At [q = 0]
    this equals the innermost charge, and the discount halves per level
    outward, so a reference's weighted charge never exceeds its
    innermost charge.  References whose best reuse sits in an outer
    dimension get cheaper — which is the point: it closes the
    documented jki blind spot (middle-loop spatial reuse the
    innermost-only model cannot see), at the cost that orderings under
    {!score} are not always preserved when references differ in where
    their reuse lives.  [test/test_reuse.ml] keeps the weighting honest
    against the cache simulator.  Deterministic function of
    the signature, same units as {!score}, lower is better. *)

val weighted_static_score : ?line_elems:int -> Inl.context -> Inl.Blockstruct.t -> float
(** [weighted_score] of [signature] — the search's ranking tier. *)

val unknown_refs : t -> int
(** References whose innermost class is {!Unknown} — the ones charged
    the pessimistic cost [1] by {!score}.  Non-zero means the score is
    degraded (the search surfaces this once per run as warning [S904]). *)

val truncated_stmts : t -> int

(** {2 The process-wide signature memo} *)

val set_memo_enabled : bool -> unit
val memo_enabled : unit -> bool
val memo_stats : unit -> Memo.stats
val clear_memo : unit -> unit

(** {2 The [inltool analyze --reuse] report} *)

type report = { signature : t; score : float; weighted : float; diags : Diag.t list }
(** [diags] follow the {!Inl_diag} conventions (phase [Analysis]):
    warnings [U101] (a statement's innermost loop carries no temporal or
    spatial reuse for some reference — streaming access), [U102] (an
    outer loop carries temporal reuse for a reference that streams
    innermost — permuting it innermost would hoist the reuse), [U901]
    (singular [T_S], classes unknown) and [U902] (work budget exhausted,
    statements unclassified).  No errors are ever produced: degraded
    analysis is exit code 2, per the driver's contract. *)

val analyze : ?line_elems:int -> ?work_budget:int -> Inl.context -> Inl.Blockstruct.t -> report

val render : report -> string
(** Human rendering of the per-statement, per-dimension classes plus the
    static score — the body of [inltool analyze --reuse]. *)
