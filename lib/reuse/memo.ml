(* The generic two-generation memo now lives in Inl_diag (so the core
   legality layer can share it); this alias keeps the established
   Inl_reuse.Memo name working for existing callers. *)
include Inl_diag.Memo
