(* Crash-safe snapshot files for the serve daemon.

   A snapshot is a one-line header followed by an opaque payload:

     INLSNAP1 <kind> v<version> <payload-bytes> <fnv64-hex>\n
     <payload>

   The header pins four things a restarted daemon must check before it
   trusts a byte of the payload: the magic (is this a snapshot at all),
   the kind (is it the *right* snapshot — a cache dump is not a corpus
   cursor), the format version (can this build read it), and the
   FNV-1a 64 checksum over the payload (did all of it reach the disk).
   Writes go through Inl_diag.Atomicio, so the file on disk is always a
   complete snapshot — old or new — and a SIGKILL between checkpoint
   and rename costs at most the latest delta, never the file. *)

let magic = "INLSNAP1"

(* FNV-1a, 64-bit.  Not cryptographic — the threat model is torn or
   bit-rotted files, not an adversary with write access to the state
   directory (who could simply replace the snapshot wholesale). *)
let fnv64 (s : string) : int64 =
  let offset_basis = 0xcbf29ce484222325L and prime = 0x100000001b3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let header ~kind ~version payload =
  Printf.sprintf "%s %s v%d %d %Lx\n" magic kind version (String.length payload) (fnv64 payload)

let save ~path ~kind ~version payload =
  if String.contains kind ' ' then invalid_arg "Snapshot.save: kind must not contain spaces";
  Inl_diag.Atomicio.write_file_atomic path (header ~kind ~version payload ^ payload)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path ~kind ~version =
  if not (Sys.file_exists path) then Ok None
  else
    match read_file path with
    | exception Sys_error msg -> Error msg
    | raw -> (
        let corrupt what = Error (Printf.sprintf "%s: corrupt snapshot (%s)" path what) in
        match String.index_opt raw '\n' with
        | None -> corrupt "no header line"
        | Some nl -> (
            let header = String.sub raw 0 nl in
            let body = String.sub raw (nl + 1) (String.length raw - nl - 1) in
            match String.split_on_char ' ' header with
            | [ m; k; v; len; sum ] -> (
                if m <> magic then corrupt "bad magic"
                else if k <> kind then
                  corrupt (Printf.sprintf "kind %S, expected %S" k kind)
                else
                  match
                    ( (if String.length v > 1 && v.[0] = 'v' then
                         int_of_string_opt (String.sub v 1 (String.length v - 1))
                       else None),
                      int_of_string_opt len,
                      Int64.of_string_opt ("0x" ^ sum) )
                  with
                  | Some file_version, _, _ when file_version <> version ->
                      corrupt
                        (Printf.sprintf "format version %d, this build reads %d" file_version
                           version)
                  | Some _, Some n, Some expected ->
                      if String.length body <> n then
                        corrupt
                          (Printf.sprintf "payload truncated (%d of %d bytes)"
                             (String.length body) n)
                      else if fnv64 body <> expected then corrupt "checksum mismatch"
                      else Ok (Some body)
                  | _ -> corrupt "unreadable header fields")
            | _ -> corrupt "malformed header"))
