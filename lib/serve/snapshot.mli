(** Crash-safe, self-validating snapshot files.

    Format: a header line [INLSNAP1 <kind> v<version> <bytes> <fnv64>]
    followed by the opaque payload.  {!save} goes through
    {!Inl_diag.Atomicio} (write temp, fsync, rename, fsync dir), so a
    SIGKILL at any moment leaves either the previous snapshot or the new
    one — never a torn file.  {!load} refuses anything whose magic,
    kind, version, length or checksum does not check out; the daemon
    maps that refusal to a cold start with a warning rather than
    trusting a corrupt byte. *)

val save : path:string -> kind:string -> version:int -> string -> (unit, string) result
(** [kind] must not contain spaces (it is a header field).
    @raise Invalid_argument on a kind with spaces — a programming error,
    not an input error. *)

val load : path:string -> kind:string -> version:int -> (string option, string) result
(** [Ok None] when the file does not exist (a legitimate cold start);
    [Error] names what failed to validate. *)

val fnv64 : string -> int64
(** The checksum used by the format (FNV-1a 64); exposed for tests. *)
