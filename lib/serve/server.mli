(** The [inltool serve] daemon: a long-running optimization service over
    a JSON-lines protocol (one request object per line in, one response
    object per line out), on stdin/stdout or a Unix domain socket.

    The failure-containment contract (DESIGN.md §12): a request can
    time out, blow the solver budget, carry injected faults, or panic a
    worker — the daemon answers it with a typed diagnostic (after one
    retry at reduced budget where that makes sense) and keeps serving.
    Queue overload and oversized lines are rejected immediately with
    typed diagnostics rather than buffered without bound.  The
    projection cache is checkpointed to a checksummed crash-safe
    snapshot and restored on startup, so a restarted daemon starts
    warm. *)

type config = {
  socket : string option;  (** listen on a Unix socket instead of stdin/stdout *)
  state_dir : string option;  (** snapshots + fuzz corpus live here *)
  queue_cap : int;  (** bounded FIFO capacity; arrivals beyond it are rejected *)
  request_timeout_ms : int;  (** default per-request watchdog; 0 = none *)
  max_request_bytes : int;  (** longest accepted request line *)
  checkpoint_every : int;  (** requests between snapshots; 0 = only on drain *)
}

val default_config : config

type t
(** A running server's state: counters, method table, drain flag. *)

val create : config -> (t, string) result
(** Prepares the state directory and restores the cache snapshot (a
    corrupt snapshot logs R709 and starts cold; only an unusable state
    directory is an error). *)

val handle : t -> string -> string
(** [handle t line] maps one request line to one response line.  Never
    raises and never touches the wire — the run loop and the unit tests
    share it.  This is where the per-request isolation lives: budget,
    deadline and fault scope installed around the handler and restored
    after, the retry ladder, and panic recovery ({!Inl_parallel.Pool.revive}). *)

val exit_code : t -> int
(** 0 clean drain; 1 some request was answered with an error, rejected,
    or produced fuzz findings; 2 internal fault (recovered panic, failed
    checkpoint).  Internal dominates findings. *)

val run : config -> int
(** Serve until EOF (stdin mode), SIGTERM, or a [shutdown] request; then
    drain the queue, checkpoint, and return the exit code.  Startup
    failures (unusable state dir, unbindable socket) return 2. *)

val client : socket:string -> int
(** Forward stdin request lines to a serving socket and print the
    response lines; retries the connect briefly so a test can start
    daemon and client together.  Returns 0 once every request got a
    response, 2 if the daemon never answered the dial. *)
