(** Minimal JSON codec for the serve wire protocol (the sealed build has
    no yojson).

    Parsing never raises on untrusted input: every malformed byte
    sequence comes back as [Error] with a byte offset, nesting depth is
    capped, and integers outside the native range fall back to floats.
    Printing is deterministic (insertion order, fixed float format), so
    responses are stable enough to pin in cram tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict: leading/trailing whitespace is allowed, trailing garbage is
    not. *)

val to_string : t -> string
(** Single-line rendering with all control characters escaped — a
    response is always exactly one line of the wire. *)

val member : string -> t -> t option
(** Field of an object ([None] on non-objects and missing keys). *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option

val string_field : string -> t -> string option
(** [string_field k v] = [member k v] narrowed to a string; likewise
    below. *)

val int_field : string -> t -> int option
val bool_field : string -> t -> bool option
