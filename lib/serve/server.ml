(* The inltool serve daemon: a crash-tolerant, long-running optimization
   service speaking a JSON-lines protocol over stdin/stdout or a Unix
   domain socket.

   Robustness is the design center, enforced by construction:

   - every request runs under its own budget, watchdog deadline and
     fault-injection scope, installed before and restored after;
   - a solver blowup or deadline that escapes the library-level
     degradation paths gets ONE retry at sharply reduced budget; if that
     also fails, the request is answered with a typed diagnostic (R706 /
     R708) — the daemon never dies for a request;
   - any other exception is a worker panic: caught, answered as R707,
     the Domain pool revived, the daemon marked internally degraded;
   - the request queue is a bounded FIFO — arrivals beyond capacity are
     rejected immediately with R704, never buffered without bound;
   - the projection cache is checkpointed to a checksummed snapshot
     (write-temp + fsync + rename) every N requests and on drain, and
     restored on startup; a corrupt snapshot is a warning and a cold
     start, not a refusal to boot;
   - SIGTERM stops intake, answers everything already queued,
     checkpoints, and exits 0 (clean drain).

   Exit-code contract (deliberately different from the one-shot
   commands, documented in test/cli.t): 0 clean drain, 1 at least one
   request was answered with an error or produced fuzz findings,
   2 internal fault (recovered panic, failed checkpoint, startup
   failure).  Internal dominates findings: a 2 means the daemon itself
   needs attention, not just some inputs. *)

module Diag = Inl_diag.Diag
module Budget = Inl_diag.Budget
module Faults = Inl_diag.Faults
module Stats = Inl_diag.Stats
module Watchdog = Inl_diag.Watchdog
module Retry = Inl_diag.Retry
module Omega = Inl_presburger.Omega
module Cache = Inl_presburger.Cache
module Pool = Inl_parallel.Pool
module Verify = Inl_verify.Verify
module Search = Inl_search.Search
module Driver = Inl_fuzz.Driver
module Corpus = Inl_fuzz.Corpus
module Tf = Inl_fuzz.Tf

type config = {
  socket : string option;  (** listen on a Unix socket instead of stdin/stdout *)
  state_dir : string option;  (** snapshots + fuzz corpus live here *)
  queue_cap : int;  (** bounded FIFO capacity; arrivals beyond it are rejected *)
  request_timeout_ms : int;  (** default per-request watchdog; 0 = none *)
  max_request_bytes : int;  (** longest accepted request line *)
  checkpoint_every : int;  (** requests between snapshots; 0 = only on drain *)
}

let default_config =
  {
    socket = None;
    state_dir = None;
    queue_cap = 256;
    request_timeout_ms = 0;
    max_request_bytes = 1 lsl 20;
    checkpoint_every = 32;
  }

let snapshot_kind = "omega-cache"
let snapshot_version = 1

type t = {
  config : config;
  mutable served : int;
  mutable ok_count : int;
  mutable err_count : int;
  mutable degraded_count : int;
  mutable rejected : int;  (* overload + oversized, a subset of err_count *)
  mutable findings : bool;  (* any not-ok answer or fuzz findings -> exit 1 *)
  mutable internal : bool;  (* recovered panic / failed checkpoint -> exit 2 *)
  mutable checkpoints : int;
  mutable since_checkpoint : int;
  mutable draining : bool;
  mutable queue_depth : int;  (* maintained by the run loop, read by stats *)
  restored_entries : int;
  methods : (string, int) Hashtbl.t;
}

let log_diag d = prerr_endline (Diag.to_string d)

(* ---- construction: state dir + snapshot restore ---- *)

let snapshot_path dir = Filename.concat dir "cache.snap"

let create config =
  match config.state_dir with
  | None ->
      Ok
        {
          config;
          served = 0;
          ok_count = 0;
          err_count = 0;
          degraded_count = 0;
          rejected = 0;
          findings = false;
          internal = false;
          checkpoints = 0;
          since_checkpoint = 0;
          draining = false;
          queue_depth = 0;
          restored_entries = 0;
          methods = Hashtbl.create 8;
        }
  | Some dir -> (
      match Corpus.ensure_dir dir with
      | Error msg -> Error ("state directory: " ^ msg)
      | Ok () ->
          let restored =
            match
              Snapshot.load ~path:(snapshot_path dir) ~kind:snapshot_kind
                ~version:snapshot_version
            with
            | Ok None -> 0
            | Ok (Some payload) -> (
                match Omega.cache_restore payload with
                | Ok n -> n
                | Error msg ->
                    log_diag
                      (Diag.warningf ~code:"R709" ~phase:Diag.Serve
                         "snapshot unusable, starting cold: %s" msg);
                    0)
            | Error msg ->
                log_diag
                  (Diag.warningf ~code:"R709" ~phase:Diag.Serve
                     "snapshot unusable, starting cold: %s" msg);
                0
          in
          if restored > 0 then
            Printf.eprintf "serve: restored %d projection-cache entries from %s\n%!" restored
              (snapshot_path dir);
          Ok
            {
              config;
              served = 0;
              ok_count = 0;
              err_count = 0;
              degraded_count = 0;
              rejected = 0;
              findings = false;
              internal = false;
              checkpoints = 0;
              since_checkpoint = 0;
              draining = false;
              queue_depth = 0;
              restored_entries = restored;
              methods = Hashtbl.create 8;
            })

let checkpoint t =
  match t.config.state_dir with
  | None -> ()
  | Some dir -> (
      t.since_checkpoint <- 0;
      match
        Snapshot.save ~path:(snapshot_path dir) ~kind:snapshot_kind ~version:snapshot_version
          (Omega.cache_snapshot ())
      with
      | Ok () -> t.checkpoints <- t.checkpoints + 1
      | Error msg ->
          t.internal <- true;
          log_diag
            (Diag.warningf ~code:"R710" ~phase:Diag.Serve "checkpoint failed: %s" msg))

let after_request t =
  t.since_checkpoint <- t.since_checkpoint + 1;
  if t.config.checkpoint_every > 0 && t.since_checkpoint >= t.config.checkpoint_every then
    checkpoint t

(* ---- response assembly ---- *)

let diag_to_json d =
  Json.Obj
    (List.map
       (fun (k, v) ->
         if k = "line" then (k, Json.Int (int_of_string v)) else (k, Json.String v))
       (Diag.to_fields d))

let response t ~id ~meth ?(result = Json.Null) ?stats (diags : Diag.t list) =
  let ok = not (Diag.has_errors diags) in
  let degraded = Diag.has_warnings diags in
  t.served <- t.served + 1;
  if ok then begin
    t.ok_count <- t.ok_count + 1;
    if degraded then t.degraded_count <- t.degraded_count + 1
  end
  else begin
    t.err_count <- t.err_count + 1;
    t.findings <- true
  end;
  let payload =
    if ok then [ ("result", result) ]
    else
      let first_error = List.find (fun d -> d.Diag.severity = Diag.Error) diags in
      [ ("error", diag_to_json first_error) ]
  in
  Json.Obj
    ([ ("id", id); ("method", Json.String meth); ("ok", Json.Bool ok);
       ("degraded", Json.Bool degraded) ]
    @ payload
    @ [ ("diags", Json.List (List.map diag_to_json diags)) ]
    @ match stats with None -> [] | Some s -> [ ("stats", s) ])

let reject t ~id ~meth ~code msg =
  response t ~id ~meth [ Diag.error ~code ~phase:Diag.Serve msg ]

(* ---- method handlers (pure compute; never touch the wire) ---- *)

(* A handler returns its result object plus diagnostics; errors among
   the diagnostics make the response not-ok with the first error as the
   wire error object. *)
type hresult = Json.t * Diag.t list

let require_program req : (string, Diag.t list) result =
  match Json.string_field "program" req with
  | Some src -> Ok src
  | None ->
      Error
        [
          Diag.error ~code:"R703" ~phase:Diag.Serve
            "invalid request: missing or non-string \"program\"";
        ]

let handle_analyze req : hresult =
  match require_program req with
  | Error ds -> (Json.Null, ds)
  | Ok src -> (
      match Inl.analyze_source_result src with
      | Error ds -> (Json.Null, ds)
      | Ok ctx ->
          let deps = ctx.Inl.deps in
          let approx =
            List.length (List.filter (fun (d : Inl.Dep.t) -> d.Inl.Dep.approximate) deps)
          in
          let dep_lines =
            List.map (fun d -> Json.String (Format.asprintf "%a" Inl.Dep.pp d)) deps
          in
          ( Json.Obj
              [
                ("statements", Json.Int (List.length ctx.Inl.layout.Inl.Layout.stmts));
                ("dependences", Json.Int (List.length deps));
                ("approximate", Json.Int approx);
                ("matrix", Json.List dep_lines);
              ],
            ctx.Inl.diags ))

let handle_verify req : hresult =
  match require_program req with
  | Error ds -> (Json.Null, ds)
  | Ok src -> (
      let parse what s =
        match Inl.Parser.parse s with
        | Ok prog -> Ok prog
        | Error msg ->
            Error [ Diag.errorf ~code:"P101" ~phase:Diag.Parse "%s: %s" what msg ]
      in
      match parse "program" src with
      | Error ds -> (Json.Null, ds)
      | Ok prog -> (
          let against =
            match Json.string_field "against" req with
            | None -> Ok None
            | Some s -> (
                match parse "against" s with Ok p -> Ok (Some p) | Error ds -> Error ds)
          in
          match against with
          | Error ds -> (Json.Null, ds)
          | Ok against ->
              let report = Verify.run ?against prog in
              let ds = Verify.diags report in
              let verdict =
                if Diag.has_errors ds then "failed"
                else if Diag.has_warnings ds then "incomplete"
                else "verified"
              in
              ( Json.Obj
                  [
                    ("verdict", Json.String verdict);
                    ( "loops",
                      Json.List
                        (List.map
                           (fun l -> Json.String l)
                           (Verify.loop_summary report.Verify.loops)) );
                  ],
                ds )))

let handle_optimize req : hresult =
  match require_program req with
  | Error ds -> (Json.Null, ds)
  | Ok src -> (
      match Inl.analyze_source_result src with
      | Error ds -> (Json.Null, ds)
      | Ok ctx ->
          let d = Search.default_config in
          let field name v = Option.value (Json.int_field name req) ~default:v in
          let config =
            {
              d with
              Search.beam = field "beam" d.Search.beam;
              depth = field "depth" d.Search.depth;
              finalists = field "finalists" d.Search.finalists;
              size = field "size" d.Search.size;
              seed = field "seed" d.Search.seed;
            }
          in
          let o = Search.optimize ~config ctx in
          let diags = ctx.Inl.diags @ o.Search.diags in
          let opt f = function Some v -> f v | None -> Json.Null in
          (match o.Search.winner with
          | None -> (Json.Null, diags)
          | Some w ->
              ( Json.Obj
                  [
                    ("winner", Json.String (Search.recipe_line w.Search.recipe));
                    ("recipe", Json.String (Tf.to_string w.Search.recipe));
                    ("misses", opt (fun n -> Json.Int n) w.Search.misses);
                    ("accesses", opt (fun n -> Json.Int n) w.Search.accesses);
                    ( "program",
                      opt (fun p -> Json.String (Inl.Pp.program_to_string p)) w.Search.program
                    );
                  ],
                diags )))

let handle_fuzz t req : hresult =
  let field name v = Option.value (Json.int_field name req) ~default:v in
  let cfg =
    {
      Driver.seed = field "seed" 0;
      cases = field "cases" 20;
      timeout_ms = field "case_timeout_ms" 2000;
      corpus =
        (match t.config.state_dir with
        | Some dir -> Some (Filename.concat dir "fuzz-corpus")
        | None -> None);
      shrink = Json.bool_field "shrink" req <> Some false;
    }
  in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  match Driver.run ~out:fmt cfg with
  | Error msg -> (Json.Null, [ Diag.error ~code:"R712" ~phase:Diag.Serve msg ])
  | Ok report ->
      Format.pp_print_flush fmt ();
      let findings = Driver.findings report in
      if findings > 0 then t.findings <- true;
      ( Json.Obj
          [
            ("completed", Json.Int report.Driver.completed);
            ("ok", Json.Int report.Driver.ok);
            ("skipped", Json.Int report.Driver.skipped);
            ("findings", Json.Int findings);
            ("summary", Json.String (Driver.summary_line report));
          ],
        [] )

let stats_json t =
  let cs = Omega.cache_stats () in
  let methods =
    Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) t.methods []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ("served", Json.Int t.served);
      ("ok", Json.Int t.ok_count);
      ("errors", Json.Int t.err_count);
      ("degraded", Json.Int t.degraded_count);
      ("rejected", Json.Int t.rejected);
      ( "queue",
        Json.Obj
          [ ("capacity", Json.Int t.config.queue_cap); ("depth", Json.Int t.queue_depth) ] );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int cs.Cache.hits);
            ("misses", Json.Int cs.Cache.misses);
            ("entries", Json.Int cs.Cache.entries);
            ("warm", Json.Bool (cs.Cache.hits > 0));
          ] );
      ( "snapshot",
        Json.Obj
          [
            ("restored_entries", Json.Int t.restored_entries);
            ("checkpoints", Json.Int t.checkpoints);
          ] );
      ("pool", Json.Obj [ ("jobs", Json.Int (Pool.jobs ())) ]);
      ("methods", Json.Obj methods);
    ]

(* ---- the degradation ladder (shared: Inl_diag.Retry) ---- *)

(* The first-rung failure, rendered the way the retry diagnostics quote
   it on the wire. *)
let first_reason_message = function
  | Retry.Deadline { timeout_ms; _ } ->
      Printf.sprintf "request exceeded its %d ms deadline" timeout_ms
  | Retry.Degraded m -> "a solver blowup escaped the degradation paths: " ^ m

let guarded t ~id ~meth req (handler : unit -> hresult) =
  let base_budget = Omega.get_default_budget () in
  let base_faults = Faults.current () in
  let base_fm =
    match Json.int_field "budget" req with
    | Some n when n > 0 -> n
    | _ -> base_budget.Budget.fm_work
  in
  let ms =
    match Json.int_field "timeout_ms" req with
    | Some n -> n
    | None -> t.config.request_timeout_ms
  in
  match
    match Json.string_field "faults" req with
    | None -> Ok base_faults
    | Some spec -> Faults.parse spec
  with
  | Error msg -> reject t ~id ~meth ~code:"R703" ("bad \"faults\" spec: " ^ msg)
  | Ok faults -> (
      let want_stats = Json.bool_field "stats" req = Some true in
      let _, proj0 = Omega.solver_calls () in
      let cs0 = Omega.cache_stats () in
      let snap0 = Stats.snapshot () in
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            Omega.set_default_budget base_budget;
            Faults.install base_faults)
          (fun () ->
            (* the fault spec is (re)installed per attempt so injected
               failures fire on the same schedule whether or not this is
               the retry *)
            let f ~fm_work ~timeout_ms:_ =
              Faults.install faults;
              Omega.set_default_budget (Budget.with_fm_work base_budget fm_work);
              handler ()
            in
            let degradable = function Omega.Blowup m -> Some m | _ -> None in
            match Retry.run ~fm_work:base_fm ~timeout_ms:ms ~degradable f with
            | Retry.Completed (result, ds) -> `Done (result, ds)
            | Retry.Recovered { value = result, ds; first; fm_work = fm' } ->
                `Done
                  ( result,
                    ds
                    @ [
                        Diag.warningf ~code:"R711" ~phase:Diag.Serve
                          "%s; answered by a retry at reduced budget (fm_work=%d)"
                          (first_reason_message first) fm';
                      ] )
            | Retry.Exhausted { first; second = Retry.Deadline _; fm_work = fm' } ->
                `Done
                  ( Json.Null,
                    [
                      Diag.errorf ~code:"R706" ~phase:Diag.Serve
                        "%s, and the reduced-budget retry (fm_work=%d) also exceeded its \
                         deadline; request abandoned"
                        (first_reason_message first) fm';
                    ] )
            | Retry.Exhausted { first; second = Retry.Degraded m; fm_work = fm' } ->
                `Done
                  ( Json.Null,
                    [
                      Diag.errorf ~code:"R708" ~phase:Diag.Serve
                        "%s, and the reduced-budget retry (fm_work=%d) blew up: %s"
                        (first_reason_message first) fm' m;
                    ] )
            | exception e -> `Panic (e, Printexc.get_backtrace ()))
      in
      match outcome with
      | `Done (result, diags) ->
          let stats =
            if not want_stats then None
            else
              let _, proj1 = Omega.solver_calls () in
              let cs1 = Omega.cache_stats () in
              let _, counter_deltas = Stats.since snap0 in
              Some
                (Json.Obj
                   [
                     ("project_calls", Json.Int (proj1 - proj0));
                     ("cache_hits", Json.Int (cs1.Cache.hits - cs0.Cache.hits));
                     ("cache_misses", Json.Int (cs1.Cache.misses - cs0.Cache.misses));
                     ( "counters",
                       Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) counter_deltas) );
                   ])
          in
          response t ~id ~meth ~result ?stats diags
      | `Panic (e, bt) ->
          t.internal <- true;
          Pool.revive ();
          let d =
            Diag.errorf ~code:"R707" ~phase:Diag.Serve "worker panic (recovered): %s"
              (Printexc.to_string e)
          in
          log_diag d;
          if bt <> "" then prerr_string bt;
          response t ~id ~meth [ d ])

(* ---- request dispatch ---- *)

(* One request line in, one response line out.  Never raises, never
   writes the wire itself — the run loop (and the unit tests) own IO. *)
let handle t line : string =
  let resp =
    if String.length line > t.config.max_request_bytes then begin
      t.rejected <- t.rejected + 1;
      reject t ~id:Json.Null ~meth:"" ~code:"R705"
        (Printf.sprintf "oversized request (%d bytes, limit %d)" (String.length line)
           t.config.max_request_bytes)
    end
    else
      match Json.parse line with
      | Error msg -> reject t ~id:Json.Null ~meth:"" ~code:"R701" ("malformed JSON: " ^ msg)
      | Ok req -> (
          let id = Option.value (Json.member "id" req) ~default:Json.Null in
          match Json.string_field "method" req with
          | None ->
              reject t ~id ~meth:"" ~code:"R703"
                "invalid request: missing or non-string \"method\""
          | Some meth -> (
              (match Hashtbl.find_opt t.methods meth with
              | Some n -> Hashtbl.replace t.methods meth (n + 1)
              | None -> Hashtbl.add t.methods meth 1);
              match meth with
              | "ping" -> response t ~id ~meth ~result:(Json.Obj [ ("pong", Json.Bool true) ]) []
              | "stats" -> response t ~id ~meth ~result:(stats_json t) []
              | "shutdown" ->
                  t.draining <- true;
                  response t ~id ~meth ~result:(Json.Obj [ ("draining", Json.Bool true) ]) []
              | "analyze" -> guarded t ~id ~meth req (fun () -> handle_analyze req)
              | "verify" -> guarded t ~id ~meth req (fun () -> handle_verify req)
              | "optimize" -> guarded t ~id ~meth req (fun () -> handle_optimize req)
              | "fuzz" -> guarded t ~id ~meth req (fun () -> handle_fuzz t req)
              | other -> reject t ~id ~meth:other ~code:"R702" ("unknown method " ^ other)))
  in
  Json.to_string resp

(* The overload answer is assembled outside [handle]: the queue is the
   run loop's, and the rejected line is parsed only far enough to echo
   an id back. *)
let overload_response t line : string =
  t.rejected <- t.rejected + 1;
  let id =
    match Json.parse line with
    | Ok req -> Option.value (Json.member "id" req) ~default:Json.Null
    | Error _ -> Json.Null
  in
  Json.to_string
    (reject t ~id ~meth:"" ~code:"R704"
       (Printf.sprintf "overloaded: queue full (%d pending), request rejected"
          t.config.queue_cap))

let exit_code t = if t.internal then 2 else if t.findings then 1 else 0

(* ---- the wire: sources, line framing, the select loop ---- *)

type wire = {
  fd : Unix.file_descr;
  out : Unix.file_descr option;  (* None for the listening socket *)
  wbuf : Buffer.t;
  mutable discard : bool;  (* inside an oversized line: drop until '\n' *)
  mutable open_ : bool;
  listener : bool;
  close_fd : bool;  (* sockets yes; stdin stays the process's *)
}

let mk_wire ?(listener = false) ?(close_fd = true) ?out fd =
  { fd; out; wbuf = Buffer.create 1024; discard = false; open_ = true; listener; close_fd }

let write_all w (s : string) =
  match w.out with
  | None -> ()
  | Some fd -> (
      let n = String.length s in
      let written = ref 0 in
      try
        while !written < n do
          written := !written + Unix.write_substring fd s !written (n - !written)
        done
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> w.open_ <- false)

let respond w line = write_all w (line ^ "\n")

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* Split the wire buffer into complete lines, keeping the remainder
   buffered; enforce the size cap on the remainder so an endless line
   cannot grow the buffer without bound. *)
let extract_lines t w =
  let data = Buffer.contents w.wbuf in
  Buffer.clear w.wbuf;
  let rec go start acc =
    match String.index_from_opt data start '\n' with
    | Some i ->
        let line = strip_cr (String.sub data start (i - start)) in
        go (i + 1) (line :: acc)
    | None ->
        Buffer.add_substring w.wbuf data start (String.length data - start);
        List.rev acc
  in
  let lines = go 0 [] in
  if Buffer.length w.wbuf > t.config.max_request_bytes then begin
    Buffer.clear w.wbuf;
    w.discard <- true;
    t.rejected <- t.rejected + 1;
    respond w
      (Json.to_string
         (reject t ~id:Json.Null ~meth:"" ~code:"R705"
            (Printf.sprintf "oversized request (line exceeds %d bytes)"
               t.config.max_request_bytes)))
  end;
  lines

type loop_state = { t : t; queue : (wire * string) Queue.t; mutable wires : wire list }

let enqueue ls w line =
  if String.trim line = "" then ()
  else if Queue.length ls.queue >= ls.t.config.queue_cap then
    respond w (overload_response ls.t line)
  else Queue.push (w, line) ls.queue

let read_wire ls w =
  if w.listener then begin
    match Unix.accept w.fd with
    | client, _ ->
        Unix.set_close_on_exec client;
        ls.wires <- ls.wires @ [ mk_wire ~out:client client ]
    | exception Unix.Unix_error _ -> ()
  end
  else
    let chunk = Bytes.create 65536 in
    match Unix.read w.fd chunk 0 65536 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> w.open_ <- false
    | 0 -> w.open_ <- false
    | n ->
        let data = Bytes.sub_string chunk 0 n in
        let data =
          if not w.discard then data
          else
            match String.index_opt data '\n' with
            | None -> ""
            | Some i ->
                w.discard <- false;
                String.sub data (i + 1) (String.length data - i - 1)
        in
        if data <> "" then begin
          Buffer.add_string w.wbuf data;
          List.iter (enqueue ls w) (extract_lines ls.t w)
        end

let process_queue ls =
  while not (Queue.is_empty ls.queue) do
    let w, line = Queue.pop ls.queue in
    ls.t.queue_depth <- Queue.length ls.queue;
    let resp = handle ls.t line in
    if w.open_ then respond w resp;
    after_request ls.t
  done;
  ls.t.queue_depth <- 0

let cleanup ls =
  List.iter
    (fun w ->
      if w.open_ && w.close_fd then try Unix.close w.fd with Unix.Unix_error _ -> ())
    ls.wires;
  match ls.t.config.socket with
  | Some path -> ( try Sys.remove path with Sys_error _ -> ())
  | None -> ()

let run config =
  match create config with
  | Error msg ->
      log_diag (Diag.error ~code:"R700" ~phase:Diag.Serve ("cannot start: " ^ msg));
      2
  | Ok t -> (
      let term = ref false in
      let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> term := true)) in
      let restore_signals () =
        Sys.set_signal Sys.sigpipe old_pipe;
        Sys.set_signal Sys.sigterm old_term
      in
      let wires_result =
        match config.socket with
        | None -> Ok [ mk_wire ~close_fd:false ~out:Unix.stdout Unix.stdin ]
        | Some path -> (
            (try Sys.remove path with Sys_error _ -> ());
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            match
              Unix.bind fd (Unix.ADDR_UNIX path);
              Unix.listen fd 16
            with
            | () -> Ok [ mk_wire ~listener:true fd ]
            | exception Unix.Unix_error (e, _, _) ->
                Unix.close fd;
                Error (path ^ ": " ^ Unix.error_message e))
      in
      match wires_result with
      | Error msg ->
          restore_signals ();
          log_diag (Diag.error ~code:"R700" ~phase:Diag.Serve ("cannot start: " ^ msg));
          2
      | Ok wires ->
          let ls = { t; queue = Queue.create (); wires } in
          let stdin_mode = config.socket = None in
          let rec loop () =
            if !term then begin
              t.draining <- true;
              Printf.eprintf "serve: SIGTERM, draining\n%!"
            end;
            if t.draining then ()
            else begin
              ls.wires <- List.filter (fun w -> w.open_) ls.wires;
              let fds = List.map (fun w -> w.fd) ls.wires in
              if fds = [] then
                (* all inputs gone: a clean end of session in stdin
                   mode; in socket mode keep waiting for clients on the
                   listener (which never closes) *)
                if stdin_mode then t.draining <- true else ()
              else begin
                (match Unix.select fds [] [] 0.25 with
                | readable, _, _ ->
                    List.iter
                      (fun w -> if List.mem w.fd readable then read_wire ls w)
                      ls.wires
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
                process_queue ls
              end;
              if not t.draining then loop ()
            end
          in
          loop ();
          (* graceful drain: everything queued is answered, then one
             final checkpoint makes the warm cache durable *)
          process_queue ls;
          checkpoint t;
          cleanup ls;
          restore_signals ();
          Printf.eprintf
            "serve: drained after %d request%s (%d ok, %d errors, %d degraded)\n%!" t.served
            (if t.served = 1 then "" else "s")
            t.ok_count t.err_count t.degraded_count;
          exit_code t)

(* ---- client mode: forward stdin lines to a serving socket ---- *)

let client ~socket =
  let rec connect tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Some fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when tries > 0 ->
        Unix.close fd;
        Unix.sleepf 0.05;
        connect (tries - 1)
    | exception Unix.Unix_error _ ->
        Unix.close fd;
        None
  in
  match connect 100 with
  | None ->
      log_diag
        (Diag.errorf ~code:"R700" ~phase:Diag.Serve "cannot connect to %s" socket);
      2
  | Some fd ->
      ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
      (* Count the non-empty request lines we forward; the server sends
         exactly one response line per request, so the session is over
         when the counts meet (or the server closes first). *)
      let sent = ref 0 and received = ref 0 in
      let stdin_eof = ref false and server_eof = ref false in
      let inbuf = Buffer.create 1024 in
      let pending = Buffer.create 1024 in
      let flush_requests () =
        let data = Buffer.contents pending in
        Buffer.clear pending;
        let rec go start =
          match String.index_from_opt data start '\n' with
          | Some i ->
              let line = strip_cr (String.sub data start (i - start)) in
              if String.trim line <> "" then begin
                incr sent;
                let payload = line ^ "\n" in
                let n = String.length payload in
                let written = ref 0 in
                while !written < n do
                  written := !written + Unix.write_substring fd payload !written (n - !written)
                done
              end;
              go (i + 1)
          | None -> Buffer.add_substring pending data start (String.length data - start)
        in
        go 0
      in
      let rec loop () =
        if (!stdin_eof && !received >= !sent) || !server_eof then ()
        else begin
          let watch = (if !stdin_eof then [] else [ Unix.stdin ]) @ [ fd ] in
          (match Unix.select watch [] [] 1.0 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | readable, _, _ ->
              let chunk = Bytes.create 65536 in
              if List.mem Unix.stdin readable then begin
                match Unix.read Unix.stdin chunk 0 65536 with
                | 0 -> stdin_eof := true
                | n ->
                    Buffer.add_subbytes pending chunk 0 n;
                    flush_requests ()
              end;
              if List.mem fd readable then begin
                match Unix.read fd chunk 0 65536 with
                | 0 -> server_eof := true
                | n ->
                    print_string (Bytes.sub_string chunk 0 n);
                    flush stdout;
                    Buffer.add_subbytes inbuf chunk 0 n;
                    let s = Buffer.contents inbuf in
                    Buffer.clear inbuf;
                    String.iter (fun c -> if c = '\n' then incr received) s
              end);
          loop ()
        end
      in
      loop ();
      Unix.close fd;
      if !received >= !sent then 0 else 1
