(* A minimal JSON codec for the serve wire protocol.  The sealed build
   environment has no yojson, and the protocol needs exactly this much:
   parse one request object off a line of untrusted bytes without ever
   raising, and print a response object deterministically.

   Deliberate scope cuts, all safe for a line protocol: integers outside
   the native-int range parse as floats; surrogate pairs in \u escapes
   are combined when well-formed and replaced by U+FFFD when not;
   nesting depth is capped so a crafted request cannot overflow the
   parser's stack. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 128

exception Parse_error of string

(* ---- parsing ---- *)

type state = { s : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("bad literal (expected " ^ word ^ ")")

let hex4 st =
  if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.s.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad \\u escape"
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let utf8_add buf cp =
  (* encode one scalar value; callers never pass surrogates *)
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.pos >= String.length st.s then fail st "unterminated escape";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            let cp = hex4 st in
            if cp >= 0xD800 && cp <= 0xDBFF then
              (* high surrogate: combine with a following \uDC00-\uDFFF *)
              if
                st.pos + 1 < String.length st.s
                && st.s.[st.pos] = '\\'
                && st.s.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = hex4 st in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  utf8_add buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                else utf8_add buf 0xFFFD
              end
              else utf8_add buf 0xFFFD
            else if cp >= 0xDC00 && cp <= 0xDFFF then utf8_add buf 0xFFFD
            else utf8_add buf cp
        | _ -> fail st "bad escape");
        go ())
    | c when Char.code c < 0x20 -> fail st "raw control character in string"
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  let digits () =
    let n0 = st.pos in
    while st.pos < String.length st.s && st.s.[st.pos] >= '0' && st.s.[st.pos] <= '9' do
      st.pos <- st.pos + 1
    done;
    if st.pos = n0 then fail st "bad number"
  in
  digits ();
  if peek st = Some '.' then begin
    is_float := true;
    st.pos <- st.pos + 1;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      st.pos <- st.pos + 1;
      (match peek st with Some ('+' | '-') -> st.pos <- st.pos + 1 | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text) (* out of native range *)

let rec parse_value st depth =
  if depth > max_depth then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((key, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else
        let rec elements acc =
          let v = parse_value st (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        elements []
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st 0 in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- printing ---- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            go x)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---- accessors ---- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let string_field key v = Option.bind (member key v) to_string_opt
let int_field key v = Option.bind (member key v) to_int_opt
let bool_field key v = Option.bind (member key v) to_bool_opt
