type config = { line_bytes : int; sets : int; assoc : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let check_config c =
  if not (is_pow2 c.line_bytes && is_pow2 c.sets && c.assoc > 0) then
    invalid_arg "Cachesim: line_bytes and sets must be powers of two, assoc positive"

let capacity_bytes c = c.line_bytes * c.sets * c.assoc
let line_bytes c = c.line_bytes
let sets c = c.sets
let assoc c = c.assoc
let elem_bytes = 8

let direct_mapped ~capacity_bytes ~line_bytes =
  let c = { line_bytes; sets = capacity_bytes / line_bytes; assoc = 1 } in
  check_config c;
  c

let set_associative ~capacity_bytes ~line_bytes ~assoc =
  let c = { line_bytes; sets = capacity_bytes / (line_bytes * assoc); assoc } in
  check_config c;
  c

type t = {
  config : config;
  tags : int array array; (* per set, per way; -1 = invalid *)
  ages : int array array; (* LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
}

let create config =
  check_config config;
  {
    config;
    tags = Array.init config.sets (fun _ -> Array.make config.assoc (-1));
    ages = Array.init config.sets (fun _ -> Array.make config.assoc 0);
    clock = 0;
    accesses = 0;
    hits = 0;
  }

let reset t =
  Array.iter (fun ways -> Array.fill ways 0 (Array.length ways) (-1)) t.tags;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0

let access t addr =
  if addr < 0 then invalid_arg "Cachesim.access: negative address";
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = addr / t.config.line_bytes in
  let set = line mod t.config.sets in
  let tag = line / t.config.sets in
  let ways = t.tags.(set) and ages = t.ages.(set) in
  let hit = ref false in
  (try
     for w = 0 to t.config.assoc - 1 do
       if ways.(w) = tag then begin
         ages.(w) <- t.clock;
         hit := true;
         raise Exit
       end
     done
   with Exit -> ());
  if !hit then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    (* victim: invalid way first, else LRU *)
    let victim = ref 0 in
    (try
       for w = 0 to t.config.assoc - 1 do
         if ways.(w) = -1 then begin
           victim := w;
           raise Exit
         end;
         if ages.(w) < ages.(!victim) then victim := w
       done
     with Exit -> ());
    ways.(!victim) <- tag;
    ages.(!victim) <- t.clock;
    false
  end

type stats = { accesses : int; hits : int; misses : int }

let stats (c : t) : stats = { accesses = c.accesses; hits = c.hits; misses = c.accesses - c.hits }
let miss_rate (s : stats) = if s.accesses = 0 then 0.0 else float_of_int s.misses /. float_of_int s.accesses

module Address_map = struct
  type entry = { base : int; dims : int list }
  type map = (string * entry) list

  let create (arrays : (string * int list) list) : map =
    let cursor = ref 0 in
    List.map
      (fun (name, dims) ->
        let cells = List.fold_left (fun acc d -> acc * (d + 1)) 1 dims in
        let base = !cursor in
        cursor := !cursor + (cells * elem_bytes);
        (name, { base; dims }))
      arrays

  let address (m : map) name (index : int list) =
    match List.assoc_opt name m with
    | None -> invalid_arg (Printf.sprintf "Address_map: unknown array %s" name)
    | Some { base; dims } ->
        if List.length index <> List.length dims then
          invalid_arg (Printf.sprintf "Address_map: %s expects %d subscripts" name (List.length dims));
        let flat =
          List.fold_left2
            (fun acc i d ->
              if i < 0 || i > d then
                invalid_arg (Printf.sprintf "Address_map: %s subscript %d out of [0,%d]" name i d);
              (acc * (d + 1)) + i)
            0 index dims
        in
        base + (flat * elem_bytes)
end

let simulate_program config arrays ?max_steps prog ~params =
  let map = Address_map.create arrays in
  let cache = create config in
  let trace (a : Inl_interp.Interp.access) =
    ignore (access cache (Address_map.address map a.Inl_interp.Interp.array a.Inl_interp.Interp.index))
  in
  ignore (Inl_interp.Interp.run ~trace ?max_steps prog ~params);
  stats cache

let simulate_program_by_array config arrays ?max_steps prog ~params =
  let map = Address_map.create arrays in
  let cache = create config in
  (* one shared cache — the arrays contend for lines exactly as in
     simulate_program — with hit/miss attribution per array name *)
  let per : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let trace (a : Inl_interp.Interp.access) =
    let name = a.Inl_interp.Interp.array in
    let hit = access cache (Address_map.address map name a.Inl_interp.Interp.index) in
    let acc, hits = Option.value ~default:(0, 0) (Hashtbl.find_opt per name) in
    Hashtbl.replace per name (acc + 1, if hit then hits + 1 else hits)
  in
  ignore (Inl_interp.Interp.run ~trace ?max_steps prog ~params);
  let by_array =
    List.filter_map
      (fun (name, _) ->
        match Hashtbl.find_opt per name with
        | None -> Some (name, { accesses = 0; hits = 0; misses = 0 })
        | Some (acc, hits) -> Some (name, { accesses = acc; hits; misses = acc - hits }))
      arrays
  in
  (by_array, stats cache)
