(** A set-associative, write-allocate, LRU cache simulator.

    Stands in for 1996-era memory hierarchies in reproducing the paper's
    motivating claim (Section 1) that the loop orders of Cholesky
    factorization, while computing the same result, differ substantially
    in performance.  Replaying the interpreter's memory trace through
    this model gives architecture-generic miss counts. *)

type config = {
  line_bytes : int;  (** bytes per cache line (power of two) *)
  sets : int;  (** number of sets (power of two) *)
  assoc : int;  (** ways per set *)
}

val direct_mapped : capacity_bytes:int -> line_bytes:int -> config
val set_associative : capacity_bytes:int -> line_bytes:int -> assoc:int -> config

type t

val create : config -> t
val capacity_bytes : config -> int

val line_bytes : config -> int
val sets : config -> int
val assoc : config -> int
(** Field accessors, so reports and banners print the configuration they
    actually simulate instead of restating literals. *)

val elem_bytes : int
(** Bytes per array element in {!Address_map}'s layout (8). *)

val access : t -> int -> bool
(** [access cache byte_address] touches one address and reports a hit. *)

type stats = { accesses : int; hits : int; misses : int }

val stats : t -> stats
val miss_rate : stats -> float
val reset : t -> unit

(** Mapping array cells to flat byte addresses: arrays get disjoint
    base addresses in declaration order, row-major layout, 8-byte
    elements.  Subscript ranges are given per array ([dims] lists the
    inclusive upper bound of each dimension; subscripts are assumed
    non-negative). *)
module Address_map : sig
  type map

  val create : (string * int list) list -> map
  val address : map -> string -> int list -> int
  (** @raise Invalid_argument for unknown arrays or out-of-range cells. *)
end

val simulate_program :
  config ->
  (string * int list) list ->
  ?max_steps:int ->
  Inl_ir.Ast.program ->
  params:(string * int) list ->
  stats
(** Runs the program in the interpreter and replays every array access
    through a fresh cache.  With [max_steps] the underlying execution is
    bounded and raises {!Inl_interp.Interp.Step_limit} past the
    allowance — the search's trace tier uses this to stay responsive on
    pathological candidates. *)

val simulate_program_by_array :
  config ->
  (string * int list) list ->
  ?max_steps:int ->
  Inl_ir.Ast.program ->
  params:(string * int) list ->
  (string * stats) list * stats
(** Like {!simulate_program}, but additionally attributes hits and
    misses to the array each access touched (one shared cache, so the
    arrays contend for lines exactly as in the aggregate run; the
    per-array list follows the declaration order of [arrays], arrays
    never touched report zero accesses).  This is the ground truth the
    static reuse classification of {!Inl_reuse} is cross-checked
    against: a reference classified temporal or spatial innermost must
    show a lower miss rate than a streaming one of the same extent. *)
