(** Dependence analysis for imperfectly nested loops (Section 3).

    For every ordered pair of conflicting references (at least one a
    write, same array) the analyzer builds the affine system of
    Equations 2-3 — loop bounds for both instances, subscript equality,
    and execution order — and projects it onto the instance-vector
    difference coordinates with the exact integer engine
    ({!Inl_presburger.Omega}).  Execution order is handled per level, as
    is standard: one candidate system per common loop that could carry
    the dependence, plus the loop-independent case when the source
    precedes the target syntactically. *)

module Layout = Inl_instance.Layout

val bounds_constraints :
  Layout.stmt_info -> (string -> string) -> Inl_presburger.Constr.t list
(** Loop-bound constraints for one statement's instance, with the loop
    variables renamed by the given function (parameters untouched).
    Exposed for reuse by code generation.
    @raise Invalid_argument on covering (union) bounds, which only appear
    in generated programs. *)

val reads_of : Layout.stmt_info -> Inl_ir.Ast.aref list
(** Array references read by the statement, left to right. *)

val writes_of : Layout.stmt_info -> Inl_ir.Ast.aref list

val dependences : Layout.t -> Dep.t list
(** All dependences of the program underlying the layout, sorted by
    {!Dep.compare} — (src, dst, array, kind, level, vector) — so
    sequential and parallel runs byte-match.  Never
    raises on resource exhaustion: when a projection blows its budget
    (or an {!Inl_diag.Faults} failure is injected), the affected level is
    reported as a conservative {e approximate} dependence — direction
    [(0,…,0,+,*,…)] over the common loops — whose solution set is a
    superset of the exact one. *)

val dependences_diag : Layout.t -> Dep.t list * Inl_diag.Diag.t list
(** Like {!dependences}, also returning one warning diagnostic (code
    [A201]) per approximate dependence, in reference-pair traversal
    order.  Runs on a fresh {!Inl_presburger.Omega.new_analysis} context
    (per-analysis projection counter, shared query cache), fanning the
    per-reference-pair queries out over the {!Inl_parallel.Pool}; results
    are deterministic across repeated runs and worker counts. *)

val self_dependences : Dep.t list -> string -> Dep.t list
(** Dependences whose source and target are both the given statement. *)

val concrete_dependences :
  Layout.t -> params:(string * int) list -> (string * string * Dep.kind * int array) list
(** Test oracle: runs the program's access pattern exhaustively for the
    given parameter values and reports every dependent instance pair as
    [(src, dst, kind, instance-vector difference)].  Exponential; small
    parameters only. *)
