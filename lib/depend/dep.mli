(** Dependences between dynamic statement instances (Section 3).

    A dependence is recorded as an instance-vector difference abstracted
    coordinate-wise by integer intervals ({!Inl_presburger.Interval}),
    which strictly generalizes the classical distance/direction entries:
    an exact distance is a point interval, [+]/[-]/[*] are half-lines and
    the full line.  Positions include the structural (edge-label)
    coordinates, so e.g. the flow dependence of simplified Cholesky reads
    [[0, 1, -1, +]'] exactly as in the paper. *)

module Interval = Inl_presburger.Interval

type kind = Flow | Anti | Output

type level =
  | Independent  (** common loops at equal values; syntactic order carries *)
  | Carried of int  (** carried by the [k]-th common loop (1-based) *)

type t = {
  src : string;  (** label of the source statement *)
  dst : string;  (** label of the target statement *)
  array : string;  (** the conflicting array *)
  kind : kind;
  level : level;
  vector : Interval.t array;  (** one entry per instance-vector position *)
  approximate : bool;
      (** [true] when the exact projection exhausted its resource budget
          and the vector is the conservative per-level direction
          [(0,…,0,+,*,…)] — a superset of the true dependence set, so
          legality stays sound (it can only reject more) *)
}

val compare : t -> t -> int
(** Total deterministic order: (src, dst, array, kind, level, vector,
    approximate).  Analyzer output is sorted with it so parallel and
    sequential runs byte-match. *)

val kind_to_string : kind -> string
val level_to_string : level -> string
val pp : Format.formatter -> t -> unit

val vector_symbols : t -> string list
(** Paper notation, one symbol per coordinate. *)

val pp_matrix : Format.formatter -> t list -> unit
(** Prints the dependence matrix: one column per dependence, one row per
    instance-vector position. *)
