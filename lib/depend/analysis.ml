module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Omega = Inl_presburger.Omega
module Interval = Inl_presburger.Interval
module Ast = Inl_ir.Ast
module Meval = Inl_ir.Meval
module Layout = Inl_instance.Layout
module Diag = Inl_diag.Diag
module Pool = Inl_parallel.Pool

(* ---- access collection ---- *)

let rec reads_of_expr acc = function
  | Ast.Eref r -> r :: acc
  | Ast.Econst _ | Ast.Evar _ -> acc
  | Ast.Ebin (_, a, b) -> reads_of_expr (reads_of_expr acc a) b
  | Ast.Ecall (_, args) -> List.fold_left reads_of_expr acc args

let writes_of (si : Layout.stmt_info) = [ si.stmt.lhs ]
let reads_of (si : Layout.stmt_info) = List.rev (reads_of_expr [] si.stmt.rhs)

(* ---- symbolic systems ---- *)

let src_prefix = "s!"
let dst_prefix = "t!"

let renamer (si : Layout.stmt_info) prefix =
  let own = List.map (fun (_, (l : Ast.loop)) -> l.var) si.loops in
  fun v -> if List.mem v own then prefix ^ v else v

let rename_affine rn (e : Linexpr.t) = Linexpr.rename rn e

(* Loop-bound constraints of one instance, with loop variables renamed. *)
let bounds_constraints (si : Layout.stmt_info) rn : Constr.t list =
  List.concat_map
    (fun (_, (l : Ast.loop)) ->
      (* dependence analysis runs on source programs, whose bounds use the
         natural combiners: a conjunction of per-term constraints *)
      if l.lower.combine <> `Max || l.upper.combine <> `Min then
        invalid_arg "Analysis: union (covering) bounds are not a source-program feature";
      let v = Linexpr.var (rn l.var) in
      let lowers =
        List.map
          (fun ({ num; den } : Ast.bterm) ->
            Constr.ge (Linexpr.sub (Linexpr.scale den v) (rename_affine rn num)))
          l.lower.terms
      in
      let uppers =
        List.map
          (fun ({ num; den } : Ast.bterm) ->
            Constr.ge (Linexpr.sub (rename_affine rn num) (Linexpr.scale den v)))
          l.upper.terms
      in
      lowers @ uppers)
    si.loops

(* Affine expressions (in renamed variables) for every instance-vector
   coordinate of a statement. *)
let coordinate_exprs (layout : Layout.t) (si : Layout.stmt_info) rn : Linexpr.t array =
  let a, b = si.embedding in
  let n = Layout.size layout in
  Array.init n (fun p ->
      let base = Linexpr.const b.(p) in
      List.fold_left
        (fun acc (j, (_, (l : Ast.loop))) ->
          let c = Mat.get a p j in
          if Mpz.is_zero c then acc else Linexpr.add acc (Linexpr.term c (rn l.var)))
        base
        (List.mapi (fun j lp -> (j, lp)) si.loops))

let delta_var p = Printf.sprintf "d!%d" p

let delta_definitions layout s_src s_dst rn_s rn_t : Constr.t list =
  let sv = coordinate_exprs layout s_src rn_s and tv = coordinate_exprs layout s_dst rn_t in
  List.init (Layout.size layout) (fun p ->
      Constr.eq2 (Linexpr.var (delta_var p)) (Linexpr.sub tv.(p) sv.(p)))

let order_constraints common rn_s rn_t (lvl : Dep.level) : Constr.t list =
  let vars = List.map (fun (_, (l : Ast.loop)) -> l.var) common in
  match lvl with
  | Dep.Independent -> List.map (fun v -> Constr.eq2 (Linexpr.var (rn_s v)) (Linexpr.var (rn_t v))) vars
  | Dep.Carried k ->
      List.mapi
        (fun i v ->
          if i < k - 1 then Some (Constr.eq2 (Linexpr.var (rn_s v)) (Linexpr.var (rn_t v)))
          else if i = k - 1 then Some (Constr.lt2 (Linexpr.var (rn_s v)) (Linexpr.var (rn_t v)))
          else None)
        vars
      |> List.filter_map Fun.id

let subscript_constraints (w : Ast.aref) (r : Ast.aref) rn_w rn_r : Constr.t list option =
  if List.length w.index <> List.length r.index then None
  else
    Some
      (List.map2
         (fun a b -> Constr.eq2 (rename_affine rn_w a) (rename_affine rn_r b))
         w.index r.index)

(* Conservative per-level direction vector used when the exact projection
   exhausts its budget: the order constraints of the level are structural
   facts (they define what "carried at level k" / "loop-independent"
   means), so they hold of every concrete dependent pair at that level
   even though Omega never ran — common-loop deltas are 0 above the
   carrying level, >= 1 at it, and unknown ([*]) everywhere else. *)
let conservative_vector layout common_positions (lvl : Dep.level) : Interval.t array =
  let v = Array.make (Layout.size layout) Interval.top in
  (match lvl with
  | Dep.Independent -> List.iter (fun p -> v.(p) <- Interval.zero) common_positions
  | Dep.Carried k ->
      List.iteri
        (fun i p ->
          if i < k - 1 then v.(p) <- Interval.zero else if i = k - 1 then v.(p) <- Interval.plus)
        common_positions);
  v

let analyze_pair ?ctx ?(warn = fun (_ : Diag.t) -> ()) layout (s_src : Layout.stmt_info)
    (s_dst : Layout.stmt_info) (acc_src : Ast.aref) (acc_dst : Ast.aref) (kind : Dep.kind) :
    Dep.t list =
  if not (String.equal acc_src.array acc_dst.array) then []
  else begin
    let rn_s = renamer s_src src_prefix and rn_t = renamer s_dst dst_prefix in
    match subscript_constraints acc_src acc_dst rn_s rn_t with
    | None -> []
    | Some subs ->
        let common = Layout.common_loops layout s_src s_dst in
        let common_positions = Layout.common_loop_positions layout s_src s_dst in
        let base =
          bounds_constraints s_src rn_s @ bounds_constraints s_dst rn_t @ subs
          @ delta_definitions layout s_src s_dst rn_s rn_t
        in
        let levels =
          List.init (List.length common) (fun i -> Dep.Carried (i + 1))
          @
          if
            (not (s_src.path = s_dst.path))
            && Ast.syntactic_compare s_src.path s_dst.path < 0
          then [ Dep.Independent ]
          else []
        in
        let mk level vector approximate =
          {
            Dep.src = s_src.label;
            dst = s_dst.label;
            array = acc_src.array;
            kind;
            level;
            vector;
            approximate;
          }
        in
        List.filter_map
          (fun lvl ->
            let exact () =
              let sys = System.of_list (base @ order_constraints common rn_s rn_t lvl) in
              if not (Omega.satisfiable ?ctx sys) then None
              else begin
                let vector =
                  Array.init (Layout.size layout) (fun p ->
                      Omega.implied_interval ?ctx sys (delta_var p))
                in
                Some (mk lvl vector false)
              end
            in
            match exact () with
            | r -> r
            | exception Omega.Blowup reason ->
                (* degrade, never crash: a conservative dependence covers
                   every pair the exact projection could have found, so
                   downstream legality can only get stricter *)
                let d = mk lvl (conservative_vector layout common_positions lvl) true in
                warn
                  (Diag.warningf ~code:"A201" ~phase:Diag.Analysis
                     "approximate dependence %a: %s" Dep.pp d reason);
                Some d)
          levels
  end

let dependences_diag (layout : Layout.t) : Dep.t list * Diag.t list =
  let ctx = Omega.new_analysis () in
  let stmts = layout.stmts in
  (* One task per conflicting reference pair, in traversal order.  Each
     task is independent (its own diagnostic accumulator; the solver ctx
     is domain-safe), so the pool may run them on any schedule; merging in
     task order keeps diagnostics deterministic, and the final sort makes
     the dependence list schedule-independent. *)
  let tasks =
    List.concat_map
      (fun s_src ->
        List.concat_map
          (fun s_dst ->
            let pairs =
              List.concat_map
                (fun w -> List.map (fun r -> (w, r, Dep.Flow)) (reads_of s_dst))
                (writes_of s_src)
              @ List.concat_map
                  (fun r -> List.map (fun w -> (r, w, Dep.Anti)) (writes_of s_dst))
                  (reads_of s_src)
              @ List.concat_map
                  (fun w -> List.map (fun w' -> (w, w', Dep.Output)) (writes_of s_dst))
                  (writes_of s_src)
            in
            List.map (fun (a_src, a_dst, kind) -> (s_src, s_dst, a_src, a_dst, kind)) pairs)
          stmts)
      stmts
  in
  let results =
    Pool.map
      (fun (s_src, s_dst, a_src, a_dst, kind) ->
        let diags = ref [] in
        let warn d = diags := d :: !diags in
        let deps = analyze_pair ~ctx ~warn layout s_src s_dst a_src a_dst kind in
        (deps, List.rev !diags))
      tasks
  in
  let deps = List.concat_map fst results |> List.stable_sort Dep.compare in
  (deps, List.concat_map snd results)

let dependences (layout : Layout.t) : Dep.t list = fst (dependences_diag layout)

let self_dependences deps label =
  List.filter (fun (d : Dep.t) -> String.equal d.src label && String.equal d.dst label) deps

(* ---- concrete oracle ---- *)

type cell = string * int list

let concrete_dependences (layout : Layout.t) ~params =
  let prog = layout.program in
  let instances = Meval.enumerate prog ~params in
  (* Timeline of accesses: (time, label, iters, cell, is_write).  Within a
     single instance, reads precede the write. *)
  let accesses = ref [] in
  List.iteri
    (fun time (label, iters) ->
      let si = Layout.stmt_info layout label in
      let env v =
        match List.assoc_opt v params with
        | Some x -> x
        | None ->
            let rec find i = function
              | [] -> invalid_arg ("concrete_dependences: unbound " ^ v)
              | (_, (l : Ast.loop)) :: rest -> if String.equal l.var v then iters.(i) else find (i + 1) rest
            in
            find 0 si.loops
      in
      let eval_ref (r : Ast.aref) : cell = (r.array, List.map (Meval.eval_affine env) r.index) in
      List.iter
        (fun r -> accesses := ((time, 0), label, iters, eval_ref r, false) :: !accesses)
        (reads_of si);
      List.iter
        (fun w -> accesses := ((time, 1), label, iters, eval_ref w, true) :: !accesses)
        (writes_of si))
    instances;
  let accesses = List.rev !accesses in
  (* group by cell *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ((t, lbl, it, cell, w) : (int * int) * string * int array * cell * bool) ->
      let cur = try Hashtbl.find tbl cell with Not_found -> [] in
      Hashtbl.replace tbl cell ((t, lbl, it, w) :: cur))
    (List.map (fun (a, b, c, d, e) -> (a, b, c, d, e)) accesses);
  let results = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _cell accs ->
      let accs = List.sort (fun (t1, _, _, _) (t2, _, _, _) -> compare t1 t2) (List.rev accs) in
      let rec pairs = function
        | [] -> ()
        | ((t1, l1, i1, w1) as a) :: rest ->
            List.iter
              (fun (t2, l2, i2, w2) ->
                (* skip same-instance pairs and read-read pairs *)
                if (not (l1 = l2 && i1 = i2)) && (w1 || w2) && fst t1 <> fst t2 then begin
                  let kind = if w1 && w2 then Dep.Output else if w1 then Dep.Flow else Dep.Anti in
                  let iv1 = Layout.instance_vector layout l1 i1 in
                  let iv2 = Layout.instance_vector layout l2 i2 in
                  let diff = Vec.to_int_array (Vec.sub iv2 iv1) in
                  Hashtbl.replace results (l1, l2, kind, diff) ()
                end)
              rest;
            ignore a;
            pairs rest
      in
      pairs accs)
    tbl;
  Hashtbl.fold (fun (l1, l2, k, d) () acc -> (l1, l2, k, d) :: acc) results []
  |> List.sort compare
