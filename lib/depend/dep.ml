module Interval = Inl_presburger.Interval

type kind = Flow | Anti | Output

type level = Independent | Carried of int

type t = {
  src : string;
  dst : string;
  array : string;
  kind : kind;
  level : level;
  vector : Interval.t array;
  approximate : bool;
}

let kind_to_string = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

let kind_rank = function Flow -> 0 | Anti -> 1 | Output -> 2
let level_rank = function Independent -> (0, 0) | Carried k -> (1, k)

(* Total deterministic order used to sort analyzer output, so parallel
   and sequential runs produce identical listings.  Interval bounds are
   canonical (Mpz is sign-magnitude with no redundant forms), so the
   structural tie-break on vectors is schedule-independent. *)
let compare a b =
  let ( <?> ) c k = if c <> 0 then c else k () in
  String.compare a.src b.src <?> fun () ->
  String.compare a.dst b.dst <?> fun () ->
  String.compare a.array b.array <?> fun () ->
  Int.compare (kind_rank a.kind) (kind_rank b.kind) <?> fun () ->
  Stdlib.compare (level_rank a.level) (level_rank b.level) <?> fun () ->
  Stdlib.compare a.vector b.vector <?> fun () ->
  Bool.compare a.approximate b.approximate

let level_to_string = function
  | Independent -> "independent"
  | Carried k -> Printf.sprintf "carried(%d)" k

let vector_symbols d = Array.to_list (Array.map Interval.to_symbol d.vector)

let pp fmt d =
  Format.fprintf fmt "%s %s->%s on %s [%s] (%s)%s" (kind_to_string d.kind) d.src d.dst d.array
    (String.concat ", " (vector_symbols d))
    (level_to_string d.level)
    (if d.approximate then " [approximate]" else "")

let pp_matrix fmt (deps : t list) =
  match deps with
  | [] -> Format.fprintf fmt "(no dependences)"
  | d0 :: _ ->
      let n = Array.length d0.vector in
      let cols = List.map vector_symbols deps in
      let widths =
        List.map (fun col -> List.fold_left (fun acc s -> max acc (String.length s)) 1 col) cols
      in
      Format.fprintf fmt "@[<v>";
      Format.fprintf fmt "%s@,"
        (String.concat "  "
           (List.map2
              (fun d w -> Printf.sprintf "%-*s" w (Printf.sprintf "%s>%s" d.src d.dst))
              deps
              (List.map2 (fun w d -> max w (String.length d.src + String.length d.dst + 1)) widths deps)));
      for i = 0 to n - 1 do
        let row =
          List.map2
            (fun col (w, d) ->
              Printf.sprintf "%-*s" (max w (String.length d.src + String.length d.dst + 1)) (List.nth col i))
            cols
            (List.combine widths deps)
        in
        Format.fprintf fmt "%s@," (String.concat "  " row)
      done;
      Format.fprintf fmt "@]"
