(** Transformations for imperfectly nested loops — the public API.

    This library implements Kodukula & Pingali's framework (SC 1996): a
    program's dynamic statement instances are mapped to {e instance
    vectors} ({!Inl_instance.Layout}), dependences between them are
    computed exactly and abstracted as interval vectors
    ({!Inl_depend.Analysis}), and loop transformations — permutation,
    reversal, skewing, scaling, statement alignment and reordering,
    distribution and jamming — are integer matrices acting on instance
    vectors ({!Tmat}), closed under composition.  {!Legality} implements
    Definition 6, {!Completion} the Section 6 completion procedure, and
    {!Codegen}/{!Simplify} regenerate runnable loop nests (Section 5).

    Quick start:
    {[
      let ctx = Inl.analyze_source "params N\ndo I = 1..N ... enddo" in
      let m = Inl.Tmat.interchange ctx.layout "I" "J" in
      match Inl.check ctx m with
      | Inl.Legality.Legal _ -> let p = Inl.transform_exn ctx m in ...
      | Inl.Legality.Illegal reason -> ...
    ]} *)

module Tmat = Tmat
module Blockstruct = Blockstruct
module Legality = Legality
module Perstmt = Perstmt
module Complete = Complete
module Completion = Completion
module Completion_ext = Completion_ext
module Pipeline = Pipeline
module Boundsgen = Boundsgen
module Codegen = Codegen
module Simplify = Simplify

module Ast = Inl_ir.Ast
module Parser = Inl_ir.Parser
module Pp = Inl_ir.Pp
module Layout = Inl_instance.Layout
module Dep = Inl_depend.Dep
module Analysis = Inl_depend.Analysis
module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Diag = Inl_diag.Diag
module Budget = Inl_diag.Budget
module Faults = Inl_diag.Faults
module Stats = Inl_diag.Stats
module Omega = Inl_presburger.Omega
module Cache = Inl_presburger.Cache
module Pool = Inl_parallel.Pool

type context = {
  program : Ast.program;
  layout : Layout.t;
  deps : Dep.t list;
  diags : Diag.t list;
      (** analysis warnings — one [A201] per approximate (budget-degraded)
          dependence; empty when the analysis was exact *)
}

let degraded (ctx : context) = List.exists (fun (d : Dep.t) -> d.Dep.approximate) ctx.deps

(** Parse, lay out and analyze a program.  Never raises on analysis
    budget exhaustion — degraded levels surface as approximate
    dependences plus warnings in [diags]. *)
let analyze ?padding (program : Ast.program) : context =
  Stats.timed "analysis" (fun () ->
      let layout = Layout.of_program ?padding program in
      let deps, diags = Analysis.dependences_diag layout in
      { program; layout; deps; diags })

let analyze_source ?padding (src : string) : context = analyze ?padding (Parser.parse_exn src)

(** Result-typed front door: parse and layout failures come back as error
    diagnostics instead of exceptions. *)
let analyze_source_result ?padding (src : string) : (context, Diag.t list) result =
  match Parser.parse src with
  | Error msg -> Error [ Diag.error ~code:"P101" ~phase:Diag.Parse msg ]
  | Ok prog -> (
      match analyze ?padding prog with
      | ctx -> Ok ctx
      | exception Invalid_argument msg -> Error [ Diag.error ~code:"Y102" ~phase:Diag.Layout msg ])

let check (ctx : context) (m : Mat.t) : Legality.verdict =
  Stats.timed "legality" (fun () -> Legality.check ~jobs:(Pool.jobs ()) ctx.layout m ctx.deps)

(** Generate the transformed program for a legal matrix; [simplify]
    (default true) applies the cleanup pass of Section 5.5.  Errors are
    typed diagnostics: [L302] illegal transformation, [G501] code
    generation failure, [B501] presburger blowup during bound
    generation. *)
let transform (ctx : context) ?(simplify = true) (m : Mat.t) : (Ast.program, Diag.t list) result
    =
  match check ctx m with
  | Legality.Illegal msg ->
      Error [ Diag.error ~code:"L302" ~phase:Diag.Legality ("illegal transformation: " ^ msg) ]
  | Legality.Legal { structure; unsatisfied } -> (
      match
        Stats.timed "codegen" (fun () ->
            let prog = Codegen.generate structure ~unsatisfied in
            if simplify then Simplify.simplify prog else prog)
      with
      | prog -> Ok prog
      | exception Codegen.Codegen_error msg ->
          Error [ Diag.error ~code:"G501" ~phase:Diag.Codegen msg ]
      | exception Inl_presburger.Omega.Blowup msg ->
          Error
            [
              Diag.error ~code:"B501" ~phase:Diag.Presburger
                ("resource budget exhausted during code generation: " ^ msg);
            ])

let transform_exn ctx ?simplify m =
  match transform ctx ?simplify m with Ok p -> p | Error ds -> failwith (Diag.list_to_string ds)

(** The completion procedure (Section 6): extend the given first rows to
    a full legal transformation. *)
let complete ?options (ctx : context) ~(partial : Vec.t list) : Mat.t option =
  Stats.timed "completion" (fun () -> Completion.complete ?options ctx.layout ctx.deps ~partial)

(** Result-typed completion: search failures and internal errors come
    back as diagnostics ([C401] no completion, [C402] internal). *)
let complete_result ?options (ctx : context) ~(partial : Vec.t list) :
    (Mat.t, Diag.t list) result =
  match complete ?options ctx ~partial with
  | Some m -> Ok m
  | None ->
      Error
        [
          Diag.error ~code:"C401" ~phase:Diag.Completion
            "no legal completion found (search space exhausted or budget ran out)";
        ]
  | exception (Failure msg | Invalid_argument msg) ->
      Error [ Diag.error ~code:"C402" ~phase:Diag.Completion msg ]

(** Compose a pipeline of named transformation steps (each phrased
    against the program shape current at that step) into one matrix. *)
let pipeline (ctx : context) (steps : Pipeline.step list) : (Mat.t, Diag.t list) result =
  Pipeline.compose ctx.layout steps
