(** Multi-step transformation pipelines.

    Sequences of transformations compose by matrix product (the paper's
    central algebraic property), but each step's {e builder} must be
    phrased against the program shape produced by the previous steps
    (statement reordering changes which positions are which).  This
    module owns that bookkeeping: it applies steps left to right,
    rebuilding the layout through {!Blockstruct} after each one, and
    returns the single composite matrix. *)

module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout
module Diag = Inl_diag.Diag

type step =
  | Interchange of string * string
  | Reverse of string
  | Scale of string * int
  | Skew of { target : string; source : string; factor : int }
  | Align of { stmt : string; loop : string; amount : int }
  | Reorder of { parent : Ast.path; perm : int list }
      (** [parent] is a path in the program shape current at this step *)

val pp_step : Format.formatter -> step -> unit

val step_of_spec : kind:string -> string -> (step, string) result
(** Parse the CLI surface syntax of one step: [kind] is the option name
    ([interchange], [reverse], [scale], [skew], [align], [reorder]) and
    the string its argument, e.g. [step_of_spec ~kind:"skew" "J,I,1"].
    The error is a human-readable message naming the bad argument. *)

val extend : Layout.t -> Mat.t -> step -> (Mat.t * Layout.t, Diag.t list) result
(** One composition iteration: build [step] against [layout], multiply
    it into the accumulated matrix, and advance the layout through
    {!Blockstruct}.  {!compose} is a fold of this; exposing the single
    iteration lets callers that share step prefixes (the autotuner's
    beam, which extends each parent recipe by one move) memoize prefix
    results and pay for exactly one new step per candidate while
    computing bit-identical matrices. *)

val compose : Layout.t -> step list -> (Mat.t, Diag.t list) result
(** The composite matrix over the original layout, or error diagnostics
    (code [T301]) naming the failing step — builder exceptions are caught
    and typed, never propagated. *)
