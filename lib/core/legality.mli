(** The legality test of Definition 6.

    A transformation matrix [M] is legal when (i) it has the recursive
    block structure ({!Blockstruct}), and (ii) for every dependence [d]
    from [S1] to [S2], the projection [P] of [M.d] onto the loops common
    to [S1] and [S2] (taken in the transformed program's outer-to-inner
    order) satisfies [P > 0], or [P = 0] with [S1] syntactically before
    [S2] in the new AST.  A self-dependence with [P = 0] is merely
    {e unsatisfied}: it must later be carried by the extra loops added
    during augmentation (Section 5.4), so the verdict reports the
    unsatisfied dependences rather than rejecting them.

    Dependence vectors are interval (box) abstractions, so the check is
    conservative: [Legal] certifies every concrete dependent pair. *)

module Mat = Inl_linalg.Mat
module Interval = Inl_presburger.Interval
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout

type verdict =
  | Legal of { structure : Blockstruct.t; unsatisfied : Dep.t list }
  | Illegal of string

val transformed_vector : Mat.t -> Dep.t -> Interval.t array
(** [M . d] by exact interval arithmetic, indexed by new positions. *)

type cache
(** Memo of per-dependence verdicts, keyed on exactly what a verdict
    reads: the dependence, the new positions of its common loops, the
    matrix rows at those positions, and the transformed syntactic order
    of its endpoints.  The completion search shares one across candidate
    matrices (which differ in few rows), turning repeated leaf checks
    into lookups.  Safe for concurrent use. *)

val make_cache : unit -> cache

val check : ?jobs:int -> ?cache:cache -> Layout.t -> Mat.t -> Dep.t list -> verdict
(** With [jobs > 1] the per-dependence classifications fan out over
    {!Inl_parallel.Pool}; the verdict is schedule-independent (the first
    offender in dependence order is reported, and the sequential path
    stops classifying at it). *)

val is_legal : ?jobs:int -> ?cache:cache -> Layout.t -> Mat.t -> Dep.t list -> bool
