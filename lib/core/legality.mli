(** The legality test of Definition 6.

    A transformation matrix [M] is legal when (i) it has the recursive
    block structure ({!Blockstruct}), and (ii) for every dependence [d]
    from [S1] to [S2], the projection [P] of [M.d] onto the loops common
    to [S1] and [S2] (taken in the transformed program's outer-to-inner
    order) satisfies [P > 0], or [P = 0] with [S1] syntactically before
    [S2] in the new AST.  A self-dependence with [P = 0] is merely
    {e unsatisfied}: it must later be carried by the extra loops added
    during augmentation (Section 5.4), so the verdict reports the
    unsatisfied dependences rather than rejecting them.

    Dependence vectors are interval (box) abstractions, so the check is
    conservative: [Legal] certifies every concrete dependent pair. *)

module Mat = Inl_linalg.Mat
module Interval = Inl_presburger.Interval
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout

type verdict =
  | Legal of { structure : Blockstruct.t; unsatisfied : Dep.t list }
  | Illegal of string

val transformed_vector : Mat.t -> Dep.t -> Interval.t array
(** [M . d] by exact interval arithmetic, indexed by new positions. *)

val dep_id : Dep.t -> string
(** Canonical exact rendering of one dependence (endpoints, array, kind,
    level, approximation flag, and the interval vector with exact
    bounds — unlike {!Dep.pp}, which abbreviates intervals to direction
    symbols).  Used as the dependence component of process-wide memo
    keys. *)

type cache
(** Memo of per-dependence verdicts, keyed on exactly what a verdict
    reads: the dependence, the new positions of its common loops, the
    matrix rows at those positions, and the transformed syntactic order
    of its endpoints.  The completion search shares one across candidate
    matrices (which differ in few rows), turning repeated leaf checks
    into lookups.  Safe for concurrent use. *)

val make_cache : unit -> cache

val check : ?jobs:int -> ?cache:cache -> Layout.t -> Mat.t -> Dep.t list -> verdict
(** With [jobs > 1] the per-dependence classifications fan out over
    {!Inl_parallel.Pool}; the verdict is schedule-independent (the first
    offender in dependence order is reported, and the sequential path
    stops classifying at it). *)

val is_legal : ?jobs:int -> ?cache:cache -> Layout.t -> Mat.t -> Dep.t list -> bool

(** {1 Incremental (delta) checking}

    A beam search extends a known-legal parent state by one move.  The
    verdict of one dependence is a pure function of (a) the candidate's
    rows at the new positions of the dependence's common loops, taken in
    the transformed outer-to-inner order, and (b) for cross-statement
    dependences, the transformed syntactic order of its endpoints.  So
    when every common loop of a dependence sits at the same new position
    with the same row in both parent and child, and its endpoints keep
    the same transformed syntactic order, the child's verdict provably
    equals the parent's and is inherited without re-deriving it.  Anything short of
    that proof falls back to the full classification (per-search cache →
    process-wide memo → interval arithmetic), so the delta never weakens
    the check — it only skips recomputing verdicts whose inputs are
    bit-identical. *)

type env
(** Per-(program, dependence-set) precomputation shared by every
    candidate of a search: canonical dependence ids for the process-wide
    memo, common old-loop positions and untransformed statement paths
    per dependence. *)

val make_env : Layout.t -> Dep.t list -> env

type summary
(** What the delta test compares between parent and child: per old loop
    position its new position and matrix row, the per-dependence
    transformed endpoint order (with the statement permutation it was
    derived from, so equal permutations share the array), and the
    per-dependence verdicts.  Produced only for [Legal] candidates
    (only those are ever extended). *)

val check_env : ?cache:cache -> ?parent:summary -> env -> Mat.t -> verdict * summary option
(** Like {!check} (sequential, first offender in dependence order), but
    (i) consults the process-wide verdict memo behind the per-search
    [cache], and (ii) given the [parent] summary, inherits every verdict
    whose inputs are unchanged by the move. *)

(** {1 Process-wide verdict memo}

    Two-generation table mirroring the Omega projection cache, keyed on
    a canonical string of exactly what a verdict reads (dependence id,
    common-loop rows outer-to-inner, transformed endpoint order).  It
    survives across searches and passes, so a re-search of a known
    program classifies dependences by lookup. *)

val set_memo_enabled : bool -> unit
val memo_enabled : unit -> bool

val memo_stats : unit -> Inl_diag.Memo.stats
(** Hits/misses/evictions/entries of the process-wide verdict memo. *)

val clear_memo : unit -> unit

val delta_stats : unit -> int * int
(** [(inherited, checked)] verdict counts over all {!check_env} calls
    since the last {!reset_delta_stats}. *)

val reset_delta_stats : unit -> unit
