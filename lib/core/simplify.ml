(* The "standard optimizations" of Section 5.5 that clean up generated
   code:

   - integral [Let] bindings (denominator 1) are substituted into their
     bodies and removed, recovering the paper's direct-subscript style for
     unimodular transformations;
   - guards implied by the enclosing context (loop bounds, other guards,
     let definitions) are dropped, using the exact integer decision
     procedure;
   - empty [If]s are spliced away. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Omega = Inl_presburger.Omega
module Ast = Inl_ir.Ast

(* ---- Let substitution ---- *)

let affine_to_expr (e : Linexpr.t) : Ast.expr =
  let terms =
    Linexpr.fold
      (fun v c acc ->
        let t =
          if Mpz.is_one c then Ast.Evar v
          else Ast.Ebin (Ast.Mul, Ast.Econst (float_of_int (Mpz.to_int c)), Ast.Evar v)
        in
        t :: acc)
      e []
  in
  let const = Mpz.to_int (Linexpr.constant e) in
  let base = if const <> 0 || terms = [] then Some (Ast.Econst (float_of_int const)) else None in
  let all = match base with Some b -> terms @ [ b ] | None -> terms in
  match all with
  | [] -> Ast.Econst 0.
  | x :: rest -> List.fold_left (fun acc t -> Ast.Ebin (Ast.Add, acc, t)) x rest

let subst_expr (v : string) (def : Linexpr.t) : Ast.expr -> Ast.expr =
  let rec walk e =
    match e with
    | Ast.Evar x when String.equal x v -> affine_to_expr def
    | Ast.Evar _ | Ast.Econst _ -> e
    | Ast.Eref r -> Ast.Eref { r with Ast.index = List.map (fun a -> Linexpr.subst a v def) r.Ast.index }
    | Ast.Ebin (op, a, b) -> Ast.Ebin (op, walk a, walk b)
    | Ast.Ecall (f, args) -> Ast.Ecall (f, List.map walk args)
  in
  walk

let subst_guard v def = function
  | Ast.Gcmp (k, e) -> Ast.Gcmp (k, Linexpr.subst e v def)
  | Ast.Gdiv (d, e) -> Ast.Gdiv (d, Linexpr.subst e v def)

let subst_bterm v def ({ Ast.num; den } : Ast.bterm) : Ast.bterm =
  { Ast.num = Linexpr.subst num v def; den }

let subst_bound v def (b : Ast.bound) : Ast.bound =
  { b with Ast.terms = List.map (subst_bterm v def) b.Ast.terms }

let rec subst_node v def (node : Ast.node) : Ast.node =
  match node with
  | Ast.Stmt s ->
      Ast.Stmt
        {
          s with
          Ast.lhs = { s.Ast.lhs with Ast.index = List.map (fun a -> Linexpr.subst a v def) s.Ast.lhs.Ast.index };
          rhs = subst_expr v def s.Ast.rhs;
        }
  | Ast.If (gs, body) -> Ast.If (List.map (subst_guard v def) gs, List.map (subst_node v def) body)
  | Ast.Let (x, bt, body) ->
      if String.equal x v then Ast.Let (x, subst_bterm v def bt, body)
      else Ast.Let (x, subst_bterm v def bt, List.map (subst_node v def) body)
  | Ast.Loop l ->
      Ast.Loop
        {
          l with
          Ast.lower = subst_bound v def l.Ast.lower;
          upper = subst_bound v def l.Ast.upper;
          body = List.map (subst_node v def) l.Ast.body;
        }

let rec inline_integral_lets (node : Ast.node) : Ast.node list =
  match node with
  | Ast.Stmt _ -> [ node ]
  | Ast.If (gs, body) -> [ Ast.If (gs, List.concat_map inline_integral_lets body) ]
  | Ast.Loop l -> [ Ast.Loop { l with Ast.body = List.concat_map inline_integral_lets l.Ast.body } ]
  | Ast.Let (v, { Ast.num; den }, body) ->
      if Mpz.is_one den then
        List.concat_map inline_integral_lets (List.map (subst_node v num) body)
      else [ Ast.Let (v, { Ast.num; den }, List.concat_map inline_integral_lets body) ]

(* ---- guard elimination ---- *)

(* Conjunctive facts contributed by an enclosing construct. *)
let bound_facts (l : Ast.loop) : Constr.t list =
  let v = Linexpr.var l.Ast.var in
  (* a covering (union) bound yields conjunctive facts only when it has a
     single term, in which case the combiner is irrelevant *)
  let lowers =
    if l.Ast.lower.Ast.combine = `Max || List.length l.Ast.lower.Ast.terms = 1 then
      List.map
        (fun ({ Ast.num; den } : Ast.bterm) -> Constr.ge2 (Linexpr.scale den v) num)
        l.Ast.lower.Ast.terms
    else []
  in
  let uppers =
    if l.Ast.upper.Ast.combine = `Min || List.length l.Ast.upper.Ast.terms = 1 then
      List.map
        (fun ({ Ast.num; den } : Ast.bterm) -> Constr.le2 (Linexpr.scale den v) num)
        l.Ast.upper.Ast.terms
    else []
  in
  lowers @ uppers

let guard_fact = function
  | Ast.Gcmp (`Ge, e) -> Some (Constr.ge e)
  | Ast.Gcmp (`Eq, e) -> Some (Constr.eq e)
  | Ast.Gdiv _ -> None

let let_fact v ({ Ast.num; den } : Ast.bterm) = Constr.eq2 (Linexpr.scale den (Linexpr.var v)) num

(* Budget exhaustion during cleanup must never abort code generation:
   an unprovable implication keeps the guard or bound term, an undecided
   satisfiability keeps the divisibility guard — larger but correct
   output either way. *)
let implies_or_keep sys c = try Omega.implies sys c with Omega.Blowup _ -> false
let satisfiable_or_keep sys = try Omega.satisfiable sys with Omega.Blowup _ -> true

(* Remove dominated bound terms: inside a max a term that never exceeds
   another may go, inside a min a term that is never below another may
   go.  Dominance is decided on the rational values (t1/d1 <= t2/d2 under
   the context), which implies the same ordering of the rounded values. *)
let prune_bound_terms context (b : Ast.bound) : Ast.bound =
  if List.length b.Ast.terms <= 1 then b
  else begin
    let sys = System.of_list context in
    let le (t1 : Ast.bterm) (t2 : Ast.bterm) =
      (* t1/d1 <= t2/d2  <=>  d1*num2 - d2*num1 >= 0 *)
      implies_or_keep sys
        (Constr.ge
           (Linexpr.sub (Linexpr.scale t1.Ast.den t2.Ast.num) (Linexpr.scale t2.Ast.den t1.Ast.num)))
    in
    (* under Max, drop t when t <= o for some other kept term o; under Min,
       drop t when o <= t *)
    let superseded t o = match b.Ast.combine with `Max -> le t o | `Min -> le o t in
    let rec go kept = function
      | [] -> List.rev kept
      | t :: rest ->
          if List.exists (fun o -> superseded t o) (kept @ rest) then go kept rest
          else go (t :: kept) rest
    in
    match go [] b.Ast.terms with [] -> b | terms -> { b with Ast.terms }
  end

let prune_guards (prog : Ast.program) : Ast.program =
  let rec walk context node =
    match node with
    | Ast.Stmt _ -> [ node ]
    | Ast.Loop l ->
        let l =
          {
            l with
            Ast.lower = prune_bound_terms context l.Ast.lower;
            upper = prune_bound_terms context l.Ast.upper;
          }
        in
        let ctx' = bound_facts l @ context in
        [ Ast.Loop { l with Ast.body = List.concat_map (walk ctx') l.Ast.body } ]
    | Ast.Let (v, bt, body) ->
        let ctx' = let_fact v bt :: context in
        [ Ast.Let (v, bt, List.concat_map (walk ctx') body) ]
    | Ast.If (gs, body) ->
        let sys = System.of_list context in
        let keep =
          List.filter
            (fun g ->
              match g with
              | Ast.Gcmp (`Ge, e) -> not (implies_or_keep sys (Constr.ge e))
              | Ast.Gcmp (`Eq, e) -> not (implies_or_keep sys (Constr.eq e))
              | Ast.Gdiv (d, _) when Mpz.is_one d -> false
              | Ast.Gdiv (d, e) ->
                  (* the context implies d | e iff context with a non-zero
                     remainder (e = d w + r, 1 <= r <= d-1) is unsat *)
                  let r = Omega.fresh_var () and w = Omega.fresh_var () in
                  let non_divisible =
                    [
                      Constr.eq2 e (Linexpr.add (Linexpr.term d w) (Linexpr.var r));
                      Constr.ge2 (Linexpr.var r) (Linexpr.of_int 1);
                      Constr.le2 (Linexpr.var r) (Linexpr.const (Mpz.pred d));
                    ]
                  in
                  satisfiable_or_keep (System.append non_divisible sys))
            gs
        in
        let ctx' = List.filter_map guard_fact gs @ context in
        let body' = List.concat_map (walk ctx') body in
        if keep = [] then body' else [ Ast.If (keep, body') ]
  in
  { prog with Ast.nest = List.concat_map (walk []) prog.Ast.nest }

(* ---- stride recovery ----

   The "steps" half of Lemma 3: a loop whose body is a single
   [if (v - c mod d = 0)] (with the loop's own variable v) enumerates an
   arithmetic progression; when the loop's lower bound is a constant
   already on the progression, the guard becomes a step.  This recovers
   the strided loops the paper's non-unimodular transformations (e.g.
   scaling) imply, instead of a guard executed every iteration. *)

let recover_strides (prog : Ast.program) : Ast.program =
  let rec walk node =
    match node with
    | Ast.Stmt _ -> node
    | Ast.If (gs, body) -> Ast.If (gs, List.map walk body)
    | Ast.Let (v, bt, body) -> Ast.Let (v, bt, List.map walk body)
    | Ast.Loop l -> (
        let l = { l with Ast.body = List.map walk l.Ast.body } in
        match (l.Ast.body, l.Ast.lower.Ast.terms) with
        | [ Ast.If (gs, inner) ], [ lo ]
          when Mpz.is_one l.Ast.step
               && Mpz.is_one lo.Ast.den
               && Linexpr.is_constant lo.Ast.num ->
            let lo_c = Linexpr.constant lo.Ast.num in
            (* find a guard d | (v + c) whose progression starts at lo *)
            let matches g =
              match g with
              | Ast.Gdiv (d, e) ->
                  let a = Linexpr.coeff e l.Ast.var in
                  let rest = Linexpr.sub e (Linexpr.term a l.Ast.var) in
                  Mpz.is_one (Mpz.abs a)
                  && Linexpr.is_constant rest
                  && Mpz.is_zero
                       (Mpz.fmod
                          (Linexpr.eval e (fun x ->
                               if String.equal x l.Ast.var then lo_c else Mpz.zero))
                          d)
              | _ -> false
            in
            (match List.partition matches gs with
            | Ast.Gdiv (d, _) :: _, others ->
                let body' = if others = [] then inner else [ Ast.If (others, inner) ] in
                Ast.Loop { l with Ast.step = d; body = body' }
            | _ -> Ast.Loop l)
        | _ -> Ast.Loop l)
  in
  { prog with Ast.nest = List.map walk prog.Ast.nest }

let simplify (prog : Ast.program) : Ast.program =
  let prog = { prog with Ast.nest = List.concat_map inline_integral_lets prog.Ast.nest } in
  recover_strides (prune_guards prog)
