(** Per-statement transformations (Definition 7, Section 5.4).

    A statement S nested in [k] loops has instance vectors
    [iv = A_S i + b_S] (the layout embedding).  Under a transformation
    matrix [M] the image vector is [(M A_S) i + M b_S]; reading off the
    rows at the positions of S's loops in the transformed AST gives the
    [k x k] per-statement matrix together with a constant offset
    (non-zero exactly when the transformation aligns S).  The matrix may
    be singular — Section 5.4's example collapses S1's loop to the single
    row [[0]] — in which case {!Complete} adds rows. *)

module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec

type t = {
  label : string;
  matrix : Mat.t;  (** the [k x k] per-statement transformation [T_S] *)
  offset : Vec.t;  (** alignment offset, length [k] *)
  new_loop_rows : int list;
      (** positions (rows of [M]) of the statement's loops in the new
          layout, outer to inner — the rows [T_S] was read from *)
}

val of_structure : Blockstruct.t -> string -> t
(** [of_structure st label] extracts the per-statement transformation of
    the labeled statement from a checked block structure. *)

val rank : t -> int
val is_singular : t -> bool

val canonical_rows : Mat.t -> Mat.t
(** Row-canonical form used as the reuse-signature memo key
    ({!Inl_reuse}): every row divided by the gcd of its entries and
    sign-normalized so its first non-zero entry is positive.  Scaling a
    row of [T_S] by a positive factor (or negating it) rescales one
    column of [T_S^-1] without moving its direction, so the per-loop
    reuse classes of a statement depend only on this form; the rank (and
    hence singularity) is also preserved. *)
