(* Code generation (Section 5): from a legal transformation matrix to a
   runnable transformed program.

   Per statement S (nested in k loops, per-statement transformation T_S
   with alignment offset o_S, augmented by Complete with q extra rows):

   - the target nest for S is the k reordered loops of the new AST
     followed by q private augmentation loops;
   - loop bounds come from Fourier-Motzkin projection of the system
     { y = T'_S i + o_S,  original bounds on i } (Lemma 3);
   - the original iterators are reconstructed from the non-singular rows
     (Definition 8) as exact rational solves, emitted as [Let] bindings
     with divisibility guards when T'_S is not unimodular;
   - guards re-impose the original bounds and the singular-row conditions
     (Section 5.5), discarding the spurious iterations that the rational
     bound relaxation or a shared loop's covering bounds admit.

   A loop shared by several statements gets covering (union) bounds: the
   min of the statements' lower bounds and the max of their uppers. *)

module Mpz = Inl_num.Mpz
module Q = Inl_num.Q
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Gauss = Inl_linalg.Gauss
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout
module Dep = Inl_depend.Dep
module Analysis = Inl_depend.Analysis

exception Codegen_error of string

let err fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

type stmt_plan = {
  si_old : Layout.stmt_info;
  shared_count : int;
  bounds : Boundsgen.loop_bounds list;
      (* one per new loop variable, outer to inner (k shared then q
         private); [] when infeasible *)
  feasible : bool;
  lets : (string * Ast.bterm) list; (* original iterator reconstructions, outer first *)
  div_guards : Ast.guard list;
  post_guards : Ast.guard list; (* original bounds + singular rows, over let-bound names *)
}

let ivar_prefix = "i!"

(* A fresh-name supply avoiding the program's parameters, arrays and
   labels. *)
let name_supply (prog : Ast.program) prefix =
  let taken =
    prog.Ast.params @ Ast.arrays prog @ Ast.loop_vars prog
    @ List.map (fun (_, (s : Ast.stmt)) -> s.Ast.label) (Ast.stmts_with_paths prog)
  in
  let counter = ref 0 in
  fun () ->
    incr counter;
    let rec pick base = if List.mem base taken then pick (base ^ "_") else base in
    pick (Printf.sprintf "%s%d" prefix !counter)

let plan_statement (st : Blockstruct.t) (unsat : Dep.t list)
    (new_loop_name : int -> string) (fresh_aug : unit -> string) (label : string) : stmt_plan =
  let old_layout = st.Blockstruct.old_layout in
  let si_old = Layout.stmt_info old_layout label in
  let k = List.length si_old.Layout.loops in
  let pst = Perstmt.of_structure st label in
  (* unsatisfied self-dependences, projected onto S's own loop coords *)
  let self_unsat =
    List.filter (fun (d : Dep.t) -> d.src = label && d.dst = label) unsat
    |> List.map (fun (d : Dep.t) ->
           Array.of_list (List.map (fun p -> d.vector.(p)) si_old.Layout.loop_pos))
  in
  let added = Complete.augment pst.Perstmt.matrix self_unsat in
  let q = List.length added in
  let tprime = Array.append pst.Perstmt.matrix (Array.of_list added) in
  let offsets = Array.append pst.Perstmt.offset (Vec.zero q) in
  let shared_names = List.map new_loop_name pst.Perstmt.new_loop_rows in
  let aug_names = List.init q (fun _ -> fresh_aug ()) in
  let scan_vars = shared_names @ aug_names in
  (* constraint system over { i!v } + scan vars + params: only the
     statement's own loop variables are renamed, parameters pass through *)
  let own_vars = List.map (fun (_, (l : Ast.loop)) -> l.Ast.var) si_old.Layout.loops in
  let rn v = if List.mem v own_vars then ivar_prefix ^ v else v in
  let i_vars = List.map (fun v -> ivar_prefix ^ v) own_vars in
  let defining =
    List.mapi
      (fun j y ->
        let rhs =
          List.fold_left2
            (fun acc iv c -> Linexpr.add acc (Linexpr.term c iv))
            (Linexpr.const offsets.(j))
            i_vars (Array.to_list tprime.(j))
        in
        Constr.eq2 (Linexpr.var y) rhs)
      scan_vars
  in
  let old_bounds = Analysis.bounds_constraints si_old rn in
  let bounds, feasible =
    try (Boundsgen.scan_bounds (defining @ old_bounds) ~eliminate:i_vars ~scan:scan_vars, true)
    with Boundsgen.Infeasible -> ([], false)
  in
  (* reconstruct original iterators from the non-singular rows *)
  let indep = Gauss.independent_row_indices tprime in
  if List.length indep <> k then err "statement %s: augmented transformation is rank-deficient" label;
  let n_mat = Array.of_list (List.map (fun r -> tprime.(r)) indep) in
  let inv =
    match Gauss.inverse n_mat with
    | Some m -> m
    | None -> err "statement %s: non-singular per-statement transformation is singular" label
  in
  let scan_var_of_row r = List.nth scan_vars r in
  let lets =
    List.mapi
      (fun j (_, (l : Ast.loop)) ->
        (* i_j = sum_l inv[j][l] * (y_{indep_l} - off_{indep_l}) *)
        let d =
          Array.fold_left (fun acc qv -> Mpz.lcm acc (Q.den qv)) Mpz.one inv.(j)
        in
        let num =
          List.fold_left
            (fun acc (l_idx, row) ->
              let c = Q.mul (Q.of_mpz d) inv.(j).(l_idx) in
              let c = Q.to_mpz_exn c in
              let y = Linexpr.var (scan_var_of_row row) in
              Linexpr.add acc (Linexpr.scale c (Linexpr.add_const y (Mpz.neg offsets.(row)))))
            Linexpr.zero
            (List.mapi (fun l_idx row -> (l_idx, row)) indep)
        in
        (l.Ast.var, ({ Ast.num; den = d } : Ast.bterm)))
      si_old.Layout.loops
  in
  let div_guards =
    List.filter_map
      (fun (_, ({ num; den } : Ast.bterm)) ->
        if Mpz.is_one den then None else Some (Ast.Gdiv (den, num)))
      lets
  in
  (* original bounds, now over the let-bound original names *)
  let unprefix e =
    Linexpr.rename
      (fun v ->
        if String.length v > 2 && String.sub v 0 2 = ivar_prefix then
          String.sub v 2 (String.length v - 2)
        else v)
      e
  in
  let bound_guards =
    List.map
      (fun c ->
        match c with
        | Constr.Ge e -> Ast.Gcmp (`Ge, unprefix e)
        | Constr.Eq e -> Ast.Gcmp (`Eq, unprefix e))
      old_bounds
  in
  (* singular rows: y_r = T'_r . i + o_r over the let-bound names *)
  let singular_guards =
    List.concat
      (List.mapi
         (fun r row ->
           if List.mem r indep then []
           else begin
             let rhs =
               List.fold_left2
                 (fun acc (_, (l : Ast.loop)) c -> Linexpr.add acc (Linexpr.term c l.Ast.var))
                 (Linexpr.const offsets.(r))
                 si_old.Layout.loops (Array.to_list row)
             in
             [ Ast.Gcmp (`Eq, Linexpr.sub (Linexpr.var (scan_var_of_row r)) rhs) ]
           end)
         (Array.to_list tprime))
  in
  {
    si_old;
    shared_count = k;
    bounds;
    feasible;
    lets;
    div_guards;
    post_guards = bound_guards @ singular_guards;
  }

(* The node replacing statement S: private augmentation loops, then the
   divisibility guards, the iterator reconstructions, the bound and
   singular guards, and finally the original statement body. *)
let statement_node (plan : stmt_plan) : Ast.node =
  let stmt = Ast.Stmt plan.si_old.Layout.stmt in
  let guarded =
    if plan.post_guards = [] then stmt else Ast.If (plan.post_guards, [ stmt ])
  in
  let with_lets =
    List.fold_right (fun (v, bt) body -> Ast.Let (v, bt, [ body ])) plan.lets guarded
  in
  let with_div =
    if plan.div_guards = [] then with_lets else Ast.If (plan.div_guards, [ with_lets ])
  in
  (* augmentation loops, outer to inner *)
  let aug = List.filteri (fun i _ -> i >= plan.shared_count) plan.bounds in
  List.fold_right
    (fun (b : Boundsgen.loop_bounds) body ->
      if b.lower = [] || b.upper = [] then
        err "augmentation loop %s of %s has no finite bounds" b.var plan.si_old.Layout.label;
      Ast.Loop
        {
          var = b.var;
          lower = { Ast.combine = `Max; terms = b.lower };
          upper = { Ast.combine = `Min; terms = b.upper };
          step = Mpz.one;
          body = [ body ];
        })
    aug with_div

(* Union bounds for a shared loop: exact when a single statement (or all
   statements agree); otherwise covering min/max with per-statement guards
   ensuring correctness. *)
let union_bounds (per_stmt : (Ast.bterm list * Ast.bterm list) list) : Ast.bound * Ast.bound =
  match per_stmt with
  | [] -> err "union_bounds: no statements"
  | [ (lo, up) ] ->
      ({ Ast.combine = `Max; terms = lo }, { Ast.combine = `Min; terms = up })
  | (lo0, up0) :: rest ->
      if List.for_all (fun (lo, up) -> lo = lo0 && up = up0) rest then
        ({ Ast.combine = `Max; terms = lo0 }, { Ast.combine = `Min; terms = up0 })
      else begin
        let deduped sel =
          List.concat_map sel per_stmt
          |> List.sort_uniq (fun (t1 : Ast.bterm) (t2 : Ast.bterm) ->
                 let c = Mpz.compare t1.den t2.den in
                 if c <> 0 then c else Linexpr.compare t1.num t2.num)
        in
        (* a single surviving term makes the covering bound exact *)
        let lo = deduped fst and up = deduped snd in
        ( { Ast.combine = (if List.length lo = 1 then `Max else `Min); terms = lo },
          { Ast.combine = (if List.length up = 1 then `Min else `Max); terms = up } )
      end

let generate (st : Blockstruct.t) ~(unsatisfied : Dep.t list) : Ast.program =
  let old_prog = st.Blockstruct.old_layout.Layout.program in
  let new_layout = st.Blockstruct.new_layout in
  (* names for the transformed loops, one per new loop position *)
  let fresh_shared = name_supply old_prog "t" in
  let fresh_aug = name_supply old_prog "u" in
  let loop_names =
    Layout.loop_positions new_layout |> List.map (fun p -> (p, fresh_shared ()))
  in
  let new_loop_name p =
    match List.assoc_opt p loop_names with
    | Some n -> n
    | None -> err "no name for loop position %d" p
  in
  let labels =
    List.map (fun (si : Layout.stmt_info) -> si.Layout.label) st.Blockstruct.old_layout.Layout.stmts
  in
  let plans =
    List.map (fun l -> (l, plan_statement st unsatisfied new_loop_name fresh_aug l)) labels
  in
  (* bounds of a shared loop at new path p: union over feasible statements
     nested below it *)
  let bounds_for_loop (p : Ast.path) (var : string) : Ast.bound * Ast.bound =
    let contributions =
      List.filter_map
        (fun (label, plan) ->
          if not plan.feasible then None
          else begin
            let si_new = Layout.stmt_info new_layout label in
            let under =
              List.exists (fun (lp, _) -> lp = p) si_new.Layout.loops
            in
            if not under then None
            else
              match List.find_opt (fun (b : Boundsgen.loop_bounds) -> b.var = var) plan.bounds with
              | Some b when b.lower <> [] && b.upper <> [] -> Some (b.lower, b.upper)
              | _ -> None
          end)
        plans
    in
    if contributions = [] then
      (* no statement executes: empty range *)
      ( { Ast.combine = `Max; terms = [ Ast.bterm_int 1 ] },
        { Ast.combine = `Min; terms = [ Ast.bterm_int 0 ] } )
    else union_bounds contributions
  in
  (* rebuild the skeleton *)
  let rec rebuild prefix nodes =
    List.mapi
      (fun i node ->
        let p = prefix @ [ i ] in
        match node with
        | Ast.Stmt s -> (
            match List.assoc_opt s.Ast.label plans with
            | Some plan when plan.feasible -> Some (statement_node plan)
            | Some _ -> None (* statement never executes *)
            | None -> err "no plan for %s" s.Ast.label)
        | Ast.Loop l ->
            let var = new_loop_name (Layout.position_of_loop new_layout p) in
            let lower, upper = bounds_for_loop p var in
            let body = rebuild p l.Ast.body in
            Some (Ast.Loop { var; lower; upper; step = Mpz.one; body })
        | Ast.If _ | Ast.Let _ -> err "unexpected If/Let in skeleton")
      nodes
    |> List.filter_map Fun.id
  in
  let nest = rebuild [] st.Blockstruct.new_program.Ast.nest in
  let prog = { Ast.params = old_prog.Ast.params; nest } in
  Ast.validate prog;
  prog
