(* Distribution and fusion in the completion procedure — the extension the
   paper names as future work (Section 7: "We would like to extend this
   work to incorporate loop distribution and loop fusion into the
   completion procedure").

   The search space is widened from matrices over one program to pairs
   (program variant, matrix): the variants are the original program, its
   legal single-point distributions (for a program that is one top-level
   loop), and its legal fusion (for a program that is exactly two
   top-level loops).  Each variant carries its own layout and dependence
   matrix; the inner search is the ordinary completion procedure.  A
   [goal] predicate — e.g. "statement S runs under a reversed loop", or a
   shape requirement on the variant — selects among legal results, which
   is what makes restructuring observable: distribution decouples the
   per-statement rows that a single shared loop forces together. *)

module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Omega = Inl_presburger.Omega
module Ast = Inl_ir.Ast
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout
module Analysis = Inl_depend.Analysis

type restructuring = Original | Distributed of int | Fused

type variant = {
  restructuring : restructuring;
  program : Ast.program;
  layout : Layout.t;
  deps : Dep.t list;
}

let describe = function
  | Original -> "original"
  | Distributed at -> Printf.sprintf "distributed at child %d" at
  | Fused -> "fused"

(* Distribution between children [at-1] and [at] of a single top-level
   loop runs all first-group instances before all second-group instances,
   so it is legal iff no dependence goes from the second group to the
   first. *)
let distribution_legal (layout : Layout.t) (deps : Dep.t list) ~at : bool =
  match layout.Layout.program.Ast.nest with
  | [ Ast.Loop _ ] ->
      let group label =
        match (Layout.stmt_info layout label).Layout.path with
        | _ :: c :: _ -> c >= at
        | _ -> false
      in
      not (List.exists (fun (d : Dep.t) -> group d.Dep.src && not (group d.dst)) deps)
  | _ -> false

(* Fusing two adjacent top-level loops (headers taken from the first) is
   legal iff no conflicting access pair (S in the first loop, T in the
   second, same cell, at least one write) has the T-instance at a
   strictly smaller outer iteration than the S-instance: in the fused
   loop T's body follows S's within an iteration, so i_S <= i_T keeps
   every original (all-of-L1-then-all-of-L2) ordering intact. *)
let fusion_legal (layout : Layout.t) : bool =
  match layout.Layout.program.Ast.nest with
  | [ Ast.Loop l1; Ast.Loop l2 ] ->
      let stmts_under c =
        List.filter
          (fun (si : Layout.stmt_info) -> match si.Layout.path with i :: _ -> i = c | [] -> false)
          layout.Layout.stmts
      in
      let conflict_backward (s : Layout.stmt_info) (t : Layout.stmt_info) =
        let rn_of si pre =
          let own = List.map (fun (_, (l : Ast.loop)) -> l.Ast.var) si.Layout.loops in
          fun v -> if List.mem v own then pre ^ v else v
        in
        let rs = rn_of s "s!" and rt = rn_of t "t!" in
        let pairs =
          List.concat_map
            (fun (w : Ast.aref) ->
              List.map (fun r -> (w, r)) (Analysis.reads_of t @ Analysis.writes_of t))
            (Analysis.writes_of s)
          @ List.concat_map
              (fun (r : Ast.aref) -> List.map (fun w -> (r, w)) (Analysis.writes_of t))
              (Analysis.reads_of s)
        in
        let outer_s = (fun (_, (l : Ast.loop)) -> l.Ast.var) (List.hd s.Layout.loops) in
        let outer_t = (fun (_, (l : Ast.loop)) -> l.Ast.var) (List.hd t.Layout.loops) in
        List.exists
          (fun ((a : Ast.aref), (b : Ast.aref)) ->
            String.equal a.Ast.array b.Ast.array
            && List.length a.Ast.index = List.length b.Ast.index
            &&
            let subs =
              List.map2
                (fun x y -> Constr.eq2 (Linexpr.rename rs x) (Linexpr.rename rt y))
                a.Ast.index b.Ast.index
            in
            let sys =
              System.of_list
                (Analysis.bounds_constraints s rs @ Analysis.bounds_constraints t rt @ subs
                @ [
                    Constr.lt2
                      (Linexpr.var (rt outer_t))
                      (Linexpr.var (rs outer_s));
                  ])
            in
            (* on budget exhaustion assume the backward pair is possible:
               fusion is refused rather than wrongly admitted *)
            (try Omega.satisfiable sys with Omega.Blowup _ -> true))
          pairs
      in
      let headers_match =
        (* the fused loop takes l1's header, so l2 must cover the same
           range: compare bounds with l2's variable renamed to l1's *)
        let rename_terms (b : Ast.bound) =
          List.map
            (fun ({ Ast.num; den } : Ast.bterm) ->
              (Linexpr.rename (fun v -> if String.equal v l2.Ast.var then l1.Ast.var else v) num, den))
            b.Ast.terms
        in
        let beq b1 b2 =
          b1.Ast.combine = b2.Ast.combine
          && List.length b1.Ast.terms = List.length b2.Ast.terms
          && List.for_all2
               (fun (n1, d1) (n2, d2) -> Linexpr.equal n1 n2 && Mpz.equal d1 d2)
               (rename_terms b1) (rename_terms b2)
        in
        beq l1.Ast.lower l2.Ast.lower && beq l1.Ast.upper l2.Ast.upper
        && Mpz.equal l1.Ast.step l2.Ast.step
      in
      headers_match
      && (not (l1.Ast.body = [] || l2.Ast.body = []))
      && not
           (List.exists
              (fun s -> List.exists (fun t -> conflict_backward s t) (stmts_under 1))
              (stmts_under 0))
  | _ -> false

let variants (layout : Layout.t) (deps : Dep.t list) : variant list =
  let base = { restructuring = Original; program = layout.Layout.program; layout; deps } in
  let distributions =
    match layout.Layout.program.Ast.nest with
    | [ Ast.Loop l ] ->
        List.filter_map
          (fun at ->
            if distribution_legal layout deps ~at then begin
              let _, prog = Tmat.distribute layout ~at in
              let lay = Layout.of_program ~padding:layout.Layout.padding prog in
              Some
                { restructuring = Distributed at; program = prog; layout = lay; deps = Analysis.dependences lay }
            end
            else None)
          (List.init (List.length l.Ast.body - 1) (fun i -> i + 1))
    | _ -> []
  in
  let fusions =
    match layout.Layout.program.Ast.nest with
    | [ Ast.Loop _; Ast.Loop _ ] when fusion_legal layout ->
        let _, prog = Tmat.jam layout in
        let lay = Layout.of_program ~padding:layout.Layout.padding prog in
        [ { restructuring = Fused; program = prog; layout = lay; deps = Analysis.dependences lay } ]
    | _ -> []
  in
  (base :: distributions) @ fusions

(* Search every variant for a completion whose matrix satisfies [goal]
   against that variant. *)
let complete_with_restructuring ?options (layout : Layout.t) (deps : Dep.t list)
    ~(goal : variant -> Mat.t -> bool) : (variant * Mat.t) option =
  List.find_map
    (fun v ->
      match Completion.complete ?options ~goal:(goal v) v.layout v.deps ~partial:[] with
      | Some m -> Some (v, m)
      | None -> None)
    (variants layout deps)
