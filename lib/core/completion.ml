module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Gauss = Inl_linalg.Gauss
module Interval = Inl_presburger.Interval
module Ast = Inl_ir.Ast
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout
module Pool = Inl_parallel.Pool

type options = { allow_reorder : bool; allow_reversal : bool; max_nodes : int }

let default_options = { allow_reorder = true; allow_reversal = true; max_nodes = 200_000 }

(* ---- structure enumeration ---- *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x -> List.map (fun rest -> x :: rest) (permutations (List.filter (fun y -> y <> x) l)))
        l

(* Multi-child nodes of the program, with their child counts. *)
let reorder_sites (prog : Ast.program) : (Ast.path * int) list =
  let sites = ref [] in
  let rec go prefix nodes =
    let m = List.length nodes in
    if m >= 2 then sites := (prefix, m) :: !sites;
    List.iteri
      (fun i n ->
        match n with
        | Ast.Loop l -> go (prefix @ [ i ]) l.Ast.body
        | Ast.If (_, b) | Ast.Let (_, _, b) -> go (prefix @ [ i ]) b
        | Ast.Stmt _ -> ())
      nodes
  in
  go [] prog.Ast.nest;
  List.rev !sites

(* All combinations of per-site child permutations, each as a composite
   reordering matrix. *)
let reorder_matrices (layout : Layout.t) : Mat.t list =
  let sites = reorder_sites layout.Layout.program in
  let rec combos = function
    | [] -> [ [] ]
    | (path, m) :: rest ->
        let tails = combos rest in
        List.concat_map
          (fun perm -> List.map (fun tail -> (path, perm) :: tail) tails)
          (permutations (List.init m Fun.id))
  in
  (* Apply sites root-down (reorder_sites is in DFS order, so parents come
     first); after reordering at [p], remap the paths of the deeper sites
     that pass through [p]. *)
  let remap_path p perm q =
    let rec is_proper_prefix a b =
      match (a, b) with [], _ :: _ -> true | x :: a', y :: b' -> x = y && is_proper_prefix a' b' | _ -> false
    in
    if not (is_proper_prefix p q) then q
    else begin
      let rec go a b =
        match (a, b) with
        | [], i :: rest -> List.nth perm i :: rest
        | _ :: a', _ :: b' -> List.hd b :: go a' b'
        | _ -> assert false
      in
      go p q
    end
  in
  List.map
    (fun assignment ->
      let rec apply acc_m acc_layout = function
        | [] -> acc_m
        | (path, perm) :: rest ->
            let r = Tmat.reorder acc_layout ~parent:path ~perm in
            let m' = Mat.mul r acc_m in
            let st =
              match Blockstruct.infer acc_layout r with
              | Ok st -> st
              | Error msg -> failwith ("Completion.reorder_matrices: " ^ msg)
            in
            let rest' = List.map (fun (q, pm) -> (remap_path path perm q, pm)) rest in
            apply m' st.Blockstruct.new_layout rest'
      in
      apply (Mat.identity (Layout.size layout)) layout assignment)
    (combos sites)

(* Candidate first rows for external search drivers: one signed unit
   vector per loop column, in layout-column order. *)
let seed_rows ?(allow_reversal = true) (layout : Layout.t) : Vec.t list =
  let n = Layout.size layout in
  Array.to_list layout.Layout.positions
  |> List.mapi (fun i p -> (i, p))
  |> List.concat_map (function
       | i, Layout.Ploop _ ->
           if allow_reversal then [ Vec.unit n i; Vec.scale_int (-1) (Vec.unit n i) ]
           else [ Vec.unit n i ]
       | _ -> [])

(* Search-ordering heuristic: a loop row's "natural" columns are those
   outside its node's siblings' regions (at every ancestor level); the
   relaxed block structure allows any column (padded sibling references
   are meaningful), but natural columns are tried first. *)
let allowed_columns (layout : Layout.t) : (int, bool array) Hashtbl.t =
  let prog = layout.Layout.program in
  let n = Layout.size layout in
  let table = Hashtbl.create 8 in
  let rec node_size = function
    | Ast.Stmt _ -> 0
    | Ast.If (_, b) | Ast.Let (_, _, b) -> List.fold_left (fun a x -> a + node_size x) 0 b
    | Ast.Loop l ->
        let m = List.length l.Ast.body in
        1 + (if m >= 2 then m else 0) + List.fold_left (fun a x -> a + node_size x) 0 l.Ast.body
  in
  (* walk children regions: [base] is the start of the children region;
     [banned] accumulates sibling columns from enclosing levels *)
  let rec walk children base (banned : bool array) path =
    let m = List.length children in
    let nedges = if m >= 2 then m else 0 in
    let sizes = Array.of_list (List.map node_size children) in
    let starts = Array.make m 0 in
    let cursor = ref (base + nedges) in
    for i = m - 1 downto 0 do
      starts.(i) <- !cursor;
      cursor := !cursor + sizes.(i)
    done;
    List.iteri
      (fun i child ->
        let banned' = Array.copy banned in
        List.iteri
          (fun j _ ->
            if j <> i then
              for c = starts.(j) to starts.(j) + sizes.(j) - 1 do
                banned'.(c) <- true
              done)
          children;
        match child with
        | Ast.Stmt _ -> ()
        | Ast.If (_, b) | Ast.Let (_, _, b) -> walk b starts.(i) banned' (path @ [ i ])
        | Ast.Loop l ->
            let allowed = Array.map not banned' in
            Hashtbl.replace table starts.(i) allowed;
            walk l.Ast.body (starts.(i) + 1) banned' (path @ [ i ]))
      children
  in
  walk prog.Ast.nest 0 (Array.make n false) [];
  table

(* ---- pruning ---- *)

type prune = Viol | Sat | Unknown

(* Scan the assigned prefix of the transformed common-loop projection. *)
let prefix_class (coords : Interval.t list) : prune =
  let rec go = function
    | [] -> Unknown
    | x :: rest ->
        if Interval.definitely_zero x then go rest
        else if Interval.definitely_positive x then Sat
        else if Interval.definitely_nonneg x then go rest
        else Viol
  in
  go coords

(* ---- the search ---- *)

let complete ?(options = default_options) ?(goal = fun _ -> true) (layout : Layout.t)
    (deps : Dep.t list) ~(partial : Vec.t list) : Mat.t option =
  let n = Layout.size layout in
  let allowed_tbl = allowed_columns layout in
  (* Per-dependence legality verdicts, shared across every candidate of
     every structure: leaf checks on candidates that agree on the rows a
     dependence reads become table lookups. *)
  let lcache = Legality.make_cache () in
  let loop_cols =
    Array.to_list layout.Layout.positions
    |> List.mapi (fun i p -> (i, p))
    |> List.filter_map (function i, Layout.Ploop _ -> Some i | _ -> None)
  in
  let structures =
    if options.allow_reorder then reorder_matrices layout else [ Mat.identity n ]
  in
  let try_structure ?(abort = fun () -> false) (r : Mat.t) : Mat.t option =
    (* The node budget is per structure — not shared across the structure
       list — so the search inside one structure is independent of how
       many structures precede it and of whether structures are explored
       sequentially or in parallel. *)
    let nodes_budget = ref options.max_nodes in
    match Blockstruct.infer layout r with
    | Error _ -> None
    | Ok st ->
        let old_to_new = st.Blockstruct.old_to_new in
        let new_of_old = old_to_new in
        (* new row index -> kind *)
        let row_is_edge = Array.make n false in
        let row_old_loop = Array.make n (-1) in
        Array.iteri
          (fun old_idx pos ->
            match pos with
            | Layout.Pedge _ -> row_is_edge.(new_of_old.(old_idx)) <- true
            | Layout.Ploop _ -> row_old_loop.(new_of_old.(old_idx)) <- old_idx)
          layout.Layout.positions;
        (* template rows: edge rows come from the reorder matrix *)
        let m = Mat.make n n in
        let fixed = Array.make n false in
        Array.iteri
          (fun i flag ->
            if flag then begin
              m.(i) <- Vec.copy (Mat.row r i);
              fixed.(i) <- true
            end)
          row_is_edge;
        (* install the partial rows (the first rows of M) *)
        let ok_partial =
          List.for_all
            (fun (i, row) ->
              if row_is_edge.(i) then Vec.equal row m.(i)
              else begin
                m.(i) <- Vec.copy row;
                fixed.(i) <- true;
                true
              end)
            (List.mapi (fun i row -> (i, row)) partial)
        in
        if not ok_partial then None
        else begin
          (* per-dependence data for pruning: new positions of common
             loops, ascending *)
          let dep_info =
            List.map
              (fun (d : Dep.t) ->
                let s1 = Layout.stmt_info layout d.Dep.src
                and s2 = Layout.stmt_info layout d.Dep.dst in
                let commons =
                  Layout.common_loop_positions layout s1 s2
                  |> List.map (fun p -> new_of_old.(p))
                  |> List.sort compare
                in
                (d, commons))
              deps
          in
          let row_coord (row : Vec.t) (d : Dep.t) : Interval.t =
            let acc = ref (Interval.point Mpz.zero) in
            Array.iteri (fun j dj -> acc := Interval.add !acc (Interval.scale row.(j) dj)) d.Dep.vector;
            !acc
          in
          let todo =
            List.init n Fun.id |> List.filter (fun i -> (not fixed.(i)) && row_old_loop.(i) >= 0)
          in
          let assigned_rows = ref (List.filter (fun i -> fixed.(i)) (List.init n Fun.id)) in
          let rec assign = function
            | [] ->
                (* authoritative check *)
                if Gauss.is_nonsingular m && goal m then
                  match Legality.check ~cache:lcache layout m deps with
                  | Legality.Legal _ -> Some (Mat.copy m)
                  | Legality.Illegal _ -> None
                else None
            | i :: rest ->
                let allowed =
                  match Hashtbl.find_opt allowed_tbl row_old_loop.(i) with
                  | Some a -> a
                  | None -> Array.make n true
                in
                let natural, other = List.partition (fun c -> allowed.(c)) loop_cols in
                let candidates =
                  List.concat_map
                    (fun c ->
                      if options.allow_reversal then
                        [ Vec.unit n c; Vec.scale_int (-1) (Vec.unit n c) ]
                      else [ Vec.unit n c ])
                    (natural @ other)
                in
                let rec try_cands = function
                  | [] -> None
                  | row :: more ->
                      if !nodes_budget <= 0 || abort () then None
                      else begin
                        decr nodes_budget;
                        (* independence w.r.t. already assigned rows *)
                        let current = Array.of_list (List.map (fun j -> m.(j)) !assigned_rows) in
                        let indep = Gauss.rank (Mat.append_row current row) > Gauss.rank current in
                        if not indep then try_cands more
                        else begin
                          m.(i) <- row;
                          fixed.(i) <- true;
                          assigned_rows := i :: !assigned_rows;
                          (* prune: any dependence certainly violated? *)
                          let violated =
                            List.exists
                              (fun ((d : Dep.t), commons) ->
                                (* only the contiguous assigned prefix of
                                   the common rows is meaningful *)
                                let rec take_prefix = function
                                  | p :: rest when fixed.(p) -> row_coord m.(p) d :: take_prefix rest
                                  | _ -> []
                                in
                                prefix_class (take_prefix commons) = Viol)
                              dep_info
                          in
                          let result = if violated then None else assign rest in
                          match result with
                          | Some _ as r -> r
                          | None ->
                              fixed.(i) <- false;
                              assigned_rows := List.tl !assigned_rows;
                              m.(i) <- Vec.zero n;
                              try_cands more
                        end
                      end
                in
                try_cands candidates
          in
          assign todo
        end
  in
  if Pool.jobs () = 1 then begin
    (* sequential: stop at the first structure that completes *)
    let rec over_structures = function
      | [] -> None
      | r :: rest -> (
          match try_structure r with Some m -> Some m | None -> over_structures rest)
    in
    over_structures structures
  end
  else begin
    (* parallel: keep the first success in structure order — the same
       answer the sequential loop returns (per-structure node budgets
       make each exploration independent).  [winner] holds the lowest
       structure index known to succeed; structures after it abort their
       search early, structures before it always run to completion, so
       the selected matrix never depends on timing. *)
    let winner = Atomic.make max_int in
    let rec cas_min i =
      let cur = Atomic.get winner in
      if i < cur && not (Atomic.compare_and_set winner cur i) then cas_min i
    in
    let results =
      Pool.map
        (fun (idx, r) ->
          if Atomic.get winner < idx then None
          else begin
            let res = try_structure ~abort:(fun () -> Atomic.get winner < idx) r in
            (match res with Some _ -> cas_min idx | None -> ());
            res
          end)
        (List.mapi (fun i r -> (i, r)) structures)
    in
    List.find_map Fun.id results
  end
