(* Per-statement transformations (Definition 7, Section 5.4).

   A statement S nested in k loops has instance vectors iv = A_S i + b_S
   (Layout embedding).  Under a transformation M the image vector is
   (M A_S) i + M b_S; reading off the rows at the positions of the loops
   surrounding S in the transformed AST gives the k x k per-statement
   matrix T_S together with a constant offset (non-zero exactly when the
   transformation aligns S).  T_S may be singular — Section 5.4's example
   collapses S1's loop to the single row [0] — in which case augmentation
   (Complete) adds rows. *)

module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Layout = Inl_instance.Layout

type t = {
  label : string;
  matrix : Mat.t;  (* k x k *)
  offset : Vec.t;  (* length k *)
  new_loop_rows : int list;
      (* positions (rows of M) of the statement's loops in the new layout,
         outer-to-inner — the rows T_S was read from *)
}

let of_structure (st : Blockstruct.t) (label : string) : t =
  let m = st.Blockstruct.matrix in
  let si_old = Layout.stmt_info st.Blockstruct.old_layout label in
  let a, b = si_old.Layout.embedding in
  let ma = Mat.mul m a in
  let mb = Mat.apply m b in
  (* the statement's loops keep their identity across reordering: map old
     loop positions to new ones, then order outer-to-inner *)
  let rows =
    List.map
      (fun (lp, _) ->
        st.Blockstruct.old_to_new.(Layout.position_of_loop st.Blockstruct.old_layout lp))
      si_old.Layout.loops
    |> List.sort compare
  in
  {
    label;
    matrix = Array.of_list (List.map (fun r -> Vec.copy (Mat.row ma r)) rows);
    offset = Array.of_list (List.map (fun r -> mb.(r)) rows);
    new_loop_rows = rows;
  }

let rank (t : t) = Inl_linalg.Gauss.rank t.matrix
let is_singular (t : t) = rank t < Mat.rows t.matrix

(* Scaling a row of T_S by a positive factor (or negating it) rescales
   one column of T_S^-1 without changing its direction, so the reuse
   classes of Inl_reuse depend only on this form: each row divided by
   the gcd of its entries, sign-fixed so the first non-zero entry is
   positive. *)
let canonical_rows (m : Mat.t) : Mat.t =
  Array.map
    (fun row ->
      let g = Vec.gcd row in
      let row =
        if Mpz.is_zero g || Mpz.is_one g then Vec.copy row
        else Array.map (fun x -> fst (Mpz.divmod x g)) row
      in
      match Vec.height row with
      | Some h when Mpz.is_negative row.(h) -> Vec.neg row
      | _ -> row)
    m
