(** The completion procedure for imperfectly nested loops (Section 6).

    Given a dependence matrix and the first few rows of a desired
    transformation, [complete] fills in the remaining rows to a full
    legal transformation matrix, searching over statement reorderings
    (the child permutations of every multi-child node) and signed unit
    rows drawn from each loop row's structurally allowed columns —
    sufficient for the paper's stated goal of reasoning about loop
    permutations in matrix factorization codes.  The final candidate is
    always validated by the authoritative legality test (Definition 6);
    interval-based pruning cuts the search.

    The partial rows are the {e first} rows of the target matrix in the
    transformed layout's position order; edge rows among them must match
    the statement reordering being tried (supplying a first row only, as
    in the paper's Cholesky example, leaves the reordering free). *)

module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout

type options = {
  allow_reorder : bool;  (** search over statement reorderings (default true) *)
  allow_reversal : bool;  (** include [-e_c] candidate rows (default true) *)
  max_nodes : int;
      (** backtracking budget {e per structure} (default 200000), so each
          structure's search is independent of how many precede it and of
          whether structures are explored sequentially or in parallel *)
}

val default_options : options

val complete :
  ?options:options ->
  ?goal:(Mat.t -> bool) ->
  Layout.t ->
  Dep.t list ->
  partial:Vec.t list ->
  Mat.t option
(** [None] when the search space contains no legal completion meeting
    [goal] (default: any), or the budget ran out.  When the
    {!Inl_parallel.Pool} is configured with more than one job the
    structures are explored concurrently and the first success in
    structure order is returned — the same matrix the sequential search
    finds.  Leaf legality checks share a per-call {!Legality.cache}. *)

val reorder_matrices : Layout.t -> Mat.t list
(** All pure statement-reordering matrices of the program (the identity
    included) — the structure part of the search space. *)

(** {2 Candidate hooks}

    The pieces of the completion search space exposed for external
    drivers (the {!Inl_search} autotuner seeds its beam from them). *)

val reorder_sites : Inl_ir.Ast.program -> (Inl_ir.Ast.path * int) list
(** Multi-child nodes of the program with their child counts — the sites
    a statement reordering can permute, in DFS order. *)

val seed_rows : ?allow_reversal:bool -> Layout.t -> Vec.t list
(** The candidate first rows of the completion search: a signed unit
    vector for every loop column of the layout, in column order
    (positive before negative; negatives omitted when [allow_reversal]
    is false, default true).  Handing one of these to {!complete} as the
    sole partial row asks Section 6 to derive a full legal
    transformation that makes the chosen loop (possibly reversed)
    outermost. *)
