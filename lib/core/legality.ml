module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Interval = Inl_presburger.Interval
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout
module Pool = Inl_parallel.Pool

type verdict =
  | Legal of { structure : Blockstruct.t; unsatisfied : Dep.t list }
  | Illegal of string

let transformed_vector (m : Mat.t) (d : Dep.t) : Interval.t array =
  Array.init (Mat.rows m) (fun i ->
      let acc = ref (Interval.point Inl_num.Mpz.zero) in
      Array.iteri
        (fun j dj -> acc := Interval.add !acc (Interval.scale (Mat.get m i j) dj))
        d.Dep.vector;
      !acc)

(* Is the interval-vector box certainly lexicographically non-negative,
   and can it be entirely zero?  Scan: a coordinate that is definitely
   positive satisfies everything after it; one that is definitely zero is
   skipped; one that spans [0, hi] may be zero, so the suffix must also
   pass; anything admitting a negative value fails. *)
type lex_class = Satisfied | Possibly_zero | Violated

let classify (p : Interval.t array) : lex_class =
  let n = Array.length p in
  let rec go i =
    if i >= n then Possibly_zero
    else begin
      let x = p.(i) in
      if Interval.definitely_zero x then go (i + 1)
      else if Interval.definitely_positive x then Satisfied
      else if Interval.definitely_nonneg x then
        (* could be zero or positive: positive settles it, zero defers to
           the suffix — so the suffix must pass on its own *)
        match go (i + 1) with Satisfied -> Satisfied | Possibly_zero -> Possibly_zero | Violated -> Violated
      else Violated
    end
  in
  go 0

(* Per-dependence outcome; [Dep_violated] carries the Illegal message. *)
type dep_verdict = Dep_satisfied | Dep_unsatisfied | Dep_violated of string

(* Everything the verdict of one dependence reads from the candidate: the
   matrix rows at the new positions of its common loops (outer-to-inner),
   and (for cross-statement dependences) whether the source precedes the
   target in the transformed AST.  Memoizing on this tuple lets the
   completion search reuse verdicts across candidate matrices that share
   the relevant rows.  All components are canonical values (Mpz is
   sign-magnitude without redundant forms), so polymorphic hashing and
   equality are exact. *)
type dep_key = { k_dep : Dep.t; k_rows : Vec.t list; k_src_precedes : bool }

type cache = { lock : Mutex.t; tbl : (dep_key, dep_verdict) Hashtbl.t }

let make_cache () = { lock = Mutex.create (); tbl = Hashtbl.create 256 }

let row_coord (row : Vec.t) (d : Dep.t) : Interval.t =
  let acc = ref (Interval.point Inl_num.Mpz.zero) in
  Array.iteri (fun j dj -> acc := Interval.add !acc (Interval.scale row.(j) dj)) d.Dep.vector;
  !acc

let classify_key (k : dep_key) : dep_verdict =
  let d = k.k_dep in
  let p = Array.of_list (List.map (fun row -> row_coord row d) k.k_rows) in
  match classify p with
  | Satisfied -> Dep_satisfied
  | Violated ->
      Dep_violated
        (Format.asprintf "dependence %a maps to a possibly lexicographically negative vector"
           Dep.pp d)
  | Possibly_zero ->
      if String.equal d.src d.dst then Dep_unsatisfied
      else if k.k_src_precedes then Dep_satisfied
      else
        Dep_violated
          (Format.asprintf
             "dependence %a can collapse to equal common-loop iterations, but %s does not \
              precede %s in the transformed program"
             Dep.pp d d.src d.dst)

let classify_dep ?cache (layout : Layout.t) (structure : Blockstruct.t) (m : Mat.t)
    (d : Dep.t) : dep_verdict =
  let s_src = Layout.stmt_info layout d.src and s_dst = Layout.stmt_info layout d.dst in
  (* common loops in the transformed program: map old loop positions,
     then order by new position (outer-to-inner) *)
  let commons =
    Layout.common_loop_positions layout s_src s_dst
    |> List.map (fun old_pos -> structure.Blockstruct.old_to_new.(old_pos))
    |> List.sort compare
  in
  let src_precedes =
    String.equal d.src d.dst
    ||
    let p_src = Blockstruct.map_path structure s_src.Layout.path in
    let p_dst = Blockstruct.map_path structure s_dst.Layout.path in
    Inl_ir.Ast.syntactic_compare p_src p_dst < 0
  in
  let key =
    {
      k_dep = d;
      (* copied: candidate matrices are mutated in place by the search,
         and a key must not change under a stored entry *)
      k_rows = List.map (fun i -> Vec.copy (Mat.row m i)) commons;
      k_src_precedes = src_precedes;
    }
  in
  match cache with
  | None -> classify_key key
  | Some c ->
      Mutex.protect c.lock (fun () ->
          match Hashtbl.find_opt c.tbl key with
          | Some v -> v
          | None ->
              let v = classify_key key in
              Hashtbl.add c.tbl key v;
              v)

let check ?(jobs = 1) ?cache (layout : Layout.t) (m : Mat.t) (deps : Dep.t list) : verdict =
  match Blockstruct.infer layout m with
  | Error msg -> Illegal ("block structure: " ^ msg)
  | Ok structure ->
      let finish verdicts =
        (* first offender in dependence order, whatever the schedule *)
        let rec scan unsat = function
          | [] -> Legal { structure; unsatisfied = List.rev unsat }
          | (d, v) :: rest -> (
              match v with
              | Dep_satisfied -> scan unsat rest
              | Dep_unsatisfied -> scan (d :: unsat) rest
              | Dep_violated msg -> Illegal msg)
        in
        scan [] verdicts
      in
      if jobs > 1 then
        finish
          (Pool.map ~jobs (fun d -> (d, classify_dep ?cache layout structure m d)) deps)
      else begin
        (* sequential path: stop classifying at the first violation *)
        let exception Offender of string in
        try
          let unsat =
            List.fold_left
              (fun unsat d ->
                match classify_dep ?cache layout structure m d with
                | Dep_satisfied -> unsat
                | Dep_unsatisfied -> d :: unsat
                | Dep_violated msg -> raise (Offender msg))
              [] deps
          in
          Legal { structure; unsatisfied = List.rev unsat }
        with Offender msg -> Illegal msg
      end

let is_legal ?jobs ?cache layout m deps =
  match check ?jobs ?cache layout m deps with Legal _ -> true | Illegal _ -> false
