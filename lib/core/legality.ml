module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Interval = Inl_presburger.Interval
module Dep = Inl_depend.Dep
module Layout = Inl_instance.Layout
module Pool = Inl_parallel.Pool
module Memo = Inl_diag.Memo

type verdict =
  | Legal of { structure : Blockstruct.t; unsatisfied : Dep.t list }
  | Illegal of string

let transformed_vector (m : Mat.t) (d : Dep.t) : Interval.t array =
  Array.init (Mat.rows m) (fun i ->
      let acc = ref (Interval.point Inl_num.Mpz.zero) in
      Array.iteri
        (fun j dj -> acc := Interval.add !acc (Interval.scale (Mat.get m i j) dj))
        d.Dep.vector;
      !acc)

(* Is the interval-vector box certainly lexicographically non-negative,
   and can it be entirely zero?  Scan: a coordinate that is definitely
   positive satisfies everything after it; one that is definitely zero is
   skipped; one that spans [0, hi] may be zero, so the suffix must also
   pass; anything admitting a negative value fails. *)
type lex_class = Satisfied | Possibly_zero | Violated

let classify (p : Interval.t array) : lex_class =
  let n = Array.length p in
  let rec go i =
    if i >= n then Possibly_zero
    else begin
      let x = p.(i) in
      if Interval.definitely_zero x then go (i + 1)
      else if Interval.definitely_positive x then Satisfied
      else if Interval.definitely_nonneg x then
        (* could be zero or positive: positive settles it, zero defers to
           the suffix — so the suffix must pass on its own *)
        match go (i + 1) with Satisfied -> Satisfied | Possibly_zero -> Possibly_zero | Violated -> Violated
      else Violated
    end
  in
  go 0

(* Per-dependence outcome; [Dep_violated] carries the Illegal message. *)
type dep_verdict = Dep_satisfied | Dep_unsatisfied | Dep_violated of string

(* Everything the verdict of one dependence reads from the candidate: the
   matrix rows at the new positions of its common loops (outer-to-inner),
   and (for cross-statement dependences) whether the source precedes the
   target in the transformed AST.  Memoizing on this tuple lets the
   completion search reuse verdicts across candidate matrices that share
   the relevant rows.  All components are canonical values (Mpz is
   sign-magnitude without redundant forms), so polymorphic hashing and
   equality are exact. *)
type dep_key = { k_dep : Dep.t; k_rows : Vec.t list; k_src_precedes : bool }

type cache = { lock : Mutex.t; tbl : (dep_key, dep_verdict) Hashtbl.t }

let make_cache () = { lock = Mutex.create (); tbl = Hashtbl.create 256 }

(* ---- the process-wide verdict memo ----

   Second lookup tier behind the per-search [cache]: a two-generation
   table mirroring the Omega projection cache, keyed on a string
   rendering of exactly what [classify_key] reads — the dependence (its
   endpoints, kind, level and interval vector) and the candidate's rows
   at the new positions of the dependence's common loops, plus the
   transformed syntactic order.  A per-search cache dies with its search;
   this table survives across searches and passes, so a re-search of a
   known program classifies by lookup.  Verdict strings are deterministic
   functions of the key, so sharing across worker domains preserves the
   byte-identity contract. *)

let verdict_memo : dep_verdict Memo.t = Memo.create ~max_entries:8192 ()

let set_memo_enabled b = Memo.set_enabled verdict_memo b
let memo_enabled () = Memo.enabled verdict_memo
let memo_stats () = Memo.stats verdict_memo
let clear_memo () = Memo.clear verdict_memo

let bound_to_string = function
  | Interval.NegInf -> "-inf"
  | Interval.PosInf -> "+inf"
  | Interval.Fin z -> Inl_num.Mpz.to_string z

(* Canonical rendering of one dependence, computed once per dependence
   per environment (never per candidate). *)
let dep_id (d : Dep.t) : string =
  let b = Buffer.create 64 in
  Buffer.add_string b d.Dep.src;
  Buffer.add_char b '>';
  Buffer.add_string b d.Dep.dst;
  Buffer.add_char b ':';
  Buffer.add_string b d.Dep.array;
  Buffer.add_char b ':';
  Buffer.add_string b (Dep.kind_to_string d.Dep.kind);
  Buffer.add_char b ':';
  Buffer.add_string b (Dep.level_to_string d.Dep.level);
  Buffer.add_char b (if d.Dep.approximate then '~' else '=');
  Array.iter
    (fun (iv : Interval.t) ->
      Buffer.add_string b (bound_to_string iv.Interval.lo);
      Buffer.add_char b ',';
      Buffer.add_string b (bound_to_string iv.Interval.hi);
      Buffer.add_char b ';')
    d.Dep.vector;
  Buffer.contents b

let memo_key ~(id : string) (rows : Vec.t list) (src_precedes : bool) : string =
  let b = Buffer.create 128 in
  Buffer.add_string b id;
  Buffer.add_char b (if src_precedes then '<' else '|');
  List.iter
    (fun (row : Vec.t) ->
      Array.iter
        (fun x ->
          Buffer.add_string b (Inl_num.Mpz.to_string x);
          Buffer.add_char b ',')
        row;
      Buffer.add_char b '/')
    rows;
  Buffer.contents b

let row_coord (row : Vec.t) (d : Dep.t) : Interval.t =
  let acc = ref (Interval.point Inl_num.Mpz.zero) in
  Array.iteri (fun j dj -> acc := Interval.add !acc (Interval.scale row.(j) dj)) d.Dep.vector;
  !acc

let classify_key (k : dep_key) : dep_verdict =
  let d = k.k_dep in
  let p = Array.of_list (List.map (fun row -> row_coord row d) k.k_rows) in
  match classify p with
  | Satisfied -> Dep_satisfied
  | Violated ->
      Dep_violated
        (Format.asprintf "dependence %a maps to a possibly lexicographically negative vector"
           Dep.pp d)
  | Possibly_zero ->
      if String.equal d.src d.dst then Dep_unsatisfied
      else if k.k_src_precedes then Dep_satisfied
      else
        Dep_violated
          (Format.asprintf
             "dependence %a can collapse to equal common-loop iterations, but %s does not \
              precede %s in the transformed program"
             Dep.pp d d.src d.dst)

(* Lookup ladder for one classified key: per-search structural cache,
   then the process-wide memo (when the caller knows the dependence's
   canonical id), then the interval arithmetic. *)
let classify_cached ?cache ?id (key : dep_key) : dep_verdict =
  let compute () =
    match id with
    | None -> classify_key key
    | Some id ->
        Memo.memo verdict_memo (memo_key ~id key.k_rows key.k_src_precedes) (fun () ->
            classify_key key)
  in
  match cache with
  | None -> compute ()
  | Some c ->
      Mutex.protect c.lock (fun () ->
          match Hashtbl.find_opt c.tbl key with
          | Some v -> v
          | None ->
              let v = compute () in
              Hashtbl.add c.tbl key v;
              v)

let classify_dep ?cache ?id (layout : Layout.t) (structure : Blockstruct.t) (m : Mat.t)
    (d : Dep.t) : dep_verdict =
  let s_src = Layout.stmt_info layout d.src and s_dst = Layout.stmt_info layout d.dst in
  (* common loops in the transformed program: map old loop positions,
     then order by new position (outer-to-inner) *)
  let commons =
    Layout.common_loop_positions layout s_src s_dst
    |> List.map (fun old_pos -> structure.Blockstruct.old_to_new.(old_pos))
    |> List.sort compare
  in
  let src_precedes =
    String.equal d.src d.dst
    ||
    let p_src = Blockstruct.map_path structure s_src.Layout.path in
    let p_dst = Blockstruct.map_path structure s_dst.Layout.path in
    Inl_ir.Ast.syntactic_compare p_src p_dst < 0
  in
  let key =
    {
      k_dep = d;
      (* copied: candidate matrices are mutated in place by the search,
         and a key must not change under a stored entry *)
      k_rows = List.map (fun i -> Vec.copy (Mat.row m i)) commons;
      k_src_precedes = src_precedes;
    }
  in
  classify_cached ?cache ?id key

let check ?(jobs = 1) ?cache (layout : Layout.t) (m : Mat.t) (deps : Dep.t list) : verdict =
  match Blockstruct.infer layout m with
  | Error msg -> Illegal ("block structure: " ^ msg)
  | Ok structure ->
      let finish verdicts =
        (* first offender in dependence order, whatever the schedule *)
        let rec scan unsat = function
          | [] -> Legal { structure; unsatisfied = List.rev unsat }
          | (d, v) :: rest -> (
              match v with
              | Dep_satisfied -> scan unsat rest
              | Dep_unsatisfied -> scan (d :: unsat) rest
              | Dep_violated msg -> Illegal msg)
        in
        scan [] verdicts
      in
      if jobs > 1 then
        finish
          (Pool.map ~jobs (fun d -> (d, classify_dep ?cache layout structure m d)) deps)
      else begin
        (* sequential path: stop classifying at the first violation *)
        let exception Offender of string in
        try
          let unsat =
            List.fold_left
              (fun unsat d ->
                match classify_dep ?cache layout structure m d with
                | Dep_satisfied -> unsat
                | Dep_unsatisfied -> d :: unsat
                | Dep_violated msg -> raise (Offender msg))
              [] deps
          in
          Legal { structure; unsatisfied = List.rev unsat }
        with Offender msg -> Illegal msg
      end

let is_legal ?jobs ?cache layout m deps =
  match check ?jobs ?cache layout m deps with Legal _ -> true | Illegal _ -> false

(* ---- incremental (delta) checking ----

   A beam search extends a known-legal parent by one move.  The verdict
   of one dependence is a pure function of (a) the candidate's rows at
   the new positions of the dependence's common loops, taken in new
   outer-to-inner order, and (b) for cross-statement dependences, the
   transformed syntactic order of its endpoints.  So whenever every
   common loop of a dependence sits at the same new position with the
   same row in parent and child, and both endpoints map to the same
   paths, the child's verdict provably equals the parent's and is
   inherited without touching the interval arithmetic or any table.
   Anything short of that proof falls back to the full classification
   ladder — the delta never weakens the check, it only skips re-deriving
   verdicts whose inputs are bit-identical. *)

(* Static (per-search) description of the dependences: everything a
   per-candidate check reads that does not depend on the candidate. *)
type env = {
  e_layout : Layout.t;
  e_deps : Dep.t array;
  e_ids : string array;  (* canonical dependence renderings, for the memo *)
  e_commons : int list array;  (* old loop positions common to the endpoints *)
  e_src_path : Inl_ir.Ast.path array;
  e_dst_path : Inl_ir.Ast.path array;
  e_same_stmt : bool array;
  e_loop_positions : int list;
}

let make_env (layout : Layout.t) (deps : Dep.t list) : env =
  let arr = Array.of_list deps in
  let info l = Layout.stmt_info layout l in
  {
    e_layout = layout;
    e_deps = arr;
    e_ids = Array.map dep_id arr;
    e_commons =
      Array.map (fun (d : Dep.t) -> Layout.common_loop_positions layout (info d.Dep.src) (info d.Dep.dst)) arr;
    e_src_path = Array.map (fun (d : Dep.t) -> (info d.Dep.src).Layout.path) arr;
    e_dst_path = Array.map (fun (d : Dep.t) -> (info d.Dep.dst).Layout.path) arr;
    e_same_stmt = Array.map (fun (d : Dep.t) -> String.equal d.Dep.src d.Dep.dst) arr;
    e_loop_positions = Layout.loop_positions layout;
  }

(* Everything the delta test compares between a parent and a child: per
   old loop position its new position and the candidate's row there, the
   statement permutations of the block structure (the sole input of
   [Blockstruct.map_path], so equal perms imply every mapped path — and
   every syntactic order — is equal), the per-dependence transformed
   orders, and the verdicts themselves.  Only built for Legal candidates
   (a violated or structurally broken candidate is never extended). *)
type summary = {
  y_new_pos : (int * Vec.t) option array;  (* indexed by old position *)
  y_perms : (Inl_ir.Ast.path * int array) list;  (* structure.perms *)
  y_src_precedes : bool array;  (* per dep, in the transformed program *)
  y_verdicts : dep_verdict array;
}

(* atomics: [check_env] runs concurrently on Pool worker domains, and the
   totals are deterministic (a sum over candidates) regardless of
   schedule *)
let delta_inherited = Atomic.make 0
let delta_checked = Atomic.make 0
let delta_stats () = (Atomic.get delta_inherited, Atomic.get delta_checked)

let reset_delta_stats () =
  Atomic.set delta_inherited 0;
  Atomic.set delta_checked 0

let check_env ?cache ?parent (env : env) (m : Mat.t) : verdict * summary option =
  match Blockstruct.infer env.e_layout m with
  | Error msg -> (Illegal ("block structure: " ^ msg), None)
  | Ok structure ->
      let n = Array.length structure.Blockstruct.old_to_new in
      let new_pos = Array.make n None in
      List.iter
        (fun old_pos ->
          let p = structure.Blockstruct.old_to_new.(old_pos) in
          new_pos.(old_pos) <- Some (p, Mat.row m p))
        env.e_loop_positions;
      let nd = Array.length env.e_deps in
      (* Transformed syntactic order per dependence.  [map_path] reads
         only [structure.perms], so when the parent's perms are equal the
         parent's array is reused verbatim (the common case: only reorder
         moves permute statements) — no path is mapped at all. *)
      let src_precedes =
        match parent with
        | Some py when py.y_perms = structure.Blockstruct.perms -> py.y_src_precedes
        | _ ->
            Array.init nd (fun i ->
                env.e_same_stmt.(i)
                ||
                let sp = Blockstruct.map_path structure env.e_src_path.(i) in
                let dp = Blockstruct.map_path structure env.e_dst_path.(i) in
                Inl_ir.Ast.syntactic_compare sp dp < 0)
      in
      (* Old loop positions whose (new position, row) pair differs from
         the parent's — computed once per candidate, so the per-dep
         inherit test is a boolean scan of its commons instead of
         repeated row comparisons. *)
      let changed =
        match parent with
        | None -> [||]
        | Some py ->
            let c = Array.make n false in
            List.iter
              (fun old_pos ->
                c.(old_pos) <-
                  (match (py.y_new_pos.(old_pos), new_pos.(old_pos)) with
                  | Some (pp, prow), Some (cp, crow) ->
                      not (pp = cp && Vec.equal prow crow)
                  | _ -> true))
              env.e_loop_positions;
            c
      in
      let verdicts = Array.make nd Dep_satisfied in
      let exception Offender of string in
      let classify_one i =
        let d = env.e_deps.(i) in
        let commons =
          env.e_commons.(i)
          |> List.map (fun old_pos -> structure.Blockstruct.old_to_new.(old_pos))
          |> List.sort compare
        in
        let key =
          {
            k_dep = d;
            k_rows = List.map (fun p -> Vec.copy (Mat.row m p)) commons;
            k_src_precedes = src_precedes.(i);
          }
        in
        classify_cached ?cache ~id:env.e_ids.(i) key
      in
      let result =
        try
          for i = 0 to nd - 1 do
            let inherited =
              match parent with
              | None -> None
              | Some py ->
                  let rows_unchanged =
                    List.for_all (fun old_pos -> not changed.(old_pos)) env.e_commons.(i)
                  in
                  let order_unchanged =
                    env.e_same_stmt.(i) || py.y_src_precedes.(i) = src_precedes.(i)
                  in
                  if rows_unchanged && order_unchanged then Some py.y_verdicts.(i) else None
            in
            let v =
              match inherited with
              | Some v ->
                  Atomic.incr delta_inherited;
                  v
              | None ->
                  Atomic.incr delta_checked;
                  classify_one i
            in
            verdicts.(i) <- v;
            match v with Dep_violated msg -> raise (Offender msg) | _ -> ()
          done;
          let unsat =
            Array.to_list
              (Array.of_seq
                 (Seq.filter_map
                    (fun i ->
                      match verdicts.(i) with
                      | Dep_unsatisfied -> Some env.e_deps.(i)
                      | _ -> None)
                    (Seq.init nd Fun.id)))
          in
          Legal { structure; unsatisfied = unsat }
        with Offender msg -> Illegal msg
      in
      let summary =
        match result with
        | Legal _ ->
            Some
              {
                y_new_pos = new_pos;
                y_perms = structure.Blockstruct.perms;
                y_src_precedes = src_precedes;
                y_verdicts = verdicts;
              }
        | Illegal _ -> None
      in
      (result, summary)
