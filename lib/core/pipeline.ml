module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout
module Diag = Inl_diag.Diag

type step =
  | Interchange of string * string
  | Reverse of string
  | Scale of string * int
  | Skew of { target : string; source : string; factor : int }
  | Align of { stmt : string; loop : string; amount : int }
  | Reorder of { parent : Ast.path; perm : int list }

let pp_step fmt = function
  | Interchange (a, b) -> Format.fprintf fmt "interchange %s<->%s" a b
  | Reverse v -> Format.fprintf fmt "reverse %s" v
  | Scale (v, k) -> Format.fprintf fmt "scale %s by %d" v k
  | Skew { target; source; factor } -> Format.fprintf fmt "skew %s by %d*%s" target factor source
  | Align { stmt; loop; amount } -> Format.fprintf fmt "align %s w.r.t. %s by %d" stmt loop amount
  | Reorder { parent; perm } ->
      Format.fprintf fmt "reorder [%s] by (%s)"
        (String.concat ";" (List.map string_of_int parent))
        (String.concat "," (List.map string_of_int perm))

let build (layout : Layout.t) (step : step) : Mat.t =
  match step with
  | Interchange (a, b) -> Tmat.interchange layout a b
  | Reverse v -> Tmat.reversal layout v
  | Scale (v, k) -> Tmat.scaling layout v k
  | Skew { target; source; factor } -> Tmat.skew layout ~target ~source ~factor
  | Align { stmt; loop; amount } -> Tmat.align layout ~stmt ~loop ~amount
  | Reorder { parent; perm } -> Tmat.reorder layout ~parent ~perm

(* Surface syntax of one step, as used by the CLI's --interchange /
   --reverse / ... options. *)
let step_of_spec ~(kind : string) (spec : string) : (step, string) result =
  let parts = String.split_on_char ',' spec in
  let fail () = Error (Printf.sprintf "bad --%s argument %S" kind spec) in
  match (kind, parts) with
  | "interchange", [ a; b ] -> Ok (Interchange (a, b))
  | "reverse", [ v ] -> Ok (Reverse v)
  | "scale", [ v; k ] -> (
      match int_of_string_opt k with Some k -> Ok (Scale (v, k)) | None -> fail ())
  | "skew", [ t; s; f ] -> (
      match int_of_string_opt f with
      | Some f -> Ok (Skew { target = t; source = s; factor = f })
      | None -> fail ())
  | "align", [ s; l; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Align { stmt = s; loop = l; amount = k })
      | None -> fail ())
  | "reorder", _ -> (
      (* path:perm, e.g. 0:1,0 — children of node [0] permuted *)
      match String.index_opt spec ':' with
      | None -> fail ()
      | Some i -> (
          try
            let path =
              String.sub spec 0 i |> String.split_on_char '.'
              |> List.filter (fun s -> s <> "")
              |> List.map int_of_string
            in
            let perm =
              String.sub spec (i + 1) (String.length spec - i - 1)
              |> String.split_on_char ',' |> List.map int_of_string
            in
            Ok (Reorder { parent = path; perm })
          with Failure _ -> fail ()))
  | _ -> fail ()

let step_error fmt = Diag.errorf ~code:"T301" ~phase:Diag.Legality fmt

let extend (layout : Layout.t) (acc : Mat.t) (step : step) :
    (Mat.t * Layout.t, Diag.t list) result =
  match build layout step with
  | exception (Not_found | Failure _ | Invalid_argument _) ->
      Error [ step_error "step '%a' failed against the current program shape" pp_step step ]
  | m -> (
      let acc' = Mat.mul m acc in
      match Blockstruct.infer layout m with
      | Ok st -> Ok (acc', st.Blockstruct.new_layout)
      | Error msg -> Error [ step_error "step '%a': %s" pp_step step msg ])

let compose (layout : Layout.t) (steps : step list) : (Mat.t, Diag.t list) result =
  let rec go acc layout = function
    | [] -> Ok acc
    | step :: rest -> (
        match extend layout acc step with
        | Ok (acc', layout') -> go acc' layout' rest
        | Error _ as e -> e)
  in
  go (Mat.identity (Layout.size layout)) layout steps
