(* Execution-set extraction: turn any program AST — including code-
   generation output with strided loops, covering bounds, guards and
   exact-quotient lets — into, per statement occurrence, a disjunction
   of affine systems whose integer solutions are exactly the dynamic
   instances the program executes.

   Loop variables stay as themselves; [Let]-bound variables are
   eliminated by exact rational substitution (a let [v = e/d] becomes
   the rational affine [e/d] over enclosing loop variables); [Gdiv]
   guards become divisibility witnesses — an equality with a fresh
   existential wildcard in the reserved Omega namespace.  Covering
   (union) bounds are disjunctive, so each such bound forks the context
   into one disjunct per term. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Omega = Inl_presburger.Omega
module Ast = Inl_ir.Ast
module Smap = Map.Make (String)

type raff = { num : Linexpr.t; den : Mpz.t }

let raff_of_affine e = { num = e; den = Mpz.one }
let raff_of_var v = raff_of_affine (Linexpr.var v)

let raff_normalize { num; den } =
  let g =
    Linexpr.fold (fun _ c acc -> Mpz.gcd (Mpz.abs c) acc) num
      (Mpz.gcd (Mpz.abs (Linexpr.constant num)) den)
  in
  if Mpz.is_zero g || Mpz.is_one g then { num; den }
  else
    {
      num = Linexpr.map_coeffs (fun c -> fst (Mpz.divmod c g)) num;
      den = fst (Mpz.divmod den g);
    }

let raff_equal a b =
  let a = raff_normalize a and b = raff_normalize b in
  Mpz.equal a.den b.den && Linexpr.equal a.num b.num

let raff_rename f { num; den } = { num = Linexpr.rename f num; den }

(* a = b over the integers, with denominators cleared. *)
let raff_eq_constr a b = Constr.eq2 (Linexpr.scale b.den a.num) (Linexpr.scale a.den b.num)

let raff_pp fmt { num; den } =
  if Mpz.is_one den then Linexpr.pp fmt num
  else Format.fprintf fmt "(%a)/%a" Linexpr.pp num Mpz.pp den

type ctxt = {
  sys : System.t;  (** over loop variables, parameters and wildcards *)
  env : raff Smap.t;  (** [Let]-bound variables, resolved to loop variables *)
  exact : bool;
      (** [false] when some construct (a strided loop whose start is not
          a single integral affine) could only be over-approximated *)
}

let initial = { sys = System.empty; env = Smap.empty; exact = true }

(* Substitute the let-environment into an affine expression, giving a
   rational affine over loop variables and parameters only. *)
let subst_env (env : raff Smap.t) (e : Linexpr.t) : raff =
  let bound = List.filter (fun v -> Smap.mem v env) (Linexpr.vars e) in
  let r =
    List.fold_left
      (fun acc v ->
        let { num = nv; den = dv } = Smap.find v env in
        let a = Linexpr.coeff acc.num v in
        let rest = Linexpr.sub acc.num (Linexpr.term a v) in
        { num = Linexpr.add (Linexpr.scale dv rest) (Linexpr.scale a nv); den = Mpz.mul acc.den dv })
      (raff_of_affine e) bound
  in
  raff_normalize r

(* v >= num/(den * t.den)  ⇔  den * t.den * v >= num  (integers, den >= 1) *)
let lower_constr env v (t : Ast.bterm) =
  let r = subst_env env t.Ast.num in
  Constr.ge2 (Linexpr.term (Mpz.mul r.den t.Ast.den) v) r.num

let upper_constr env v (t : Ast.bterm) =
  let r = subst_env env t.Ast.num in
  Constr.le2 (Linexpr.term (Mpz.mul r.den t.Ast.den) v) r.num

(* One constraint set per disjunct: a natural bound (max lower / min
   upper) is a conjunction of its terms, a covering bound the
   disjunction. *)
let bound_branches env v ~which (b : Ast.bound) : Constr.t list list =
  let mk = match which with `Lower -> lower_constr | `Upper -> upper_constr in
  let natural = match which with `Lower -> `Max | `Upper -> `Min in
  if b.Ast.combine = natural then [ List.map (mk env v) b.Ast.terms ]
  else List.map (fun t -> [ mk env v t ]) b.Ast.terms

let guard_constrs env (g : Ast.guard) : Constr.t list =
  match g with
  | Ast.Gcmp (`Ge, e) -> [ Constr.ge (subst_env env e).num ]
  | Ast.Gcmp (`Eq, e) -> [ Constr.eq (subst_env env e).num ]
  | Ast.Gdiv (m, e) ->
      (* m | e/d  ⇔  d*m | e's numerator (e integral at execution) *)
      let r = subst_env env e in
      let w = Omega.fresh_var () in
      [ Constr.eq2 r.num (Linexpr.term (Mpz.mul r.den m) w) ]

let enter_if ctxt guards =
  { ctxt with sys = List.concat_map (guard_constrs ctxt.env) guards @ ctxt.sys }

let enter_let ctxt v (t : Ast.bterm) =
  let r = subst_env ctxt.env t.Ast.num in
  let binding = raff_normalize { num = r.num; den = Mpz.mul r.den t.Ast.den } in
  { ctxt with env = Smap.add v binding ctxt.env }

(* Contexts holding inside the loop body.  A unit-step loop contributes
   its bound constraints; a strided loop additionally constrains the
   variable to the arithmetic progression from the start value, which is
   affine-encodable only when the lower bound is a single integral term
   (the only shape the code generator emits) — otherwise the stride is
   dropped and the context marked inexact (a superset). *)
let enter_loop ctxt (l : Ast.loop) : ctxt list =
  let v = l.Ast.var in
  let lowers = bound_branches ctxt.env v ~which:`Lower l.Ast.lower in
  let uppers = bound_branches ctxt.env v ~which:`Upper l.Ast.upper in
  let stride, exact =
    if Mpz.is_one l.Ast.step then ([], ctxt.exact)
    else
      match l.Ast.lower.Ast.terms with
      | [ t ] when l.Ast.lower.Ast.combine = `Max ->
          let r = subst_env ctxt.env t.Ast.num in
          if Mpz.is_one (Mpz.mul r.den t.Ast.den) then
            let w = Omega.fresh_var () in
            (* v - lo = step * w *)
            ( [ Constr.eq2 (Linexpr.sub (Linexpr.var v) r.num) (Linexpr.term l.Ast.step w) ],
              ctxt.exact )
          else ([], false)
      | _ -> ([], false)
  in
  List.concat_map
    (fun lo -> List.map (fun up -> { ctxt with sys = stride @ lo @ up @ ctxt.sys; exact }) uppers)
    lowers

type occurrence = {
  path : Ast.path;
  stmt : Ast.stmt;
  loops : (Ast.path * string) list;  (** enclosing loops, outermost first *)
  ctxts : ctxt list;  (** disjuncts; their union is the execution set *)
}

let extract (prog : Ast.program) : occurrence list =
  let acc = ref [] in
  let rec go path loops ctxts node =
    match node with
    | Ast.Stmt s -> acc := { path = List.rev path; stmt = s; loops = List.rev loops; ctxts } :: !acc
    | Ast.If (gs, body) ->
        let ctxts = List.map (fun c -> enter_if c gs) ctxts in
        go_body path loops ctxts body
    | Ast.Let (v, t, body) ->
        let ctxts = List.map (fun c -> enter_let c v t) ctxts in
        go_body path loops ctxts body
    | Ast.Loop l ->
        let ctxts = List.concat_map (fun c -> enter_loop c l) ctxts in
        go_body path ((List.rev path, l.Ast.var) :: loops) ctxts l.Ast.body
  and go_body path loops ctxts body =
    List.iteri (fun i n -> go (i :: path) loops ctxts n) body
  in
  List.iteri (fun i n -> go [ i ] [] [ initial ] n) prog.Ast.nest;
  List.rev !acc

let loops_of (prog : Ast.program) : (Ast.path * Ast.loop) list =
  let acc = ref [] in
  let rec go path node =
    match node with
    | Ast.Stmt _ -> ()
    | Ast.If (_, body) | Ast.Let (_, _, body) -> go_body path body
    | Ast.Loop l ->
        acc := (List.rev path, l) :: !acc;
        go_body path l.Ast.body
  and go_body path body = List.iteri (fun i n -> go (i :: path) n) body in
  List.iteri (fun i n -> go [ i ] n) prog.Ast.nest;
  List.rev !acc

(* Array references of a statement with their subscripts resolved
   through the let-environment.  The boolean marks the write. *)
let refs_of (env : raff Smap.t) (s : Ast.stmt) : (bool * string * raff list) list =
  let of_aref w (r : Ast.aref) = (w, r.Ast.array, List.map (subst_env env) r.Ast.index) in
  let rec reads acc = function
    | Ast.Eref r -> of_aref false r :: acc
    | Ast.Econst _ | Ast.Evar _ -> acc
    | Ast.Ebin (_, a, b) -> reads (reads acc a) b
    | Ast.Ecall (_, args) -> List.fold_left reads acc args
  in
  of_aref true s.Ast.lhs :: List.rev (reads [] s.Ast.rhs)

