(** Execution-set extraction for arbitrary (including generated)
    programs.

    {!Inl_instance.Layout} maps {e source} programs to instance vectors
    and rejects [If]/[Let] nodes by design; the verifier instead reads
    the execution set straight off the AST.  Each statement occurrence
    yields a disjunction of conjunctive affine systems ({!ctxt}) over the
    program's own loop variables, parameters and divisibility wildcards,
    whose integer solutions are exactly the loop-variable valuations
    under which the statement executes:

    - natural bounds and guards are conjunctive constraints;
    - covering (union) bounds — combiner opposite to the natural one —
      are disjunctive and fork the context per term;
    - [Let v = e/d] is eliminated by exact rational substitution
      ({!raff}); [Gdiv] guards and strides become equalities with fresh
      existential wildcards ({!Inl_presburger.Omega.fresh_var});
    - a strided loop whose start is not one integral affine term cannot
      be encoded exactly; the context is then a superset and flagged
      [exact = false] so downstream checks degrade to "unknown" instead
      of lying.

    Extraction is purely syntactic — it never calls the solver and never
    raises. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Ast = Inl_ir.Ast
module Smap : Map.S with type key = string

type raff = { num : Linexpr.t; den : Mpz.t }
(** Rational affine form [num/den], [den >= 1]. *)

val raff_of_affine : Linexpr.t -> raff
val raff_of_var : string -> raff
val raff_normalize : raff -> raff
val raff_equal : raff -> raff -> bool
val raff_rename : (string -> string) -> raff -> raff

val raff_eq_constr : raff -> raff -> Constr.t
(** [a = b] with denominators cleared. *)

val raff_pp : Format.formatter -> raff -> unit

type ctxt = {
  sys : System.t;
  env : raff Smap.t;
  exact : bool;
}

val initial : ctxt

val subst_env : raff Smap.t -> Linexpr.t -> raff
(** Resolve [Let]-bound variables in an affine expression. *)

val lower_constr : raff Smap.t -> string -> Ast.bterm -> Constr.t
val upper_constr : raff Smap.t -> string -> Ast.bterm -> Constr.t

val bound_branches :
  raff Smap.t -> string -> which:[ `Lower | `Upper ] -> Ast.bound -> Constr.t list list
(** One constraint list per disjunct. *)

val guard_constrs : raff Smap.t -> Ast.guard -> Constr.t list

val enter_if : ctxt -> Ast.guard list -> ctxt
val enter_let : ctxt -> string -> Ast.bterm -> ctxt
val enter_loop : ctxt -> Ast.loop -> ctxt list

type occurrence = {
  path : Ast.path;
  stmt : Ast.stmt;
  loops : (Ast.path * string) list;  (** enclosing loops, outermost first *)
  ctxts : ctxt list;  (** disjuncts; their union is the execution set *)
}

val extract : Ast.program -> occurrence list
(** All statement occurrences in syntactic order. *)

val loops_of : Ast.program -> (Ast.path * Ast.loop) list
(** All loops in syntactic order, with their paths. *)

val refs_of : raff Smap.t -> Ast.stmt -> (bool * string * raff list) list
(** Array references of a statement — the write first, then reads left
    to right — with subscripts resolved through the let-environment. *)
