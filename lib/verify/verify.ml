(* Driver: one entry point combining the lint pass, the DOALL analysis
   and (when a source program is supplied) translation validation. *)

module Ast = Inl_ir.Ast
module Pp = Inl_ir.Pp
module Diag = Inl_diag.Diag
module Omega = Inl_presburger.Omega

type report = {
  lint : Diag.t list;
  loops : (Ast.path * string * Doall.status) list;
  equiv : Diag.t list;
      (** translation-validation findings; empty when no source program
          was supplied (or when lint found structural errors) *)
}

(* Several contexts / branch pairs can degrade or fail the same way;
   identical (code, message) findings carry no extra information. *)
let dedup (ds : Diag.t list) : Diag.t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : Diag.t) ->
      let k = (d.Diag.code, d.Diag.message) in
      if Hashtbl.mem seen k then false
      else (
        Hashtbl.add seen k ();
        true))
    ds

let run ?against (prog : Ast.program) : report =
  Inl_diag.Stats.timed "verify" (fun () ->
      (* fresh per-run solver state: projection metering and fault
         counters start at zero, wildcard numbering restarts so repeated
         runs in one process are deterministic *)
      let ctx = Omega.new_analysis () in
      Omega.reset_fresh_names ();
      let lint = dedup (Lint.run prog) in
      (* On a structurally broken program (V005/V007) the execution sets
         are meaningless; deeper analyses would only cascade. *)
      let structural = Diag.has_errors lint in
      let loops = if structural then [] else Doall.analyze ~ctx prog in
      let equiv =
        match against with
        | Some source when not structural -> dedup (Equiv.check ~ctx ~source prog)
        | _ -> []
      in
      { lint; loops; equiv })

let diags (r : report) : Diag.t list = r.lint @ r.equiv

(* The input program with "/* parallel */" on every provably parallel
   loop header. *)
let annotated (prog : Ast.program) (loops : (Ast.path * string * Doall.status) list) : string =
  let annot path =
    match List.find_opt (fun (p, _, _) -> p = path) loops with
    | Some (_, _, Doall.Parallel) -> Some "parallel"
    | _ -> None
  in
  Pp.program_to_string_annot ~annot prog

let loop_summary (loops : (Ast.path * string * Doall.status) list) : string list =
  List.map
    (fun (_, var, status) ->
      match status with
      | Doall.Parallel -> Printf.sprintf "loop %s: parallel" var
      | Doall.Serial ws ->
          Printf.sprintf "loop %s: serial (%s)" var
            (String.concat "; " (List.map Doall.witness_to_string ws))
      | Doall.Unknown msg -> Printf.sprintf "loop %s: unknown (%s)" var msg)
    loops
