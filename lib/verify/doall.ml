(* DOALL / race detection: a loop level is parallel when it carries no
   dependence — no two distinct iterations of the loop (under equal
   values of the enclosing shared loops) touch the same array cell with
   at least one write.  This is the standard race-freedom condition: if
   it holds, the loop's iterations commute and can run concurrently.

   The check is an ILP satisfiability question per conflicting
   reference pair, built from the execution sets of [Exec] — so it
   works on generated code (guards, lets, strides, covering bounds)
   where [Inl_depend.Analysis] (which needs a source-program layout)
   does not. *)

module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Omega = Inl_presburger.Omega
module Ast = Inl_ir.Ast
module Pool = Inl_parallel.Pool

type witness = {
  kind : [ `Write_write | `Read_write ];
  array : string;
  src : string;  (** statement label of the first access *)
  dst : string;
}

type status =
  | Parallel
  | Serial of witness list
  | Unknown of string
      (** the analysis could not decide: resource budget exhausted or an
          execution set that is only representable approximately *)

let satisfiable ?ctx sys =
  match System.normalize sys with None -> false | Some s -> Omega.satisfiable ?ctx s

let kind_to_string = function `Write_write -> "write-write" | `Read_write -> "read-write"

let witness_to_string w =
  Printf.sprintf "%s conflict on %s between %s and %s" (kind_to_string w.kind) w.array w.src
    w.dst

(* Is [prefix] a (non-strict) prefix of [path]? *)
let rec is_prefix prefix path =
  match (prefix, path) with
  | [], _ -> true
  | x :: p, y :: q -> x = y && is_prefix p q
  | _ :: _, [] -> false

let analyze ?ctx (prog : Ast.program) : (Ast.path * string * status) list =
  let params = prog.Ast.params in
  let occs = Exec.extract prog in
  let suffix v = if List.mem v params then v else v ^ "!2" in
  (* one task per loop: each accumulates its own witnesses, so results
     are position-for-position identical to the sequential scan *)
  Pool.map
    (fun ((lpath, (l : Ast.loop)) : Ast.path * Ast.loop) ->
      let under = List.filter (fun (o : Exec.occurrence) -> is_prefix lpath o.Exec.path) occs in
      let witnesses = ref [] in
      let unknown = ref None in
      let note_unknown msg = if !unknown = None then unknown := Some msg in
      let check_pair (o1 : Exec.occurrence) (o2 : Exec.occurrence) =
        let env1 = (List.hd o1.Exec.ctxts).Exec.env
        and env2 = (List.hd o2.Exec.ctxts).Exec.env in
        let refs1 = Exec.refs_of env1 o1.Exec.stmt and refs2 = Exec.refs_of env2 o2.Exec.stmt in
        (* shared loops strictly enclosing this one run at equal values;
           this loop's variable differs (either direction). *)
        let outer_eq =
          List.filter_map
            (fun (p, v) ->
              if List.length p < List.length lpath && is_prefix p lpath then
                Some (Constr.eq2 (Linexpr.var v) (Linexpr.var (suffix v)))
              else None)
            o1.Exec.loops
        in
        let carried dir =
          match dir with
          | `Lt -> Constr.lt2 (Linexpr.var l.Ast.var) (Linexpr.var (suffix l.Ast.var))
          | `Gt -> Constr.gt2 (Linexpr.var l.Ast.var) (Linexpr.var (suffix l.Ast.var))
        in
        List.iter
          (fun (w1, a1, idx1) ->
            if w1 then
              List.iter
                (fun (w2, a2, idx2) ->
                  if a2 = a1 && List.length idx2 = List.length idx1 then
                    let kind = if w2 then `Write_write else `Read_write in
                    let already =
                      List.exists
                        (fun w ->
                          w.kind = kind && w.array = a1
                          && w.src = o1.Exec.stmt.Ast.label
                          && w.dst = o2.Exec.stmt.Ast.label)
                        !witnesses
                    in
                    if not already then
                      let subs =
                        List.map2
                          (fun r1 r2 -> Exec.raff_eq_constr r1 (Exec.raff_rename suffix r2))
                          idx1 idx2
                      in
                      let conflict (c1 : Exec.ctxt) (c2 : Exec.ctxt) dir =
                        let sys =
                          (carried dir :: outer_eq)
                          @ subs @ c1.Exec.sys
                          @ System.rename suffix c2.Exec.sys
                        in
                        match satisfiable ?ctx sys with
                        | true ->
                            if c1.Exec.exact && c2.Exec.exact then (
                              let w =
                                {
                                  kind;
                                  array = a1;
                                  src = o1.Exec.stmt.Ast.label;
                                  dst = o2.Exec.stmt.Ast.label;
                                }
                              in
                              (* both directions / several contexts can
                                 witness the same conflict — report once *)
                              if not (List.mem w !witnesses) then witnesses := w :: !witnesses)
                            else
                              note_unknown
                                (Printf.sprintf
                                   "possible %s conflict on %s involves an approximated \
                                    execution set"
                                   (kind_to_string kind) a1)
                        | false -> ()
                        | exception Omega.Blowup _ ->
                            note_unknown "resource budget exhausted"
                      in
                      List.iter
                        (fun c1 ->
                          List.iter
                            (fun c2 ->
                              conflict c1 c2 `Lt;
                              conflict c1 c2 `Gt)
                            o2.Exec.ctxts)
                        o1.Exec.ctxts)
                refs2)
          refs1
      in
      List.iter (fun o1 -> List.iter (fun o2 -> check_pair o1 o2) under) under;
      let status =
        match (!witnesses, !unknown) with
        | [], None -> Parallel
        | [], Some msg -> Unknown msg
        | ws, _ -> Serial (List.rev ws)
      in
      (lpath, l.Ast.var, status))
    (Exec.loops_of prog)
