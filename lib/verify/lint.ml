(* Well-formedness lint over any program AST.  Every finding is a typed
   diagnostic with a stable code:

     V001  dead loop (its body can never execute)           warning
     V002  unreachable guard (context refutes it)           warning
     V003  singular loop (at most one iteration per entry)  info
     V004  guard implied by enclosing bounds                 info
     V005  out-of-scope variable use                         error
     V006  inexact let division not covered by a guard       error
     V007  malformed program (duplicate label, bad step...)  error
     V900  check skipped: resource budget exhausted          warning

   All solver calls run under the ambient Omega budget; a Blowup never
   escapes — the affected check degrades to one V900. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Omega = Inl_presburger.Omega
module Ast = Inl_ir.Ast
module Diag = Inl_diag.Diag

let vdiag sev code fmt =
  Format.kasprintf (fun m -> Diag.make ~code ~severity:sev ~phase:Diag.Verify m) fmt

let pp_guards fmt gs =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.fprintf f " and ")
    Inl_ir.Pp.pp_guard fmt gs

let unknown what = vdiag Diag.Warning "V900" "check skipped (resource budget exhausted): %s" what

(* Largest divisor for which we enumerate residue branches when testing
   divisibility facts; beyond it the check reports V900. *)
let max_modulus = 64

(* Run a solver-backed check, degrading budget blowups to V900. *)
let budgeted ~what (diags : Diag.t list ref) (f : unit -> Diag.t list) =
  match f () with
  | ds -> diags := List.rev_append ds !diags
  | exception Omega.Blowup _ -> diags := unknown what :: !diags

let satisfiable sys = match System.normalize sys with None -> false | Some s -> Omega.satisfiable s

(* d | e (a rational affine num/den) holds everywhere in sys?
   Equivalent to: no residue 1..d-1 is reachable.  [None] when d is too
   large to enumerate. *)
let always_divides sys (r : Exec.raff) (d : Mpz.t) : bool option =
  match Mpz.to_int_opt d with
  | Some di when di <= max_modulus ->
      let m = Mpz.mul r.Exec.den d in
      let rec residues i =
        if i >= di then true
        else
          let w = Omega.fresh_var () in
          (* num ≡ i*den (mod den*d), i.e. num - i*den - m*w = 0 *)
          let c =
            Constr.eq
              (Linexpr.sub
                 (Linexpr.sub r.Exec.num (Linexpr.const (Mpz.mul (Mpz.of_int i) r.Exec.den)))
                 (Linexpr.term m w))
          in
          if satisfiable (c :: sys) then false else residues (i + 1)
      in
      Some (residues 1)
  | _ -> None

let guard_redundant sys env (g : Ast.guard) : bool option =
  match g with
  | Ast.Gcmp (op, e) ->
      let r = Exec.subst_env env e in
      let c = match op with `Ge -> Constr.ge r.Exec.num | `Eq -> Constr.eq r.Exec.num in
      Some (Omega.implies sys c)
  | Ast.Gdiv (d, e) -> always_divides sys (Exec.subst_env env e) d

let check_structure (prog : Ast.program) : Diag.t list =
  match Ast.validate prog with
  | () -> []
  | exception Ast.Invalid msg ->
      let scope_words = [ "neither an enclosing"; "unbound"; "shadows" ] in
      let is_scope =
        List.exists
          (fun w ->
            let rec find i =
              i + String.length w <= String.length msg && (String.sub msg i (String.length w) = w || find (i + 1))
            in
            find 0)
          scope_words
      in
      if is_scope then [ vdiag Diag.Error "V005" "%s" msg ]
      else [ vdiag Diag.Error "V007" "%s" msg ]

let run (prog : Ast.program) : Diag.t list =
  match check_structure prog with
  | _ :: _ as structural -> structural (* contexts are meaningless on malformed input *)
  | [] ->
      let diags = ref [] in
      (* live = at least one incoming disjunct satisfiable; dead code is
         reported once, at the node that kills it. *)
      let rec go ctxts ~live node =
        match node with
        | Ast.Stmt _ -> ()
        | Ast.If (gs, body) ->
            let inner = List.map (fun c -> Exec.enter_if c gs) ctxts in
            let live' = ref live in
            if live then
              budgeted ~what:"guard reachability" diags (fun () ->
                  if not (List.exists (fun (c : Exec.ctxt) -> satisfiable c.Exec.sys) inner) then (
                    live' := false;
                    [ vdiag Diag.Warning "V002" "guard is unreachable: %a" pp_guards gs ])
                  else
                    List.concat_map
                      (fun g ->
                        let redundant =
                          List.for_all
                            (fun (c : Exec.ctxt) ->
                              satisfiable c.Exec.sys = false
                              || guard_redundant c.Exec.sys c.Exec.env g = Some true)
                            ctxts
                        in
                        if redundant then
                          [
                            vdiag Diag.Info "V004" "guard is implied by enclosing bounds: %a"
                              pp_guards [ g ];
                          ]
                        else [])
                      gs);
            List.iter (go inner ~live:!live') body
        | Ast.Let (v, t, body) ->
            let r = Exec.subst_env (List.hd ctxts).Exec.env t.Ast.num in
            let d = Mpz.mul r.Exec.den t.Ast.den in
            if live && not (Mpz.is_one d) then
              budgeted ~what:(Printf.sprintf "divisibility of let %s" v) diags (fun () ->
                  let guarded =
                    List.for_all
                      (fun (c : Exec.ctxt) ->
                        satisfiable c.Exec.sys = false
                        ||
                        let rr = Exec.subst_env c.Exec.env t.Ast.num in
                        always_divides c.Exec.sys rr t.Ast.den = Some true)
                      ctxts
                  in
                  if guarded then []
                  else
                    [
                      vdiag Diag.Error "V006"
                        "let %s divides by %a but no enclosing guard ensures divisibility \
                         (execution would fault)"
                        v Mpz.pp t.Ast.den;
                    ]);
            List.iter (go (List.map (fun c -> Exec.enter_let c v t) ctxts) ~live) body
        | Ast.Loop l ->
            let inner = List.concat_map (fun c -> Exec.enter_loop c l) ctxts in
            let live' = ref live in
            if live then
              budgeted ~what:(Printf.sprintf "bounds of loop %s" l.Ast.var) diags (fun () ->
                  if not (List.exists (fun (c : Exec.ctxt) -> satisfiable c.Exec.sys) inner) then (
                    live' := false;
                    [ vdiag Diag.Warning "V001" "loop %s never executes (empty bounds)" l.Ast.var ])
                  else if singular ctxts l then
                    [
                      vdiag Diag.Info "V003" "loop %s runs at most one iteration per entry"
                        l.Ast.var;
                    ]
                  else []);
            List.iter (go inner ~live:!live') l.Ast.body
      (* A simple (natural-bound) loop is singular when two distinct
         in-bounds values of its variable cannot coexist under the same
         enclosing context. *)
      and singular ctxts (l : Ast.loop) =
        l.Ast.lower.Ast.combine = `Max
        && l.Ast.upper.Ast.combine = `Min
        && Mpz.is_one l.Ast.step
        && List.for_all
             (fun (c : Exec.ctxt) ->
               let v = l.Ast.var in
               let v' = v ^ "!2" in
               let bounds var =
                 List.map (Exec.lower_constr c.Exec.env var) l.Ast.lower.Ast.terms
                 @ List.map (Exec.upper_constr c.Exec.env var) l.Ast.upper.Ast.terms
               in
               not
                 (satisfiable
                    ((Constr.lt2 (Linexpr.var v) (Linexpr.var v') :: bounds v)
                    @ bounds v' @ c.Exec.sys)))
             ctxts
      in
      List.iter (go [ Exec.initial ] ~live:true) prog.Ast.nest;
      List.rev !diags
