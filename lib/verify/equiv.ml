(* Translation validation: prove that a (generated) program executes
   exactly the statement instances of a source program, in an order
   that preserves every source dependence.

   The proof obligations, each decided by ILP emptiness under the
   ambient resource budget:

     V101  some source instance is never executed (dropped)
     V102  the program executes instances outside the source set
     V103  some source instance is executed more than once
     V104  a source dependence is executed out of order
     V105  a statement computes a different expression
     V106  the statement sets differ
     V107  (warning) a statement with a provably empty execution set
           was dropped — instance sets are trivially preserved

   Together V101-V103 + V105 say each statement performs exactly its
   source computations once, and V104 says conflicting accesses keep
   their relative order — which is semantic equality for loop programs
   (any execution order of the same instances that preserves dependences
   computes the same values).

   The bridge between the two programs is a statement-wise affine
   correspondence sigma mapping each source iterator to a rational
   affine form over the generated program's loop variables.  It is not
   trusted input: it is {e inferred} — from surviving [let] bindings
   named after source iterators and from equating source and generated
   array subscripts position-wise (a small rational linear solve) — and
   every check then holds or fails independently of how sigma was
   found: if some affine sigma makes instance sets equal, bodies match
   and dependences ordered, the programs are equivalent; if none exists
   the subscript equations are inconsistent and V105 fires.  An
   underdetermined sigma degrades to V900 (unknown), never to a silent
   pass. *)

module Mpz = Inl_num.Mpz
module Q = Inl_num.Q
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Omega = Inl_presburger.Omega
module Ast = Inl_ir.Ast
module Pp = Inl_ir.Pp
module Diag = Inl_diag.Diag
module Smap = Exec.Smap
module Pool = Inl_parallel.Pool

let vdiag sev code fmt =
  Format.kasprintf (fun m -> Diag.make ~code ~severity:sev ~phase:Diag.Verify m) fmt

(* The check cannot be decided within our means (residue enumeration or
   branch caps exceeded, unexpected wildcard shape); reported as V900. *)
exception Unknown of string

let max_modulus = 64
let max_branches = 2048

let satisfiable ?ctx sys =
  match System.normalize sys with None -> false | Some s -> Omega.satisfiable ?ctx s

(* Variable renamer that leaves parameters (shared between the two
   programs) untouched. *)
let suffix_nonparams ~params sfx v = if List.mem v params then v else v ^ sfx

(* ---------- rational affine helpers ---------- *)

let raff_sub (a : Exec.raff) (b : Exec.raff) : Exec.raff =
  Exec.raff_normalize
    {
      Exec.num = Linexpr.sub (Linexpr.scale b.Exec.den a.Exec.num) (Linexpr.scale a.Exec.den b.Exec.num);
      den = Mpz.mul a.Exec.den b.Exec.den;
    }

(* ---------- statement-body lockstep walk ---------- *)

let rec affine_of_expr (e : Ast.expr) : Linexpr.t option =
  match e with
  | Ast.Evar v -> Some (Linexpr.var v)
  | Ast.Econst f ->
      if Float.is_integer f && Float.abs f < 1e15 then Some (Linexpr.of_int (int_of_float f))
      else None
  | Ast.Ebin (Ast.Add, a, b) -> combine Linexpr.add a b
  | Ast.Ebin (Ast.Sub, a, b) -> combine Linexpr.sub a b
  | Ast.Ebin (Ast.Mul, a, b) -> (
      match (affine_of_expr a, affine_of_expr b) with
      | Some x, Some y when Linexpr.is_constant x -> Some (Linexpr.scale (Linexpr.constant x) y)
      | Some x, Some y when Linexpr.is_constant y -> Some (Linexpr.scale (Linexpr.constant y) x)
      | _ -> None)
  | Ast.Ebin (Ast.Div, _, _) | Ast.Eref _ | Ast.Ecall _ -> None

and combine op a b =
  match (affine_of_expr a, affine_of_expr b) with
  | Some x, Some y -> Some (op x y)
  | _ -> None

(* Walk source and generated expressions in lockstep, collecting
   [source value = generated value] equations for affine positions and
   requiring identical structure elsewhere. *)
let rec lockstep ~senv ~genv (a : Ast.expr) (b : Ast.expr) acc :
    ((Exec.raff * Exec.raff) list, string) result =
  let ( let* ) = Result.bind in
  let mismatch () =
    Error (Format.asprintf "%a differs from %a" (Pp.pp_expr ~ctx:0) a (Pp.pp_expr ~ctx:0) b)
  in
  match (affine_of_expr a, affine_of_expr b) with
  | Some s, Some g -> Ok ((Exec.subst_env senv s, Exec.subst_env genv g) :: acc)
  | _ -> (
      match (a, b) with
      | Ast.Eref ra, Ast.Eref rb
        when ra.Ast.array = rb.Ast.array
             && List.length ra.Ast.index = List.length rb.Ast.index ->
          Ok
            (List.fold_left2
               (fun acc sa gb -> (Exec.subst_env senv sa, Exec.subst_env genv gb) :: acc)
               acc ra.Ast.index rb.Ast.index)
      | Ast.Econst x, Ast.Econst y when Float.equal x y -> Ok acc
      | Ast.Ebin (o1, a1, b1), Ast.Ebin (o2, a2, b2) when o1 = o2 ->
          let* acc = lockstep ~senv ~genv a1 a2 acc in
          lockstep ~senv ~genv b1 b2 acc
      | Ast.Ecall (f, xs), Ast.Ecall (g, ys) when f = g && List.length xs = List.length ys ->
          List.fold_left2
            (fun acc x y ->
              let* acc = acc in
              lockstep ~senv ~genv x y acc)
            (Ok acc) xs ys
      | _ -> mismatch ())

let stmt_equations ~senv ~genv (s : Ast.stmt) (g : Ast.stmt) =
  lockstep ~senv ~genv (Ast.Eref s.Ast.lhs) (Ast.Eref g.Ast.lhs) []
  |> Result.map (fun acc -> lockstep ~senv ~genv s.Ast.rhs g.Ast.rhs acc)
  |> Result.join

(* ---------- rational linear solve for sigma ---------- *)

(* Gauss-Jordan over Q on an augmented matrix: [n] unknown columns
   followed by [c] right-hand-side columns. *)
let solve_q (rows : Q.t array list) ~(n : int) ~(c : int) :
    [ `Inconsistent | `Underdetermined of int list | `Solution of Q.t array array ] =
  let rows = Array.of_list (List.map Array.copy rows) in
  let m = Array.length rows in
  let pivot_of = Array.make n (-1) in
  let rank = ref 0 in
  for col = 0 to n - 1 do
    if !rank < m then begin
      let p = ref (-1) in
      for i = !rank to m - 1 do
        if !p < 0 && not (Q.is_zero rows.(i).(col)) then p := i
      done;
      if !p >= 0 then begin
        let tmp = rows.(!rank) in
        rows.(!rank) <- rows.(!p);
        rows.(!p) <- tmp;
        let inv = Q.inv rows.(!rank).(col) in
        Array.iteri (fun j x -> rows.(!rank).(j) <- Q.mul inv x) rows.(!rank);
        for i = 0 to m - 1 do
          if i <> !rank && not (Q.is_zero rows.(i).(col)) then begin
            let f = rows.(i).(col) in
            for j = col to n + c - 1 do
              rows.(i).(j) <- Q.sub rows.(i).(j) (Q.mul f rows.(!rank).(j))
            done;
            rows.(i).(col) <- Q.zero
          end
        done;
        pivot_of.(col) <- !rank;
        incr rank
      end
    end
  done;
  let inconsistent = ref false in
  for i = !rank to m - 1 do
    for j = n to n + c - 1 do
      if not (Q.is_zero rows.(i).(j)) then inconsistent := true
    done
  done;
  if !inconsistent then `Inconsistent
  else
    let free = List.filter (fun k -> pivot_of.(k) < 0) (List.init n (fun k -> k)) in
    if free <> [] then `Underdetermined free
    else
      `Solution
        (Array.init n (fun k -> Array.init c (fun j -> rows.(pivot_of.(k)).(n + j))))

(* ---------- correspondence inference ---------- *)

type sigma = Exec.raff Smap.t

(* Coordinates of the right-hand sides: generated loop variables and
   parameters, plus the constant. *)
let raff_coord (r : Exec.raff) = function
  | `Const -> Q.make (Linexpr.constant r.Exec.num) r.Exec.den
  | `Var v -> Q.make (Linexpr.coeff r.Exec.num v) r.Exec.den

let raff_of_qrow coords (q : Q.t array) : Exec.raff =
  let den = Array.fold_left (fun acc x -> Mpz.lcm acc (Q.den x)) Mpz.one q in
  let num = ref Linexpr.zero in
  List.iteri
    (fun j coord ->
      let scaled = Mpz.mul (Q.num q.(j)) (fst (Mpz.divmod den (Q.den q.(j)))) in
      num :=
        Linexpr.add !num
          (match coord with
          | `Const -> Linexpr.const scaled
          | `Var v -> Linexpr.term scaled v))
    coords;
  Exec.raff_normalize { Exec.num = !num; den }

(* Infer sigma for one statement: source iterator |-> rational affine
   over the generated program's variables. *)
let infer_sigma ~(src : Exec.occurrence) ~(gen : Exec.occurrence) : (sigma, Diag.t) result =
  let label = src.Exec.stmt.Ast.label in
  let senv = (List.hd src.Exec.ctxts).Exec.env in
  let genv = (List.hd gen.Exec.ctxts).Exec.env in
  let iters = List.map snd src.Exec.loops in
  match stmt_equations ~senv ~genv src.Exec.stmt gen.Exec.stmt with
  | Error why ->
      Error (vdiag Diag.Error "V105" "statement %s computes a different expression: %s" label why)
  | Ok eqs ->
      let pinned =
        List.filter_map
          (fun v ->
            match Smap.find_opt v genv with
            | Some r -> Some (Exec.raff_of_var v, r)
            | None ->
                if List.exists (fun (_, gv) -> gv = v) gen.Exec.loops then
                  Some (Exec.raff_of_var v, Exec.raff_of_var v)
                else None)
          iters
      in
      let eqs = pinned @ eqs in
      let n = List.length iters in
      if n = 0 then Ok Smap.empty
      else
        (* Split each equation s = g into unknown part (coefficients of
           the iterators in s) and right-hand side g - (rest of s). *)
        let split (s : Exec.raff) (g : Exec.raff) =
          let coeffs =
            List.map (fun v -> Q.make (Linexpr.coeff s.Exec.num v) s.Exec.den) iters
          in
          let rest =
            List.fold_left
              (fun e v -> Linexpr.sub e (Linexpr.term (Linexpr.coeff e v) v))
              s.Exec.num iters
          in
          (coeffs, raff_sub g { Exec.num = rest; den = s.Exec.den })
        in
        let split_eqs = List.map (fun (s, g) -> split s g) eqs in
        let coords =
          `Const
          :: List.sort_uniq compare
               (List.concat_map (fun (_, r) -> List.map (fun v -> `Var v) (Linexpr.vars r.Exec.num)) split_eqs)
        in
        let c = List.length coords in
        let rows =
          List.map
            (fun (coeffs, rhs) ->
              Array.of_list (coeffs @ List.map (raff_coord rhs) coords))
            split_eqs
        in
        if rows = [] then
          Error
            (vdiag Diag.Warning "V900"
               "cannot infer the iterator correspondence for statement %s (no subscript \
                equations)"
               label)
        else (
          match solve_q rows ~n ~c with
          | `Inconsistent ->
              Error
                (vdiag Diag.Error "V105"
                   "statement %s: source and generated subscripts admit no affine \
                    correspondence"
                   label)
          | `Underdetermined ks ->
              Error
                (vdiag Diag.Warning "V900"
                   "cannot infer the correspondence for iterator%s %s of statement %s"
                   (if List.length ks > 1 then "s" else "")
                   (String.concat ", " (List.map (List.nth iters) ks))
                   label)
          | `Solution sol ->
              Ok
                (List.fold_left2
                   (fun acc v row -> Smap.add v (raff_of_qrow coords row) acc)
                   Smap.empty iters (Array.to_list sol)))

(* ---------- symbolic set difference ---------- *)

(* Negation alternatives of one conjunctive system D: the union of the
   alternatives' solution sets is the complement of D.  Divisibility is
   the only permitted use of wildcards: an equality in which a wildcard
   w appears with coefficient m, and nowhere else in D, denotes
   m | (the rest); its complement enumerates the nonzero residues. *)
let negation_alternatives (d : System.t) : Constr.t list list =
  let wild_occurrences v =
    List.length (List.filter (fun c -> List.mem v (Constr.vars c)) d)
  in
  let neg_constraint c =
    let e = Constr.expr c in
    let wilds = List.filter Omega.is_wildcard (Constr.vars c) in
    match (c, wilds) with
    | Constr.Ge _, [] -> [ [ Constr.ge (Linexpr.add_const (Linexpr.neg e) Mpz.minus_one) ] ]
    | Constr.Ge _, _ :: _ -> raise (Unknown "wildcard inside an inequality")
    | Constr.Eq _, [] ->
        [
          [ Constr.ge (Linexpr.add_const e Mpz.minus_one) ];
          [ Constr.ge (Linexpr.add_const (Linexpr.neg e) Mpz.minus_one) ];
        ]
    | Constr.Eq _, [ w ] ->
        if wild_occurrences w > 1 then raise (Unknown "wildcard shared between constraints");
        let m = Mpz.abs (Linexpr.coeff e w) in
        let rest = Linexpr.sub e (Linexpr.term (Linexpr.coeff e w) w) in
        (match Mpz.to_int_opt m with
        | Some mi when mi <= max_modulus ->
            List.init (mi - 1) (fun r ->
                let w' = Omega.fresh_var () in
                [
                  Constr.eq
                    (Linexpr.sub
                       (Linexpr.add_const rest (Mpz.neg (Mpz.of_int (r + 1))))
                       (Linexpr.term m w'));
                ])
        | _ -> raise (Unknown "divisibility modulus too large to enumerate"))
    | Constr.Eq _, _ :: _ :: _ -> raise (Unknown "equality with several wildcards")
  in
  List.concat_map neg_constraint d

(* Is (union of A) minus (union of B) non-empty? *)
let diff_nonempty ?ctx (a : System.t list) (b : System.t list) : bool =
  let branches = ref (List.filter (satisfiable ?ctx) a) in
  List.iter
    (fun d ->
      let alts = negation_alternatives d in
      let next =
        List.concat_map
          (fun br ->
            List.filter_map
              (fun alt ->
                let s = alt @ br in
                if satisfiable ?ctx s then Some s else None)
              alts)
          !branches
      in
      if List.length next > max_branches then raise (Unknown "set difference: too many branches");
      branches := next)
    b;
  !branches <> []

(* ---------- instance-set preservation ---------- *)

(* Rename the generated program's own variables out of the way of the
   source iterator namespace. *)
let gen_suffix = "!gen"

(* Executed source-instance sets of one generated context, as systems
   over the source iterators and parameters. *)
let coverage ?ctx ~params ~(iters : string list) (sigma : sigma) (c : Exec.ctxt) : System.t list =
  let ren = suffix_nonparams ~params gen_suffix in
  let sys = System.rename ren c.Exec.sys in
  let link =
    List.map
      (fun v -> Exec.raff_eq_constr (Exec.raff_of_var v) (Exec.raff_rename ren (Smap.find v sigma)))
      iters
  in
  let keep x = List.mem x iters || List.mem x params in
  Omega.project ?ctx (link @ sys) ~keep

(* Branches under which instance A (variables renamed by [ra]) executes
   strictly before instance B ([rb]) over their common loops; [tie]
   additionally includes the all-equal branch (used for syntactic order
   and the simultaneous case). *)
let order_branches (common : string list) ~ra ~rb ~tie : Constr.t list list =
  let eq v = Constr.eq2 (Linexpr.var (ra v)) (Linexpr.var (rb v)) in
  let rec go prefix = function
    | [] -> if tie then [ List.rev prefix ] else []
    | v :: rest ->
        (Constr.lt2 (Linexpr.var (ra v)) (Linexpr.var (rb v)) :: List.rev prefix)
        :: go (eq v :: prefix) rest
  in
  go [] common

let common_loops (l1 : (Ast.path * string) list) (l2 : (Ast.path * string) list) : string list =
  let rec go = function
    | (p1, v1) :: t1, (p2, _) :: t2 when p1 = p2 -> v1 :: go (t1, t2)
    | _ -> []
  in
  go (l1, l2)

(* ---------- the checker ---------- *)

type pairing = {
  src : Exec.occurrence;
  gen : Exec.occurrence;
  sigma : (sigma, Diag.t) result;
  exact : bool;  (** both execution sets are represented exactly *)
}

let budgeted ~what add (f : unit -> unit) =
  try f () with
  | Omega.Blowup _ ->
      add (vdiag Diag.Warning "V900" "check skipped (resource budget exhausted): %s" what)
  | Unknown why -> add (vdiag Diag.Warning "V900" "check skipped (%s): %s" why what)

let check_sets ?ctx ~params add (p : pairing) =
  let label = p.src.Exec.stmt.Ast.label in
  match p.sigma with
  | Error d -> add d
  | Ok _ when not p.exact -> () (* already reported as V900 by [check] *)
  | Ok sigma ->
      let iters = List.map snd p.src.Exec.loops in
      let src_sets = List.map (fun (c : Exec.ctxt) -> c.Exec.sys) p.src.Exec.ctxts in
      budgeted ~what:(Printf.sprintf "instance-set preservation for %s" label) add (fun () ->
          let cover = List.concat_map (coverage ?ctx ~params ~iters sigma) p.gen.Exec.ctxts in
          if diff_nonempty ?ctx src_sets cover then
            add
              (vdiag Diag.Error "V101"
                 "statement %s: some source instances are never executed (dropped iterations)"
                 label);
          if diff_nonempty ?ctx cover src_sets then
            add
              (vdiag Diag.Error "V102"
                 "statement %s: instances outside the source iteration set are executed (extra \
                  iterations)"
                 label));
      budgeted ~what:(Printf.sprintf "injectivity for %s" label) add (fun () ->
          let ren2 = suffix_nonparams ~params "!2" in
          let gen_loop_vars = List.map snd p.gen.Exec.loops in
          let distinct =
            order_branches gen_loop_vars ~ra:(fun v -> v) ~rb:ren2 ~tie:false
            @ order_branches gen_loop_vars ~ra:ren2 ~rb:(fun v -> v) ~tie:false
          in
          let same_instance =
            List.map
              (fun v ->
                Exec.raff_eq_constr (Smap.find v sigma)
                  (Exec.raff_rename ren2 (Smap.find v sigma)))
              iters
          in
          let dup =
            List.exists
              (fun (c1 : Exec.ctxt) ->
                List.exists
                  (fun (c2 : Exec.ctxt) ->
                    let base =
                      same_instance @ c1.Exec.sys @ System.rename ren2 c2.Exec.sys
                    in
                    List.exists (fun branch -> satisfiable ?ctx (branch @ base)) distinct)
                  p.gen.Exec.ctxts)
              p.gen.Exec.ctxts
          in
          if dup then
            add
              (vdiag Diag.Error "V103"
                 "statement %s: some source instance is executed more than once (duplicated \
                  iterations)"
                 label))

(* Every pair of conflicting source accesses executed in source order
   must be executed in the same order by the generated program.  One task
   per ordered pairing pair: statement labels are unique per pairing, so
   the (l1, l2, array) de-duplication keys of different tasks are
   disjoint and the [reported] state can stay task-local. *)
let check_pair_order ?ctx ~params (p1, p2) : Diag.t list =
  let local = ref [] in
  let add d = local := d :: !local in
  let reported = ref [] in
  (match (p1.sigma, p2.sigma) with
      | Ok sigma1, Ok sigma2 when p1.exact && p2.exact ->
          let l1 = p1.src.Exec.stmt.Ast.label and l2 = p2.src.Exec.stmt.Ast.label in
          let senv1 = (List.hd p1.src.Exec.ctxts).Exec.env
          and senv2 = (List.hd p2.src.Exec.ctxts).Exec.env in
          let refs1 = Exec.refs_of senv1 p1.src.Exec.stmt
          and refs2 = Exec.refs_of senv2 p2.src.Exec.stmt in
          let rs = suffix_nonparams ~params "!s"
          and rx = suffix_nonparams ~params "!x"
          and ry = suffix_nonparams ~params "!y" in
          let src_common = common_loops p1.src.Exec.loops p2.src.Exec.loops in
          let src_before =
            order_branches src_common
              ~ra:(fun v -> v)
              ~rb:rs
              ~tie:(Ast.syntactic_compare p1.src.Exec.path p2.src.Exec.path < 0)
          in
          let gen_common = common_loops p1.gen.Exec.loops p2.gen.Exec.loops in
          let gen_violation =
            order_branches gen_common ~ra:ry ~rb:rx
              ~tie:(Ast.syntactic_compare p2.gen.Exec.path p1.gen.Exec.path <= 0)
          in
          let iters1 = List.map snd p1.src.Exec.loops
          and iters2 = List.map snd p2.src.Exec.loops in
          let links1 =
            List.map
              (fun v ->
                Exec.raff_eq_constr
                  (Exec.raff_rename rx (Smap.find v sigma1))
                  (Exec.raff_of_var v))
              iters1
          and links2 =
            List.map
              (fun v ->
                Exec.raff_eq_constr
                  (Exec.raff_rename ry (Smap.find v sigma2))
                  (Exec.raff_of_var (rs v)))
              iters2
          in
          List.iter
            (fun (w1, a1, idx1) ->
              List.iter
                (fun (w2, a2, idx2) ->
                  if
                    (w1 || w2) && a1 = a2
                    && List.length idx1 = List.length idx2
                    && not (List.mem (l1, l2, a1) !reported)
                  then
                    let subs =
                      List.map2
                        (fun r1 r2 -> Exec.raff_eq_constr r1 (Exec.raff_rename rs r2))
                        idx1 idx2
                    in
                    budgeted
                      ~what:
                        (Printf.sprintf "dependence order %s -> %s on %s" l1 l2 a1)
                      add
                      (fun () ->
                        List.iter
                          (fun (sc1 : Exec.ctxt) ->
                            List.iter
                              (fun (sc2 : Exec.ctxt) ->
                                let src_base =
                                  subs @ sc1.Exec.sys @ System.rename rs sc2.Exec.sys
                                in
                                List.iter
                                  (fun before ->
                                    if
                                      (not (List.mem (l1, l2, a1) !reported))
                                      && satisfiable ?ctx (before @ src_base)
                                    then
                                      (* the dependence exists; now look
                                         for an execution order witness
                                         against it *)
                                      let violated =
                                        List.exists
                                          (fun (d1 : Exec.ctxt) ->
                                            List.exists
                                              (fun (d2 : Exec.ctxt) ->
                                                let gsys =
                                                  System.rename rx d1.Exec.sys
                                                  @ System.rename ry d2.Exec.sys
                                                in
                                                List.exists
                                                  (fun viol ->
                                                    satisfiable ?ctx
                                                      (viol @ links1 @ links2 @ gsys
                                                     @ before @ src_base))
                                                  gen_violation)
                                              p2.gen.Exec.ctxts)
                                          p1.gen.Exec.ctxts
                                      in
                                      if violated then begin
                                        reported := (l1, l2, a1) :: !reported;
                                        add
                                          (vdiag Diag.Error "V104"
                                             "dependence from %s to %s on %s is not preserved \
                                              (conflicting accesses reordered)"
                                             l1 l2 a1)
                                      end)
                                  src_before)
                              p2.src.Exec.ctxts)
                          p1.src.Exec.ctxts))
                refs2)
            refs1
  | _ -> () (* sigma failures / inexact sets already reported per statement *));
  List.rev !local

let check_dependence_order ?ctx ~params add (pairings : pairing list) =
  let pairs = List.concat_map (fun p1 -> List.map (fun p2 -> (p1, p2)) pairings) pairings in
  List.iter (List.iter add) (Pool.map (check_pair_order ?ctx ~params) pairs)

let check ?ctx ~(source : Ast.program) (gen : Ast.program) : Diag.t list =
  let params = List.sort_uniq compare (source.Ast.params @ gen.Ast.params) in
  let src_occs = Exec.extract source in
  let gen_occs = Exec.extract gen in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let find_gen l = List.find_opt (fun (o : Exec.occurrence) -> o.Exec.stmt.Ast.label = l) gen_occs in
  List.iter
    (fun (o : Exec.occurrence) ->
      if find_gen o.Exec.stmt.Ast.label = None then
        (* a statement that provably never executes (empty bounds for
           every parameter value) may legitimately vanish: dropping it
           preserves the (empty) instance set *)
        if List.exists (fun (c : Exec.ctxt) -> satisfiable ?ctx c.Exec.sys) o.Exec.ctxts then
          add
            (vdiag Diag.Error "V106" "statement %s is missing from the transformed program"
               o.Exec.stmt.Ast.label)
        else
          add
            (vdiag Diag.Warning "V107"
               "statement %s has a provably empty execution set and was dropped"
               o.Exec.stmt.Ast.label))
    src_occs;
  List.iter
    (fun (o : Exec.occurrence) ->
      if
        not
          (List.exists
             (fun (s : Exec.occurrence) -> s.Exec.stmt.Ast.label = o.Exec.stmt.Ast.label)
             src_occs)
      then
        add
          (vdiag Diag.Error "V106" "statement %s does not occur in the source program"
             o.Exec.stmt.Ast.label))
    gen_occs;
  let pairings =
    List.filter_map
      (fun (src : Exec.occurrence) ->
        match find_gen src.Exec.stmt.Ast.label with
        | None -> None
        | Some gen ->
            let exact =
              List.for_all (fun (c : Exec.ctxt) -> c.Exec.exact) src.Exec.ctxts
              && List.for_all (fun (c : Exec.ctxt) -> c.Exec.exact) gen.Exec.ctxts
            in
            Some { src; gen; sigma = infer_sigma ~src ~gen; exact })
      src_occs
  in
  List.iter
    (fun p ->
      if not p.exact then
        add
          (vdiag Diag.Warning "V900"
             "statement %s: execution set only representable approximately; checks degraded"
             p.src.Exec.stmt.Ast.label))
    pairings;
  (* per-pairing set checks are independent: collect each task's
     findings locally, merge in pairing order *)
  List.iter (List.iter add)
    (Pool.map
       (fun p ->
         let local = ref [] in
         check_sets ?ctx ~params (fun d -> local := d :: !local) p;
         List.rev !local)
       pairings);
  check_dependence_order ?ctx ~params add pairings;
  List.rev !diags
