module Mpz = Inl_num.Mpz
module Vmap = Map.Make (String)

type t = { coeffs : Mpz.t Vmap.t; const : Mpz.t }

let zero = { coeffs = Vmap.empty; const = Mpz.zero }
let const c = { coeffs = Vmap.empty; const = c }
let of_int n = const (Mpz.of_int n)

let put x a m = if Mpz.is_zero a then Vmap.remove x m else Vmap.add x a m

let term a x = { coeffs = put x a Vmap.empty; const = Mpz.zero }
let term_int a x = term (Mpz.of_int a) x
let var x = term Mpz.one x

let coeff e x = match Vmap.find_opt x e.coeffs with Some a -> a | None -> Mpz.zero
let constant e = e.const

let add a b =
  {
    coeffs =
      Vmap.union (fun _ x y -> let s = Mpz.add x y in if Mpz.is_zero s then None else Some s) a.coeffs b.coeffs;
    const = Mpz.add a.const b.const;
  }

let neg e = { coeffs = Vmap.map Mpz.neg e.coeffs; const = Mpz.neg e.const }
let sub a b = add a (neg b)

let scale k e =
  if Mpz.is_zero k then zero
  else { coeffs = Vmap.map (Mpz.mul k) e.coeffs; const = Mpz.mul k e.const }

let scale_int k e = scale (Mpz.of_int k) e
let add_const e c = { e with const = Mpz.add e.const c }

let of_terms terms c =
  List.fold_left (fun acc (a, x) -> add acc (term_int a x)) (of_int c) terms

let vars e = List.map fst (Vmap.bindings e.coeffs)
let mem e x = Vmap.mem x e.coeffs
let is_constant e = Vmap.is_empty e.coeffs

let equal a b = Vmap.equal Mpz.equal a.coeffs b.coeffs && Mpz.equal a.const b.const

let subst e x e' =
  let a = coeff e x in
  if Mpz.is_zero a then e
  else add { e with coeffs = Vmap.remove x e.coeffs } (scale a e')

let rename f e =
  Vmap.fold (fun x a acc -> add acc (term a (f x))) e.coeffs (const e.const)

let eval e env =
  Vmap.fold (fun x a acc -> Mpz.add acc (Mpz.mul a (env x))) e.coeffs e.const

let content e = Vmap.fold (fun _ a acc -> Mpz.gcd acc a) e.coeffs Mpz.zero

let map_coeffs f e = { coeffs = Vmap.map f e.coeffs; const = f e.const }

let fold f e acc = Vmap.fold f e.coeffs acc

let compare a b =
  let c = Vmap.compare Mpz.compare a.coeffs b.coeffs in
  if c <> 0 then c else Mpz.compare a.const b.const

(* Structural hash, consistent with [equal]: the Vmap stores coefficients
   in a canonical (sorted, zero-free) form, so folding in binding order is
   deterministic per value. *)
let hash e =
  Vmap.fold
    (fun x a acc -> (acc * 31) + (Hashtbl.hash x lxor Mpz.hash a))
    e.coeffs (Mpz.hash e.const)

let pp fmt e =
  let first = ref true in
  let psign fmt a =
    if !first then begin
      first := false;
      if Mpz.is_negative a then Format.fprintf fmt "-"
    end
    else if Mpz.is_negative a then Format.fprintf fmt " - "
    else Format.fprintf fmt " + "
  in
  Vmap.iter
    (fun x a ->
      psign fmt a;
      let m = Mpz.abs a in
      if Mpz.is_one m then Format.fprintf fmt "%s" x
      else Format.fprintf fmt "%a*%s" Mpz.pp m x)
    e.coeffs;
  if not (Mpz.is_zero e.const) || !first then begin
    psign fmt e.const;
    Format.fprintf fmt "%a" Mpz.pp (Mpz.abs e.const)
  end
