module Mpz = Inl_num.Mpz

type t = Ge of Linexpr.t | Eq of Linexpr.t

let ge e = Ge e
let le e = Ge (Linexpr.neg e)
let eq e = Eq e
let ge2 a b = Ge (Linexpr.sub a b)
let le2 a b = Ge (Linexpr.sub b a)
let eq2 a b = Eq (Linexpr.sub a b)
let gt2 a b = Ge (Linexpr.add_const (Linexpr.sub a b) Mpz.minus_one)
let lt2 a b = gt2 b a

let expr = function Ge e | Eq e -> e
let is_eq = function Eq _ -> true | Ge _ -> false
let vars c = Linexpr.vars (expr c)
let mem c x = Linexpr.mem (expr c) x

let map f = function Ge e -> Ge (f e) | Eq e -> Eq (f e)
let subst c x e' = map (fun e -> Linexpr.subst e x e') c
let rename f c = map (Linexpr.rename f) c

let holds c env =
  let v = Linexpr.eval (expr c) env in
  match c with Ge _ -> Mpz.sign v >= 0 | Eq _ -> Mpz.is_zero v

let normalize c =
  let e = expr c in
  if Linexpr.is_constant e then begin
    match c with
    | Ge _ -> if Mpz.sign (Linexpr.constant e) >= 0 then `True else `False
    | Eq _ -> if Mpz.is_zero (Linexpr.constant e) then `True else `False
  end
  else begin
    let g = Linexpr.content e in
    if Mpz.is_one g then `Constr c
    else
      match c with
      | Ge _ ->
          (* a_i/g stay integral; the constant floors: sum (a_i/g) x_i +
             floor(c/g) >= 0 is equivalent over the integers *)
          `Constr (Ge (Linexpr.map_coeffs (fun x -> Mpz.fdiv x g) e))
      | Eq _ ->
          if Mpz.is_zero (Mpz.fmod (Linexpr.constant e) g) then
            `Constr (Eq (Linexpr.map_coeffs (fun x -> Mpz.fdiv x g) e))
          else `False
  end

let equal a b =
  match (a, b) with
  | Ge x, Ge y | Eq x, Eq y -> Linexpr.equal x y
  | _ -> false

let compare a b =
  match (a, b) with
  | Ge _, Eq _ -> -1
  | Eq _, Ge _ -> 1
  | Ge x, Ge y | Eq x, Eq y -> Linexpr.compare x y

let hash = function
  | Ge e -> 2 * Linexpr.hash e
  | Eq e -> (2 * Linexpr.hash e) + 1

let pp fmt = function
  | Ge e -> Format.fprintf fmt "%a >= 0" Linexpr.pp e
  | Eq e -> Format.fprintf fmt "%a = 0" Linexpr.pp e
