module Mpz = Inl_num.Mpz
module Sset = Set.Make (String)

type t = Constr.t list

let empty = []
let of_list l = l
let add c sys = c :: sys
let append = ( @ )

let vars sys =
  List.fold_left (fun acc c -> Sset.union acc (Sset.of_list (Constr.vars c))) Sset.empty sys
  |> Sset.elements

let mem_var sys v = List.exists (fun c -> Constr.mem c v) sys
let subst sys x e = List.map (fun c -> Constr.subst c x e) sys
let rename f sys = List.map (Constr.rename f) sys

let normalize sys =
  let rec go acc = function
    | [] -> Some (List.sort_uniq Constr.compare acc)
    | c :: rest -> (
        match Constr.normalize c with
        | `True -> go acc rest
        | `False -> None
        | `Constr c -> go (c :: acc) rest)
  in
  go [] sys

(* Canonical form: GCD-tightened, constant-folded, sorted, deduplicated.
   [Constr.compare] is a total order and Linexpr maps are themselves
   canonical, so two systems with the same canonical form describe the
   same constraint set syntactically. *)
let canonicalize sys = normalize sys

let equal a b = List.equal Constr.equal a b

let hash sys = List.fold_left (fun acc c -> (acc * 31) + Constr.hash c) 17 sys

let holds sys env = List.for_all (fun c -> Constr.holds c env) sys

let split_on sys v =
  List.fold_right
    (fun c (eqs, ges, rest) ->
      if not (Constr.mem c v) then (eqs, ges, c :: rest)
      else if Constr.is_eq c then (c :: eqs, ges, rest)
      else (eqs, c :: ges, rest))
    sys ([], [], [])

let solutions_in_box sys box =
  let box_vars = List.map (fun (v, _, _) -> v) box in
  List.iter
    (fun v ->
      if not (List.mem v box_vars) then
        invalid_arg (Printf.sprintf "System.solutions_in_box: %s not in box" v))
    (vars sys);
  let out = ref [] in
  let rec go assignment = function
    | [] ->
        let env x = Mpz.of_int (List.assoc x assignment) in
        if holds sys env then out := List.rev_map (fun v -> List.assoc v assignment) (List.rev box_vars) :: !out
    | (v, lo, hi) :: rest ->
        for x = lo to hi do
          go ((v, x) :: assignment) rest
        done
  in
  go [] box;
  List.rev !out

let pp fmt sys =
  Format.fprintf fmt "{@[<v>%a@]}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") Constr.pp)
    sys
