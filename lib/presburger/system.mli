(** Conjunctions of affine constraints over integer variables — the
    dependence systems of Section 3 (Equations 2-3) and the iteration-space
    polyhedra scanned during code generation (Section 5.5). *)

module Mpz = Inl_num.Mpz

type t = Constr.t list

val empty : t
val of_list : Constr.t list -> t
val add : Constr.t -> t -> t
val append : t -> t -> t
val vars : t -> string list
(** Sorted, without duplicates. *)

val mem_var : t -> string -> bool
val subst : t -> string -> Linexpr.t -> t
val rename : (string -> string) -> t -> t

val normalize : t -> t option
(** Gcd-tightens every constraint, drops tautologies, deduplicates;
    [None] when some constraint is unsatisfiable on its face. *)

val canonicalize : t -> t option
(** Canonical form used as a memoization key: gcd-tightened,
    constant-folded, deduplicated, sorted by {!Constr.compare} (an alias
    of {!normalize}, named for intent).  Two satisfiability-relevant
    identical systems canonicalize to structurally equal values, so
    {!equal}/{!hash} on the result are sound cache keys.  [None] when
    some constraint is unsatisfiable on its face. *)

val equal : t -> t -> bool
(** Structural equality (constraint-list equality; compare canonical
    forms for semantic keying). *)

val hash : t -> int
(** Structural hash, consistent with {!equal}. *)

val holds : t -> (string -> Mpz.t) -> bool

val split_on : t -> string -> Constr.t list * Constr.t list * t
(** [split_on sys v] is [(eqs, ges, rest)]: equalities mentioning [v],
    inequalities mentioning [v], and constraints not mentioning [v]. *)

val solutions_in_box : t -> (string * int * int) list -> int list list
(** Brute-force enumeration of all integer solutions when every variable
    of the system appears in the box; the order of each solution tuple
    follows the box.  Test oracle only — exponential.
    @raise Invalid_argument if a system variable is missing from the box. *)

val pp : Format.formatter -> t -> unit
