(** Linear expressions over named integer variables with exact
    coefficients: [sum_i a_i * x_i + c].

    These are the atoms of the dependence-analysis constraint systems of
    Section 3 and of the loop-bound polyhedra of Section 5.5. *)

module Mpz = Inl_num.Mpz
module Vmap : Map.S with type key = string

type t = { coeffs : Mpz.t Vmap.t; const : Mpz.t }
(** Canonical: no zero coefficients are stored. *)

val zero : t
val const : Mpz.t -> t
val of_int : int -> t
val var : string -> t
val term : Mpz.t -> string -> t
val term_int : int -> string -> t

val of_terms : (int * string) list -> int -> t
(** [of_terms [(a1,x1);...] c] is [a1*x1 + ... + c].  Repeated variables
    accumulate. *)

val coeff : t -> string -> Mpz.t
val constant : t -> Mpz.t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Mpz.t -> t -> t
val scale_int : int -> t -> t
val add_const : t -> Mpz.t -> t

val vars : t -> string list
(** Variables with non-zero coefficient, sorted. *)

val mem : t -> string -> bool
val is_constant : t -> bool
val equal : t -> t -> bool

val subst : t -> string -> t -> t
(** [subst e x e'] replaces [x] by [e'] in [e]. *)

val rename : (string -> string) -> t -> t

val eval : t -> (string -> Mpz.t) -> Mpz.t

val content : t -> Mpz.t
(** Gcd of the coefficients (not the constant); zero if all coefficients
    are zero. *)

val map_coeffs : (Mpz.t -> Mpz.t) -> t -> t
(** Applies to coefficients and the constant alike. *)

val fold : (string -> Mpz.t -> 'a -> 'a) -> t -> 'a -> 'a
val compare : t -> t -> int

val hash : t -> int
(** Structural hash, consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
