(** Memoization of Omega projection queries.

    Keys are the {e canonical} constraint system ({!System.canonicalize}:
    gcd-tightened, constant-folded, sorted, deduplicated), the sorted list
    of answer variables actually kept, and the full resource budget.
    Including the budget makes a cached value bit-identical to what the
    engine would recompute: a query that would [Blowup] under a smaller
    budget can never hit an entry computed under a larger one.  Failed
    (raising) projections are never stored.

    The structure is safe for concurrent use from multiple domains — one
    mutex around a two-generation hash table (inserts fill a young
    generation; filling it retires the old one, so an entry unused for two
    generations is evicted in O(1)) — and keeps hit/miss/eviction counters
    for [inltool --stats]. *)

module Budget = Inl_diag.Budget

type t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : ?max_entries:int -> unit -> t
(** [max_entries] (default 4096, clamped to >= 1) is the size of each
    generation; resident entries are bounded by twice that. *)

val find :
  t -> sys:System.t -> kept:string list -> budget:Budget.t -> System.t list option
(** [sys] must be canonical and [kept] sorted for hits to occur. *)

val add :
  t -> sys:System.t -> kept:string list -> budget:Budget.t -> System.t list -> unit

val clear : t -> unit
(** Drops all entries and zeroes the counters. *)

val stats : t -> stats

val hit_rate : stats -> float
(** Hits over lookups; [0.0] when no lookups happened. *)

val export : t -> string
(** Serialize every resident entry (both generations) to an opaque
    binary dump — pure data end to end, so the marshalled form
    round-trips exactly.  Counters are not included: a restored cache
    starts cold statistically but warm in content. *)

val import : t -> string -> (int, string) result
(** Re-add the entries of an {!export} dump, returning how many were
    restored.  Never trusts the payload: a truncated, corrupted or
    incompatible dump returns [Error] and leaves the cache unchanged
    (callers wrap dumps in a checksummed container — {!Inl_serve}'s
    snapshot format — so this is the second line of defense). *)
