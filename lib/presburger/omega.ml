module Mpz = Inl_num.Mpz
module Budget = Inl_diag.Budget
module Faults = Inl_diag.Faults
module Watchdog = Inl_diag.Watchdog

exception Blowup of string

(* The budget used when a caller does not thread one explicitly; the CLI
   overrides it from --budget / INL_FM_BUDGET. *)
let default_budget = Atomic.make Budget.default
let set_default_budget b = Atomic.set default_budget b
let get_default_budget () = Atomic.get default_budget

(* Per-analysis solver state.  The projection counter lives here — not in
   a process global — so one analysis cannot leak budget consumption into
   the next, and concurrent analyses (or worker domains sharing one
   analysis) meter themselves correctly. *)
type ctx = {
  budget : Budget.t;
  projections : int Atomic.t;
      (* bounded by [Budget.max_projections] so a pathological analysis
         cannot spin through an unbounded number of cheap projections *)
  cache : Cache.t option;
}

(* One shared query cache: canonical keys make entries valid across
   analyses, so sharing maximizes reuse (completion re-checks the same
   dependence systems for every candidate matrix). *)
let shared_cache = Cache.create ()
let cache_enabled_flag = Atomic.make true
let set_cache_enabled b = Atomic.set cache_enabled_flag b
let cache_enabled () = Atomic.get cache_enabled_flag
let cache_stats () = Cache.stats shared_cache
let clear_cache () = Cache.clear shared_cache
let cache_snapshot () = Cache.export shared_cache
let cache_restore payload = Cache.import shared_cache payload

(* Cumulative entry-point counters for observability (--stats); distinct
   from the per-ctx budget counter. *)
let sat_calls = Atomic.make 0
let project_calls = Atomic.make 0

let solver_calls () = (Atomic.get sat_calls, Atomic.get project_calls)

let reset_solver_calls () =
  Atomic.set sat_calls 0;
  Atomic.set project_calls 0

let new_analysis ?budget ?(use_cache = true) () =
  Faults.reset_counters ();
  {
    budget = (match budget with Some b -> b | None -> get_default_budget ());
    projections = Atomic.make 0;
    cache = (if use_cache && cache_enabled () then Some shared_cache else None);
  }

let wildcard_prefix = "$w"

(* Process-global fresh-name counter (projections never consume from it:
   they scope their own).  Atomic so worker domains can mint names; the
   names feed only into systems solved within the same task, so schedules
   cannot change results. *)
let fresh_counter = Atomic.make 0

let fresh_var () =
  let i = 1 + Atomic.fetch_and_add fresh_counter 1 in
  Printf.sprintf "%s%d" wildcard_prefix i

let reset_fresh_names () = Atomic.set fresh_counter 0

let is_wildcard v =
  String.length v >= 2 && String.equal (String.sub v 0 2) wildcard_prefix

let wildcard_index v =
  if is_wildcard v then int_of_string_opt (String.sub v 2 (String.length v - 2)) else None

(* Symmetric modulo: mod_hat a m = a - m * floor(a/m + 1/2), in (-m/2, m/2].
   Computed as a - m * fdiv (2a + m) (2m). *)
let mod_hat a m =
  let two_m = Mpz.mul Mpz.two m in
  Mpz.sub a (Mpz.mul m (Mpz.fdiv (Mpz.add (Mpz.mul Mpz.two a) m) two_m))

(* Solve an equality [e = 0] for variable [v] whose coefficient in [e] is
   +-1; returns the expression [v] equals. *)
let solve_unit_eq e v =
  let a = Linexpr.coeff e v in
  assert (Mpz.is_one (Mpz.abs a));
  let rest = Linexpr.sub e (Linexpr.term a v) in
  if Mpz.is_one a then Linexpr.neg rest else rest

(* ---- equality elimination (Pugh, CACM '92, section 2.3.1) ----

   A victim in an equality is "progressable" when eliminating it is
   guaranteed to terminate:
   - unit coefficient: direct substitution removes it;
   - non-wildcard victim: one mod-hat step removes it (the derived
     equality gives it a unit coefficient), at the price of one fresh
     wildcard;
   - wildcard whose |coefficient| is the global minimum over the
     equality: the mod-hat step plus content normalization shrinks the
     equality's largest coefficient by >= 6/5 (Pugh's measure), so a unit
     eventually appears.

   A wildcard with a large coefficient in an equality whose smallest
   coefficient belongs to a kept variable is NOT progressable: it encodes
   a genuine divisibility (mod) constraint on the kept variables, which
   conjunctions of affine constraints cannot express.  Such equalities
   stay in the output with the wildcard read existentially — exactly the
   Omega library's convention. *)

let progressable_victim e victim : string option =
  let vars = Linexpr.vars e in
  let victims = List.filter victim vars in
  let abs_coeff v = Mpz.abs (Linexpr.coeff e v) in
  let smallest vs =
    match vs with
    | [] -> None
    | v0 :: rest ->
        Some
          (List.fold_left
             (fun best v -> if Mpz.compare (abs_coeff v) (abs_coeff best) < 0 then v else best)
             v0 rest)
  in
  match smallest (List.filter (fun v -> Mpz.is_one (abs_coeff v)) victims) with
  | Some v -> Some v
  | None -> (
      match smallest (List.filter (fun v -> not (is_wildcard v)) victims) with
      | Some v -> Some v
      | None -> (
          match smallest victims with
          | None -> None
          | Some v ->
              let global_min =
                List.fold_left (fun acc x -> Mpz.min acc (abs_coeff x)) (abs_coeff v) vars
              in
              if Mpz.equal (abs_coeff v) global_min then Some v else None))

(* Eliminate progressable victims from the equality [e = 0] (a member of
   [sys]), staying on this one equality until it is consumed or stuck.
   (Interleaving steps of different equalities would break Pugh's
   termination measure: each substitution grows the other equalities.)
   [fresh] supplies wildcard names scoped to the enclosing projection.
   Returns [None] when the equality is infeasible over the integers. *)
let rec process_equality ~fresh sys (e : Linexpr.t) victim : System.t option =
  match Constr.normalize (Constr.eq e) with
  | `False -> None
  | `True -> Some sys
  | `Constr c -> (
      let e = Constr.expr c in
      match progressable_victim e victim with
      | None -> Some sys (* stuck: the equality stays, wildcard read existentially *)
      | Some x ->
          let a = Linexpr.coeff e x in
          if Mpz.is_one (Mpz.abs a) then
            (* substituting into the defining equality itself leaves 0 = 0,
               which normalization drops *)
            Some (System.subst sys x (solve_unit_eq e x))
          else begin
            let m = Mpz.succ (Mpz.abs a) in
            let sigma = fresh () in
            (* implied equality: sum (a_i mod^ m) x_i + (c mod^ m) - m sigma
               = 0; x's coefficient in it is mod^(a, m) = -sign(a), a unit *)
            let reduced =
              Linexpr.fold
                (fun y ay acc -> Linexpr.add acc (Linexpr.term (mod_hat ay m) y))
                e
                (Linexpr.const (mod_hat (Linexpr.constant e) m))
            in
            let e' = Linexpr.sub reduced (Linexpr.term m sigma) in
            let def = solve_unit_eq e' x in
            process_equality ~fresh (System.subst sys x def) (Linexpr.subst e x def) victim
          end)

(* ---- inequality elimination ---- *)

(* Partition the inequalities on [v] into lower bounds (a, r) meaning
   [a*v + r >= 0] with a > 0, and upper bounds (b, s) meaning
   [b*v <= s] with b > 0. *)
let bounds_on ges v =
  let lowers = ref [] and uppers = ref [] in
  List.iter
    (fun c ->
      let e = Constr.expr c in
      let a = Linexpr.coeff e v in
      let r = Linexpr.sub e (Linexpr.term a v) in
      if Mpz.is_positive a then lowers := (a, r) :: !lowers
      else uppers := (Mpz.neg a, r) :: !uppers)
    ges;
  (List.rev !lowers, List.rev !uppers)

(* Fourier-Motzkin step on a variable that occurs in no equality: returns
   the list of replacement systems.  Exact when every bound pair has a
   unit coefficient; otherwise dark shadow plus splinters (the splinters
   still contain [v], pinned by an equality — the drain loop finishes them
   via the equality path). *)
let inequality_step sys v =
  let eqs, ges, rest = System.split_on sys v in
  assert (eqs = []);
  let lowers, uppers = bounds_on ges v in
  match (lowers, uppers) with
  | [], _ | _, [] ->
      (* v unbounded on one side: the projection drops all its constraints *)
      [ rest ]
  | _ ->
      let exact =
        List.for_all
          (fun (a, _) -> Mpz.is_one a || List.for_all (fun (b, _) -> Mpz.is_one b) uppers)
          lowers
      in
      let shadow dark =
        List.concat_map
          (fun (a, r) ->
            List.map
              (fun (b, s) ->
                (* a*v >= -r and b*v <= s  imply  a*s + b*r >= slack *)
                let lhs = Linexpr.add (Linexpr.scale a s) (Linexpr.scale b r) in
                let slack = if dark then Mpz.mul (Mpz.pred a) (Mpz.pred b) else Mpz.zero in
                Constr.ge (Linexpr.add_const lhs (Mpz.neg slack)))
              uppers)
          lowers
        @ rest
      in
      if exact then [ shadow false ]
      else begin
        let bmax = List.fold_left (fun acc (b, _) -> Mpz.max acc b) Mpz.one uppers in
        let splinters =
          List.concat_map
            (fun (a, r) ->
              if Mpz.is_one a then []
              else begin
                (* any integer solution missed by the dark shadow glues to a
                   lower bound: a*v + r = k for k in 0 .. (a*bmax-a-bmax)/bmax *)
                let top = Mpz.fdiv (Mpz.sub (Mpz.mul a bmax) (Mpz.add a bmax)) bmax in
                let rec ks k acc =
                  if Mpz.compare k top > 0 then List.rev acc else ks (Mpz.succ k) (k :: acc)
                in
                List.map
                  (fun k ->
                    System.add
                      (Constr.eq (Linexpr.add_const (Linexpr.add (Linexpr.term a v) r) (Mpz.neg k)))
                      sys)
                  (ks Mpz.zero [])
              end)
            lowers
        in
        shadow true :: splinters
      end

(* Victims eliminable by FM: those that occur in no equality of the
   system.  Preference: exact pairs first, then fewest pair products. *)
let pick_fm_variable sys victim =
  let candidates =
    List.filter (fun v -> victim v && not (List.exists (fun c -> Constr.is_eq c && Constr.mem c v) sys))
      (System.vars sys)
  in
  match candidates with
  | [] -> None
  | _ ->
      let cost v =
        let _, ges, _ = System.split_on sys v in
        let lowers, uppers = bounds_on ges v in
        let exact =
          List.for_all
            (fun (a, _) -> Mpz.is_one a || List.for_all (fun (b, _) -> Mpz.is_one b) uppers)
            lowers
        in
        let pairs = List.length lowers * List.length uppers in
        (if exact then 0 else 1000) + pairs
      in
      let best =
        List.fold_left
          (fun acc v ->
            let c = cost v in
            match acc with Some (_, c') when c' <= c -> acc | _ -> Some (v, c))
          None candidates
      in
      Option.map fst best

let max_coeff_bits sys =
  List.fold_left
    (fun acc c ->
      let e = Constr.expr c in
      Linexpr.fold
        (fun _ a acc -> max acc (Mpz.num_bits a))
        e
        (max acc (Mpz.num_bits (Linexpr.constant e))))
    0 sys

(* The projection engine proper, on an already-canonicalized system. *)
let project_run ~budget sys ~keep =
  let work_limit = Faults.effective_work budget.Budget.fm_work in
  (* Wildcard names are scoped to this projection, starting above any
     wildcard already present in the input: repeated projections of equal
     systems produce identical output, independent of process history. *)
  let next =
    List.fold_left
      (fun acc v -> match wildcard_index v with Some i -> max acc i | None -> acc)
      0 (System.vars sys)
    |> ref
  in
  let fresh () =
    incr next;
    Printf.sprintf "%s%d" wildcard_prefix !next
  in
  (* wildcards introduced by mod-hat steps are never answer variables *)
  let victim v = (not (keep v)) || is_wildcard v in
  (* Work is charged per constraint examined, not per disjunct: the cost
     of handling a work item is proportional to its size, and a
     constraint-level measure lets small budgets bite on small systems
     (useful for testing the degraded path). *)
  let rec drain pending done_ count =
    (* the wall-clock watchdog (if one is installed) is polled exactly
       where the work budget is metered: every place the engine can spend
       unbounded time also passes through here *)
    Watchdog.poll ();
    if count > work_limit then
      raise (Blowup (Printf.sprintf "work budget exhausted (%d items)" work_limit));
    match pending with
    | [] -> List.rev done_
    | sys :: rest -> (
        let count = count + max 1 (List.length sys) in
        match System.normalize sys with
        | None -> drain rest done_ count
        | Some sys -> (
            if max_coeff_bits sys > budget.Budget.max_coeff_bits then
              raise
                (Blowup
                   (Printf.sprintf "coefficient growth exceeded %d bits"
                      budget.Budget.max_coeff_bits));
            (* equality path first: any equality with a progressable victim *)
            let workable =
              List.find_map
                (fun c ->
                  if Constr.is_eq c then
                    match progressable_victim (Constr.expr c) victim with
                    | Some _ -> Some c
                    | None -> None
                  else None)
                sys
            in
            match workable with
            | Some c -> (
                match process_equality ~fresh sys (Constr.expr c) victim with
                | None -> drain rest done_ count
                | Some sys' -> drain (sys' :: rest) done_ count)
            | None -> (
                match pick_fm_variable sys victim with
                | None -> drain rest (sys :: done_) count
                | Some v -> drain (inequality_step sys v @ rest) done_ count)))
  in
  drain [ sys ] [] 0

(* Resolve the effective solver state for an entry point: an explicit
   [?ctx] (its budget overridable by [?budget]), else an ephemeral context
   on the default budget and the shared cache. *)
let resolve ?ctx ?budget () =
  match (ctx, budget) with
  | Some c, None -> c
  | Some c, Some b -> { c with budget = b }
  | None, _ -> new_analysis ?budget ()

let project ?ctx ?budget sys ~keep =
  let ctx = resolve ?ctx ?budget () in
  Atomic.incr project_calls;
  let n = 1 + Atomic.fetch_and_add ctx.projections 1 in
  if n > ctx.budget.Budget.max_projections then
    raise
      (Blowup
         (Printf.sprintf "projection count exceeded the analysis budget (%d)"
            ctx.budget.Budget.max_projections));
  (match Faults.project_fault () with
  | `None -> ()
  | `Fail -> raise (Blowup "injected fault: forced projection failure")
  | `Hang ->
      (* a simulated lost-progress solver: spins until the watchdog
         (when installed) raises Timeout *)
      Watchdog.hang ());
  (* Both the cached and uncached paths run on the canonical system, so a
     cache hit is bit-identical to a recomputation and cache-on/cache-off
     runs cannot diverge.  (The engine normalizes every work item anyway;
     canonicalization only pre-folds the first.) *)
  match System.canonicalize sys with
  | None -> []
  | Some csys -> (
      match ctx.cache with
      | Some cache when not (Faults.active ()) -> (
          (* fault injection bypasses the cache entirely: injected
             failures must fire on their exact schedule, and partial runs
             under caps must not be masked by earlier successes *)
          let kept =
            List.filter (fun v -> keep v && not (is_wildcard v)) (System.vars csys)
          in
          match Cache.find cache ~sys:csys ~kept ~budget:ctx.budget with
          | Some r -> r
          | None ->
              let r = project_run ~budget:ctx.budget csys ~keep in
              Cache.add cache ~sys:csys ~kept ~budget:ctx.budget r;
              r)
      | _ -> project_run ~budget:ctx.budget csys ~keep)

let satisfiable ?ctx ?budget sys =
  (* with nothing kept, every variable is a victim and equality
     elimination always progresses (the global minimum is a victim), so
     stuck wildcards cannot survive; any surviving disjunct is a
     normalized constant-free system, i.e. satisfiable *)
  Atomic.incr sat_calls;
  match project ?ctx ?budget sys ~keep:(fun _ -> false) with [] -> false | _ :: _ -> true

(* ---- implied intervals ---- *)

(* Interval of [v] in a single disjunct over {v} + wildcards.  Constraints
   free of wildcards contribute exact bounds; constraints touching a
   wildcard are dropped (a sound relaxation).  The bool is true when the
   interval is exact (no constraint was dropped). *)
let interval_1d sys v : Interval.t * bool =
  match System.normalize sys with
  | None -> (Interval.(make PosInf NegInf), true)
  | Some sys ->
      List.fold_left
        (fun (acc, exact) c ->
          let e = Constr.expr c in
          let a = Linexpr.coeff e v in
          let cst = Linexpr.constant e in
          let others = List.filter (fun x -> not (String.equal x v)) (Linexpr.vars e) in
          if others <> [] then (acc, false)
          else if Mpz.is_zero a then (acc, exact)
          else
            match c with
            | Constr.Ge _ ->
                if Mpz.is_positive a then
                  (* a v + c >= 0: v >= ceil(-c / a) *)
                  (Interval.inter acc (Interval.make (Fin (Mpz.cdiv (Mpz.neg cst) a)) PosInf), exact)
                else
                  (Interval.inter acc (Interval.make NegInf (Fin (Mpz.fdiv (Mpz.neg cst) a))), exact)
            | Constr.Eq _ ->
                if Mpz.is_zero (Mpz.fmod (Mpz.neg cst) a) then
                  (Interval.inter acc (Interval.point (Mpz.fdiv (Mpz.neg cst) a)), exact)
                else (Interval.(make PosInf NegInf), exact))
        (Interval.top, true) sys

(* Galloping threshold: a bound beyond 2^42 in magnitude is reported as
   infinite.  Sound for this code base: dependence systems have unit-to-
   small coefficients and constants, whose extreme finite bounds are tiny;
   anything astronomically large is a symbolic (parameter-driven)
   unbounded direction. *)
let gallop_bits = 42

let sat_with ?ctx ?budget sys cs = satisfiable ?ctx ?budget (System.append cs sys)

let var_ge v c = Constr.ge2 (Linexpr.var v) (Linexpr.const c)
let var_le v c = Constr.le2 (Linexpr.var v) (Linexpr.const c)

(* Largest integer c such that [pred c] holds, searching within [lo, hi]
   given pred lo = true; pred is antitone. *)
let rec bsearch_max pred lo hi =
  if Mpz.compare lo hi >= 0 then lo
  else begin
    let mid = Mpz.cdiv (Mpz.add lo hi) Mpz.two in
    if pred mid then bsearch_max pred mid hi else bsearch_max pred lo (Mpz.pred mid)
  end

let implied_interval ?ctx ?budget sys v =
  let disjuncts = project ?ctx ?budget sys ~keep:(fun x -> String.equal x v) in
  let hull, all_exact =
    List.fold_left
      (fun (acc, exact) d ->
        let i, e = interval_1d d v in
        (Interval.hull acc i, exact && e))
      (Interval.(make PosInf NegInf), true)
      disjuncts
  in
  if all_exact || Interval.is_empty hull then hull
  else if not (satisfiable ?ctx ?budget sys) then Interval.(make PosInf NegInf)
  else begin
    (* tighten the relaxed hull by probing the original system *)
    let big = Mpz.pow Mpz.two gallop_bits in
    let neg_big = Mpz.neg big in
    let hi =
      match hull.Interval.hi with
      | Interval.NegInf -> Interval.NegInf
      | Interval.PosInf ->
          if sat_with ?ctx ?budget sys [ var_ge v big ] then Interval.PosInf
          else
            Interval.Fin (bsearch_max (fun c -> sat_with ?ctx ?budget sys [ var_ge v c ]) neg_big big)
      | Interval.Fin h ->
          (* h is a sound upper bound; the true max is the largest c <= h
             with sat(v >= c) *)
          Interval.Fin (bsearch_max (fun c -> sat_with ?ctx ?budget sys [ var_ge v c ]) neg_big h)
    in
    let lo =
      match hull.Interval.lo with
      | Interval.PosInf -> Interval.PosInf
      | Interval.NegInf ->
          if sat_with ?ctx ?budget sys [ var_le v neg_big ] then Interval.NegInf
          else
            Interval.Fin
              (Mpz.neg
                 (bsearch_max (fun c -> sat_with ?ctx ?budget sys [ var_le v (Mpz.neg c) ]) neg_big big))
      | Interval.Fin l ->
          Interval.Fin
            (Mpz.neg
               (bsearch_max
                  (fun c -> sat_with ?ctx ?budget sys [ var_le v (Mpz.neg c) ])
                  neg_big (Mpz.neg l)))
    in
    Interval.make lo hi
  end

let implies ?ctx ?budget sys c =
  (* sys => c  iff  sys /\ not c  is unsatisfiable.  For Ge e, not c is
     e <= -1; for Eq e it is e >= 1 \/ e <= -1. *)
  let e = Constr.expr c in
  match c with
  | Constr.Ge _ ->
      not
        (satisfiable ?ctx ?budget
           (System.add (Constr.ge (Linexpr.add_const (Linexpr.neg e) Mpz.minus_one)) sys))
  | Constr.Eq _ ->
      (not
         (satisfiable ?ctx ?budget (System.add (Constr.ge (Linexpr.add_const e Mpz.minus_one)) sys)))
      && not
           (satisfiable ?ctx ?budget
              (System.add (Constr.ge (Linexpr.add_const (Linexpr.neg e) Mpz.minus_one)) sys))
