(** Exact elimination of integer variables from affine constraint systems —
    the role played by the Omega tool-kit (Pugh [11]) in the paper's
    dependence analysis (Section 3).

    The engine is integer-exact Fourier-Motzkin: equalities are removed by
    substitution (using Pugh's symmetric-modulo trick when no unit
    coefficient is available), and inequality elimination distinguishes
    the real shadow from the dark shadow, enumerating splinters when they
    differ.  Because existential integer quantification does not preserve
    conjunctive form, projections return a {e disjunction} of systems.

    {2 Resource bounds}

    Exact elimination is worst-case super-exponential, so every entry
    point runs under an {!Inl_diag.Budget.t} — work items per projection,
    a coefficient bit-size cap, and a per-analysis projection count.
    Exhaustion (or an injected {!Inl_diag.Faults} failure) raises
    {!Blowup}; the dependence analyzer catches it and degrades to
    conservative approximate dependences instead of crashing. *)

module Budget = Inl_diag.Budget

exception Blowup of string
(** Raised when a projection exceeds its resource budget (the message
    names the exhausted resource) or a fault is injected. *)

val set_default_budget : Budget.t -> unit
val get_default_budget : unit -> Budget.t
(** The budget used when callers do not pass [?budget] or [?ctx]; the CLI
    sets it from [--budget] / [INL_FM_BUDGET]. *)

type ctx
(** Per-analysis solver state: the effective budget, the projection
    counter it meters (no longer a process global — a forgotten reset
    cannot leak consumption into the next run), and the query cache to
    consult.  A [ctx] is safe to share across worker domains: the counter
    is atomic and the cache is internally synchronized. *)

val new_analysis : ?budget:Budget.t -> ?use_cache:bool -> unit -> ctx
(** Fresh per-analysis state (budget defaults to the process default,
    [use_cache] defaults to [true] and is further gated by
    {!set_cache_enabled}); also resets the fault-injection counters so
    injected failures are deterministic per run.  Entry points called
    without [?ctx] run on an ephemeral context, so no global protocol
    exists to forget. *)

val satisfiable : ?ctx:ctx -> ?budget:Budget.t -> System.t -> bool

val project :
  ?ctx:ctx -> ?budget:Budget.t -> System.t -> keep:(string -> bool) -> System.t list
(** [project sys ~keep] is a list of systems, mentioning only variables
    satisfying [keep], whose union of solution sets equals the projection
    of [sys]'s solutions.  The empty list means unsatisfiable.  The input
    is canonicalized ({!System.canonicalize}) before elimination in both
    the cached and uncached paths, so memoized results are bit-identical
    to recomputation.  Wildcard names are scoped to the projection
    (deterministic and reentrant).  [?budget] overrides the [?ctx]
    budget when both are given.
    @raise Blowup on budget exhaustion or injected fault. *)

val implied_interval : ?ctx:ctx -> ?budget:Budget.t -> System.t -> string -> Interval.t
(** Tightest integer interval containing the values of the variable over
    all solutions of the system (the hull across disjuncts); an empty
    interval when the system is unsatisfiable. *)

val implies : ?ctx:ctx -> ?budget:Budget.t -> System.t -> Constr.t -> bool
(** [implies sys c]: every integer solution of [sys] satisfies [c]. *)

(** {2 Shared query cache and counters}

    One process-wide {!Cache.t} keyed on canonical systems, so entries
    stay valid across analyses.  Fault injection ({!Inl_diag.Faults})
    bypasses it entirely — injected failures fire on their exact schedule
    regardless of what is cached. *)

val set_cache_enabled : bool -> unit
(** Process-wide kill switch ([--no-cache]); on by default. *)

val cache_enabled : unit -> bool
val cache_stats : unit -> Cache.stats
val clear_cache : unit -> unit

val cache_snapshot : unit -> string
(** {!Cache.export} of the process-wide projection cache — the payload
    the serve daemon checkpoints so the BENCH_solver 3x warm-cache win
    survives a restart. *)

val cache_restore : string -> (int, string) result
(** {!Cache.import} into the process-wide cache; [Ok n] is the number of
    entries restored. *)

val solver_calls : unit -> int * int
(** Cumulative [(satisfiable, project)] entry-point call counts since
    start or {!reset_solver_calls} ([satisfiable] calls also count as
    [project] calls — satisfiability is projection onto no variables). *)

val reset_solver_calls : unit -> unit

val fresh_var : unit -> string
(** Fresh auxiliary variable name (reserved ["$w%d"] namespace) from the
    process-global atomic counter; reset by {!reset_fresh_names}.
    Projections use their own scoped counter and never consume from this
    one. *)

val reset_fresh_names : unit -> unit
(** Restart {!fresh_var} numbering; call only between analyses (names
    must stay unique within one). *)

val is_wildcard : string -> bool
(** Does the name live in the reserved wildcard namespace?  True also
    for renamed copies (["$w3!2"]), which remain existential. *)
