(** Exact elimination of integer variables from affine constraint systems —
    the role played by the Omega tool-kit (Pugh [11]) in the paper's
    dependence analysis (Section 3).

    The engine is integer-exact Fourier-Motzkin: equalities are removed by
    substitution (using Pugh's symmetric-modulo trick when no unit
    coefficient is available), and inequality elimination distinguishes
    the real shadow from the dark shadow, enumerating splinters when they
    differ.  Because existential integer quantification does not preserve
    conjunctive form, projections return a {e disjunction} of systems.

    {2 Resource bounds}

    Exact elimination is worst-case super-exponential, so every entry
    point runs under an {!Inl_diag.Budget.t} — work items per projection,
    a coefficient bit-size cap, and a per-analysis projection count.
    Exhaustion (or an injected {!Inl_diag.Faults} failure) raises
    {!Blowup}; the dependence analyzer catches it and degrades to
    conservative approximate dependences instead of crashing. *)

module Budget = Inl_diag.Budget

exception Blowup of string
(** Raised when a projection exceeds its resource budget (the message
    names the exhausted resource) or a fault is injected. *)

val default_budget : Budget.t ref
val set_default_budget : Budget.t -> unit
val get_default_budget : unit -> Budget.t
(** The budget used when callers do not pass [?budget]; the CLI sets it
    from [--budget] / [INL_FM_BUDGET]. *)

val begin_analysis : unit -> unit
(** Start of a fresh analysis run: resets the per-analysis projection
    counter, the global wildcard counter, and the fault-injection
    counters, so repeated analyses in one process are deterministic. *)

val satisfiable : ?budget:Budget.t -> System.t -> bool

val project : ?budget:Budget.t -> System.t -> keep:(string -> bool) -> System.t list
(** [project sys ~keep] is a list of systems, mentioning only variables
    satisfying [keep], whose union of solution sets equals the projection
    of [sys]'s solutions.  The empty list means unsatisfiable.  Wildcard
    names are scoped to the projection (deterministic and reentrant).
    @raise Blowup on budget exhaustion or injected fault. *)

val implied_interval : ?budget:Budget.t -> System.t -> string -> Interval.t
(** Tightest integer interval containing the values of the variable over
    all solutions of the system (the hull across disjuncts); an empty
    interval when the system is unsatisfiable. *)

val implies : ?budget:Budget.t -> System.t -> Constr.t -> bool
(** [implies sys c]: every integer solution of [sys] satisfies [c]. *)

val fresh_var : unit -> string
(** Fresh auxiliary variable name (reserved ["$w%d"] namespace) from the
    process-global counter; reset by {!begin_analysis}.  Projections use
    their own scoped counter and never consume from this one. *)

val is_wildcard : string -> bool
(** Does the name live in the reserved wildcard namespace?  True also
    for renamed copies (["$w3!2"]), which remain existential. *)
