(** Affine constraints: [e >= 0] or [e = 0] for a linear expression [e]. *)

module Mpz = Inl_num.Mpz

type t = Ge of Linexpr.t | Eq of Linexpr.t

val ge : Linexpr.t -> t
(** [e >= 0]. *)

val le : Linexpr.t -> t
(** [e <= 0], stored as [-e >= 0]. *)

val eq : Linexpr.t -> t
val ge2 : Linexpr.t -> Linexpr.t -> t
(** [ge2 a b] is [a >= b]. *)

val le2 : Linexpr.t -> Linexpr.t -> t
val eq2 : Linexpr.t -> Linexpr.t -> t
val gt2 : Linexpr.t -> Linexpr.t -> t
(** Strict [a > b], i.e. [a - b - 1 >= 0] over the integers. *)

val lt2 : Linexpr.t -> Linexpr.t -> t
val expr : t -> Linexpr.t
val is_eq : t -> bool
val vars : t -> string list
val mem : t -> string -> bool
val subst : t -> string -> Linexpr.t -> t
val rename : (string -> string) -> t -> t
val holds : t -> (string -> Mpz.t) -> bool

val normalize : t -> [ `True | `False | `Constr of t ]
(** Gcd-tighten: divides a [Ge] by the content with floor on the constant
    (integer tightening), an [Eq] exactly or reports [`False] when the gcd
    does not divide the constant; constant constraints evaluate to
    [`True]/[`False]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash, consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
