module Budget = Inl_diag.Budget

module Key = struct
  type t = { sys : System.t; kept : string list; budget : Budget.t }

  let equal a b =
    System.equal a.sys b.sys
    && List.equal String.equal a.kept b.kept
    (* Budget.t is a flat record of ints, so structural comparison and
       [Hashtbl.hash] are exact. *)
    && a.budget = b.budget

  let hash k =
    let h = System.hash k.sys in
    let h = List.fold_left (fun acc v -> (acc * 31) + Hashtbl.hash v) h k.kept in
    (h * 31) + Hashtbl.hash k.budget
end

module H = Hashtbl.Make (Key)

(* Two-generation (S3-FIFO-ish) eviction: inserts go to [young]; when
   [young] fills, it becomes [old] and the previous [old] is discarded.
   A hit in [old] promotes the entry back to [young].  Entries therefore
   survive at least one and at most two generations without a hit, with
   O(1) worst-case maintenance — no LRU list to rebalance under the lock. *)
type t = {
  mutable young : System.t list H.t;
  mutable old : System.t list H.t;
  capacity : int;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ?(max_entries = 4096) () =
  let capacity = max 1 max_entries in
  {
    young = H.create 256;
    old = H.create 256;
    capacity;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let key ~sys ~kept ~budget = { Key.sys; kept; budget }

let find t ~sys ~kept ~budget =
  let k = key ~sys ~kept ~budget in
  Mutex.protect t.lock (fun () ->
      match H.find_opt t.young k with
      | Some v ->
          Atomic.incr t.hits;
          Some v
      | None -> (
          match H.find_opt t.old k with
          | Some v ->
              H.remove t.old k;
              H.replace t.young k v;
              Atomic.incr t.hits;
              Some v
          | None ->
              Atomic.incr t.misses;
              None))

let add t ~sys ~kept ~budget value =
  let k = key ~sys ~kept ~budget in
  Mutex.protect t.lock (fun () ->
      if H.length t.young >= t.capacity then begin
        Atomic.set t.evictions (Atomic.get t.evictions + H.length t.old);
        t.old <- t.young;
        t.young <- H.create 256
      end;
      H.replace t.young k value)

let clear t =
  Mutex.protect t.lock (fun () ->
      H.reset t.young;
      H.reset t.old;
      Atomic.set t.hits 0;
      Atomic.set t.misses 0;
      Atomic.set t.evictions 0)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        hits = Atomic.get t.hits;
        misses = Atomic.get t.misses;
        evictions = Atomic.get t.evictions;
        entries = H.length t.young + H.length t.old;
      })

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* Snapshot/restore for the serve daemon.  Entries are dumped as a
   marshalled (key, value) array — every type reachable from a key or
   value (systems, constraints, linexprs, bignum limbs, budgets) is
   plain immutable data, so [Marshal] round-trips it exactly.  The old
   generation is emitted first and the young one second: import re-adds
   in order, so after a restore the young table holds what was young at
   export time and recency survives the round trip approximately.
   Robustness is the *caller's* problem by design: [import] never trusts
   the payload (a truncated or doctored string fails inside Marshal or
   the array check) and returns the count actually re-added. *)

type dump_entry = Key.t * System.t list

let export t : string =
  let entries =
    Mutex.protect t.lock (fun () ->
        let take tbl = H.fold (fun k v acc -> (k, v) :: acc) tbl [] in
        Array.of_list (take t.old @ take t.young))
  in
  Marshal.to_string (entries : dump_entry array) []

let import t payload =
  match (Marshal.from_string payload 0 : dump_entry array) with
  | exception _ -> Error "unreadable cache dump (truncated or from an incompatible build)"
  | entries ->
      Array.iter
        (fun ((k : Key.t), v) ->
          add t ~sys:k.Key.sys ~kept:k.Key.kept ~budget:k.Key.budget v)
        entries;
      Ok (Array.length entries)
