module Mpz = Inl_num.Mpz
module Ast = Inl_ir.Ast
module Meval = Inl_ir.Meval

type cell = string * int list

type access = { array : string; index : int list; kind : [ `Read | `Write ] }

type store = (cell, float) Hashtbl.t

(* Deterministic pseudo-random values: a small integer hash folded into
   (1, 2) so that divisions and square roots stay well-behaved. *)
let mix h x = (h * 1000003) lxor x

let default_init name index =
  let h = List.fold_left mix (Hashtbl.hash name) index land 0xFFFFF in
  1.0 +. (float_of_int h /. 1048576.0)

let call_value fname (args : float list) =
  match (fname, args) with
  | "sqrt", [ x ] -> Float.sqrt (Float.abs x)
  | "abs", [ x ] -> Float.abs x
  | "min", [ a; b ] -> Float.min a b
  | "max", [ a; b ] -> Float.max a b
  | _ ->
      let h =
        List.fold_left (fun acc a -> mix acc (Hashtbl.hash (Int64.bits_of_float a))) (Hashtbl.hash fname) args
      in
      1.0 +. (float_of_int (h land 0xFFFFF) /. 1048576.0)

exception Step_limit of int

let run ?(init = default_init) ?(trace = fun _ -> ()) ?max_steps (prog : Ast.program)
    ~(params : (string * int) list) : store =
  let store : store = Hashtbl.create 256 in
  (* Execution is bounded when the caller asks (the fuzz oracle must not
     hang on a pathological generated program): every statement instance
     and every loop-iteration entry costs one step. *)
  let steps = ref 0 in
  let limit = match max_steps with Some n -> n | None -> max_int in
  let step () =
    incr steps;
    if !steps > limit then raise (Step_limit limit)
  in
  let read_cell array index =
    let cell = (array, index) in
    trace { array; index; kind = `Read };
    match Hashtbl.find_opt store cell with
    | Some v -> v
    | None ->
        let v = init array index in
        Hashtbl.replace store cell v;
        v
  in
  let write_cell array index v =
    trace { array; index; kind = `Write };
    Hashtbl.replace store (array, index) v
  in
  let rec exec bindings nodes =
    let env v =
      match List.assoc_opt v bindings with
      | Some x -> x
      | None -> (
          match List.assoc_opt v params with
          | Some x -> x
          | None -> invalid_arg (Printf.sprintf "Interp.run: unbound variable %s" v))
    in
    let eval_index (r : Ast.aref) = List.map (Meval.eval_affine env) r.Ast.index in
    let rec eval_expr = function
      | Ast.Econst f -> f
      | Ast.Evar v -> float_of_int (env v)
      | Ast.Eref r -> read_cell r.Ast.array (eval_index r)
      | Ast.Ebin (op, a, b) -> (
          let x = eval_expr a and y = eval_expr b in
          match op with
          | Ast.Add -> x +. y
          | Ast.Sub -> x -. y
          | Ast.Mul -> x *. y
          | Ast.Div -> x /. y)
      | Ast.Ecall (f, args) -> call_value f (List.map eval_expr args)
    in
    List.iter
      (function
        | Ast.Stmt s ->
            step ();
            let v = eval_expr s.Ast.rhs in
            write_cell s.Ast.lhs.Ast.array (eval_index s.Ast.lhs) v
        | Ast.If (gs, body) -> if Meval.eval_guards env gs then exec bindings body
        | Ast.Let (v, { Ast.num; den }, body) ->
            let value = Meval.eval_affine env num in
            let d = Mpz.to_int den in
            if not (Mpz.is_zero (Mpz.fmod (Mpz.of_int value) den)) then
              invalid_arg (Printf.sprintf "Interp.run: let %s: %d not divisible by %d" v value d);
            let q = Mpz.to_int (Mpz.fdiv (Mpz.of_int value) den) in
            exec ((v, q) :: bindings) body
        | Ast.Loop l ->
            Meval.iter_loop env l (fun i ->
                step ();
                exec ((l.Ast.var, i) :: bindings) l.Ast.body))
      nodes
  in
  exec [] prog.Ast.nest;
  store

(* Bit-level equality: exact, and NaN-stable (a legal transformation that
   reproduces the same NaN must not be reported as a difference). *)
let feq (v : float) (w : float) = Int64.bits_of_float v = Int64.bits_of_float w

let stores_equal (a : store) (b : store) =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun cell v acc ->
         acc && match Hashtbl.find_opt b cell with Some w -> feq v w | None -> false)
       a true

let equivalent ?max_steps p1 p2 ~params =
  let s1 = run ?max_steps p1 ~params and s2 = run ?max_steps p2 ~params in
  let diff = ref None in
  Hashtbl.iter
    (fun cell v ->
      if !diff = None then
        match Hashtbl.find_opt s2 cell with
        | Some w when feq v w -> ()
        | Some w ->
            let name, idx = cell in
            diff :=
              Some
                (Printf.sprintf "%s(%s): %.17g vs %.17g" name
                   (String.concat "," (List.map string_of_int idx))
                   v w)
        | None ->
            let name, idx = cell in
            diff :=
              Some
                (Printf.sprintf "%s(%s) touched only by the first program" name
                   (String.concat "," (List.map string_of_int idx))))
    s1;
  if !diff = None then
    Hashtbl.iter
      (fun cell _ ->
        if !diff = None && not (Hashtbl.mem s1 cell) then begin
          let name, idx = cell in
          diff :=
            Some
              (Printf.sprintf "%s(%s) touched only by the second program" name
                 (String.concat "," (List.map string_of_int idx)))
        end)
      s2;
  match !diff with None -> Ok () | Some d -> Error d

let operation_count (prog : Ast.program) ~params = List.length (Meval.enumerate prog ~params)
