module Mpz = Inl_num.Mpz
module Ast = Inl_ir.Ast
module Meval = Inl_ir.Meval

type cell = string * int list

type access = { array : string; index : int list; kind : [ `Read | `Write ] }

type store = (cell, float) Hashtbl.t

(* Deterministic pseudo-random values: a small integer hash folded into
   (1, 2) so that divisions and square roots stay well-behaved. *)
let mix h x = (h * 1000003) lxor x

let default_init name index =
  let h = List.fold_left mix (Hashtbl.hash name) index land 0xFFFFF in
  1.0 +. (float_of_int h /. 1048576.0)

let call_value fname (args : float list) =
  match (fname, args) with
  | "sqrt", [ x ] -> Float.sqrt (Float.abs x)
  | "abs", [ x ] -> Float.abs x
  | "min", [ a; b ] -> Float.min a b
  | "max", [ a; b ] -> Float.max a b
  | _ ->
      let h =
        List.fold_left (fun acc a -> mix acc (Hashtbl.hash (Int64.bits_of_float a))) (Hashtbl.hash fname) args
      in
      1.0 +. (float_of_int (h land 0xFFFFF) /. 1048576.0)

exception Step_limit of int

(* One evaluator, three entry points.  The engine bundles the mutable
   execution state so that [run], [run_nest] (hookable full walk) and
   [run_slice] (sub-range of one loop level, against a caller-supplied
   store) share the same semantics by construction. *)
type engine = {
  store : store;
  init : string -> int list -> float;
  trace : access -> unit;
  limit : int;
  steps : int ref;
}

let make_engine ?(init = default_init) ?(trace = fun _ -> ()) ?max_steps store =
  let limit = match max_steps with Some n -> n | None -> max_int in
  { store; init; trace; limit; steps = ref 0 }

let step eng =
  incr eng.steps;
  if !(eng.steps) > eng.limit then raise (Step_limit eng.limit)

let read_cell eng array index =
  let cell = (array, index) in
  eng.trace { array; index; kind = `Read };
  match Hashtbl.find_opt eng.store cell with
  | Some v -> v
  | None ->
      let v = eng.init array index in
      Hashtbl.replace eng.store cell v;
      v

let write_cell eng array index v =
  eng.trace { array; index; kind = `Write };
  Hashtbl.replace eng.store (array, index) v

(* [rpath] is the reversed child-index path of the node being visited —
   the same convention as {!Inl_verify.Exec.loops_of}, so a DOALL report
   entry identifies the loop the hook sees. *)
let rec exec eng ~params ~on_loop rpath bindings nodes =
  let env v =
    match List.assoc_opt v bindings with
    | Some x -> x
    | None -> (
        match List.assoc_opt v params with
        | Some x -> x
        | None -> invalid_arg (Printf.sprintf "Interp.run: unbound variable %s" v))
  in
  let eval_index (r : Ast.aref) = List.map (Meval.eval_affine env) r.Ast.index in
  let rec eval_expr = function
    | Ast.Econst f -> f
    | Ast.Evar v -> float_of_int (env v)
    | Ast.Eref r -> read_cell eng r.Ast.array (eval_index r)
    | Ast.Ebin (op, a, b) -> (
        let x = eval_expr a and y = eval_expr b in
        match op with
        | Ast.Add -> x +. y
        | Ast.Sub -> x -. y
        | Ast.Mul -> x *. y
        | Ast.Div -> x /. y)
    | Ast.Ecall (f, args) -> call_value f (List.map eval_expr args)
  in
  List.iteri
    (fun i node ->
      let rpath = i :: rpath in
      match node with
      | Ast.Stmt s ->
          step eng;
          let v = eval_expr s.Ast.rhs in
          write_cell eng s.Ast.lhs.Ast.array (eval_index s.Ast.lhs) v
      | Ast.If (gs, body) ->
          if Meval.eval_guards env gs then exec eng ~params ~on_loop rpath bindings body
      | Ast.Let (v, { Ast.num; den }, body) ->
          let value = Meval.eval_affine env num in
          let d = Mpz.to_int den in
          if not (Mpz.is_zero (Mpz.fmod (Mpz.of_int value) den)) then
            invalid_arg (Printf.sprintf "Interp.run: let %s: %d not divisible by %d" v value d);
          let q = Mpz.to_int (Mpz.fdiv (Mpz.of_int value) den) in
          exec eng ~params ~on_loop rpath ((v, q) :: bindings) body
      | Ast.Loop l -> (
          match on_loop (List.rev rpath) l bindings with
          | `Handled -> ()
          | `Default ->
              Meval.iter_loop env l (fun i ->
                  step eng;
                  exec eng ~params ~on_loop rpath ((l.Ast.var, i) :: bindings) l.Ast.body)))
    nodes

let run_nest ?init ?trace ?max_steps ?(on_loop = fun _ _ _ -> `Default) ~store
    (prog : Ast.program) ~(params : (string * int) list) : unit =
  let eng = make_engine ?init ?trace ?max_steps store in
  exec eng ~params ~on_loop [] [] prog.Ast.nest

let run ?init ?trace ?max_steps (prog : Ast.program) ~(params : (string * int) list) : store =
  let store : store = Hashtbl.create 256 in
  run_nest ?init ?trace ?max_steps ~store prog ~params;
  store

let loop_values ~(params : (string * int) list) ~(bindings : (string * int) list)
    (l : Ast.loop) : int list =
  let env v =
    match List.assoc_opt v bindings with
    | Some x -> x
    | None -> (
        match List.assoc_opt v params with
        | Some x -> x
        | None -> invalid_arg (Printf.sprintf "Interp.loop_values: unbound variable %s" v))
  in
  let acc = ref [] in
  Meval.iter_loop env l (fun i -> acc := i :: !acc);
  List.rev !acc

let run_slice ?init ?trace ?max_steps ~store ~(bindings : (string * int) list)
    ~(values : int list) (l : Ast.loop) ~(params : (string * int) list) : unit =
  let eng = make_engine ?init ?trace ?max_steps store in
  let on_loop _ _ _ = `Default in
  List.iter
    (fun i ->
      step eng;
      exec eng ~params ~on_loop [] ((l.Ast.var, i) :: bindings) l.Ast.body)
    values

(* Bit-level equality: exact, and NaN-stable (a legal transformation that
   reproduces the same NaN must not be reported as a difference). *)
let feq (v : float) (w : float) = Int64.bits_of_float v = Int64.bits_of_float w

let stores_equal (a : store) (b : store) =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun cell v acc ->
         acc && match Hashtbl.find_opt b cell with Some w -> feq v w | None -> false)
       a true

let store_diff (a : store) (b : store) =
  let diff = ref None in
  Hashtbl.iter
    (fun cell v ->
      if !diff = None then
        match Hashtbl.find_opt b cell with
        | Some w when feq v w -> ()
        | Some w ->
            let name, idx = cell in
            diff :=
              Some
                (Printf.sprintf "%s(%s): %.17g vs %.17g" name
                   (String.concat "," (List.map string_of_int idx))
                   v w)
        | None ->
            let name, idx = cell in
            diff :=
              Some
                (Printf.sprintf "%s(%s) touched only by the first program" name
                   (String.concat "," (List.map string_of_int idx))))
    a;
  if !diff = None then
    Hashtbl.iter
      (fun cell _ ->
        if !diff = None && not (Hashtbl.mem a cell) then begin
          let name, idx = cell in
          diff :=
            Some
              (Printf.sprintf "%s(%s) touched only by the second program" name
                 (String.concat "," (List.map string_of_int idx)))
        end)
      b;
  match !diff with None -> Ok () | Some d -> Error d

let equivalent ?max_steps p1 p2 ~params =
  let s1 = run ?max_steps p1 ~params and s2 = run ?max_steps p2 ~params in
  store_diff s1 s2

let operation_count (prog : Ast.program) ~params = List.length (Meval.enumerate prog ~params)
