(** An interpreter for loop-nest programs — the execution substrate of
    this reproduction (standing in for the paper's Polaris test-bed).

    Two roles: the {e semantic-equivalence oracle} for code generation
    (run the source and the transformed program on the same inputs and
    compare final stores — legal transformations preserve them exactly,
    since each array cell sees the same sequence of operations with the
    same operands), and the {e memory-trace source} for the cache
    simulator.

    Uninterpreted function calls (the paper's [f()]) evaluate to a
    deterministic hash of the call name and argument values, so
    equivalence checking remains exact in their presence. *)

module Ast = Inl_ir.Ast

type cell = string * int list

type access = { array : string; index : int list; kind : [ `Read | `Write ] }

type store = (cell, float) Hashtbl.t

val default_init : string -> int list -> float
(** Deterministic pseudo-random initial array contents. *)

exception Step_limit of int
(** Raised by a bounded execution that exceeded its step allowance. *)

val run :
  ?init:(string -> int list -> float) ->
  ?trace:(access -> unit) ->
  ?max_steps:int ->
  Ast.program ->
  params:(string * int) list ->
  store
(** Executes the program.  Reads of never-written cells come from [init]
    (and are recorded in the store so both sides of an equivalence check
    observe them identically).  With [max_steps] the execution is
    bounded: each statement instance and each loop-iteration entry costs
    one step, and exceeding the allowance raises {!Step_limit} — the
    fuzzing oracle relies on this to never hang on generated code.
    @raise Invalid_argument on unbound variables or non-exact [Let]
    divisions. *)

val stores_equal : store -> store -> bool

val equivalent :
  ?max_steps:int ->
  Ast.program -> Ast.program -> params:(string * int) list -> (unit, string) result
(** Runs both programs from the same initial contents and compares the
    final stores cell by cell; [Error] carries a diagnostic naming the
    first differing cell. *)

val operation_count : Ast.program -> params:(string * int) list -> int
(** Number of statement instances executed. *)
