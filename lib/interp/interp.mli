(** An interpreter for loop-nest programs — the execution substrate of
    this reproduction (standing in for the paper's Polaris test-bed).

    Three roles: the {e semantic-equivalence oracle} for code generation
    (run the source and the transformed program on the same inputs and
    compare final stores — legal transformations preserve them exactly,
    since each array cell sees the same sequence of operations with the
    same operands), the {e memory-trace source} for the cache
    simulator, and the {e worker evaluator} of the parallel execution
    runtime ({!Inl_exec}): {!run_nest} exposes a per-loop hook so a
    driver can intercept one proven-DOALL level and fan its iteration
    range out over domains, each worker evaluating its slice with
    {!run_slice}.

    Uninterpreted function calls (the paper's [f()]) evaluate to a
    deterministic hash of the call name and argument values, so
    equivalence checking remains exact in their presence. *)

module Ast = Inl_ir.Ast

type cell = string * int list

type access = { array : string; index : int list; kind : [ `Read | `Write ] }

type store = (cell, float) Hashtbl.t

val default_init : string -> int list -> float
(** Deterministic pseudo-random initial array contents. *)

exception Step_limit of int
(** Raised by a bounded execution that exceeded its step allowance. *)

val run :
  ?init:(string -> int list -> float) ->
  ?trace:(access -> unit) ->
  ?max_steps:int ->
  Ast.program ->
  params:(string * int) list ->
  store
(** Executes the program.  Reads of never-written cells come from [init]
    (and are recorded in the store so both sides of an equivalence check
    observe them identically).  With [max_steps] the execution is
    bounded: each statement instance and each loop-iteration entry costs
    one step, and exceeding the allowance raises {!Step_limit} — the
    fuzzing oracle relies on this to never hang on generated code.
    @raise Invalid_argument on unbound variables or non-exact [Let]
    divisions. *)

val run_nest :
  ?init:(string -> int list -> float) ->
  ?trace:(access -> unit) ->
  ?max_steps:int ->
  ?on_loop:(Ast.path -> Ast.loop -> (string * int) list -> [ `Default | `Handled ]) ->
  store:store ->
  Ast.program ->
  params:(string * int) list ->
  unit
(** Like {!run}, but against a caller-supplied store, and with a hook
    consulted at every loop entry {e before} iterating: the hook
    receives the loop's path (same child-index convention as the
    {!Inl_verify.Doall} report), the loop itself and the enclosing
    bindings (loop variables and [Let] quotients, innermost first).
    Returning [`Handled] means the caller has executed the whole loop
    itself (e.g. fanned its range out over domains with {!run_slice});
    [`Default] iterates sequentially.  The hook is not consulted inside
    handled subtrees. *)

val loop_values :
  params:(string * int) list -> bindings:(string * int) list -> Ast.loop -> int list
(** The iteration values of a loop under the given enclosing bindings,
    in execution order — what [`Default] would iterate over.  Respects
    strides, max/min bound combiners and bound-term rounding. *)

val run_slice :
  ?init:(string -> int list -> float) ->
  ?trace:(access -> unit) ->
  ?max_steps:int ->
  store:store ->
  bindings:(string * int) list ->
  values:int list ->
  Ast.loop ->
  params:(string * int) list ->
  unit
(** Evaluates the body of one loop for exactly the given iteration
    values (a sub-range of {!loop_values}) against the supplied store,
    without re-walking the enclosing nest — [bindings] carries the
    enclosing loop variables.  Running every slice of a partition of
    {!loop_values} in order is byte-identical to iterating the loop in
    place. *)

val stores_equal : store -> store -> bool

val store_diff : store -> store -> (unit, string) result
(** Cell-by-cell comparison; [Error] names the first differing cell
    (the "first"/"second" wording refers to argument order). *)

val equivalent :
  ?max_steps:int ->
  Ast.program -> Ast.program -> params:(string * int) list -> (unit, string) result
(** Runs both programs from the same initial contents and compares the
    final stores cell by cell; [Error] carries a diagnostic naming the
    first differing cell. *)

val operation_count : Ast.program -> params:(string * int) list -> int
(** Number of statement instances executed. *)
