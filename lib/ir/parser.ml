module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
open Ast

(* ---- lexer ---- *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | DO
  | ENDDO
  | PARAMS
  | IF
  | THEN
  | ENDIF
  | LET
  | IN
  | STEP
  | EQUAL
  | GE
  | DOTDOT
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | COMMA
  | COLON
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Parse_error of string

let error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_ident c = is_ident_start c || (c >= '0' && c <= '9') in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '!' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      (* a '.' begins a float only if not the ".." range operator *)
      if !i + 1 < n && src.[!i] = '.' && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        push (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else
        let lit = String.sub src start (!i - start) in
        push
          (INT
             (match int_of_string_opt lit with
             | Some v -> v
             | None ->
                 raise
                   (Parse_error
                      (Printf.sprintf "line %d: integer literal %s out of range" !line lit))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match String.lowercase_ascii word with
      | "do" -> push DO
      | "enddo" -> push ENDDO
      | "end" ->
          (* consume optional following "do" *)
          let j = ref !i in
          while !j < n && (src.[!j] = ' ' || src.[!j] = '\t') do
            incr j
          done;
          if !j + 1 < n
             && Char.lowercase_ascii src.[!j] = 'd'
             && Char.lowercase_ascii src.[!j + 1] = 'o'
             && (!j + 2 >= n || not (is_ident src.[!j + 2]))
          then begin
            i := !j + 2;
            push ENDDO
          end
          else push ENDDO
      | "params" | "param" -> push PARAMS
      | "if" -> push IF
      | "then" -> push THEN
      | "endif" -> push ENDIF
      | "let" -> push LET
      | "in" -> push IN
      | "step" -> push STEP
      | _ -> push (IDENT word)
    end
    else begin
      (match c with
      | '>' ->
          if !i + 1 < n && src.[!i + 1] = '=' then begin
            incr i;
            push GE
          end
          else error "line %d: expected '>=' but found a lone '>'" !line
      | '=' -> push EQUAL
      | '(' -> push LPAREN
      | ')' -> push RPAREN
      | '[' -> push LBRACK
      | ']' -> push RBRACK
      | ',' -> push COMMA
      | ':' -> push COLON
      | '+' -> push PLUS
      | '-' -> push MINUS
      | '*' -> push STAR
      | '/' -> push SLASH
      | '.' ->
          if !i + 1 < n && src.[!i + 1] = '.' then begin
            incr i;
            push DOTDOT
          end
          else error "line %d: stray '.'" !line
      | c -> error "line %d: unexpected character %C" !line c);
      incr i
    end
  done;
  List.rev ((EOF, !line) :: !toks)

(* ---- parser state ---- *)

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> EOF
let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> EOF
let cur_line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let token_str = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | DO -> "do"
  | ENDDO -> "enddo"
  | PARAMS -> "params"
  | IF -> "if"
  | THEN -> "then"
  | ENDIF -> "endif"
  | LET -> "let"
  | IN -> "in"
  | STEP -> "step"
  | EQUAL -> "="
  | GE -> ">="
  | DOTDOT -> ".."
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACK -> "["
  | RBRACK -> "]"
  | COMMA -> ","
  | COLON -> ":"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | EOF -> "<eof>"

let expect st t =
  if peek st = t then advance st
  else error "line %d: expected %s but found %s" (cur_line st) (token_str t) (token_str (peek st))

let expect_ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> error "line %d: expected identifier, found %s" (cur_line st) (token_str t)

(* ---- expression parsing (generic trees; affine forms extracted later) ---- *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | PLUS ->
        advance st;
        lhs := Ebin (Add, !lhs, parse_multiplicative st)
    | MINUS ->
        advance st;
        lhs := Ebin (Sub, !lhs, parse_multiplicative st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | STAR ->
        advance st;
        lhs := Ebin (Mul, !lhs, parse_unary st)
    | SLASH ->
        advance st;
        lhs := Ebin (Div, !lhs, parse_unary st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | MINUS ->
      advance st;
      Ebin (Sub, Econst 0., parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | INT n ->
      advance st;
      Econst (float_of_int n)
  | FLOAT f ->
      advance st;
      Econst f
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | IDENT name -> (
      advance st;
      match peek st with
      | LPAREN ->
          advance st;
          let args = ref [] in
          if peek st <> RPAREN then begin
            args := [ parse_expr st ];
            while peek st = COMMA do
              advance st;
              args := parse_expr st :: !args
            done
          end;
          expect st RPAREN;
          Ecall (name, List.rev !args)
      | LBRACK ->
          let idx = ref [] in
          while peek st = LBRACK do
            advance st;
            idx := parse_expr st :: !idx;
            expect st RBRACK
          done;
          (* bracket syntax always denotes an array *)
          Ecall ("$bracket_" ^ name, List.rev !idx)
      | _ -> Evar name)
  | t -> error "line %d: unexpected %s in expression" (cur_line st) (token_str t)

(* ---- affine extraction ---- *)

let rec linearize (e : expr) : affine option =
  match e with
  | Econst f ->
      if Float.is_integer f then Some (Linexpr.of_int (int_of_float f)) else None
  | Evar v -> Some (Linexpr.var v)
  | Ebin (Add, a, b) -> (
      match (linearize a, linearize b) with
      | Some x, Some y -> Some (Linexpr.add x y)
      | _ -> None)
  | Ebin (Sub, a, b) -> (
      match (linearize a, linearize b) with
      | Some x, Some y -> Some (Linexpr.sub x y)
      | _ -> None)
  | Ebin (Mul, a, b) -> (
      match (linearize a, linearize b) with
      | Some x, Some y ->
          if Linexpr.is_constant x then Some (Linexpr.scale (Linexpr.constant x) y)
          else if Linexpr.is_constant y then Some (Linexpr.scale (Linexpr.constant y) x)
          else None
      | _ -> None)
  | Ebin (Div, _, _) | Ecall _ | Eref _ -> None

let linearize_exn st what e =
  match linearize e with
  | Some a -> a
  | None -> error "line %d: %s must be an affine expression" (cur_line st) what

(* A bound expression: one term, or min(...)/max(...) of several at top
   level.  A term is a plain affine expression or ceildiv(e, d) /
   floordiv(e, d) (the rounding direction is fixed by the bound's
   position, so the two spellings parse identically).  The natural
   combiner is max for a lower bound and min for an upper bound; the
   opposite keyword denotes a covering (union) bound, which code
   generation emits for loops shared by several statements. *)
let rec parse_bterm st : bterm =
  match (peek st, peek2 st) with
  | IDENT name, LPAREN
    when String.lowercase_ascii name = "ceildiv" || String.lowercase_ascii name = "floordiv"
    ->
      advance st;
      advance st;
      let num = linearize_exn st "loop bound" (parse_expr st) in
      expect st COMMA;
      let den =
        match peek st with
        | INT d when d > 0 ->
            advance st;
            Mpz.of_int d
        | t -> error "line %d: expected a positive divisor, found %s" (cur_line st) (token_str t)
      in
      expect st RPAREN;
      { num; den }
  | LPAREN, _ -> (
      (* disambiguate "(e) / d" (an exact-quotient term) from a plain
         parenthesized affine expression *)
      match parse_expr st with
      | Ebin (Div, a, Econst d) when Float.is_integer d && d > 0. ->
          { num = linearize_exn st "loop bound" a; den = Mpz.of_int (int_of_float d) }
      | e -> bterm (linearize_exn st "loop bound" e))
  | _ -> bterm (linearize_exn st "loop bound" (parse_expr st))

and parse_bound st ~(kind : [ `Lower | `Upper ]) : bound =
  let natural = match kind with `Lower -> `Max | `Upper -> `Min in
  match (peek st, peek2 st) with
  | IDENT name, LPAREN
    when String.lowercase_ascii name = "max" || String.lowercase_ascii name = "min" ->
      let combine = if String.lowercase_ascii name = "max" then `Max else `Min in
      advance st;
      advance st;
      let terms = ref [ parse_bterm st ] in
      while peek st = COMMA do
        advance st;
        terms := parse_bterm st :: !terms
      done;
      expect st RPAREN;
      (* when the keyword is the opposite of the natural combiner this is a
         covering (union) bound; accepted as-is — exactness of the spurious
         iterations it admits is the verifier's business *)
      { combine; terms = List.rev !terms }
  | _ -> { combine = natural; terms = [ parse_bterm st ] }

(* ---- items ---- *)

let fresh_label =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "S%d" !counter

(* One guard of an [if]: "e >= 0", "e = 0" or "e mod d = 0". *)
let parse_guard st : guard =
  let e = parse_expr st in
  match peek st with
  | GE ->
      advance st;
      (match peek st with
      | INT 0 -> advance st
      | t -> error "line %d: a guard must compare against 0, found %s" (cur_line st) (token_str t));
      Gcmp (`Ge, linearize_exn st "guard" e)
  | EQUAL ->
      advance st;
      (match peek st with
      | INT 0 -> advance st
      | t -> error "line %d: a guard must compare against 0, found %s" (cur_line st) (token_str t));
      Gcmp (`Eq, linearize_exn st "guard" e)
  | IDENT m when String.lowercase_ascii m = "mod" ->
      advance st;
      let d =
        match peek st with
        | INT d when d > 0 ->
            advance st;
            Mpz.of_int d
        | t -> error "line %d: expected a positive modulus, found %s" (cur_line st) (token_str t)
      in
      expect st EQUAL;
      (match peek st with
      | INT 0 -> advance st
      | t -> error "line %d: a divisibility guard ends in '= 0', found %s" (cur_line st) (token_str t));
      Gdiv (d, linearize_exn st "guard" e)
  | t -> error "line %d: expected '>=', '=' or 'mod' in guard, found %s" (cur_line st) (token_str t)

let rec parse_items st : node list =
  match peek st with
  | EOF | ENDDO | ENDIF -> []
  | _ ->
      let item = parse_item st in
      item :: parse_items st

and parse_item st : node =
  match peek st with
  | DO ->
      advance st;
      let var = expect_ident st in
      expect st EQUAL;
      let lower = parse_bound st ~kind:`Lower in
      expect st DOTDOT;
      let upper = parse_bound st ~kind:`Upper in
      let step =
        if peek st = STEP then begin
          advance st;
          match peek st with
          | INT s when s >= 1 ->
              advance st;
              Mpz.of_int s
          | t -> error "line %d: expected a positive step, found %s" (cur_line st) (token_str t)
        end
        else Mpz.one
      in
      let body = parse_items st in
      expect st ENDDO;
      Loop { var; lower; upper; step; body }
  | IF ->
      advance st;
      expect st LPAREN;
      let guards = ref [ parse_guard st ] in
      let continue_ = ref true in
      while !continue_ do
        match peek st with
        | IDENT a when String.lowercase_ascii a = "and" ->
            advance st;
            guards := parse_guard st :: !guards
        | _ -> continue_ := false
      done;
      expect st RPAREN;
      expect st THEN;
      let body = parse_items st in
      expect st ENDIF;
      If (List.rev !guards, body)
  | LET ->
      (* "let v = e in" or "let v = (e) / d in"; the binding scopes over
         the remaining items of the enclosing block *)
      advance st;
      let v = expect_ident st in
      expect st EQUAL;
      let def =
        match parse_expr st with
        | Ebin (Div, a, Econst d) when Float.is_integer d && d > 0. ->
            { num = linearize_exn st "let binding" a; den = Mpz.of_int (int_of_float d) }
        | e -> bterm (linearize_exn st "let binding" e)
      in
      expect st IN;
      let body = parse_items st in
      Let (v, def, body)
  | IDENT _ -> parse_stmt st
  | t -> error "line %d: expected 'do' or a statement, found %s" (cur_line st) (token_str t)

and parse_stmt st : node =
  (* optional label:  IDENT ':' *)
  let label =
    match (peek st, peek2 st) with
    | IDENT l, COLON ->
        advance st;
        advance st;
        Some l
    | _ -> None
  in
  let array = expect_ident st in
  let index =
    match peek st with
    | LPAREN ->
        advance st;
        let idx = ref [ linearize_exn st "subscript" (parse_expr st) ] in
        while peek st = COMMA do
          advance st;
          idx := linearize_exn st "subscript" (parse_expr st) :: !idx
        done;
        expect st RPAREN;
        List.rev !idx
    | LBRACK ->
        let idx = ref [] in
        while peek st = LBRACK do
          advance st;
          idx := linearize_exn st "subscript" (parse_expr st) :: !idx;
          expect st RBRACK
        done;
        List.rev !idx
    | t -> error "line %d: statement target %s lacks subscripts (found %s)" (cur_line st) array (token_str t)
  in
  expect st EQUAL;
  let rhs = parse_expr st in
  let label = match label with Some l -> l | None -> fresh_label () in
  Stmt { label; lhs = { array; index }; rhs }

(* ---- post-processing: resolve RHS array references ---- *)

let rec resolve_expr (arrays : string list) (e : expr) : expr =
  match e with
  | Ecall (name, args) when String.length name > 9 && String.sub name 0 9 = "$bracket_" ->
      let real = String.sub name 9 (String.length name - 9) in
      let idx =
        List.map
          (fun a ->
            match linearize a with
            | Some l -> l
            | None -> raise (Parse_error (Printf.sprintf "non-affine subscript of %s" real)))
          args
      in
      Eref { array = real; index = idx }
  | Ecall (name, args) -> (
      let resolved_args = List.map (resolve_expr arrays) args in
      if List.mem name arrays then
        match
          List.fold_right
            (fun a acc ->
              match (acc, linearize a) with Some l, Some x -> Some (x :: l) | _ -> None)
            args (Some [])
        with
        | Some idx -> Eref { array = name; index = idx }
        | None -> Ecall (name, resolved_args)
      else Ecall (name, resolved_args))
  | Ebin (op, a, b) -> Ebin (op, resolve_expr arrays a, resolve_expr arrays b)
  | Econst _ | Evar _ | Eref _ -> e

let rec resolve_node arrays = function
  | Stmt s -> Stmt { s with rhs = resolve_expr arrays s.rhs }
  | Loop l -> Loop { l with body = List.map (resolve_node arrays) l.body }
  | If (g, body) -> If (g, List.map (resolve_node arrays) body)
  | Let (v, d, body) -> Let (v, d, List.map (resolve_node arrays) body)

let rec written_arrays acc = function
  | Stmt s -> s.lhs.array :: acc
  | Loop l -> List.fold_left written_arrays acc l.body
  | If (_, body) | Let (_, _, body) -> List.fold_left written_arrays acc body

(* Free variables of the (resolved) program that are not loop variables. *)
let infer_params (prog : program) : string list =
  let bound = loop_vars prog in
  let free = ref [] in
  let see scope v = if not (List.mem v scope || List.mem v bound) then free := v :: !free in
  let rec expr_vars scope = function
    | Eref r -> List.iter (fun a -> List.iter (see scope) (Linexpr.vars a)) r.index
    | Econst _ -> ()
    | Evar v -> see scope v
    | Ebin (_, a, b) ->
        expr_vars scope a;
        expr_vars scope b
    | Ecall (_, args) -> List.iter (expr_vars scope) args
  in
  let rec go scope = function
    | Stmt s ->
        List.iter (fun a -> List.iter (see scope) (Linexpr.vars a)) s.lhs.index;
        expr_vars scope s.rhs
    | If (gs, body) ->
        List.iter
          (function Gcmp (_, e) | Gdiv (_, e) -> List.iter (see scope) (Linexpr.vars e))
          gs;
        List.iter (go scope) body
    | Let (v, { num; _ }, body) ->
        List.iter (see scope) (Linexpr.vars num);
        List.iter (go (v :: scope)) body
    | Loop l ->
        List.iter
          (fun ({ num; _ } : bterm) -> List.iter (see scope) (Linexpr.vars num))
          (l.lower.terms @ l.upper.terms);
        List.iter (go (l.var :: scope)) l.body
  in
  List.iter (go []) prog.nest;
  List.sort_uniq String.compare !free

let parse_exn (src : string) : program =
  try
    let st = { toks = tokenize src } in
    let params = ref [] in
    while peek st = PARAMS do
      advance st;
      let continue_ = ref true in
      while !continue_ do
        match peek st with
        | IDENT p when peek2 st <> EQUAL && peek2 st <> COLON && peek2 st <> LPAREN && peek2 st <> LBRACK ->
            advance st;
            params := p :: !params
        | COMMA ->
            advance st
        | _ -> continue_ := false
      done
    done;
    let nest = parse_items st in
    expect st EOF;
    let arrays = List.fold_left written_arrays [] nest |> List.sort_uniq String.compare in
    let nest = List.map (resolve_node arrays) nest in
    let prog = { params = List.rev !params; nest } in
    let prog = { prog with params = List.sort_uniq String.compare (prog.params @ infer_params prog) } in
    validate prog;
    prog
  with
  | Parse_error msg -> failwith ("parse error: " ^ msg)
  | Invalid msg -> failwith ("invalid program: " ^ msg)

let parse src = try Ok (parse_exn src) with Failure msg -> Error msg
