(* Pretty-printing of loop-nest programs in the paper's pseudo-code
   notation:

     do I = 1..N
       S1: A(I) = sqrt(A(I))
       do J = I+1..N
         S2: A(J) = A(J) / A(I)
       enddo
     enddo
*)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
open Ast

let pp_affine = Linexpr.pp

let pp_bterm ~round fmt { num; den } =
  if Mpz.is_one den then pp_affine fmt num
  else
    Format.fprintf fmt "%s(%a, %a)"
      (match round with `Up -> "ceildiv" | `Down -> "floordiv")
      pp_affine num Mpz.pp den

let pp_bound ~round fmt ({ combine; terms } : bound) =
  match terms with
  | [ t ] -> pp_bterm ~round fmt t
  | ts ->
      Format.fprintf fmt "%s(%a)"
        (match combine with `Max -> "max" | `Min -> "min")
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") (pp_bterm ~round))
        ts

let pp_aref fmt { array; index } =
  Format.fprintf fmt "%s(%a)" array
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") pp_affine)
    index

let binop_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
let prec = function Add | Sub -> 1 | Mul | Div -> 2

let rec pp_expr ?(ctx = 0) fmt = function
  | Eref r -> pp_aref fmt r
  | Econst f ->
      if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf fmt "%d" (int_of_float f)
      else Format.fprintf fmt "%g" f
  | Evar v -> Format.pp_print_string fmt v
  | Ebin (op, a, b) ->
      let p = prec op in
      let body fmt () =
        Format.fprintf fmt "%a %s %a" (pp_expr ~ctx:p) a (binop_str op) (pp_expr ~ctx:(p + 1)) b
      in
      if p < ctx then Format.fprintf fmt "(%a)" body () else body fmt ()
  | Ecall (f, args) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") (pp_expr ~ctx:0))
        args

let pp_guard fmt = function
  | Gcmp (`Ge, e) -> Format.fprintf fmt "%a >= 0" pp_affine e
  | Gcmp (`Eq, e) -> Format.fprintf fmt "%a = 0" pp_affine e
  | Gdiv (d, e) -> Format.fprintf fmt "%a mod %a = 0" pp_affine e Mpz.pp d

let pp_stmt fmt (s : stmt) =
  Format.fprintf fmt "%s: %a = %a" s.label pp_aref s.lhs (pp_expr ~ctx:0) s.rhs

let rec pp_node fmt = function
  | Stmt s -> pp_stmt fmt s
  | Let (v, { num; den }, body) ->
      if Mpz.is_one den then Format.fprintf fmt "@[<v 2>let %s = %a in@,%a@]" v pp_affine num pp_nodes body
      else
        Format.fprintf fmt "@[<v 2>let %s = (%a) / %a in@,%a@]" v pp_affine num Mpz.pp den
          pp_nodes body
  | If (gs, body) ->
      Format.fprintf fmt "@[<v 2>if (%a) then@,%a@]@,endif"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " and ") pp_guard)
        gs pp_nodes body
  | Loop l ->
      if Mpz.is_one l.step then
        Format.fprintf fmt "@[<v 2>do %s = %a..%a@,%a@]@,enddo" l.var
          (pp_bound ~round:`Up) l.lower (pp_bound ~round:`Down) l.upper pp_nodes l.body
      else
        Format.fprintf fmt "@[<v 2>do %s = %a..%a step %a@,%a@]@,enddo" l.var
          (pp_bound ~round:`Up) l.lower (pp_bound ~round:`Down) l.upper Mpz.pp l.step pp_nodes
          l.body

and pp_nodes fmt nodes =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_node fmt nodes

let pp_program fmt (p : program) =
  if p.params <> [] then
    Format.fprintf fmt "params %a@,"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Format.pp_print_string)
      p.params;
  Format.fprintf fmt "@[<v>%a@]" pp_nodes p.nest

let program_to_string (p : program) = Format.asprintf "%a" pp_program p
let node_to_string (n : node) = Format.asprintf "@[<v>%a@]" pp_node n

(* Annotated variant: same layout, but a per-path hook can append a
   comment to loop headers (e.g. "parallel" from the DOALL analysis).
   Comments are not part of the surface grammar, so this printer does
   not round-trip; plain pp_program stays the canonical form. *)

let rec pp_node_annot ~annot ~path fmt node =
  match node with
  | Stmt _ | Let _ | If _ -> pp_plain ~annot ~path fmt node
  | Loop l ->
      let comment =
        match annot (List.rev path) with
        | Some c -> Format.asprintf "  /* %s */" c
        | None -> ""
      in
      let header fmt () =
        if Mpz.is_one l.step then
          Format.fprintf fmt "do %s = %a..%a" l.var (pp_bound ~round:`Up) l.lower
            (pp_bound ~round:`Down) l.upper
        else
          Format.fprintf fmt "do %s = %a..%a step %a" l.var (pp_bound ~round:`Up) l.lower
            (pp_bound ~round:`Down) l.upper Mpz.pp l.step
      in
      Format.fprintf fmt "@[<v 2>%a%s@,%a@]@,enddo" header () comment
        (pp_nodes_annot ~annot ~path) l.body

and pp_plain ~annot ~path fmt = function
  | Stmt s -> pp_stmt fmt s
  | Let (v, { num; den }, body) ->
      if Mpz.is_one den then
        Format.fprintf fmt "@[<v 2>let %s = %a in@,%a@]" v pp_affine num
          (pp_nodes_annot ~annot ~path) body
      else
        Format.fprintf fmt "@[<v 2>let %s = (%a) / %a in@,%a@]" v pp_affine num Mpz.pp den
          (pp_nodes_annot ~annot ~path) body
  | If (gs, body) ->
      Format.fprintf fmt "@[<v 2>if (%a) then@,%a@]@,endif"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " and ") pp_guard)
        gs
        (pp_nodes_annot ~annot ~path)
        body
  | Loop _ as n -> pp_node_annot ~annot ~path fmt n

and pp_nodes_annot ~annot ~path fmt nodes =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut
    (fun fmt (i, n) -> pp_node_annot ~annot ~path:(i :: path) fmt n)
    fmt
    (List.mapi (fun i n -> (i, n)) nodes)

let pp_program_annot ~annot fmt (p : program) =
  if p.params <> [] then
    Format.fprintf fmt "params %a@,"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Format.pp_print_string)
      p.params;
  Format.fprintf fmt "@[<v>%a@]" (pp_nodes_annot ~annot ~path:[]) p.nest

let program_to_string_annot ~annot (p : program) =
  Format.asprintf "%a" (pp_program_annot ~annot) p
