(** Abstract syntax for imperfectly nested loop programs (Section 2).

    Internal nodes are loops, leaves are atomic assignment statements;
    the left-to-right order of children is sequential execution order.
    Source programs use unit steps, singleton bounds and no guards; code
    generation (Section 5) additionally produces strided loops, covering
    (union) bounds, guarded bodies and exact-quotient [Let] bindings.

    {2 Invariants}

    A well-formed program (checked by {!validate}) satisfies:

    - statement labels are globally unique;
    - every variable mentioned by a bound, guard, subscript or
      right-hand side is an enclosing loop variable, an enclosing
      [Let]-bound variable, or a program parameter;
    - loop variables and [Let]-bound variables shadow neither an
      enclosing binder nor a parameter;
    - loop steps are [>= 1], bound and [Let] denominators are [>= 1],
      guard divisors are [>= 1], and every loop has at least one lower
      and one upper bound term.

    Semantic invariants {e not} enforced here, but relied on by the
    interpreter and checked by the static verifier ({!Inl_verify}):
    a [Let] with denominator [d > 1] must be reached only when [d]
    divides its numerator (code generation emits a [Gdiv] guard), and a
    covering bound (combiner opposite to the natural one) must be
    compensated by per-statement guards. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr

type affine = Linexpr.t

type bterm = { num : affine; den : Mpz.t }
(** One term of a loop bound: [num/den] with [den >= 1].  A lower bound
    rounds up, an upper bound rounds down; source programs always have
    [den = 1]. *)

type bound = { combine : [ `Max | `Min ]; terms : bterm list }
(** A loop bound combines its terms with max or min.  Source programs
    use the natural combiners (a lower bound is a max, an upper bound a
    min); code generation may emit the opposite combiner for a loop
    shared by several statements, whose range must cover the union of
    the statements' ranges (spurious iterations are discarded by
    per-statement guards). *)

type aref = { array : string; index : affine list }

type binop = Add | Sub | Mul | Div

type expr =
  | Eref of aref
  | Econst of float
  | Evar of string  (** loop variable, [Let]-bound variable or parameter *)
  | Ebin of binop * expr * expr
  | Ecall of string * expr list  (** intrinsic or uninterpreted function *)

type stmt = { label : string; lhs : aref; rhs : expr }

type guard =
  | Gcmp of [ `Ge | `Eq ] * affine  (** [e >= 0] or [e = 0] *)
  | Gdiv of Mpz.t * affine  (** [den] divides [e] *)

type node =
  | Loop of loop
  | If of guard list * node list  (** conjunction of guards *)
  | Let of string * bterm * node list
      (** [Let (v, e/d, body)]: bind [v] to the exact quotient [e/d]
          (the enclosing guards guarantee divisibility); produced by
          code generation to reconstruct original iterators *)
  | Stmt of stmt

and loop = {
  var : string;
  lower : bound;
  upper : bound;
  step : Mpz.t;  (** [>= 1] *)
  body : node list;
}

type program = { params : string list; nest : node list }

type path = int list
(** A path identifies a node: the sequence of child indices from the
    root of the forest.  [[]] is the (virtual) root. *)

(** {2 Construction helpers} *)

val bterm : affine -> bterm
(** Integral term ([den = 1]). *)

val bterm_int : int -> bterm
val bterm_var : string -> bterm

val lower_bound : bterm list -> bound
(** Natural lower bound (max combiner). *)

val upper_bound : bterm list -> bound
(** Natural upper bound (min combiner). *)

val simple_loop : string -> bterm -> bterm -> node list -> node
(** Unit-step loop with singleton natural bounds. *)

(** {2 Traversal} *)

val node_at_exn : node list -> path -> node
(** @raise Invalid_argument on the empty path or a path through a
    statement. *)

val stmts_with_paths : program -> (path * stmt) list
(** All statements with their paths, in syntactic (depth-first,
    left-to-right) order. *)

val find_stmt_exn : program -> string -> path * stmt
(** Look up a statement by label.
    @raise Invalid_argument when no statement carries the label. *)

val loops_enclosing : program -> path -> (path * loop) list
(** Loops strictly enclosing the node at the given path, outermost
    first. *)

val syntactic_compare : path -> path -> int
(** Syntactic order of Definition 1: depth-first positions compare as
    the paths do lexicographically. *)

val expr_arrays : string list -> expr -> string list
(** Array names referenced by an expression, prepended to the
    accumulator. *)

val arrays : program -> string list
(** All arrays read or written, sorted without duplicates. *)

val loop_vars : program -> string list
(** Loop variables bound anywhere in the program, sorted without
    duplicates. *)

(** {2 Validation} *)

exception Invalid of string

val validate : program -> unit
(** Checks the well-formedness invariants listed above.
    @raise Invalid with a human-readable description of the first
    violation. *)

val is_perfect : program -> bool
(** True when the nest is a single chain of loops with all statements at
    the innermost level (Section 1's "perfectly nested"). *)

(** {2 Variable renaming (used by loop fusion)} *)

val rename_var_expr : string -> string -> expr -> expr

val rename_affine_var : string -> string -> affine -> affine

val rename_var_node : string -> string -> node -> node
(** Rename free occurrences of the first variable to the second; binders
    of the first variable shadow (their subtrees are left alone). *)
