(** Pretty-printing of loop-nest programs in the paper's pseudo-code
    notation; {!Inl_ir.Parser} accepts everything printed for source
    programs (generated programs may additionally contain [if]/[let]
    constructs and strided loops). *)

val pp_affine : Format.formatter -> Ast.affine -> unit
val pp_aref : Format.formatter -> Ast.aref -> unit
val pp_expr : ?ctx:int -> Format.formatter -> Ast.expr -> unit
val pp_guard : Format.formatter -> Ast.guard -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_node : Format.formatter -> Ast.node -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val node_to_string : Ast.node -> string

val pp_program_annot :
  annot:(Ast.path -> string option) -> Format.formatter -> Ast.program -> unit
(** Like {!pp_program}, but calls [annot] on each loop's path and, when
    it answers [Some c], appends ["  /* c */"] to the loop header (the
    DOALL analysis uses this for ["parallel"] marks).  Comments are not
    part of the surface grammar, so annotated output does not round-trip
    through the parser. *)

val program_to_string_annot : annot:(Ast.path -> string option) -> Ast.program -> string
