(** Legality-guided transformation autotuning (the closing of the
    paper's loop: Section 1 motivates loop orders by locality, Section 6
    derives them — this module searches for them automatically).

    A deterministic seeded beam search over the matrix-encoded
    transformation space.  States are {!Inl_fuzz.Tf} recipes — replayable
    by construction — materialized against the analyzed program;
    generation 0 holds the identity and the completion-derived seeds
    (one per signed loop column, via {!Inl.Completion.seed_rows}), and
    each later generation extends every beam survivor by one bounded
    move from {!Moves.enumerate}.  Evaluation is incremental end-to-end:
    step recipes materialize through a process-wide prefix memo (one
    composition step per candidate), and candidates are pruned by the
    exact legality test (Definition 6) run in delta mode
    ({!Inl.Legality.check_env}) — verdicts whose inputs the move left
    unchanged are inherited from the parent state, the rest resolve
    through a shared per-search {!Inl.Legality.cache} backed by the
    process-wide verdict memo.  An illegal candidate is dropped and
    never extended, cutting its whole subtree.

    Survivors are ranked by the static tier
    ({!Inl_reuse.Reuse.weighted_score}, the depth-weighted
    reuse-vocabulary score — candidates in the same signature
    equivalence class are scored once through a process-wide memo); the
    top [finalists] are code-generated and scored by the
    {!Inl_cachesim} trace tier at a configurable problem size, with one
    simulation per finalist signature class (the others inherit the
    representative's miss counts).  The winner is gated through
    {!Inl_verify} translation validation before being reported.

    Determinism: per-generation candidate evaluation fans out over
    {!Inl_parallel.Pool} with input-order collection, ranking ties break
    on the recipe text, code generation runs on the calling domain, and
    no wall-clock feeds any decision — the outcome is byte-identical
    across [--jobs] values for a fixed seed.  The search is
    budget/watchdog-aware: {!Inl_diag.Watchdog.poll} runs between
    generations and finalists, and a {!Inl_presburger.Omega.Blowup}
    during a finalist's code generation degrades that candidate to its
    static-tier score (warning [S901]) instead of aborting. *)

module Tf = Inl_fuzz.Tf
module Diag = Inl_diag.Diag
module Cachesim = Inl_cachesim.Cachesim
module Ast = Inl_ir.Ast

type config = {
  beam : int;  (** beam width (default 8) *)
  depth : int;  (** move generations after the seeds (default 3) *)
  finalists : int;  (** candidates promoted to the trace tier (default 6) *)
  size : int;  (** problem size: every parameter is bound to this for simulation (default 48) *)
  seed : int;
      (** deterministic subsampling seed, used only when a state's move
          list exceeds [max_moves] *)
  max_moves : int;  (** per-state move cap (default 64) *)
  cache : Cachesim.config;  (** trace-tier cache (default 8 KiB, 2-way, 64B lines) *)
  sim_max_steps : int;  (** interpreter step bound per simulation (default 4_000_000) *)
}

val default_config : config

val config_for : ?base:config -> Inl.context -> config
(** [base] (default {!default_config}) widened for the kernel at hand:
    programs with at least 8 layout columns (loops + statements) get
    [beam = 12] and [depth = 4] — incremental evaluation made candidates
    cheap enough to spend the reclaimed time on coverage where the
    search space is big enough to need it.  The CLI uses this when
    [--beam]/[--depth] are not given explicitly. *)

type entry = {
  rank : int;  (** 1-based, in final ranking order *)
  recipe : Tf.t;
  static_score : float;
  misses : int option;  (** trace tier; [None] when not simulated or degraded *)
  accesses : int option;
  program : Ast.program option;  (** generated code; [None] when codegen degraded *)
}

type funnel = {
  generated : int;  (** candidate recipes materialization was attempted for *)
  materialize_failed : int;
  duplicate : int;  (** distinct recipes reaching an already-seen matrix *)
  illegal : int;  (** pruned by the legality test *)
  scored : int;  (** legal, statically scored *)
  reuse_classes : int;
      (** distinct reuse-signature equivalence classes among the scored
          candidates ({!Inl_reuse}) *)
  reuse_pruned : int;
      (** scored candidates whose signature class had already been seen —
          their static score was a memo lookup, not a recomputation *)
  simulated : int;  (** simulations actually run (one per finalist class) *)
  sim_shared : int;
      (** finalists that inherited a class representative's miss counts
          instead of being simulated themselves *)
  sim_skipped : int;
      (** class representatives whose simulation was skipped
          (out-of-range access or step limit — warning [S903]) *)
}

type outcome = {
  entries : entry list;  (** the finalists in final ranking order *)
  winner : entry option;  (** the first finalist that passed the {!Inl_verify} gate *)
  winner_doall : int option;
      (** number of provably parallel loops in the winner's generated
          code, read off the winner's own verification report ([None]
          when there is no winner) — the parallelizability the execution
          runtime ({!Inl_exec}) will find *)
  source_misses : int option;  (** trace-tier score of the untransformed program *)
  source_accesses : int option;
  diags : Diag.t list;
      (** warnings: [S901] codegen degraded, [S902] a finalist failed
          translation validation, [S903] simulation skipped, [S904]
          static scoring degraded (singular per-statement
          transformations charged pessimistically, once per run); plus
          the winner's verification warnings.  Errors: [S801] no legal
          candidate survived. *)
  funnel : funnel;
}

val optimize : ?config:config -> Inl.context -> outcome
(** Never raises on candidate-level failure; every degradation is a
    typed diagnostic in [diags].  Also feeds the funnel counters into
    {!Inl_diag.Stats} ([search.*]) for [--stats]. *)

val recipe_line : Tf.t -> string
(** One-line human rendering of a recipe, e.g.
    ["interchange J,I2; reverse K"] or ["complete row=[0,0,0,1,0,0,0]"];
    ["identity"] for the empty recipe. *)

val clear_process_memos : unit -> unit
(** Forget every process-wide search memo (step-prefix materialization,
    completion results, signature front tier, simulation results,
    measured extents).  The corpus runner clears them — together with
    the Omega projection cache and the legality/reuse memos — at each
    kernel boundary, so per-kernel records are cold-cache measurements
    independent of batch order and of where a resumed run restarted. *)

val set_trace_cache_enabled : bool -> unit
(** Enable/disable the process-wide trace-tier memos (simulation results
    and measured array extents, keyed on rendered program text plus the
    full simulation geometry).  Results are identical either way —
    [--no-cache] turns them off together with the Omega projection cache
    for benchmarking and debugging. *)

val trace_cache_enabled : unit -> bool

val trace_cache_stats : unit -> Inl_reuse.Memo.stats
(** Counters of the simulation memo, for [--stats]. *)

val set_mat_cache_enabled : bool -> unit
(** Enable/disable the process-wide materialization memos: the
    step-prefix pipeline memo (one composition step per candidate
    instead of the whole chain) and the completion-result memo.  Both
    compute bit-identical matrices either way — [--no-cache] turns them
    off with the other caches. *)

val mat_cache_enabled : unit -> bool

val mat_cache_stats : unit -> Inl_reuse.Memo.stats
(** Counters of the step-prefix pipeline memo. *)

val completion_cache_stats : unit -> Inl_reuse.Memo.stats
(** Counters of the completion-result memo. *)
