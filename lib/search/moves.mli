(** Candidate move enumeration for the transformation autotuner.

    A {e move} is one named pipeline step in the CLI's surface syntax —
    the same [(kind, spec)] pairs {!Inl_fuzz.Tf} records — phrased
    against the program shape reached by the recipe so far, exactly as
    {!Inl.Pipeline.compose} will re-interpret it during replay.  The
    enumeration is structural and deliberately over-approximate: a move
    that fails to materialize or is rejected by the legality test is
    pruned downstream, never silently skipped here.

    A move is a {e list} of steps appended to the recipe as one unit.
    Most moves are a single step; the wavefront composition
    (skew-the-inner-by-the-outer, then interchange) is two — the pair
    that turns a time-iterated stencil's sequential band into an inner
    DOALL dimension, which as separate generations would require the
    locally-unprofitable skew-only intermediate to survive the beam.

    Bounds: skew factors and alignment amounts are limited to [±1]
    (composition reaches larger factors across generations; wavefront
    compounds additionally try factor [2], enough to rotate the
    {(1,-1),(1,0),(1,1)} stencil cone past vertical), statement
    reorderings enumerate all child permutations only at sites with at
    most four children (adjacent transpositions above that). *)

module Ast = Inl_ir.Ast

val enumerate : Ast.program -> (string * string) list list
(** All bounded moves against the given program shape, in a fixed
    deterministic order: interchanges (nested loop pairs), reversals,
    skews (nested pairs, both directions, factor [±1]), alignments
    (statement × enclosing loop × [±1], only in multi-statement
    programs), statement reorderings, then the wavefront compounds
    (nested pairs × factor {1, 2}). *)

val loops_with_paths : Ast.program -> (Ast.path * Ast.loop) list
(** Every loop of the program with its path, in DFS order. *)
