(** The cheap static tier of the two-tier cost model.

    Ranks a legal transformation by the memory behaviour of each
    statement's {e innermost transformed loop}, read off the access
    matrices — no code generation and no simulation.  For statement [S]
    with per-statement transformation [T_S] (Definition 7), one step of
    the innermost new loop moves the original iteration vector along
    [d = T_S⁻¹·e_last]; every array reference's subscripts are affine in
    the original iterators, so the per-step subscript delta is exact
    rational arithmetic.  A reference then costs

    - [0] when every subscript is invariant along [d] (temporal reuse),
    - [|δ|/line_elems] when only the last (fastest-varying, row-major)
      subscript moves, by at most a cache line (spatial reuse),
    - [1] otherwise (a new line per iteration).

    Costs are weighted by a nominal trip count per loop depth so deeply
    nested statements dominate, matching their dynamic instance counts.
    Lower is better; the score is a deterministic function of the
    context and the block structure.

    Since the reuse-vocabulary pass landed this is a thin facade over
    {!Inl_reuse.Reuse}: the score is derived from the statement's
    canonicalized reuse signature (memoized process-wide), so scoring a
    locality-equivalence class twice is a table lookup. *)

val static_score : ?line_elems:int -> Inl.context -> Inl.Blockstruct.t -> float
(** [line_elems] is the cache line size in array elements (default 8 =
    64-byte lines of 8-byte elements).  Statements whose per-statement
    transformation is singular (augmentation will add loops whose
    locality is unknown here) are charged the pessimistic cost [1] per
    reference; the search reports that degradation once per run as
    warning [S904]. *)

val collect_refs : Inl_ir.Ast.stmt -> Inl_ir.Ast.aref list
(** The statement's array references: left-hand side first, then every
    reference of the right-hand side in evaluation order. *)
