module Tf = Inl_fuzz.Tf
module Rng = Inl_fuzz.Rng
module Diag = Inl_diag.Diag
module Stats = Inl_diag.Stats
module Watchdog = Inl_diag.Watchdog
module Sigint = Inl_diag.Sigint
module Cachesim = Inl_cachesim.Cachesim
module Interp = Inl_interp.Interp
module Verify = Inl_verify.Verify
module Ast = Inl_ir.Ast
module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Layout = Inl_instance.Layout
module Dep = Inl_depend.Dep
module Pool = Inl_parallel.Pool
module Omega = Inl_presburger.Omega
module Reuse = Inl_reuse.Reuse
module Memo = Inl_reuse.Memo

type config = {
  beam : int;
  depth : int;
  finalists : int;
  size : int;
  seed : int;
  max_moves : int;
  cache : Cachesim.config;
  sim_max_steps : int;
}

let default_config =
  {
    beam = 8;
    depth = 3;
    finalists = 6;
    size = 48;
    seed = 0;
    max_moves = 64;
    cache = Cachesim.set_associative ~capacity_bytes:8192 ~line_bytes:64 ~assoc:2;
    sim_max_steps = 4_000_000;
  }

(* Incremental evaluation made candidates cheap enough to spend the
   reclaimed time on coverage: kernels with at least [widen_threshold]
   loop-plus-statement columns get a wider beam and one more move
   generation by default (explicit --beam/--depth always win). *)
let widen_threshold = 8

let config_for ?(base = default_config) (ctx : Inl.context) : config =
  if Layout.size ctx.Inl.layout >= widen_threshold then { base with beam = 12; depth = 4 }
  else base

type entry = {
  rank : int;
  recipe : Tf.t;
  static_score : float;
  misses : int option;
  accesses : int option;
  program : Ast.program option;
}

type funnel = {
  generated : int;
  materialize_failed : int;
  duplicate : int;
  illegal : int;
  scored : int;
  reuse_classes : int;
  reuse_pruned : int;
  simulated : int;
  sim_shared : int;
  sim_skipped : int;
}

type outcome = {
  entries : entry list;
  winner : entry option;
  winner_doall : int option;
  source_misses : int option;
  source_accesses : int option;
  diags : Diag.t list;
  funnel : funnel;
}

let recipe_line (t : Tf.t) : string =
  if t.Tf.partial <> [] then
    String.concat " "
      ("complete"
      :: List.map
           (fun row ->
             Printf.sprintf "row=[%s]" (String.concat "," (List.map string_of_int row)))
           t.Tf.partial)
  else if t.Tf.steps = [] then "identity"
  else String.concat "; " (List.map (fun (kind, spec) -> kind ^ " " ^ spec) t.Tf.steps)

(* ---- search states ---- *)

(* A live (legal) state of the beam.  Completion-seeded states are not
   extendable: the Tf format keeps completion rows and pipeline steps
   mutually exclusive so recipes stay replayable, and appending a step
   to a derived matrix has no recipe representation. *)
type state = {
  s_recipe : Tf.t;
  s_key : string;  (** recipe text, the deterministic tie-breaker *)
  s_matrix : Mat.t;
  s_structure : Inl.Blockstruct.t;
  s_unsatisfied : Dep.t list;
  s_score : float;
  s_sig_key : string;  (** canonical reuse-signature key (Inl_reuse) *)
  s_unknown_refs : int;  (** references scored pessimistically (singular T_S) *)
  s_extendable : bool;
  s_summary : Inl.Legality.summary option;
      (** per-dependence verdicts of this (legal) state, inherited by its
          children wherever a move leaves a dependence's inputs unchanged *)
}

(* Worker-side evaluation result; pure linear algebra and interval
   legality only, safe to fan out over the Pool. *)
type eval = Emat_failed of string | Eillegal of string | Elegal of state

let compare_static a b =
  match Float.compare a.s_score b.s_score with 0 -> compare a.s_key b.s_key | c -> c

let evaluate (env : Inl.Legality.env) (lcache : Inl.Legality.cache) ~extendable ?parent
    (recipe : Tf.t) ~(materialize : Tf.t -> (Mat.t, string) result)
    ~(signature : Inl.Blockstruct.t -> Mat.t -> Reuse.t) : eval =
  match materialize recipe with
  | Error msg -> Emat_failed msg
  | exception e -> Emat_failed (Printexc.to_string e)
  | Ok m -> (
      (* delta legality: verdicts whose inputs the move left untouched
         are inherited from the parent; the rest re-classify through the
         per-search cache and the process-wide verdict memo *)
      match Inl.Legality.check_env ~cache:lcache ?parent env m with
      | Inl.Legality.Illegal reason, _ -> Eillegal reason
      | Inl.Legality.Legal { structure; unsatisfied }, summary ->
          (* the reuse signature is memoized process-wide on canonical
             access/transformation matrices, so locality-equivalent
             candidates — and re-searches of the same program — score by
             table lookup from any worker domain *)
          let sg = signature structure m in
          Elegal
            {
              s_recipe = recipe;
              s_key = Tf.to_string recipe;
              s_matrix = m;
              s_structure = structure;
              s_unsatisfied = unsatisfied;
              s_score = Reuse.weighted_score sg;
              s_sig_key = Reuse.key sg;
              s_unknown_refs = Reuse.unknown_refs sg;
              s_extendable = extendable;
              s_summary = summary;
            })

(* ---- materialization memo ----

   Process-wide, mirroring the projection cache.  Step recipes are
   materialized incrementally: [pipe_memo] holds, per (program, step
   prefix), the accumulated matrix and intermediate layout of
   {!Inl.Pipeline}'s left-to-right composition, so a child candidate —
   its parent's recipe plus one move — looks its prefix up and pays for
   exactly one step build/multiply/infer.  The chain replicates
   [Tf.materialize]'s computation step for step, so the matrices are
   bit-identical to a cold materialization (the replay contract of
   [inltool apply] depends on this).  Completion recipes memoize the
   full completion result keyed on the exact dependence set.  Errors are
   memoized too: a prefix that fails against the program shape fails for
   every candidate sharing it. *)

let pipe_memo : (Mat.t * Layout.t, string) result Memo.t = Memo.create ~max_entries:8192 ()
let complete_memo : (Mat.t, string) result Memo.t = Memo.create ~max_entries:1024 ()

(* Front tier of the reuse-signature memo: keyed on the raw candidate
   matrix (cheap to render) instead of the canonical per-statement rows
   (whose computation is most of a signature lookup's cost).  Misses fall
   through to Inl_reuse's canonical memo, which still collapses
   locality-equivalent matrices. *)
let sig_memo : Reuse.t Memo.t = Memo.create ~max_entries:4096 ()

let set_mat_cache_enabled b =
  Memo.set_enabled pipe_memo b;
  Memo.set_enabled complete_memo b;
  Memo.set_enabled sig_memo b

let mat_cache_enabled () = Memo.enabled pipe_memo
let mat_cache_stats () = Memo.stats pipe_memo
let completion_cache_stats () = Memo.stats complete_memo

let steps_key steps =
  String.concat ";" (List.map (fun (kind, spec) -> kind ^ " " ^ spec) steps)

(* [init @ [last]] split; steps lists are short (one per generation). *)
let split_last steps =
  match List.rev steps with
  | [] -> invalid_arg "split_last"
  | last :: rev_init -> (List.rev rev_init, last)

let materialize_steps ~prog_key (ctx : Inl.context) (steps : (string * string) list) :
    (Mat.t, string) result =
  let layout0 = ctx.Inl.layout in
  let rec prefix steps : (Mat.t * Layout.t, string) result =
    match steps with
    | [] -> Ok (Mat.identity (Layout.size layout0), layout0)
    | _ ->
        Memo.memo pipe_memo (Printf.sprintf "pipe|%s|%s" prog_key (steps_key steps))
          (fun () ->
            let init, (kind, spec) = split_last steps in
            match prefix init with
            | Error _ as e -> e
            | Ok (acc, layout) -> (
                match Inl.Pipeline.step_of_spec ~kind spec with
                | Error e -> Error e
                | Ok step -> (
                    match Inl.Pipeline.extend layout acc step with
                    | Ok r -> Ok r
                    | Error ds -> Error (Diag.list_to_string ds))))
  in
  (* copy: the memoized matrix is shared by every candidate extending
     this prefix, and stored state matrices must be independent *)
  Result.map (fun (m, _) -> Mat.copy m) (prefix steps)

(* ---- trace tier ---- *)

(* Process-wide memos for the trace tier, mirroring the Omega projection
   cache: keys render everything the simulation depends on (program
   text, parameter bindings, cache geometry, array extents, step bound),
   so a hit is bit-identical to a recompute and the tables are safe to
   share across worker domains and across searches — a re-search of a
   known program (the benchmark's second pass, the serve daemon) skips
   straight past interpretation.  Failed simulations are never stored.
   Disabled together with the other caches by --no-cache. *)
let sim_memo : Cachesim.stats Memo.t = Memo.create ~max_entries:512 ()
let arrays_memo : (string * int list) list Memo.t = Memo.create ~max_entries:256 ()

let set_trace_cache_enabled b =
  Memo.set_enabled sim_memo b;
  Memo.set_enabled arrays_memo b

(* Forget every process-wide search memo (materialization, completion,
   signature front tier, simulation, extents).  The corpus runner calls
   this at each kernel boundary so every per-kernel record is measured
   against cold caches — a resumed run that skips completed kernels then
   reproduces the remaining records byte-identically. *)
let clear_process_memos () =
  Memo.clear pipe_memo;
  Memo.clear complete_memo;
  Memo.clear sig_memo;
  Memo.clear sim_memo;
  Memo.clear arrays_memo

let trace_cache_enabled () = Memo.enabled sim_memo
let trace_cache_stats () = Memo.stats sim_memo

let params_key params =
  String.concat "," (List.map (fun (p, v) -> p ^ "=" ^ string_of_int v) params)

let arrays_key arrays =
  String.concat ";"
    (List.map
       (fun (a, dims) -> a ^ ":" ^ String.concat "," (List.map string_of_int dims))
       arrays)

(* Array extents for the trace tier, measured by running the source once
   and recording the largest subscript per dimension: a legal candidate
   executes exactly the source's statement instances, so it touches
   exactly the same cells.  Tight extents matter — padding would change
   the line/set geometry and make the miss counts incomparable with
   traces of the untransformed variants.  Falls back to a static
   [size + 2] slop per dimension when the source itself cannot be traced
   (out-of-range subscripts, step limit). *)
let arrays_of (config : config) (prog : Ast.program) ~params : (string * int list) list =
  Memo.memo arrays_memo
    (Printf.sprintf "arrays|%s|%d|%d|%s" (params_key params) config.size config.sim_max_steps
       (Inl.Pp.program_to_string prog))
  @@ fun () ->
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let dims : (string, int array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_, (s : Ast.stmt)) ->
      List.iter
        (fun (r : Ast.aref) ->
          if not (Hashtbl.mem seen r.Ast.array) then begin
            Hashtbl.add seen r.Ast.array ();
            Hashtbl.add dims r.Ast.array (Array.make (List.length r.Ast.index) 0);
            order := r.Ast.array :: !order
          end)
        (Reuse.collect_refs s))
    (Ast.stmts_with_paths prog);
  let fallback () =
    List.rev_map
      (fun name ->
        (name, Array.to_list (Array.map (fun _ -> config.size + 2) (Hashtbl.find dims name))))
      !order
  in
  let trace (a : Interp.access) =
    match Hashtbl.find_opt dims a.Interp.array with
    | None -> ()
    | Some d -> List.iteri (fun i x -> if i < Array.length d && x > d.(i) then d.(i) <- x) a.Interp.index
  in
  match Interp.run ~trace ~max_steps:config.sim_max_steps prog ~params with
  | _ -> List.rev_map (fun name -> (name, Array.to_list (Hashtbl.find dims name))) !order
  | exception (Invalid_argument _ | Interp.Step_limit _) -> fallback ()

let simulate (config : config) ~arrays ~params (prog : Ast.program) : Cachesim.stats option =
  let key =
    Printf.sprintf "sim|%d/%d/%d|%s|%d|%s|%s" (Cachesim.line_bytes config.cache)
      (Cachesim.sets config.cache) (Cachesim.assoc config.cache) (params_key params)
      config.sim_max_steps (arrays_key arrays)
      (Inl.Pp.program_to_string prog)
  in
  match Memo.find sim_memo key with
  | Some stats -> Some stats
  | None -> (
      match
        Cachesim.simulate_program config.cache arrays ~max_steps:config.sim_max_steps prog
          ~params
      with
      | stats ->
          Memo.add sim_memo key stats;
          Some stats
      | exception (Invalid_argument _ | Interp.Step_limit _) -> None)

(* ---- the search ---- *)

let optimize ?(config = default_config) (ctx : Inl.context) : outcome =
  Stats.timed "search" @@ fun () ->
  let diags = ref [] in
  let warn code fmt = Format.kasprintf (fun m -> diags := Diag.warning ~code ~phase:Diag.Search m :: !diags) fmt in
  let lcache = Inl.Legality.make_cache () in
  let generated = ref 0
  and materialize_failed = ref 0
  and duplicate = ref 0
  and illegal = ref 0
  and scored = ref 0
  and reuse_classes = ref 0
  and reuse_pruned = ref 0
  and degraded_scores = ref 0
  and unknown_refs_total = ref 0
  and simulated = ref 0
  and sim_shared = ref 0
  and sim_skipped = ref 0 in
  let memo_hits_before = (Reuse.memo_stats ()).Memo.hits in
  let lmemo_hits_before = (Inl.Legality.memo_stats ()).Memo.hits in
  let mat_hits_before =
    (mat_cache_stats ()).Memo.hits + (completion_cache_stats ()).Memo.hits
  in
  let delta_inherited_before, delta_checked_before = Inl.Legality.delta_stats () in
  let seen : (int list list, unit) Hashtbl.t = Hashtbl.create 64 in
  (* Reuse-signature equivalence classes of this search's legal
     candidates: the first member of a class pays for the scoring, every
     later member is a memo lookup and counts as pruned. *)
  let sig_classes : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let all_legal = ref [] in
  (* Collect one generation's evaluations in input order: count the
     funnel, drop duplicates by materialized matrix, keep fresh legal
     states. *)
  let collect (evals : eval list) : state list =
    List.filter_map
      (fun e ->
        incr generated;
        match e with
        | Emat_failed _ ->
            incr materialize_failed;
            None
        | Eillegal _ ->
            incr illegal;
            None
        | Elegal st ->
            let key = Mat.to_int_lists st.s_matrix in
            if Hashtbl.mem seen key then begin
              incr duplicate;
              None
            end
            else begin
              Hashtbl.add seen key ();
              incr scored;
              if Hashtbl.mem sig_classes st.s_sig_key then incr reuse_pruned
              else begin
                Hashtbl.add sig_classes st.s_sig_key ();
                incr reuse_classes
              end;
              if st.s_unknown_refs > 0 then begin
                incr degraded_scores;
                unknown_refs_total := !unknown_refs_total + st.s_unknown_refs
              end;
              all_legal := st :: !all_legal;
              Some st
            end)
      evals
  in
  (* Keys identifying this program for the process-wide materialization
     memos; computed once per search.  The completion key also renders
     the exact dependence set — under a different budget the same source
     can analyze to different (approximate) dependences, and completion
     reads them. *)
  let prog_key = Inl.Pp.program_to_string ctx.Inl.program in
  let deps_key = String.concat "&" (List.map Inl.Legality.dep_id ctx.Inl.deps) in
  let materialize (recipe : Tf.t) : (Mat.t, string) result =
    if recipe.Tf.edits <> [] then Tf.materialize ctx recipe
    else
      match (recipe.Tf.partial, recipe.Tf.steps) with
      | [], [] -> Tf.materialize ctx recipe
      | _ :: _, _ :: _ -> Tf.materialize ctx recipe (* the mixed-recipe error path *)
      | _ :: _, [] ->
          Result.map Mat.copy
            (Memo.memo complete_memo
               (Printf.sprintf "complete|%s|%s|%s" prog_key deps_key (Tf.to_string recipe))
               (fun () -> Tf.materialize ctx recipe))
      | [], steps -> materialize_steps ~prog_key ctx steps
  in
  let matrix_key m =
    String.concat "/"
      (List.map
         (fun row -> String.concat "," (List.map string_of_int row))
         (Mat.to_int_lists m))
  in
  let signature structure m =
    Memo.memo sig_memo
      (Printf.sprintf "sig|%s|%s" prog_key (matrix_key m))
      (fun () -> Reuse.signature ctx structure)
  in
  let env = Inl.Legality.make_env ctx.Inl.layout ctx.Inl.deps in
  (* Generation 0: the identity, then the completion-derived seeds.
     Completion itself fans out over the Pool, so seeds materialize on
     the calling domain. *)
  let identity_recipe = { Tf.steps = []; partial = []; edits = [] } in
  let seed_recipes =
    Inl.Completion.seed_rows ctx.Inl.layout
    |> List.map (fun row ->
           {
             Tf.steps = [];
             partial = [ Array.to_list (Vec.to_int_array row) ];
             edits = [];
           })
  in
  let gen0 =
    collect
      (List.map
         (fun (recipe, extendable) ->
           evaluate env lcache ~extendable recipe ~materialize ~signature)
         ((identity_recipe, true) :: List.map (fun r -> (r, false)) seed_recipes))
  in
  let beam = ref (List.to_seq (List.sort compare_static gen0) |> Seq.take config.beam |> List.of_seq) in
  (* Move generations: expand every extendable beam state by one step,
     evaluate the whole generation over the Pool in input order. *)
  (try
     for gen = 1 to config.depth do
       Watchdog.poll ();
       (* like the watchdog, a pending SIGINT is honoured at generation
          boundaries: the CLI flushes partial stats and exits 130
          instead of dying mid-search *)
       Sigint.check ();
       let rng = Rng.case ~seed:config.seed ~index:gen in
       (* One fan-out unit is a (parent, chunk-of-child-recipes) pair:
          the chunk amortizes the per-task cost (the parent's prefix
          matrix is one memo lookup away, its verdict summary one
          pointer) across ~chunk_size candidates instead of paying it
          per candidate.  Chunks are built and concatenated in beam
          order, so the eval list is byte-identical to the old
          one-task-per-candidate fan-out at any --jobs. *)
       let chunk_size = 16 in
       let expansions =
         List.concat_map
           (fun st ->
             if not st.s_extendable then []
             else
               let moves =
                 Moves.enumerate st.s_structure.Inl.Blockstruct.new_program
               in
               let moves =
                 if List.length moves <= config.max_moves then moves
                 else Rng.shuffle rng moves |> List.filteri (fun i _ -> i < config.max_moves)
               in
               let recipes =
                 List.map
                   (fun mv ->
                     (* a move is a step list — compound moves (the
                        wavefront pair) append as one unit *)
                     { Tf.steps = st.s_recipe.Tf.steps @ mv; partial = []; edits = [] })
                   moves
               in
               let rec chunk = function
                 | [] -> []
                 | rs ->
                     let taken = List.filteri (fun i _ -> i < chunk_size) rs in
                     let rest = List.filteri (fun i _ -> i >= chunk_size) rs in
                     (st, taken) :: chunk rest
               in
               chunk recipes)
           !beam
       in
       if expansions = [] then raise Exit;
       let evals =
         Pool.map
           (fun (parent, recipes) ->
             List.map
               (fun recipe ->
                 evaluate env lcache ~extendable:true ?parent:parent.s_summary recipe
                   ~materialize ~signature)
               recipes)
           expansions
         |> List.concat
       in
       let fresh = collect evals in
       (* the next beam draws from everything alive, so a strong seed or
          parent survives a generation of weak children *)
       let pool = List.sort_uniq compare_static (fresh @ !beam) in
       beam := List.to_seq pool |> Seq.take config.beam |> List.of_seq
     done
   with Exit -> ());
  (* The satellite of degraded scoring: candidates containing a
     singular per-statement transformation are charged the pessimistic
     cost, once silently — now a one-time typed warning per run. *)
  if !degraded_scores > 0 then
    warn "S904"
      "static scoring degraded for %d candidate(s): %d reference(s) under a singular \
       per-statement transformation charged the pessimistic cost"
      !degraded_scores !unknown_refs_total;
  (* ---- finalists: static ranking, then the trace tier ---- *)
  let ranked_static = List.sort compare_static !all_legal in
  let finalists =
    List.to_seq ranked_static |> Seq.take (max 1 config.finalists) |> List.of_seq
  in
  let params = List.map (fun p -> (p, config.size)) ctx.Inl.program.Ast.params in
  let arrays = arrays_of config ctx.Inl.program ~params in
  (* Code generation touches the shared Omega core, so finalists generate
     on the calling domain (the solver cache keeps repeats cheap);
     simulation is pure and fans out. *)
  let programs =
    List.map
      (fun st ->
        Watchdog.poll ();
        match
          Stats.timed "codegen" (fun () ->
              Inl.Simplify.simplify
                (Inl.Codegen.generate st.s_structure ~unsatisfied:st.s_unsatisfied))
        with
        | prog -> Some prog
        | exception Inl.Codegen.Codegen_error msg ->
            warn "S901" "codegen failed for candidate '%s': %s; degraded to the static tier"
              (recipe_line st.s_recipe) msg;
            None
        | exception Omega.Blowup msg ->
            warn "S901"
              "resource budget exhausted generating candidate '%s': %s; degraded to the static \
               tier"
              (recipe_line st.s_recipe) msg;
            None)
      finalists
  in
  (* The trace tier simulates one representative per reuse-signature
     class: the best-ranked finalist of a class that survived code
     generation pays for the simulation, the others inherit its miss
     counts (their per-statement innermost behavior is identical by
     construction; the final ranking still breaks ties on the static
     tier and the recipe text, so sharing preserves determinism). *)
  let fin_arr = Array.of_list finalists in
  let prog_arr = Array.of_list programs in
  let rep_table : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i st ->
      if prog_arr.(i) <> None && not (Hashtbl.mem rep_table st.s_sig_key) then
        Hashtbl.add rep_table st.s_sig_key i)
    fin_arr;
  let sim_inputs =
    Some ctx.Inl.program
    :: Array.to_list
         (Array.mapi
            (fun i p ->
              if p <> None && Hashtbl.find rep_table fin_arr.(i).s_sig_key = i then p
              else None)
            prog_arr)
  in
  let sims =
    Stats.timed "simulate" (fun () ->
        Pool.map
          (function
            | None -> None
            | Some prog -> simulate config ~arrays ~params prog)
          sim_inputs)
  in
  let source_sim, rep_sims =
    match sims with s :: rest -> (s, Array.of_list rest) | [] -> (None, [||])
  in
  let scored_entries =
    Array.to_list
      (Array.mapi
         (fun i st ->
           let prog = prog_arr.(i) in
           let rep = match prog with None -> i | Some _ -> Hashtbl.find rep_table st.s_sig_key in
           let sim = match prog with None -> None | Some _ -> rep_sims.(rep) in
           (match (prog, sim) with
           | Some _, None when rep = i ->
               incr sim_skipped;
               warn "S903"
                 "simulation skipped for candidate '%s' (out-of-range access or step limit)"
                 (recipe_line st.s_recipe)
           | _ -> ());
           if prog <> None && rep <> i then incr sim_shared;
           if sim <> None && rep = i then incr simulated;
           {
             rank = 0;
             recipe = st.s_recipe;
             static_score = st.s_score;
             misses = Option.map (fun (s : Cachesim.stats) -> s.Cachesim.misses) sim;
             accesses = Option.map (fun (s : Cachesim.stats) -> s.Cachesim.accesses) sim;
             program = prog;
           })
         fin_arr)
  in
  (* Final order: simulated candidates by misses, then the rest by the
     static tier; every tie breaks on the recipe text. *)
  let key (e : entry) =
    match e.misses with
    | Some m -> (0, m, e.static_score, Tf.to_string e.recipe)
    | None -> (1, 0, e.static_score, Tf.to_string e.recipe)
  in
  let entries =
    List.sort (fun a b -> compare (key a) (key b)) scored_entries
    |> List.mapi (fun i e -> { e with rank = i + 1 })
  in
  (* ---- the Inl_verify gate: the winner is the best-ranked finalist
     whose generated code passes translation validation ---- *)
  let winner_doall = ref None in
  let winner =
    List.find_opt
      (fun e ->
        match e.program with
        | None -> false
        | Some prog ->
            Watchdog.poll ();
            let report = Verify.run ~against:ctx.Inl.program prog in
            let vds = Verify.diags report in
            if Diag.has_errors vds then begin
              warn "S902" "candidate '%s' failed translation validation: %s"
                (recipe_line e.recipe)
                (Diag.list_to_string (List.filter (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) vds));
              false
            end
            else begin
              (* keep degradation warnings from the winner's validation *)
              diags := List.rev_append (List.filter (fun (d : Diag.t) -> d.Diag.severity = Diag.Warning) vds) !diags;
              (* the winner's validation already ran the DOALL analysis;
                 record how many of its loops are provably parallel so
                 the CLI and the corpus can track parallelizability *)
              winner_doall :=
                Some
                  (List.length
                     (List.filter
                        (fun (_, _, s) -> s = Inl_verify.Doall.Parallel)
                        report.Verify.loops));
              true
            end)
      entries
  in
  if winner = None then
    diags :=
      Diag.error ~code:"S801" ~phase:Diag.Search
        "search produced no verified winner (no legal candidate survived code generation and \
         translation validation)"
      :: !diags;
  let funnel =
    {
      generated = !generated;
      materialize_failed = !materialize_failed;
      duplicate = !duplicate;
      illegal = !illegal;
      scored = !scored;
      reuse_classes = !reuse_classes;
      reuse_pruned = !reuse_pruned;
      simulated = !simulated;
      sim_shared = !sim_shared;
      sim_skipped = !sim_skipped;
    }
  in
  Stats.count "search.generated" funnel.generated;
  Stats.count "search.materialize-failed" funnel.materialize_failed;
  Stats.count "search.duplicate" funnel.duplicate;
  Stats.count "search.pruned-illegal" funnel.illegal;
  Stats.count "search.scored-static" funnel.scored;
  Stats.count "search.reuse.classes" funnel.reuse_classes;
  Stats.count "search.reuse.pruned" funnel.reuse_pruned;
  Stats.count "search.reuse.memo_hits" ((Reuse.memo_stats ()).Memo.hits - memo_hits_before);
  (let inh, chk = Inl.Legality.delta_stats () in
   Stats.count "search.legality.delta-inherited" (inh - delta_inherited_before);
   Stats.count "search.legality.delta-checked" (chk - delta_checked_before));
  Stats.count "search.legality.memo_hits"
    ((Inl.Legality.memo_stats ()).Memo.hits - lmemo_hits_before);
  Stats.count "search.mat.memo_hits"
    ((mat_cache_stats ()).Memo.hits + (completion_cache_stats ()).Memo.hits
   - mat_hits_before);
  Stats.count "search.score-degraded" !degraded_scores;
  Stats.count "search.simulated" funnel.simulated;
  Stats.count "search.sim-shared" funnel.sim_shared;
  Stats.count "search.sim-skipped" funnel.sim_skipped;
  {
    entries;
    winner;
    winner_doall = !winner_doall;
    source_misses = Option.map (fun (s : Cachesim.stats) -> s.Cachesim.misses) source_sim;
    source_accesses = Option.map (fun (s : Cachesim.stats) -> s.Cachesim.accesses) source_sim;
    diags = List.rev !diags;
    funnel;
  }
