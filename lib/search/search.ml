module Tf = Inl_fuzz.Tf
module Rng = Inl_fuzz.Rng
module Diag = Inl_diag.Diag
module Stats = Inl_diag.Stats
module Watchdog = Inl_diag.Watchdog
module Cachesim = Inl_cachesim.Cachesim
module Interp = Inl_interp.Interp
module Verify = Inl_verify.Verify
module Ast = Inl_ir.Ast
module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Layout = Inl_instance.Layout
module Dep = Inl_depend.Dep
module Pool = Inl_parallel.Pool
module Omega = Inl_presburger.Omega
module Reuse = Inl_reuse.Reuse
module Memo = Inl_reuse.Memo

type config = {
  beam : int;
  depth : int;
  finalists : int;
  size : int;
  seed : int;
  max_moves : int;
  cache : Cachesim.config;
  sim_max_steps : int;
}

let default_config =
  {
    beam = 8;
    depth = 3;
    finalists = 6;
    size = 48;
    seed = 0;
    max_moves = 64;
    cache = Cachesim.set_associative ~capacity_bytes:8192 ~line_bytes:64 ~assoc:2;
    sim_max_steps = 4_000_000;
  }

type entry = {
  rank : int;
  recipe : Tf.t;
  static_score : float;
  misses : int option;
  accesses : int option;
  program : Ast.program option;
}

type funnel = {
  generated : int;
  materialize_failed : int;
  duplicate : int;
  illegal : int;
  scored : int;
  reuse_classes : int;
  reuse_pruned : int;
  simulated : int;
  sim_shared : int;
  sim_skipped : int;
}

type outcome = {
  entries : entry list;
  winner : entry option;
  source_misses : int option;
  source_accesses : int option;
  diags : Diag.t list;
  funnel : funnel;
}

let recipe_line (t : Tf.t) : string =
  if t.Tf.partial <> [] then
    String.concat " "
      ("complete"
      :: List.map
           (fun row ->
             Printf.sprintf "row=[%s]" (String.concat "," (List.map string_of_int row)))
           t.Tf.partial)
  else if t.Tf.steps = [] then "identity"
  else String.concat "; " (List.map (fun (kind, spec) -> kind ^ " " ^ spec) t.Tf.steps)

(* ---- search states ---- *)

(* A live (legal) state of the beam.  Completion-seeded states are not
   extendable: the Tf format keeps completion rows and pipeline steps
   mutually exclusive so recipes stay replayable, and appending a step
   to a derived matrix has no recipe representation. *)
type state = {
  s_recipe : Tf.t;
  s_key : string;  (** recipe text, the deterministic tie-breaker *)
  s_matrix : Mat.t;
  s_structure : Inl.Blockstruct.t;
  s_unsatisfied : Dep.t list;
  s_score : float;
  s_sig_key : string;  (** canonical reuse-signature key (Inl_reuse) *)
  s_unknown_refs : int;  (** references scored pessimistically (singular T_S) *)
  s_extendable : bool;
}

(* Worker-side evaluation result; pure linear algebra and interval
   legality only, safe to fan out over the Pool. *)
type eval = Emat_failed of string | Eillegal of string | Elegal of state

let compare_static a b =
  match Float.compare a.s_score b.s_score with 0 -> compare a.s_key b.s_key | c -> c

let evaluate (ctx : Inl.context) (lcache : Inl.Legality.cache) ~extendable (recipe : Tf.t)
    ~(materialize : Tf.t -> (Mat.t, string) result) : eval =
  match materialize recipe with
  | Error msg -> Emat_failed msg
  | exception e -> Emat_failed (Printexc.to_string e)
  | Ok m -> (
      match Inl.Legality.check ~cache:lcache ctx.Inl.layout m ctx.Inl.deps with
      | Inl.Legality.Illegal reason -> Eillegal reason
      | Inl.Legality.Legal { structure; unsatisfied } ->
          (* the reuse signature is memoized process-wide on canonical
             access/transformation matrices, so locality-equivalent
             candidates — and re-searches of the same program — score by
             table lookup from any worker domain *)
          let sg = Reuse.signature ctx structure in
          Elegal
            {
              s_recipe = recipe;
              s_key = Tf.to_string recipe;
              s_matrix = m;
              s_structure = structure;
              s_unsatisfied = unsatisfied;
              s_score = Reuse.score sg;
              s_sig_key = Reuse.key sg;
              s_unknown_refs = Reuse.unknown_refs sg;
              s_extendable = extendable;
            })

(* ---- trace tier ---- *)

(* Process-wide memos for the trace tier, mirroring the Omega projection
   cache: keys render everything the simulation depends on (program
   text, parameter bindings, cache geometry, array extents, step bound),
   so a hit is bit-identical to a recompute and the tables are safe to
   share across worker domains and across searches — a re-search of a
   known program (the benchmark's second pass, the serve daemon) skips
   straight past interpretation.  Failed simulations are never stored.
   Disabled together with the other caches by --no-cache. *)
let sim_memo : Cachesim.stats Memo.t = Memo.create ~max_entries:512 ()
let arrays_memo : (string * int list) list Memo.t = Memo.create ~max_entries:256 ()

let set_trace_cache_enabled b =
  Memo.set_enabled sim_memo b;
  Memo.set_enabled arrays_memo b

let trace_cache_enabled () = Memo.enabled sim_memo
let trace_cache_stats () = Memo.stats sim_memo

let params_key params =
  String.concat "," (List.map (fun (p, v) -> p ^ "=" ^ string_of_int v) params)

let arrays_key arrays =
  String.concat ";"
    (List.map
       (fun (a, dims) -> a ^ ":" ^ String.concat "," (List.map string_of_int dims))
       arrays)

(* Array extents for the trace tier, measured by running the source once
   and recording the largest subscript per dimension: a legal candidate
   executes exactly the source's statement instances, so it touches
   exactly the same cells.  Tight extents matter — padding would change
   the line/set geometry and make the miss counts incomparable with
   traces of the untransformed variants.  Falls back to a static
   [size + 2] slop per dimension when the source itself cannot be traced
   (out-of-range subscripts, step limit). *)
let arrays_of (config : config) (prog : Ast.program) ~params : (string * int list) list =
  Memo.memo arrays_memo
    (Printf.sprintf "arrays|%s|%d|%d|%s" (params_key params) config.size config.sim_max_steps
       (Inl.Pp.program_to_string prog))
  @@ fun () ->
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let dims : (string, int array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_, (s : Ast.stmt)) ->
      List.iter
        (fun (r : Ast.aref) ->
          if not (Hashtbl.mem seen r.Ast.array) then begin
            Hashtbl.add seen r.Ast.array ();
            Hashtbl.add dims r.Ast.array (Array.make (List.length r.Ast.index) 0);
            order := r.Ast.array :: !order
          end)
        (Cost.collect_refs s))
    (Ast.stmts_with_paths prog);
  let fallback () =
    List.rev_map
      (fun name ->
        (name, Array.to_list (Array.map (fun _ -> config.size + 2) (Hashtbl.find dims name))))
      !order
  in
  let trace (a : Interp.access) =
    match Hashtbl.find_opt dims a.Interp.array with
    | None -> ()
    | Some d -> List.iteri (fun i x -> if i < Array.length d && x > d.(i) then d.(i) <- x) a.Interp.index
  in
  match Interp.run ~trace ~max_steps:config.sim_max_steps prog ~params with
  | _ -> List.rev_map (fun name -> (name, Array.to_list (Hashtbl.find dims name))) !order
  | exception (Invalid_argument _ | Interp.Step_limit _) -> fallback ()

let simulate (config : config) ~arrays ~params (prog : Ast.program) : Cachesim.stats option =
  let key =
    Printf.sprintf "sim|%d/%d/%d|%s|%d|%s|%s" (Cachesim.line_bytes config.cache)
      (Cachesim.sets config.cache) (Cachesim.assoc config.cache) (params_key params)
      config.sim_max_steps (arrays_key arrays)
      (Inl.Pp.program_to_string prog)
  in
  match Memo.find sim_memo key with
  | Some stats -> Some stats
  | None -> (
      match
        Cachesim.simulate_program config.cache arrays ~max_steps:config.sim_max_steps prog
          ~params
      with
      | stats ->
          Memo.add sim_memo key stats;
          Some stats
      | exception (Invalid_argument _ | Interp.Step_limit _) -> None)

(* ---- the search ---- *)

let optimize ?(config = default_config) (ctx : Inl.context) : outcome =
  Stats.timed "search" @@ fun () ->
  let diags = ref [] in
  let warn code fmt = Format.kasprintf (fun m -> diags := Diag.warning ~code ~phase:Diag.Search m :: !diags) fmt in
  let lcache = Inl.Legality.make_cache () in
  let generated = ref 0
  and materialize_failed = ref 0
  and duplicate = ref 0
  and illegal = ref 0
  and scored = ref 0
  and reuse_classes = ref 0
  and reuse_pruned = ref 0
  and degraded_scores = ref 0
  and unknown_refs_total = ref 0
  and simulated = ref 0
  and sim_shared = ref 0
  and sim_skipped = ref 0 in
  let memo_hits_before = (Reuse.memo_stats ()).Memo.hits in
  let seen : (int list list, unit) Hashtbl.t = Hashtbl.create 64 in
  (* Reuse-signature equivalence classes of this search's legal
     candidates: the first member of a class pays for the scoring, every
     later member is a memo lookup and counts as pruned. *)
  let sig_classes : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let all_legal = ref [] in
  (* Collect one generation's evaluations in input order: count the
     funnel, drop duplicates by materialized matrix, keep fresh legal
     states. *)
  let collect (evals : eval list) : state list =
    List.filter_map
      (fun e ->
        incr generated;
        match e with
        | Emat_failed _ ->
            incr materialize_failed;
            None
        | Eillegal _ ->
            incr illegal;
            None
        | Elegal st ->
            let key = Mat.to_int_lists st.s_matrix in
            if Hashtbl.mem seen key then begin
              incr duplicate;
              None
            end
            else begin
              Hashtbl.add seen key ();
              incr scored;
              if Hashtbl.mem sig_classes st.s_sig_key then incr reuse_pruned
              else begin
                Hashtbl.add sig_classes st.s_sig_key ();
                incr reuse_classes
              end;
              if st.s_unknown_refs > 0 then begin
                incr degraded_scores;
                unknown_refs_total := !unknown_refs_total + st.s_unknown_refs
              end;
              all_legal := st :: !all_legal;
              Some st
            end)
      evals
  in
  let materialize recipe = Tf.materialize ctx recipe in
  (* Generation 0: the identity, then the completion-derived seeds.
     Completion itself fans out over the Pool, so seeds materialize on
     the calling domain. *)
  let identity_recipe = { Tf.steps = []; partial = []; edits = [] } in
  let seed_recipes =
    Inl.Completion.seed_rows ctx.Inl.layout
    |> List.map (fun row ->
           {
             Tf.steps = [];
             partial = [ Array.to_list (Vec.to_int_array row) ];
             edits = [];
           })
  in
  let gen0 =
    collect
      (List.map
         (fun (recipe, extendable) -> evaluate ctx lcache ~extendable recipe ~materialize)
         ((identity_recipe, true) :: List.map (fun r -> (r, false)) seed_recipes))
  in
  let beam = ref (List.to_seq (List.sort compare_static gen0) |> Seq.take config.beam |> List.of_seq) in
  (* Move generations: expand every extendable beam state by one step,
     evaluate the whole generation over the Pool in input order. *)
  (try
     for gen = 1 to config.depth do
       Watchdog.poll ();
       let rng = Rng.case ~seed:config.seed ~index:gen in
       let expansions =
         List.concat_map
           (fun st ->
             if not st.s_extendable then []
             else
               let moves =
                 Moves.enumerate st.s_structure.Inl.Blockstruct.new_program
               in
               let moves =
                 if List.length moves <= config.max_moves then moves
                 else Rng.shuffle rng moves |> List.filteri (fun i _ -> i < config.max_moves)
               in
               List.map
                 (fun mv -> { Tf.steps = st.s_recipe.Tf.steps @ [ mv ]; partial = []; edits = [] })
                 moves)
           !beam
       in
       if expansions = [] then raise Exit;
       let evals =
         Pool.map
           (fun recipe -> evaluate ctx lcache ~extendable:true recipe ~materialize)
           expansions
       in
       let fresh = collect evals in
       (* the next beam draws from everything alive, so a strong seed or
          parent survives a generation of weak children *)
       let pool = List.sort_uniq compare_static (fresh @ !beam) in
       beam := List.to_seq pool |> Seq.take config.beam |> List.of_seq
     done
   with Exit -> ());
  (* The satellite of degraded scoring: candidates containing a
     singular per-statement transformation are charged the pessimistic
     cost, once silently — now a one-time typed warning per run. *)
  if !degraded_scores > 0 then
    warn "S904"
      "static scoring degraded for %d candidate(s): %d reference(s) under a singular \
       per-statement transformation charged the pessimistic cost"
      !degraded_scores !unknown_refs_total;
  (* ---- finalists: static ranking, then the trace tier ---- *)
  let ranked_static = List.sort compare_static !all_legal in
  let finalists =
    List.to_seq ranked_static |> Seq.take (max 1 config.finalists) |> List.of_seq
  in
  let params = List.map (fun p -> (p, config.size)) ctx.Inl.program.Ast.params in
  let arrays = arrays_of config ctx.Inl.program ~params in
  (* Code generation touches the shared Omega core, so finalists generate
     on the calling domain (the solver cache keeps repeats cheap);
     simulation is pure and fans out. *)
  let programs =
    List.map
      (fun st ->
        Watchdog.poll ();
        match
          Stats.timed "codegen" (fun () ->
              Inl.Simplify.simplify
                (Inl.Codegen.generate st.s_structure ~unsatisfied:st.s_unsatisfied))
        with
        | prog -> Some prog
        | exception Inl.Codegen.Codegen_error msg ->
            warn "S901" "codegen failed for candidate '%s': %s; degraded to the static tier"
              (recipe_line st.s_recipe) msg;
            None
        | exception Omega.Blowup msg ->
            warn "S901"
              "resource budget exhausted generating candidate '%s': %s; degraded to the static \
               tier"
              (recipe_line st.s_recipe) msg;
            None)
      finalists
  in
  (* The trace tier simulates one representative per reuse-signature
     class: the best-ranked finalist of a class that survived code
     generation pays for the simulation, the others inherit its miss
     counts (their per-statement innermost behavior is identical by
     construction; the final ranking still breaks ties on the static
     tier and the recipe text, so sharing preserves determinism). *)
  let fin_arr = Array.of_list finalists in
  let prog_arr = Array.of_list programs in
  let rep_table : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i st ->
      if prog_arr.(i) <> None && not (Hashtbl.mem rep_table st.s_sig_key) then
        Hashtbl.add rep_table st.s_sig_key i)
    fin_arr;
  let sim_inputs =
    Some ctx.Inl.program
    :: Array.to_list
         (Array.mapi
            (fun i p ->
              if p <> None && Hashtbl.find rep_table fin_arr.(i).s_sig_key = i then p
              else None)
            prog_arr)
  in
  let sims =
    Stats.timed "simulate" (fun () ->
        Pool.map
          (function
            | None -> None
            | Some prog -> simulate config ~arrays ~params prog)
          sim_inputs)
  in
  let source_sim, rep_sims =
    match sims with s :: rest -> (s, Array.of_list rest) | [] -> (None, [||])
  in
  let scored_entries =
    Array.to_list
      (Array.mapi
         (fun i st ->
           let prog = prog_arr.(i) in
           let rep = match prog with None -> i | Some _ -> Hashtbl.find rep_table st.s_sig_key in
           let sim = match prog with None -> None | Some _ -> rep_sims.(rep) in
           (match (prog, sim) with
           | Some _, None when rep = i ->
               incr sim_skipped;
               warn "S903"
                 "simulation skipped for candidate '%s' (out-of-range access or step limit)"
                 (recipe_line st.s_recipe)
           | _ -> ());
           if prog <> None && rep <> i then incr sim_shared;
           if sim <> None && rep = i then incr simulated;
           {
             rank = 0;
             recipe = st.s_recipe;
             static_score = st.s_score;
             misses = Option.map (fun (s : Cachesim.stats) -> s.Cachesim.misses) sim;
             accesses = Option.map (fun (s : Cachesim.stats) -> s.Cachesim.accesses) sim;
             program = prog;
           })
         fin_arr)
  in
  (* Final order: simulated candidates by misses, then the rest by the
     static tier; every tie breaks on the recipe text. *)
  let key (e : entry) =
    match e.misses with
    | Some m -> (0, m, e.static_score, Tf.to_string e.recipe)
    | None -> (1, 0, e.static_score, Tf.to_string e.recipe)
  in
  let entries =
    List.sort (fun a b -> compare (key a) (key b)) scored_entries
    |> List.mapi (fun i e -> { e with rank = i + 1 })
  in
  (* ---- the Inl_verify gate: the winner is the best-ranked finalist
     whose generated code passes translation validation ---- *)
  let winner =
    List.find_opt
      (fun e ->
        match e.program with
        | None -> false
        | Some prog ->
            Watchdog.poll ();
            let report = Verify.run ~against:ctx.Inl.program prog in
            let vds = Verify.diags report in
            if Diag.has_errors vds then begin
              warn "S902" "candidate '%s' failed translation validation: %s"
                (recipe_line e.recipe)
                (Diag.list_to_string (List.filter (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) vds));
              false
            end
            else begin
              (* keep degradation warnings from the winner's validation *)
              diags := List.rev_append (List.filter (fun (d : Diag.t) -> d.Diag.severity = Diag.Warning) vds) !diags;
              true
            end)
      entries
  in
  if winner = None then
    diags :=
      Diag.error ~code:"S801" ~phase:Diag.Search
        "search produced no verified winner (no legal candidate survived code generation and \
         translation validation)"
      :: !diags;
  let funnel =
    {
      generated = !generated;
      materialize_failed = !materialize_failed;
      duplicate = !duplicate;
      illegal = !illegal;
      scored = !scored;
      reuse_classes = !reuse_classes;
      reuse_pruned = !reuse_pruned;
      simulated = !simulated;
      sim_shared = !sim_shared;
      sim_skipped = !sim_skipped;
    }
  in
  Stats.count "search.generated" funnel.generated;
  Stats.count "search.materialize-failed" funnel.materialize_failed;
  Stats.count "search.duplicate" funnel.duplicate;
  Stats.count "search.pruned-illegal" funnel.illegal;
  Stats.count "search.scored-static" funnel.scored;
  Stats.count "search.reuse.classes" funnel.reuse_classes;
  Stats.count "search.reuse.pruned" funnel.reuse_pruned;
  Stats.count "search.reuse.memo_hits" ((Reuse.memo_stats ()).Memo.hits - memo_hits_before);
  Stats.count "search.score-degraded" !degraded_scores;
  Stats.count "search.simulated" funnel.simulated;
  Stats.count "search.sim-shared" funnel.sim_shared;
  Stats.count "search.sim-skipped" funnel.sim_skipped;
  {
    entries;
    winner;
    source_misses = Option.map (fun (s : Cachesim.stats) -> s.Cachesim.misses) source_sim;
    source_accesses = Option.map (fun (s : Cachesim.stats) -> s.Cachesim.accesses) source_sim;
    diags = List.rev !diags;
    funnel;
  }
