module Ast = Inl_ir.Ast

let loops_with_paths (prog : Ast.program) : (Ast.path * Ast.loop) list =
  let acc = ref [] in
  let rec go prefix nodes =
    List.iteri
      (fun i n ->
        match n with
        | Ast.Loop l ->
            acc := (prefix @ [ i ], l) :: !acc;
            go (prefix @ [ i ]) l.Ast.body
        | Ast.If (_, b) | Ast.Let (_, _, b) -> go (prefix @ [ i ]) b
        | Ast.Stmt _ -> ())
      nodes
  in
  go [] prog.Ast.nest;
  List.rev !acc

let rec is_proper_prefix a b =
  match (a, b) with
  | [], _ :: _ -> true
  | x :: a', y :: b' -> x = y && is_proper_prefix a' b'
  | _ -> false

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest) (permutations (List.filter (fun y -> y <> x) l)))
        l

(* Interchange and skew only make sense between loops on one
   root-to-statement path: positions in sibling subtrees cannot swap or
   reference each other under the block structure, so those pairs would
   only burn legality checks. *)
let nested_pairs loops =
  List.concat_map
    (fun (pa, (la : Ast.loop)) ->
      List.filter_map
        (fun (pb, (lb : Ast.loop)) ->
          if is_proper_prefix pa pb then Some (la.Ast.var, lb.Ast.var) else None)
        loops)
    loops

let path_spec (path : Ast.path) = String.concat "." (List.map string_of_int path)

let enumerate (prog : Ast.program) : (string * string) list list =
  let loops = loops_with_paths prog in
  let pairs = nested_pairs loops in
  let interchanges =
    List.map (fun (outer, inner) -> ("interchange", Printf.sprintf "%s,%s" outer inner)) pairs
  in
  let reversals = List.map (fun (_, (l : Ast.loop)) -> ("reverse", l.Ast.var)) loops in
  let skews =
    List.concat_map
      (fun (outer, inner) ->
        (* inner skewed by outer (the classical wavefront direction) and
           outer by inner (the paper's Section 5.4 example) *)
        List.concat_map
          (fun (t, s) ->
            [ ("skew", Printf.sprintf "%s,%s,1" t s); ("skew", Printf.sprintf "%s,%s,-1" t s) ])
          [ (inner, outer); (outer, inner) ])
      pairs
  in
  (* Wavefront composition, one compound move: skew the inner loop by
     the outer, then interchange — the time-iterated stencils (jacobi1d,
     seidel1d) need exactly this pair to gain a DOALL dimension, and as
     two separate generations the intermediate skew-only state rarely
     survives the beam.  Factor 2 covers stencils whose dependence cone
     ({(1,-1),(1,0),(1,1)}) a unit skew cannot rotate past vertical. *)
  let wavefronts =
    List.concat_map
      (fun (outer, inner) ->
        List.map
          (fun f ->
            [
              ("skew", Printf.sprintf "%s,%s,%d" inner outer f);
              ("interchange", Printf.sprintf "%s,%s" outer inner);
            ])
          [ 1; 2 ])
      pairs
  in
  let stmts = Ast.stmts_with_paths prog in
  let aligns =
    if List.length stmts < 2 then []
    else
      List.concat_map
        (fun (path, (s : Ast.stmt)) ->
          List.concat_map
            (fun (_, (l : Ast.loop)) ->
              [
                ("align", Printf.sprintf "%s,%s,1" s.Ast.label l.Ast.var);
                ("align", Printf.sprintf "%s,%s,-1" s.Ast.label l.Ast.var);
              ])
            (Ast.loops_enclosing prog path))
        stmts
  in
  let reorders =
    List.concat_map
      (fun (path, m) ->
        let ids = List.init m Fun.id in
        let perms =
          if m <= 4 then List.filter (fun p -> p <> ids) (permutations ids)
          else
            List.init (m - 1) (fun i ->
                List.mapi (fun j x -> if j = i then x + 1 else if j = i + 1 then x - 1 else x) ids)
        in
        List.map
          (fun perm ->
            ( "reorder",
              Printf.sprintf "%s:%s" (path_spec path)
                (String.concat "," (List.map string_of_int perm)) ))
          perms)
      (Inl.Completion.reorder_sites prog)
  in
  List.map (fun s -> [ s ]) (interchanges @ reversals @ skews @ aligns @ reorders)
  @ wavefronts
