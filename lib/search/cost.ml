(* The static tier is now the reuse-vocabulary analysis of Inl_reuse;
   this module stays as the stable name the search and its tests score
   through.  The numeric model is unchanged for unimodular candidates
   (see Inl_reuse.Reuse for the exact correspondence); what changed is
   that scores are derived from canonicalized, memoized reuse signatures
   — so locality-equivalent candidates are scored once — and degraded
   (singular-T_S) scoring is observable instead of silent. *)

module Reuse = Inl_reuse.Reuse

let collect_refs = Reuse.collect_refs
let static_score = Reuse.static_score
