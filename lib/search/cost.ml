module Q = Inl_num.Q
module Mpz = Inl_num.Mpz
module Ast = Inl_ir.Ast
module Linexpr = Inl_presburger.Linexpr
module Mat = Inl_linalg.Mat
module Gauss = Inl_linalg.Gauss
module Layout = Inl_instance.Layout

let collect_refs (stmt : Ast.stmt) : Ast.aref list =
  let rec go acc = function
    | Ast.Eref r -> r :: acc
    | Ast.Econst _ | Ast.Evar _ -> acc
    | Ast.Ebin (_, a, b) -> go (go acc a) b
    | Ast.Ecall (_, args) -> List.fold_left go acc args
  in
  stmt.Ast.lhs :: List.rev (go [] stmt.Ast.rhs)

(* Stand-in trip count per loop level: only the relative weighting of
   statement depths matters, not the value. *)
let nominal_trip = 16.0

let q_to_float (q : Q.t) : float =
  (* magnitudes are bounded by callers before conversion *)
  float_of_int (Mpz.to_int (Q.num q)) /. float_of_int (Mpz.to_int (Q.den q))

(* Cost of one reference given the per-iteration delta of each subscript
   along the innermost direction, outer subscript first. *)
let ref_cost ~line_elems (deltas : Q.t list) : float =
  match List.rev deltas with
  | [] -> 0.0 (* scalar: always the same cell *)
  | last :: outer ->
      if Q.is_zero last && List.for_all Q.is_zero outer then 0.0
      else if List.for_all Q.is_zero outer then
        let a = Q.abs last in
        if Q.compare a (Q.of_int line_elems) <= 0 then
          Float.min 1.0 (q_to_float a /. float_of_int line_elems)
        else 1.0
      else 1.0

let statement_score ~line_elems (si : Layout.stmt_info) (per : Inl.Perstmt.t) : float =
  let k = Mat.rows per.Inl.Perstmt.matrix in
  if k = 0 then 0.0
  else
    let vars = List.map (fun (_, (l : Ast.loop)) -> l.Ast.var) si.Layout.loops in
    let refs = collect_refs si.Layout.stmt in
    let weight = nominal_trip ** float_of_int k in
    match Gauss.inverse per.Inl.Perstmt.matrix with
    | None ->
        (* singular: the innermost direction is not determined yet *)
        weight *. float_of_int (List.length refs)
    | Some inv ->
        (* d = T_S⁻¹ e_last: original-iteration step of one innermost
           transformed iteration *)
        let d = List.mapi (fun i _ -> inv.(i).(k - 1)) vars in
        let delta (sub : Ast.affine) =
          List.fold_left2
            (fun acc v di -> Q.add acc (Q.mul (Q.of_mpz (Linexpr.coeff sub v)) di))
            Q.zero vars d
        in
        let cost (r : Ast.aref) = ref_cost ~line_elems (List.map delta r.Ast.index) in
        weight *. List.fold_left (fun acc r -> acc +. cost r) 0.0 refs

let static_score ?(line_elems = 8) (ctx : Inl.context) (st : Inl.Blockstruct.t) : float =
  List.fold_left
    (fun acc (si : Layout.stmt_info) ->
      acc +. statement_score ~line_elems si (Inl.Perstmt.of_structure st si.Layout.label))
    0.0 ctx.Inl.layout.Layout.stmts
