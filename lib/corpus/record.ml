type status = Clean | Degraded | Quarantined | Failed

let status_to_string = function
  | Clean -> "clean"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"
  | Failed -> "failed"

let status_of_string = function
  | "clean" -> Some Clean
  | "degraded" -> Some Degraded
  | "quarantined" -> Some Quarantined
  | "failed" -> Some Failed
  | _ -> None

type t = {
  name : string;
  status : status;
  signature : string;
  detail : string;
  winner : string;
  source_misses : int;
  winner_misses : int;
  accesses : int;
  candidates : int;
  delta_inherited : int;
  delta_checked : int;
  legality_memo_hits : int;
  mat_memo_hits : int;
  retried : bool;
  degradations : string;
  wall_ms : int;
  doall : int;
  exec : string;
}

(* Free-text fields (details quote solver messages) must survive the
   tab-separated line format: escape the separator, newlines and the
   escape character itself. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\t' -> Buffer.add_string b "\\t"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' when !i + 1 < n ->
        incr i;
        Buffer.add_char b (match s.[!i] with 't' -> '\t' | 'n' -> '\n' | c -> c)
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let to_line r =
  String.concat "\t"
    [
      escape r.name;
      status_to_string r.status;
      escape r.signature;
      escape r.detail;
      escape r.winner;
      string_of_int r.source_misses;
      string_of_int r.winner_misses;
      string_of_int r.accesses;
      string_of_int r.candidates;
      string_of_int r.delta_inherited;
      string_of_int r.delta_checked;
      string_of_int r.legality_memo_hits;
      string_of_int r.mat_memo_hits;
      (if r.retried then "1" else "0");
      escape r.degradations;
      string_of_int r.wall_ms;
      string_of_int r.doall;
      escape r.exec;
    ]

let of_line line =
  match String.split_on_char '\t' line with
  | [
   name;
   status;
   signature;
   detail;
   winner;
   source_misses;
   winner_misses;
   accesses;
   candidates;
   delta_inherited;
   delta_checked;
   legality_memo_hits;
   mat_memo_hits;
   retried;
   degradations;
   wall_ms;
   doall;
   exec;
  ] -> (
      let int what s =
        match int_of_string_opt s with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "record field %s: %S is not an integer" what s)
      in
      let ( let* ) = Result.bind in
      match status_of_string status with
      | None -> Error (Printf.sprintf "record: unknown status %S" status)
      | Some status ->
          let* source_misses = int "source_misses" source_misses in
          let* winner_misses = int "winner_misses" winner_misses in
          let* accesses = int "accesses" accesses in
          let* candidates = int "candidates" candidates in
          let* delta_inherited = int "delta_inherited" delta_inherited in
          let* delta_checked = int "delta_checked" delta_checked in
          let* legality_memo_hits = int "legality_memo_hits" legality_memo_hits in
          let* mat_memo_hits = int "mat_memo_hits" mat_memo_hits in
          let* wall_ms = int "wall_ms" wall_ms in
          let* doall = int "doall" doall in
          let* retried =
            match retried with
            | "0" -> Ok false
            | "1" -> Ok true
            | s -> Error (Printf.sprintf "record field retried: %S is not 0/1" s)
          in
          Ok
            {
              name = unescape name;
              status;
              signature = unescape signature;
              detail = unescape detail;
              winner = unescape winner;
              source_misses;
              winner_misses;
              accesses;
              candidates;
              delta_inherited;
              delta_checked;
              legality_memo_hits;
              mat_memo_hits;
              retried;
              degradations = unescape degradations;
              wall_ms;
              doall;
              exec = unescape exec;
            })
  | _ -> Error "record: wrong field count"

let delta_inherit_rate r =
  let total = r.delta_inherited + r.delta_checked in
  if total = 0 then 0. else float_of_int r.delta_inherited /. float_of_int total
