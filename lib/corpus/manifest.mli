(** Kernel manifests: the input of [inltool corpus].

    A manifest is a line-oriented text file next to the kernels it
    names (paths resolve relative to the manifest's directory):

    {v
    # comment
    kernel <name> <relpath> [key=value ...]
    v}

    Recognized keys, all optional, all overriding the runner's
    defaults for that kernel only: [size], [seed], [beam], [depth],
    [finalists] (search configuration; whatever is not pinned here goes
    through {!Inl_search.Search.config_for}, so big kernels still get
    the automatic widening), [timeout_ms] (per-kernel watchdog, [0]
    disables), [budget] (per-kernel Fourier-Motzkin work budget),
    [faults] (an {!Inl_diag.Faults} spec — how the acceptance drill
    poisons a kernel on purpose), [run] (execute the winner for real at
    this problem size through {!Inl_exec.Exec} and record the outcome
    label), and [threads] (worker domains for that execution;
    default 2).

    Malformed lines, duplicate kernel names, unknown keys and invalid
    values are all typed [K701] errors naming the offending line; a
    manifest either loads completely or not at all.  {!fingerprint} is
    the checksum the checkpoint records so a resume against an edited
    manifest is refused ([K703]) instead of silently mixing configs. *)

type entry = {
  name : string;  (** unique, [A-Za-z0-9_.-]+; keys records and findings *)
  path : string;  (** absolute, resolved against the manifest directory *)
  size : int option;
  seed : int option;
  beam : int option;
  depth : int option;
  finalists : int option;
  timeout_ms : int option;
  budget : int option;
  faults : string option;  (** validated spec text *)
  run : int option;  (** execute the winner at this size; [None] = don't *)
  threads : int option;  (** worker domains for [run=]; default 2 *)
}

type t = {
  dir : string;
  entries : entry list;  (** manifest order — the run and report order *)
  fingerprint : string;  (** FNV-1a 64 of the manifest bytes, hex *)
}

val load : string -> (t, Inl_diag.Diag.t list) result
(** Parse and validate a manifest file.  Kernel {e files} are not read
    here — a missing kernel file is a per-kernel failure record at run
    time, not a refusal to start the batch. *)
