module Json = Inl_serve.Json

let jstr s = Json.to_string (Json.String s)

let kernel_json (r : Record.t) =
  Printf.sprintf
    "    {\"name\": %s, \"status\": %s, \"signature\": %s, \"winner\": %s, \"source_misses\": \
     %d, \"winner_misses\": %d, \"accesses\": %d, \"candidates\": %d, \"delta_inherit_rate\": \
     %.3f, \"legality_memo_hits\": %d, \"mat_memo_hits\": %d, \"retried\": %b, \
     \"degradations\": %s, \"wall_ms\": %d, \"doall\": %d, \"exec\": %s}"
    (jstr r.Record.name)
    (jstr (Record.status_to_string r.Record.status))
    (jstr r.Record.signature) (jstr r.Record.winner) r.Record.source_misses
    r.Record.winner_misses r.Record.accesses r.Record.candidates (Record.delta_inherit_rate r)
    r.Record.legality_memo_hits r.Record.mat_memo_hits r.Record.retried
    (jstr r.Record.degradations) r.Record.wall_ms r.Record.doall (jstr r.Record.exec)

let render ~manifest_fingerprint ~jobs ~timings records =
  let count st = List.length (List.filter (fun r -> r.Record.status = st) records) in
  let wall = List.fold_left (fun acc r -> acc + r.Record.wall_ms) 0 records in
  Printf.sprintf
    "{\n\
    \  \"schema\": \"inl-corpus-bench-v1\",\n\
    \  \"manifest\": %s,\n\
    \  \"jobs\": %d,\n\
    \  \"timings\": %b,\n\
    \  \"kernels\": [\n\
     %s\n\
    \  ],\n\
    \  \"totals\": {\"kernels\": %d, \"clean\": %d, \"degraded\": %d, \"quarantined\": %d, \
     \"failed\": %d, \"wall_ms\": %d}\n\
     }\n"
    (jstr manifest_fingerprint) jobs timings
    (String.concat ",\n" (List.map kernel_json records))
    (List.length records) (count Record.Clean) (count Record.Degraded)
    (count Record.Quarantined) (count Record.Failed) wall

(* ---- the drift guard ---- *)

let stable_fields =
  [ "status"; "signature"; "winner"; "source_misses"; "winner_misses"; "accesses";
    "candidates"; "degradations"; "doall"; "exec" ]

let kernel_map doc =
  match Json.member "kernels" doc with
  | Some (Json.List ks) ->
      Ok
        (List.filter_map
           (fun k -> match Json.string_field "name" k with Some n -> Some (n, k) | None -> None)
           ks)
  | _ -> Error "no \"kernels\" list"

let field_repr k name =
  match Json.member name k with
  | None -> "<absent>"
  | Some v -> Json.to_string v

let guard ~baseline ~current =
  match (Json.parse baseline, Json.parse current) with
  | Error m, _ -> Error [ "baseline does not parse: " ^ m ]
  | _, Error m -> Error [ "fresh report does not parse: " ^ m ]
  | Ok base, Ok cur -> (
      match (kernel_map base, kernel_map cur) with
      | Error m, _ -> Error [ "baseline: " ^ m ]
      | _, Error m -> Error [ "fresh report: " ^ m ]
      | Ok bks, Ok cks ->
          let drifts = ref [] in
          let note fmt = Format.kasprintf (fun m -> drifts := m :: !drifts) fmt in
          List.iter
            (fun (name, bk) ->
              match List.assoc_opt name cks with
              | None -> note "kernel %S: in the baseline but not the fresh report" name
              | Some ck ->
                  List.iter
                    (fun f ->
                      let b = field_repr bk f and c = field_repr ck f in
                      if b <> c then note "kernel %S: %s drifted: committed %s, got %s" name f b c)
                    stable_fields)
            bks;
          List.iter
            (fun (name, _) ->
              if not (List.mem_assoc name bks) then
                note "kernel %S: in the fresh report but not the baseline" name)
            cks;
          if !drifts = [] then Ok () else Error (List.rev !drifts))
