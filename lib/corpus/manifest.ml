module Diag = Inl_diag.Diag
module Faults = Inl_diag.Faults
module Snapshot = Inl_serve.Snapshot

type entry = {
  name : string;
  path : string;
  size : int option;
  seed : int option;
  beam : int option;
  depth : int option;
  finalists : int option;
  timeout_ms : int option;
  budget : int option;
  faults : string option;
  run : int option;
  threads : int option;
}

type t = { dir : string; entries : entry list; fingerprint : string }

let err line fmt =
  Format.kasprintf
    (fun m -> Diag.errorf ~code:"K701" ~phase:Diag.Corpus "manifest line %d: %s" line m)
    fmt

let name_ok name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-' || c = '.')
       name

(* "kernel name path k=v k=v" split on runs of spaces/tabs *)
let tokens line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let parse_entry ~dir ~lineno rest =
  match rest with
  | name :: path :: kvs ->
      if not (name_ok name) then
        Error (err lineno "kernel name %S: use [A-Za-z0-9_.-]+ (it names records and findings)" name)
      else
        let entry =
          ref
            {
              name;
              path = (if Filename.is_relative path then Filename.concat dir path else path);
              size = None;
              seed = None;
              beam = None;
              depth = None;
              finalists = None;
              timeout_ms = None;
              budget = None;
              faults = None;
              run = None;
              threads = None;
            }
        in
        let set_int key v ~min set =
          match int_of_string_opt v with
          | Some n when n >= min -> Ok (entry := set !entry n)
          | _ -> Error (err lineno "%s=%s: expected an integer >= %d" key v min)
        in
        let apply kv =
          match String.index_opt kv '=' with
          | None -> Error (err lineno "%S: expected key=value" kv)
          | Some i -> (
              let key = String.sub kv 0 i in
              let v = String.sub kv (i + 1) (String.length kv - i - 1) in
              match key with
              | "size" -> set_int key v ~min:1 (fun e n -> { e with size = Some n })
              | "seed" -> set_int key v ~min:0 (fun e n -> { e with seed = Some n })
              | "beam" -> set_int key v ~min:1 (fun e n -> { e with beam = Some n })
              | "depth" -> set_int key v ~min:0 (fun e n -> { e with depth = Some n })
              | "finalists" -> set_int key v ~min:1 (fun e n -> { e with finalists = Some n })
              | "timeout_ms" -> set_int key v ~min:0 (fun e n -> { e with timeout_ms = Some n })
              | "budget" -> set_int key v ~min:1 (fun e n -> { e with budget = Some n })
              | "run" -> set_int key v ~min:1 (fun e n -> { e with run = Some n })
              | "threads" -> set_int key v ~min:1 (fun e n -> { e with threads = Some n })
              | "faults" -> (
                  match Faults.parse v with
                  | Ok _ -> Ok (entry := { !entry with faults = Some v })
                  | Error m -> Error (err lineno "faults=%s: %s" v m))
              | _ -> Error (err lineno "unknown key %S" key))
        in
        let rec go = function
          | [] -> Ok !entry
          | kv :: rest -> ( match apply kv with Ok () -> go rest | Error _ as e -> e)
        in
        go kvs
  | _ -> Error (err lineno "expected: kernel <name> <path> [key=value ...]")

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m ->
      Error [ Diag.errorf ~code:"K700" ~phase:Diag.Corpus "cannot read manifest: %s" m ]
  | text ->
      let dir = Filename.dirname path in
      let lines = String.split_on_char '\n' text in
      let entries, errors, _ =
        List.fold_left
          (fun (entries, errors, lineno) line ->
            let lineno = lineno + 1 in
            match tokens line with
            | [] -> (entries, errors, lineno)
            | first :: _ when String.length first > 0 && first.[0] = '#' ->
                (entries, errors, lineno)
            | "kernel" :: rest -> (
                match parse_entry ~dir ~lineno rest with
                | Ok e -> (e :: entries, errors, lineno)
                | Error d -> (entries, d :: errors, lineno))
            | first :: _ ->
                (entries, err lineno "unknown directive %S (expected \"kernel\")" first :: errors,
                 lineno))
          ([], [], 0) lines
      in
      let entries = List.rev entries in
      let dup_errors =
        let seen = Hashtbl.create 16 in
        List.filter_map
          (fun e ->
            if Hashtbl.mem seen e.name then
              Some
                (Diag.errorf ~code:"K701" ~phase:Diag.Corpus
                   "duplicate kernel name %S in manifest" e.name)
            else begin
              Hashtbl.add seen e.name ();
              None
            end)
          entries
      in
      let errors = List.rev errors @ dup_errors in
      if errors <> [] then Error errors
      else if entries = [] then
        Error [ Diag.errorf ~code:"K701" ~phase:Diag.Corpus "manifest names no kernels" ]
      else Ok { dir; entries; fingerprint = Printf.sprintf "%Lx" (Snapshot.fnv64 text) }
