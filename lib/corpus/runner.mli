(** The crash-tolerant bulk runner behind [inltool corpus].

    One manifest in, one consolidated report out, and no kernel can
    take the batch down:

    - every kernel runs under its own watchdog deadline, work budget
      and fault spec (manifest overrides over the runner defaults),
      installed before and restored after;
    - a hang or an escaped solver blowup gets exactly one retry at
      sharply reduced budget through the shared ladder
      ({!Inl_diag.Retry}); if the retry also fails, the kernel is
      recorded as [quarantined] with a typed tag ([K706] deadline /
      [K708] blowup) and written to the state directory as a replayable
      finding in the fuzz-corpus format — the batch moves on;
    - any other exception is a worker panic: recovered as [K707], the
      Domain pool revived, the kernel quarantined as a [crash] finding;
    - after every kernel the full record set is checkpointed through
      {!Inl_serve.Snapshot} + {!Inl_diag.Atomicio}, so a SIGKILL at any
      moment loses at most the kernel in flight; the next run restores
      completed records, skips them, and produces the same report;
    - a checkpoint recorded under a different manifest or runner
      configuration is refused ([K703]) — delete it or restore the
      config; an unreadable checkpoint is a [K704] warning and a cold
      start;
    - the [stop] hook (SIGINT) is honoured between kernels and at
      search generation boundaries; the checkpoint is already flushed,
      so rerunning resumes.

    Determinism: each kernel starts from cold process-wide caches
    (projection, legality, reuse, search memos — cleared per attempt),
    so its record does not depend on batch order or on where a resumed
    run restarted; with [timings = false] the records, and therefore
    the rendered BENCH_corpus.json, are byte-identical between an
    interrupted + resumed run and an uninterrupted one. *)

type config = {
  manifest : Manifest.t;
  state_dir : string option;
      (** checkpoint + quarantined findings; [None] = no persistence *)
  timeout_ms : int;  (** default per-kernel watchdog; [<= 0] disables *)
  timings : bool;  (** [false]: record [wall_ms = 0] (byte-identity drills) *)
  jobs : int;  (** recorded in the checkpoint header (config-mismatch refusal) *)
}

type report = {
  records : Record.t list;  (** manifest order; completed kernels only *)
  resumed : int;  (** records restored from the checkpoint, not rerun *)
  interrupted : bool;  (** the CLI maps this to exit 130 *)
  diags : Inl_diag.Diag.t list;  (** runner-level warnings ([K704] cold start) *)
}

val run : ?out:Format.formatter -> ?stop:(unit -> bool) -> config -> (report, Inl_diag.Diag.t list) result
(** [Error] is reserved for refusals to start: an unusable state
    directory ([K700]) or a checkpoint/config mismatch ([K703]).
    Per-kernel misbehaviour of any kind becomes a record. *)

val checkpoint_kind : string
val checkpoint_version : int
val checkpoint_path : string -> string
(** [checkpoint_path state_dir]; exposed for the drills and tests. *)
