(** BENCH_corpus.json: the consolidated corpus report and its drift
    guard.

    {!render} is deterministic: kernels appear in manifest order, string
    fields go through the serve {!Inl_serve.Json} escaper, rates print
    with a fixed format, and every varying input (wall clocks) is part
    of the record itself — so two runs that produced the same records
    render byte-identical reports, which is what the kill-and-resume
    acceptance drill compares.

    {!guard} is the [make corpus-guard] gate: it compares only the
    deterministic per-kernel fields (status, quarantine signature,
    winner recipe, miss/access/candidate counts, degradation tags) of a
    fresh report against the committed baseline, so wall-time noise
    never fails CI but a drifted winner or a newly-quarantined kernel
    does. *)

val render : manifest_fingerprint:string -> jobs:int -> timings:bool -> Record.t list -> string
(** The full JSON document, trailing newline included. *)

val guard : baseline:string -> current:string -> (unit, string list) result
(** Both arguments are JSON document texts.  [Error] lists one line per
    drifted kernel/field (typed [K709] by the CLI). *)
