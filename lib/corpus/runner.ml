module Diag = Inl_diag.Diag
module Budget = Inl_diag.Budget
module Faults = Inl_diag.Faults
module Stats = Inl_diag.Stats
module Retry = Inl_diag.Retry
module Sigint = Inl_diag.Sigint
module Omega = Inl_presburger.Omega
module Pool = Inl_parallel.Pool
module Search = Inl_search.Search
module Reuse = Inl_reuse.Reuse
module Snapshot = Inl_serve.Snapshot
module Fcorpus = Inl_fuzz.Corpus
module Oracle = Inl_fuzz.Oracle
module Tf = Inl_fuzz.Tf
module Exec = Inl_exec.Exec

type config = {
  manifest : Manifest.t;
  state_dir : string option;
  timeout_ms : int;
  timings : bool;
  jobs : int;
}

type report = {
  records : Record.t list;
  resumed : int;
  interrupted : bool;
  diags : Diag.t list;
}

let checkpoint_kind = "corpus-checkpoint"

(* v2: records carry the winner's DOALL count and execution label *)
let checkpoint_version = 2
let checkpoint_path state_dir = Filename.concat state_dir "checkpoint"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- checkpoint ---- *)

(* Payload: one config header line binding the checkpoint to this
   manifest and runner configuration, then one Record line per
   completed kernel.  The whole container is checksummed by Snapshot
   and replaced atomically by Atomicio, so the file on disk is always a
   complete, valid prefix of the run. *)

let header cfg =
  Printf.sprintf "config jobs=%d timeout_ms=%d timings=%d manifest=%s" cfg.jobs cfg.timeout_ms
    (if cfg.timings then 1 else 0)
    cfg.manifest.Manifest.fingerprint

let save_checkpoint cfg ~records =
  match cfg.state_dir with
  | None -> []
  | Some dir -> (
      let payload =
        String.concat "\n" (header cfg :: List.map Record.to_line records) ^ "\n"
      in
      match
        Snapshot.save ~path:(checkpoint_path dir) ~kind:checkpoint_kind
          ~version:checkpoint_version payload
      with
      | Ok () -> []
      | Error m ->
          [
            Diag.warningf ~code:"K705" ~phase:Diag.Corpus
              "cannot write checkpoint: %s (the run continues unpersisted)" m;
          ])

(* Restores completed records; distinguishes a *refusal* (valid
   checkpoint for a different manifest/config — K703, like the fuzz
   driver's seed-mismatch D706) from an *unusable* file (K704 warning +
   cold start, like serve's R709). *)
let load_checkpoint cfg =
  match cfg.state_dir with
  | None -> Ok ([], [])
  | Some dir -> (
      let path = checkpoint_path dir in
      let cold m =
        Ok
          ( [],
            [
              Diag.warningf ~code:"K704" ~phase:Diag.Corpus
                "checkpoint unusable (%s); starting cold" m;
            ] )
      in
      match Snapshot.load ~path ~kind:checkpoint_kind ~version:checkpoint_version with
      | Ok None -> Ok ([], [])
      | Error m -> cold m
      | Ok (Some payload) -> (
          match String.split_on_char '\n' payload with
          | hdr :: rest ->
              if hdr <> header cfg then
                Error
                  [
                    Diag.errorf ~code:"K703" ~phase:Diag.Corpus
                      "checkpoint %s was recorded under a different manifest or configuration \
                       (%s, this run: %s); delete it to start over, or rerun with the original \
                       settings"
                      path hdr (header cfg);
                  ]
              else
                let rec records acc = function
                  | [] | [ "" ] -> Ok (List.rev acc)
                  | line :: rest -> (
                      match Record.of_line line with
                      | Ok r -> records (r :: acc) rest
                      | Error m -> Error m)
                in
                (match records [] rest with Ok rs -> Ok (rs, []) | Error m -> cold m)
          | [] -> cold "empty payload"))

(* ---- per-kernel execution ---- *)

(* Every attempt starts from cold process-wide caches: the record then
   measures the kernel itself (not batch history), and a resumed run
   reproduces the remaining records byte-identically.  This also makes
   the retry rung independent of wherever the first attempt died. *)
let clear_process_state () =
  Omega.clear_cache ();
  Inl.Legality.clear_memo ();
  Reuse.clear_memo ();
  Search.clear_process_memos ()

type attempt_result =
  | Ran of Search.outcome
  | Unreadable of string
  | Unparsable of Diag.t list

let counter counters name = match List.assoc_opt name counters with Some n -> n | None -> 0

let sorted_codes codes = String.concat "," (List.sort_uniq compare codes)

(* Quarantine a kernel in the fuzz-corpus format: the source program
   with the identity recipe, replayable by `inltool fuzz --replay` (the
   detail notes the fault spec and budget under which it misbehaved). *)
let quarantine cfg (e : Manifest.entry) ~signature ~detail =
  match cfg.state_dir with
  | None -> None
  | Some dir -> (
      match read_file e.Manifest.path with
      | exception Sys_error _ -> None
      | src -> (
          match Inl_ir.Parser.parse src with
          | Error _ -> None
          | Ok prog ->
              let tf = { Tf.steps = []; partial = []; edits = [] } in
              let base =
                Printf.sprintf "finding-%s-%s" e.Manifest.name
                  (Oracle.signature_to_string signature)
              in
              Some
                (Fcorpus.write_finding_base ~dir ~base ~signature ~detail ~prog ~tf
                   ~orig_prog:prog ~orig_tf:tf)))

let run_kernel cfg (e : Manifest.entry) : Record.t =
  let base_budget = Omega.get_default_budget () in
  let base_faults = Faults.current () in
  let fm_base =
    match e.Manifest.budget with Some b -> b | None -> base_budget.Budget.fm_work
  in
  let ms = match e.Manifest.timeout_ms with Some t -> t | None -> cfg.timeout_ms in
  let faults =
    match e.Manifest.faults with
    | None -> base_faults
    | Some spec -> ( match Faults.parse spec with Ok f -> f | Error _ -> base_faults)
  in
  let attempt ~fm_work ~timeout_ms:_ =
    clear_process_state ();
    (* per attempt, so injected failures fire on the same schedule on
       both rungs *)
    Faults.install faults;
    Omega.set_default_budget (Budget.with_fm_work base_budget fm_work);
    match read_file e.Manifest.path with
    | exception Sys_error m -> Unreadable m
    | src -> (
        match Inl.analyze_source_result src with
        | Error ds -> Unparsable ds
        | Ok ctx ->
            let sc = Search.config_for ctx in
            let sc =
              {
                sc with
                Search.beam = Option.value e.Manifest.beam ~default:sc.Search.beam;
                depth = Option.value e.Manifest.depth ~default:sc.Search.depth;
                finalists = Option.value e.Manifest.finalists ~default:sc.Search.finalists;
                size = Option.value e.Manifest.size ~default:sc.Search.size;
                seed = Option.value e.Manifest.seed ~default:sc.Search.seed;
              }
            in
            Ran (Search.optimize ~config:sc ctx))
  in
  let blank =
    {
      Record.name = e.Manifest.name;
      status = Record.Failed;
      signature = "";
      detail = "";
      winner = "";
      source_misses = -1;
      winner_misses = -1;
      accesses = -1;
      candidates = 0;
      delta_inherited = 0;
      delta_checked = 0;
      legality_memo_hits = 0;
      mat_memo_hits = 0;
      retried = false;
      degradations = "";
      wall_ms = 0;
      doall = -1;
      exec = "";
    }
  in
  let snap0 = Stats.snapshot () in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        Omega.set_default_budget base_budget;
        Faults.install base_faults)
      (fun () ->
        match
          Retry.run ~fm_work:fm_base ~timeout_ms:ms
            ~degradable:(function Omega.Blowup m -> Some m | _ -> None)
            attempt
        with
        | r -> `Ladder r
        | exception Sigint.Interrupted -> `Interrupted
        | exception e -> `Panic (e, Printexc.get_backtrace ()))
  in
  match outcome with
  | `Interrupted -> raise Sigint.Interrupted
  | `Panic (exn, bt) ->
      (* a harness bug, not a kernel verdict: recover like serve's R707,
         revive the pool, quarantine the kernel as a crash finding *)
      Pool.revive ();
      let detail = "worker panic (recovered): " ^ Printexc.to_string exn in
      if bt <> "" then prerr_string bt;
      ignore (quarantine cfg e ~signature:Oracle.Crash ~detail);
      {
        blank with
        Record.status = Record.Quarantined;
        signature = "crash";
        detail;
        degradations = "K707";
      }
  | `Ladder ladder -> (
      let wall_ms =
        if cfg.timings then int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) else 0
      in
      let _, counters = Stats.since snap0 in
      let finish ~retried ~extra_codes result =
        match result with
        | Unreadable m ->
            {
              blank with
              Record.detail = "cannot read kernel: " ^ m;
              degradations = sorted_codes extra_codes;
              wall_ms;
            }
        | Unparsable ds ->
            {
              blank with
              Record.detail = Diag.list_to_string ds;
              degradations =
                sorted_codes (extra_codes @ List.map (fun (d : Diag.t) -> d.Diag.code) ds);
              wall_ms;
            }
        | Ran (o : Search.outcome) ->
            let codes =
              extra_codes @ List.map (fun (d : Diag.t) -> d.Diag.code) o.Search.diags
            in
            let errors = Diag.has_errors o.Search.diags in
            let status =
              if errors || o.Search.winner = None then Record.Failed
              else if retried || codes <> [] then Record.Degraded
              else Record.Clean
            in
            let detail =
              match
                List.find_opt (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) o.Search.diags
              with
              | Some d -> Diag.to_string d
              | None -> ""
            in
            let winner = o.Search.winner in
            (* When the manifest asks for it ([run=]), execute the
               winner for real: the recorded label is wall-time-free
               ({!Exec.label}), so it is stable under the drift guard
               while still pinning the plan and differential verdict. *)
            let exec =
              match (e.Manifest.run, winner) with
              | Some size, Some w -> (
                  match w.Search.program with
                  | Some prog ->
                      let params =
                        List.map (fun p -> (p, size)) prog.Inl_ir.Ast.params
                      in
                      let jobs = Option.value e.Manifest.threads ~default:2 in
                      Exec.label (Exec.benchmark ~jobs ~repeat:1 prog ~params)
                  | None -> "")
              | _ -> ""
            in
            {
              Record.name = e.Manifest.name;
              status;
              signature = "";
              detail;
              winner =
                (match winner with Some w -> Search.recipe_line w.Search.recipe | None -> "");
              source_misses = Option.value o.Search.source_misses ~default:(-1);
              winner_misses =
                (match winner with
                | Some w -> Option.value w.Search.misses ~default:(-1)
                | None -> -1);
              accesses =
                (match winner with
                | Some w -> Option.value w.Search.accesses ~default:(-1)
                | None -> -1);
              candidates = counter counters "search.generated";
              delta_inherited = counter counters "search.legality.delta-inherited";
              delta_checked = counter counters "search.legality.delta-checked";
              legality_memo_hits = counter counters "search.legality.memo_hits";
              mat_memo_hits = counter counters "search.mat.memo_hits";
              retried;
              degradations = sorted_codes codes;
              wall_ms;
              doall = Option.value o.Search.winner_doall ~default:(-1);
              exec;
            }
      in
      match ladder with
      | Retry.Completed r -> finish ~retried:false ~extra_codes:[] r
      | Retry.Recovered { value; first = _; fm_work = _ } ->
          finish ~retried:true ~extra_codes:[ "K711" ] value
      | Retry.Exhausted { first; second; fm_work } ->
          let describe = function
            | Retry.Deadline { timeout_ms; _ } ->
                Printf.sprintf "exceeded its %d ms deadline" timeout_ms
            | Retry.Degraded m -> "blew up: " ^ m
          in
          let signature, code =
            match second with
            | Retry.Deadline _ -> (Oracle.Timeout, "K706")
            | Retry.Degraded _ -> (Oracle.Crash, "K708")
          in
          let detail =
            Printf.sprintf
              "kernel %s, and the reduced-budget retry (fm_work=%d) %s; quarantined \
               (faults=%s budget=%d timeout_ms=%d)"
              (describe first) fm_work (describe second)
              (match e.Manifest.faults with Some s -> s | None -> "none")
              fm_base ms
          in
          ignore (quarantine cfg e ~signature ~detail);
          {
            blank with
            Record.status = Record.Quarantined;
            signature = Oracle.signature_to_string signature;
            detail;
            degradations = sorted_codes [ code ];
            wall_ms;
          })

(* ---- the batch loop ---- *)

let describe_record out (r : Record.t) ~timings =
  let timing = if timings then Printf.sprintf " (%d ms)" r.Record.wall_ms else "" in
  match r.Record.status with
  | Record.Clean | Record.Degraded ->
      Format.fprintf out "corpus: %s: %s winner=%S misses=%d->%d%s%s%s@." r.Record.name
        (Record.status_to_string r.Record.status)
        r.Record.winner r.Record.source_misses r.Record.winner_misses
        (if r.Record.exec = "" then "" else " exec=" ^ r.Record.exec)
        (if r.Record.degradations = "" then "" else " [" ^ r.Record.degradations ^ "]")
        timing
  | Record.Quarantined ->
      Format.fprintf out "corpus: %s: quarantined (%s) [%s]%s@." r.Record.name
        r.Record.signature r.Record.degradations timing
  | Record.Failed ->
      Format.fprintf out "corpus: %s: failed: %s%s@." r.Record.name r.Record.detail timing

let run ?(out = Format.std_formatter) ?(stop = fun () -> false) cfg =
  let prepared =
    match cfg.state_dir with
    | None -> Ok ()
    | Some dir -> (
        match Fcorpus.ensure_dir dir with
        | Ok () -> Ok ()
        | Error m ->
            Error [ Diag.errorf ~code:"K700" ~phase:Diag.Corpus "cannot start: %s" m ])
  in
  match prepared with
  | Error _ as e -> e
  | Ok () -> (
      match load_checkpoint cfg with
      | Error _ as e -> e
      | Ok (restored, warnings) ->
          List.iter (fun d -> Format.fprintf out "corpus: %s@." (Diag.to_string d)) warnings;
          let total = List.length cfg.manifest.Manifest.entries in
          if restored <> [] then
            Format.fprintf out "corpus: resuming; %d of %d kernels already recorded@."
              (List.length restored) total;
          let completed = Hashtbl.create 16 in
          List.iter (fun (r : Record.t) -> Hashtbl.replace completed r.Record.name r) restored;
          let diags = ref warnings in
          let records = ref [] in
          let resumed = ref 0 in
          let interrupted = ref false in
          let entries = ref cfg.manifest.Manifest.entries in
          while !entries <> [] && not !interrupted do
            let e = List.hd !entries in
            entries := List.tl !entries;
            match Hashtbl.find_opt completed e.Manifest.name with
            | Some r ->
                incr resumed;
                records := r :: !records
            | None ->
                if stop () then interrupted := true
                else (
                  match run_kernel cfg e with
                  | r ->
                      records := r :: !records;
                      (* persist before announcing: once the record's
                         line is visible on stdout, the checkpoint
                         holding it is already on disk — a SIGKILL
                         right after the announcement cannot lose it *)
                      let ds = save_checkpoint cfg ~records:(List.rev !records) in
                      describe_record out r ~timings:cfg.timings;
                      List.iter
                        (fun d -> Format.fprintf out "corpus: %s@." (Diag.to_string d))
                        ds;
                      diags := !diags @ ds
                  | exception Sigint.Interrupted -> interrupted := true)
          done;
          let records = List.rev !records in
          if !interrupted then
            Format.fprintf out
              "corpus: interrupted after %d of %d kernels; checkpoint flushed, rerun to \
               resume@."
              (List.length records) total
          else
            Format.fprintf out
              "corpus: %d kernels: %d clean, %d degraded, %d quarantined, %d failed%s@." total
              (List.length (List.filter (fun r -> r.Record.status = Record.Clean) records))
              (List.length (List.filter (fun r -> r.Record.status = Record.Degraded) records))
              (List.length
                 (List.filter (fun r -> r.Record.status = Record.Quarantined) records))
              (List.length (List.filter (fun r -> r.Record.status = Record.Failed) records))
              (if !resumed > 0 then Printf.sprintf " (%d restored from checkpoint)" !resumed
               else "");
          Ok { records; resumed = !resumed; interrupted = !interrupted; diags = !diags })
