(** One kernel's result: the unit of checkpointing and of the report.

    A record is everything BENCH_corpus.json needs for one kernel, in a
    single escaped tab-separated line — the checkpoint payload is just
    these lines behind a {!Inl_serve.Snapshot} header, so a resumed run
    reconstitutes completed kernels exactly and the consolidated report
    is byte-identical to the uninterrupted run's. *)

type status =
  | Clean  (** optimized, winner verified, no degradation *)
  | Degraded  (** answered, but with typed warnings (retry, S90x, ...) *)
  | Quarantined
      (** the retry ladder was exhausted (hang or blowup); the kernel is
          quarantined as a replayable finding *)
  | Failed  (** did not produce a result: unreadable, unparsable, or no
                legal candidate *)

val status_to_string : status -> string
val status_of_string : string -> status option

type t = {
  name : string;
  status : status;
  signature : string;  (** quarantine signature ([timeout]/[crash]); [""] otherwise *)
  detail : string;  (** failure/quarantine detail; [""] otherwise *)
  winner : string;  (** winner recipe line; [""] when there is none *)
  source_misses : int;  (** simulated misses of the untransformed kernel; -1 unknown *)
  winner_misses : int;  (** -1 unknown *)
  accesses : int;  (** winner's simulated accesses; -1 unknown *)
  candidates : int;  (** search funnel: recipes generated *)
  delta_inherited : int;  (** legality verdicts inherited from the parent state *)
  delta_checked : int;  (** legality verdicts that had to be resolved *)
  legality_memo_hits : int;
  mat_memo_hits : int;
  retried : bool;  (** the reduced-budget rung answered (K711) *)
  degradations : string;  (** comma-joined diag codes, deterministic order *)
  wall_ms : int;  (** 0 when the run recorded no timings *)
  doall : int;  (** winner's provably-parallel loop count; -1 unknown *)
  exec : string;
      (** {!Inl_exec.Exec.label} of the winner's real execution (never
          encodes wall time); [""] when the manifest did not ask for
          execution ([run=]) or there is no winner *)
}

val to_line : t -> string
(** One line, no trailing newline; tabs/newlines/backslashes in string
    fields are escaped. *)

val of_line : string -> (t, string) result

val delta_inherit_rate : t -> float
(** inherited / (inherited + checked); [0.] when nothing was checked. *)
