type phase = { mutable wall_s : float; mutable calls : int }

let lock = Mutex.create ()
let phases_tbl : (string, phase) Hashtbl.t = Hashtbl.create 8

let add name dt =
  Mutex.protect lock (fun () ->
      let p =
        match Hashtbl.find_opt phases_tbl name with
        | Some p -> p
        | None ->
            let p = { wall_s = 0.0; calls = 0 } in
            Hashtbl.add phases_tbl name p;
            p
      in
      p.wall_s <- p.wall_s +. dt;
      p.calls <- p.calls + 1)

let timed name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add name (Unix.gettimeofday () -. t0)) f

let phases () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun name p acc -> (name, p.wall_s, p.calls) :: acc) phases_tbl []
      |> List.sort compare)

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 8

let count name n =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c := !c + n
      | None -> Hashtbl.add counters_tbl name (ref n))

let counters () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun name c acc -> (name, !c) :: acc) counters_tbl [] |> List.sort compare)

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset phases_tbl;
      Hashtbl.reset counters_tbl)
