type phase = { mutable wall_s : float; mutable calls : int }

let lock = Mutex.create ()
let phases_tbl : (string, phase) Hashtbl.t = Hashtbl.create 8

let add name dt =
  Mutex.protect lock (fun () ->
      let p =
        match Hashtbl.find_opt phases_tbl name with
        | Some p -> p
        | None ->
            let p = { wall_s = 0.0; calls = 0 } in
            Hashtbl.add phases_tbl name p;
            p
      in
      p.wall_s <- p.wall_s +. dt;
      p.calls <- p.calls + 1)

let timed name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add name (Unix.gettimeofday () -. t0)) f

let phases () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun name p acc -> (name, p.wall_s, p.calls) :: acc) phases_tbl []
      |> List.sort compare)

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 8

let count name n =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c := !c + n
      | None -> Hashtbl.add counters_tbl name (ref n))

let counters () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun name c acc -> (name, !c) :: acc) counters_tbl [] |> List.sort compare)

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset phases_tbl;
      Hashtbl.reset counters_tbl)

(* Per-request scoping for the serve daemon: totals are cumulative for
   the life of the process, so a request's own consumption is the delta
   between two snapshots.  Snapshots are plain assoc lists taken under
   the same lock as the accumulators. *)
type snapshot = {
  snap_phases : (string * float * int) list;
  snap_counters : (string * int) list;
}

let snapshot () = { snap_phases = phases (); snap_counters = counters () }

let since s =
  let now_p = phases () and now_c = counters () in
  let phase_delta =
    List.filter_map
      (fun (name, wall, calls) ->
        let w0, c0 =
          match List.find_opt (fun (n, _, _) -> n = name) s.snap_phases with
          | Some (_, w, c) -> (w, c)
          | None -> (0.0, 0)
        in
        let dw = wall -. w0 and dc = calls - c0 in
        if dc = 0 && dw = 0.0 then None else Some (name, dw, dc))
      now_p
  in
  let counter_delta =
    List.filter_map
      (fun (name, n) ->
        let n0 =
          match List.assoc_opt name s.snap_counters with Some v -> v | None -> 0
        in
        if n = n0 then None else Some (name, n - n0))
      now_c
  in
  (phase_delta, counter_delta)
