exception Timeout of string

(* The deadline as epoch seconds; [infinity] = no watchdog.  One atomic
   float read on the fast path keeps [poll] cheap enough for the solver's
   work loop (which normalizes a whole constraint system per iteration). *)
let deadline = Atomic.make infinity

(* The limit that produced the current deadline, for the Timeout message. *)
let limit_ms = Atomic.make 0

let active () = Atomic.get deadline < infinity

let expired () =
  let d = Atomic.get deadline in
  d < infinity && Unix.gettimeofday () > d

let poll () =
  if expired () then
    raise (Timeout (Printf.sprintf "wall-clock limit exceeded (%d ms)" (Atomic.get limit_ms)))

let with_timeout ~ms f =
  if ms <= 0 then Ok (f ())
  else begin
    let start = Unix.gettimeofday () in
    let outer_deadline = Atomic.get deadline in
    let outer_limit = Atomic.get limit_ms in
    let mine = start +. (float_of_int ms /. 1000.0) in
    (* nesting keeps the tighter deadline *)
    if mine < outer_deadline then begin
      Atomic.set deadline mine;
      Atomic.set limit_ms ms
    end;
    let restore () =
      Atomic.set deadline outer_deadline;
      Atomic.set limit_ms outer_limit
    in
    match f () with
    | v ->
        restore ();
        Ok v
    | exception (Timeout _ as e) ->
        let bt = Printexc.get_raw_backtrace () in
        restore ();
        (* Attribute the timeout to the deadline that actually fired: a
           Timeout observed while our own deadline still lies in the
           future belongs to a tighter *outer* deadline and must keep
           propagating — converting it to this level's [Error] would
           swallow the outer watchdog and let its caller keep running. *)
        if Unix.gettimeofday () >= mine then Error (Unix.gettimeofday () -. start)
        else Printexc.raise_with_backtrace e bt
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        restore ();
        Printexc.raise_with_backtrace e bt
  end

let hang () =
  while true do
    poll ();
    ignore (Unix.select [] [] [] 0.001)
  done
