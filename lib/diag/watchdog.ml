exception Timeout of string

(* The deadline as epoch seconds; [infinity] = no watchdog.  One atomic
   float read on the fast path keeps [poll] cheap enough for the solver's
   work loop (which normalizes a whole constraint system per iteration). *)
let deadline = Atomic.make infinity

(* The limit that produced the current deadline, for the Timeout message. *)
let limit_ms = Atomic.make 0

let active () = Atomic.get deadline < infinity

let poll () =
  let d = Atomic.get deadline in
  if d < infinity && Unix.gettimeofday () > d then
    raise (Timeout (Printf.sprintf "wall-clock limit exceeded (%d ms)" (Atomic.get limit_ms)))

let with_timeout ~ms f =
  if ms <= 0 then Ok (f ())
  else begin
    let start = Unix.gettimeofday () in
    let outer_deadline = Atomic.get deadline in
    let outer_limit = Atomic.get limit_ms in
    let mine = start +. (float_of_int ms /. 1000.0) in
    (* nesting keeps the tighter deadline *)
    if mine < outer_deadline then begin
      Atomic.set deadline mine;
      Atomic.set limit_ms ms
    end;
    let restore () =
      Atomic.set deadline outer_deadline;
      Atomic.set limit_ms outer_limit
    in
    match f () with
    | v ->
        restore ();
        Ok v
    | exception Timeout _ ->
        restore ();
        Error (Unix.gettimeofday () -. start)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        restore ();
        Printexc.raise_with_backtrace e bt
  end

let hang () =
  while true do
    poll ();
    ignore (Unix.select [] [] [] 0.001)
  done
