(** Fault injection for the resource-bounded analysis path.

    The degraded path (budget exhaustion inside {!Inl_presburger.Omega})
    is hard to reach on the small systems of real programs, so tests and
    operators can force it: fail every Nth projection, fail everything
    after the Nth, or cap the work budget.  The hook is consulted by
    [Omega.project]; installing {!none} (the initial state) makes it
    free.

    Configuration is process-global and explicit: the library never reads
    the environment on its own — [inltool] wires the [INL_FAULTS]
    variable / [--inject-faults] flag to {!parse} + {!install}. *)

type t = {
  fail_every : int option;  (** force a failure on every Nth projection (1 = all) *)
  fail_after : int option;  (** force a failure on every projection after the Nth *)
  cap_work : int option;  (** cap the Fourier-Motzkin work budget at K items *)
  hang_after : int option;
      (** simulate a hung solver on every projection after the Nth: the
          projection spins inside {!Watchdog.hang} instead of failing —
          only a wall-clock watchdog gets the process out.  [hang=0]
          hangs the first projection.  Used to drill the fuzz driver's
          timeout path. *)
}

val none : t

val parse : string -> (t, string) result
(** Comma-separated [key=value] spec: ["every=2,after=10,cap=100,hang=5"];
    ["off"] and [""] mean {!none}. *)

val to_string : t -> string

val install : t -> unit
(** Replaces the active spec and resets the projection counter. *)

val current : unit -> t
val active : unit -> bool

val reset_counters : unit -> unit
(** Restart the projection count; called at the start of every analysis
    run so injected failures are deterministic per run. *)

val project_fault : unit -> [ `None | `Fail | `Hang ]
(** Called once per projection attempt (one counter increment): [`Fail]
    means inject a {!Inl_presburger.Omega.Blowup}, [`Hang] means the
    caller should enter {!Watchdog.hang}.  A hang dominates a failure
    when both are scheduled for the same projection. *)

val effective_work : int -> int
(** The work budget after applying [cap_work]. *)
