(** Process-wide string-keyed memoization, mirroring the design of the
    Omega projection cache ({!Inl_presburger.Cache}): one mutex around a
    two-generation hash table — inserts fill a young generation; filling
    it retires the old one, so an entry unused for two generations is
    evicted in O(1) — with hit/miss/eviction counters for
    [inltool --stats].

    Callers key entries on a string they guarantee determines the stored
    value bit-for-bit, so a hit is indistinguishable from a recompute;
    that is what lets the search share one table across [--jobs] worker
    domains without breaking its byte-identity contract.  Two domains
    racing on a cold key may both compute the value — the duplicate
    insert is benign because the values are equal. *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : ?max_entries:int -> unit -> 'a t
(** [max_entries] (default 4096, clamped to >= 1) is the size of each
    generation; resident entries are bounded by twice that. *)

val set_enabled : 'a t -> bool -> unit
(** A disabled table answers every {!find} with [None], stores nothing,
    and counts nothing — the [--no-cache] contract: results are
    identical either way. *)

val enabled : 'a t -> bool

val find : 'a t -> string -> 'a option
val add : 'a t -> string -> 'a -> unit

val memo : 'a t -> string -> (unit -> 'a) -> 'a
(** [memo t key f] is [find]-or-compute-and-[add].  [f] runs outside the
    table's mutex; exceptions from [f] propagate and store nothing. *)

val clear : 'a t -> unit
(** Drops all entries and zeroes the counters. *)

val stats : 'a t -> stats

val hit_rate : stats -> float
(** Hits over lookups; [0.0] when no lookups happened. *)
