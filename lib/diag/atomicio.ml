(* Crash-safe file replacement: write a sibling temp file, fsync it,
   rename over the target, then fsync the directory so the rename itself
   is durable.  A reader therefore sees either the old contents or the
   new contents in full — never a torn write — even across a SIGKILL or
   power loss between any two steps.  Both the fuzz corpus cursor and
   the serve snapshots go through this one primitive so the discipline
   cannot drift between them. *)

let fsync_dir dir =
  (* Directory fsync is what makes the rename durable on Linux; file
     systems that refuse O_RDONLY-fsync on directories (or platforms
     without it) just lose the durability of the *rename*, not
     atomicity, so failures here are ignored. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  match Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
  | exception Unix.Unix_error (e, _, _) -> Error (tmp ^ ": " ^ Unix.error_message e)
  | fd -> (
      let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
      match
        let n = String.length contents in
        let written = ref 0 in
        while !written < n do
          written := !written + Unix.write_substring fd contents !written (n - !written)
        done;
        Unix.fsync fd
      with
      | () -> (
          Unix.close fd;
          match Sys.rename tmp path with
          | () ->
              fsync_dir (Filename.dirname path);
              Ok ()
          | exception Sys_error msg ->
              cleanup ();
              Error msg)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          cleanup ();
          Error (tmp ^ ": " ^ Unix.error_message e))

let write_file_atomic_exn path contents =
  match write_file_atomic path contents with Ok () -> () | Error msg -> raise (Sys_error msg)
