type policy = {
  budget_divisor : int;
  min_budget : int;
  timeout_divisor : int;
  min_timeout_ms : int;
}

let default_policy = { budget_divisor = 10; min_budget = 1_000; timeout_divisor = 4; min_timeout_ms = 50 }

let reduced_budget p fm = max p.min_budget (fm / p.budget_divisor)
let reduced_timeout p ms = if ms <= 0 then 0 else max p.min_timeout_ms (ms / p.timeout_divisor)

type reason = Deadline of { timeout_ms : int; elapsed : float } | Degraded of string

type 'a outcome =
  | Completed of 'a
  | Recovered of { value : 'a; first : reason; fm_work : int }
  | Exhausted of { first : reason; second : reason; fm_work : int }

(* One rung: the attempt's own deadline becomes [`Deadline], a
   degradable exception becomes [`Degraded], everything else propagates.
   [Watchdog.with_timeout] already re-raises a Timeout belonging to an
   outer deadline, and [classify] re-raises it again for the
   no-deadline path, so the ladder can never swallow a caller's
   watchdog. *)
let attempt ~degradable f ~fm_work ~timeout_ms =
  let classify e =
    match e with
    | Watchdog.Timeout _ -> raise e
    | e -> ( match degradable e with Some m -> `Degraded m | None -> raise e)
  in
  if timeout_ms <= 0 then
    match f ~fm_work ~timeout_ms with v -> `Ok v | exception e -> classify e
  else
    match Watchdog.with_timeout ~ms:timeout_ms (fun () -> f ~fm_work ~timeout_ms) with
    | Ok v -> `Ok v
    | Error elapsed -> `Deadline (Deadline { timeout_ms; elapsed })
    | exception e -> classify e

let run ?(policy = default_policy) ~fm_work ~timeout_ms ~degradable f =
  match attempt ~degradable f ~fm_work ~timeout_ms with
  | `Ok v -> Completed v
  | (`Deadline _ | `Degraded _) as failed -> (
      let first = match failed with `Deadline r -> r | `Degraded m -> Degraded m in
      let fm' = reduced_budget policy fm_work in
      let ms' = reduced_timeout policy timeout_ms in
      match attempt ~degradable f ~fm_work:fm' ~timeout_ms:ms' with
      | `Ok v -> Recovered { value = v; first; fm_work = fm' }
      | `Deadline second -> Exhausted { first; second; fm_work = fm' }
      | `Degraded m -> Exhausted { first; second = Degraded m; fm_work = fm' })
