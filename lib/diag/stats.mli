(** Process-wide wall-time accounting per pipeline phase, feeding
    [inltool --stats] and the solver benchmark.  Thread-safe (one mutex);
    timings are cumulative until {!reset}. *)

val timed : string -> (unit -> 'a) -> 'a
(** [timed phase f] runs [f], charging its wall time to [phase] (also on
    exception). *)

val add : string -> float -> unit
(** Charge [dt] seconds to a phase directly. *)

val phases : unit -> (string * float * int) list
(** [(phase, total_wall_seconds, timed_calls)], sorted by phase name. *)

val reset : unit -> unit
