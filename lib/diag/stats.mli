(** Process-wide wall-time accounting per pipeline phase, feeding
    [inltool --stats] and the solver benchmark.  Thread-safe (one mutex);
    timings are cumulative until {!reset}. *)

val timed : string -> (unit -> 'a) -> 'a
(** [timed phase f] runs [f], charging its wall time to [phase] (also on
    exception). *)

val add : string -> float -> unit
(** Charge [dt] seconds to a phase directly. *)

val phases : unit -> (string * float * int) list
(** [(phase, total_wall_seconds, timed_calls)], sorted by phase name. *)

val count : string -> int -> unit
(** [count name n] adds [n] to the named event counter — the search
    subsystem uses these for its pruning funnel (candidates generated /
    pruned by legality / statically scored / simulated).  Same mutex and
    lifetime as the phase timings. *)

val counters : unit -> (string * int) list
(** All event counters, sorted by name. *)

val reset : unit -> unit
(** Clear both the phase timings and the event counters. *)

type snapshot
(** A point-in-time copy of every phase timing and counter. *)

val snapshot : unit -> snapshot

val since : snapshot -> (string * float * int) list * (string * int) list
(** [(phase deltas, counter deltas)] accumulated after the snapshot was
    taken, zero entries omitted — how the serve daemon scopes the
    process-cumulative statistics to one request without resetting them
    under concurrent readers. *)
