(** Typed diagnostics for the whole pipeline.

    Every user-facing failure or degradation travels as a {!t}: a stable
    machine-readable code, a severity, the pipeline phase that produced
    it, a human message, and an optional source span.  Entry points that
    used to throw [Failure]/[Invalid_argument] return
    [('a, t list) result] instead; the driver renders the list on stderr
    and maps it to an exit code ({!exit_code}): 0 clean, 1 error,
    2 degraded-but-succeeded (warnings only). *)

type severity = Error | Warning | Info

type phase =
  | Parse
  | Layout
  | Analysis
  | Presburger
  | Legality
  | Completion
  | Codegen
  | Interp
  | Verify
  | Search
  | Serve
  | Corpus
  | Exec
  | Driver

type span = { line : int }
(** Source location, as far as the surface parser tracks one. *)

type t = {
  code : string;  (** stable, grep-able, e.g. ["A201"] *)
  severity : severity;
  phase : phase;
  message : string;
  span : span option;
}

val make : ?span:span -> code:string -> severity:severity -> phase:phase -> string -> t
val error : ?span:span -> code:string -> phase:phase -> string -> t
val warning : ?span:span -> code:string -> phase:phase -> string -> t
val info : ?span:span -> code:string -> phase:phase -> string -> t

val errorf :
  ?span:span -> code:string -> phase:phase -> ('a, Format.formatter, unit, t) format4 -> 'a

val warningf :
  ?span:span -> code:string -> phase:phase -> ('a, Format.formatter, unit, t) format4 -> 'a

val severity_to_string : severity -> string
val phase_to_string : phase -> string

val to_string : t -> string
(** ["error[L301] legality: <message>"], with [" (line N)"] appended when
    a span is present. *)

val list_to_string : t list -> string
(** Newline-joined {!to_string} of every element. *)

val pp : Format.formatter -> t -> unit

val has_errors : t list -> bool
val has_warnings : t list -> bool

val exit_code : t list -> int
(** 1 if any error, 2 if warnings only, 0 otherwise — the process exit
    contract of [inltool]. *)

val of_exn : phase:phase -> code:string -> exn -> t
(** Wraps the payload of [Failure]/[Invalid_argument] (or
    [Printexc.to_string] of anything else) as an error diagnostic. *)

val to_fields : t -> (string * string) list
(** Stable wire encoding: [("code", _); ("severity", _); ("phase", _);
    ("message", _)] plus [("line", _)] when a span is present.  The serve
    protocol maps these fields structurally into its JSON responses, so
    keys are append-only. *)
