(** The shared retry/degradation ladder.

    Three long-running surfaces — [inltool serve] per-request guarding,
    the fuzz driver's per-case watchdog, and the corpus bulk runner's
    per-kernel guarding — all follow the same shape: run the work once
    under a wall-clock deadline and a solver work budget; if that attempt
    times out or degrades (a solver blowup escaping the conservative
    paths), retry {e exactly once} at a sharply reduced budget (a solver
    that was grinding usually finishes fast when starved); if the retry
    also fails, hand the caller a typed, two-reason post-mortem instead
    of aborting the batch.  This module is that ladder, once, so the
    three call sites cannot drift apart.

    The ladder is policy-parameterised but message-agnostic: callers
    format their own diagnostics (R711/R706/R708 on the serve wire,
    the pinned fuzz timeout-finding detail, K-codes in the corpus
    runner) from the structured {!outcome}. *)

type policy = {
  budget_divisor : int;  (** retry budget = max min_budget (fm/divisor) *)
  min_budget : int;
  timeout_divisor : int;  (** retry deadline = max min_timeout_ms (ms/divisor) *)
  min_timeout_ms : int;
}

val default_policy : policy
(** Serve's ladder: budget/10 floored at 1_000, deadline/4 floored at
    50 ms. *)

val reduced_budget : policy -> int -> int

val reduced_timeout : policy -> int -> int
(** [<= 0] (no deadline) stays [0]. *)

type reason =
  | Deadline of { timeout_ms : int; elapsed : float }
      (** the attempt exceeded its own [timeout_ms] deadline *)
  | Degraded of string  (** [degradable] classified an escaped exception *)

type 'a outcome =
  | Completed of 'a  (** first attempt succeeded; no ladder involvement *)
  | Recovered of { value : 'a; first : reason; fm_work : int }
      (** the reduced-budget retry (at [fm_work]) answered *)
  | Exhausted of { first : reason; second : reason; fm_work : int }
      (** both rungs failed; callers emit a typed failure record *)

val run :
  ?policy:policy ->
  fm_work:int ->
  timeout_ms:int ->
  degradable:(exn -> string option) ->
  (fm_work:int -> timeout_ms:int -> 'a) ->
  'a outcome
(** [run ~fm_work ~timeout_ms ~degradable f] drives the ladder.  Each
    attempt calls [f ~fm_work ~timeout_ms] with that rung's budget and
    deadline under {!Watchdog.with_timeout} (no deadline when
    [timeout_ms <= 0]); [f] is responsible for installing the work
    budget (and any fault spec) for the attempt — installation must
    happen per attempt so injected failures fire on the same schedule on
    both rungs.

    An exception [e] escaping [f] is retried iff [degradable e] is
    [Some msg]; otherwise it propagates (serve recovers those as R707
    worker panics, the corpus runner as K707).  A {!Watchdog.Timeout}
    belonging to an {e outer} deadline is always re-raised, never
    consumed by the ladder — the caller owns that deadline. *)
