exception Interrupted

let flag = Atomic.make false
let installed = Atomic.make false

let install () =
  if not (Atomic.exchange installed true) then
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set flag true)))

let requested () = Atomic.get flag
let reset () = Atomic.set flag false
let check () = if requested () then raise Interrupted
let exit_code = 130
