(** Resource budgets for the exact-ILP core.

    Exact Fourier-Motzkin with splinters is worst-case super-exponential,
    so every projection runs under a budget instead of a hard-coded
    constant.  Exhausting any dimension raises
    {!Inl_presburger.Omega.Blowup}, which the dependence analyzer turns
    into a {e conservative approximate dependence} rather than a crash. *)

type t = {
  fm_work : int;
      (** work items (disjuncts processed) per projection; the historical
          hard-coded constant was 500_000 *)
  max_coeff_bits : int;
      (** hard stop on the bit-size of any coefficient produced during
          elimination (FM multiplies coefficients pairwise) *)
  max_projections : int;  (** projections per analysis run *)
  fuel : int;  (** overall step allowance for drivers that meter phases *)
}

val default : t
(** [{ fm_work = 500_000; max_coeff_bits = 4096; max_projections = 200_000;
      fuel = max_int }] *)

val with_fm_work : t -> int -> t
(** Clamped to at least 1. *)

val of_env : ?base:t -> unit -> t
(** [base] (default {!default}) with [fm_work] overridden by the
    [INL_FM_BUDGET] environment variable when it parses as a positive
    integer; silently ignores malformed values (the CLI validates its own
    flag). *)
