type t = { fm_work : int; max_coeff_bits : int; max_projections : int; fuel : int }

let default = { fm_work = 500_000; max_coeff_bits = 4096; max_projections = 200_000; fuel = max_int }

let with_fm_work t n = { t with fm_work = max 1 n }

let of_env ?(base = default) () =
  match Sys.getenv_opt "INL_FM_BUDGET" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> with_fm_work base n
      | _ -> base)
  | None -> base
