(** Per-case wall-clock watchdog, layered on top of {!Budget}.

    The resource budget bounds {e work}, not {e time}: a projection can
    stay within its work budget and still take arbitrarily long (large
    coefficients, deep splinter recursion), and an injected hang
    ({!Faults}, key [hang=N]) takes no work at all.  The watchdog bounds
    time: {!with_timeout} installs a process-wide deadline and solver
    loops call {!poll}, which raises {!Timeout} once the deadline has
    passed.  The fuzz driver classifies that as a [timeout] finding
    instead of leaving a stuck process behind.

    The deadline is a single atomic, so polling from worker domains is
    safe; {!Inl_parallel.Pool} re-raises a task's {!Timeout} in the
    caller.  Nesting installs the tighter deadline and restores the outer
    one on exit. *)

exception Timeout of string
(** Raised by {!poll} past the deadline; the message carries the
    configured limit. *)

val with_timeout : ms:int -> (unit -> 'a) -> ('a, float) result
(** [with_timeout ~ms f] runs [f] under a deadline [ms] milliseconds from
    now; [Error elapsed_seconds] when [f] (or a worker executing on its
    behalf) raised {!Timeout} and this level's own deadline has passed.
    A {!Timeout} raised while this level's deadline still lies in the
    future belongs to a tighter outer deadline and is re-raised, so a
    nested [with_timeout] can never swallow its caller's watchdog.  Any
    other outcome of [f] — value or exception — passes through
    unchanged.  [ms <= 0] means no deadline. *)

val active : unit -> bool
(** Is a deadline currently installed? *)

val expired : unit -> bool
(** Is a deadline installed {e and} already in the past?  The
    non-raising form of {!poll}: {!Inl_parallel.Pool} consults it when
    claiming batch tasks so a fan-out in flight when the deadline fires
    cancels its remaining tasks instead of running them to completion. *)

val poll : unit -> unit
(** Cheap check called from solver inner loops (one atomic load and, when
    a deadline is installed, one [gettimeofday]).
    @raise Timeout once the installed deadline has passed. *)

val hang : unit -> unit
(** Spin forever at poll granularity (1 ms sleeps), leaving only the
    watchdog as a way out — the implementation of the [hang=N] fault used
    to drill the timeout path.  Without an installed deadline this really
    does not return; only fault-injection tests should reach it. *)
