(** Cooperative SIGINT handling for long-running one-shot commands.

    [inltool serve] already drains cleanly on SIGTERM, but the bulk
    commands ([optimize], [fuzz], [corpus]) used to die mid-write on
    Ctrl-C.  {!install} replaces the default fatal handler with one that
    only sets an atomic flag; the command polls {!requested} (or calls
    {!check}) at safe points — between fuzz cases, between corpus
    kernels, between search generations — flushes its cursor or
    checkpoint, and exits {!exit_code} (128+SIGINT, the shell
    convention).  A second Ctrl-C during that wind-down is still just a
    flag set, so the atomic-rename persistence paths are never torn. *)

exception Interrupted
(** Raised by {!check}; a typed alternative to polling for call sites
    already structured around exceptions. *)

val install : unit -> unit
(** Swap in the flag-setting handler (idempotent; first call wins). *)

val requested : unit -> bool
(** Has SIGINT arrived since the last {!reset}? *)

val reset : unit -> unit
(** Clear the flag (used by tests and by commands that handled one
    interrupt and choose to keep going). *)

val check : unit -> unit
(** @raise Interrupted when {!requested}. *)

val exit_code : int
(** 130. *)
