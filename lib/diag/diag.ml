type severity = Error | Warning | Info

type phase =
  | Parse
  | Layout
  | Analysis
  | Presburger
  | Legality
  | Completion
  | Codegen
  | Interp
  | Verify
  | Search
  | Serve
  | Corpus
  | Exec
  | Driver

type span = { line : int }

type t = {
  code : string;
  severity : severity;
  phase : phase;
  message : string;
  span : span option;
}

let make ?span ~code ~severity ~phase message = { code; severity; phase; message; span }
let error ?span ~code ~phase message = make ?span ~code ~severity:Error ~phase message
let warning ?span ~code ~phase message = make ?span ~code ~severity:Warning ~phase message
let info ?span ~code ~phase message = make ?span ~code ~severity:Info ~phase message

let errorf ?span ~code ~phase fmt = Format.kasprintf (error ?span ~code ~phase) fmt
let warningf ?span ~code ~phase fmt = Format.kasprintf (warning ?span ~code ~phase) fmt

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let phase_to_string = function
  | Parse -> "parse"
  | Layout -> "layout"
  | Analysis -> "analysis"
  | Presburger -> "presburger"
  | Legality -> "legality"
  | Completion -> "completion"
  | Codegen -> "codegen"
  | Interp -> "interp"
  | Verify -> "verify"
  | Search -> "search"
  | Serve -> "serve"
  | Corpus -> "corpus"
  | Exec -> "exec"
  | Driver -> "driver"

let to_string d =
  let where = match d.span with None -> "" | Some { line } -> Printf.sprintf " (line %d)" line in
  Printf.sprintf "%s[%s] %s: %s%s" (severity_to_string d.severity) d.code
    (phase_to_string d.phase) d.message where

let list_to_string ds = String.concat "\n" (List.map to_string ds)

let pp fmt d = Format.pp_print_string fmt (to_string d)

let has_errors = List.exists (fun d -> d.severity = Error)
let has_warnings = List.exists (fun d -> d.severity = Warning)

let exit_code ds = if has_errors ds then 1 else if has_warnings ds then 2 else 0

let of_exn ~phase ~code = function
  | Failure msg | Invalid_argument msg -> error ~code ~phase msg
  | e -> error ~code ~phase (Printexc.to_string e)

(* The wire encoding used by the serve protocol: a flat field list any
   serializer can map structurally.  The field set is part of the wire
   contract — extend it, never repurpose a key. *)
let to_fields d =
  let base =
    [
      ("code", d.code);
      ("severity", severity_to_string d.severity);
      ("phase", phase_to_string d.phase);
      ("message", d.message);
    ]
  in
  match d.span with None -> base | Some { line } -> base @ [ ("line", string_of_int line) ]
