type t = { fail_every : int option; fail_after : int option; cap_work : int option }

let none = { fail_every = None; fail_after = None; cap_work = None }

let parse s : (t, string) result =
  let s = String.trim s in
  if s = "" || String.lowercase_ascii s = "off" then Ok none
  else
    let parts = String.split_on_char ',' s in
    List.fold_left
      (fun acc part ->
        match acc with
        | Error _ -> acc
        | Ok t -> (
            match String.index_opt part '=' with
            | None -> Error (Printf.sprintf "bad fault spec %S (expected key=value)" part)
            | Some i -> (
                let key = String.trim (String.sub part 0 i) in
                let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
                match (key, int_of_string_opt v) with
                | _, None -> Error (Printf.sprintf "bad fault value %S (expected an integer)" part)
                | _, Some n when n < 0 -> Error (Printf.sprintf "negative fault value %S" part)
                | "every", Some 0 -> Error "fault period every=0 (must be >= 1)"
                | "every", n -> Ok { t with fail_every = n }
                | "after", n -> Ok { t with fail_after = n }
                | "cap", n -> Ok { t with cap_work = n }
                | _ -> Error (Printf.sprintf "unknown fault key %S (every|after|cap)" key))))
      (Ok none) parts

let to_string t =
  let field name = function None -> [] | Some n -> [ Printf.sprintf "%s=%d" name n ] in
  match field "every" t.fail_every @ field "after" t.fail_after @ field "cap" t.cap_work with
  | [] -> "off"
  | fs -> String.concat "," fs

let state = ref none
let projections = ref 0

let install t =
  state := t;
  projections := 0

let current () = !state
let active () = !state <> none
let reset_counters () = projections := 0

let project_should_fail () =
  if not (active ()) then false
  else begin
    incr projections;
    let t = !state in
    (match t.fail_every with Some n when n > 0 -> !projections mod n = 0 | _ -> false)
    || match t.fail_after with Some n -> !projections > n | None -> false
  end

let effective_work limit =
  match (!state).cap_work with Some k -> min k limit | None -> limit
