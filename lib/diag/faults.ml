type t = {
  fail_every : int option;
  fail_after : int option;
  cap_work : int option;
  hang_after : int option;
}

let none = { fail_every = None; fail_after = None; cap_work = None; hang_after = None }

let parse s : (t, string) result =
  let s = String.trim s in
  if s = "" || String.lowercase_ascii s = "off" then Ok none
  else
    let parts = String.split_on_char ',' s in
    List.fold_left
      (fun acc part ->
        match acc with
        | Error _ -> acc
        | Ok t -> (
            match String.index_opt part '=' with
            | None -> Error (Printf.sprintf "bad fault spec %S (expected key=value)" part)
            | Some i -> (
                let key = String.trim (String.sub part 0 i) in
                let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
                match (key, int_of_string_opt v) with
                | _, None -> Error (Printf.sprintf "bad fault value %S (expected an integer)" part)
                | _, Some n when n < 0 -> Error (Printf.sprintf "negative fault value %S" part)
                | "every", Some 0 -> Error "fault period every=0 (must be >= 1)"
                | "every", n -> Ok { t with fail_every = n }
                | "after", n -> Ok { t with fail_after = n }
                | "cap", n -> Ok { t with cap_work = n }
                | "hang", n -> Ok { t with hang_after = n }
                | _ -> Error (Printf.sprintf "unknown fault key %S (every|after|cap|hang)" key))))
      (Ok none) parts

let to_string t =
  let field name = function None -> [] | Some n -> [ Printf.sprintf "%s=%d" name n ] in
  match
    field "every" t.fail_every @ field "after" t.fail_after @ field "cap" t.cap_work
    @ field "hang" t.hang_after
  with
  | [] -> "off"
  | fs -> String.concat "," fs

(* Atomics rather than plain refs: [project_should_fail] is consulted from
   worker domains when the solver fans out.  The counter is a single
   fetch-and-add, so the injected-failure schedule stays exact (every Nth
   call fails) even though which *task* sees the Nth call may vary; callers
   that need a reproducible schedule run with jobs=1 (the caches are also
   bypassed while faults are active). *)
let state = Atomic.make none
let projections = Atomic.make 0

let install t =
  Atomic.set state t;
  Atomic.set projections 0

let current () = Atomic.get state
let active () = Atomic.get state <> none
let reset_counters () = Atomic.set projections 0

let project_fault () =
  if not (active ()) then `None
  else begin
    let n = 1 + Atomic.fetch_and_add projections 1 in
    let t = Atomic.get state in
    (* a hang dominates: it models a solver that stops making progress,
       which no failure path ever reaches *)
    if match t.hang_after with Some k -> n > k | None -> false then `Hang
    else if
      (match t.fail_every with Some k when k > 0 -> n mod k = 0 | _ -> false)
      || match t.fail_after with Some k -> n > k | None -> false
    then `Fail
    else `None
  end

let effective_work limit =
  match (Atomic.get state).cap_work with Some k -> min k limit | None -> limit
