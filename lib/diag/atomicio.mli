(** Crash-safe atomic file replacement.

    [write_file_atomic] writes a sibling temp file, [fsync]s it, renames
    it over the target, and [fsync]s the containing directory — so the
    visible file always holds either the previous contents or the new
    contents in full, and the replacement survives a SIGKILL or power
    loss at any point.  The fuzz corpus cursor and the serve snapshots
    share this one primitive. *)

val write_file_atomic : string -> string -> (unit, string) result
(** [write_file_atomic path contents]: on [Error msg] the target file is
    untouched (the temp file is cleaned up best-effort). *)

val write_file_atomic_exn : string -> string -> unit
(** Same, raising [Sys_error] — for callers whose signature predates the
    result type. *)
