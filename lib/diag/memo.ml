type stats = { hits : int; misses : int; evictions : int; entries : int }

type 'a t = {
  mutex : Mutex.t;
  max_entries : int;
  mutable young : (string, 'a) Hashtbl.t;
  mutable old : (string, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable on : bool;
}

let create ?(max_entries = 4096) () =
  {
    mutex = Mutex.create ();
    max_entries = max 1 max_entries;
    young = Hashtbl.create 64;
    old = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    evictions = 0;
    on = true;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let set_enabled t b = locked t (fun () -> t.on <- b)
let enabled t = locked t (fun () -> t.on)

(* Inserts (fresh adds and old-to-young promotions alike) fill the young
   generation; when it is full the old generation is retired wholesale. *)
let insert t key v =
  Hashtbl.replace t.young key v;
  if Hashtbl.length t.young >= t.max_entries then begin
    t.evictions <- t.evictions + Hashtbl.length t.old;
    t.old <- t.young;
    t.young <- Hashtbl.create 64
  end

let find t key =
  locked t (fun () ->
      if not t.on then None
      else
        match Hashtbl.find_opt t.young key with
        | Some v ->
            t.hits <- t.hits + 1;
            Some v
        | None -> (
            match Hashtbl.find_opt t.old key with
            | Some v ->
                t.hits <- t.hits + 1;
                insert t key v;
                Some v
            | None ->
                t.misses <- t.misses + 1;
                None))

let add t key v = locked t (fun () -> if t.on then insert t key v)

let memo t key f =
  match find t key with
  | Some v -> v
  | None ->
      let v = f () in
      add t key v;
      v

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.young;
      Hashtbl.reset t.old;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.young + Hashtbl.length t.old;
      })

let hit_rate (s : stats) =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups
