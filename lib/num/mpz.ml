(* Arbitrary-precision signed integers: sign-magnitude over base-2^31 limbs.

   Magnitudes are little-endian int arrays with no trailing zero limb; the
   zero value is [{ sign = 0; mag = [||] }].  Keeping values canonical means
   polymorphic equality would be sound, but we still export explicit
   [equal]/[compare].

   Division is bit-serial (shift-and-subtract).  This is O(bits * limbs)
   rather than Knuth's algorithm D, which is acceptable here: coefficients in
   dependence systems start at magnitude <= a few hundred and grow only by
   pairwise products during elimination, so operands stay well under a few
   hundred bits. *)

type t = { sign : int; mag : int array }

let base_bits = 31
let base = 1 lsl base_bits
let limb_mask = base - 1

let zero = { sign = 0; mag = [||] }

(* ---- magnitude primitives ---- *)

let mag_is_zero m = Array.length m = 0

let normalize_mag m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let ai = if i < la then a.(i) else 0 in
    let bi = if i < lb then b.(i) else 0 in
    let s = ai + bi + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  normalize_mag r

(* Requires [cmp_mag a b >= 0]. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let d = a.(i) - bi - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize_mag r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai, b.(j) < 2^31 so the product fits in 62 bits; adding two
           31-bit quantities keeps us within the native 63-bit range. *)
        let t = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land limb_mask;
        carry := t lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land limb_mask;
        carry := t lsr base_bits;
        incr k
      done
    done;
    normalize_mag r
  end

let bitlen_mag m =
  let l = Array.length m in
  if l = 0 then 0
  else begin
    let top = m.(l - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((l - 1) * base_bits) + width top 0
  end

let test_bit_mag m i =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length m && (m.(limb) lsr off) land 1 = 1

(* Shift-and-subtract long division on magnitudes.  Returns (q, r). *)
let divmod_mag a b =
  if mag_is_zero b then raise Division_by_zero;
  if cmp_mag a b < 0 then ([||], a)
  else begin
    let nbits = bitlen_mag a in
    let nlimbs = Array.length a in
    let q = Array.make nlimbs 0 in
    (* Mutable remainder buffer, little-endian, one spare limb for shifts. *)
    let r = Array.make (Array.length b + 2) 0 in
    let rlen = ref 0 in
    let shl1_add bit =
      (* r := r*2 + bit *)
      let carry = ref bit in
      for i = 0 to !rlen - 1 do
        let t = (r.(i) lsl 1) lor !carry in
        r.(i) <- t land limb_mask;
        carry := t lsr base_bits
      done;
      if !carry <> 0 then begin
        r.(!rlen) <- !carry;
        incr rlen
      end
    in
    let r_ge_b () =
      let lb = Array.length b in
      if !rlen <> lb then !rlen > lb
      else
        let rec go i =
          if i < 0 then true
          else if r.(i) <> b.(i) then r.(i) > b.(i)
          else go (i - 1)
        in
        go (!rlen - 1)
    in
    let r_sub_b () =
      let lb = Array.length b in
      let borrow = ref 0 in
      for i = 0 to !rlen - 1 do
        let bi = if i < lb then b.(i) else 0 in
        let d = r.(i) - bi - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end
        else begin
          r.(i) <- d;
          borrow := 0
        end
      done;
      while !rlen > 0 && r.(!rlen - 1) = 0 do
        decr rlen
      done
    in
    for i = nbits - 1 downto 0 do
      shl1_add (if test_bit_mag a i then 1 else 0);
      if r_ge_b () then begin
        r_sub_b ();
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (normalize_mag q, normalize_mag (Array.sub r 0 !rlen))
  end

(* ---- signed layer ---- *)

let make sign mag = if mag_is_zero mag then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let negative = n < 0 in
    (* [-min_int] overflows back to [min_int], but [lsr]/[land] read the bit
       pattern as an unsigned 63-bit value, which for [min_int] is exactly
       2^62 = |min_int| — so the limb decomposition below is correct for
       every native int. *)
    let v = if negative then -n else n in
    let rec limbs v acc =
      if v = 0 then acc else limbs (v lsr base_bits) ((v land limb_mask) :: acc)
    in
    let magnitude = Array.of_list (List.rev (limbs v [])) in
    make (if negative then -1 else 1) magnitude
  end

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2

let sign x = x.sign
let is_zero x = x.sign = 0
let is_negative x = x.sign < 0
let is_positive x = x.sign > 0

let fits_int x =
  (* Native ints hold 62 magnitude bits plus sign. *)
  let bl = bitlen_mag x.mag in
  bl < 63 || (bl = 63 && x.sign < 0 && cmp_mag x.mag (of_int Stdlib.min_int).mag <= 0)

let to_int_opt x =
  if not (fits_int x) then None
  else begin
    let v = ref 0 in
    for i = Array.length x.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor x.mag.(i)
    done;
    Some (if x.sign < 0 then - !v else !v)
  end

let to_int x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Mpz.to_int: overflow"

let neg x = { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x
let num_bits x = bitlen_mag x.mag

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then { sign = x.sign; mag = add_mag x.mag y.mag }
  else begin
    let c = cmp_mag x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then { sign = x.sign; mag = sub_mag x.mag y.mag }
    else { sign = y.sign; mag = sub_mag y.mag x.mag }
  end

let sub x y = add x (neg y)

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else { sign = x.sign * y.sign; mag = mul_mag x.mag y.mag }

let mul_int x n = mul x (of_int n)
let succ x = add x one
let pred x = sub x one

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q_mag, r_mag = divmod_mag a.mag b.mag in
  let q = make (a.sign * b.sign) q_mag in
  let r = make a.sign r_mag in
  (q, r)

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let fdiv a b =
  let q, r = divmod a b in
  (* adjust truncated toward floor *)
  if is_zero r || (r.sign = b.sign) then q else pred q

let cdiv a b =
  let q, r = divmod a b in
  if is_zero r || r.sign <> b.sign then q else succ q

let fmod a b = sub a (mul (fdiv a b) b)

let rec gcd_pos a b = if is_zero b then a else gcd_pos b (snd (divmod a b))
let gcd a b = gcd_pos (abs a) (abs b)

let lcm a b =
  if is_zero a || is_zero b then zero
  else
    let g = gcd a b in
    abs (mul (fst (divmod a g)) b)

let hash x = Hashtbl.hash (x.sign, x.mag)

let pow x n =
  if n < 0 then invalid_arg "Mpz.pow: negative exponent";
  let rec go acc b n = if n = 0 then acc else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1) else go acc (mul b b) (n lsr 1) in
  go one x n

let ten = of_int 10

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec digits v =
      if is_zero v then ()
      else begin
        let q, r = divmod v ten in
        digits q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int r))
      end
    in
    digits (abs x);
    (if x.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Mpz.of_string: empty string";
  let negative, start =
    if s.[0] = '-' then (true, 1) else if s.[0] = '+' then (false, 1) else (false, 0)
  in
  if start >= n then invalid_arg "Mpz.of_string: no digits";
  let acc = ref zero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Mpz.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !acc else !acc

let is_one x = equal x one

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) x y = not (equal x y)
  let ( < ) x y = compare x y < 0
  let ( <= ) x y = compare x y <= 0
  let ( > ) x y = compare x y > 0
  let ( >= ) x y = compare x y >= 0
end
