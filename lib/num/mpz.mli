(** Arbitrary-precision signed integers.

    The sealed build environment provides no [zarith], yet exact integer
    arithmetic is load-bearing for this reproduction: Fourier-Motzkin
    elimination multiplies inequality coefficients pairwise, so native
    integers can overflow even on modest dependence systems.  This module
    implements sign-magnitude bignums on base-2^31 limbs (limb products fit
    comfortably in OCaml's 63-bit native ints).

    Values are immutable and canonical: the zero value has an empty limb
    array, and no value carries leading zero limbs, so structural equality
    coincides with numeric equality. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t

val of_int : int -> t

val to_int : t -> int
(** [to_int x] is the native-int value of [x].
    @raise Failure if [x] does not fit in a native int. *)

val to_int_opt : t -> int option
val fits_int : t -> bool

val of_string : string -> t
(** Parses an optionally [-]-prefixed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t

(** Bit length of the magnitude; [num_bits zero = 0].  Used by the
    resource-bounded elimination engine to cap coefficient growth. *)
val num_bits : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] having the sign of [a] (or zero).
    @raise Division_by_zero if [b] is zero. *)

val fdiv : t -> t -> t
(** Floor division: largest [q] with [q*b <= a] (for [b > 0]). *)

val cdiv : t -> t -> t
(** Ceiling division: smallest [q] with [q*b >= a] (for [b > 0]). *)

val fmod : t -> t -> t
(** [fmod a b = a - (fdiv a b) * b]; for [b > 0] the result is in
    [0, b-1]. *)

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd zero zero = zero]. *)

val lcm : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val is_positive : t -> bool

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative [n]. *)

val pp : Format.formatter -> t -> unit

(* Infix operators, intended for local [open Mpz.Infix]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
