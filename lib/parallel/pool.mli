(** A minimal fixed Domain pool for the solver fan-outs (dependence
    pairs, per-dependence legality, verify ILP checks, completion
    candidates).

    Guarantees:
    - results come back in input order, independent of schedule;
    - an exception raised by a task is re-raised in the caller (the
      lowest-index failure when several tasks fail);
    - [jobs = 1] executes exactly [List.map] on the calling domain — no
      domains are involved, so sequential behaviour is bit-identical;
    - helper domains are spawned once (lazily, on the first call needing
      them) and parked between calls; each call caps participation at
      [jobs - 1] helpers plus the calling domain.  An [at_exit] hook
      retires them, and correctness never depends on a helper waking up:
      the caller drains every batch itself. *)

val set_jobs : int -> unit
(** Set the requested process-default worker count (clamped to >= 1); the
    CLI wires [--jobs] / [INL_JOBS] here. *)

val requested_jobs : unit -> int
(** The value last given to {!set_jobs} (initially 1). *)

val jobs : unit -> int
(** The effective process default: the requested count capped at
    [Domain.recommended_domain_count ()] — oversubscribing cores with
    active domains makes every minor-GC rendezvous slower, so asking for
    more workers than the machine has can only lose.  Explicit [?jobs]
    arguments below are not capped. *)

val jobs_of_env : unit -> int option
(** Parse [INL_JOBS] ([Some n] when it is an integer >= 1). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] with results in input order; [?jobs] overrides the process
    default for this call. *)

val filter_map : ?jobs:int -> ('a -> 'b option) -> 'a list -> 'b list

val revive : unit -> unit
(** Undo a {!shutdown}: clear the retired flag so the next {!map} can
    spawn fresh helper domains.  The serve daemon calls this after
    recovering from a worker panic whose cleanup path shut the pool
    down; while the pool is live it is a no-op. *)

val shutdown : unit -> unit
(** Retire every parked helper domain (idempotent — safe to call any
    number of times, from cleanup paths and the [at_exit] hook alike;
    each helper is joined exactly once).  Registered via [at_exit] at
    module load, so an aborted run — e.g. a fuzz case killed by the
    watchdog — never leaves helper domains alive.  The pool remains
    usable afterwards: {!map} still drains every batch on the calling
    domain, only without helper parallelism. *)
