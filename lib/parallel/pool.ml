(* A tiny fixed Domain pool (the container bans external packages, so no
   domainslib).  Helper domains are spawned once, on first use, and then
   parked on a condition variable between bulk calls — Domain.spawn costs
   milliseconds, so spawning per call would dwarf the fan-outs it serves.
   Work is published as a "batch" (an atomic task counter over an index
   range); helpers and the calling domain race to claim indices, and the
   caller returns only after every task has completed.  Correctness never
   depends on helpers participating: the caller drains the batch itself,
   so a helper that wakes late (or never) only costs parallelism. *)

module Watchdog = Inl_diag.Watchdog

let default_jobs = Atomic.make 1

let set_jobs n = Atomic.set default_jobs (max 1 n)
let requested_jobs () = Atomic.get default_jobs

(* The effective process default never exceeds the hardware parallelism:
   running more active domains than cores does not just fail to help, it
   actively hurts — every minor collection is a stop-the-world rendezvous
   across domains, and oversubscribed domains reach their safepoints at
   the mercy of the OS scheduler.  Callers that pass [?jobs] explicitly
   (the determinism tests do) are taken at their word. *)
let jobs () = min (Atomic.get default_jobs) (max 1 (Domain.recommended_domain_count ()))

let jobs_of_env () =
  match Sys.getenv_opt "INL_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

(* Outcome slot for one task; exceptions are re-raised in the caller, in
   index order, so failures are as deterministic as results. *)
type 'b outcome = Value of 'b | Raised of exn * Printexc.raw_backtrace

type batch = {
  id : int;  (* monotonically increasing; helpers skip batches already seen *)
  n : int;
  run : int -> unit;  (* claims nothing; runs task [i] and records its outcome *)
  next : int Atomic.t;  (* next unclaimed task index *)
  slots : int Atomic.t;  (* helper participation cap: jobs - 1 for this call *)
}

type pool = {
  lock : Mutex.t;
  work : Condition.t;  (* a new batch was published, or shutdown *)
  finished : Condition.t;  (* some batch completed its last task *)
  mutable current : batch option;
  mutable next_id : int;
  mutable helpers : int;  (* helper domains alive (caller not counted) *)
  mutable handles : unit Domain.t list;
  mutable shutdown : bool;
}

let pool =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    current = None;
    next_id = 0;
    helpers = 0;
    handles = [];
    shutdown = false;
  }

let drain (b : batch) =
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.n then begin
      b.run i;
      go ()
    end
  in
  go ()

(* Helper life: sleep until a batch newer than the last one seen appears,
   claim a participation slot, drain, repeat; exit on shutdown. *)
let worker () =
  let last = ref 0 in
  Mutex.lock pool.lock;
  let rec loop () =
    if pool.shutdown then Mutex.unlock pool.lock
    else
      match pool.current with
      | Some b when b.id > !last ->
          last := b.id;
          if Atomic.fetch_and_add b.slots (-1) > 0 then begin
            Mutex.unlock pool.lock;
            drain b;
            Mutex.lock pool.lock
          end;
          loop ()
      | _ ->
          Condition.wait pool.work pool.lock;
          loop ()
  in
  loop ()

(* Idempotent: the handle list is taken under the lock, so exactly one
   caller joins each helper no matter how many times (or from how many
   threads) shutdown is invoked.  After shutdown the pool stays usable —
   [map] always drains its batch on the calling domain — it just runs
   without helper parallelism. *)
let shutdown () =
  Mutex.lock pool.lock;
  pool.shutdown <- true;
  let handles = pool.handles in
  pool.handles <- [];
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join handles

(* Registered unconditionally at module load (not lazily on first spawn):
   an aborted run can kill the process between [ensure_helpers]'s spawn
   and its bookkeeping, and a parked helper domain must never survive the
   main domain. *)
let () = at_exit shutdown

(* Recovery for long-running processes (the serve daemon): after a
   shutdown — explicit, or a cleanup path that ran early — clear the
   flag so the next [map] can spawn fresh helpers again.  A no-op while
   the pool is live; [shutdown] has already joined every old helper, so
   there is nothing to leak. *)
let revive () =
  Mutex.lock pool.lock;
  if pool.shutdown then begin
    pool.shutdown <- false;
    pool.helpers <- 0
  end;
  Mutex.unlock pool.lock

(* Grow the helper set to [k]; never shrinks — an idle helper parked on
   the condition variable costs nothing measurable. *)
let ensure_helpers k =
  if k > pool.helpers then begin
    Mutex.lock pool.lock;
    let missing = k - pool.helpers in
    if missing > 0 && not pool.shutdown then begin
      pool.helpers <- k;
      pool.handles <- List.init missing (fun _ -> Domain.spawn worker) @ pool.handles
    end;
    Mutex.unlock pool.lock
  end

let run_tasks n_workers n f =
  let results = Array.make n None in
  let completed = Atomic.make 0 in
  let run i =
    (results.(i) <-
       (* An expired watchdog cancels every not-yet-started task: the
          poll raises Timeout before [f] runs, the slot records it like
          any task failure, and the batch completes promptly instead of
          running the remaining fan-out to completion against a deadline
          that has already fired.  The caller then re-raises the
          lowest-index exception — the typed Timeout — exactly as if the
          task itself had polled. *)
       (try
          Watchdog.poll ();
          Some (Value (f i))
        with e -> Some (Raised (e, Printexc.get_raw_backtrace ()))));
    (* the finisher of the last task wakes the submitting caller; the
       broadcast is taken under the pool lock so the caller cannot miss
       it between its check and its wait *)
    if Atomic.fetch_and_add completed 1 = n - 1 then begin
      Mutex.lock pool.lock;
      Condition.broadcast pool.finished;
      Mutex.unlock pool.lock
    end
  in
  ensure_helpers (n_workers - 1);
  Mutex.lock pool.lock;
  pool.next_id <- pool.next_id + 1;
  let b =
    { id = pool.next_id; n; run; next = Atomic.make 0; slots = Atomic.make (n_workers - 1) }
  in
  pool.current <- Some b;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  drain b;
  Mutex.lock pool.lock;
  while Atomic.get completed < n do
    Condition.wait pool.finished pool.lock
  done;
  (match pool.current with Some c when c == b -> pool.current <- None | _ -> ());
  Mutex.unlock pool.lock;
  Array.map
    (function
      | Some (Value v) -> v
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    results

let map ?jobs:j f xs =
  let j = match j with Some j -> max 1 j | None -> jobs () in
  match xs with
  | [] -> []
  | _ when j = 1 -> List.map f xs (* bit-exact sequential behaviour *)
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      Array.to_list (run_tasks (min j n) n (fun i -> f arr.(i)))

let filter_map ?jobs f xs = List.filter_map Fun.id (map ?jobs f xs)
