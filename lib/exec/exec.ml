(* The execution runtime: run a (possibly transformed) nest for real on
   OCaml domains.

   The plan is chosen from the DOALL report ({!Inl_verify.Doall}): the
   outermost loop whose status is [Parallel] becomes the fan-out
   dimension.  Execution walks the nest sequentially with the
   interpreter's hook ({!Inl_interp.Interp.run_nest}); each entry of the
   chosen loop chunks its iteration range contiguously over the Domain
   pool, one overlay store per chunk.  The DOALL condition is exactly
   what makes this safe: no two iterations of the loop touch the same
   cell with a write, so any cell a worker reads is either written
   earlier by its own slice (found in the overlay) or never written by
   any iteration (found in the shared base store, which is read-only
   during the fan-out).  Overlays merge back in chunk order, so the
   final store is deterministic — and byte-identical to the sequential
   interpreter, which the differential check enforces before any timing
   is reported. *)

module Ast = Inl_ir.Ast
module Diag = Inl_diag.Diag
module Doall = Inl_verify.Doall
module Interp = Inl_interp.Interp
module Pool = Inl_parallel.Pool
module Omega = Inl_presburger.Omega

type doall = (Ast.path * string * Doall.status) list

type plan = Par of { path : Ast.path; var : string; depth : int } | Seq of Diag.t option

let analyze (prog : Ast.program) : doall =
  let ctx = Omega.new_analysis () in
  Omega.reset_fresh_names ();
  Doall.analyze ~ctx prog

let doall_count (d : doall) =
  List.length (List.filter (fun (_, _, s) -> s = Doall.Parallel) d)

(* Is [prefix] a strict prefix of [path]? *)
let rec strict_prefix prefix path =
  match (prefix, path) with
  | [], _ :: _ -> true
  | x :: p, y :: q -> x = y && strict_prefix p q
  | _, _ -> false

let choose (d : doall) : plan =
  (* depth of a loop = number of loops enclosing it (paths also traverse
     [If]/[Let] nodes, so path length alone over-counts) *)
  let loop_depth path =
    List.length (List.filter (fun (p, _, _) -> strict_prefix p path) d)
  in
  let parallels = List.filter (fun (_, _, s) -> s = Doall.Parallel) d in
  match parallels with
  | first :: rest ->
      (* outermost wins; the report is in DFS order, so the fold's strict
         [<] keeps the syntactically first loop among equal depths *)
      let (path, var, _), depth =
        List.fold_left
          (fun (b, bd) c ->
            let (p, _, _) = c in
            let cd = loop_depth p in
            if cd < bd then (c, cd) else (b, bd))
          (first, loop_depth (let p, _, _ = first in p))
          rest
      in
      Par { path; var; depth }
  | [] ->
      let unknown =
        List.find_map (function p, v, Doall.Unknown m -> Some (p, v, m) | _ -> None) d
      in
      let reason =
        match (unknown, d) with
        | _, [] -> None (* straight-line program: nothing to parallelize *)
        | Some (_, v, m), _ ->
            Some
              (Diag.warningf ~code:"X902" ~phase:Diag.Exec
                 "DOALL analysis inconclusive for loop %s (%s); executing sequentially" v m)
        | None, _ ->
            Some
              (Diag.warningf ~code:"X901" ~phase:Diag.Exec
                 "no DOALL dimension: all %d loops carry dependences; executing sequentially"
                 (List.length d))
      in
      Seq reason

let plan_var = function Par { var; _ } -> Some var | Seq _ -> None

(* Contiguous near-equal chunks, at most [k], in input order. *)
let chunk k xs =
  let n = List.length xs in
  if n = 0 then []
  else
    let k = max 1 (min k n) in
    let base = n / k and extra = n mod k in
    let rec take i xs acc =
      if i = 0 then (List.rev acc, xs)
      else match xs with [] -> (List.rev acc, []) | x :: tl -> take (i - 1) tl (x :: acc)
    in
    let rec go i xs =
      if i >= k then []
      else
        let sz = base + if i < extra then 1 else 0 in
        let c, rest = take sz xs [] in
        c :: go (i + 1) rest
    in
    go 0 xs

let execute ?(jobs = 1) ?init ?max_steps ~(plan : plan) (prog : Ast.program)
    ~(params : (string * int) list) : Interp.store =
  let store : Interp.store = Hashtbl.create 256 in
  (match plan with
  | Seq _ -> Interp.run_nest ?init ?max_steps ~store prog ~params
  | Par { path; _ } ->
      let on_loop p (l : Ast.loop) bindings =
        if p <> path then `Default
        else begin
          let values = Interp.loop_values ~params ~bindings l in
          let overlays =
            Pool.map ~jobs
              (fun slice ->
                let overlay : Interp.store = Hashtbl.create 256 in
                (* Reads that miss the overlay fall back to the shared
                   base store (read-only during the fan-out), then to the
                   caller's initializer. *)
                let slice_init a idx =
                  match Hashtbl.find_opt store (a, idx) with
                  | Some v -> v
                  | None -> ( match init with Some f -> f a idx | None -> Interp.default_init a idx)
                in
                Interp.run_slice ~init:slice_init ?max_steps ~store:overlay ~bindings
                  ~values:slice l ~params;
                overlay)
              (chunk jobs values)
          in
          List.iter (fun ov -> Hashtbl.iter (fun c v -> Hashtbl.replace store c v) ov) overlays;
          `Handled
        end
      in
      Interp.run_nest ?init ?max_steps ~on_loop ~store prog ~params);
  store

type report = {
  plan : plan;
  doall : doall;
  loops : int;
  jobs_requested : int;
  cores : int;
  repeat : int;
  seq_ms : float;
  par_ms : float;
  cells : int;
  notes : Diag.t list;
}

let speedup r = if r.par_ms > 0. then r.seq_ms /. r.par_ms else 1.0

(* Min-of-N wall clock; the result comes from the first run (all runs
   are deterministic, so any would do). *)
let best_of n f =
  let result = ref None in
  let best = ref infinity in
  for _ = 1 to max 1 n do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    if ms < !best then best := ms;
    if !result = None then result := Some r
  done;
  (Option.get !result, !best)

let benchmark ?(jobs = 1) ?(repeat = 3) ?init ?max_steps (prog : Ast.program)
    ~(params : (string * int) list) : (report, Diag.t list) result =
  match analyze prog with
  | exception Ast.Invalid msg ->
      Error [ Diag.errorf ~code:"X802" ~phase:Diag.Exec "invalid program: %s" msg ]
  | doall -> (
      let plan = choose doall in
      let cores = Domain.recommended_domain_count () in
      let notes =
        (match plan with Seq (Some d) -> [ d ] | _ -> [])
        @
        if jobs > cores then
          [
            Diag.make ~code:"X903" ~severity:Diag.Info ~phase:Diag.Exec
              (Printf.sprintf
                 "%d threads requested but only %d core%s available; speedup is bounded by \
                  the hardware"
                 jobs cores
                 (if cores = 1 then " is" else "s are"));
          ]
        else []
      in
      match
        let seq_store, seq_ms =
          best_of repeat (fun () -> execute ~jobs:1 ?init ?max_steps ~plan:(Seq None) prog ~params)
        in
        let par_store, par_ms =
          best_of repeat (fun () -> execute ~jobs ?init ?max_steps ~plan prog ~params)
        in
        (seq_store, seq_ms, par_store, par_ms)
      with
      | exception Interp.Step_limit n ->
          Error [ Diag.errorf ~code:"X803" ~phase:Diag.Exec "step limit exceeded (%d)" n ]
      | exception Invalid_argument msg ->
          Error [ Diag.errorf ~code:"X802" ~phase:Diag.Exec "%s" msg ]
      | seq_store, seq_ms, par_store, par_ms -> (
          (* the differential gate: no timing leaves this function unless
             the parallel store is byte-identical to the sequential one *)
          match Interp.store_diff seq_store par_store with
          | Error d ->
              Error
                [
                  Diag.errorf ~code:"X801" ~phase:Diag.Exec
                    "parallel execution diverged from the sequential interpreter: %s" d;
                ]
          | Ok () ->
              Ok
                {
                  plan;
                  doall;
                  loops = List.length doall;
                  jobs_requested = jobs;
                  cores;
                  repeat;
                  seq_ms;
                  par_ms;
                  cells = Hashtbl.length seq_store;
                  notes;
                }))

(* Stable one-word-ish label for corpus records and drift guards: never
   encodes wall time. *)
let label : (report, Diag.t list) result -> string = function
  | Error ds -> (
      match ds with [] -> "error" | d :: _ -> "error:" ^ d.Diag.code)
  | Ok r -> (
      match r.plan with
      | Par { var; _ } -> Printf.sprintf "ok:doall=%s" var
      | Seq (Some d) -> "degraded:" ^ d.Diag.code
      | Seq None -> "ok:seq")

let render ?(timings = true) (r : report) : string list =
  let ms v = if timings then Printf.sprintf "%.3f ms" v else "- ms" in
  let sp = if timings then Printf.sprintf "%.2fx" (speedup r) else "-" in
  let plan_line =
    match r.plan with
    | Par { var; depth; _ } ->
        Printf.sprintf "plan: parallel loop %s (depth %d, %d/%d loops doall)" var depth
          (doall_count r.doall) r.loops
    | Seq _ ->
        Printf.sprintf "plan: sequential (%d/%d loops doall)" (doall_count r.doall) r.loops
  in
  [
    plan_line;
    Printf.sprintf "threads: requested=%d cores=%d" r.jobs_requested r.cores;
    Printf.sprintf "differential: ok (%d cells)" r.cells;
    Printf.sprintf "sequential: best-of-%d %s" r.repeat (ms r.seq_ms);
    Printf.sprintf "parallel:   best-of-%d %s (speedup %s)" r.repeat (ms r.par_ms) sp;
  ]
