(** Textual C/OpenMP backend.

    Lowers a (possibly transformed) nest to a self-contained C99
    program: measured array extents (one traced interpreter run at the
    given parameter values sizes every array, with index macros
    shifting negative origins), [ceild]/[floord]/[lmax]/[lmin] helpers
    for strided and covering bounds, guards as [if]s, exact-quotient
    [Let]s as integer divisions, and [#pragma omp parallel for] on each
    proven-DOALL loop that is not enclosed by another one.  The emitted
    [main] initializes the arrays deterministically, times the kernel
    and prints a checksum — emit-only: nothing in tier-1 compiles the
    output, so the repo carries no C-compiler dependency. *)

module Ast = Inl_ir.Ast
module Doall = Inl_verify.Doall

val emit :
  Ast.program ->
  params:(string * int) list ->
  doall:(Ast.path * string * Doall.status) list ->
  string
