(** The parallel execution runtime: run DOALL schedules on real cores.

    The verify layer proves which loop levels carry no dependences
    ({!Inl_verify.Doall}); this module is what finally {e executes}
    them.  A plan designates the outermost provably-parallel loop; the
    nest is walked sequentially by the interpreter up to that loop, and
    each entry of it fans its iteration range out over the Domain pool
    in contiguous chunks, one overlay store per worker.  The DOALL
    race-freedom condition makes the overlays sound: a cell a worker
    reads is either written earlier within its own slice or never
    written by any iteration of the loop, so the fallback read from the
    shared base store can never observe a torn or stale value.  Overlays
    merge back in chunk order — the result is deterministic for any
    [jobs], and {!benchmark} refuses to report timings unless the
    parallel store is byte-identical to the sequential interpreter's.

    Failure model (DESIGN §16): degradations and failures are typed
    [X]-codes in the {!Inl_diag.Diag.Exec} phase — [X901] no DOALL
    dimension (warning; sequential fallback), [X902] DOALL analysis
    inconclusive (warning; sequential fallback), [X903] more threads
    requested than cores (info; honesty note), [X801] parallel store
    diverged (error; timing withheld), [X802] invalid/unbound program,
    [X803] step limit exceeded. *)

module Ast = Inl_ir.Ast
module Diag = Inl_diag.Diag
module Doall = Inl_verify.Doall
module Interp = Inl_interp.Interp

type doall = (Ast.path * string * Doall.status) list
(** The DOALL report, in DFS order — one entry per loop. *)

type plan =
  | Par of { path : Ast.path; var : string; depth : int }
      (** fan out at the loop with this path; [depth] counts enclosing
          loops ([0] = top level) *)
  | Seq of Diag.t option
      (** sequential; the diagnostic (when present) says why parallel
          execution was declined ([X901]/[X902]) *)

val analyze : Ast.program -> doall
(** Fresh-context DOALL analysis (deterministic across calls in one
    process). *)

val doall_count : doall -> int
(** Number of provably parallel loops. *)

val choose : doall -> plan
(** The outermost [Parallel] loop (ties broken by syntactic order), or a
    [Seq] fallback carrying the [X901]/[X902] degradation. *)

val plan_var : plan -> string option

val execute :
  ?jobs:int ->
  ?init:(string -> int list -> float) ->
  ?max_steps:int ->
  plan:plan ->
  Ast.program ->
  params:(string * int) list ->
  Interp.store
(** Runs the program under the plan and returns the final store.  With a
    [Par] plan the designated loop's range is chunked over [jobs]
    domains ([jobs] is not capped at the core count — oversubscription
    is the caller's choice); the result is deterministic and, for a
    correct DOALL verdict, byte-identical to {!Interp.run}.  Exceptions
    from workers ({!Interp.Step_limit}, [Invalid_argument]) are
    re-raised in the caller. *)

type report = {
  plan : plan;
  doall : doall;
  loops : int;  (** total loops in the nest *)
  jobs_requested : int;
  cores : int;  (** [Domain.recommended_domain_count ()] — the honest bound *)
  repeat : int;
  seq_ms : float;  (** min-of-[repeat] sequential wall clock *)
  par_ms : float;  (** min-of-[repeat] planned-execution wall clock *)
  cells : int;  (** store size — identical on both sides by construction *)
  notes : Diag.t list;  (** [X901]/[X902] warnings, [X903] info *)
}

val speedup : report -> float

val benchmark :
  ?jobs:int ->
  ?repeat:int ->
  ?init:(string -> int list -> float) ->
  ?max_steps:int ->
  Ast.program ->
  params:(string * int) list ->
  (report, Diag.t list) result
(** Times the sequential interpreter and the planned execution
    (min-of-[repeat] each, default 3) and differentially checks their
    stores.  [Error] carries [X801] on divergence — no timing is ever
    reported for a run that failed the check — or [X802]/[X803] when the
    program cannot be executed at all. *)

val label : (report, Diag.t list) result -> string
(** Stable drift-guard label, never encoding wall time:
    ["ok:doall=<var>"], ["ok:seq"], ["degraded:X901"], ["error:X801"],
    ... *)

val render : ?timings:bool -> report -> string list
(** Human-readable report lines (plan, threads/cores, differential
    verdict, both timings); [~timings:false] replaces every wall time
    and the speedup with ["-"] so the shape can be pinned in cram
    tests.  [notes] are not rendered — the caller prints them as
    diagnostics. *)
