(* Textual C/OpenMP backend: lower a (possibly transformed) nest to a
   self-contained C file with `#pragma omp parallel for` on the
   proven-DOALL dimensions.

   Emit-only by design — nothing in tier-1 compiles the output, so the
   repo carries no C-compiler dependency; the file is for taking the
   measured schedules to real OpenMP hardware.  Array extents are
   measured by tracing one interpreter run at the given parameter
   values, so the emitted program is closed (no command-line inputs) and
   prints a checksum plus the kernel wall time. *)

module Mpz = Inl_num.Mpz
module Ast = Inl_ir.Ast
module Linexpr = Inl_presburger.Linexpr
module Doall = Inl_verify.Doall
module Interp = Inl_interp.Interp

type extent = { dims : int; lo : int array; hi : int array }

let measure_extents (prog : Ast.program) ~params : (string * extent) list =
  let tbl : (string, extent) Hashtbl.t = Hashtbl.create 8 in
  let trace (a : Interp.access) =
    let idx = Array.of_list a.Interp.index in
    match Hashtbl.find_opt tbl a.Interp.array with
    | None ->
        Hashtbl.replace tbl a.Interp.array
          { dims = Array.length idx; lo = Array.copy idx; hi = Array.copy idx }
    | Some e ->
        Array.iteri
          (fun i v ->
            if i < e.dims then begin
              if v < e.lo.(i) then e.lo.(i) <- v;
              if v > e.hi.(i) then e.hi.(i) <- v
            end)
          idx
  in
  ignore (Interp.run ~trace prog ~params);
  Hashtbl.fold (fun name e acc -> (name, e) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let caffine (e : Ast.affine) = Format.asprintf "%a" Linexpr.pp e

let cbterm ~(round : [ `Up | `Down ]) ({ num; den } : Ast.bterm) =
  if Mpz.is_one den then Printf.sprintf "(%s)" (caffine num)
  else
    Printf.sprintf "%s(%s, %s)"
      (match round with `Up -> "ceild" | `Down -> "floord")
      (caffine num) (Mpz.to_string den)

let cbound ~(role : [ `Lower | `Upper ]) (b : Ast.bound) =
  let round = match role with `Lower -> `Up | `Upper -> `Down in
  let terms = List.map (cbterm ~round) b.Ast.terms in
  let combine = match b.Ast.combine with `Max -> "lmax" | `Min -> "lmin" in
  List.fold_left (fun acc t -> Printf.sprintf "%s(%s, %s)" combine acc t) (List.hd terms)
    (List.tl terms)

let cguard = function
  | Ast.Gcmp (`Ge, e) -> Printf.sprintf "(%s) >= 0" (caffine e)
  | Ast.Gcmp (`Eq, e) -> Printf.sprintf "(%s) == 0" (caffine e)
  | Ast.Gdiv (d, e) -> Printf.sprintf "(%s) %% %s == 0" (caffine e) (Mpz.to_string d)

let aref_c (r : Ast.aref) =
  Printf.sprintf "%s_(%s)" r.Ast.array (String.concat ", " (List.map caffine r.Ast.index))

(* Uninterpreted calls become deterministic stub functions, one per
   (name, arity). *)
let uf_name f arity = Printf.sprintf "uf_%s%d" f arity

let rec cexpr ufs = function
  | Ast.Econst f -> Printf.sprintf "%.17g" f
  | Ast.Evar v -> Printf.sprintf "(double)(%s)" v
  | Ast.Eref r -> aref_c r
  | Ast.Ebin (op, a, b) ->
      let s = match op with Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/" in
      Printf.sprintf "(%s %s %s)" (cexpr ufs a) s (cexpr ufs b)
  | Ast.Ecall (f, args) -> (
      let cargs = List.map (cexpr ufs) args in
      match (f, cargs) with
      | "sqrt", [ x ] -> Printf.sprintf "sqrt(fabs(%s))" x
      | "abs", [ x ] -> Printf.sprintf "fabs(%s)" x
      | "min", [ a; b ] -> Printf.sprintf "fmin(%s, %s)" a b
      | "max", [ a; b ] -> Printf.sprintf "fmax(%s, %s)" a b
      | _ ->
          let arity = List.length args in
          if not (List.mem (f, arity) !ufs) then ufs := (f, arity) :: !ufs;
          Printf.sprintf "%s(%s)" (uf_name f arity) (String.concat ", " cargs))

let emit (prog : Ast.program) ~(params : (string * int) list)
    ~(doall : (Ast.path * string * Doall.status) list) : string =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  let line ind fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b (String.make (2 * ind) ' ');
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let extents = measure_extents prog ~params in
  (* parallel loops that are not enclosed by another parallel loop get
     the pragma — OpenMP nested parallel regions would only oversubscribe *)
  let parallel_paths =
    List.filter_map (fun (p, _, s) -> if s = Doall.Parallel then Some p else None) doall
  in
  let rec is_strict_prefix p q =
    match (p, q) with
    | [], _ :: _ -> true
    | x :: p, y :: q -> x = y && is_strict_prefix p q
    | _, _ -> false
  in
  let pragma_paths =
    List.filter
      (fun p -> not (List.exists (fun q -> is_strict_prefix q p) parallel_paths))
      parallel_paths
  in
  let ufs = ref [] in
  (* render the kernel first so the uninterpreted-stub set is known *)
  let kernel = Buffer.create 1024 in
  let kout ind fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string kernel (String.make (2 * ind) ' ');
        Buffer.add_string kernel s;
        Buffer.add_char kernel '\n')
      fmt
  in
  let rec node ind rpath i n =
    let rpath = i :: rpath in
    match n with
    | Ast.Stmt s -> kout ind "%s = %s; /* %s */" (aref_c s.Ast.lhs) (cexpr ufs s.Ast.rhs) s.Ast.label
    | Ast.If (gs, body) ->
        kout ind "if (%s) {" (String.concat " && " (List.map cguard gs));
        body_nodes (ind + 1) rpath body;
        kout ind "}"
    | Ast.Let (v, { Ast.num; den }, body) ->
        kout ind "{";
        (* exact quotient by construction (a Gdiv guard precedes), so C
           truncation agrees with the mathematical quotient *)
        kout (ind + 1) "const int %s = (%s) / %s;" v (caffine num) (Mpz.to_string den);
        body_nodes (ind + 1) rpath body;
        kout ind "}"
    | Ast.Loop l ->
        if List.mem (List.rev rpath) pragma_paths then kout ind "#pragma omp parallel for";
        kout ind "for (int %s = %s; %s <= %s; %s += %s) {" l.Ast.var
          (cbound ~role:`Lower l.Ast.lower)
          l.Ast.var
          (cbound ~role:`Upper l.Ast.upper)
          l.Ast.var (Mpz.to_string l.Ast.step);
        body_nodes (ind + 1) rpath l.Ast.body;
        kout ind "}"
  and body_nodes ind rpath body = List.iteri (fun i n -> node ind rpath i n) body in
  body_nodes 1 [] prog.Ast.nest;
  (* file header *)
  out "/* generated by inltool run --emit-c; do not edit. */\n";
  out "#include <stdio.h>\n#include <math.h>\n#include <time.h>\n";
  out "#ifdef _OPENMP\n#include <omp.h>\n#endif\n\n";
  out "#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))\n";
  out "#define ceild(n, d) (((n) < 0) ? -((-(n)) / (d)) : ((n) + (d) - 1) / (d))\n";
  out "#define lmax(a, b) ((a) > (b) ? (a) : (b))\n";
  out "#define lmin(a, b) ((a) < (b) ? (a) : (b))\n\n";
  List.iter (fun (p, v) -> out "#define %s %d\n" p v) params;
  if params <> [] then out "\n";
  (* arrays at measured extents, index macros shifting negative origins *)
  List.iter
    (fun (name, e) ->
      let sizes =
        Array.to_list (Array.init e.dims (fun i -> e.hi.(i) - e.lo.(i) + 1))
      in
      out "static double %s%s;\n" name
        (String.concat "" (List.map (Printf.sprintf "[%d]") sizes));
      let args = List.init e.dims (fun i -> Printf.sprintf "i%d" i) in
      let subs =
        List.mapi (fun i a -> Printf.sprintf "[(%s) - (%d)]" a e.lo.(i)) args
      in
      out "#define %s_(%s) %s%s\n" name (String.concat ", " args) name (String.concat "" subs))
    extents;
  if extents <> [] then out "\n";
  List.iter
    (fun (f, arity) ->
      let args = List.init arity (fun i -> Printf.sprintf "double a%d" i) in
      let mix =
        List.init arity (fun i -> Printf.sprintf "%d.0 * a%d" ((i * 12) + 17) i)
      in
      out "static double %s(%s) { return 1.0 + fmod(fabs(%s), 1.0); }\n" (uf_name f arity)
        (String.concat ", " args)
        (String.concat " + " (if mix = [] then [ "0.0" ] else mix)))
    (List.rev !ufs);
  if !ufs <> [] then out "\n";
  out "int main(void) {\n";
  (* deterministic dense initialization over each measured extent box *)
  List.iter
    (fun (name, e) ->
      let idxs = List.init e.dims (fun i -> Printf.sprintf "i%d" i) in
      List.iteri
        (fun i v -> line (i + 1) "for (int %s = %d; %s <= %d; %s++)" v e.lo.(i) v e.hi.(i) v)
        idxs;
      let mix =
        List.mapi (fun i v -> Printf.sprintf "%d * %s" ((i * 6) + 7) v) idxs
      in
      line (e.dims + 1) "%s_(%s) = 1.0 + (double)(((%s) %% 1048576 + 1048576) %% 1048576) / 1048576.0;"
        name (String.concat ", " idxs)
        (String.concat " + " (if mix = [] then [ "0" ] else mix)))
    extents;
  out "#ifdef _OPENMP\n";
  line 1 "double t0 = omp_get_wtime();";
  out "#else\n";
  line 1 "clock_t t0 = clock();";
  out "#endif\n";
  Buffer.add_buffer b kernel;
  out "#ifdef _OPENMP\n";
  line 1 "double elapsed = omp_get_wtime() - t0;";
  out "#else\n";
  line 1 "double elapsed = (double)(clock() - t0) / CLOCKS_PER_SEC;";
  out "#endif\n";
  line 1 "double checksum = 0.0;";
  List.iter
    (fun (name, e) ->
      let idxs = List.init e.dims (fun i -> Printf.sprintf "i%d" i) in
      List.iteri
        (fun i v -> line (i + 1) "for (int %s = %d; %s <= %d; %s++)" v e.lo.(i) v e.hi.(i) v)
        idxs;
      line (e.dims + 1) "checksum += %s_(%s);" name (String.concat ", " idxs))
    extents;
  line 1 "printf(\"checksum %%.17g\\n\", checksum);";
  line 1 "printf(\"kernel %%.6f s\\n\", elapsed);";
  line 1 "return 0;";
  out "}\n";
  Buffer.contents b
