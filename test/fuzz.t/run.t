The differential fuzzing harness, end to end.  Case streams are derived
independently from (seed, index), so every line below is deterministic.

A seeded smoke campaign: 50 cases under a generous per-case watchdog.
Zero findings means the three judges — legality, static translation
validation, and the interpreter — agreed on every case:

  $ inltool fuzz --seed 42 --cases 50 --timeout-ms 5000 --corpus corpus
  fuzz: seed=42 cases=50 completed=50 ok=34 skipped=16 findings=0 (crash=0 divergence=0 verdict-mismatch=0 timeout=0)

The summary line is persisted into the corpus for later inspection:

  $ cat corpus/summary
  fuzz: seed=42 cases=50 completed=50 ok=34 skipped=16 findings=0 (crash=0 divergence=0 verdict-mismatch=0 timeout=0)

Interrupted campaigns resume.  Run three cases, then ask for five: the
driver continues at case 4, and the split totals (1+0 ok, 2+2 skipped)
equal the uninterrupted five-case campaign:

  $ inltool fuzz --seed 42 --cases 3 --corpus resume
  fuzz: seed=42 cases=3 completed=3 ok=1 skipped=2 findings=0 (crash=0 divergence=0 verdict-mismatch=0 timeout=0)
  $ inltool fuzz --seed 42 --cases 5 --corpus resume
  fuzz: resuming at case 4 of 5
  fuzz: seed=42 cases=5 completed=2 ok=0 skipped=2 findings=0 (crash=0 divergence=0 verdict-mismatch=0 timeout=0)

A corpus remembers its seed; continuing it under a different one is
refused rather than silently mixing case streams:

  $ inltool fuzz --seed 9 --cases 5 --corpus resume
  error[D706] driver: corpus resume belongs to a campaign seeded with 42, not 9 (use a fresh directory or the original seed)
  [1]

The watchdog drill: an injected solver hang (fault key hang=N makes
every projection after the Nth spin forever) is converted into a timeout
finding — after one retry under a reduced solver budget — instead of
wedging the harness.  The case is quarantined as a replayable pair next
to its pre-shrink original and a triage note:

  $ inltool fuzz --seed 42 --cases 1 --timeout-ms 200 --corpus hang --no-shrink --inject-faults hang=30
  fuzz: case 0: finding timeout -> hang/finding-0-timeout [case exceeded the 200 ms watchdog twice (reduced-budget retry at fm_work=50000)]
  fuzz: seed=42 cases=1 completed=1 ok=0 skipped=0 findings=1 (crash=0 divergence=0 verdict-mismatch=0 timeout=1)
  [1]
  $ ls hang | sort
  cursor
  finding-0-timeout-detail.txt
  finding-0-timeout-orig.inl
  finding-0-timeout-orig.tf
  finding-0-timeout.inl
  finding-0-timeout.tf
  summary

Replaying the quarantined finding under the same fault configuration
reproduces the timeout signature (exit 1):

  $ inltool fuzz --replay hang/finding-0-timeout --timeout-ms 200 --inject-faults hang=0
  replay finding-0-timeout: finding timeout: case exceeded the 200 ms wall-clock watchdog
  [1]

Without the injected hang the same case is healthy — the finding was the
hang, not the program:

  $ inltool fuzz --replay hang/finding-0-timeout
  replay finding-0-timeout: pass: illegal (consistent: nothing to generate)
