(* Tests for the completion-procedure extension with loop distribution and
   fusion (the paper's Section 7 future work).

   The decisive case: in a loop containing both a recurrence and an
   independent statement, reversing the independent statement's loop is
   impossible with a single shared loop row, but becomes possible after
   distribution — the extension discovers this automatically. *)

module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout
module Interp = Inl_interp.Interp
module Ext = Inl.Completion_ext

let mixed_src =
  "params N\n\
   do I = 1..N\n\
  \ S1: B(I) = B(I-1) + 1\n\
  \ S2: A(I) = A(I) + 2\n\
   enddo\n"

let two_loops_src =
  "params N\n\
   do I = 1..N\n\
  \ S1: A(I) = 2 * I\n\
   enddo\n\
   do I2 = 1..N\n\
  \ S2: B(I2) = A(I2) + 1\n\
   enddo\n"

let bad_fusion_src =
  "params N\n\
   do I = 1..N\n\
  \ S1: A(I) = B(I) + 1\n\
   enddo\n\
   do I2 = 1..N\n\
  \ S2: C(I2) = A(I2+1) * 2\n\
   enddo\n"

(* S2's loop is reversed in the given variant/matrix. *)
let s2_reversed (v : Ext.variant) (m : Mat.t) =
  match Inl.Legality.check v.Ext.layout m v.Ext.deps with
  | Inl.Legality.Illegal _ -> false
  | Inl.Legality.Legal { structure; _ } ->
      let p = Inl.Perstmt.of_structure structure "S2" in
      Mat.rows p.Inl.Perstmt.matrix = 1
      && Mpz.equal (Mat.get p.Inl.Perstmt.matrix 0 0) Mpz.minus_one

let test_variants_enumeration () =
  let ctx = Inl.analyze_source mixed_src in
  let vs = Ext.variants ctx.Inl.layout ctx.Inl.deps in
  (* original + the (legal) distribution between S1 and S2 *)
  Alcotest.(check int) "two variants" 2 (List.length vs);
  match vs with
  | [ { Ext.restructuring = Ext.Original; _ }; { Ext.restructuring = Ext.Distributed 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected [original; distributed at 1]"

let test_reversal_needs_distribution () =
  let ctx = Inl.analyze_source mixed_src in
  (* without restructuring: no legal matrix reverses S2's loop (S1 shares it) *)
  let base_only =
    Inl.Completion.complete ctx.Inl.layout ctx.Inl.deps ~partial:[]
      ~goal:(fun m ->
        s2_reversed
          {
            Ext.restructuring = Ext.Original;
            program = ctx.Inl.program;
            layout = ctx.Inl.layout;
            deps = ctx.Inl.deps;
          }
          m)
  in
  Alcotest.(check bool) "impossible without distribution" true (base_only = None);
  match Ext.complete_with_restructuring ctx.Inl.layout ctx.Inl.deps ~goal:s2_reversed with
  | None -> Alcotest.fail "extension should find a distributed solution"
  | Some (v, m) -> (
      (match v.Ext.restructuring with
      | Ext.Distributed 1 -> ()
      | r -> Alcotest.failf "expected distribution, got %s" (Ext.describe r));
      (* the distributed variant itself is equivalent to the source *)
      (match Interp.equivalent ctx.Inl.program v.Ext.program ~params:[ ("N", 6) ] with
      | Ok () -> ()
      | Error d -> Alcotest.failf "distributed variant differs: %s" d);
      (* and the transformed distributed program still is *)
      let vctx = Inl.analyze ~padding:Layout.Diagonal v.Ext.program in
      match Inl.transform vctx m with
      | Error ds -> Alcotest.failf "codegen failed: %s" (Inl.Diag.list_to_string ds)
      | Ok prog -> (
          match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", 6) ] with
          | Ok () -> ()
          | Error d -> Alcotest.failf "final program differs: %s" d))

let test_fusion_variant () =
  let ctx = Inl.analyze_source two_loops_src in
  let vs = Ext.variants ctx.Inl.layout ctx.Inl.deps in
  let fused =
    List.find_opt (fun v -> v.Ext.restructuring = Ext.Fused) vs
  in
  match fused with
  | None -> Alcotest.fail "fusion should be legal here"
  | Some v -> (
      (match v.Ext.program.Ast.nest with
      | [ Ast.Loop l ] -> Alcotest.(check int) "fused children" 2 (List.length l.Ast.body)
      | _ -> Alcotest.fail "expected one fused loop");
      match Interp.equivalent ctx.Inl.program v.Ext.program ~params:[ ("N", 7) ] with
      | Ok () -> ()
      | Error d -> Alcotest.failf "fused variant differs: %s" d)

let test_fusion_goal () =
  let ctx = Inl.analyze_source two_loops_src in
  (* goal: a single top-level loop *)
  let single_loop (v : Ext.variant) _ =
    match v.Ext.program.Ast.nest with [ Ast.Loop _ ] -> true | _ -> false
  in
  match Ext.complete_with_restructuring ctx.Inl.layout ctx.Inl.deps ~goal:single_loop with
  | Some (v, _) when v.Ext.restructuring = Ext.Fused -> ()
  | Some (v, _) -> Alcotest.failf "expected fusion, got %s" (Ext.describe v.Ext.restructuring)
  | None -> Alcotest.fail "fusion goal unreachable"

let test_illegal_fusion_rejected () =
  let ctx = Inl.analyze_source bad_fusion_src in
  (* A(I2+1) is read one iteration ahead of its production: fusing would
     read the stale value *)
  let vs = Ext.variants ctx.Inl.layout ctx.Inl.deps in
  Alcotest.(check bool) "no fused variant" true
    (not (List.exists (fun v -> v.Ext.restructuring = Ext.Fused) vs))

let test_cholesky_distribution_rejected () =
  let ctx = Inl.analyze_source Inl_kernels.Paper_examples.simplified_cholesky in
  let vs = Ext.variants ctx.Inl.layout ctx.Inl.deps in
  Alcotest.(check int) "only the original" 1 (List.length vs)

let () =
  Alcotest.run "completion-ext"
    [
      ( "extension",
        [
          Alcotest.test_case "variant enumeration" `Quick test_variants_enumeration;
          Alcotest.test_case "reversal needs distribution" `Quick test_reversal_needs_distribution;
          Alcotest.test_case "fusion variant" `Quick test_fusion_variant;
          Alcotest.test_case "fusion goal" `Quick test_fusion_goal;
          Alcotest.test_case "illegal fusion rejected" `Quick test_illegal_fusion_rejected;
          Alcotest.test_case "Cholesky distribution rejected" `Quick
            test_cholesky_distribution_rejected;
        ] );
    ]
