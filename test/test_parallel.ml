(* Tests for the memoized, parallel solver core.

   Three layers:
   - Pool unit tests force real helper domains with explicit [~jobs]
     (the process default is capped at the core count, so only explicit
     arguments exercise multi-domain schedules on small machines):
     input-order results, lowest-index exception, nesting.
   - QCheck properties: [System.canonicalize] preserves the solution set
     (it is the cache key, so this is the cache's soundness), and cached
     projection/satisfiability answers are structurally identical to
     uncached ones.
   - Determinism: the rendered output of the full pipeline (deps,
     legality, completion, codegen, verify) is byte-identical with the
     cache on or off and with jobs 1 or 4. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
module Constr = Inl_presburger.Constr
module System = Inl_presburger.System
module Omega = Inl_presburger.Omega
module Cache = Inl_presburger.Cache
module Pool = Inl_parallel.Pool
module Px = Inl_kernels.Paper_examples
module Dep = Inl_depend.Dep
module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec

let le = Linexpr.of_terms

(* ---- pool ---- *)

let test_map_order () =
  let xs = List.init 100 Fun.id in
  let want = List.map (fun x -> (x * x) + 1) xs in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "jobs 1" want (Pool.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "jobs 2" want (Pool.map ~jobs:2 f xs);
  Alcotest.(check (list int)) "jobs 4" want (Pool.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 f []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Pool.map ~jobs:4 f [ 1 ])

let test_map_exception () =
  (* several tasks fail; the lowest-index failure is re-raised *)
  let f i = if i > 0 && i mod 3 = 0 then failwith (string_of_int i) else i in
  (match Pool.map ~jobs:4 f (List.init 50 Fun.id) with
  | _ -> Alcotest.fail "expected a failure"
  | exception Failure msg -> Alcotest.(check string) "lowest index wins" "3" msg);
  (* a failing map leaves the pool reusable *)
  Alcotest.(check (list int)) "pool survives" [ 0; 1; 2 ] (Pool.map ~jobs:2 Fun.id [ 0; 1; 2 ])

let test_map_nested () =
  let inner i = List.fold_left ( + ) 0 (Pool.map ~jobs:2 (fun j -> i * j) (List.init 10 Fun.id)) in
  let got = Pool.map ~jobs:2 inner (List.init 8 Fun.id) in
  Alcotest.(check (list int)) "nested" (List.map (fun i -> 45 * i) (List.init 8 Fun.id)) got

let test_filter_map () =
  let f x = if x mod 2 = 0 then Some (x / 2) else None in
  Alcotest.(check (list int))
    "filter_map" (List.filter_map f (List.init 20 Fun.id))
    (Pool.filter_map ~jobs:3 f (List.init 20 Fun.id))

let test_jobs_cap () =
  let before = Pool.requested_jobs () in
  Pool.set_jobs 7;
  Alcotest.(check int) "requested" 7 (Pool.requested_jobs ());
  Alcotest.(check bool) "capped at cores" true
    (Pool.jobs () <= max 1 (Domain.recommended_domain_count ()));
  Pool.set_jobs 0;
  Alcotest.(check int) "clamped to 1" 1 (Pool.requested_jobs ());
  Pool.set_jobs before

(* ---- shutdown ---- *)

let test_shutdown_idempotent () =
  (* spin helpers up, tear them down twice, and keep using the pool:
     shutdown is idempotent and never strands a caller *)
  Alcotest.(check (list int)) "warm-up" [ 0; 1; 2 ] (Pool.map ~jobs:3 Fun.id [ 0; 1; 2 ]);
  Pool.shutdown ();
  Pool.shutdown ();
  Alcotest.(check (list int))
    "usable after shutdown" [ 1; 4; 9 ]
    (Pool.map ~jobs:3 (fun x -> x * x) [ 1; 2; 3 ]);
  Pool.shutdown ();
  Alcotest.(check (list int)) "and again" [ 5 ] (Pool.map ~jobs:2 Fun.id [ 5 ])

let test_shutdown_cold () =
  (* shutdown with no helpers ever started is a no-op *)
  Pool.shutdown ();
  Alcotest.(check (list int)) "still works" [ 7 ] (Pool.map ~jobs:2 Fun.id [ 7 ])

(* ---- projection cache unit tests ---- *)

let canon_exn sys =
  match System.canonicalize sys with Some s -> s | None -> Alcotest.fail "unexpectedly infeasible"

let simple_sys k =
  canon_exn
    [ Constr.ge (le [ (1, "x") ] (-k)); Constr.ge (le [ (-1, "x") ] (k + 5)) ]

let test_cache_counters () =
  let c = Cache.create ~max_entries:2 () in
  let budget = Inl_diag.Budget.default in
  let kept = [ "x" ] in
  Alcotest.(check bool) "initial miss" true (Cache.find c ~sys:(simple_sys 0) ~kept ~budget = None);
  Cache.add c ~sys:(simple_sys 0) ~kept ~budget [ simple_sys 0 ];
  (match Cache.find c ~sys:(simple_sys 0) ~kept ~budget with
  | Some [ s ] -> Alcotest.(check bool) "hit returns stored" true (System.equal s (simple_sys 0))
  | _ -> Alcotest.fail "expected a hit");
  (* same system under a different budget is a different key *)
  let tight = Inl_diag.Budget.with_fm_work budget 7 in
  Alcotest.(check bool) "budget in key" true
    (Cache.find c ~sys:(simple_sys 0) ~kept ~budget:tight = None);
  (* overflow two generations and observe evictions *)
  for k = 1 to 6 do
    Cache.add c ~sys:(simple_sys k) ~kept ~budget [ simple_sys k ]
  done;
  let s = Cache.stats c in
  Alcotest.(check bool) "evictions counted" true (s.Cache.evictions > 0);
  Alcotest.(check bool) "bounded" true (s.Cache.entries <= 4);
  Cache.clear c;
  let s = Cache.stats c in
  Alcotest.(check int) "clear zeroes entries" 0 s.Cache.entries;
  Alcotest.(check int) "clear zeroes hits" 0 s.Cache.hits

(* ---- QCheck properties ---- *)

let box_vars = [ "x"; "y"; "z" ]
let box_lo = -5
let box_hi = 5
let box = List.map (fun v -> (v, box_lo, box_hi)) box_vars

let gen_constr : Constr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* nvars = int_range 1 3 in
  let* coefs = list_size (return nvars) (int_range (-3) 3) in
  let* which = list_size (return nvars) (int_range 0 2) in
  let* const = int_range (-8) 8 in
  let* is_eq = frequency [ (3, return false); (1, return true) ] in
  let terms = List.map2 (fun c w -> (c, List.nth box_vars w)) coefs which in
  let e = le terms const in
  return (if is_eq then Constr.eq e else Constr.ge e)

let gen_sys : System.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 5 in
  list_size (return n) gen_constr

let boxed sys =
  List.fold_left
    (fun acc v ->
      System.add
        (Constr.ge2 (Linexpr.var v) (Linexpr.of_int box_lo))
        (System.add (Constr.le2 (Linexpr.var v) (Linexpr.of_int box_hi)) acc))
    sys box_vars

let sols sys = System.solutions_in_box sys box

let prop name ?(count = 300) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let props =
  [
    prop "canonicalize preserves the solution set" gen_sys (fun sys ->
        let sys = boxed sys in
        match System.canonicalize sys with
        | None -> sols sys = []
        | Some sys' -> sols sys = sols sys');
    prop "canonical equals imply equal solution sets" gen_sys (fun sys ->
        (* hash/equal consistency on the cache key type *)
        let sys = boxed sys in
        match System.canonicalize sys with
        | None -> true
        | Some c1 -> (
            match System.canonicalize (List.rev sys) with
            | None -> false
            | Some c2 -> System.equal c1 c2 && System.hash c1 = System.hash c2));
    prop "cached answers are structurally identical to uncached" ~count:150 gen_sys (fun sys ->
        let sys = boxed sys in
        let keep v = v = "x" || v = "y" in
        Omega.clear_cache ();
        let on = Omega.new_analysis ~use_cache:true () in
        let off = Omega.new_analysis ~use_cache:false () in
        Omega.reset_fresh_names ();
        let p_fill = Omega.project ~ctx:on sys ~keep in
        let p_hit = Omega.project ~ctx:on sys ~keep in
        Omega.reset_fresh_names ();
        let p_off = Omega.project ~ctx:off sys ~keep in
        let sat_on = Omega.satisfiable ~ctx:on sys in
        let sat_off = Omega.satisfiable ~ctx:off sys in
        p_fill = p_off && p_hit = p_off && sat_on = sat_off);
  ]

(* ---- end-to-end determinism ---- *)

(* Render everything observable the pipeline produces for a kernel. *)
let render_kernel buf src partial =
  let ctx = Inl.analyze_source src in
  List.iter (fun d -> Buffer.add_string buf (Format.asprintf "%a\n" Dep.pp d)) ctx.Inl.deps;
  List.iter (fun d -> Buffer.add_string buf (Inl.Diag.to_string d ^ "\n")) ctx.Inl.diags;
  match partial with
  | None -> ()
  | Some rows -> (
      match Inl.complete_result ctx ~partial:(List.map Vec.of_int_list rows) with
      | Error ds -> Buffer.add_string buf (Inl.Diag.list_to_string ds ^ "\n")
      | Ok m -> (
          Buffer.add_string buf (Format.asprintf "%a\n" Mat.pp m);
          match Inl.transform ctx m with
          | Error ds -> Buffer.add_string buf (Inl.Diag.list_to_string ds ^ "\n")
          | Ok prog ->
              Buffer.add_string buf (Inl.Pp.program_to_string prog ^ "\n");
              let report = Inl_verify.Verify.run ~against:ctx.Inl.program prog in
              List.iter
                (fun d -> Buffer.add_string buf (Inl.Diag.to_string d ^ "\n"))
                (Inl_verify.Verify.diags report)))

let render_all () =
  let buf = Buffer.create 4096 in
  render_kernel buf Px.simplified_cholesky (Some [ [ 0; 0; 0; 1 ] ]);
  render_kernel buf Px.cholesky (Some [ [ 0; 0; 0; 0; 0; 1; 0 ] ]);
  render_kernel buf Px.lu None;
  Buffer.contents buf

let test_cache_on_off_byte_equal () =
  let go enabled =
    Omega.set_cache_enabled enabled;
    Omega.clear_cache ();
    render_all ()
  in
  let off = go false in
  let cold = go true in
  let warm = go true in
  Omega.set_cache_enabled true;
  Alcotest.(check string) "cache off = cache on (cold)" off cold;
  Alcotest.(check string) "cache off = cache on (warm)" off warm

let test_jobs_byte_equal () =
  let go j =
    Pool.set_jobs j;
    Omega.clear_cache ();
    render_all ()
  in
  let seq = go 1 in
  let par = go 4 in
  Pool.set_jobs 1;
  Alcotest.(check string) "jobs 1 = jobs 4" seq par

let verdict_equal a b =
  match (a, b) with
  | Inl.Legality.Legal { unsatisfied = u1; _ }, Inl.Legality.Legal { unsatisfied = u2; _ } ->
      List.length u1 = List.length u2 && List.for_all2 (fun x y -> Dep.compare x y = 0) u1 u2
  | Inl.Legality.Illegal m1, Inl.Legality.Illegal m2 -> String.equal m1 m2
  | _ -> false

let test_legality_jobs_agree () =
  let ctx = Inl.analyze_source Px.cholesky in
  List.iter
    (fun rows ->
      let m = Mat.of_int_lists rows in
      let v1 = Inl.Legality.check ctx.Inl.layout m ctx.Inl.deps in
      let v4 = Inl.Legality.check ~jobs:4 ctx.Inl.layout m ctx.Inl.deps in
      let vc = Inl.Legality.check ~cache:(Inl.Legality.make_cache ()) ctx.Inl.layout m ctx.Inl.deps in
      Alcotest.(check bool) "jobs 1 = jobs 4" true (verdict_equal v1 v4);
      Alcotest.(check bool) "uncached = cached" true (verdict_equal v1 vc))
    [ Px.corrected_c_rows; Px.paper_c_printed_rows ]

(* Regression: a watchdog deadline firing mid-[Pool.map] must cancel the
   remaining tasks at claim time and surface as this level's typed
   timeout, not run the whole batch to completion first.  Tasks here
   sleep without ever polling, so only claim-time cancellation can cut
   the fan-out short: 40 x 50 ms at jobs=2 is a full second of work
   against a 150 ms deadline. *)
let test_watchdog_cancels_map () =
  let module Watchdog = Inl_diag.Watchdog in
  let started = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let result =
    Watchdog.with_timeout ~ms:150 (fun () ->
        Pool.map ~jobs:2
          (fun _ ->
            Atomic.incr started;
            Unix.sleepf 0.05)
          (List.init 40 Fun.id))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the deadline to cancel the map");
  Alcotest.(check bool)
    (Printf.sprintf "cancelled promptly (%.0f ms elapsed)" (elapsed *. 1000.))
    true (elapsed < 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "most tasks never started (%d of 40 ran)" (Atomic.get started))
    true
    (Atomic.get started < 40);
  (* the pool is reusable afterwards, and no stale deadline lingers *)
  Alcotest.(check bool) "deadline restored" false (Watchdog.active ());
  Alcotest.(check (list int)) "pool survives" [ 0; 1; 2 ] (Pool.map ~jobs:2 Fun.id [ 0; 1; 2 ])

let test_deps_sorted () =
  List.iter
    (fun src ->
      let ctx = Inl.analyze_source src in
      let rec sorted = function
        | a :: (b :: _ as t) -> Dep.compare a b <= 0 && sorted t
        | _ -> true
      in
      Alcotest.(check bool) "sorted by Dep.compare" true (sorted ctx.Inl.deps))
    [ Px.simplified_cholesky; Px.cholesky; Px.lu ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves input order" `Quick test_map_order;
          Alcotest.test_case "lowest-index exception" `Quick test_map_exception;
          Alcotest.test_case "nested maps" `Quick test_map_nested;
          Alcotest.test_case "filter_map" `Quick test_filter_map;
          Alcotest.test_case "watchdog cancels an in-flight map" `Quick
            test_watchdog_cancels_map;
          Alcotest.test_case "jobs capped at core count" `Quick test_jobs_cap;
        ] );
      ("cache", [ Alcotest.test_case "counters and eviction" `Quick test_cache_counters ]);
      ("properties", props);
      ( "determinism",
        [
          Alcotest.test_case "cache on/off byte-equal" `Quick test_cache_on_off_byte_equal;
          Alcotest.test_case "jobs 1/4 byte-equal" `Quick test_jobs_byte_equal;
          Alcotest.test_case "legality verdicts agree across configs" `Quick
            test_legality_jobs_agree;
          Alcotest.test_case "dependences sorted" `Quick test_deps_sorted;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "idempotent and non-stranding" `Quick test_shutdown_idempotent;
          Alcotest.test_case "cold shutdown is a no-op" `Quick test_shutdown_cold;
        ] );
    ]
