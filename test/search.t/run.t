The autotuner, end to end.  Write the paper's kji Cholesky (the
column-oriented variant with the worst cache behavior of the six
classical orders):

  $ cat > chol.loop <<'EOF'
  > params N
  > do K = 1..N
  >   S1: A(K,K) = sqrt(A(K,K))
  >   do I = K+1..N
  >     S2: A(I,K) = A(I,K) / A(K,K)
  >   enddo
  >   do J = K+1..N
  >     do I2 = J..N
  >       S3: A(I2,J) = A(I2,J) - A(I2,K) * A(J,K)
  >     enddo
  >   enddo
  > enddo
  > EOF

A tiny pinned search: fixed seed, small beam, small trace size.  The
completion seed that hoists J outermost (a left-looking schedule) wins;
at this size the trace tier ties on cold misses and the static tier
breaks the tie.  Candidates falling into an already-seen reuse-signature
class are pruned from rescoring (classes= vs pruned-equivalent=), and
only one finalist per class is simulated — ranks 2 and 3 differ by an
alignment, which moves iterations without changing any per-statement
access pattern, so rank 3 inherits rank 2's trace (sim-shared=1).  One
candidate hit a singular per-statement transformation and was charged
pessimistically, which the search reports once as a typed warning:

  $ inltool optimize chol.loop --beam 4 --depth 2 --finalists 3 --size 16 -o smoke
  warning[S904] search: static scoring degraded for 1 candidate(s): 3 reference(s) under a singular per-statement transformation charged the pessimistic cost
  search: generated=205 materialize-failed=6 duplicate=31 pruned-illegal=96 scored=72 classes=19 pruned-equivalent=53 simulated=2 sim-shared=1 sim-skipped=0
  source: accesses=3112 misses=30 miss-rate=0.96%
  rank      static    misses   miss%  recipe
     1    1824.000        30   0.96%  complete row=[0,0,0,0,1,0,0]
     2    3392.000        30   0.96%  interchange J,I2
     3    3392.000        30   0.96%  interchange J,I2; align S2,I,-1
  
  winner: complete row=[0,0,0,0,1,0,0]
  winner doall: 3 parallel loop(s) — runnable with `inltool run --threads`
  wrote smoke.loop and smoke.tf
  
  params N
  do t1 = 1..N
    do t3 = t1..N
      do t4 = 1..t1 - 1
        S3: A(t3,t1) = A(t3,t1) - A(t3,t4) * A(t1,t4)
      enddo
    enddo
    S1: A(t1,t1) = sqrt(A(t1,t1))
    do t2 = t1..t1
      do u1 = t1 + 1..N
        S2: A(u1,t1) = A(u1,t1) / A(t1,t1)
      enddo
    enddo
  enddo
  [2]



The winning recipe is an ordinary Tf v1 file:

  $ cat smoke.tf
  tf v1
  row 0,0,0,0,1,0,0

The same search is byte-identical across worker counts (the acceptance
drill for determinism):

  $ inltool optimize chol.loop --beam 4 --depth 2 --finalists 3 --size 16 --jobs 1 -o j1 > out1
  warning[S904] search: static scoring degraded for 1 candidate(s): 3 reference(s) under a singular per-statement transformation charged the pessimistic cost
  [2]
  $ inltool optimize chol.loop --beam 4 --depth 2 --finalists 3 --size 16 --jobs 8 -o j8 > out8
  warning[S904] search: static scoring degraded for 1 candidate(s): 3 reference(s) under a singular per-statement transformation charged the pessimistic cost
  [2]
  $ grep -v '^wrote ' out1 > out1.c && grep -v '^wrote ' out8 > out8.c
  $ cmp out1.c out8.c && cmp j1.loop j8.loop && cmp j1.tf j8.tf && echo identical
  identical

Replaying the emitted recipe through the normal pipeline reproduces the
winner exactly — one replay path for search winners and fuzz quarantine
pairs alike:

  $ inltool apply chol.loop --recipe smoke.tf | tail -n +10 > replayed.loop
  $ cmp replayed.loop smoke.loop && echo identical
  identical

Recipe errors are typed diagnostics, not backtraces:

  $ printf 'tf v9\nbogus\n' > bad.tf
  $ inltool apply chol.loop --recipe bad.tf
  error[D705] driver: malformed recipe bad.tf: unrecognized transformation line "tf v9"
  [1]

  $ printf 'tf v1\nstep interchange ZZ,QQ\n' > bad2.tf
  $ inltool apply chol.loop --recipe bad2.tf
  error[D705] driver: recipe bad2.tf does not materialize against this program: error[T301] legality: step 'interchange ZZ<->QQ' failed against the current program shape
  [1]

--stats exposes the search funnel as counters (pinned at --jobs 1:
memo hit counts depend on which worker gets to a signature first, so
only the single-worker run is byte-reproducible):

  $ inltool optimize chol.loop --beam 4 --depth 2 --finalists 3 --size 16 --stats --jobs 1 -o st 2>&1 >/dev/null | grep counter
  counter search.duplicate               31
  counter search.generated              205
  counter search.legality.delta-checked      825
  counter search.legality.delta-inherited      988
  counter search.legality.memo_hits        0
  counter search.mat.memo_hits          151
  counter search.materialize-failed        6
  counter search.pruned-illegal          96
  counter search.reuse.classes           19
  counter search.reuse.memo_hits         41
  counter search.reuse.pruned            53
  counter search.score-degraded           1
  counter search.scored-static           72
  counter search.sim-shared               1
  counter search.sim-skipped              0
  counter search.simulated                2
