(* Tests for the IR (parser, pretty-printer, enumeration) and for the
   instance-vector machinery of Section 2: the layout positions, the L
   mapping and its inverse, padded positions, the single-edge
   optimization, and Theorem 1 (L is injective and order-preserving). *)

module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Ast = Inl_ir.Ast
module Parser = Inl_ir.Parser
module Pp = Inl_ir.Pp
module Meval = Inl_ir.Meval
module Layout = Inl_instance.Layout
module Order = Inl_instance.Order

let vec_t = Alcotest.testable Vec.pp Vec.equal

(* The running example of Section 2: Figure 1. *)
let fig1_src = {|
params N
do I = 1..N
  do J = I..N      ! stand-in for f(I)..g(I), which must be affine here
    S1: A(I,J) = 1
    S2: B(I,J) = 2
  enddo
  S3: C(I) = 3
enddo
|}

(* The simplified Cholesky of Section 3. *)
let cholesky_src = {|
params N
do I = 1..N
  S1: A(I) = sqrt(A(I))
  do J = I+1..N
    S2: A(J) = A(J) / A(I)
  enddo
enddo
|}

let fig1 = Parser.parse_exn fig1_src
let cholesky = Parser.parse_exn cholesky_src

(* ---- parser / printer ---- *)

let test_parse_shape () =
  Alcotest.(check (list string)) "params" [ "N" ] fig1.params;
  Alcotest.(check int) "3 statements" 3 (List.length (Ast.stmts_with_paths fig1));
  let _, s3 = Ast.find_stmt_exn fig1 "S3" in
  Alcotest.(check string) "S3 writes C" "C" s3.lhs.array;
  Alcotest.(check bool) "fig1 imperfect" false (Ast.is_perfect fig1);
  let perfect = Parser.parse_exn "do I = 1..10\n do J = 1..10\n A(I,J) = 0\n enddo\nenddo" in
  Alcotest.(check bool) "perfect nest" true (Ast.is_perfect perfect)

let test_parse_roundtrip () =
  (* printing and reparsing is the identity on the printed form *)
  let printed = Pp.program_to_string cholesky in
  let reparsed = Parser.parse_exn printed in
  Alcotest.(check string) "print . parse . print fixpoint" printed (Pp.program_to_string reparsed)

let test_parse_errors () =
  let bad = [ "do I = 1..N"; "A(I = 3"; "do I = 1..N\nA(J) = 1\nenddo\nenddo" ] in
  List.iter
    (fun src ->
      match Parser.parse src with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" src
      | Error _ -> ())
    bad

let test_bracket_syntax () =
  let p = Parser.parse_exn "do K = 1..N\n A[K][K] = sqrt(A[K][K])\nenddo" in
  let _, s = List.hd (Ast.stmts_with_paths p) in
  Alcotest.(check int) "2-d subscript" 2 (List.length s.lhs.index)

let test_rhs_resolution () =
  (* A is written, so A(I) in a RHS is an array read, while g(I) is a call *)
  let p = Parser.parse_exn "do I = 2..N\n A(I) = A(I-1) + g(I)\nenddo" in
  let _, s = List.hd (Ast.stmts_with_paths p) in
  let rec refs acc = function
    | Ast.Eref r -> r.Ast.array :: acc
    | Ast.Ebin (_, a, b) -> refs (refs acc a) b
    | Ast.Ecall (_, args) -> List.fold_left refs acc args
    | _ -> acc
  in
  let rec calls acc = function
    | Ast.Ecall (f, args) -> List.fold_left calls (f :: acc) args
    | Ast.Ebin (_, a, b) -> calls (calls acc a) b
    | _ -> acc
  in
  Alcotest.(check (list string)) "array reads" [ "A" ] (refs [] s.rhs);
  Alcotest.(check (list string)) "calls" [ "g" ] (calls [] s.rhs)

let test_parser_dialect () =
  (* 'end do', comments, min/max bounds, params inference, unary minus *)
  let p =
    Parser.parse_exn
      "do I = max(1, M-2)..min(N, M+3)   ! a comment\n  A(I) = -I + 1\nend do"
  in
  Alcotest.(check (list string)) "params inferred" [ "M"; "N" ] p.Ast.params;
  (match p.Ast.nest with
  | [ Ast.Loop l ] ->
      Alcotest.(check int) "two lower terms" 2 (List.length l.Ast.lower.Ast.terms);
      Alcotest.(check int) "two upper terms" 2 (List.length l.Ast.upper.Ast.terms);
      Alcotest.(check bool) "lower is max" true (l.Ast.lower.Ast.combine = `Max)
  | _ -> Alcotest.fail "shape");
  (* the opposite combiner denotes a covering (union) bound — the shape
     code generation emits for loops shared by several statements — and
     must round-trip through the parser *)
  (match Parser.parse "do I = min(1,2)..N\n A(I) = 0\nenddo" with
  | Error msg -> Alcotest.fail ("covering lower bound must parse: " ^ msg)
  | Ok p -> (
      match p.Ast.nest with
      | [ Ast.Loop l ] ->
          Alcotest.(check bool) "lower is a covering min" true (l.Ast.lower.Ast.combine = `Min)
      | _ -> Alcotest.fail "covering bound shape"));
  (* auto labels are generated and unique *)
  let q = Parser.parse_exn "do I = 1..N\n A(I) = 1\n B(I) = 2\nenddo" in
  let labels = List.map (fun (_, (st : Ast.stmt)) -> st.Ast.label) (Ast.stmts_with_paths q) in
  Alcotest.(check int) "distinct labels" 2 (List.length (List.sort_uniq compare labels))

let test_validation_rejections () =
  let bad =
    [
      (* shadowing *)
      "do I = 1..N\n do I = 1..N\n  A(I) = 0\n enddo\nenddo";
      (* duplicate labels *)
      "do I = 1..N\n S: A(I) = 0\n S: B(I) = 1\nenddo";
    ]
  in
  List.iter
    (fun src ->
      match Parser.parse src with
      | Ok _ -> Alcotest.failf "expected rejection of %S" src
      | Error _ -> ())
    bad

(* ---- enumeration (execution order oracle) ---- *)

let test_enumerate_order () =
  let insts = Meval.enumerate cholesky ~params:[ ("N", 3) ] in
  let expected =
    [
      ("S1", [| 1 |]); ("S2", [| 1; 2 |]); ("S2", [| 1; 3 |]);
      ("S1", [| 2 |]); ("S2", [| 2; 3 |]);
      ("S1", [| 3 |]);
    ]
  in
  Alcotest.(check int) "count" (List.length expected) (List.length insts);
  List.iter2
    (fun (l1, i1) (l2, i2) ->
      Alcotest.(check string) "label" l1 l2;
      Alcotest.(check (array int)) "iters" i1 i2)
    expected insts

(* ---- layout ---- *)

let test_cholesky_layout () =
  let layout = Layout.of_program cholesky in
  Alcotest.(check int) "4 positions" 4 (Layout.size layout);
  (* Section 3: S1 instances are [Iw, 0, 1, Iw]', S2's are [Ir, 1, 0, Jr]' *)
  Alcotest.(check vec_t) "S1 vector" (Vec.of_int_list [ 5; 0; 1; 5 ])
    (Layout.instance_vector layout "S1" [| 5 |]);
  Alcotest.(check vec_t) "S2 vector" (Vec.of_int_list [ 2; 1; 0; 7 ])
    (Layout.instance_vector layout "S2" [| 2; 7 |]);
  let s1 = Layout.stmt_info layout "S1" and s2 = Layout.stmt_info layout "S2" in
  (* Definition 4 / Lemma 1: S1 pads the J position; Lemma 2 analog: S2 has
     no padded positions *)
  Alcotest.(check (list int)) "S1 padded" [ 3 ] s1.padded_pos;
  Alcotest.(check (list int)) "S2 padded" [] s2.padded_pos;
  Alcotest.(check (list int)) "S1 loops" [ 0 ] s1.loop_pos;
  Alcotest.(check (list int)) "S2 loops" [ 0; 3 ] s2.loop_pos;
  Alcotest.(check (list int)) "common loop positions" [ 0 ]
    (Layout.common_loop_positions layout s1 s2)

let test_zero_padding_ablation () =
  let layout = Layout.of_program ~padding:Layout.Zero cholesky in
  Alcotest.(check vec_t) "S1 vector, zero padding" (Vec.of_int_list [ 5; 0; 1; 0 ])
    (Layout.instance_vector layout "S1" [| 5 |])

(* Section 2.2 / Figure 3: on a perfectly nested loop the optimized
   instance vectors coincide with iteration vectors. *)
let test_single_edge_optimization () =
  let perfect = Parser.parse_exn "params N\ndo I = 1..N\n do J = I+1..N\n  S1: A(J) = A(J) / A(I)\n enddo\nenddo" in
  let layout = Layout.of_program perfect in
  Alcotest.(check int) "no edge positions" 2 (Layout.size layout);
  Alcotest.(check vec_t) "iteration vector" (Vec.of_int_list [ 3; 4 ])
    (Layout.instance_vector layout "S1" [| 3; 4 |])

(* Full Cholesky (Section 6): 7 positions in the documented order
   [K, e2, e1, e0, J, L, I] — the order the paper's dependence matrix is
   written in. *)
let full_cholesky_src = {|
params N
do K = 1..N
  S1: A[K][K] = sqrt(A[K][K])
  do I = K+1..N
    S2: A[I][K] = A[I][K] / A[K][K]
  enddo
  do J = K+1..N
    do L = K+1..J
      S3: A[J][L] = A[J][L] - A[J][K] * A[L][K]
    enddo
  enddo
enddo
|}

let test_full_cholesky_layout () =
  let prog = Parser.parse_exn full_cholesky_src in
  let layout = Layout.of_program prog in
  Alcotest.(check int) "7 positions" 7 (Layout.size layout);
  (* S1 at K=k: [k, 0, 0, 1, k, k, k] *)
  Alcotest.(check vec_t) "S1" (Vec.of_int_list [ 4; 0; 0; 1; 4; 4; 4 ])
    (Layout.instance_vector layout "S1" [| 4 |]);
  (* S2 at (K,I)=(k,i): [k, 0, 1, 0, k, k, i] *)
  Alcotest.(check vec_t) "S2" (Vec.of_int_list [ 2; 0; 1; 0; 2; 2; 5 ])
    (Layout.instance_vector layout "S2" [| 2; 5 |]);
  (* S3 at (K,J,L)=(k,j,l): [k, 1, 0, 0, j, l, k] *)
  Alcotest.(check vec_t) "S3" (Vec.of_int_list [ 1; 1; 0; 0; 3; 2; 1 ])
    (Layout.instance_vector layout "S3" [| 1; 3; 2 |])

(* ---- L inverse and Theorem 1 ---- *)

let test_l_inverse () =
  let layout = Layout.of_program cholesky in
  (match Layout.l_inverse layout (Vec.of_int_list [ 5; 0; 1; 5 ]) with
  | Some ("S1", [| 5 |]) -> ()
  | _ -> Alcotest.fail "expected S1 at I=5");
  (match Layout.l_inverse layout (Vec.of_int_list [ 2; 1; 0; 7 ]) with
  | Some ("S2", [| 2; 7 |]) -> ()
  | _ -> Alcotest.fail "expected S2 at (2,7)");
  match Layout.l_inverse layout (Vec.of_int_list [ 2; 1; 1; 7 ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "two edges labeled 1 is not a valid path"

(* Theorem 1 on concrete programs: L is injective on all dynamic instances
   and maps execution order to lexicographic order. *)
let check_theorem1 prog params =
  let layout = Layout.of_program prog in
  let insts = Meval.enumerate prog ~params in
  let vectors = List.map (fun (l, it) -> Layout.instance_vector layout l it) insts in
  (* order preservation: enumeration order is execution order *)
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
        if Vec.lex_compare a b >= 0 then Alcotest.fail "L not strictly order-preserving";
        adjacent rest
    | _ -> ()
  in
  adjacent vectors;
  (* injectivity is implied by strict ordering, but check the full set too *)
  let sorted = List.sort_uniq Vec.lex_compare vectors in
  Alcotest.(check int) "injective" (List.length vectors) (List.length sorted);
  (* and Definition 2's order agrees with the lexicographic order *)
  let arr = Array.of_list insts in
  let n = Array.length arr in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let la, ia = arr.(a) and lb, ib = arr.(b) in
      let o = Order.compare layout (Order.make la ia) (Order.make lb ib) in
      Alcotest.(check int) "Def2 matches execution order" (compare a b) o
    done
  done

(* Theorem 1 does not depend on the padding choice: the deciding position
   between two instances (a common-loop label or an edge) always precedes
   any padded coordinate in the layout order. *)
let check_theorem1_zero prog params =
  let layout = Layout.of_program ~padding:Layout.Zero prog in
  let insts = Meval.enumerate prog ~params in
  let vectors = List.map (fun (l, it) -> Layout.instance_vector layout l it) insts in
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
        if Vec.lex_compare a b >= 0 then Alcotest.fail "zero padding broke order preservation";
        adjacent rest
    | _ -> ()
  in
  adjacent vectors

let test_theorem1_zero_padding () =
  check_theorem1_zero fig1 [ ("N", 4) ];
  check_theorem1_zero cholesky [ ("N", 5) ];
  check_theorem1_zero (Parser.parse_exn full_cholesky_src) [ ("N", 4) ]

let test_theorem1_fig1 () = check_theorem1 fig1 [ ("N", 4) ]
let test_theorem1_cholesky () = check_theorem1 cholesky [ ("N", 5) ]
let test_theorem1_full_cholesky () =
  check_theorem1 (Parser.parse_exn full_cholesky_src) [ ("N", 4) ]

(* Property: theorem 1 holds on random imperfect nests. *)
let gen_program : Ast.program QCheck2.Gen.t =
  let open QCheck2.Gen in
  (* A random 2-3 level nest with statements sprinkled at every level. *)
  let* shape = int_range 0 7 in
  let* lo2 = int_range 0 1 in
  let inner_lo = if lo2 = 0 then "I" else "1" in
  let body_j =
    "  do J = " ^ inner_lo ^ "..N\n   S2: A(I,J) = 1\n"
    ^ (if shape land 1 = 1 then "   S3: B(J) = 2\n" else "")
    ^ "  enddo\n"
  in
  let src =
    "params N\ndo I = 1..N\n"
    ^ (if shape land 2 = 2 then " S1: C(I) = 0\n" else "")
    ^ body_j
    ^ (if shape land 4 = 4 then " S4: D(I) = 3\n" else "")
    ^ "enddo\n"
  in
  return (Parser.parse_exn src)

let theorem1_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Theorem 1 on random nests" ~count:50 gen_program (fun prog ->
         check_theorem1 prog [ ("N", 4) ];
         true))

let () =
  Alcotest.run "instance"
    [
      ( "parser",
        [
          Alcotest.test_case "shapes" `Quick test_parse_shape;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "bracket syntax" `Quick test_bracket_syntax;
          Alcotest.test_case "rhs resolution" `Quick test_rhs_resolution;
          Alcotest.test_case "dialect features" `Quick test_parser_dialect;
          Alcotest.test_case "validation rejections" `Quick test_validation_rejections;
        ] );
      ("meval", [ Alcotest.test_case "enumerate order" `Quick test_enumerate_order ]);
      ( "layout",
        [
          Alcotest.test_case "simplified Cholesky (Section 3)" `Quick test_cholesky_layout;
          Alcotest.test_case "zero padding ablation" `Quick test_zero_padding_ablation;
          Alcotest.test_case "single-edge optimization (Fig 3)" `Quick test_single_edge_optimization;
          Alcotest.test_case "full Cholesky (Section 6)" `Quick test_full_cholesky_layout;
        ] );
      ( "theorem1",
        [
          Alcotest.test_case "L inverse (Definition 5)" `Quick test_l_inverse;
          Alcotest.test_case "Figure 1 program" `Quick test_theorem1_fig1;
          Alcotest.test_case "simplified Cholesky" `Quick test_theorem1_cholesky;
          Alcotest.test_case "full Cholesky" `Quick test_theorem1_full_cholesky;
          Alcotest.test_case "zero padding preserves order too" `Quick test_theorem1_zero_padding;
          theorem1_prop;
        ] );
    ]
