(* Mutation self-test for the static verifier: perturb real codegen
   output (off-by-one bounds, dropped guards, swapped siblings, shifted
   subscripts), classify each mutant against the source program with the
   interpreter at small sizes, and require that

   - the unmutated output verifies cleanly,
   - at least 90% of the interpreter-distinguishable mutants are caught
     by a typed diagnostic, and
   - no mutant — distinguishable or not — escapes as an uncaught
     exception.

   A QCheck property additionally samples (kernel, mutant) pairs to keep
   the no-crash guarantee independent of the enumeration order. *)

module Ast = Inl_ir.Ast
module Linexpr = Inl_presburger.Linexpr
module Mpz = Inl_num.Mpz
module Diag = Inl_diag.Diag
module Interp = Inl_interp.Interp
module Verify = Inl_verify.Verify

(* ---- kernels and their generated programs ---- *)

let context src =
  match Inl.analyze_source_result src with
  | Ok ctx -> ctx
  | Error ds -> Alcotest.fail (Diag.list_to_string ds)

let generated ctx steps =
  match Inl.pipeline ctx steps with
  | Error ds -> Alcotest.fail (Diag.list_to_string ds)
  | Ok m -> (
      match Inl.transform ctx m with
      | Error ds -> Alcotest.fail (Diag.list_to_string ds)
      | Ok prog -> prog)

let completed ctx partial =
  match Inl.complete_result ctx ~partial with
  | Error ds -> Alcotest.fail (Diag.list_to_string ds)
  | Ok m -> (
      match Inl.transform ctx m with
      | Error ds -> Alcotest.fail (Diag.list_to_string ds)
      | Ok prog -> prog)

(* (name, source, generated) triples covering the codegen surface:
   reordered imperfect nest, guarded completion output, strided loop
   with a Let quotient. *)
let subjects () =
  let cholesky =
    "params N\ndo I = 1..N\n S1: A(I) = sqrt(A(I))\n do J = I+1..N\n  S2: A(J) = A(J) / A(I)\n \
     enddo\nenddo\n"
  in
  let lu =
    "params N\ndo K = 1..N\n do I = K+1..N\n  S1: A(I,K) = A(I,K) / A(K,K)\n  do J = K+1..N\n   \
     S2: A(I,J) = A(I,J) - A(I,K) * A(K,J)\n  enddo\n enddo\nenddo\n"
  in
  let stride = "params N\ndo I = 1..N\n S1: A(I) = A(I) + 1\nenddo\n" in
  let c1 = context cholesky in
  let c2 = context lu in
  let c3 = context stride in
  [
    ( "cholesky",
      c1.Inl.program,
      generated c1
        [
          Inl.Pipeline.Reorder { parent = [ 0 ]; perm = [ 1; 0 ] };
          Inl.Pipeline.Interchange ("I", "J");
        ] );
    ("row-lu", c2.Inl.program, completed c2 [ Inl.Vec.of_int_list [ 0; 1; 0; 0; 0 ] ]);
    ("stride", c3.Inl.program, generated c3 [ Inl.Pipeline.Scale ("I", 2) ]);
  ]

(* ---- mutant enumeration ---- *)

let bump_bterm (bt : Ast.bterm) delta =
  { bt with Ast.num = Linexpr.add bt.Ast.num (Linexpr.const (Mpz.of_int delta)) }

let bump_bound (b : Ast.bound) delta =
  match b.Ast.terms with
  | t :: rest -> { b with Ast.terms = bump_bterm t delta :: rest }
  | [] -> b

let bump_index (s : Ast.stmt) =
  match s.Ast.lhs.Ast.index with
  | e :: rest ->
      {
        s with
        Ast.lhs =
          { s.Ast.lhs with Ast.index = Linexpr.add e (Linexpr.const (Mpz.of_int 1)) :: rest };
      }
  | [] -> s

let rec node_mutants (n : Ast.node) : (string * Ast.node) list =
  match n with
  | Ast.Stmt s when s.Ast.lhs.Ast.index <> [] ->
      [ ("shift lhs subscript of " ^ s.Ast.label, Ast.Stmt (bump_index s)) ]
  | Ast.Stmt _ -> []
  | Ast.Loop l ->
      [
        ("raise lower bound of " ^ l.Ast.var, Ast.Loop { l with Ast.lower = bump_bound l.Ast.lower 1 });
        ("raise upper bound of " ^ l.Ast.var, Ast.Loop { l with Ast.upper = bump_bound l.Ast.upper 1 });
        ("lower upper bound of " ^ l.Ast.var, Ast.Loop { l with Ast.upper = bump_bound l.Ast.upper (-1) });
      ]
      @ List.map (fun (d, body) -> (d, Ast.Loop { l with Ast.body = body })) (body_mutants l.Ast.body)
  | Ast.If (gs, body) ->
      List.map (fun (d, body') -> (d, Ast.If (gs, body'))) (body_mutants body)
  | Ast.Let (v, t, body) ->
      List.map (fun (d, body') -> (d, Ast.Let (v, t, body'))) (body_mutants body)

(* Mutants of a node list: point mutations inside one child, dropping
   one guard wrapper, and swapping one adjacent sibling pair. *)
and body_mutants (nodes : Ast.node list) : (string * Ast.node list) list =
  let at i n' = List.mapi (fun j m -> if j = i then n' else m) nodes in
  let point =
    List.concat
      (List.mapi (fun i n -> List.map (fun (d, n') -> (d, at i n')) (node_mutants n)) nodes)
  in
  let unwrap =
    List.concat
      (List.mapi
         (fun i n ->
           match n with
           | Ast.If (_, body) ->
               [
                 ( "drop guard wrapper",
                   List.concat (List.mapi (fun j m -> if j = i then body else [ m ]) nodes) );
               ]
           | _ -> [])
         nodes)
  in
  let swaps =
    if List.length nodes < 2 then []
    else
      List.concat
        (List.mapi
           (fun i _ ->
             if i + 1 >= List.length nodes then []
             else
               [
                 ( "swap adjacent siblings",
                   List.mapi
                     (fun j m ->
                       if j = i then List.nth nodes (i + 1)
                       else if j = i + 1 then List.nth nodes i
                       else m)
                     nodes );
               ])
           nodes)
  in
  point @ unwrap @ swaps

let mutants (prog : Ast.program) : (string * Ast.program) list =
  List.map (fun (d, nest) -> (d, { prog with Ast.nest })) (body_mutants prog.Ast.nest)

(* ---- classification ---- *)

type verdict = { differs : bool; caught : bool; crashed : string option }

let sizes = [ 3; 4 ]

let classify (source : Ast.program) (mutant : Ast.program) : verdict =
  let differs =
    List.exists
      (fun n ->
        match Interp.equivalent source mutant ~params:[ ("N", n) ] with
        | Ok () -> false
        | Error _ -> true
        | exception _ -> true (* a mutant the interpreter rejects is observably different *))
      sizes
  in
  match Verify.run ~against:source mutant with
  | report -> { differs; caught = Diag.has_errors (Verify.diags report); crashed = None }
  | exception e -> { differs; caught = false; crashed = Some (Printexc.to_string e) }

let test_catch_rate () =
  List.iter
    (fun (name, source, gen) ->
      (* the unmutated program must verify cleanly *)
      let base = Verify.run ~against:source gen in
      Alcotest.(check (list string))
        (name ^ ": baseline clean") []
        (List.map (fun (d : Diag.t) -> d.Diag.code) (Verify.diags base));
      let ms = mutants gen in
      Alcotest.(check bool) (name ^ ": mutants generated") true (List.length ms > 3);
      let verdicts = List.map (fun (d, m) -> (d, classify source m)) ms in
      List.iter
        (fun (d, v) ->
          match v.crashed with
          | Some e -> Alcotest.fail (Printf.sprintf "%s: mutant %S crashed: %s" name d e)
          | None -> ())
        verdicts;
      let differing = List.filter (fun (_, v) -> v.differs) verdicts in
      let caught = List.filter (fun (_, v) -> v.caught) differing in
      let missed = List.filter (fun (_, v) -> not v.caught) differing in
      List.iter
        (fun (d, _) -> Printf.printf "%s: missed interp-differing mutant: %s\n" name d)
        missed;
      Alcotest.(check bool)
        (Printf.sprintf "%s: some mutants change behavior" name)
        true
        (List.length differing > 0);
      let rate = float_of_int (List.length caught) /. float_of_int (List.length differing) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: catch rate %.2f >= 0.9 (%d/%d)" name rate (List.length caught)
           (List.length differing))
        true (rate >= 0.9))
    (subjects ())

(* QCheck: random sampling over (kernel, mutant index) never crashes and
   classification is stable. *)
let test_random_no_crash =
  let subjects = lazy (subjects ()) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random mutants never crash the verifier" ~count:120
       QCheck2.Gen.(pair (int_range 0 2) (int_bound 1000))
       (fun (si, mi) ->
         let name, source, gen = List.nth (Lazy.force subjects) si in
         let ms = mutants gen in
         let _, m = List.nth ms (mi mod List.length ms) in
         match classify source m with
         | { crashed = Some e; _ } -> QCheck2.Test.fail_reportf "%s crashed: %s" name e
         | { crashed = None; _ } -> true))

let () =
  Alcotest.run "verify-mutation"
    [
      ("catch rate", [ Alcotest.test_case "flags >=90% of differing mutants" `Quick test_catch_rate ]);
      ("robustness", [ test_random_no_crash ]);
    ]
