The CLI drives the framework end to end.  First write a program:

  $ cat > chol.loop <<'EOF'
  > params N
  > do I = 1..N
  >   S1: A(I) = sqrt(A(I))
  >   do J = I+1..N
  >     S2: A(J) = A(J) / A(I)
  >   enddo
  > enddo
  > EOF

  $ inltool show chol.loop
  params N
  do I = 1..N
    S1: A(I) = sqrt(A(I))
    do J = I + 1..N
      S2: A(J) = A(J) / A(I)
    enddo
  enddo
  
  instance-vector positions:
  0: loop I at [0]
  1: edge [0] -> child 1
  2: edge [0] -> child 0
  3: loop J at [0;1]
  
  S1: loops=[I] padded positions=[3]
  S2: loops=[I;J] padded positions=[]

A bare interchange is rejected with a diagnostic:

  $ inltool apply chol.loop --interchange I,J 2>&1 | tail -1
  error[L302] legality: illegal transformation: dependence flow S2->S1 on A [+, -1, 1, 0] (carried(1)) can collapse to equal common-loop iterations, but S2 does not precede S1 in the transformed program

The legal permutation is generated and verified:

  $ inltool apply chol.loop --reorder 0:1,0 --interchange I,J --verify 6 | tail -9
  params N
  do t1 = 1..N
    do t2 = 1..t1 - 1
      S2: A(t1) = A(t1) / A(t2)
    enddo
    S1: A(t1) = sqrt(A(t1))
  enddo
  
  verified equivalent at N = 6

The dependence matrix (Section 3):

  $ inltool deps chol.loop | head -6
  S1>S2  S2>S1  S2>S1  S2>S1  S2>S2  S2>S2  S2>S2  S2>S2
  0      +      +      +      +      +      +      +    
  1      -1     -1     -1     0      0      0      0    
  -1     1      1      1      0      0      0      0    
  +      0      0      0      0      +      0      0    
  

Completion from a partial first row (Section 6):

  $ inltool complete chol.loop --row 0,0,0,1 --verify 5 | tail -9
  params N
  do t1 = 1..N
    do t2 = 1..t1 - 1
      S2: A(t1) = A(t1) / A(t2)
    enddo
    S1: A(t1) = sqrt(A(t1))
  enddo
  
  verified equivalent at N = 5

Interpreting a program dumps the store:

  $ cat > tiny.loop <<'EOF'
  > params N
  > do I = 1..N
  >   S1: A(I) = 2 * I
  > enddo
  > EOF

  $ inltool run tiny.loop -N 3
  A(1) = 2
  A(2) = 4
  A(3) = 6

Scaling produces strided reconstruction with exact-quotient bindings:

  $ inltool apply tiny.loop --scale I,3 --no-simplify | tail -9
  params N
  do t1 = 3..3*N
    if (t1 mod 3 = 0) then
      let I = (t1) / 3 in
        if (I - 1 >= 0 and -I + N >= 0) then
          S1: A(I) = 2 * I
        endif
    endif
  enddo

Resource-bounded analysis: a deliberately tiny Fourier-Motzkin budget
cannot complete the exact dependence test, so the analyzer degrades to
conservative approximate dependences — warnings on stderr, the
degraded-but-succeeded exit code 2, and no backtrace:

  $ inltool deps chol.loop --budget 10 >matrix.out 2>errors.log
  [2]
  $ head -1 errors.log
  warning[A201] analysis: approximate dependence flow S1->S1 on A [+, *, *, *] (carried(1)) [approximate]: work budget exhausted (10 items)
  $ grep -ci backtrace errors.log
  0
  [1]

The budget can also come from the environment:

  $ INL_FM_BUDGET=10 inltool deps chol.loop >/dev/null 2>/dev/null
  [2]

Fault injection exercises the degraded path deterministically.  A
transformation the conservative dependences still admit survives total
projection failure and verifies in the interpreter:

  $ inltool apply chol.loop --scale I,1 --verify 4 --inject-faults every=1 >out.txt 2>/dev/null
  [2]
  $ tail -1 out.txt
  verified equivalent at N = 4

One the conservative dependences cannot admit is refused with a typed
diagnostic (exit 1), never an uncaught exception:

  $ inltool apply chol.loop --interchange I,J --inject-faults every=1 2>&1 >/dev/null | tail -1
  error[L302] legality: illegal transformation: dependence flow S1->S1 on A [+, *, *, *] (carried(1)) [approximate] maps to a possibly lexicographically negative vector

A malformed fault spec is a driver error:

  $ inltool deps chol.loop --inject-faults frob=1
  error[D701] driver: unknown fault key "frob" (every|after|cap|hang)
  [1]

Static verification (inltool verify).  Capture the generated program,
then validate it against the source: instance-set and dependence-order
preservation proved by ILP emptiness, DOALL status per loop, exit 0:

  $ inltool apply chol.loop --reorder 0:1,0 --interchange I,J 2>/dev/null \
  >   | sed -n '/^params/,$p' > trans.loop
  $ inltool verify trans.loop --against chol.loop
  params N
  do t1 = 1..N
    do t2 = 1..t1 - 1
      S2: A(t1) = A(t1) / A(t2)
    enddo
    S1: A(t1) = sqrt(A(t1))
  enddo
  
  loop t1: serial (read-write conflict on A between S2 and S2; read-write conflict on A between S1 and S2)
  loop t2: serial (write-write conflict on A between S2 and S2; read-write conflict on A between S2 and S2)
  
  statically verified: instance sets and dependence order preserved

A deliberately broken transformed program — the inner bound off by one,
dropping iterations — is refused with a typed diagnostic and exit 1:

  $ sed 's/t1 - 1/t1 - 2/' trans.loop > dropped.loop
  $ inltool verify dropped.loop --against chol.loop 2>&1 >/dev/null
  error[V101] verify: statement S2: some source instances are never executed (dropped iterations)
  [1]

Lint-only findings exit 2; provably parallel loops are annotated:

  $ cat > deadloop.loop <<'LOOP'
  > params N
  > do I = 1..N
  >   do J = N+1..N
  >     S1: A(I) = 0
  >   enddo
  > enddo
  > LOOP

  $ inltool verify deadloop.loop
  params N
  do I = 1..N  /* parallel */
    do J = N + 1..N  /* parallel */
      S1: A(I) = 0
    enddo
  enddo
  
  loop I: parallel
  loop J: parallel
  warning[V001] verify: loop J never executes (empty bounds)
  [2]

A file that does not parse is an error, not a crash:

  $ printf 'params N\ndo I = 1..\n' > broken.loop
  $ inltool verify broken.loop
  error[P101] parse: parse error: line 3: unexpected <eof> in expression
  [1]

Under an exhausted budget every solver-backed check degrades to a V900
warning (never an exception) and the run exits 2:

  $ inltool verify trans.loop --against chol.loop --budget 10 >stdout.log 2>stderr.log
  [2]
  $ tail -1 stdout.log
  static verification incomplete (see warnings)
  $ head -1 stderr.log
  warning[V900] verify: check skipped (resource budget exhausted): bounds of loop t2
  $ grep -c 'V900' stderr.log
  8
  $ grep -ci backtrace stderr.log
  0
  [1]

Malformed input ends in a typed diagnostic and exit 1, never an uncaught
backtrace — here an integer literal too large for the host int:

  $ printf 'params N\ndo I = 1..99999999999999999999\n  S1: A(I) = 0\nenddo\n' > huge.loop
  $ inltool show huge.loop
  error[P101] parse: parse error: line 2: integer literal 99999999999999999999 out of range
  [1]
  $ inltool verify huge.loop
  error[P101] parse: parse error: line 2: integer literal 99999999999999999999 out of range
  [1]

With the projection cache disabled, --stats says so instead of printing
all-zero counters:

  $ inltool deps chol.loop --stats --no-cache 2>&1 >/dev/null | grep 'projection cache'
  projection cache: disabled (--no-cache)
  $ inltool deps chol.loop --stats 2>&1 >/dev/null | grep -c 'projection cache: disabled'
  0
  [1]

The serve daemon's exit-code table differs deliberately from the
one-shot commands (where 2 means degraded-but-succeeded): a long-running
service reserves 2 for faults in the daemon itself.  0 is a clean drain
— every request answered ok:

  $ printf '%s\n' '{"id":1,"method":"ping"}' '{"id":2,"method":"shutdown"}' | inltool serve 2>/dev/null
  {"id":1,"method":"ping","ok":true,"degraded":false,"result":{"pong":true},"diags":[]}
  {"id":2,"method":"shutdown","ok":true,"degraded":false,"result":{"draining":true},"diags":[]}

1 means findings: some well-formed session contained a request that was
answered with an error (or rejected, or produced fuzz findings), but the
daemon itself is healthy:

  $ printf '%s\n' '{"id":1,"method":"nope"}' '{"id":2,"method":"shutdown"}' | inltool serve >/dev/null 2>&1
  [1]

2 means an internal fault, and it dominates findings: here a worker
panic — recovered, answered as R707, the daemon kept serving — but the
operator should look at the daemon, not the inputs:

  $ printf '%s\n' '{"id":1,"method":"optimize","program":"params N\ndo I = 1..N\n  S1: A(I) = 0\nenddo\n","beam":-3}' '{"id":2,"method":"ping"}' '{"id":3,"method":"shutdown"}' | inltool serve > panic.out 2>/dev/null
  [2]
  $ grep -o '"ok":[a-z]*' panic.out
  "ok":false
  "ok":true
  "ok":true

Startup failures — an unusable state directory — are also internal:

  $ touch not-a-dir
  $ inltool serve --state not-a-dir < /dev/null
  error[R700] serve: cannot start: state directory: not-a-dir: exists and is not a directory
  [2]
