(* Interpreter coverage for the shapes code generation actually emits:
   augmentation (extra-loop) output with singular-statement guards,
   negative bounds from reversal, strided loops with exact-division lets
   from scaling — plus the bounded-execution contract the fuzzing oracle
   relies on.  Each generated program is also round-tripped through the
   pretty-printer and parser, because that is how quarantined fuzz cases
   come back from disk. *)

module Interp = Inl_interp.Interp
module Ast = Inl_ir.Ast
module Pp = Inl_ir.Pp
module Parser = Inl_ir.Parser
module Mat = Inl_linalg.Mat
module Px = Inl_kernels.Paper_examples
module Mpz = Inl_num.Mpz

let sizes = [ 1; 2; 3; 5 ]

let check_equiv name src gen =
  List.iter
    (fun n ->
      match Interp.equivalent src gen ~params:[ ("N", n) ] with
      | Ok () -> ()
      | Error d -> Alcotest.failf "%s differs at N=%d: %s" name n d)
    sizes

let transform_exn ?(simplify = true) src rows =
  let ctx = Inl.analyze_source src in
  match Inl.transform ctx ~simplify (Mat.of_int_lists rows) with
  | Ok p -> (ctx.Inl.program, p)
  | Error ds -> Alcotest.failf "transform failed: %s" (Inl.Diag.list_to_string ds)

let pipeline_exn ?(simplify = true) src steps =
  let ctx = Inl.analyze_source src in
  let steps =
    List.map
      (fun (kind, spec) ->
        match Inl.Pipeline.step_of_spec ~kind spec with
        | Ok s -> s
        | Error msg -> Alcotest.failf "bad step %s %s: %s" kind spec msg)
      steps
  in
  match Inl.pipeline ctx steps with
  | Error ds -> Alcotest.failf "pipeline failed: %s" (Inl.Diag.list_to_string ds)
  | Ok m -> (
      match Inl.transform ctx ~simplify m with
      | Ok p -> (ctx.Inl.program, p)
      | Error ds -> Alcotest.failf "transform failed: %s" (Inl.Diag.list_to_string ds))

let rec fold_nodes f acc node =
  let acc = f acc node in
  match node with
  | Ast.Loop l -> List.fold_left (fold_nodes f) acc l.Ast.body
  | Ast.If (_, body) | Ast.Let (_, _, body) -> List.fold_left (fold_nodes f) acc body
  | Ast.Stmt _ -> acc

let count (prog : Ast.program) pred =
  List.fold_left (fold_nodes (fun a n -> if pred n then a + 1 else a)) 0 prog.Ast.nest

let roundtrip name (gen : Ast.program) =
  match Parser.parse (Pp.program_to_string gen) with
  | Error msg -> Alcotest.failf "%s does not re-parse: %s" name msg
  | Ok back -> back

(* ---- augmented codegen output (Section 5.4/5.5) ---- *)

let test_augmented_equivalent () =
  (* the paper's singular-S1 matrix: S1 collapses to one outer iteration
     and codegen augments it with an extra loop plus a guard *)
  List.iter
    (fun simplify ->
      let src, gen =
        transform_exn ~simplify Px.augmentation_example Px.section55_matrix_rows
      in
      check_equiv "augmented" src gen;
      check_equiv "augmented (re-parsed)" src (roundtrip "augmented" gen))
    [ false; true ]

let test_augmented_structure () =
  let _, gen = transform_exn ~simplify:false Px.augmentation_example Px.section55_matrix_rows in
  let loops = count gen (function Ast.Loop _ -> true | _ -> false) in
  let guards = count gen (function Ast.If _ -> true | _ -> false) in
  Alcotest.(check bool) "augmentation loop present" true (loops >= 3);
  Alcotest.(check bool) "singular-statement guard present" true (guards >= 1)

let test_singular_guard_counts () =
  (* the guard must fire S1 exactly as often as the source runs it: the
     augmented loop enumerates candidates, the guard filters them *)
  let src, gen = pipeline_exn ~simplify:false Px.augmentation_example [ ("skew", "I,J,-1") ] in
  Alcotest.(check bool) "guard present" true
    (count gen (function Ast.If _ -> true | _ -> false) >= 1);
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "operation count at N=%d" n)
        (Interp.operation_count src ~params:[ ("N", n) ])
        (Interp.operation_count gen ~params:[ ("N", n) ]))
    sizes;
  check_equiv "singular guard" src gen

(* ---- reversal: negative loop bounds ---- *)

let rev_src = "params N\ndo i = 1..N\n  S1: B(i) = A(i) + C(i - 1)\nenddo\n"

let test_reverse_negative_bounds () =
  let src, gen = pipeline_exn rev_src [ ("reverse", "i") ] in
  (* the reversed loop runs -N..-1: upper bound constant -1 *)
  let neg_upper =
    count gen (function
      | Ast.Loop l -> (
          match l.Ast.upper.Ast.terms with
          | [ { Ast.num; _ } ] ->
              Inl_presburger.Linexpr.vars num = [] && Mpz.sign (Inl_presburger.Linexpr.constant num) < 0
          | _ -> false)
      | _ -> false)
  in
  Alcotest.(check bool) "negative upper bound" true (neg_upper >= 1);
  check_equiv "reversed" src gen;
  check_equiv "reversed (re-parsed)" src (roundtrip "reversed" gen)

let test_scale_strided () =
  (* scaling emits a strided loop plus an exact-division let binding *)
  let src, gen = pipeline_exn rev_src [ ("scale", "i,2") ] in
  let strided =
    count gen (function Ast.Loop l -> not (Mpz.is_one l.Ast.step) | _ -> false)
  in
  let lets = count gen (function Ast.Let _ -> true | _ -> false) in
  Alcotest.(check bool) "strided loop" true (strided >= 1);
  Alcotest.(check bool) "let binding" true (lets >= 1);
  check_equiv "scaled" src gen;
  check_equiv "scaled (re-parsed)" src (roundtrip "scaled" gen)

(* ---- bounded execution (the fuzzing oracle's anti-hang contract) ---- *)

let test_step_limit () =
  let prog = Parser.parse_exn Px.simplified_cholesky in
  (* unbounded and generous bounds agree *)
  let full = Interp.run prog ~params:[ ("N", 5) ] in
  let bounded = Interp.run ~max_steps:100_000 prog ~params:[ ("N", 5) ] in
  Alcotest.(check bool) "bounded run matches" true (Interp.stores_equal full bounded);
  (* a tiny allowance must raise, not spin *)
  (match Interp.run ~max_steps:3 prog ~params:[ ("N", 5) ] with
  | _ -> Alcotest.fail "expected Step_limit"
  | exception Interp.Step_limit n -> Alcotest.(check int) "limit echoed" 3 n);
  match Interp.equivalent ~max_steps:3 prog prog ~params:[ ("N", 5) ] with
  | _ -> Alcotest.fail "expected Step_limit from equivalent"
  | exception Interp.Step_limit _ -> ()

let () =
  Alcotest.run "interp"
    [
      ( "generated-shapes",
        [
          Alcotest.test_case "augmented output equivalent" `Quick test_augmented_equivalent;
          Alcotest.test_case "augmentation structure" `Quick test_augmented_structure;
          Alcotest.test_case "singular guards preserve counts" `Quick test_singular_guard_counts;
          Alcotest.test_case "reversal: negative bounds" `Quick test_reverse_negative_bounds;
          Alcotest.test_case "scaling: strides and lets" `Quick test_scale_strided;
        ] );
      ("bounded-execution", [ Alcotest.test_case "step limit" `Quick test_step_limit ]);
    ]
