(* Tests for the serve daemon's building blocks, wire-level behavior and
   failure containment — everything that must hold without actually
   forking a process (the cram tests and `make serve-smoke` cover the
   process level).

   Three layers:
   - Json: the hand-rolled codec parses untrusted bytes without raising
     and prints deterministically (round-trip property included).
   - Snapshot: crash-safe save/load rejects every corruption a torn or
     bit-rotted file can present, and a cache snapshot round-trips
     through Omega.
   - Server.handle: one request line in, one response line out — typed
     rejections, per-request isolation of budget/fault scope, the
     degradation ladder (R706 on a hang under a deadline), and panic
     recovery are all observable through the pure [handle] entry. *)

module Json = Inl_serve.Json
module Snapshot = Inl_serve.Snapshot
module Server = Inl_serve.Server
module Omega = Inl_presburger.Omega
module Faults = Inl_diag.Faults
module Budget = Inl_diag.Budget

(* ---- json ---- *)

let test_json_values () =
  let roundtrip s = Result.map Json.to_string (Json.parse s) in
  List.iter
    (fun (input, want) ->
      Alcotest.(check (result string string)) input (Ok want) (roundtrip input))
    [
      ("null", "null");
      ("true", "true");
      ("  -42 ", "-42");
      ("3.5", "3.5");
      ({|"a\nbA"|}, {|"a\nbA"|});
      ({|{"a":[1,2,{}],"b":""}|}, {|{"a":[1,2,{}],"b":""}|});
      ("[]", "[]");
      ({|"😀"|}, "\"\xf0\x9f\x98\x80\"");
      (* lone surrogate -> U+FFFD, not a crash *)
      ({|"\ud800x"|}, "\"\xef\xbf\xbdx\"");
    ]

let test_json_malformed () =
  List.iter
    (fun input ->
      match Json.parse input with
      | Ok v -> Alcotest.failf "parsed %S as %s" input (Json.to_string v)
      | Error _ -> ())
    [
      "";
      "{";
      "[1,";
      {|{"a" 1}|};
      "nul";
      "1 2";
      {|"unterminated|};
      "\"raw\tcontrol\"" |> String.map (fun c -> if c = 't' then '\t' else c);
      (* nesting bomb: must be rejected, not stack-overflowed *)
      String.concat "" (List.init 200 (fun _ -> "[")) ^ "1"
      ^ String.concat "" (List.init 200 (fun _ -> "]"));
    ]

let test_json_accessors () =
  let v = Result.get_ok (Json.parse {|{"s":"x","n":7,"b":true}|}) in
  Alcotest.(check (option string)) "string" (Some "x") (Json.string_field "s" v);
  Alcotest.(check (option int)) "int" (Some 7) (Json.int_field "n" v);
  Alcotest.(check (option bool)) "bool" (Some true) (Json.bool_field "b" v);
  Alcotest.(check (option string)) "missing" None (Json.string_field "zzz" v);
  Alcotest.(check (option int)) "wrong type" None (Json.int_field "s" v)

(* ---- snapshot ---- *)

let tmpfile name = Filename.concat (Filename.get_temp_dir_name ()) ("inl-test-" ^ name)

let test_snapshot_roundtrip () =
  let path = tmpfile "snap-rt" in
  let payload = "some\x00binary\xffpayload\n with newlines \n" in
  Alcotest.(check (result unit string))
    "save" (Ok ())
    (Snapshot.save ~path ~kind:"demo" ~version:3 payload);
  (match Snapshot.load ~path ~kind:"demo" ~version:3 with
  | Ok (Some got) -> Alcotest.(check string) "payload" payload got
  | other ->
      Alcotest.failf "load: %s"
        (match other with
        | Error e -> e
        | Ok None -> "missing"
        | Ok (Some _) -> assert false));
  Sys.remove path

let test_snapshot_rejects_corruption () =
  let path = tmpfile "snap-bad" in
  let expect_error what =
    match Snapshot.load ~path ~kind:"demo" ~version:1 with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupt snapshot accepted" what
  in
  Result.get_ok (Snapshot.save ~path ~kind:"demo" ~version:1 "payload");
  (* flip a payload byte: checksum must catch it *)
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let flipped = Bytes.of_string raw in
  Bytes.set flipped (Bytes.length flipped - 1) 'X';
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc flipped);
  expect_error "bit flip";
  (* truncation *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub raw 0 (String.length raw - 3)));
  expect_error "truncation";
  (* wrong kind and wrong version are refusals, not payloads *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc raw);
  (match Snapshot.load ~path ~kind:"other" ~version:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong kind accepted");
  (match Snapshot.load ~path ~kind:"demo" ~version:2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong version accepted");
  (* garbage file *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a snapshot");
  expect_error "garbage";
  Sys.remove path;
  (* absent file is a legitimate cold start, not an error *)
  Alcotest.(check bool) "absent -> Ok None" true
    (Snapshot.load ~path ~kind:"demo" ~version:1 = Ok None)

(* The corruption shapes a torn write or a dying disk actually leaves
   behind, each pinned to a distinct refusal: the corpus runner and the
   serve daemon both treat any of these as a typed cold start, never as
   a payload. *)
let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_snapshot_corruption_edge_cases () =
  let path = tmpfile "snap-edge" in
  let expect_substring what needle =
    match Snapshot.load ~path ~kind:"demo" ~version:1 with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error m -> if not (contains ~needle m) then Alcotest.failf "%s: error %S lacks %S" what m needle
  in
  let put s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s) in
  (* zero-length file: a crash between open and first write *)
  put "";
  expect_substring "zero-length" "no header line";
  (* header line only, payload never reached the disk *)
  Result.get_ok (Snapshot.save ~path ~kind:"demo" ~version:1 "payload");
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let nl = String.index raw '\n' in
  put (String.sub raw 0 (nl + 1));
  expect_substring "header only" "payload truncated (0 of 7 bytes)";
  (* truncation mid-header: not even the container line survived *)
  put (String.sub raw 0 (nl - 2));
  expect_substring "mid-header cut" "no header line";
  (* checksum mismatch with the length intact *)
  put (String.concat "" [ String.sub raw 0 (nl + 1); "payloaX" ]);
  expect_substring "checksum" "checksum mismatch";
  (* version skew in an otherwise pristine file *)
  put raw;
  (match Snapshot.load ~path ~kind:"demo" ~version:9 with
  | Error m ->
      Alcotest.(check bool) "version skew names both versions" true
        (contains ~needle:"format version 1, this build reads 9" m)
  | Ok _ -> Alcotest.fail "version skew accepted");
  Sys.remove path

let test_cache_snapshot_roundtrip () =
  Omega.clear_cache ();
  let src = "params N\ndo I = 1..N\n  S1: A(I) = A(I-1) + A(I)\nenddo\n" in
  ignore (Inl.analyze_source_result src);
  let entries_before = (Omega.cache_stats ()).Inl_presburger.Cache.entries in
  Alcotest.(check bool) "analysis populated the cache" true (entries_before > 0);
  let dump = Omega.cache_snapshot () in
  Omega.clear_cache ();
  (match Omega.cache_restore dump with
  | Ok n -> Alcotest.(check int) "all entries restored" entries_before n
  | Error e -> Alcotest.fail e);
  (* restored entries actually hit *)
  ignore (Inl.analyze_source_result src);
  let cs = Omega.cache_stats () in
  Alcotest.(check bool) "warm after restore" true (cs.Inl_presburger.Cache.hits > 0);
  Alcotest.(check bool) "no misses after restore" true (cs.Inl_presburger.Cache.misses = 0);
  (* corrupt dumps are an Error, not an exception *)
  match Omega.cache_restore "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage dump accepted"

(* ---- server.handle ---- *)

let make_server () = Result.get_ok (Server.create Server.default_config)

let parse_response line =
  match Json.parse line with
  | Ok v -> v
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e line

let error_code resp =
  Option.bind (Json.member "error" resp) (Json.string_field "code")

let good_src = "params N\ndo I = 1..N\n  S1: A(I) = A(I-1) + A(I)\nenddo\n"

let test_handle_rejections () =
  let t = make_server () in
  let code line = error_code (parse_response (Server.handle t line)) in
  Alcotest.(check (option string)) "malformed JSON" (Some "R701") (code "{nope");
  Alcotest.(check (option string)) "unknown method" (Some "R702")
    (code {|{"id":1,"method":"frobnicate"}|});
  Alcotest.(check (option string)) "missing method" (Some "R703") (code {|{"id":1}|});
  Alcotest.(check (option string)) "missing program" (Some "R703")
    (code {|{"id":1,"method":"analyze"}|});
  Alcotest.(check (option string)) "bad fault spec" (Some "R703")
    (code {|{"id":1,"method":"analyze","program":"x","faults":"every=banana"}|});
  let t2 =
    Result.get_ok (Server.create { Server.default_config with max_request_bytes = 64 })
  in
  let long = {|{"id":1,"method":"analyze","program":"|} ^ String.make 100 'x' ^ {|"}|} in
  Alcotest.(check (option string)) "oversized" (Some "R705")
    (error_code (parse_response (Server.handle t2 long)));
  (* after all that abuse, the server still answers *)
  let pong = parse_response (Server.handle t {|{"id":9,"method":"ping"}|}) in
  Alcotest.(check (option bool)) "still serving" (Some true) (Json.bool_field "ok" pong)

let test_handle_isolation () =
  (* a request-scoped fault spec and budget must not leak into the
     process defaults or the next request *)
  let t = make_server () in
  Faults.install Faults.none;
  let base = Omega.get_default_budget () in
  let line =
    {|{"id":1,"method":"analyze","program":|}
    ^ Json.to_string (Json.String good_src)
    ^ {|,"faults":"every=1","budget":77777}|}
  in
  let resp = parse_response (Server.handle t line) in
  Alcotest.(check (option bool)) "degraded under injected faults" (Some true)
    (Json.bool_field "degraded" resp);
  Alcotest.(check bool) "fault scope restored" false (Faults.active ());
  Alcotest.(check int) "budget restored" base.Budget.fm_work
    (Omega.get_default_budget ()).Budget.fm_work;
  (* the very same program, unfaulted, now analyzes exactly *)
  let clean =
    {|{"id":2,"method":"analyze","program":|} ^ Json.to_string (Json.String good_src) ^ "}"
  in
  let resp2 = parse_response (Server.handle t clean) in
  Alcotest.(check (option bool)) "next request unaffected" (Some false)
    (Json.bool_field "degraded" resp2)

let test_handle_deadline_ladder () =
  (* an injected hang under a request deadline must come back as a typed
     R706 after the reduced-budget retry — and the daemon must then
     answer the next request normally *)
  let t = make_server () in
  let line =
    {|{"id":1,"method":"analyze","program":|}
    ^ Json.to_string (Json.String good_src)
    ^ {|,"faults":"hang=0","timeout_ms":200}|}
  in
  let resp = parse_response (Server.handle t line) in
  Alcotest.(check (option string)) "typed timeout" (Some "R706") (error_code resp);
  Alcotest.(check (option bool)) "not ok" (Some false) (Json.bool_field "ok" resp);
  let resp2 =
    parse_response
      (Server.handle t
         ({|{"id":2,"method":"analyze","program":|}
         ^ Json.to_string (Json.String good_src)
         ^ "}"))
  in
  Alcotest.(check (option bool)) "daemon alive and exact" (Some true)
    (Json.bool_field "ok" resp2);
  Alcotest.(check int) "session counts the failure" 1 (Server.exit_code t)

let test_handle_shutdown_and_stats () =
  let t = make_server () in
  ignore (Server.handle t {|{"id":1,"method":"ping"}|});
  let stats = parse_response (Server.handle t {|{"id":2,"method":"stats"}|}) in
  let served =
    Option.bind (Json.member "result" stats) (Json.int_field "served")
  in
  Alcotest.(check (option int)) "served counter" (Some 1) served;
  let bye = parse_response (Server.handle t {|{"id":3,"method":"shutdown"}|}) in
  Alcotest.(check (option bool)) "shutdown acknowledged" (Some true)
    (Option.bind (Json.member "result" bye) (Json.bool_field "draining"));
  Alcotest.(check int) "clean session" 0 (Server.exit_code t)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "values round-trip" `Quick test_json_values;
          Alcotest.test_case "malformed input is an Error" `Quick test_json_malformed;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick test_snapshot_rejects_corruption;
          Alcotest.test_case "corruption edge cases" `Quick test_snapshot_corruption_edge_cases;
          Alcotest.test_case "omega cache round-trip" `Quick test_cache_snapshot_roundtrip;
        ] );
      ( "handle",
        [
          Alcotest.test_case "typed rejections" `Quick test_handle_rejections;
          Alcotest.test_case "per-request isolation" `Quick test_handle_isolation;
          Alcotest.test_case "deadline ladder ends in R706" `Quick test_handle_deadline_ladder;
          Alcotest.test_case "stats and shutdown" `Quick test_handle_shutdown_and_stats;
        ] );
    ]
