(* End-to-end robustness under injected Omega failures.

   The contract being proven: with fault injection forcing projections to
   fail — even every single one — the whole pipeline (analyze, legality,
   codegen, simplify, verify) either produces interpreter-verified
   equivalent code or returns a typed diagnostic.  It never throws. *)

module Interp = Inl_interp.Interp
module Diag = Inl.Diag
module Budget = Inl.Budget
module Faults = Inl.Faults
module Kernels = Inl_kernels.Paper_examples

let with_faults spec f =
  Faults.install spec;
  Fun.protect ~finally:(fun () -> Faults.install Faults.none) f

let with_budget b f =
  let saved = Inl.Omega.get_default_budget () in
  Inl.Omega.set_default_budget b;
  Fun.protect ~finally:(fun () -> Inl.Omega.set_default_budget saved) f

let kernels =
  [
    ("figure1", Kernels.figure1, [ Inl.Pipeline.Interchange ("I", "J") ]);
    ( "simplified-cholesky",
      Kernels.simplified_cholesky,
      [ Inl.Pipeline.Reorder { parent = [ 0 ]; perm = [ 1; 0 ] }; Inl.Pipeline.Interchange ("I", "J") ] );
    ( "augmentation",
      Kernels.augmentation_example,
      [ Inl.Pipeline.Skew { target = "J"; source = "I"; factor = 1 } ] );
    ("update-kernel", Kernels.cholesky_update_kernel, [ Inl.Pipeline.Interchange ("J", "L") ]);
    ("lu", Kernels.lu, [ Inl.Pipeline.Interchange ("K", "I") ]);
  ]

(* Run a kernel through the full pipeline; any Ok result must be
   interpreter-equivalent.  Returns `Verified or `Refused (with its
   diagnostics); raises only on contract violations. *)
let drive name src steps : [ `Verified | `Refused of Diag.t list ] =
  match Inl.analyze_source_result src with
  | Error ds -> Alcotest.failf "%s: unexpected analysis failure: %s" name (Diag.list_to_string ds)
  | Ok ctx -> (
      match
        match Inl.pipeline ctx steps with
        | Error ds -> Error ds
        | Ok m -> Inl.transform ctx m
      with
      | Error [] -> Alcotest.failf "%s: refusal carried no diagnostics" name
      | Error ds ->
          List.iter
            (fun (d : Diag.t) ->
              if d.Diag.severity <> Diag.Error then
                Alcotest.failf "%s: refusal diagnostic is not an error: %s" name
                  (Diag.to_string d))
            ds;
          `Refused ds
      | Ok prog -> (
          match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", 5) ] with
          | Ok () -> `Verified
          | Error d -> Alcotest.failf "%s: generated code NOT equivalent: %s" name d))

let fault_specs =
  [
    ("every-projection", { Faults.none with fail_every = Some 1 });
    ("every-2nd", { Faults.none with fail_every = Some 2 });
    ("every-3rd", { Faults.none with fail_every = Some 3 });
    ("after-5", { Faults.none with fail_after = Some 5 });
    ("work-capped", { Faults.none with cap_work = Some 30 });
  ]

let test_no_uncaught_exceptions () =
  List.iter
    (fun (sname, spec) ->
      List.iter
        (fun (kname, src, steps) ->
          (* any escaping exception fails the test run — that IS the bug *)
          ignore sname;
          match with_faults spec (fun () -> drive kname src steps) with
          | `Verified | `Refused _ -> ())
        kernels)
    fault_specs

(* With no faults the whole suite transforms and verifies cleanly — the
   baseline the degraded runs are measured against. *)
let test_baseline_all_verified () =
  List.iter
    (fun (kname, src, steps) ->
      match drive kname src steps with
      | `Verified -> ()
      | `Refused ds -> Alcotest.failf "%s: unexpectedly refused: %s" kname (Diag.list_to_string ds))
    kernels

(* A transformation that the conservative dependences still admit must
   survive total fault injection end to end: code is produced, verified
   equivalent, and the context is flagged as degraded. *)
let test_degraded_but_succeeded () =
  with_faults
    { Faults.none with fail_every = Some 1 }
    (fun () ->
      match Inl.analyze_source_result Kernels.simplified_cholesky with
      | Error ds -> Alcotest.failf "analysis failed: %s" (Diag.list_to_string ds)
      | Ok ctx -> (
          Alcotest.(check bool) "context degraded" true (Inl.degraded ctx);
          Alcotest.(check bool) "warnings recorded" true (Diag.has_warnings ctx.Inl.diags);
          Alcotest.(check int) "exit code 2" 2 (Diag.exit_code ctx.Inl.diags);
          match Inl.transform ctx (Inl.Tmat.scaling ctx.Inl.layout "I" 1) with
          | Error ds -> Alcotest.failf "identity scale refused: %s" (Diag.list_to_string ds)
          | Ok prog -> (
              match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", 6) ] with
              | Ok () -> ()
              | Error d -> Alcotest.failf "degraded codegen not equivalent: %s" d)))

(* Tiny real budgets (no injection) take the same degradation path. *)
let test_budget_exhaustion_degrades () =
  with_budget (Budget.with_fm_work Budget.default 10) (fun () ->
      match Inl.analyze_source_result Kernels.simplified_cholesky with
      | Error ds -> Alcotest.failf "analysis failed: %s" (Diag.list_to_string ds)
      | Ok ctx ->
          Alcotest.(check bool) "degraded under tiny budget" true (Inl.degraded ctx);
          List.iter
            (fun (d : Diag.t) ->
              Alcotest.(check string) "code" "A201" d.Diag.code;
              Alcotest.(check bool) "warning severity" true (d.Diag.severity = Diag.Warning))
            ctx.Inl.diags)

(* Parse failures surface as typed diagnostics, not exceptions. *)
let test_parse_error_diag () =
  match Inl.analyze_source_result "params N\ndo I = 1..N\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error ds -> (
      match ds with
      | [ d ] ->
          Alcotest.(check string) "code" "P101" d.Diag.code;
          Alcotest.(check bool) "error severity" true (d.Diag.severity = Diag.Error);
          Alcotest.(check int) "exit code 1" 1 (Diag.exit_code ds)
      | _ -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds))

(* Fault-spec parsing: accepted forms round-trip, junk is rejected. *)
let test_fault_spec_parsing () =
  (match Faults.parse "every=2,after=10,cap=100" with
  | Ok f ->
      Alcotest.(check (option int)) "every" (Some 2) f.Faults.fail_every;
      Alcotest.(check (option int)) "after" (Some 10) f.Faults.fail_after;
      Alcotest.(check (option int)) "cap" (Some 100) f.Faults.cap_work
  | Error e -> Alcotest.failf "spec rejected: %s" e);
  (match Faults.parse "off" with
  | Ok f -> Alcotest.(check bool) "off is none" true (f = Faults.none)
  | Error e -> Alcotest.failf "off rejected: %s" e);
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Ok _ -> Alcotest.failf "bad spec accepted: %S" bad
      | Error _ -> ())
    [ "bogus"; "every="; "every=zero"; "frob=3"; "every=0" ]

let () =
  Alcotest.run "faults"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "baseline verified" `Quick test_baseline_all_verified;
          Alcotest.test_case "no uncaught exceptions" `Quick test_no_uncaught_exceptions;
          Alcotest.test_case "degraded but succeeded" `Quick test_degraded_but_succeeded;
          Alcotest.test_case "budget exhaustion degrades" `Quick test_budget_exhaustion_degrades;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "parse error diagnostic" `Quick test_parse_error_diag;
          Alcotest.test_case "fault spec parsing" `Quick test_fault_spec_parsing;
        ] );
    ]
