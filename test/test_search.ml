(* Unit and property tests for the transformation autotuner: the move
   enumerator's contract, the static cost tier, end-to-end search on the
   paper's Cholesky kernel, byte-level determinism across worker counts,
   and a QCheck property over fuzz-generated programs — every emitted
   winner must be legal, pass translation validation, and be
   interpreter-equivalent to its source. *)

module Search = Inl_search.Search
module Moves = Inl_search.Moves
module Reuse = Inl_reuse.Reuse
module Tf = Inl_fuzz.Tf
module Gen = Inl_fuzz.Gen
module Px = Inl_kernels.Paper_examples
module Interp = Inl_interp.Interp
module Verify = Inl_verify.Verify
module Diag = Inl_diag.Diag
module Pool = Inl_parallel.Pool
module Ast = Inl_ir.Ast
module Mat = Inl_linalg.Mat
module Layout = Inl_instance.Layout

let parse = Inl_ir.Parser.parse_exn

(* Small enough that a test-suite full of searches stays fast; the
   Cholesky searches below still recover the known-best order. *)
let tiny =
  {
    Search.default_config with
    Search.beam = 4;
    depth = 2;
    finalists = 3;
    size = 8;
    max_moves = 24;
    sim_max_steps = 400_000;
  }

(* ---- move enumeration ---- *)

let known_kinds = [ "interchange"; "reverse"; "skew"; "align"; "reorder" ]

let test_moves_contract () =
  let prog = parse Px.cholesky_kji in
  let moves = Moves.enumerate prog in
  Alcotest.(check bool) "non-empty" true (moves <> []);
  List.iter
    (fun steps ->
      Alcotest.(check bool) "move has steps" true (steps <> []);
      List.iter
        (fun (kind, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "kind %s known" kind)
            true (List.mem kind known_kinds))
        steps;
      (* every enumerated move must either materialize or fail with a
         typed error — never an exception *)
      let ctx = Inl.analyze prog in
      match Tf.materialize ctx { Tf.steps = steps; partial = []; edits = [] } with
      | Ok _ | Error _ -> ())
    moves;
  Alcotest.(check (list (list (pair string string))))
    "deterministic" moves
    (Moves.enumerate (parse Px.cholesky_kji))

let test_moves_cover_depths () =
  (* kji Cholesky has one loop pair per imperfect branch: interchanges
     and skews must appear for nested pairs, reversals for every loop;
     the wavefront compound (skew then interchange) rides every pair *)
  let moves = Moves.enumerate (parse Px.cholesky_kji) in
  let kinds = List.sort_uniq compare (List.map fst (List.concat moves)) in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "has %s" k) true (List.mem k kinds))
    [ "interchange"; "reverse"; "skew"; "align" ];
  Alcotest.(check bool)
    "has wavefront compound" true
    (List.exists
       (fun steps ->
         match steps with [ ("skew", _); ("interchange", _) ] -> true | _ -> false)
       moves)

(* ---- static cost tier ---- *)

let structure_of ctx m =
  match Inl.check ctx m with
  | Inl.Legality.Legal { structure; _ } -> structure
  | Inl.Legality.Illegal r -> Alcotest.failf "expected legal: %s" r

let test_static_score_orders_variants () =
  (* the static tier must at least separate the classical orders: jik
     (dot-product inner loops, unit-stride last subscripts) scores
     strictly better than kji (column-oriented, stride-N inner axis) *)
  let score src =
    let ctx = Inl.analyze (parse src) in
    let n = Layout.size ctx.Inl.layout in
    Reuse.static_score ctx (structure_of ctx (Mat.identity n))
  in
  let kji = score Px.cholesky_kji and jik = score Px.cholesky_jik in
  Alcotest.(check bool)
    (Printf.sprintf "jik %.1f < kji %.1f" jik kji)
    true (jik < kji);
  Alcotest.(check bool) "scores positive" true (jik > 0.0 && kji > 0.0)

(* ---- end-to-end on the paper kernel ---- *)

let test_optimize_cholesky () =
  let ctx = Inl.analyze (parse Px.cholesky_kji) in
  let o = Search.optimize ~config:{ tiny with Search.size = 16 } ctx in
  Alcotest.(check bool) "no errors" false (Diag.has_errors o.Search.diags);
  let w = match o.Search.winner with Some w -> w | None -> Alcotest.fail "no winner" in
  (match (w.Search.misses, o.Search.source_misses) with
  | Some wm, Some sm ->
      Alcotest.(check bool) (Printf.sprintf "winner %d <= source %d" wm sm) true (wm <= sm)
  | _ -> Alcotest.fail "trace tier did not run");
  Alcotest.(check bool) "funnel counted work" true
    (o.Search.funnel.Search.generated > 0
    && o.Search.funnel.Search.scored > 0
    && o.Search.funnel.Search.simulated > 0);
  (* the winner is a real program, equivalent to the source *)
  let wp = match w.Search.program with Some p -> p | None -> Alcotest.fail "winner has no code" in
  List.iter
    (fun n ->
      match Interp.equivalent ~max_steps:400_000 ctx.Inl.program wp ~params:[ ("N", n) ] with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "not equivalent at N=%d: %s" n msg)
    [ 4; 7 ]

let render (o : Search.outcome) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun (e : Search.entry) ->
      Buffer.add_string b
        (Printf.sprintf "%d %s %.6f %s %s\n%s" e.Search.rank
           (Tf.to_string e.Search.recipe)
           e.Search.static_score
           (match e.Search.misses with Some m -> string_of_int m | None -> "-")
           (match e.Search.accesses with Some a -> string_of_int a | None -> "-")
           (match e.Search.program with Some p -> Inl.Pp.program_to_string p | None -> "")))
    o.Search.entries;
  Buffer.add_string b
    (match o.Search.winner with
    | Some w -> "winner " ^ Tf.to_string w.Search.recipe
    | None -> "no winner");
  Buffer.contents b

let test_optimize_deterministic_across_jobs () =
  let run jobs =
    Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Pool.set_jobs 1)
      (fun () -> render (Search.optimize ~config:tiny (Inl.analyze (parse Px.cholesky_kji))))
  in
  let r1 = run 1 in
  Alcotest.(check string) "jobs=1 repeatable" r1 (run 1);
  Alcotest.(check string) "jobs=4 identical to jobs=1" r1 (run 4)

(* ---- delta legality agrees with the full check ---- *)

let verdicts_agree ~what full delta =
  match (full, delta) with
  | ( Inl.Legality.Legal { unsatisfied = ua; _ },
      Inl.Legality.Legal { unsatisfied = ub; _ } ) ->
      let ids v = List.map Inl.Legality.dep_id v in
      if ids ua <> ids ub then QCheck2.Test.fail_reportf "%s: unsatisfied sets differ" what
  | Inl.Legality.Illegal ra, Inl.Legality.Illegal rb ->
      if not (String.equal ra rb) then
        QCheck2.Test.fail_reportf "%s: offenders differ: %s vs %s" what ra rb
  | Inl.Legality.Legal _, Inl.Legality.Illegal r ->
      QCheck2.Test.fail_reportf "%s: full says legal, delta says illegal: %s" what r
  | Inl.Legality.Illegal r, Inl.Legality.Legal _ ->
      QCheck2.Test.fail_reportf "%s: full says illegal (%s), delta says legal" what r

(* The search's soundness rests on check_env with a parent summary being
   indistinguishable from a from-scratch check: same verdict, same
   unsatisfied set, same first offender.  Exercised exactly the way the
   beam uses it — identity -> one move -> a second move over
   fuzz-generated programs. *)
let delta_prop (seed, index) =
  let prog, _ = Gen.case ~seed ~index in
  let ctx = Inl.analyze prog in
  let env = Inl.Legality.make_env ctx.Inl.layout ctx.Inl.deps in
  let mat steps = Tf.materialize ctx { Tf.steps; partial = []; edits = [] } in
  let _, id_summary = Inl.Legality.check_env env (Mat.identity (Layout.size ctx.Inl.layout)) in
  let step_line steps = String.concat "; " (List.map (fun (k, s) -> k ^ " " ^ s) steps) in
  let moves = List.filteri (fun i _ -> i < 8) (Moves.enumerate prog) in
  let parents =
    List.filter_map
      (fun steps ->
        match mat steps with
        | Error _ -> None
        | Ok m ->
            let delta, summary = Inl.Legality.check_env ?parent:id_summary env m in
            verdicts_agree ~what:(step_line steps) (Inl.check ctx m) delta;
            Option.map (fun y -> (steps, y)) summary)
      moves
  in
  List.iter
    (fun (steps1, parent) ->
      List.iter
        (fun steps2 ->
          match mat (steps1 @ steps2) with
          | Error _ -> ()
          | Ok m ->
              verdicts_agree
                ~what:(step_line (steps1 @ steps2))
                (Inl.check ctx m)
                (fst (Inl.Legality.check_env ~parent env m)))
        moves)
    (List.filteri (fun i _ -> i < 3) parents);
  true

let delta_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"delta legality agrees with the full check" ~count:25
       QCheck2.Gen.(pair (int_bound 4) (int_bound 23))
       delta_prop)

(* ---- the --no-cache contract for the new memos ---- *)

let test_no_cache_bypasses_memos () =
  let run () = render (Search.optimize ~config:tiny (Inl.analyze (parse Px.cholesky_kji))) in
  let reference = run () in
  Inl.Legality.set_memo_enabled false;
  Search.set_mat_cache_enabled false;
  Fun.protect
    ~finally:(fun () ->
      Inl.Legality.set_memo_enabled true;
      Search.set_mat_cache_enabled true)
    (fun () ->
      let lookups (s : Inl_diag.Memo.stats) = s.Inl_diag.Memo.hits + s.Inl_diag.Memo.misses in
      let l0 = lookups (Inl.Legality.memo_stats ()) in
      let p0 = lookups (Search.mat_cache_stats ()) in
      let c0 = lookups (Search.completion_cache_stats ()) in
      let off = run () in
      Alcotest.(check string) "identical outcome without the memos" reference off;
      Alcotest.(check int) "legality memo untouched" l0 (lookups (Inl.Legality.memo_stats ()));
      Alcotest.(check int) "pipeline memo untouched" p0 (lookups (Search.mat_cache_stats ()));
      Alcotest.(check int) "completion memo untouched" c0
        (lookups (Search.completion_cache_stats ())))

(* ---- property: every winner is legal, validated, and equivalent ---- *)

let winner_prop (seed, index) =
  let prog, _ = Gen.case ~seed ~index in
  let ctx = Inl.analyze prog in
  match (Search.optimize ~config:{ tiny with Search.depth = 1; size = 6 } ctx).Search.winner with
  | None -> true (* nothing emitted: nothing to promise *)
  | Some w -> (
      (* legal under the exact test *)
      (match Tf.materialize ctx w.Search.recipe with
      | Error msg -> QCheck2.Test.fail_reportf "winner recipe does not materialize: %s" msg
      | Ok m -> (
          match Inl.check ctx m with
          | Inl.Legality.Legal _ -> ()
          | Inl.Legality.Illegal r -> QCheck2.Test.fail_reportf "winner illegal: %s" r));
      match w.Search.program with
      | None -> QCheck2.Test.fail_reportf "winner without code"
      | Some wp ->
          (* passes translation validation *)
          let report = Verify.run ~against:ctx.Inl.program wp in
          if Diag.has_errors (Verify.diags report) then
            QCheck2.Test.fail_reportf "winner fails verification";
          (* interpreter-equivalent at two small sizes *)
          List.for_all
            (fun n ->
              let params = List.map (fun p -> (p, n)) ctx.Inl.program.Ast.params in
              match Interp.equivalent ~max_steps:400_000 ctx.Inl.program wp ~params with
              | Ok () -> true
              | Error msg -> QCheck2.Test.fail_reportf "not equivalent at %d: %s" n msg)
            [ 2; 4 ])

let winner_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"search winners are legal, validated, equivalent" ~count:30
       QCheck2.Gen.(pair (int_bound 4) (int_bound 23))
       winner_prop)

let () =
  Alcotest.run "search"
    [
      ( "moves",
        [
          Alcotest.test_case "enumeration contract" `Quick test_moves_contract;
          Alcotest.test_case "covers the move kinds" `Quick test_moves_cover_depths;
        ] );
      ( "cost",
        [ Alcotest.test_case "static tier separates variants" `Quick test_static_score_orders_variants ] );
      ( "optimize",
        [
          Alcotest.test_case "cholesky end-to-end" `Quick test_optimize_cholesky;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_optimize_deterministic_across_jobs;
          Alcotest.test_case "--no-cache bypasses the memos" `Quick test_no_cache_bypasses_memos;
        ] );
      ("property", [ delta_property; winner_property ]);
    ]
