The serve daemon: one JSON request object per line on stdin, one JSON
response object per line on stdout.  Every line below is deterministic
(jobs=1, fixed budgets, no wall-clock values on the wire).

A mixed session.  Bad inputs of every shape — malformed JSON, an
unknown method, a missing field — come back as typed serve-phase
diagnostics (R701/R702/R703) on the wire, and the daemon answers every
subsequent request as if nothing happened:

  $ cat > mixed.jsonl <<'EOF'
  > {"id":1,"method":"ping"}
  > {"id":2,"method":"analyze","program":"params N\ndo I = 1..N\n  S1: A(I) = A(I-1) + A(I)\nenddo\n"}
  > this is not json
  > {"id":4,"method":"frobnicate"}
  > {"id":5,"method":"verify"}
  > {"id":6,"method":"shutdown"}
  > EOF
  $ inltool serve < mixed.jsonl
  {"id":1,"method":"ping","ok":true,"degraded":false,"result":{"pong":true},"diags":[]}
  {"id":2,"method":"analyze","ok":true,"degraded":false,"result":{"statements":1,"dependences":1,"approximate":0,"matrix":["flow S1->S1 on A [1] (carried(1))"]},"diags":[]}
  {"id":null,"method":"","ok":false,"degraded":false,"error":{"code":"R701","severity":"error","phase":"serve","message":"malformed JSON: bad literal (expected true) at byte 0"},"diags":[{"code":"R701","severity":"error","phase":"serve","message":"malformed JSON: bad literal (expected true) at byte 0"}]}
  {"id":4,"method":"frobnicate","ok":false,"degraded":false,"error":{"code":"R702","severity":"error","phase":"serve","message":"unknown method frobnicate"},"diags":[{"code":"R702","severity":"error","phase":"serve","message":"unknown method frobnicate"}]}
  {"id":5,"method":"verify","ok":false,"degraded":false,"error":{"code":"R703","severity":"error","phase":"serve","message":"invalid request: missing or non-string \"program\""},"diags":[{"code":"R703","severity":"error","phase":"serve","message":"invalid request: missing or non-string \"program\""}]}
  {"id":6,"method":"shutdown","ok":true,"degraded":false,"result":{"draining":true},"diags":[]}
  serve: drained after 6 requests (3 ok, 3 errors, 0 degraded)
  [1]

Fault drills, each scoped to its own request.  An injected hang under a
request deadline exhausts the retry ladder and is answered as a typed
R706; an injected solver blowup rides the library's degradation path
and comes back approximate (degraded, A201 warnings); a worker panic
(here: a nonsense search configuration) is recovered as R707.  After
each drill the daemon answers an exact, unfaulted analyze of the very
same program — the fault scope did not leak:

  $ cat > drills.jsonl <<'EOF'
  > {"id":1,"method":"analyze","program":"params N\ndo I = 1..N\n  S1: A(I) = A(I-1) + A(I)\nenddo\n","faults":"hang=0","timeout_ms":300}
  > {"id":2,"method":"analyze","program":"params N\ndo I = 1..N\n  S1: A(I) = A(I-1) + A(I)\nenddo\n","faults":"every=1"}
  > {"id":3,"method":"optimize","program":"params N\ndo I = 1..N\n  S1: A(I) = A(I) + 1\nenddo\n","beam":-3}
  > {"id":4,"method":"analyze","program":"params N\ndo I = 1..N\n  S1: A(I) = A(I-1) + A(I)\nenddo\n"}
  > {"id":5,"method":"shutdown"}
  > EOF
  $ inltool serve < drills.jsonl
  {"id":1,"method":"analyze","ok":false,"degraded":false,"error":{"code":"R706","severity":"error","phase":"serve","message":"request exceeded its 300 ms deadline, and the reduced-budget retry (fm_work=50000) also exceeded its deadline; request abandoned"},"diags":[{"code":"R706","severity":"error","phase":"serve","message":"request exceeded its 300 ms deadline, and the reduced-budget retry (fm_work=50000) also exceeded its deadline; request abandoned"}]}
  {"id":2,"method":"analyze","ok":true,"degraded":true,"result":{"statements":1,"dependences":5,"approximate":5,"matrix":["flow S1->S1 on A [+] (carried(1)) [approximate]","flow S1->S1 on A [+] (carried(1)) [approximate]","anti S1->S1 on A [+] (carried(1)) [approximate]","anti S1->S1 on A [+] (carried(1)) [approximate]","output S1->S1 on A [+] (carried(1)) [approximate]"]},"diags":[{"code":"A201","severity":"warning","phase":"analysis","message":"approximate dependence flow S1->S1 on A [+] (carried(1)) [approximate]: injected fault: forced projection failure"},{"code":"A201","severity":"warning","phase":"analysis","message":"approximate dependence flow S1->S1 on A [+] (carried(1)) [approximate]: injected fault: forced projection failure"},{"code":"A201","severity":"warning","phase":"analysis","message":"approximate dependence anti S1->S1 on A [+] (carried(1)) [approximate]: injected fault: forced projection failure"},{"code":"A201","severity":"warning","phase":"analysis","message":"approximate dependence anti S1->S1 on A [+] (carried(1)) [approximate]: injected fault: forced projection failure"},{"code":"A201","severity":"warning","phase":"analysis","message":"approximate dependence output S1->S1 on A [+] (carried(1)) [approximate]: injected fault: forced projection failure"}]}
  error[R707] serve: worker panic (recovered): Invalid_argument("Seq.take")
  {"id":3,"method":"optimize","ok":false,"degraded":false,"error":{"code":"R707","severity":"error","phase":"serve","message":"worker panic (recovered): Invalid_argument(\"Seq.take\")"},"diags":[{"code":"R707","severity":"error","phase":"serve","message":"worker panic (recovered): Invalid_argument(\"Seq.take\")"}]}
  {"id":4,"method":"analyze","ok":true,"degraded":false,"result":{"statements":1,"dependences":1,"approximate":0,"matrix":["flow S1->S1 on A [1] (carried(1))"]},"diags":[]}
  {"id":5,"method":"shutdown","ok":true,"degraded":false,"result":{"draining":true},"diags":[]}
  serve: drained after 5 requests (3 ok, 2 errors, 1 degraded)
  [2]

The bounded queue.  Five requests arrive in one write against a
capacity of two: the daemon rejects the overflow immediately with R704
(rejections jump the queue — the two accepted requests are answered
after them), instead of buffering without bound.  An oversized line is
rejected with R705 without being parsed:

  $ cat > flood.jsonl <<'EOF'
  > {"id":1,"method":"ping"}
  > {"id":2,"method":"ping"}
  > {"id":3,"method":"ping"}
  > {"id":4,"method":"ping"}
  > {"id":5,"method":"ping"}
  > EOF
  $ inltool serve --queue-cap 2 < flood.jsonl
  {"id":3,"method":"","ok":false,"degraded":false,"error":{"code":"R704","severity":"error","phase":"serve","message":"overloaded: queue full (2 pending), request rejected"},"diags":[{"code":"R704","severity":"error","phase":"serve","message":"overloaded: queue full (2 pending), request rejected"}]}
  {"id":4,"method":"","ok":false,"degraded":false,"error":{"code":"R704","severity":"error","phase":"serve","message":"overloaded: queue full (2 pending), request rejected"},"diags":[{"code":"R704","severity":"error","phase":"serve","message":"overloaded: queue full (2 pending), request rejected"}]}
  {"id":5,"method":"","ok":false,"degraded":false,"error":{"code":"R704","severity":"error","phase":"serve","message":"overloaded: queue full (2 pending), request rejected"},"diags":[{"code":"R704","severity":"error","phase":"serve","message":"overloaded: queue full (2 pending), request rejected"}]}
  {"id":1,"method":"ping","ok":true,"degraded":false,"result":{"pong":true},"diags":[]}
  {"id":2,"method":"ping","ok":true,"degraded":false,"result":{"pong":true},"diags":[]}
  serve: drained after 5 requests (2 ok, 3 errors, 0 degraded)
  [1]

  $ { printf '{"id":1,"method":"ping","pad":"'; head -c 300 /dev/zero | tr '\0' 'x'; printf '"}\n{"id":2,"method":"ping"}\n'; } > big.jsonl
  $ inltool serve --max-request-bytes 200 < big.jsonl
  {"id":null,"method":"","ok":false,"degraded":false,"error":{"code":"R705","severity":"error","phase":"serve","message":"oversized request (333 bytes, limit 200)"},"diags":[{"code":"R705","severity":"error","phase":"serve","message":"oversized request (333 bytes, limit 200)"}]}
  {"id":2,"method":"ping","ok":true,"degraded":false,"result":{"pong":true},"diags":[]}
  serve: drained after 2 requests (1 ok, 1 errors, 0 degraded)
  [1]

Crash-safe persistence.  A session with a state directory checkpoints
the projection cache on drain; a restarted daemon restores it and
serves the same analysis from cache (hits, no misses, on request 1):

  $ printf '%s\n' '{"id":1,"method":"analyze","program":"params N\ndo I = 1..N\n  S1: A(I) = A(I-1) + A(I)\nenddo\n","stats":true}' '{"id":2,"method":"shutdown"}' > warm.jsonl
  $ inltool serve --state st < warm.jsonl > first.out 2> first.err
  $ grep -o '"project_calls":[0-9]*' first.out
  "project_calls":6
  $ test -f st/cache.snap && echo snapshot written
  snapshot written

  $ inltool serve --state st < warm.jsonl
  serve: restored 4 projection-cache entries from st/cache.snap
  {"id":1,"method":"analyze","ok":true,"degraded":false,"result":{"statements":1,"dependences":1,"approximate":0,"matrix":["flow S1->S1 on A [1] (carried(1))"]},"diags":[],"stats":{"project_calls":6,"cache_hits":6,"cache_misses":0,"counters":{}}}
  {"id":2,"method":"shutdown","ok":true,"degraded":false,"result":{"draining":true},"diags":[]}
  serve: drained after 2 requests (2 ok, 0 errors, 0 degraded)

A corrupt snapshot — here a flipped payload byte that still passes no
checksum — is detected, warned about (R709), and the daemon starts
cold rather than trusting a bad byte:

  $ printf 'X' | dd of=st/cache.snap bs=1 seek=60 conv=notrunc status=none
  $ inltool serve --state st < warm.jsonl
  warning[R709] serve: snapshot unusable, starting cold: st/cache.snap: corrupt snapshot (checksum mismatch)
  {"id":1,"method":"analyze","ok":true,"degraded":false,"result":{"statements":1,"dependences":1,"approximate":0,"matrix":["flow S1->S1 on A [1] (carried(1))"]},"diags":[],"stats":{"project_calls":6,"cache_hits":2,"cache_misses":4,"counters":{}}}
  {"id":2,"method":"shutdown","ok":true,"degraded":false,"result":{"draining":true},"diags":[]}
  serve: drained after 2 requests (2 ok, 0 errors, 0 degraded)
