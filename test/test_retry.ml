(* The shared retry/degradation ladder (Inl_diag.Retry).

   One implementation, three call sites (serve, fuzz, corpus) — these
   units pin the ladder's contract independently of any caller:

   - rung arithmetic: the reduced budget/deadline clamps;
   - Completed means exactly one attempt, at full budget;
   - a degradable exception buys exactly one retry at reduced budget;
   - two failures produce a typed two-reason post-mortem, with the
     first-rung reason preserved verbatim;
   - non-degradable exceptions propagate untouched;
   - a Watchdog.Timeout belonging to an outer deadline is never
     consumed by the ladder. *)

module Retry = Inl_diag.Retry
module Watchdog = Inl_diag.Watchdog

exception Boom of string

let degradable = function Boom m -> Some m | _ -> None

(* ---- rung arithmetic ---- *)

let test_reduced_budget () =
  let p = Retry.default_policy in
  Alcotest.(check int) "500k -> 50k" 50_000 (Retry.reduced_budget p 500_000);
  Alcotest.(check int) "floored at min_budget" 1_000 (Retry.reduced_budget p 5_000);
  Alcotest.(check int) "tiny stays floored" 1_000 (Retry.reduced_budget p 1)

let test_reduced_timeout () =
  let p = Retry.default_policy in
  Alcotest.(check int) "400 -> 100" 100 (Retry.reduced_timeout p 400);
  Alcotest.(check int) "floored at min_timeout" 50 (Retry.reduced_timeout p 100);
  Alcotest.(check int) "no deadline stays none" 0 (Retry.reduced_timeout p 0);
  Alcotest.(check int) "negative stays none" 0 (Retry.reduced_timeout p (-7));
  let fuzz = { Retry.default_policy with timeout_divisor = 1; min_timeout_ms = 0 } in
  Alcotest.(check int) "fuzz policy keeps the deadline" 400 (Retry.reduced_timeout fuzz 400)

(* ---- the happy path ---- *)

let test_completed_single_attempt () =
  let calls = ref [] in
  let outcome =
    Retry.run ~fm_work:500_000 ~timeout_ms:0 ~degradable (fun ~fm_work ~timeout_ms ->
        calls := (fm_work, timeout_ms) :: !calls;
        42)
  in
  (match outcome with
  | Retry.Completed v -> Alcotest.(check int) "value" 42 v
  | _ -> Alcotest.fail "expected Completed");
  Alcotest.(check (list (pair int int))) "one attempt, full budget" [ (500_000, 0) ] !calls

(* ---- one degradable failure -> one reduced-budget retry ---- *)

let test_recovered_from_degradation () =
  let calls = ref [] in
  let outcome =
    Retry.run ~fm_work:500_000 ~timeout_ms:0 ~degradable (fun ~fm_work ~timeout_ms:_ ->
        calls := fm_work :: !calls;
        if List.length !calls = 1 then raise (Boom "budget exhausted (cap)") else 7)
  in
  (match outcome with
  | Retry.Recovered { value; first = Retry.Degraded m; fm_work } ->
      Alcotest.(check int) "value" 7 value;
      Alcotest.(check string) "first reason preserved" "budget exhausted (cap)" m;
      Alcotest.(check int) "retry budget" 50_000 fm_work
  | _ -> Alcotest.fail "expected Recovered (Degraded)");
  Alcotest.(check (list int)) "budgets per rung" [ 50_000; 500_000 ] !calls

let test_exhausted_keeps_both_reasons () =
  let n = ref 0 in
  let outcome =
    Retry.run ~fm_work:20_000 ~timeout_ms:0 ~degradable (fun ~fm_work:_ ~timeout_ms:_ ->
        incr n;
        raise (Boom (Printf.sprintf "blowup %d" !n)))
  in
  match outcome with
  | Retry.Exhausted { first = Retry.Degraded a; second = Retry.Degraded b; fm_work } ->
      Alcotest.(check string) "first" "blowup 1" a;
      Alcotest.(check string) "second" "blowup 2" b;
      Alcotest.(check int) "second rung budget" 2_000 fm_work
  | _ -> Alcotest.fail "expected Exhausted (Degraded, Degraded)"

let test_non_degradable_propagates () =
  let n = ref 0 in
  (try
     ignore
       (Retry.run ~fm_work:1_000 ~timeout_ms:0 ~degradable (fun ~fm_work:_ ~timeout_ms:_ ->
            incr n;
            failwith "worker panic"));
     Alcotest.fail "exception swallowed"
   with Failure m -> Alcotest.(check string) "message" "worker panic" m);
  Alcotest.(check int) "no retry for a panic" 1 !n

(* ---- deadlines ---- *)

let test_deadline_then_recovered () =
  let calls = ref [] in
  let outcome =
    Retry.run ~fm_work:500_000 ~timeout_ms:200 ~degradable (fun ~fm_work ~timeout_ms ->
        calls := (fm_work, timeout_ms) :: !calls;
        if List.length !calls = 1 then begin
          Watchdog.hang ();
          assert false
        end
        else 9)
  in
  (match outcome with
  | Retry.Recovered { value; first = Retry.Deadline { timeout_ms; elapsed }; fm_work } ->
      Alcotest.(check int) "value" 9 value;
      Alcotest.(check int) "first-rung deadline" 200 timeout_ms;
      Alcotest.(check bool) "elapsed at least the deadline" true (elapsed >= 0.2);
      Alcotest.(check int) "retry budget" 50_000 fm_work
  | _ -> Alcotest.fail "expected Recovered (Deadline)");
  match !calls with
  | [ (50_000, 50); (500_000, 200) ] -> ()
  | _ -> Alcotest.fail "rungs did not see (500000,200) then (50000,50)"

let test_deadline_exhausted () =
  match
    Retry.run ~fm_work:500_000 ~timeout_ms:100 ~degradable (fun ~fm_work:_ ~timeout_ms:_ ->
        Watchdog.hang ())
  with
  | Retry.Exhausted
      { first = Retry.Deadline { timeout_ms = t1; _ };
        second = Retry.Deadline { timeout_ms = t2; _ };
        fm_work;
      } ->
      Alcotest.(check int) "first rung" 100 t1;
      Alcotest.(check int) "second rung floored" 50 t2;
      Alcotest.(check int) "second rung budget" 50_000 fm_work
  | _ -> Alcotest.fail "expected Exhausted (Deadline, Deadline)"

let test_outer_deadline_not_consumed () =
  (* The ladder itself runs without a deadline; the Timeout that fires
     belongs to the caller's watchdog and must reach it, not be turned
     into a ladder rung. *)
  let attempts = ref 0 in
  match
    Watchdog.with_timeout ~ms:100 (fun () ->
        Retry.run ~fm_work:1_000 ~timeout_ms:0 ~degradable (fun ~fm_work:_ ~timeout_ms:_ ->
            incr attempts;
            Watchdog.hang ()))
  with
  | Error _ -> Alcotest.(check int) "ladder did not retry the outer timeout" 1 !attempts
  | Ok _ -> Alcotest.fail "outer deadline never fired"

let () =
  Alcotest.run "retry"
    [
      ( "ladder",
        [
          Alcotest.test_case "reduced budget clamps" `Quick test_reduced_budget;
          Alcotest.test_case "reduced timeout clamps" `Quick test_reduced_timeout;
          Alcotest.test_case "completed = one attempt" `Quick test_completed_single_attempt;
          Alcotest.test_case "recovered from degradation" `Quick test_recovered_from_degradation;
          Alcotest.test_case "exhausted keeps both reasons" `Quick test_exhausted_keeps_both_reasons;
          Alcotest.test_case "panic propagates" `Quick test_non_degradable_propagates;
          Alcotest.test_case "deadline then recovered" `Quick test_deadline_then_recovered;
          Alcotest.test_case "deadline exhausted" `Quick test_deadline_exhausted;
          Alcotest.test_case "outer deadline not consumed" `Quick test_outer_deadline_not_consumed;
        ] );
    ]
