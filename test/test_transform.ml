(* Tests for the transformation framework (Sections 4-5): matrix builders
   against the paper's displayed matrices, block structure recovery,
   legality, per-statement transformations, augmentation, and end-to-end
   code generation validated by the interpreter. *)

module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Parser = Inl_ir.Parser
module Pp = Inl_ir.Pp
module Layout = Inl_instance.Layout
module Dep = Inl_depend.Dep
module Analysis = Inl_depend.Analysis
module Tmat = Inl.Tmat
module Blockstruct = Inl.Blockstruct
module Legality = Inl.Legality
module Perstmt = Inl.Perstmt
module Codegen = Inl.Codegen
module Simplify = Inl.Simplify
module Interp = Inl_interp.Interp

let mat_t = Alcotest.testable Mat.pp Mat.equal
let vec_t = Alcotest.testable Vec.pp Vec.equal

let cholesky_src = {|
params N
do I = 1..N
  S1: A(I) = sqrt(A(I))
  do J = I+1..N
    S2: A(J) = A(J) / A(I)
  enddo
enddo
|}

let setup src =
  let prog = Parser.parse_exn src in
  let layout = Layout.of_program prog in
  let deps = Analysis.dependences layout in
  (prog, layout, deps)

(* ---- Section 4.1: matrices ---- *)

let test_interchange_matrix () =
  let _, layout, _ = setup cholesky_src in
  let m = Tmat.interchange layout "I" "J" in
  Alcotest.(check mat_t) "paper matrix"
    (Mat.of_int_lists [ [ 0; 0; 0; 1 ]; [ 0; 1; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 1; 0; 0; 0 ] ])
    m;
  (* transformed instance vectors from the paper *)
  Alcotest.(check vec_t) "S1 fixed" (Vec.of_int_list [ 3; 0; 1; 3 ])
    (Mat.apply m (Layout.instance_vector layout "S1" [| 3 |]));
  Alcotest.(check vec_t) "S2 swapped" (Vec.of_int_list [ 7; 1; 0; 2 ])
    (Mat.apply m (Layout.instance_vector layout "S2" [| 2; 7 |]))

let test_skew_matrix () =
  let _, layout, _ = setup cholesky_src in
  let m = Tmat.skew layout ~target:"I" ~source:"J" ~factor:(-1) in
  Alcotest.(check mat_t) "paper skew matrix"
    (Mat.of_int_lists [ [ 1; 0; 0; -1 ]; [ 0; 1; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 0; 0; 0; 1 ] ])
    m;
  (* all S1 instances land in outer iteration 0 (the diagonal embedding) *)
  let s1 = Mat.apply m (Layout.instance_vector layout "S1" [| 6 |]) in
  Alcotest.(check vec_t) "S1 outer collapses" (Vec.of_int_list [ 0; 0; 1; 6 ]) s1

let test_reorder_matrix () =
  let _, layout, _ = setup cholesky_src in
  (* swap S1 and the J loop under the I loop: the paper's Section 4.2 matrix *)
  let m = Tmat.reorder layout ~parent:[ 0 ] ~perm:[ 1; 0 ] in
  Alcotest.(check mat_t) "paper reorder matrix"
    (Mat.of_int_lists [ [ 1; 0; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 0; 1; 0; 0 ]; [ 0; 0; 0; 1 ] ])
    m

let test_align_matrix () =
  let _, layout, _ = setup cholesky_src in
  let m = Tmat.align layout ~stmt:"S1" ~loop:"I" ~amount:1 in
  (* The paper prints the +1 in column 1, but its own displayed product
     (S1 shifted to I+1, S2 unshifted) requires the entry in the column
     that is 1 exactly for S1's instances — column 2 under the Section 3
     vector convention.  See EXPERIMENTS.md E7. *)
  Alcotest.(check mat_t) "alignment matrix (corrected column)"
    (Mat.of_int_lists [ [ 1; 0; 1; 0 ]; [ 0; 1; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 0; 0; 0; 1 ] ])
    m;
  Alcotest.(check vec_t) "S1 shifted" (Vec.of_int_list [ 4; 0; 1; 3 ])
    (Mat.apply m (Layout.instance_vector layout "S1" [| 3 |]));
  Alcotest.(check vec_t) "S2 unshifted" (Vec.of_int_list [ 2; 1; 0; 5 ])
    (Mat.apply m (Layout.instance_vector layout "S2" [| 2; 5 |]))

let test_reversal_scaling () =
  let _, layout, _ = setup cholesky_src in
  let r = Tmat.reversal layout "J" in
  Alcotest.(check bool) "reversal diag" true (Mpz.equal (Mat.get r 3 3) Mpz.minus_one);
  let s = Tmat.scaling layout "J" 2 in
  Alcotest.(check bool) "scaling diag" true (Mpz.equal (Mat.get s 3 3) Mpz.two);
  (* composition is matrix product *)
  let c = Tmat.compose r s in
  Alcotest.(check bool) "compose" true (Mpz.equal (Mat.get c 3 3) (Mpz.of_int (-2)))

(* ---- Section 4.2: distribution and jamming ---- *)

let test_distribute_jam () =
  let _, layout, _ = setup cholesky_src in
  let m_dist, dist_prog = Tmat.distribute layout ~at:1 in
  Alcotest.(check int) "5x4" 5 (Mat.rows m_dist);
  (* distributed program has two top loops *)
  (match dist_prog.Inl_ir.Ast.nest with
  | [ Inl_ir.Ast.Loop _; Inl_ir.Ast.Loop _ ] -> ()
  | _ -> Alcotest.fail "expected two top-level loops");
  (* image of S2's instance vector: edges flip to the new root, J kept *)
  let s2 = Layout.instance_vector layout "S2" [| 2; 7 |] in
  Alcotest.(check vec_t) "S2 distributed" (Vec.of_int_list [ 1; 0; 2; 7; 2 ]) (Mat.apply m_dist s2);
  let s1 = Layout.instance_vector layout "S1" [| 5 |] in
  Alcotest.(check vec_t) "S1 distributed" (Vec.of_int_list [ 0; 1; 5; 5; 5 ]) (Mat.apply m_dist s1);
  (* jamming the distributed program is a left inverse on instance vectors *)
  let dist_layout = Layout.of_program dist_prog in
  let m_jam, fused = Tmat.jam dist_layout in
  Alcotest.(check int) "4x5" 4 (Mat.rows m_jam);
  (match fused.Inl_ir.Ast.nest with
  | [ Inl_ir.Ast.Loop l ] -> Alcotest.(check int) "2 children" 2 (List.length l.Inl_ir.Ast.body)
  | _ -> Alcotest.fail "expected one fused loop");
  let roundtrip = Mat.mul m_jam m_dist in
  Alcotest.(check vec_t) "jam . distribute = id on S2" s2 (Mat.apply roundtrip s2);
  Alcotest.(check vec_t) "jam . distribute = id on S1" s1 (Mat.apply roundtrip s1)

(* ---- Section 5: legality ---- *)

(* A bare I<->J interchange of simplified Cholesky is ILLEGAL: it would
   run the sqrt of A(t) before the updates A(t) = A(t)/A(i), i < t.  The
   legal permutation pairs the interchange with statement reordering
   (running S1 after the inner loop) — exactly what the paper's Fig 8
   completion does for full Cholesky. *)
let test_legality_interchange () =
  let _, layout, deps = setup cholesky_src in
  let m = Tmat.interchange layout "I" "J" in
  Alcotest.(check bool) "bare interchange illegal" false (Legality.is_legal layout m deps);
  let composed = Tmat.compose m (Tmat.reorder layout ~parent:[ 0 ] ~perm:[ 1; 0 ]) in
  match Legality.check layout composed deps with
  | Legality.Legal { unsatisfied; _ } ->
      Alcotest.(check int) "no unsatisfied" 0 (List.length unsatisfied)
  | Legality.Illegal msg -> Alcotest.failf "interchange+reorder should be legal: %s" msg

let test_legality_reversal_illegal () =
  let _, layout, deps = setup cholesky_src in
  (* reversing the I loop reverses the flow dependence: illegal *)
  let m = Tmat.reversal layout "I" in
  Alcotest.(check bool) "reversal illegal" false (Legality.is_legal layout m deps)

let test_legality_reorder_illegal () =
  let _, layout, deps = setup cholesky_src in
  (* running the J loop before S1 breaks the loop-independent flow dep *)
  let m = Tmat.reorder layout ~parent:[ 0 ] ~perm:[ 1; 0 ] in
  Alcotest.(check bool) "reorder illegal" false (Legality.is_legal layout m deps)

let test_legality_identity () =
  let _, layout, deps = setup cholesky_src in
  Alcotest.(check bool) "identity legal" true (Legality.is_legal layout (Tmat.identity layout) deps)

(* ---- Section 5.4: per-statement transformations ---- *)

let aug_src = {|
params N
do I = 1..N
  S1: B(I) = B(I-1) + A(I-1,I+1)
  do J = I..N
    S2: A(I,J) = f()
  enddo
enddo
|}

let test_perstmt_section54 () =
  let _, layout, deps = setup aug_src in
  (* the paper's matrix M: skew outer by inner, then swap the edges *)
  let m =
    Mat.of_int_lists [ [ 1; 0; 0; -1 ]; [ 0; 0; 1; 0 ]; [ 0; 1; 0; 0 ]; [ 0; 0; 0; 1 ] ]
  in
  (match Legality.check layout m deps with
  | Legality.Illegal msg -> Alcotest.failf "paper matrix should be legal: %s" msg
  | Legality.Legal { structure; unsatisfied } ->
      (* M_S1 = [0] (singular), M_S2 = [[1,-1],[0,1]] *)
      let p1 = Perstmt.of_structure structure "S1" in
      Alcotest.(check mat_t) "M_S1" (Mat.of_int_lists [ [ 0 ] ]) p1.Perstmt.matrix;
      Alcotest.(check bool) "M_S1 singular" true (Perstmt.is_singular p1);
      let p2 = Perstmt.of_structure structure "S2" in
      Alcotest.(check mat_t) "M_S2" (Mat.of_int_lists [ [ 1; -1 ]; [ 0; 1 ] ]) p2.Perstmt.matrix;
      Alcotest.(check bool) "M_S2 nonsingular" false (Perstmt.is_singular p2);
      (* S1's self dependence (distance 1) is left unsatisfied *)
      Alcotest.(check bool) "S1 self dep unsatisfied" true
        (List.exists (fun (d : Dep.t) -> d.src = "S1" && d.dst = "S1") unsatisfied));
  ()

(* ---- end-to-end code generation ---- *)

let check_transform ?(sizes = [ 1; 2; 3; 5; 8 ]) src m =
  let prog, layout, deps = setup src in
  match Legality.check layout m deps with
  | Legality.Illegal msg -> Alcotest.failf "expected legal: %s" msg
  | Legality.Legal { structure; unsatisfied } ->
      let gen = Codegen.generate structure ~unsatisfied in
      let simplified = Simplify.simplify gen in
      List.iter
        (fun n ->
          (match Interp.equivalent prog gen ~params:[ ("N", n) ] with
          | Ok () -> ()
          | Error d -> Alcotest.failf "raw codegen differs at N=%d: %s" n d);
          match Interp.equivalent prog simplified ~params:[ ("N", n) ] with
          | Ok () -> ()
          | Error d -> Alcotest.failf "simplified codegen differs at N=%d: %s" n d)
        sizes;
      (gen, simplified)

let test_codegen_identity () =
  let _, layout, _ = setup cholesky_src in
  ignore (check_transform cholesky_src (Tmat.identity layout))

let test_codegen_interchange () =
  (* the legal loop permutation: interchange composed with reordering *)
  let _, layout, _ = setup cholesky_src in
  let m =
    Tmat.compose
      (Tmat.interchange layout "I" "J")
      (Tmat.reorder layout ~parent:[ 0 ] ~perm:[ 1; 0 ])
  in
  ignore (check_transform cholesky_src m)

let test_codegen_skew_section55 () =
  (* the paper's running code-generation example: skew + reorder on the
     Section 5.4 program; all S1 instances collapse to outer iteration 0
     and an extra loop is added around S1 *)
  let m =
    Mat.of_int_lists [ [ 1; 0; 0; -1 ]; [ 0; 0; 1; 0 ]; [ 0; 1; 0; 0 ]; [ 0; 0; 0; 1 ] ]
  in
  let gen, _simplified = check_transform aug_src m in
  (* the generated program must contain an augmentation loop (around S1) *)
  let rec count_loops = function
    | Inl_ir.Ast.Loop l -> 1 + List.fold_left (fun a n -> a + count_loops n) 0 l.Inl_ir.Ast.body
    | Inl_ir.Ast.If (_, b) | Inl_ir.Ast.Let (_, _, b) ->
        List.fold_left (fun a n -> a + count_loops n) 0 b
    | Inl_ir.Ast.Stmt _ -> 0
  in
  let total = List.fold_left (fun a n -> a + count_loops n) 0 gen.Inl_ir.Ast.nest in
  Alcotest.(check bool) "augmentation loop present" true (total >= 3)

let test_codegen_align () =
  (* aligning S1 forward is illegal (sqrt drifts past its uses); aligning
     it back by one and running it after the inner loop pipelines legally *)
  let _, layout, deps = setup cholesky_src in
  Alcotest.(check bool) "align +1 illegal" false
    (Legality.is_legal layout (Tmat.align layout ~stmt:"S1" ~loop:"I" ~amount:1) deps);
  let r = Tmat.reorder layout ~parent:[ 0 ] ~perm:[ 1; 0 ] in
  (* the alignment matrix must be phrased against the reordered layout *)
  let st =
    match Blockstruct.infer layout r with Ok st -> st | Error m -> Alcotest.fail m
  in
  let a = Tmat.align st.Blockstruct.new_layout ~stmt:"S1" ~loop:"I" ~amount:(-1) in
  ignore deps;
  ignore (check_transform cholesky_src (Tmat.compose a r))

let test_codegen_scaling () =
  let _, layout, _ = setup cholesky_src in
  ignore (check_transform cholesky_src (Tmat.scaling layout "J" 2))

let test_codegen_reversal_inner () =
  (* reversing J is legal here: no dependence is carried by J *)
  let _, layout, _ = setup cholesky_src in
  ignore (check_transform cholesky_src (Tmat.reversal layout "J"))

let test_codegen_legal_reorder () =
  (* in this program S1 and S2 are independent, so reordering is legal *)
  let src = {|
params N
do I = 1..N
  S1: B(I) = 2 * B(I)
  do J = 1..N
    S2: A(I,J) = A(I,J) + 1
  enddo
enddo
|}
  in
  let _, layout, _ = setup src in
  ignore (check_transform src (Tmat.reorder layout ~parent:[ 0 ] ~perm:[ 1; 0 ]))

(* ---- Pipeline ---- *)

let test_pipeline_compose () =
  let _, layout, _ = setup cholesky_src in
  (* reorder then interchange, via the pipeline API *)
  let steps =
    [
      Inl.Pipeline.Reorder { parent = [ 0 ]; perm = [ 1; 0 ] };
      Inl.Pipeline.Interchange ("I", "J");
    ]
  in
  (match Inl.Pipeline.compose layout steps with
  | Error ds -> Alcotest.fail (Inl.Diag.list_to_string ds)
  | Ok total ->
      let expected =
        Tmat.compose (Tmat.interchange layout "I" "J")
          (Tmat.reorder layout ~parent:[ 0 ] ~perm:[ 1; 0 ])
      in
      Alcotest.(check mat_t) "matches manual composition" expected total);
  (* a step against a non-existent loop reports the step *)
  match Inl.Pipeline.compose layout [ Inl.Pipeline.Reverse "Q" ] with
  | Error ds ->
      Alcotest.(check bool) "names the step" true (String.length (Inl.Diag.list_to_string ds) > 0)
  | Ok _ -> Alcotest.fail "expected failure"

let test_pipeline_shape_tracking () =
  (* after a reorder, a path-based step must be phrased in the NEW shape;
     the pipeline rebuilds the layout so this composes correctly *)
  let src = "params N
do I = 1..N
 S1: B(I) = 1
 S2: C(I) = 2
 S3: D(I) = 3
enddo" in
  let ctx = Inl.analyze_source src in
  let steps =
    [
      (* rotate children: S1 S2 S3 -> S3 S1 S2 *)
      Inl.Pipeline.Reorder { parent = [ 0 ]; perm = [ 1; 2; 0 ] };
      (* now swap the first two of the NEW order: S3 S1 -> S1 S3 *)
      Inl.Pipeline.Reorder { parent = [ 0 ]; perm = [ 1; 0; 2 ] };
    ]
  in
  match Inl.pipeline ctx steps with
  | Error ds -> Alcotest.fail (Inl.Diag.list_to_string ds)
  | Ok total -> (
      match Inl.transform ctx total with
      | Error ds -> Alcotest.fail (Inl.Diag.list_to_string ds)
      | Ok prog ->
          let labels =
            List.map (fun (_, (s : Inl_ir.Ast.stmt)) -> s.Inl_ir.Ast.label)
              (Inl_ir.Ast.stmts_with_paths prog)
          in
          Alcotest.(check (list string)) "final order" [ "S1"; "S3"; "S2" ] labels;
          match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", 4) ] with
          | Ok () -> ()
          | Error d -> Alcotest.failf "not equivalent: %s" d)

let () =
  Alcotest.run "transform"
    [
      ( "matrices",
        [
          Alcotest.test_case "interchange (4.1)" `Quick test_interchange_matrix;
          Alcotest.test_case "skew (4.1)" `Quick test_skew_matrix;
          Alcotest.test_case "reorder (4.2)" `Quick test_reorder_matrix;
          Alcotest.test_case "align (4.3)" `Quick test_align_matrix;
          Alcotest.test_case "reversal/scaling/compose" `Quick test_reversal_scaling;
          Alcotest.test_case "distribution & jamming (4.2)" `Quick test_distribute_jam;
        ] );
      ( "legality",
        [
          Alcotest.test_case "identity legal" `Quick test_legality_identity;
          Alcotest.test_case "interchange legal (5.1)" `Quick test_legality_interchange;
          Alcotest.test_case "outer reversal illegal" `Quick test_legality_reversal_illegal;
          Alcotest.test_case "bad reorder illegal" `Quick test_legality_reorder_illegal;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "composition" `Quick test_pipeline_compose;
          Alcotest.test_case "shape tracking" `Quick test_pipeline_shape_tracking;
        ] );
      ( "perstmt",
        [ Alcotest.test_case "Section 5.4 per-statement transforms" `Quick test_perstmt_section54 ] );
      ( "codegen",
        [
          Alcotest.test_case "identity" `Quick test_codegen_identity;
          Alcotest.test_case "interchange" `Quick test_codegen_interchange;
          Alcotest.test_case "Section 5.5 skew with augmentation" `Quick test_codegen_skew_section55;
          Alcotest.test_case "alignment" `Quick test_codegen_align;
          Alcotest.test_case "scaling (non-unimodular)" `Quick test_codegen_scaling;
          Alcotest.test_case "inner reversal" `Quick test_codegen_reversal_inner;
          Alcotest.test_case "legal reorder" `Quick test_codegen_legal_reorder;
        ] );
    ]
