(* Unit and property tests for the static reuse analysis (Inl_reuse):
   pinned per-dimension classes on the paper's kji Cholesky, the
   canonicalization that makes signatures invariant under
   schedule-preserving row scaling (QCheck), the cross-check of the
   static ranking against the cache simulator on the six classical
   Cholesky orders, per-array miss attribution as ground truth for the
   spatial/streaming distinction, and the process-wide signature memo. *)

module Reuse = Inl_reuse.Reuse
module Memo = Inl_reuse.Memo
module Px = Inl_kernels.Paper_examples
module Cachesim = Inl_cachesim.Cachesim
module Tf = Inl_fuzz.Tf
module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Mpz = Inl_num.Mpz
module Layout = Inl_instance.Layout

let parse = Inl_ir.Parser.parse_exn

let structure_of ctx m =
  match Inl.check ctx m with
  | Inl.Legality.Legal { structure; _ } -> structure
  | Inl.Legality.Illegal r -> Alcotest.failf "expected legal: %s" r

let identity_sig ?line_elems ?work_budget src =
  let ctx = Inl.analyze (parse src) in
  let n = Layout.size ctx.Inl.layout in
  (ctx, Reuse.signature ?line_elems ?work_budget ctx (structure_of ctx (Mat.identity n)))

(* ---- pinned classes on the motivating kernel ---- *)

let cls = Alcotest.testable (fun fmt c ->
    Format.pp_print_string fmt
      (match c with
      | Reuse.Temporal -> "temporal"
      | Reuse.Spatial s -> Printf.sprintf "spatial(%d)" s
      | Reuse.NoReuse -> "none"
      | Reuse.Unknown -> "unknown"))
    (fun a b -> a = b)

let find_ref (sg : Reuse.t) label text =
  let st = List.find (fun (s : Reuse.stmt_sig) -> s.Reuse.label = label) sg.Reuse.stmts in
  List.find (fun (r : Reuse.ref_sig) -> r.Reuse.text = text) st.Reuse.refs

let test_kji_classes () =
  let _, sg = identity_sig Px.cholesky_kji in
  (* S3: A(I2,J) = A(I2,J) - A(I2,K) * A(J,K) under K,J,I2: the updated
     cell streams along the innermost column loop I2 but is revisited
     across K; A(J,K) is innermost-invariant *)
  let upd = find_ref sg "S3" "A(I2,J)" in
  Alcotest.(check (array cls)) "A(I2,J) classes"
    [| Reuse.Temporal; Reuse.Spatial 1; Reuse.NoReuse |]
    upd.Reuse.classes;
  Alcotest.(check bool) "A(I2,J) written" true upd.Reuse.is_write;
  let pivot = find_ref sg "S3" "A(J,K)" in
  Alcotest.(check (array cls)) "A(J,K) classes"
    [| Reuse.Spatial 1; Reuse.NoReuse; Reuse.Temporal |]
    pivot.Reuse.classes;
  Alcotest.(check int) "nothing unknown" 0 (Reuse.unknown_refs sg)

let test_scalar_and_param_refs () =
  (* a loop-invariant reference is temporal in every dimension *)
  let _, sg =
    identity_sig "params N\ndo I = 1..N\n  do J = 1..N\n    S1: B(I,J) = B(1,1) + B(I,J)\n  enddo\nenddo\n"
  in
  let inv = find_ref sg "S1" "B(1,1)" in
  Alcotest.(check (array cls)) "B(1,1) invariant"
    [| Reuse.Temporal; Reuse.Temporal |]
    inv.Reuse.classes

(* ---- signature invariance under schedule-preserving row scaling ---- *)

let variants = Array.of_list Px.cholesky_ir_variants

(* Scale only the rows producing loop coordinates: edge coordinates are
   0/1 path labels whose rows blockstruct recovery requires verbatim, so
   "schedule-preserving row scaling" ranges over loop rows.  (Both base
   matrices below permute loop rows among loop positions only, so a row
   index in [loop_positions] is a loop row of the base too.) *)
let scale_loop_rows layout m scales =
  let m' = Mat.copy m in
  List.iteri
    (fun k i ->
      let c = List.nth scales (k mod List.length scales) in
      m'.(i) <- Vec.scale_int c m'.(i))
    (Layout.loop_positions layout);
  m'

let scaling_prop (which, scales) =
  let scales = List.map (fun s -> 1 + (abs s mod 4)) scales in
  let scales = if scales = [] then [ 1 ] else scales in
  let name, src = variants.(which mod Array.length variants) in
  let ctx = Inl.analyze (parse src) in
  let n = Layout.size ctx.Inl.layout in
  let bases =
    Mat.identity n
    ::
    (if name = "kji" then
       match Tf.materialize ctx { Tf.steps = [ ("interchange", "J,I2") ]; partial = []; edits = [] } with
       | Ok m -> [ m ]
       | Error _ -> []
     else [])
  in
  List.for_all
    (fun base ->
      let sg = Reuse.signature ctx (structure_of ctx base) in
      let sg' = Reuse.signature ctx (structure_of ctx (scale_loop_rows ctx.Inl.layout base scales)) in
      if not (Reuse.equal sg sg') then
        QCheck2.Test.fail_reportf "%s: scaling by %s changed the signature\n%s\nvs\n%s" name
          (String.concat "," (List.map string_of_int scales))
          (Reuse.key sg) (Reuse.key sg');
      if Reuse.score sg <> Reuse.score sg' then
        QCheck2.Test.fail_reportf "%s: scaling changed the score %f -> %f" name (Reuse.score sg)
          (Reuse.score sg');
      true)
    bases

let scaling_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"signatures invariant under positive row scaling" ~count:60
       QCheck2.Gen.(pair (int_bound 5) (small_list small_int))
       scaling_prop)

(* ---- static ranking vs the cache simulator ---- *)

let test_ranking_matches_cachesim () =
  (* the static tier's job is ordinal: across the six classical Cholesky
     orders, a decisively better static score must not come with more
     simulated misses.  The score models the regime where a line
     survives only until its innermost-loop reuse — so the problem size
     must be large enough that a full column of lines (N x 64B) does NOT
     fit in the cache; below that, column orders like jki enjoy spatial
     reuse carried by the *middle* loop, which the innermost-class score
     deliberately ignores (at N=48 jki simulates near-best while scoring
     worst).  N=160 against 8 KiB puts every variant in the modeled
     regime.  Tolerances: static scores within 1.1x are a tie (ikj/kij
     differ only in loop names at this granularity), and 5% slack on
     miss counts absorbs alignment noise. *)
  let n = 160 in
  let cache = Cachesim.set_associative ~capacity_bytes:8192 ~line_bytes:64 ~assoc:2 in
  let measured =
    List.map
      (fun (name, src) ->
        let ctx = Inl.analyze (parse src) in
        let size = Layout.size ctx.Inl.layout in
        let static = Reuse.static_score ctx (structure_of ctx (Mat.identity size)) in
        let stats =
          Cachesim.simulate_program cache [ ("A", [ n; n ]) ] ctx.Inl.program ~params:[ ("N", n) ]
        in
        (name, static, stats.Cachesim.misses))
      Px.cholesky_ir_variants
  in
  List.iter
    (fun (ni, si, mi) ->
      List.iter
        (fun (nj, sj, mj) ->
          if si *. 1.1 < sj && float_of_int mi > float_of_int mj *. 1.05 then
            Alcotest.failf "%s (static %.0f, misses %d) ranked better than %s (static %.0f, misses %d)"
              ni si mi nj sj mj)
        measured)
    measured;
  (* and the ranking is not vacuous: the extremes are separated *)
  let statics = List.map (fun (_, s, _) -> s) measured in
  let misses = List.map (fun (_, _, m) -> m) measured in
  Alcotest.(check bool) "static separates variants" true
    (List.fold_left Float.min infinity statics < List.fold_left Float.max neg_infinity statics);
  Alcotest.(check bool) "simulator separates variants" true
    (List.fold_left min max_int misses < List.fold_left max min_int misses)

let test_weighted_fixes_jki () =
  (* the documented blind spot of the innermost-only model, now fixed:
     at N=48 a full column of lines fits in the 8 KiB cache, so jki's
     middle-loop spatial reuse on A(I,J) is real — the simulator scores
     jki far below kji — yet both orders have identical innermost
     classes, so {!Reuse.score} ties them.  The depth-weighted score
     sees the outer-dimension reuse and breaks the tie the same way the
     simulator does. *)
  let scores src =
    let ctx = Inl.analyze (parse src) in
    let n = Layout.size ctx.Inl.layout in
    let st = structure_of ctx (Mat.identity n) in
    (Reuse.static_score ctx st, Reuse.weighted_static_score ctx st, ctx)
  in
  let base_jki, weighted_jki, ctx_jki = scores Px.cholesky_jki in
  let base_kji, weighted_kji, ctx_kji = scores Px.cholesky_kji in
  Alcotest.(check (float 0.0)) "innermost-only model ties jki and kji" base_kji base_jki;
  Alcotest.(check bool)
    (Printf.sprintf "weighted jki %.0f < weighted kji %.0f" weighted_jki weighted_kji)
    true (weighted_jki < weighted_kji);
  let n = 48 in
  let cache = Cachesim.set_associative ~capacity_bytes:8192 ~line_bytes:64 ~assoc:2 in
  let misses ctx =
    (Cachesim.simulate_program cache [ ("A", [ n; n ]) ] ctx.Inl.program ~params:[ ("N", n) ])
      .Cachesim.misses
  in
  let m_jki = misses ctx_jki and m_kji = misses ctx_kji in
  Alcotest.(check bool)
    (Printf.sprintf "simulator agrees: jki %d < kji %d misses" m_jki m_kji)
    true (m_jki < m_kji)

let test_by_array_attribution () =
  (* ground truth for the spatial/streaming distinction: in one nest,
     row-major B(I,J) rides its cache lines while C(J,I) strides
     column-wise and misses on (nearly) every access.  N is again large
     enough that C's column of lines cannot survive in the cache across
     the outer loop.  (Both arrays are written: a name that is only ever
     read parses as an uninterpreted call, not an array.) *)
  let src =
    "params N\n\
     do I = 1..N\n\
    \  do J = 1..N\n\
    \    S1: B(I,J) = B(I,J) + 1\n\
    \    S2: C(J,I) = C(J,I) + 1\n\
    \  enddo\n\
     enddo\n"
  in
  let ctx = Inl.analyze (parse src) in
  let n = 160 in
  let cache = Cachesim.set_associative ~capacity_bytes:8192 ~line_bytes:64 ~assoc:2 in
  let arrays = [ ("B", [ n; n ]); ("C", [ n; n ]) ] in
  let by_array, total = Cachesim.simulate_program_by_array cache arrays ctx.Inl.program ~params:[ ("N", n) ] in
  let b = List.assoc "B" by_array and c = List.assoc "C" by_array in
  Alcotest.(check int) "attribution is complete" total.Cachesim.accesses
    (b.Cachesim.accesses + c.Cachesim.accesses);
  Alcotest.(check int) "attributed misses sum" total.Cachesim.misses
    (b.Cachesim.misses + c.Cachesim.misses);
  Alcotest.(check bool)
    (Printf.sprintf "B miss rate %.3f << C miss rate %.3f" (Cachesim.miss_rate b) (Cachesim.miss_rate c))
    true
    (Cachesim.miss_rate c > 2.0 *. Cachesim.miss_rate b);
  (* and the static classes predict exactly this *)
  let _, sg = identity_sig src in
  let bref = find_ref sg "S1" "B(I,J)" and cref = find_ref sg "S2" "C(J,I)" in
  Alcotest.(check cls) "B innermost spatial" (Reuse.Spatial 1)
    bref.Reuse.classes.(Array.length bref.Reuse.classes - 1);
  Alcotest.(check cls) "C innermost streams" Reuse.NoReuse
    cref.Reuse.classes.(Array.length cref.Reuse.classes - 1)

(* ---- canonicalization and the budget ---- *)

let test_canonical_rows () =
  let m = Mat.of_int_lists [ [ 2; 4 ]; [ 0; -3 ] ] in
  Alcotest.(check (list (list int)))
    "gcd-reduced, sign-normalized"
    [ [ 1; 2 ]; [ 0; 1 ] ]
    (Mat.to_int_lists (Inl.Perstmt.canonical_rows m))

let test_budget_truncation () =
  let _, full = identity_sig Px.cholesky_kji in
  Alcotest.(check int) "no truncation unbudgeted" 0 (Reuse.truncated_stmts full);
  let _, tiny = identity_sig ~work_budget:1 Px.cholesky_kji in
  Alcotest.(check bool) "budget truncates" true (Reuse.truncated_stmts tiny > 0);
  Alcotest.(check bool) "truncated refs unknown" true (Reuse.unknown_refs tiny > 0);
  Alcotest.(check bool) "pessimistic, never optimistic" true
    (Reuse.score tiny >= Reuse.score full)

let test_signature_memo () =
  Reuse.clear_memo ();
  Reuse.set_memo_enabled true;
  let compute () = snd (identity_sig Px.cholesky_kji) in
  let s1 = compute () in
  let before = (Reuse.memo_stats ()).Memo.hits in
  let s2 = compute () in
  Alcotest.(check bool) "second computation hits the memo" true
    ((Reuse.memo_stats ()).Memo.hits > before);
  Alcotest.(check string) "memoized signature identical" (Reuse.key s1) (Reuse.key s2);
  let entries = (Reuse.memo_stats ()).Memo.entries in
  ignore (identity_sig ~work_budget:1 Px.cholesky_kji);
  Alcotest.(check int) "budgeted signatures are not stored" entries
    ((Reuse.memo_stats ()).Memo.entries)

let test_memo_two_generations () =
  (* the O(1) retirement discipline: inserts fill the young generation;
     filling it retires the old one wholesale, so an entry that goes
     unused for two generations is evicted while anything hit in the
     meantime is promoted and survives *)
  let t : int Memo.t = Memo.create ~max_entries:2 () in
  Memo.add t "a" 1;
  Memo.add t "b" 2 (* young full -> {a,b} becomes the old generation *);
  Alcotest.(check (option int)) "old-generation hit" (Some 1) (Memo.find t "a");
  (* the hit promoted "a" into the young generation *)
  Memo.add t "c" 3 (* young full again -> retires {a,b}: 2 evictions *);
  Memo.add t "d" 4;
  Memo.add t "e" 5 (* retires {a,c}: 2 more *);
  Alcotest.(check (option int)) "unused for two generations: evicted" None (Memo.find t "b");
  Alcotest.(check (option int)) "promotion did not outlive disuse" None (Memo.find t "a");
  Alcotest.(check (option int)) "recent entry survives" (Some 4) (Memo.find t "d");
  Alcotest.(check int) "evictions counted" 4 (Memo.stats t).Memo.evictions

let test_memo_disabled_bypasses () =
  (* the --no-cache contract at the table level: a disabled table
     answers nothing, stores nothing, and counts nothing *)
  let t : int Memo.t = Memo.create () in
  Memo.add t "k" 1;
  Memo.set_enabled t false;
  Alcotest.(check (option int)) "disabled find misses" None (Memo.find t "k");
  Memo.add t "k2" 2;
  Alcotest.(check int) "disabled lookups uncounted" 0
    ((Memo.stats t).Memo.hits + (Memo.stats t).Memo.misses);
  Memo.set_enabled t true;
  Alcotest.(check (option int)) "disabled add stored nothing" None (Memo.find t "k2");
  Alcotest.(check (option int)) "re-enabled table still has its entries" (Some 1) (Memo.find t "k")

let () =
  Alcotest.run "reuse"
    [
      ( "classes",
        [
          Alcotest.test_case "kji Cholesky pinned" `Quick test_kji_classes;
          Alcotest.test_case "loop-invariant references" `Quick test_scalar_and_param_refs;
        ] );
      ("invariance", [ scaling_property; Alcotest.test_case "canonical rows" `Quick test_canonical_rows ]);
      ( "ground-truth",
        [
          Alcotest.test_case "ranking agrees with the simulator" `Quick test_ranking_matches_cachesim;
          Alcotest.test_case "weighted score fixes the jki blind spot" `Quick
            test_weighted_fixes_jki;
          Alcotest.test_case "per-array attribution" `Quick test_by_array_attribution;
        ] );
      ( "budget-and-memo",
        [
          Alcotest.test_case "work budget truncates pessimistically" `Quick test_budget_truncation;
          Alcotest.test_case "signature memo" `Quick test_signature_memo;
          Alcotest.test_case "two-generation eviction" `Quick test_memo_two_generations;
          Alcotest.test_case "disabled table bypasses" `Quick test_memo_disabled_bypasses;
        ] );
    ]
