(* Unit tests for the differential fuzzing harness: PRNG stability, the
   generator's well-formedness contract, recipe round-trips, the
   shrinker against synthetic oracles, the wall-clock watchdog, and the
   resumable batch driver run in-process against a scratch corpus. *)

module Rng = Inl_fuzz.Rng
module Gen = Inl_fuzz.Gen
module Tf = Inl_fuzz.Tf
module Oracle = Inl_fuzz.Oracle
module Shrink = Inl_fuzz.Shrink
module Corpus = Inl_fuzz.Corpus
module Driver = Inl_fuzz.Driver
module Watchdog = Inl_diag.Watchdog
module Faults = Inl_diag.Faults
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout
module Px = Inl_kernels.Paper_examples

(* ---- rng ---- *)

let test_rng_deterministic () =
  let draw rng = List.init 20 (fun _ -> Rng.int rng 1000) in
  Alcotest.(check (list int))
    "same (seed, index) = same stream"
    (draw (Rng.case ~seed:7 ~index:3))
    (draw (Rng.case ~seed:7 ~index:3));
  Alcotest.(check bool)
    "indices decorrelate" true
    (draw (Rng.case ~seed:7 ~index:3) <> draw (Rng.case ~seed:7 ~index:4));
  Alcotest.(check bool)
    "seeds decorrelate" true
    (draw (Rng.case ~seed:7 ~index:3) <> draw (Rng.case ~seed:8 ~index:3))

let test_rng_ranges () =
  let rng = Rng.case ~seed:1 ~index:0 in
  for _ = 1 to 500 do
    let v = Rng.range rng (-3) 3 in
    Alcotest.(check bool) "range inclusive" true (v >= -3 && v <= 3);
    let p = Rng.pick rng [ "a"; "b"; "c" ] in
    Alcotest.(check bool) "pick member" true (List.mem p [ "a"; "b"; "c" ])
  done;
  let xs = List.init 10 Fun.id in
  let sh = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "shuffle is a permutation" xs (List.sort compare sh)

(* ---- generator ---- *)

let test_gen_well_formed () =
  (* every generated case must validate, lay out, and pass the lint
     error-free — across many (seed, index) cells *)
  for seed = 0 to 4 do
    for index = 0 to 39 do
      let prog, tf = Gen.case ~seed ~index in
      (match Ast.validate prog with
      | () -> ()
      | exception Ast.Invalid msg -> Alcotest.failf "seed=%d index=%d invalid: %s" seed index msg);
      let layout = Layout.of_program prog in
      Alcotest.(check bool)
        (Printf.sprintf "seed=%d index=%d has instance positions" seed index)
        true
        (Layout.size layout > 0);
      Alcotest.(check bool)
        (Printf.sprintf "seed=%d index=%d lints clean" seed index)
        false
        (Inl.Diag.has_errors (Inl_verify.Lint.run prog));
      (* the recipe is shape-consistent: partial rows match the layout *)
      List.iter
        (fun row ->
          Alcotest.(check int)
            (Printf.sprintf "seed=%d index=%d row width" seed index)
            (Layout.size layout) (List.length row))
        tf.Tf.partial
    done
  done

let test_gen_deterministic () =
  let p1, t1 = Gen.case ~seed:42 ~index:17 in
  let p2, t2 = Gen.case ~seed:42 ~index:17 in
  Alcotest.(check string)
    "program stable" (Inl.Pp.program_to_string p1) (Inl.Pp.program_to_string p2);
  Alcotest.(check string) "recipe stable" (Tf.to_string t1) (Tf.to_string t2)

(* ---- recipe round-trip ---- *)

let test_tf_roundtrip () =
  for seed = 0 to 2 do
    for index = 0 to 29 do
      let _, tf = Gen.case ~seed ~index in
      match Tf.of_string (Tf.to_string tf) with
      | Error msg -> Alcotest.failf "seed=%d index=%d does not re-parse: %s" seed index msg
      | Ok tf' ->
          Alcotest.(check string)
            (Printf.sprintf "seed=%d index=%d round-trips" seed index)
            (Tf.to_string tf) (Tf.to_string tf');
          Alcotest.(check bool)
            "expected_legal preserved" (Tf.expected_legal tf) (Tf.expected_legal tf')
    done
  done

let test_tf_reject_malformed () =
  List.iter
    (fun spec ->
      match Tf.of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed recipe %S" spec)
    [ "nonsense"; "tf v1\nstep"; "tf v1\nrow 1,x"; "tf v1\nedit negrow"; "tf v2" ]

(* ---- shrinker against synthetic oracles ---- *)

let parse src = Inl_ir.Parser.parse_exn src

let big_src =
  "params N\n\
   do i = 1..N\n\
  \  S1: B(i) = A(i,i) + 1.0\n\
  \  do j = i..N\n\
  \    S2: A(i,j) = f()\n\
  \    S3: C(j) = A(i,j) * 2.0\n\
  \  enddo\n\
  \  S4: D(i,i) = B(i)\n\
   enddo\n"

let identity_tf = { Tf.steps = []; partial = []; edits = [] }

let has_stmt label (prog : Ast.program) =
  List.exists (fun (_, (s : Ast.stmt)) -> s.Ast.label = label) (Ast.stmts_with_paths prog)

let test_shrink_to_predicate () =
  (* "fails whenever S3 is present": the shrinker must keep exactly the
     failure-relevant statement and drop the rest *)
  let oracle p _ =
    if has_stmt "S3" p then
      Oracle.Finding { signature = Oracle.Crash; detail = "synthetic" }
    else Oracle.Pass "gone"
  in
  let prog, tf, attempts =
    Shrink.shrink ~oracle ~signature:Oracle.Crash ~max_attempts:500 (parse big_src) identity_tf
  in
  Alcotest.(check bool) "kept the trigger" true (has_stmt "S3" prog);
  Alcotest.(check bool) "dropped other statements" false
    (has_stmt "S1" prog || has_stmt "S4" prog);
  Alcotest.(check bool) "spent some attempts" true (attempts > 0);
  Alcotest.(check bool) "recipe untouched" true (Tf.to_string tf = Tf.to_string identity_tf)

let test_shrink_signature_guard () =
  (* reductions that change the signature are rejected: S2 alone crashes
     with a different signature, so dropping S3 must not be kept *)
  let oracle p _ =
    if has_stmt "S3" p then
      Oracle.Finding { signature = Oracle.Crash; detail = "synthetic" }
    else if has_stmt "S2" p then
      Oracle.Finding { signature = Oracle.Divergence; detail = "other" }
    else Oracle.Pass "gone"
  in
  let prog, _, _ =
    Shrink.shrink ~oracle ~signature:Oracle.Crash ~max_attempts:500 (parse big_src) identity_tf
  in
  Alcotest.(check bool) "signature preserved" true (has_stmt "S3" prog)

let test_shrink_respects_budget () =
  let calls = ref 0 in
  let oracle _ _ =
    incr calls;
    Oracle.Finding { signature = Oracle.Crash; detail = "always" }
  in
  let _, _, attempts =
    Shrink.shrink ~oracle ~signature:Oracle.Crash ~max_attempts:7 (parse big_src) identity_tf
  in
  Alcotest.(check bool) "bounded" true (attempts <= 7 && !calls <= 7)

let test_shrink_tf_steps () =
  (* a recipe-dependent failure: the shrinker thins steps but keeps the
     failing one *)
  let tf =
    { Tf.steps = [ ("reverse", "i"); ("scale", "i,2"); ("reverse", "j") ]; partial = []; edits = [] }
  in
  let oracle _ t =
    if List.mem ("scale", "i,2") t.Tf.steps then
      Oracle.Finding { signature = Oracle.Verdict_mismatch; detail = "synthetic" }
    else Oracle.Pass "gone"
  in
  let _, tf', _ =
    Shrink.shrink ~oracle ~signature:Oracle.Verdict_mismatch ~max_attempts:200 (parse big_src) tf
  in
  Alcotest.(check bool) "failing step kept" true (List.mem ("scale", "i,2") tf'.Tf.steps);
  Alcotest.(check int) "other steps dropped" 1 (List.length tf'.Tf.steps)

(* ---- watchdog ---- *)

let test_watchdog_basic () =
  (match Watchdog.with_timeout ~ms:5_000 (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "fast path" 42 v
  | Error _ -> Alcotest.fail "spurious timeout");
  match
    Watchdog.with_timeout ~ms:40 (fun () ->
        Watchdog.hang ();
        0)
  with
  | Ok _ -> Alcotest.fail "hang completed?"
  | Error elapsed -> Alcotest.(check bool) "took about the deadline" true (elapsed >= 0.02)

let test_watchdog_restores () =
  (* after a timeout fires, no stale deadline lingers *)
  (match Watchdog.with_timeout ~ms:40 (fun () -> Watchdog.hang ()) with
  | Ok () -> Alcotest.fail "hang completed?"
  | Error _ -> ());
  Alcotest.(check bool) "deadline cleared" false (Watchdog.active ());
  match Watchdog.with_timeout ~ms:5_000 (fun () -> Watchdog.poll (); 1) with
  | Ok v -> Alcotest.(check int) "usable after timeout" 1 v
  | Error _ -> Alcotest.fail "stale deadline leaked"

let test_watchdog_converts_injected_hang () =
  (* the acceptance drill, in-process: an injected solver hang becomes a
     timeout finding instead of wedging the harness *)
  (match Faults.parse "hang=0" with
  | Ok f -> Faults.install f
  | Error msg -> Alcotest.fail msg);
  Fun.protect
    ~finally:(fun () -> Faults.install Faults.none)
    (fun () ->
      let prog = parse Px.simplified_cholesky in
      match Oracle.run_case ~timeout_ms:100 prog identity_tf with
      | Oracle.Finding { signature = Oracle.Timeout; _ } -> ()
      | other -> Alcotest.failf "expected a timeout finding, got %s" (Oracle.outcome_to_string other))

(* ---- oracle sanity ---- *)

let test_oracle_passes_known_good () =
  (* completion from the canonical partial row on simplified Cholesky is
     the paper's own worked example: it must pass all three judges *)
  let prog = parse Px.simplified_cholesky in
  let tf = { Tf.steps = []; partial = [ [ 0; 0; 0; 1 ] ]; edits = [] } in
  match Oracle.run_case prog tf with
  | Oracle.Pass _ -> ()
  | other -> Alcotest.failf "expected pass, got %s" (Oracle.outcome_to_string other)

let test_oracle_skips_unmaterializable () =
  let prog = parse Px.simplified_cholesky in
  let tf = { Tf.steps = [ ("interchange", "nope,never") ]; partial = []; edits = [] } in
  match Oracle.run_case prog tf with
  | Oracle.Skip _ -> ()
  | other -> Alcotest.failf "expected skip, got %s" (Oracle.outcome_to_string other)

(* ---- driver: resume, quarantine, summary ---- *)

let scratch_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "inl_fuzz_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (match Corpus.ensure_dir dir with Ok () -> () | Error msg -> Alcotest.fail msg);
    dir

let run_driver cfg =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  let result = Driver.run ~out cfg in
  Format.pp_print_flush out ();
  (result, Buffer.contents buf)

let base_cfg corpus =
  { Driver.seed = 42; cases = 3; timeout_ms = 0; corpus = Some corpus; shrink = true }

let test_driver_resume () =
  let dir = scratch_dir () in
  let r1, _ =
    match run_driver (base_cfg dir) with
    | Ok r, o -> (r, o)
    | Error msg, _ -> Alcotest.fail msg
  in
  Alcotest.(check int) "first leg completed" 3 r1.Driver.completed;
  (* "interrupt" after 3 cases, then ask for 5: resumes at case 4 *)
  let r2, out2 =
    match run_driver { (base_cfg dir) with Driver.cases = 5 } with
    | Ok r, o -> (r, o)
    | Error msg, _ -> Alcotest.fail msg
  in
  Alcotest.(check int) "second leg runs the remainder" 2 r2.Driver.completed;
  Alcotest.(check bool) "announces the resume point" true
    (let needle = "resuming at case 4 of 5" in
     let len = String.length needle in
     let n = String.length out2 in
     let rec find i = i + len <= n && (String.sub out2 i len = needle || find (i + 1)) in
     find 0);
  (* the split campaign equals the uninterrupted one *)
  let dir' = scratch_dir () in
  let r, _ =
    match run_driver { (base_cfg dir') with Driver.cases = 5 } with
    | Ok r, o -> (r, o)
    | Error msg, _ -> Alcotest.fail msg
  in
  Alcotest.(check int) "ok counts add up" r.Driver.ok (r1.Driver.ok + r2.Driver.ok);
  Alcotest.(check int) "skip counts add up" r.Driver.skipped (r1.Driver.skipped + r2.Driver.skipped)

let test_driver_seed_mismatch () =
  let dir = scratch_dir () in
  (match run_driver (base_cfg dir) with Ok _, _ -> () | (Error msg, _) -> Alcotest.fail msg);
  match run_driver { (base_cfg dir) with Driver.seed = 9 } with
  | Ok _, _ -> Alcotest.fail "expected a seed-mismatch refusal"
  | Error msg, _ ->
      Alcotest.(check bool) "names both seeds" true
        (let has sub =
           let n = String.length msg and l = String.length sub in
           let rec find i = i + l <= n && (String.sub msg i l = sub || find (i + 1)) in
           find 0
         in
         has "42" && has "9")

let test_driver_quarantine_and_replay () =
  (* force a deterministic timeout finding via an injected hang, then
     replay it from quarantine with the same fault configuration *)
  let dir = scratch_dir () in
  (match Faults.parse "hang=30" with
  | Ok f -> Faults.install f
  | Error msg -> Alcotest.fail msg);
  Fun.protect
    ~finally:(fun () -> Faults.install Faults.none)
    (fun () ->
      let cfg =
        {
          Driver.seed = 42;
          cases = 1;
          timeout_ms = 150;
          corpus = Some dir;
          shrink = false;
        }
      in
      match run_driver cfg with
      | Error msg, _ -> Alcotest.fail msg
      | Ok r, _ ->
          Alcotest.(check int) "one timeout finding" 1 r.Driver.timeout;
          let base = Filename.concat dir "finding-0-timeout" in
          Alcotest.(check bool) "program quarantined" true (Sys.file_exists (base ^ ".inl"));
          Alcotest.(check bool) "recipe quarantined" true (Sys.file_exists (base ^ ".tf"));
          let buf = Buffer.create 64 in
          let out = Format.formatter_of_buffer buf in
          let replayed = Driver.replay ~timeout_ms:150 ~out base in
          Format.pp_print_flush out ();
          (match replayed with
          | Ok true -> ()
          | Ok false -> Alcotest.fail "finding did not reproduce"
          | Error msg -> Alcotest.fail msg))

let test_corpus_cursor_atomicity () =
  let dir = scratch_dir () in
  Corpus.write_cursor ~dir { Corpus.seed = 5; cases_done = 17 };
  (match Corpus.read_cursor ~dir with
  | Ok (Some c) ->
      Alcotest.(check int) "seed" 5 c.Corpus.seed;
      Alcotest.(check int) "done" 17 c.Corpus.cases_done
  | _ -> Alcotest.fail "cursor did not round-trip");
  (* a mangled cursor is an explicit refusal, not a silent restart *)
  let oc = open_out (Filename.concat dir "cursor") in
  output_string oc "seed five\ndone some\n";
  close_out oc;
  match Corpus.read_cursor ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error on a mangled cursor"

let () =
  Alcotest.run "fuzz"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic per (seed, index)" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges and picks" `Quick test_rng_ranges;
        ] );
      ( "generator",
        [
          Alcotest.test_case "well-formed across seeds" `Quick test_gen_well_formed;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
        ] );
      ( "recipes",
        [
          Alcotest.test_case "round-trip" `Quick test_tf_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_tf_reject_malformed;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "reduces to the trigger" `Quick test_shrink_to_predicate;
          Alcotest.test_case "preserves the signature" `Quick test_shrink_signature_guard;
          Alcotest.test_case "respects the attempt budget" `Quick test_shrink_respects_budget;
          Alcotest.test_case "thins recipe steps" `Quick test_shrink_tf_steps;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "timeout and fast path" `Quick test_watchdog_basic;
          Alcotest.test_case "deadline restored" `Quick test_watchdog_restores;
          Alcotest.test_case "injected hang becomes a timeout finding" `Quick
            test_watchdog_converts_injected_hang;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "passes the paper's completion" `Quick test_oracle_passes_known_good;
          Alcotest.test_case "skips unmaterializable recipes" `Quick
            test_oracle_skips_unmaterializable;
        ] );
      ( "driver",
        [
          Alcotest.test_case "resume at case k+1" `Quick test_driver_resume;
          Alcotest.test_case "seed mismatch refused" `Quick test_driver_seed_mismatch;
          Alcotest.test_case "quarantine and replay" `Quick test_driver_quarantine_and_replay;
          Alcotest.test_case "cursor round-trip and refusal" `Quick test_corpus_cursor_atomicity;
        ] );
    ]
