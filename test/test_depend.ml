(* Tests for dependence analysis (Section 3).

   Unit tests pin the dependence vectors of the paper's examples; the
   differential property checks that on concrete parameter values every
   empirically observed dependent instance pair is covered by some
   symbolic dependence (same statements, same kind, instance-vector
   difference inside the symbolic intervals), and conversely that each
   symbolic dependence is witnessed by at least one concrete pair. *)

module Interval = Inl_presburger.Interval
module Parser = Inl_ir.Parser
module Layout = Inl_instance.Layout
module Dep = Inl_depend.Dep
module Analysis = Inl_depend.Analysis

let cholesky_src = {|
params N
do I = 1..N
  S1: A(I) = sqrt(A(I))
  do J = I+1..N
    S2: A(J) = A(J) / A(I)
  enddo
enddo
|}

let layout_of src = Layout.of_program (Parser.parse_exn src)

let symbols (d : Dep.t) = String.concat "," (Dep.vector_symbols d)

let find_dep deps ~src ~dst ~kind =
  List.filter
    (fun (d : Dep.t) -> d.src = src && d.dst = dst && d.kind = kind)
    deps

(* Section 3: flow dependence S1 -> S2 is [0, 1, -1, +]'. *)
let test_cholesky_flow () =
  let layout = layout_of cholesky_src in
  let deps = Analysis.dependences layout in
  match find_dep deps ~src:"S1" ~dst:"S2" ~kind:Dep.Flow with
  | [ d ] ->
      Alcotest.(check string) "paper vector" "0,1,-1,+" (symbols d);
      Alcotest.(check bool) "loop-independent" true (d.level = Dep.Independent)
  | ds -> Alcotest.failf "expected exactly one flow S1->S2, got %d" (List.length ds)

let test_cholesky_all_deps () =
  let layout = layout_of cholesky_src in
  let deps = Analysis.dependences layout in
  (* anti S2 -> S1: S2 reads A(J), S1 writes A(I') at I' = J > I *)
  (match find_dep deps ~src:"S2" ~dst:"S1" ~kind:Dep.Anti with
  | [ d ] -> Alcotest.(check string) "anti S2->S1" "+,-1,1,0" (symbols d)
  | ds -> Alcotest.failf "anti S2->S1: got %d" (List.length ds));
  (* flow S2 -> S1: same access pattern, S2 writes A(J), S1 reads A(I') *)
  (match find_dep deps ~src:"S2" ~dst:"S1" ~kind:Dep.Flow with
  | [ d ] -> Alcotest.(check string) "flow S2->S1" "+,-1,1,0" (symbols d)
  | ds -> Alcotest.failf "flow S2->S1: got %d" (List.length ds));
  (* output S2 -> S2 on A(J), carried by I *)
  match find_dep deps ~src:"S2" ~dst:"S2" ~kind:Dep.Output with
  | [ d ] -> Alcotest.(check string) "output S2->S2" "+,0,0,0" (symbols d)
  | ds -> Alcotest.failf "output S2->S2: got %d" (List.length ds)

(* The Section 5.4 example:
     do I: S1: B(I) = B(I-1) + A(I-1,I+1); do J = I..N: S2: A(I,J) = f()
   The paper's dependence matrix D has columns [1,0,0,1]' (flow S1->S1 on
   B, distance 1) and [1,-1,1,-1]' (flow S2->S1 on A). *)
let aug_src = {|
params N
do I = 1..N
  S1: B(I) = B(I-1) + A(I-1,I+1)
  do J = I..N
    S2: A(I,J) = f()
  enddo
enddo
|}

let test_section54_deps () =
  let layout = layout_of aug_src in
  let deps = Analysis.dependences layout in
  (match find_dep deps ~src:"S1" ~dst:"S1" ~kind:Dep.Flow with
  | [ d ] -> Alcotest.(check string) "B self flow" "1,0,0,1" (symbols d)
  | ds -> Alcotest.failf "B self flow: got %d" (List.length ds));
  match find_dep deps ~src:"S2" ~dst:"S1" ~kind:Dep.Flow with
  | [ d ] -> Alcotest.(check string) "A flow S2->S1" "1,-1,1,-1" (symbols d)
  | ds -> Alcotest.failf "A flow S2->S1: got %d" (List.length ds)

(* Full Cholesky: the dependence matrix of Section 6.  We check the two
   columns that are unambiguous in the paper's text: flow S1->S2
   [0,0,1,-1,0,0,+]' and flow S2->S3 [0,1,-1,0,+,+,-]'. *)
let full_cholesky_src = {|
params N
do K = 1..N
  S1: A[K][K] = sqrt(A[K][K])
  do I = K+1..N
    S2: A[I][K] = A[I][K] / A[K][K]
  enddo
  do J = K+1..N
    do L = K+1..J
      S3: A[J][L] = A[J][L] - A[J][K] * A[L][K]
    enddo
  enddo
enddo
|}

let test_full_cholesky_deps () =
  let layout = layout_of full_cholesky_src in
  let deps = Analysis.dependences layout in
  (match find_dep deps ~src:"S1" ~dst:"S2" ~kind:Dep.Flow with
  | [ d ] -> Alcotest.(check string) "S1->S2" "0,0,1,-1,0,0,+" (symbols d)
  | ds -> Alcotest.failf "S1->S2: got %d" (List.length ds));
  (match find_dep deps ~src:"S2" ~dst:"S3" ~kind:Dep.Flow with
  | ds ->
      (* two reads of column K in S3 hit the same write; both give the same
         direction profile on the K and edge positions *)
      Alcotest.(check bool) "at least one" true (List.length ds >= 1);
      List.iter
        (fun (d : Dep.t) ->
          Alcotest.(check string) "K delta" "0" (Interval.to_symbol d.vector.(0));
          Alcotest.(check string) "e2 delta" "1" (Interval.to_symbol d.vector.(1));
          Alcotest.(check string) "e1 delta" "-1" (Interval.to_symbol d.vector.(2)))
        ds);
  (* S3 -> S1: the sqrt of step k+1 reads what S3 wrote *)
  match find_dep deps ~src:"S3" ~dst:"S1" ~kind:Dep.Flow with
  | [] -> Alcotest.fail "expected flow S3->S1"
  | _ -> ()

(* ---- differential: symbolic covers concrete, and is witnessed ---- *)

let covers (layout : Layout.t) (deps : Dep.t list) (src, dst, kind, diff) =
  ignore layout;
  List.exists
    (fun (d : Dep.t) ->
      d.Dep.src = src && d.dst = dst && d.kind = kind
      && Array.length d.vector = Array.length diff
      && Array.for_all2
           (fun iv x -> Interval.contains iv (Inl_num.Mpz.of_int x))
           d.vector diff)
    deps

let check_coverage src_text params =
  let layout = layout_of src_text in
  let deps = Analysis.dependences layout in
  let concrete = Analysis.concrete_dependences layout ~params in
  List.iter
    (fun ((s, t, k, diff) as c) ->
      if not (covers layout deps c) then
        Alcotest.failf "uncovered concrete dependence %s->%s %s [%s]" s t
          (Dep.kind_to_string k)
          (String.concat "," (List.map string_of_int (Array.to_list diff))))
    concrete;
  (* witness check: every symbolic dep is realized at this parameter size *)
  List.iter
    (fun (d : Dep.t) ->
      let witnessed =
        List.exists
          (fun (s, t, k, diff) ->
            s = d.src && t = d.dst && k = d.kind
            && Array.for_all2
                 (fun iv x -> Interval.contains iv (Inl_num.Mpz.of_int x))
                 d.vector diff)
          concrete
      in
      if not witnessed then
        Alcotest.failf "unwitnessed symbolic dependence: %s" (Format.asprintf "%a" Dep.pp d))
    deps

let test_coverage_cholesky () = check_coverage cholesky_src [ ("N", 6) ]
let test_coverage_aug () = check_coverage aug_src [ ("N", 6) ]
let test_coverage_full_cholesky () = check_coverage full_cholesky_src [ ("N", 5) ]

(* random little programs: coverage only (witnessing can require larger N) *)
let gen_src : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* a1 = int_range (-2) 2 in
  let* a2 = int_range (-2) 2 in
  let* c = int_range 0 1 in
  let body =
    Printf.sprintf "  S2: A(J%+d) = A(J%+d) + B(I)\n" a1 a2
  in
  let s1 = if c = 0 then " S1: B(I) = A(I) + 1\n" else " S1: B(I) = B(I-1) + 1\n" in
  return ("params N\ndo I = 1..N\n" ^ s1 ^ "  do J = I..N\n" ^ body ^ "  enddo\nenddo\n")

let coverage_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"symbolic covers concrete on random programs" ~count:40 gen_src
       (fun src ->
         let layout = layout_of src in
         let deps = Analysis.dependences layout in
         let concrete = Analysis.concrete_dependences layout ~params:[ ("N", 5) ] in
         List.for_all (covers layout deps) concrete))

(* ---- graceful degradation under injected Omega failures ---- *)

let with_faults spec f =
  Inl_diag.Faults.install spec;
  Fun.protect ~finally:(fun () -> Inl_diag.Faults.install Inl_diag.Faults.none) f

(* [inner] is contained in [outer] iff their hull is [outer]. *)
let interval_subset inner outer = Interval.equal (Interval.hull inner outer) outer

let dep_subsumed (exact : Dep.t) (approx : Dep.t) =
  exact.Dep.src = approx.Dep.src
  && exact.dst = approx.dst
  && exact.kind = approx.kind
  && Array.length exact.vector = Array.length approx.vector
  && Array.for_all2 interval_subset exact.vector approx.vector

(* With every projection failing, the conservative dependence set must
   still cover (1) every concrete dependent instance pair and (2) every
   dependence of the exact analysis, interval-wise. *)
let check_superset src_text params =
  let layout = layout_of src_text in
  let exact = Analysis.dependences layout in
  let degraded, diags =
    with_faults
      { Inl_diag.Faults.none with fail_every = Some 1 }
      (fun () -> Analysis.dependences_diag layout)
  in
  Alcotest.(check bool) "degradation reported" true (diags <> []);
  Alcotest.(check bool)
    "every degraded dep is tagged approximate" true
    (List.for_all (fun (d : Dep.t) -> d.Dep.approximate) degraded);
  List.iter
    (fun (e : Dep.t) ->
      if not (List.exists (dep_subsumed e) degraded) then
        Alcotest.failf "exact dependence not subsumed by the conservative set: %s"
          (Format.asprintf "%a" Dep.pp e))
    exact;
  let concrete = Analysis.concrete_dependences layout ~params in
  List.iter
    (fun ((s, t, k, diff) as c) ->
      if not (covers layout degraded c) then
        Alcotest.failf "concrete dependence outside the conservative set: %s->%s %s [%s]" s t
          (Dep.kind_to_string k)
          (String.concat "," (List.map string_of_int (Array.to_list diff))))
    concrete

let test_superset_cholesky () = check_superset cholesky_src [ ("N", 6) ]
let test_superset_aug () = check_superset aug_src [ ("N", 6) ]
let test_superset_full_cholesky () = check_superset full_cholesky_src [ ("N", 5) ]

(* Partial degradation (every 2nd projection fails) must still be a
   superset of the concrete pairs, mixing exact and approximate columns. *)
let test_partial_degradation () =
  let layout = layout_of cholesky_src in
  let degraded =
    with_faults
      { Inl_diag.Faults.none with fail_every = Some 2 }
      (fun () -> Analysis.dependences layout)
  in
  let concrete = Analysis.concrete_dependences layout ~params:[ ("N", 6) ] in
  List.iter
    (fun ((s, t, k, diff) as c) ->
      if not (covers layout degraded c) then
        Alcotest.failf "concrete dependence uncovered under partial faults: %s->%s %s [%s]" s t
          (Dep.kind_to_string k)
          (String.concat "," (List.map string_of_int (Array.to_list diff))))
    concrete

(* Analysis is deterministic: two runs under identical fault schedules
   produce identical dependence sets (fresh-variable naming and fault
   counters are reset per analysis). *)
let test_deterministic_under_faults () =
  let layout = layout_of full_cholesky_src in
  let run () =
    with_faults
      { Inl_diag.Faults.none with fail_every = Some 2 }
      (fun () -> Analysis.dependences layout)
  in
  let show ds = String.concat "\n" (List.map (Format.asprintf "%a" Dep.pp) ds) in
  Alcotest.(check string) "identical dependence sets" (show (run ())) (show (run ()))

let superset_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"conservative set covers concrete on random programs" ~count:25
       gen_src (fun src ->
         let layout = layout_of src in
         let degraded =
           with_faults
             { Inl_diag.Faults.none with fail_every = Some 1 }
             (fun () -> Analysis.dependences layout)
         in
         let concrete = Analysis.concrete_dependences layout ~params:[ ("N", 5) ] in
         List.for_all (covers layout degraded) concrete))

let () =
  Alcotest.run "depend"
    [
      ( "paper",
        [
          Alcotest.test_case "Section 3 flow vector" `Quick test_cholesky_flow;
          Alcotest.test_case "Section 3 full matrix" `Quick test_cholesky_all_deps;
          Alcotest.test_case "Section 5.4 matrix" `Quick test_section54_deps;
          Alcotest.test_case "Section 6 Cholesky matrix" `Quick test_full_cholesky_deps;
        ] );
      ( "differential",
        [
          Alcotest.test_case "coverage: simplified Cholesky" `Quick test_coverage_cholesky;
          Alcotest.test_case "coverage: Section 5.4 example" `Quick test_coverage_aug;
          Alcotest.test_case "coverage: full Cholesky" `Slow test_coverage_full_cholesky;
          coverage_prop;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "superset: simplified Cholesky" `Quick test_superset_cholesky;
          Alcotest.test_case "superset: Section 5.4 example" `Quick test_superset_aug;
          Alcotest.test_case "superset: full Cholesky" `Slow test_superset_full_cholesky;
          Alcotest.test_case "partial fault coverage" `Quick test_partial_degradation;
          Alcotest.test_case "deterministic under faults" `Quick test_deterministic_under_faults;
          superset_prop;
        ] );
    ]
