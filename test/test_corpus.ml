(* The corpus bulk runner's parts in isolation:

   - Manifest: the line dialect, typed K700/K701 rejections, relative
     path resolution, override parsing, fingerprinting;
   - Record: the escaped tab-separated line round-trips every status and
     survives hostile string fields (the checkpoint payload is exactly
     these lines);
   - Bench: the drift guard catches every stable-field drift in both
     directions and ignores wall-clock noise;
   - Runner: checkpointing end to end on a real (tiny) kernel —
     resume skips completed records, a config mismatch is a typed K703
     refusal, a corrupt checkpoint is a typed K704 cold start. *)

module Diag = Inl_diag.Diag
module Snapshot = Inl_serve.Snapshot
module Manifest = Inl_corpus.Manifest
module Record = Inl_corpus.Record
module Bench = Inl_corpus.Bench
module Runner = Inl_corpus.Runner

let null_out = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let tmpdir () =
  let dir = Filename.temp_file "inl-corpus-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let write path text = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

let with_manifest text f =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "m.manifest" in
      write path text;
      f dir (Manifest.load path))

let expect_codes what expected = function
  | Ok _ -> Alcotest.failf "%s: accepted" what
  | Error ds ->
      Alcotest.(check (list string)) what expected (List.map (fun d -> d.Diag.code) ds)

(* ---- manifest ---- *)

let test_manifest_ok () =
  with_manifest
    "# comment line\n\
     kernel a x.loop\n\
     \t kernel b sub/y.loop seed=7 beam=3 depth=2 finalists=1 size=16 timeout_ms=0 \
     budget=1000 faults=every=2 run=4 threads=2\n\
     kernel c /abs/z.loop\n"
    (fun dir m ->
      match m with
      | Error ds -> Alcotest.failf "rejected: %s" (Diag.list_to_string ds)
      | Ok m ->
          Alcotest.(check int) "entries" 3 (List.length m.Manifest.entries);
          let b = List.nth m.Manifest.entries 1 in
          Alcotest.(check string) "relative path resolved" (Filename.concat dir "sub/y.loop")
            b.Manifest.path;
          Alcotest.(check (option int)) "seed" (Some 7) b.Manifest.seed;
          Alcotest.(check (option int)) "beam" (Some 3) b.Manifest.beam;
          Alcotest.(check (option int)) "timeout may be zero" (Some 0) b.Manifest.timeout_ms;
          Alcotest.(check (option string)) "faults" (Some "every=2") b.Manifest.faults;
          Alcotest.(check (option int)) "run" (Some 4) b.Manifest.run;
          Alcotest.(check (option int)) "threads" (Some 2) b.Manifest.threads;
          let c = List.nth m.Manifest.entries 2 in
          Alcotest.(check string) "absolute path kept" "/abs/z.loop" c.Manifest.path;
          Alcotest.(check bool) "fingerprint nonempty" true (m.Manifest.fingerprint <> ""))

let test_manifest_fingerprint_tracks_text () =
  let fp text = with_manifest text (fun _ m -> (Result.get_ok m).Manifest.fingerprint) in
  Alcotest.(check bool)
    "any edit changes the fingerprint" true
    (fp "kernel a x.loop\n" <> fp "kernel a x.loop seed=1\n")

let test_manifest_rejections () =
  with_manifest "" (fun _ m -> expect_codes "empty" [ "K701" ] m);
  with_manifest "kernel a x.loop extra\n" (fun _ m ->
      expect_codes "bare word" [ "K701" ] m);
  with_manifest "kernel a x.loop colour=blue\n" (fun _ m ->
      expect_codes "unknown key" [ "K701" ] m);
  with_manifest "kernel a x.loop beam=0\n" (fun _ m ->
      expect_codes "beam below minimum" [ "K701" ] m);
  with_manifest "kernel a x.loop seed=many\n" (fun _ m ->
      expect_codes "non-integer" [ "K701" ] m);
  with_manifest "kernel a x.loop faults=bogus\n" (fun _ m ->
      expect_codes "bad fault spec" [ "K701" ] m);
  with_manifest "kernel a/b x.loop\n" (fun _ m ->
      expect_codes "name with separator" [ "K701" ] m);
  with_manifest "kernel a x.loop\nkernel a y.loop\n" (fun _ m ->
      expect_codes "duplicate name" [ "K701" ] m);
  with_manifest "kremel a x.loop\n" (fun _ m ->
      expect_codes "unknown directive" [ "K701" ] m);
  with_manifest "kernel a\n" (fun _ m -> expect_codes "missing path" [ "K701" ] m);
  expect_codes "unreadable file" [ "K700" ] (Manifest.load "/nonexistent/m.manifest")

(* ---- record ---- *)

let sample_record =
  {
    Record.name = "k-1";
    status = Record.Quarantined;
    signature = "timeout";
    detail = "kernel exceeded its 300 ms deadline\twith a tab\nand a newline \\ backslash";
    winner = "";
    source_misses = 4117;
    winner_misses = -1;
    accesses = 0;
    candidates = 215;
    delta_inherited = 10;
    delta_checked = 30;
    legality_memo_hits = 5;
    mat_memo_hits = 2;
    retried = true;
    degradations = "K706,K711";
    wall_ms = 375;
    doall = -1;
    exec = "";
  }

let test_record_roundtrip () =
  let line = Record.to_line sample_record in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  (match Record.of_line line with
  | Ok r -> Alcotest.(check bool) "round-trip" true (r = sample_record)
  | Error m -> Alcotest.failf "of_line: %s" m);
  List.iter
    (fun status ->
      let r = { sample_record with Record.status } in
      match Record.of_line (Record.to_line r) with
      | Ok r' -> Alcotest.(check bool) "status round-trip" true (r' = r)
      | Error m -> Alcotest.failf "status %s: %s" (Record.status_to_string status) m)
    [ Record.Clean; Record.Degraded; Record.Quarantined; Record.Failed ]

let test_record_rejects_garbage () =
  List.iter
    (fun line ->
      match Record.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [ ""; "just one field"; Record.to_line sample_record ^ "\textra" ]

let test_delta_inherit_rate () =
  Alcotest.(check (float 1e-9)) "10/40" 0.25 (Record.delta_inherit_rate sample_record);
  Alcotest.(check (float 1e-9)) "nothing checked -> 0" 0.
    (Record.delta_inherit_rate { sample_record with Record.delta_inherited = 0; delta_checked = 0 })

(* ---- bench guard ---- *)

let clean_record name =
  {
    sample_record with
    Record.name;
    status = Record.Clean;
    signature = "";
    detail = "";
    winner = "complete row=[0,1]";
    winner_misses = 9;
    retried = false;
    degradations = "";
    doall = 1;
    exec = "ok:doall=J";
  }

let render records = Bench.render ~manifest_fingerprint:"f00" ~jobs:1 ~timings:true records

let test_guard_passes_on_match () =
  let b = render [ clean_record "a"; clean_record "b" ] in
  (match Bench.guard ~baseline:b ~current:b with
  | Ok () -> ()
  | Error ds -> Alcotest.failf "drift on identical reports: %s" (String.concat "; " ds));
  (* wall-clock noise is not drift *)
  let noisy = render [ { (clean_record "a") with Record.wall_ms = 9999 }; clean_record "b" ] in
  match Bench.guard ~baseline:b ~current:noisy with
  | Ok () -> ()
  | Error ds -> Alcotest.failf "wall_ms treated as stable: %s" (String.concat "; " ds)

let test_guard_catches_drift () =
  let b = render [ clean_record "a"; clean_record "b" ] in
  let expect_drift what current needle =
    match Bench.guard ~baseline:b ~current with
    | Ok () -> Alcotest.failf "%s: not caught" what
    | Error ds ->
        if not (List.exists (contains ~needle) ds) then
          Alcotest.failf "%s: messages %s lack %S" what (String.concat "; " ds) needle
  in
  expect_drift "miss-count drift"
    (render [ { (clean_record "a") with Record.winner_misses = 10 }; clean_record "b" ])
    "winner_misses drifted";
  expect_drift "status drift"
    (render [ { (clean_record "a") with Record.status = Record.Degraded }; clean_record "b" ])
    "status drifted";
  expect_drift "execution-label drift"
    (render [ { (clean_record "a") with Record.exec = "degraded:X901" }; clean_record "b" ])
    "exec drifted";
  expect_drift "doall-count drift"
    (render [ { (clean_record "a") with Record.doall = 0 }; clean_record "b" ])
    "doall drifted";
  expect_drift "kernel vanished" (render [ clean_record "a" ]) "not the fresh report";
  expect_drift "kernel appeared"
    (render [ clean_record "a"; clean_record "b"; clean_record "c" ])
    "not the baseline";
  match Bench.guard ~baseline:"not json" ~current:(render []) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unparsable baseline accepted"

(* ---- runner checkpointing on a real kernel ---- *)

let tiny_kernel = "params N\ndo I = 1..N\n  S1: A(I) = A(I) + 1\nenddo\n"

let with_runner_setup f =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () ->
      write (Filename.concat dir "k.loop") tiny_kernel;
      let mpath = Filename.concat dir "m.manifest" in
      write mpath "kernel k k.loop size=8 depth=1 finalists=1\n";
      let manifest = Result.get_ok (Manifest.load mpath) in
      let state = Filename.concat dir "state" in
      let config =
        { Runner.manifest; state_dir = Some state; timeout_ms = 0; timings = false; jobs = 1 }
      in
      f config state)

let run_ok config =
  match Runner.run ~out:null_out config with
  | Ok r -> r
  | Error ds -> Alcotest.failf "runner refused: %s" (Diag.list_to_string ds)

let test_runner_resume_skips_completed () =
  with_runner_setup (fun config state ->
      let first = run_ok config in
      Alcotest.(check int) "one record" 1 (List.length first.Runner.records);
      Alcotest.(check int) "cold start" 0 first.Runner.resumed;
      Alcotest.(check bool) "checkpoint written" true
        (Sys.file_exists (Runner.checkpoint_path state));
      let second = run_ok config in
      Alcotest.(check int) "resumed from checkpoint" 1 second.Runner.resumed;
      Alcotest.(check bool) "records identical" true
        (List.map Record.to_line first.Runner.records
        = List.map Record.to_line second.Runner.records))

let test_runner_refuses_config_mismatch () =
  with_runner_setup (fun config _state ->
      ignore (run_ok config);
      match Runner.run ~out:null_out { config with Runner.timeout_ms = 5_000 } with
      | Error ds ->
          Alcotest.(check (list string)) "typed refusal" [ "K703" ]
            (List.map (fun d -> d.Diag.code) ds)
      | Ok _ -> Alcotest.fail "checkpoint from another config accepted")

let test_runner_cold_starts_on_corrupt_checkpoint () =
  with_runner_setup (fun config state ->
      ignore (run_ok config);
      write (Runner.checkpoint_path state) "not a snapshot";
      let r = run_ok config in
      Alcotest.(check int) "nothing restored" 0 r.Runner.resumed;
      Alcotest.(check (list string)) "typed cold-start warning" [ "K704" ]
        (List.map (fun d -> d.Diag.code) r.Runner.diags);
      Alcotest.(check int) "kernel rerun" 1 (List.length r.Runner.records))

let test_runner_checkpoint_is_a_snapshot () =
  with_runner_setup (fun config state ->
      ignore (run_ok config);
      match
        Snapshot.load
          ~path:(Runner.checkpoint_path state)
          ~kind:Runner.checkpoint_kind ~version:Runner.checkpoint_version
      with
      | Ok (Some payload) ->
          Alcotest.(check bool) "payload has a config header" true
            (String.length payload >= 7 && String.sub payload 0 7 = "config ")
      | Ok None -> Alcotest.fail "checkpoint missing"
      | Error m -> Alcotest.failf "checkpoint unreadable: %s" m)

let () =
  Alcotest.run "corpus"
    [
      ( "manifest",
        [
          Alcotest.test_case "parses entries and overrides" `Quick test_manifest_ok;
          Alcotest.test_case "fingerprint tracks text" `Quick test_manifest_fingerprint_tracks_text;
          Alcotest.test_case "typed rejections" `Quick test_manifest_rejections;
        ] );
      ( "record",
        [
          Alcotest.test_case "line round-trip" `Quick test_record_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_record_rejects_garbage;
          Alcotest.test_case "delta inherit rate" `Quick test_delta_inherit_rate;
        ] );
      ( "guard",
        [
          Alcotest.test_case "match passes, wall_ms ignored" `Quick test_guard_passes_on_match;
          Alcotest.test_case "drift caught both ways" `Quick test_guard_catches_drift;
        ] );
      ( "runner",
        [
          Alcotest.test_case "resume skips completed" `Quick test_runner_resume_skips_completed;
          Alcotest.test_case "config mismatch refused" `Quick test_runner_refuses_config_mismatch;
          Alcotest.test_case "corrupt checkpoint cold-starts" `Quick
            test_runner_cold_starts_on_corrupt_checkpoint;
          Alcotest.test_case "checkpoint is a snapshot" `Quick test_runner_checkpoint_is_a_snapshot;
        ] );
    ]
