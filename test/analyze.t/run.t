The static reuse report, end to end, on the paper's motivating kernel —
the kji (column-oriented) Cholesky whose cache behavior Section 1
compares against the row-oriented orders:

  $ cat > chol.loop <<'EOF'
  > params N
  > do K = 1..N
  >   S1: A(K,K) = sqrt(A(K,K))
  >   do I = K+1..N
  >     S2: A(I,K) = A(I,K) / A(K,K)
  >   enddo
  >   do J = K+1..N
  >     do I2 = J..N
  >       S3: A(I2,J) = A(I2,J) - A(I2,K) * A(J,K)
  >     enddo
  >   enddo
  > enddo
  > EOF

Every statement streams in its innermost loop (U101), and S3's temporal
reuse sits on outer loops that could be permuted innermost (U102) — the
exact facts the autotuner's static tier ranks candidates by.  Findings
make the exit code 2:

  $ inltool analyze --reuse chol.loop
  warning[U101] analysis: statement S1: no temporal or spatial reuse in the innermost loop K for A(K,K) (a new cache line every iteration)
  warning[U101] analysis: statement S2: no temporal or spatial reuse in the innermost loop I for A(I,K) (a new cache line every iteration)
  warning[U101] analysis: statement S3: no temporal or spatial reuse in the innermost loop I2 for A(I2,J), A(I2,K) (a new cache line every iteration)
  warning[U102] analysis: statement S3: loop K carries temporal reuse for A(I2,J); permuting it innermost would hoist the reuse
  warning[U102] analysis: statement S3: loop J carries temporal reuse for A(I2,K); permuting it innermost would hoist the reuse
  reuse signature (cache line = 8 elements):
  S1: depth 1  loops [K]
    write A(K,K)         K:none
    read  A(K,K)         K:none
  S2: depth 2  loops [K; I]
    write A(I,K)         K:spatial(1)  I:none
    read  A(I,K)         K:spatial(1)  I:none
    read  A(K,K)         K:none  I:temporal
  S3: depth 3  loops [K; J; I2]
    write A(I2,J)        K:temporal  J:spatial(1)  I2:none
    read  A(I2,J)        K:temporal  J:spatial(1)  I2:none
    read  A(I2,K)        K:spatial(1)  J:temporal  I2:none
    read  A(J,K)         K:spatial(1)  J:none  I2:temporal
  static score: 12832.000 (lower is better)
  weighted score: 6976.000 (outer-dimension reuse discounted by 0.5 per level)
  [2]

The same program under the left-looking completion row the autotuner
finds: the score drops sevenfold, and the partial row leaves S2's
per-statement transformation singular — surfaced as U901 and scored
pessimistically, never silently:

  $ printf 'tf v1\nrow 0,0,0,0,1,0,0\n' > left.tf
  $ inltool analyze --reuse chol.loop --recipe left.tf
  warning[U101] analysis: statement S1: no temporal or spatial reuse in the innermost loop K for A(K,K) (a new cache line every iteration)
  warning[U901] analysis: statement S2: singular per-statement transformation (rank < 2); reuse unknown, scored pessimistically until augmentation assigns the missing loops
  reuse signature (cache line = 8 elements):
  S1: depth 1  loops [K]
    write A(K,K)         K:none
    read  A(K,K)         K:none
  S2: depth 2  loops [K; I]  (singular T_S)
    write A(I,K)         K:unknown  I:unknown
    read  A(I,K)         K:unknown  I:unknown
    read  A(K,K)         K:unknown  I:unknown
  S3: depth 3  loops [K; J; I2]
    write A(I2,J)        K:spatial(1)  J:none  I2:temporal
    read  A(I2,J)        K:spatial(1)  J:none  I2:temporal
    read  A(I2,K)        K:temporal  J:none  I2:spatial(1)
    read  A(J,K)         K:none  J:temporal  I2:spatial(1)
  static score: 1824.000 (lower is better)
  weighted score: 1824.000 (outer-dimension reuse discounted by 0.5 per level)
  [2]

A drained work budget degrades, with a typed warning and the
pessimistic score — never a wrong answer:

  $ inltool analyze --reuse chol.loop --work 1 2>&1 >/dev/null
  warning[U902] analysis: reuse work budget exhausted: 3 of 3 statement(s) unclassified and scored pessimistically (raise --work or --budget)
  [2]

A row-major traversal with innermost spatial reuse on every reference
is clean — exit 0, no findings:

  $ cat > clean.loop <<'EOF'
  > params N
  > do I = 1..N
  >   do J = 1..N
  >     S1: B(I,J) = B(I,J) + 1
  >   enddo
  > enddo
  > EOF
  $ inltool analyze --reuse clean.loop
  reuse signature (cache line = 8 elements):
  S1: depth 2  loops [I; J]
    write B(I,J)         I:none  J:spatial(1)
    read  B(I,J)         I:none  J:spatial(1)
  static score: 64.000 (lower is better)
  weighted score: 64.000 (outer-dimension reuse discounted by 0.5 per level)

Driver errors are typed: no analysis selected, an illegal recipe:

  $ inltool analyze chol.loop
  error[D707] driver: no analysis selected (try --reuse)
  [1]

  $ printf 'tf v1\nstep reverse K\n' > rev.tf
  $ inltool analyze --reuse chol.loop --recipe rev.tf
  error[L302] legality: illegal transformation: dependence flow S3->S1 on A [+, -1, 0, 1, 0, 0, +] (carried(1)) maps to a possibly lexicographically negative vector
  [1]
