#!/bin/sh
# Static reuse-analysis smoke (wired into `dune runtest` and exposed as
# `make reuse-smoke`): `inltool analyze --reuse` on the paper's kji
# Cholesky — the motivating worst-of-six loop order — must report the
# pinned findings and scores:
#
#   identity   every statement streams innermost (3x U101), and S3's
#              temporal reuse could be permuted innermost (2x U102);
#              exit 2, static score 12832.
#
#   recipe     under the left-looking completion row the autotuner
#              finds, the score drops to 1824; the partial row leaves
#              S2's per-statement transformation singular, which must
#              surface as U901, not silently score as reuse.
#
#   budget     --work 1 exhausts the classification budget: U902, every
#              reference unknown, the pessimistic (maximal) score.
#
#   clean      a row-major traversal with innermost spatial reuse on
#              every reference exits 0 with no findings.
#
# The identity report is also run twice and byte-compared: the
# process-external answer must not depend on memo state.
set -u

INLTOOL=${1:-./_build/default/bin/inltool.exe}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/reuse-smoke.XXXXXX") || exit 1
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "reuse-smoke: FAIL: $*" >&2
  exit 1
}

cat > "$DIR/chol.loop" << 'EOF'
params N
do K = 1..N
  S1: A(K,K) = sqrt(A(K,K))
  do I = K+1..N
    S2: A(I,K) = A(I,K) / A(K,K)
  enddo
  do J = K+1..N
    do I2 = J..N
      S3: A(I2,J) = A(I2,J) - A(I2,K) * A(J,K)
    enddo
  enddo
enddo
EOF

# ---- identity: streaming innermost, permutable temporal reuse ----------
"$INLTOOL" analyze --reuse "$DIR/chol.loop" > "$DIR/id.out" 2>&1
code=$?
[ "$code" -eq 2 ] || fail "identity exit $code, wanted 2 (findings)"
u101=$(grep -c 'U101' "$DIR/id.out")
[ "$u101" -eq 3 ] || fail "identity: $u101 U101 findings, wanted 3"
u102=$(grep -c 'U102' "$DIR/id.out")
[ "$u102" -eq 2 ] || fail "identity: $u102 U102 findings, wanted 2"
grep -q 'static score: 12832.000' "$DIR/id.out" || fail "identity score drifted: $(grep 'static score' "$DIR/id.out")"

"$INLTOOL" analyze --reuse "$DIR/chol.loop" > "$DIR/id2.out" 2>&1
cmp -s "$DIR/id.out" "$DIR/id2.out" || fail "two identical analyses disagreed"

# ---- left-looking recipe: better score, singular T_S surfaced ----------
printf 'tf v1\nrow 0,0,0,0,1,0,0\n' > "$DIR/left.tf"
"$INLTOOL" analyze --reuse "$DIR/chol.loop" --recipe "$DIR/left.tf" > "$DIR/left.out" 2>&1
code=$?
[ "$code" -eq 2 ] || fail "recipe exit $code, wanted 2"
grep -q 'U901' "$DIR/left.out" || fail "recipe: singular T_S not surfaced as U901"
grep -q '(singular T_S)' "$DIR/left.out" || fail "recipe: report lacks the singular marker"
grep -q 'static score: 1824.000' "$DIR/left.out" || fail "recipe score drifted: $(grep 'static score' "$DIR/left.out")"

# ---- exhausted budget: everything unknown, scored pessimistically ------
"$INLTOOL" analyze --reuse "$DIR/chol.loop" --work 1 > "$DIR/tiny.out" 2>&1
code=$?
[ "$code" -eq 2 ] || fail "--work 1 exit $code, wanted 2"
grep -q 'U902' "$DIR/tiny.out" || fail "--work 1: budget exhaustion not surfaced as U902"
grep -q 'static score: 17184.000' "$DIR/tiny.out" || fail "--work 1 score drifted: $(grep 'static score' "$DIR/tiny.out")"

# ---- clean program: no findings, exit 0 --------------------------------
cat > "$DIR/clean.loop" << 'EOF'
params N
do I = 1..N
  do J = 1..N
    S1: B(I,J) = B(I,J) + A(I,J)
  enddo
enddo
EOF
"$INLTOOL" analyze --reuse "$DIR/clean.loop" > "$DIR/clean.out" 2>&1
code=$?
[ "$code" -eq 0 ] || fail "clean exit $code, wanted 0; output: $(cat "$DIR/clean.out")"
grep -q 'warning' "$DIR/clean.out" && fail "clean program produced findings"

echo "reuse-smoke: OK (identity 12832 -> left-looking 1824; U101=$u101 U102=$u102, budget + singular degradations typed)"
