(* Unit tests for the static verifier (lib/verify): the well-formedness
   lint codes, the DOALL detector, translation validation on the paper
   kernels' transformed output, and graceful degradation under an
   exhausted resource budget. *)

module Ast = Inl_ir.Ast
module Parser = Inl_ir.Parser
module Linexpr = Inl_presburger.Linexpr
module Mpz = Inl_num.Mpz
module Diag = Inl_diag.Diag
module Budget = Inl_diag.Budget
module Verify = Inl_verify.Verify
module Doall = Inl_verify.Doall
module Vec = Inl_linalg.Vec

let cholesky_src =
  "params N\ndo I = 1..N\n S1: A(I) = sqrt(A(I))\n do J = I+1..N\n  S2: A(J) = A(J) / A(I)\n \
   enddo\nenddo\n"

let cholesky_gen =
  "params N\ndo t1 = 1..N\n do t2 = 1..t1 - 1\n  S2: A(t1) = A(t1) / A(t2)\n enddo\n S1: A(t1) \
   = sqrt(A(t1))\nenddo\n"

let parse src = Parser.parse_exn src

let codes ds = List.map (fun (d : Diag.t) -> d.Diag.code) ds

let has_code c ds = List.mem c (codes ds)

let check_codes name expected ds =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s reports %s (got: %s)" name c (String.concat "," (codes ds)))
        true (has_code c ds))
    expected

(* ---- translation validation on paper kernels ---- *)

let context src =
  match Inl.analyze_source_result src with
  | Ok ctx -> ctx
  | Error ds -> Alcotest.fail (Diag.list_to_string ds)

let generated ctx steps =
  match Inl.pipeline ctx steps with
  | Error ds -> Alcotest.fail (Diag.list_to_string ds)
  | Ok m -> (
      match Inl.transform ctx m with
      | Error ds -> Alcotest.fail (Diag.list_to_string ds)
      | Ok prog -> prog)

let test_cholesky_verified () =
  let ctx = context cholesky_src in
  let prog =
    generated ctx
      [ Inl.Pipeline.Reorder { parent = [ 0 ]; perm = [ 1; 0 ] }; Inl.Pipeline.Interchange ("I", "J") ]
  in
  let report = Verify.run ~against:ctx.Inl.program prog in
  Alcotest.(check (list string)) "no findings" [] (codes (Verify.diags report))

let lu_src =
  "params N\ndo K = 1..N\n do I = K+1..N\n  S1: A(I,K) = A(I,K) / A(K,K)\n  do J = K+1..N\n   \
   S2: A(I,J) = A(I,J) - A(I,K) * A(K,J)\n  enddo\n enddo\nenddo\n"

let test_lu_completion_verified () =
  let ctx = context lu_src in
  let partial = [ Vec.of_int_list [ 0; 1; 0; 0; 0 ] ] in
  let prog =
    match Inl.complete_result ctx ~partial with
    | Error ds -> Alcotest.fail (Diag.list_to_string ds)
    | Ok m -> (
        match Inl.transform ctx m with
        | Error ds -> Alcotest.fail (Diag.list_to_string ds)
        | Ok prog -> prog)
  in
  (* row-LU output is imperfectly nested with per-statement guards *)
  let report = Verify.run ~against:ctx.Inl.program prog in
  Alcotest.(check (list string)) "no findings" [] (codes (Verify.diags report))

let test_strided_verified () =
  let src = "params N\ndo I = 1..N\n S1: A(I) = A(I) + 1\nenddo\n" in
  let ctx = context src in
  let prog = generated ctx [ Inl.Pipeline.Scale ("I", 2) ] in
  (* scaled output has a strided loop and a Let quotient *)
  let report = Verify.run ~against:ctx.Inl.program prog in
  Alcotest.(check (list string)) "no findings" [] (codes (Verify.diags report))

(* ---- targeted equivalence mutants (stable codes) ---- *)

let against_cholesky gen_src =
  let source = parse cholesky_src in
  Verify.diags (Verify.run ~against:source (parse gen_src))

let test_dropped_iterations () =
  check_codes "shrunk bound" [ "V101" ]
    (against_cholesky
       "params N\ndo t1 = 1..N\n do t2 = 1..t1 - 2\n  S2: A(t1) = A(t1) / A(t2)\n enddo\n S1: \
        A(t1) = sqrt(A(t1))\nenddo\n")

let test_extra_iterations () =
  check_codes "extended bound" [ "V102" ]
    (against_cholesky
       "params N\ndo t1 = 1..N\n do t2 = 1..t1\n  S2: A(t1) = A(t1) / A(t2)\n enddo\n S1: A(t1) \
        = sqrt(A(t1))\nenddo\n")

let test_duplicated_iterations () =
  (* an extra unit-range-2 loop re-executes every instance *)
  check_codes "duplicating wrapper" [ "V103" ]
    (against_cholesky
       ("params N\ndo R = 1..2\n"
      ^ "do t1 = 1..N\n do t2 = 1..t1 - 1\n  S2: A(t1) = A(t1) / A(t2)\n enddo\n S1: A(t1) = \
         sqrt(A(t1))\nenddo\nenddo\n"))

let test_order_violation () =
  check_codes "statements swapped" [ "V104" ]
    (against_cholesky
       "params N\ndo t1 = 1..N\n S1: A(t1) = sqrt(A(t1))\n do t2 = 1..t1 - 1\n  S2: A(t1) = \
        A(t1) / A(t2)\n enddo\nenddo\n")

let test_body_mismatch () =
  check_codes "operator changed" [ "V105" ]
    (against_cholesky
       "params N\ndo t1 = 1..N\n do t2 = 1..t1 - 1\n  S2: A(t1) = A(t1) * A(t2)\n enddo\n S1: \
        A(t1) = sqrt(A(t1))\nenddo\n")

let test_statement_set_mismatch () =
  check_codes "statement dropped" [ "V106" ]
    (against_cholesky
       "params N\ndo t1 = 1..N\n do t2 = 1..t1 - 1\n  S2: A(t1) = A(t1) / A(t2)\n \
        enddo\nenddo\n")

(* ---- lint codes ---- *)

let lint src = Verify.diags (Verify.run (parse src))

let test_lint_dead_loop () =
  check_codes "empty bounds" [ "V001" ]
    (lint "params N\ndo I = 1..N\n do J = I..I-1\n  S1: A(J) = 0\n enddo\nenddo\n")

let test_lint_unreachable_guard () =
  check_codes "refuted guard" [ "V002" ]
    (lint "params N\ndo I = 1..N\n if (I - N - 1 >= 0) then\n  S1: A(I) = 0\n endif\nenddo\n")

let test_lint_singular_loop () =
  check_codes "one-trip loop" [ "V003" ] (lint "params N\ndo I = 5..5\n S1: A(I) = 0\nenddo\n")

let test_lint_redundant_guard () =
  check_codes "implied guard" [ "V004" ]
    (lint "params N\ndo I = 1..N\n if (N - I >= 0) then\n  S1: A(I) = 0\n endif\nenddo\n")

let test_lint_scope_error () =
  (* the parser rejects unbound names, so build the AST directly *)
  let prog : Ast.program =
    {
      Ast.params = [ "N" ];
      nest =
        [
          Ast.simple_loop "I" (Ast.bterm_int 1) (Ast.bterm_var "N")
            [
              Ast.Stmt
                { Ast.label = "S1"; lhs = { Ast.array = "A"; index = [ Linexpr.var "Z" ] }; rhs = Ast.Econst 0. };
            ];
        ];
    }
  in
  check_codes "unbound variable" [ "V005" ] (Verify.diags (Verify.run prog))

let test_lint_unguarded_division () =
  let prog : Ast.program =
    {
      Ast.params = [ "N" ];
      nest =
        [
          Ast.simple_loop "I" (Ast.bterm_int 1) (Ast.bterm_var "N")
            [
              Ast.Let
                ( "v",
                  { Ast.num = Linexpr.var "I"; den = Mpz.of_int 2 },
                  [
                    Ast.Stmt
                      {
                        Ast.label = "S1";
                        lhs = { Ast.array = "A"; index = [ Linexpr.var "v" ] };
                        rhs = Ast.Econst 0.;
                      };
                  ] );
            ];
        ];
    }
  in
  check_codes "inexact let" [ "V006" ] (Verify.diags (Verify.run prog))

let test_lint_malformed () =
  let stmt label =
    Ast.Stmt { Ast.label; lhs = { Ast.array = "A"; index = [ Linexpr.var "I" ] }; rhs = Ast.Econst 0. }
  in
  let prog : Ast.program =
    {
      Ast.params = [ "N" ];
      nest = [ Ast.simple_loop "I" (Ast.bterm_int 1) (Ast.bterm_var "N") [ stmt "S1"; stmt "S1" ] ];
    }
  in
  check_codes "duplicate label" [ "V007" ] (Verify.diags (Verify.run prog))

(* ---- DOALL detection ---- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_doall_parallel () =
  let prog = parse "params N\ndo I = 1..N\n do J = 1..N\n  S1: B(I,J) = A(I,J) + 1\n enddo\nenddo\n" in
  let report = Verify.run prog in
  List.iter
    (fun (_, var, status) ->
      Alcotest.(check bool) (var ^ " parallel") true (status = Doall.Parallel))
    report.Verify.loops;
  let annotated = Verify.annotated prog report.Verify.loops in
  Alcotest.(check bool) "annotation printed" true (contains annotated "/* parallel */")

let test_doall_serial () =
  let prog = parse cholesky_gen in
  let report = Verify.run prog in
  List.iter
    (fun (_, var, status) ->
      match status with
      | Doall.Serial (_ :: _) -> ()
      | _ -> Alcotest.fail (var ^ " should be serial with witnesses"))
    report.Verify.loops

(* ---- budget degradation ---- *)

let test_budget_degrades () =
  let saved = Inl.Omega.get_default_budget () in
  Inl.Omega.set_default_budget (Budget.with_fm_work Budget.default 30);
  Fun.protect
    ~finally:(fun () -> Inl.Omega.set_default_budget saved)
    (fun () ->
      let ds = against_cholesky cholesky_gen in
      Alcotest.(check bool) "no errors, only degradation" false (Diag.has_errors ds);
      check_codes "degrades to V900" [ "V900" ] ds)

let () =
  Alcotest.run "verify"
    [
      ( "translation validation",
        [
          Alcotest.test_case "cholesky permutation verified" `Quick test_cholesky_verified;
          Alcotest.test_case "row-LU completion verified" `Quick test_lu_completion_verified;
          Alcotest.test_case "strided scaling verified" `Quick test_strided_verified;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "dropped iterations (V101)" `Quick test_dropped_iterations;
          Alcotest.test_case "extra iterations (V102)" `Quick test_extra_iterations;
          Alcotest.test_case "duplicated iterations (V103)" `Quick test_duplicated_iterations;
          Alcotest.test_case "dependence order (V104)" `Quick test_order_violation;
          Alcotest.test_case "body mismatch (V105)" `Quick test_body_mismatch;
          Alcotest.test_case "statement set (V106)" `Quick test_statement_set_mismatch;
        ] );
      ( "lint",
        [
          Alcotest.test_case "dead loop (V001)" `Quick test_lint_dead_loop;
          Alcotest.test_case "unreachable guard (V002)" `Quick test_lint_unreachable_guard;
          Alcotest.test_case "singular loop (V003)" `Quick test_lint_singular_loop;
          Alcotest.test_case "redundant guard (V004)" `Quick test_lint_redundant_guard;
          Alcotest.test_case "scope error (V005)" `Quick test_lint_scope_error;
          Alcotest.test_case "unguarded division (V006)" `Quick test_lint_unguarded_division;
          Alcotest.test_case "malformed (V007)" `Quick test_lint_malformed;
        ] );
      ( "doall",
        [
          Alcotest.test_case "parallel loops" `Quick test_doall_parallel;
          Alcotest.test_case "serial loops with witnesses" `Quick test_doall_serial;
        ] );
      ("budget", [ Alcotest.test_case "degrades to V900" `Quick test_budget_degrades ]);
    ]
