#!/bin/sh
# Acceptance drill for `inltool serve` (wired into `dune runtest` and
# exposed as `make serve-smoke`):
#
#   phase 1  a mixed batch of 56 requests — analyze/verify/optimize/fuzz
#            plus poisoned lines (malformed JSON, unknown methods,
#            missing fields, injected solver blowups, an injected hang
#            under a deadline) — through stdin.  Every well-formed
#            request must be answered (possibly degraded, with a typed
#            diagnostic), the daemon must drain cleanly with exit 1
#            (findings, no internal fault), and a snapshot must exist.
#
#   phase 2  a daemon checkpointing every request is SIGKILLed
#            mid-session — the crash-safety worst case.
#
#   phase 3  a restarted daemon must come up warm from the snapshot the
#            killed daemon left behind: restored entries > 0 and a
#            cache hit rate > 0 on the very first request, clean exit 0.
#
# Usage: serve_smoke.sh [path-to-inltool]
set -u

INLTOOL=${1:-./_build/default/bin/inltool.exe}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX") || exit 1
trap 'rm -rf "$DIR"' EXIT
STATE="$DIR/state"

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  exit 1
}

PROG='params N\ndo I = 1..N\n  S1: %s(I) = %s(I-1) + %s(I)\nenddo\n'
emit_analyze() { # $1 = id, $2 = array name, $3 = extra fields (or empty)
  p=$(printf "$PROG" "$2" "$2" "$2" | sed 's/$/XX/' | tr -d '\n' | sed 's/XX/\\n/g')
  printf '{"id":%s,"method":"analyze","program":"%s"%s}\n' "$1" "$p" "$3"
}

# ---- phase 1: 56-request mixed batch ----------------------------------
BATCH="$DIR/batch.jsonl"
: > "$BATCH"
i=1
while [ $i -le 20 ]; do # 20 analyze over 5 distinct arrays, some w/ stats
  emit_analyze $i "A$((i % 5))" ',"stats":true' >> "$BATCH"
  i=$((i + 1))
done
while [ $i -le 30 ]; do # 10 verify
  printf '{"id":%s,"method":"verify","program":"params N\\ndo I = 1..N\\n  S1: B(I) = B(I) + 1\\nenddo\\n"}\n' $i >> "$BATCH"
  i=$((i + 1))
done
while [ $i -le 35 ]; do # 5 small optimize
  printf '{"id":%s,"method":"optimize","program":"params N\\ndo I = 1..N\\n  do J = 1..N\\n    S1: C(I,J) = C(I,J) + 1\\n  enddo\\nenddo\\n","size":8,"finalists":1,"depth":1}\n' $i >> "$BATCH"
  i=$((i + 1))
done
while [ $i -le 37 ]; do # 2 tiny fuzz campaigns
  printf '{"id":%s,"method":"fuzz","cases":2,"seed":%s}\n' $i $i >> "$BATCH"
  i=$((i + 1))
done
while [ $i -le 42 ]; do # 5 malformed lines
  printf 'this is not json (%s)\n' $i >> "$BATCH"
  i=$((i + 1))
done
while [ $i -le 45 ]; do # 3 unknown methods
  printf '{"id":%s,"method":"frobnicate"}\n' $i >> "$BATCH"
  i=$((i + 1))
done
while [ $i -le 47 ]; do # 2 missing fields
  printf '{"id":%s,"method":"analyze"}\n' $i >> "$BATCH"
  i=$((i + 1))
done
while [ $i -le 49 ]; do # 2 injected solver blowups -> degraded answers
  emit_analyze $i "F$i" ',"faults":"every=1"' >> "$BATCH"
  i=$((i + 1))
done
# 1 injected hang under a deadline -> R706 after the reduced-budget retry
emit_analyze 50 "H50" ',"faults":"hang=0","timeout_ms":300' >> "$BATCH"
# 1 oversized request -> R705
{
  printf '{"id":51,"method":"ping","pad":"'
  n=0
  while [ $n -lt 3000 ]; do printf 'xxxxxxxxxx'; n=$((n + 10)); done
  printf '"}\n'
} >> "$BATCH"
printf '{"id":52,"method":"ping"}\n' >> "$BATCH"
printf '{"id":53,"method":"stats"}\n' >> "$BATCH"
printf '{"id":54,"method":"verify","program":"params N\\ndo I = 1..N\\n  S1: B(I) = B(I-1) + 1\\nenddo\\n","against":"params N\\ndo I = 1..N\\n  S1: B(I) = B(I-1) + 1\\nenddo\\n"}\n' >> "$BATCH"
printf '{"id":55,"method":"ping"}\n' >> "$BATCH"
printf '{"id":56,"method":"shutdown"}\n' >> "$BATCH"

requests=$(grep -c . "$BATCH")
[ "$requests" -eq 56 ] || fail "batch has $requests lines, wanted 56"

"$INLTOOL" serve --state "$STATE" --max-request-bytes 2000 \
  < "$BATCH" > "$DIR/p1.out" 2> "$DIR/p1.err"
code=$?
[ "$code" -eq 1 ] || fail "phase 1 exit $code, wanted 1 (findings, no internal fault); stderr: $(cat "$DIR/p1.err")"

responses=$(grep -c . "$DIR/p1.out")
[ "$responses" -eq "$requests" ] || fail "phase 1: $responses responses to $requests requests"
grep -q 'R707' "$DIR/p1.out" && fail "phase 1: unexpected worker panic"
grep -q '"code":"R706"' "$DIR/p1.out" || fail "phase 1: hung request did not end in R706"
grep -q '"code":"R705"' "$DIR/p1.out" || fail "phase 1: oversized request not rejected"
grep -q '"code":"R701"' "$DIR/p1.out" || fail "phase 1: malformed JSON not rejected"
grep -q '"degraded":true' "$DIR/p1.out" || fail "phase 1: no degraded answer under injected blowups"
ok=$(grep -c '"ok":true' "$DIR/p1.out")
[ "$ok" -ge 40 ] || fail "phase 1: only $ok ok answers"
[ -f "$STATE/cache.snap" ] || fail "phase 1: no snapshot after drain"

# ---- phase 2: SIGKILL mid-session --------------------------------------
mkfifo "$DIR/in"
"$INLTOOL" serve --state "$STATE" --checkpoint-every 1 \
  < "$DIR/in" > "$DIR/p2.out" 2> "$DIR/p2.err" &
pid=$!
exec 3> "$DIR/in"
i=1
while [ $i -le 5 ]; do
  emit_analyze $i "A$((i % 5))" '' >&3
  i=$((i + 1))
done
tries=0
while [ "$(grep -c . "$DIR/p2.out")" -lt 5 ]; do
  tries=$((tries + 1))
  [ $tries -gt 200 ] && fail "phase 2: daemon did not answer 5 requests"
  sleep 0.1
done
kill -9 "$pid" 2> /dev/null
wait "$pid" 2> /dev/null
exec 3>&-
[ "$(grep -c '"ok":true' "$DIR/p2.out")" -eq 5 ] || fail "phase 2: not all answers ok"

# ---- phase 3: restart warm from the killed daemon's snapshot -----------
{
  emit_analyze 1 "A1" ',"stats":true'
  printf '{"id":2,"method":"stats"}\n'
  printf '{"id":3,"method":"shutdown"}\n'
} | "$INLTOOL" serve --state "$STATE" > "$DIR/p3.out" 2> "$DIR/p3.err"
code=$?
[ "$code" -eq 0 ] || fail "phase 3 exit $code, wanted 0; stderr: $(cat "$DIR/p3.err")"
grep -q 'restored' "$DIR/p3.err" || fail "phase 3: nothing restored from snapshot"
hits=$(sed -n 's/.*"cache_hits":\([0-9]*\).*/\1/p' "$DIR/p3.out" | head -1)
[ -n "$hits" ] && [ "$hits" -gt 0 ] || fail "phase 3: cache cold after restart (hits=${hits:-none})"
grep -q '"warm":true' "$DIR/p3.out" || fail "phase 3: stats do not report a warm cache"

echo "serve-smoke: OK ($requests requests answered, killed + restarted warm: $hits hits on first request)"
