The corpus bulk runner's CLI surface.  Everything below is
deterministic: jobs=1, --no-timings (wall_ms pinned to 0), fixed
seeds, no state directory unless a drill needs one.

A two-kernel manifest over a pair of tiny nests.  The run prints one
line per kernel, writes the consolidated report, and exits 0 when
every kernel is clean:

  $ cat > tri.loop <<'EOF'
  > params N
  > do I = 1..N
  >   S1: X(I) = B(I) / L(I,I)
  >   do J = I+1..N
  >     S2: B(J) = B(J) - L(J,I) * X(I)
  >   enddo
  > enddo
  > EOF
  $ cat > dp.loop <<'EOF'
  > params N
  > do I = 1..N
  >   S1: C(I) = B(I)
  >   do J = 1..I-1
  >     S2: C(I) = C(I) + C(J) * W(I,J)
  >   enddo
  > enddo
  > EOF
  $ cat > good.manifest <<'EOF'
  > kernel tri tri.loop
  > kernel dp  dp.loop
  > EOF
  $ inltool corpus good.manifest --no-timings -o B.json
  corpus: tri: clean winner="complete row=[0,0,0,1]" misses=13->13
  corpus: dp: clean winner="identity" misses=7->7
  corpus: 2 kernels: 2 clean, 0 degraded, 0 quarantined, 0 failed
  wrote B.json
  $ cat B.json
  {
    "schema": "inl-corpus-bench-v1",
    "manifest": "a0cad3094752878b",
    "jobs": 1,
    "timings": false,
    "kernels": [
      {"name": "tri", "status": "clean", "signature": "", "winner": "complete row=[0,0,0,1]", "source_misses": 13, "winner_misses": 13, "accesses": 3480, "candidates": 245, "delta_inherit_rate": 0.197, "legality_memo_hits": 0, "mat_memo_hits": 225, "retried": false, "degradations": "", "wall_ms": 0, "doall": 0, "exec": ""},
      {"name": "dp", "status": "clean", "signature": "", "winner": "identity", "source_misses": 7, "winner_misses": 7, "accesses": 3432, "candidates": 261, "delta_inherit_rate": 0.248, "legality_memo_hits": 0, "mat_memo_hits": 241, "retried": false, "degradations": "", "wall_ms": 0, "doall": 0, "exec": ""}
    ],
    "totals": {"kernels": 2, "clean": 2, "degraded": 0, "quarantined": 0, "failed": 0, "wall_ms": 0}
  }

The guard: a fresh untimed run against the committed report.  In
agreement it passes with exit 0:

  $ inltool corpus good.manifest --guard B.json
  corpus: tri: clean winner="complete row=[0,0,0,1]" misses=13->13
  corpus: dp: clean winner="identity" misses=7->7
  corpus: 2 kernels: 2 clean, 0 degraded, 0 quarantined, 0 failed
  corpus-guard PASS: 2 kernels match the committed report

A drifted baseline — here a tampered miss count — is a typed K709
failure naming the kernel, the field and both values:

  $ sed 's/"winner_misses": 13/"winner_misses": 99/' B.json > drifted.json
  $ inltool corpus good.manifest --guard drifted.json
  corpus: tri: clean winner="complete row=[0,0,0,1]" misses=13->13
  corpus: dp: clean winner="identity" misses=7->7
  corpus: 2 kernels: 2 clean, 0 degraded, 0 quarantined, 0 failed
  error[K709] corpus: kernel "tri": winner_misses drifted: committed 99, got 13
  [1]

A `run=` key executes the winner for real through the exec runtime
(threads= worker domains): the recorded label pins the execution plan
and the differential verdict — never wall time — so it is stable under
the drift guard:

  $ cat > jac.loop <<'EOF'
  > params T
  > params N
  > do K = 1..T
  >   do I = 2..N-1
  >     S1: A(K,I) = A(K-1,I-1) + A(K-1,I) + A(K-1,I+1)
  >   enddo
  > enddo
  > EOF
  $ cat > exec.manifest <<'EOF'
  > kernel jac jac.loop run=6 threads=2
  > EOF
  $ inltool corpus exec.manifest --no-timings -o E.json
  corpus: jac: clean winner="identity" misses=300->300 exec=ok:doall=t2
  corpus: 1 kernels: 1 clean, 0 degraded, 0 quarantined, 0 failed
  wrote E.json
  $ grep -o '"doall": [0-9-]*, "exec": "[^"]*"' E.json
  "doall": 1, "exec": "ok:doall=t2"

A malformed manifest is rejected line by line with typed K701
diagnostics; nothing runs:

  $ cat > bad.manifest <<'EOF'
  > kernel tri tri.loop colour=blue
  > kremel dp dp.loop
  > kernel x
  > EOF
  $ inltool corpus bad.manifest
  error[K701] corpus: manifest line 1: unknown key "colour"
  error[K701] corpus: manifest line 2: unknown directive "kremel" (expected "kernel")
  error[K701] corpus: manifest line 3: expected: kernel <name> <path> [key=value ...]
  [1]

A manifest naming a kernel file that does not exist records a failed
kernel (the batch is not aborted) and exits 1:

  $ cat > ghost.manifest <<'EOF'
  > kernel tri tri.loop
  > kernel ghost no-such-file.loop
  > EOF
  $ inltool corpus ghost.manifest --no-timings -o G.json
  corpus: tri: clean winner="complete row=[0,0,0,1]" misses=13->13
  corpus: ghost: failed: cannot read kernel: ./no-such-file.loop: No such file or directory
  corpus: 2 kernels: 1 clean, 0 degraded, 0 quarantined, 1 failed
  wrote G.json
  [1]
