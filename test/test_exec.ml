(* The execution runtime against its contract:

   - plan choice: the outermost provably-DOALL loop wins; kernels with
     no parallel dimension degrade to a typed X901 sequential plan;
   - slice execution: running a loop's iteration range as a union of
     sub-slices reproduces the full interpreter run exactly (the
     identity the chunked fan-out relies on);
   - the differential property: for fuzz-generated programs and jobs in
     {1, 2, 4}, parallel execution under the chosen plan produces a
     store byte-identical to the sequential interpreter's — and when it
     cannot (no DOALL dimension), the sequential fallback does;
   - benchmark reports: the differential gate ran, labels are stable
     and wall-time-free, degradations carry their codes. *)

module Ast = Inl_ir.Ast
module Interp = Inl_interp.Interp
module Exec = Inl_exec.Exec
module Doall = Inl_verify.Doall
module Diag = Inl_diag.Diag
module Gen = Inl_fuzz.Gen
module Px = Inl_kernels.Paper_examples

let parse src = (Inl.analyze_source src).Inl.program

let seidel1d =
  "params T\n\
   params N\n\
   do K = 1..T\n\
  \  do I = 2..N-1\n\
  \    S1: A(I) = A(I-1) + A(I) + A(I+1)\n\
  \  enddo\n\
   enddo\n"

(* ---- plan choice ---- *)

let test_choose_outermost () =
  let prog = parse Px.cholesky_kji in
  match Exec.choose (Exec.analyze prog) with
  | Exec.Par { var; depth; _ } ->
      (* K carries the factorization order; the update loops under it are
         all DOALL, and the DFS-first of the outermost ones is I *)
      Alcotest.(check string) "outermost doall loop" "I" var;
      Alcotest.(check int) "it is one level down" 1 depth
  | Exec.Seq _ -> Alcotest.fail "cholesky has DOALL dimensions"

let test_choose_degrades_without_doall () =
  let prog = parse seidel1d in
  match Exec.choose (Exec.analyze prog) with
  | Exec.Par { var; _ } -> Alcotest.failf "seidel1d has no DOALL dimension, chose %s" var
  | Exec.Seq None -> Alcotest.fail "degradation must be typed"
  | Exec.Seq (Some d) ->
      Alcotest.(check string) "typed X901" "X901" d.Diag.code;
      Alcotest.(check bool) "warning severity" true (d.Diag.severity = Diag.Warning)

let test_choose_straight_line () =
  let prog = parse "params N\nS1: A(1) = 2\n" in
  match Exec.choose (Exec.analyze prog) with
  | Exec.Seq None -> ()
  | Exec.Seq (Some d) -> Alcotest.failf "no loops is not a degradation: %s" (Diag.to_string d)
  | Exec.Par _ -> Alcotest.fail "nothing to parallelize"

(* ---- slice execution: union of slices = full run ---- *)

let test_run_slice_union () =
  let prog = parse Px.cholesky_kji in
  let params = [ ("N", 7) ] in
  let l =
    match prog.Ast.nest with
    | [ Ast.Loop l ] -> l
    | _ -> Alcotest.fail "expected a single top-level loop"
  in
  let values = Interp.loop_values ~params ~bindings:[] l in
  Alcotest.(check (list int)) "K ranges over 1..N" [ 1; 2; 3; 4; 5; 6; 7 ] values;
  let full = Interp.run prog ~params in
  List.iter
    (fun cut ->
      let store : Interp.store = Hashtbl.create 64 in
      let before = List.filteri (fun i _ -> i < cut) values in
      let after = List.filteri (fun i _ -> i >= cut) values in
      Interp.run_slice ~store ~bindings:[] ~values:before l ~params;
      Interp.run_slice ~store ~bindings:[] ~values:after l ~params;
      match Interp.store_diff full store with
      | Ok () -> ()
      | Error d -> Alcotest.failf "union of slices (cut %d) diverged: %s" cut d)
    [ 0; 1; 3; 7 ]

(* ---- parallel execution matches the interpreter ---- *)

let exec_matches_seq prog ~params ~jobs =
  let plan = Exec.choose (Exec.analyze prog) in
  let seq = Interp.run ~max_steps:500_000 prog ~params in
  let par = Exec.execute ~jobs ~max_steps:500_000 ~plan prog ~params in
  match Interp.store_diff seq par with
  | Ok () -> true
  | Error d ->
      QCheck2.Test.fail_reportf "jobs=%d: parallel store diverged: %s" jobs d

let differential_prop (seed, index) =
  let prog, _ = Gen.case ~seed ~index in
  let params = List.map (fun p -> (p, 5)) prog.Ast.params in
  List.for_all (fun jobs -> exec_matches_seq prog ~params ~jobs) [ 1; 2; 4 ]

let differential_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parallel execution matches the sequential interpreter" ~count:30
       QCheck2.Gen.(pair (int_bound 4) (int_bound 29))
       differential_prop)

let test_wavefront_executes_parallel () =
  (* seidel1d has no DOALL dimension as written; skewing time into
     space by 2 and interchanging makes the inner loop parallel — the
     compound move lib/search enumerates, executed for real here *)
  let ctx = Inl.analyze_source seidel1d in
  let tf =
    { Inl_fuzz.Tf.steps = [ ("skew", "I,K,2"); ("interchange", "K,I") ]; partial = []; edits = [] }
  in
  let mat =
    match Inl_fuzz.Tf.materialize ctx tf with
    | Ok m -> m
    | Error m -> Alcotest.failf "wavefront does not materialize: %s" m
  in
  let prog = Inl.transform_exn ctx mat in
  let params = [ ("T", 6); ("N", 9) ] in
  (match Exec.choose (Exec.analyze prog) with
  | Exec.Par { depth; _ } -> Alcotest.(check int) "inner loop parallel" 1 depth
  | Exec.Seq _ -> Alcotest.fail "wavefront seidel1d must gain a DOALL dimension");
  List.iter
    (fun jobs -> ignore (exec_matches_seq prog ~params ~jobs))
    [ 2; 4 ]

(* ---- benchmark reports ---- *)

let test_benchmark_report () =
  let prog = parse Px.cholesky_kji in
  match Exec.benchmark ~jobs:2 ~repeat:1 prog ~params:[ ("N", 6) ] with
  | Error ds -> Alcotest.failf "benchmark refused: %s" (Diag.list_to_string ds)
  | Ok r ->
      Alcotest.(check int) "loops counted" 4 r.Exec.loops;
      Alcotest.(check int) "three doall dimensions" 3 (Exec.doall_count r.Exec.doall);
      Alcotest.(check string) "stable label" "ok:doall=I" (Exec.label (Ok r));
      Alcotest.(check bool) "store non-empty" true (r.Exec.cells > 0);
      Alcotest.(check bool) "timings measured" true (r.Exec.seq_ms >= 0. && r.Exec.par_ms >= 0.);
      let lines = Exec.render ~timings:false r in
      Alcotest.(check int) "render shape" 5 (List.length lines);
      Alcotest.(check bool) "masked render is wall-time-free" true
        (List.for_all (fun l -> not (String.contains l '.')) lines)

let test_benchmark_degrades () =
  let prog = parse seidel1d in
  match Exec.benchmark ~jobs:2 ~repeat:1 prog ~params:[ ("T", 4); ("N", 8) ] with
  | Error ds -> Alcotest.failf "degradation is not refusal: %s" (Diag.list_to_string ds)
  | Ok r ->
      Alcotest.(check string) "degraded label" "degraded:X901" (Exec.label (Ok r));
      Alcotest.(check bool) "X901 note present" true
        (List.exists (fun (d : Diag.t) -> d.Diag.code = "X901") r.Exec.notes);
      Alcotest.(check int) "exit code 2: degraded, answered" 2 (Diag.exit_code r.Exec.notes)

let test_benchmark_step_limit () =
  let prog = parse Px.cholesky_kji in
  match Exec.benchmark ~jobs:2 ~repeat:1 ~max_steps:3 prog ~params:[ ("N", 6) ] with
  | Ok _ -> Alcotest.fail "3 steps cannot finish cholesky"
  | Error ds ->
      Alcotest.(check (list string)) "typed X803" [ "X803" ]
        (List.map (fun (d : Diag.t) -> d.Diag.code) ds)

let () =
  Alcotest.run "exec"
    [
      ( "plan",
        [
          Alcotest.test_case "outermost doall loop wins" `Quick test_choose_outermost;
          Alcotest.test_case "no doall -> typed sequential" `Quick
            test_choose_degrades_without_doall;
          Alcotest.test_case "straight-line -> silent sequential" `Quick
            test_choose_straight_line;
        ] );
      ( "slices",
        [ Alcotest.test_case "union of slices = full run" `Quick test_run_slice_union ] );
      ( "differential",
        [
          differential_property;
          Alcotest.test_case "wavefront seidel1d runs parallel" `Quick
            test_wavefront_executes_parallel;
        ] );
      ( "benchmark",
        [
          Alcotest.test_case "report fields and label" `Quick test_benchmark_report;
          Alcotest.test_case "degradation is typed, not fatal" `Quick test_benchmark_degrades;
          Alcotest.test_case "step limit is typed" `Quick test_benchmark_step_limit;
        ] );
    ]
