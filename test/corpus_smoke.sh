#!/bin/sh
# Acceptance drill for `inltool corpus` (wired into `dune runtest` and
# exposed as `make corpus-smoke`):
#
#   phase 1  a reference run over a 4-kernel mini-manifest — two clean
#            kernels with pinned winners, one heavier LU nest, and one
#            poisoned kernel (injected hang under a tight deadline).
#            The poisoned kernel must be quarantined as a replayable
#            finding, the healthy kernels must complete, exit 1.
#
#   phase 2  a fresh run is SIGINTed mid-batch: exit 130, checkpoint
#            flushed; rerunning resumes, skips the recorded kernels and
#            produces a report byte-identical to phase 1's.
#
#   phase 3  a fresh run is SIGKILLed mid-batch — the crash-safety
#            worst case; rerunning resumes from the checkpoint and the
#            report is again byte-identical to phase 1's.
#
# All runs use --no-timings (wall_ms pinned to 0), the same seed and
# the same --jobs, so "byte-identical" is exact: cmp(1), not a fuzzy
# field comparison.
#
# Usage: corpus_smoke.sh [path-to-inltool]
set -u

INLTOOL=${1:-./_build/default/bin/inltool.exe}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/corpus-smoke.XXXXXX") || exit 1
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "corpus-smoke: FAIL: $*" >&2
  exit 1
}

# ---- the mini-corpus ---------------------------------------------------
cat > "$DIR/trisolve.loop" << 'EOF'
params N
do I = 1..N
  S1: X(I) = B(I) / L(I,I)
  do J = I+1..N
    S2: B(J) = B(J) - L(J,I) * X(I)
  enddo
enddo
EOF

cat > "$DIR/lu.loop" << 'EOF'
params N
do K = 1..N
  do I = K+1..N
    S1: A(I,K) = A(I,K) / A(K,K)
    do J = K+1..N
      S2: A(I,J) = A(I,J) - A(I,K) * A(K,J)
    enddo
  enddo
enddo
EOF

cat > "$DIR/dp.loop" << 'EOF'
params N
do I = 1..N
  S1: C(I) = B(I)
  do J = 1..I-1
    S2: C(I) = C(I) + C(J) * W(I,J)
  enddo
enddo
EOF

cat > "$DIR/mini.manifest" << 'EOF'
kernel trisolve trisolve.loop
kernel lu       lu.loop
kernel dp       dp.loop
kernel poisoned lu.loop  faults=hang=3 timeout_ms=300
EOF

run_corpus() { # $1 = state dir, $2 = output json, then extra args
  state=$1
  out=$2
  shift 2
  "$INLTOOL" corpus "$DIR/mini.manifest" --state "$state" --no-timings -o "$out" "$@"
}

# Backgrounded variant: exec so $! is inltool itself, not a subshell —
# the drills signal the pid directly.
run_corpus_bg() { # $1 = state dir, $2 = output json, $3 = stdout, $4 = stderr
  (exec "$INLTOOL" corpus "$DIR/mini.manifest" --state "$1" --no-timings -o "$2" > "$3" 2> "$4") &
}

# ---- phase 1: reference run with a poisoned kernel ---------------------
run_corpus "$DIR/s1" "$DIR/B1.json" > "$DIR/p1.out" 2> "$DIR/p1.err"
code=$?
[ "$code" -eq 1 ] || fail "phase 1 exit $code, wanted 1 (quarantined kernel); stderr: $(cat "$DIR/p1.err")"
[ -f "$DIR/B1.json" ] || fail "phase 1: no BENCH_corpus.json"

grep -q '"name": "trisolve", "status": "clean", .*"winner": "complete row=\[0,0,0,1\]"' "$DIR/B1.json" \
  || fail "phase 1: trisolve winner not the pinned completion"
grep -q '"name": "lu", "status": "clean", .*"winner": "complete row=\[0,1,0,0,0\]"' "$DIR/B1.json" \
  || fail "phase 1: lu winner not the pinned completion"
grep -q '"name": "poisoned", "status": "quarantined", "signature": "timeout"' "$DIR/B1.json" \
  || fail "phase 1: poisoned kernel not quarantined as a timeout"
grep -q '"quarantined": 1, "failed": 0' "$DIR/B1.json" || fail "phase 1: totals wrong"
grep -q 'K706' "$DIR/p1.out" || fail "phase 1: no K706 quarantine tag on stdout"
for f in finding-poisoned-timeout.inl finding-poisoned-timeout.tf finding-poisoned-timeout-detail.txt; do
  [ -f "$DIR/s1/$f" ] || fail "phase 1: quarantine artifact $f missing"
done
grep -q 'replay:' "$DIR/s1/finding-poisoned-timeout-detail.txt" \
  || fail "phase 1: quarantined finding is not replayable"
[ -f "$DIR/s1/checkpoint" ] || fail "phase 1: no checkpoint"

# ---- phase 2: SIGINT mid-batch, then resume ----------------------------
run_corpus_bg "$DIR/s2" "$DIR/B2.json" "$DIR/p2.out" "$DIR/p2.err"
pid=$!
tries=0
while [ "$(grep -c '^corpus: trisolve:' "$DIR/p2.out" 2> /dev/null)" -lt 1 ]; do
  tries=$((tries + 1))
  [ $tries -gt 200 ] && fail "phase 2: first kernel never completed"
  sleep 0.01
done
kill -INT "$pid" 2> /dev/null
wait "$pid"
code=$?
if [ "$code" -ne 130 ]; then
  # The batch may legitimately have finished before the signal landed;
  # that voids the drill, it does not fail it — but it must not happen
  # on a manifest where three kernels follow the first.
  fail "phase 2: exit $code after SIGINT, wanted 130; stdout: $(cat "$DIR/p2.out")"
fi
grep -q 'interrupted after' "$DIR/p2.out" || fail "phase 2: no interruption notice"
[ -f "$DIR/s2/checkpoint" ] || fail "phase 2: no checkpoint after SIGINT"
[ -f "$DIR/B2.json" ] && fail "phase 2: interrupted run wrote a report"

run_corpus "$DIR/s2" "$DIR/B2.json" > "$DIR/p2r.out" 2> "$DIR/p2r.err"
code=$?
[ "$code" -eq 1 ] || fail "phase 2 resume exit $code, wanted 1; stderr: $(cat "$DIR/p2r.err")"
grep -q 'corpus: resuming;' "$DIR/p2r.out" || fail "phase 2: resume did not announce restored records"
cmp -s "$DIR/B1.json" "$DIR/B2.json" || fail "phase 2: resumed report differs from the reference"

# ---- phase 3: SIGKILL mid-batch, then resume ---------------------------
run_corpus_bg "$DIR/s3" "$DIR/B3.json" "$DIR/p3.out" "$DIR/p3.err"
pid=$!
tries=0
while [ "$(grep -c '^corpus: trisolve:' "$DIR/p3.out" 2> /dev/null)" -lt 1 ]; do
  tries=$((tries + 1))
  [ $tries -gt 200 ] && fail "phase 3: first kernel never completed"
  sleep 0.01
done
kill -9 "$pid" 2> /dev/null
wait "$pid" 2> /dev/null
[ -f "$DIR/s3/checkpoint" ] || fail "phase 3: no checkpoint survived SIGKILL"

run_corpus "$DIR/s3" "$DIR/B3.json" > "$DIR/p3r.out" 2> "$DIR/p3r.err"
code=$?
[ "$code" -eq 1 ] || fail "phase 3 resume exit $code, wanted 1; stderr: $(cat "$DIR/p3r.err")"
resumed=$(sed -n 's/^corpus: resuming; \([0-9]*\) of .*/\1/p' "$DIR/p3r.out")
[ -n "$resumed" ] && [ "$resumed" -ge 1 ] || fail "phase 3: nothing restored from the checkpoint"
cmp -s "$DIR/B1.json" "$DIR/B3.json" || fail "phase 3: post-SIGKILL report differs from the reference"

echo "corpus-smoke: OK (poisoned kernel quarantined; SIGINT + SIGKILL drills byte-identical, $resumed record(s) restored after SIGKILL)"
