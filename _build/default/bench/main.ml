(* Benchmark and experiment harness: one section per experiment in the
   DESIGN.md / EXPERIMENTS.md index.  Regenerates every worked example,
   inline matrix, and quantitative claim of the paper (E3-E12, E14), plus
   the performance experiments its introduction appeals to (E13) and the
   framework-cost / ablation measurements (E15).

   Wall-clock micro-benchmarks use Bechamel (OLS estimate of ns/run on the
   monotonic clock); everything else is printed as tables of exact
   counts. *)

module Mat = Inl_linalg.Mat
module Vec = Inl_linalg.Vec
module Interval = Inl_presburger.Interval
module Layout = Inl_instance.Layout
module Dep = Inl_depend.Dep
module Analysis = Inl_depend.Analysis
module Interp = Inl_interp.Interp
module Cachesim = Inl_cachesim.Cachesim
module Cholesky = Inl_kernels.Cholesky
module Px = Inl_kernels.Paper_examples
module Baseline = Inl_baseline.Baseline
open Bechamel
open Toolkit

(* ---- bechamel helper: ns/run OLS estimate for one thunk ---- *)

let measure_ns ?(quota = 0.5) name (f : unit -> unit) : float =
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc -> match Analyze.OLS.estimates v with Some [ est ] -> est | _ -> acc)
    results Float.nan

let ns_pretty ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let section id title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "==================================================================\n%!"

let verify_equiv ctx prog sizes =
  List.for_all
    (fun n ->
      match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
      | Ok () -> true
      | Error _ -> false)
    sizes

(* ---- E3: dependence matrices (Section 3 / Section 6) ---- *)

let e3 () =
  section "E3" "Dependence matrices (paper Section 3 and Section 6)";
  let simple = Inl.analyze_source Px.simplified_cholesky in
  Printf.printf "simplified Cholesky (paper: flow S1->S2 = [0,1,-1,+]'):\n";
  Format.printf "%a@." Dep.pp_matrix simple.Inl.deps;
  let full = Inl.analyze_source Px.cholesky in
  Printf.printf "\nfull Cholesky (%d dependences over 7 positions):\n" (List.length full.Inl.deps);
  Format.printf "%a@." Dep.pp_matrix full.Inl.deps;
  let t =
    measure_ns "deps/full-cholesky" (fun () -> ignore (Analysis.dependences full.Inl.layout))
  in
  Printf.printf "dependence analysis cost (full Cholesky): %s\n" (ns_pretty t)

(* ---- E4-E7: the Section 4 matrices and their action ---- *)

let e4_e7 () =
  section "E4-E7" "Transformation matrices of Section 4 and their action";
  let ctx = Inl.analyze_source Px.simplified_cholesky in
  let layout = ctx.Inl.layout in
  let show name m =
    Format.printf "%s:@.%a@." name Mat.pp m;
    let s1 = Layout.instance_vector layout "S1" [| 2 |] in
    let s2 = Layout.instance_vector layout "S2" [| 2; 3 |] in
    Format.printf "  S1@I=2: %a -> %a@." Vec.pp s1 Vec.pp (Mat.apply m s1);
    Format.printf "  S2@(2,3): %a -> %a@.@." Vec.pp s2 Vec.pp (Mat.apply m s2)
  in
  show "interchange I<->J (4.1)" (Inl.Tmat.interchange layout "I" "J");
  show "skew I by -J (4.1)" (Inl.Tmat.skew layout ~target:"I" ~source:"J" ~factor:(-1));
  show "reorder S1 and the J loop (4.2)" (Inl.Tmat.reorder layout ~parent:[ 0 ] ~perm:[ 1; 0 ]);
  show "align S1 w.r.t. I by +1 (4.3)" (Inl.Tmat.align layout ~stmt:"S1" ~loop:"I" ~amount:1);
  let mdist, dist_prog = Inl.Tmat.distribute layout ~at:1 in
  Format.printf "distribution (4.2, non-square %dx%d):@.%a@.@." (Mat.rows mdist) (Mat.cols mdist)
    Mat.pp mdist;
  let dist_layout = Layout.of_program dist_prog in
  let mjam, _ = Inl.Tmat.jam dist_layout in
  Format.printf "jamming (4.2, non-square %dx%d):@.%a@." (Mat.rows mjam) (Mat.cols mjam) Mat.pp mjam;
  let rt = Mat.mul mjam mdist in
  let s2 = Layout.instance_vector layout "S2" [| 2; 3 |] in
  Format.printf "jam . distribute on S2@(2,3): %a (identity on instance vectors)@." Vec.pp
    (Mat.apply rt s2)

(* ---- E9/E10: Section 5.4-5.5 augmentation and code generation ---- *)

let e9_e10 () =
  section "E9-E10" "Per-statement transformations, augmentation, code generation (5.4-5.5)";
  let ctx = Inl.analyze_source Px.augmentation_example in
  let m = Mat.of_int_lists Px.section55_matrix_rows in
  (match Inl.check ctx m with
  | Inl.Legality.Illegal msg -> Printf.printf "unexpected: %s\n" msg
  | Inl.Legality.Legal { structure; unsatisfied } ->
      List.iter
        (fun label ->
          let p = Inl.Perstmt.of_structure structure label in
          Format.printf "M_%s =@ %a (rank %d; paper: [0] and [[1,-1],[0,1]])@." label Mat.pp
            p.Inl.Perstmt.matrix (Inl.Perstmt.rank p))
        [ "S1"; "S2" ];
      Printf.printf "unsatisfied self-dependences (to be carried by extra loops): %d\n"
        (List.length unsatisfied));
  let raw = Inl.transform_exn ctx ~simplify:false m in
  let simp = Inl.transform_exn ctx m in
  Printf.printf "\ngenerated (simplified):\n%s\n" (Inl.Pp.program_to_string simp);
  Printf.printf "\nequivalent to source for N in 1..12: %b\n"
    (verify_equiv ctx raw (List.init 12 (fun i -> i + 1))
    && verify_equiv ctx simp (List.init 12 (fun i -> i + 1)));
  let t = measure_ns "codegen/5.5" (fun () -> ignore (Inl.transform_exn ctx m)) in
  Printf.printf "code generation cost: %s\n" (ns_pretty t)

(* ---- E11: the six Cholesky loop permutations ---- *)

let e11 () =
  section "E11" "Six loop permutations of Cholesky (claim in Section 5.1)";
  let ctx = Inl.analyze_source Px.cholesky in
  let loop_pos v = Inl.Tmat.loop_position ctx.Inl.layout v in
  let kjl = [ loop_pos "K"; loop_pos "J"; loop_pos "L" ] in
  let names = [| "K"; "J"; "L" |] in
  let perms = [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 0; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ]; [ 2; 1; 0 ] ] in
  let find sigma =
    let sources = List.map (fun i -> List.nth kjl i) sigma in
    List.find_map
      (fun r ->
        match Inl.Blockstruct.infer ctx.Inl.layout r with
        | Error _ -> None
        | Ok st ->
            let o2n = st.Inl.Blockstruct.old_to_new in
            let m0 = Mat.copy r in
            List.iter2
              (fun v src -> m0.(o2n.(loop_pos v)) <- Vec.unit 7 src)
              [ "K"; "J"; "L" ] sources;
            List.find_map
              (fun c ->
                let m = Mat.copy m0 in
                m.(o2n.(loop_pos "I")) <- Vec.unit 7 c;
                if
                  Inl_linalg.Gauss.is_nonsingular m
                  && match Inl.check ctx m with Inl.Legality.Legal _ -> true | _ -> false
                then Some m
                else None)
              [ loop_pos "I"; loop_pos "K"; loop_pos "J"; loop_pos "L" ])
      (Inl.Completion.reorder_matrices ctx.Inl.layout)
  in
  Printf.printf "%-14s %-14s %-10s\n" "S3 loop order" "certifiable?" "verified";
  List.iter
    (fun sigma ->
      let order = String.concat "" (List.map (fun i -> names.(i)) sigma) in
      match find sigma with
      | Some m ->
          let ok = verify_equiv ctx (Inl.transform_exn ctx m) [ 1; 3; 5 ] in
          Printf.printf "%-14s %-14s %-10b\n" order "yes" ok
      | None -> Printf.printf "%-14s %-14s %-10s\n" order "no (J outer)" "-")
    perms;
  Printf.printf
    "\n(The J-outer forms need the combined outer row J+I-K, whose image under\n\
     the paper's distance/direction abstraction is '*'; see EXPERIMENTS.md.)\n";
  let kernel = Inl.analyze_source Px.cholesky_update_kernel in
  let lp v = Inl.Tmat.loop_position kernel.Inl.layout v in
  let all_legal =
    List.for_all
      (fun sigma ->
        let srcs = List.map (fun i -> List.nth [ lp "K"; lp "J"; lp "L" ] i) sigma in
        let m = Mat.make 3 3 in
        List.iteri
          (fun row src -> m.(List.nth [ lp "K"; lp "J"; lp "L" ] row) <- Vec.unit 3 src)
          srcs;
        match Inl.check kernel m with Inl.Legality.Legal _ -> true | _ -> false)
      perms
  in
  Printf.printf "update kernel alone (perfect nest): all six permutations legal: %b\n" all_legal

(* ---- E12: completion to left-looking Cholesky (Section 6) ---- *)

let e12 () =
  section "E12" "Completion procedure on Cholesky (Section 6, Fig 8)";
  let ctx = Inl.analyze_source Px.cholesky in
  (match Inl.check ctx (Mat.of_int_lists Px.paper_c_printed_rows) with
  | Inl.Legality.Illegal msg -> Printf.printf "paper's printed C: ILLEGAL\n  (%s)\n" msg
  | Inl.Legality.Legal _ -> Printf.printf "paper's printed C: legal (unexpected)\n");
  (match Inl.check ctx (Mat.of_int_lists Px.corrected_c_rows) with
  | Inl.Legality.Legal { unsatisfied; _ } ->
      Printf.printf "corrected C: legal, %d unsatisfied (paper: no augmentation necessary)\n"
        (List.length unsatisfied)
  | Inl.Legality.Illegal msg -> Printf.printf "corrected C: ILLEGAL (%s)\n" msg);
  let prog = Inl.transform_exn ctx (Mat.of_int_lists Px.corrected_c_rows) in
  Printf.printf "\nderived left-looking code:\n%s\n" (Inl.Pp.program_to_string prog);
  Printf.printf "equivalent for N in 1..8: %b\n"
    (verify_equiv ctx prog (List.init 8 (fun i -> i + 1)));
  let partial = [ Vec.of_int_list [ 0; 0; 0; 0; 0; 1; 0 ] ] in
  let t =
    measure_ns ~quota:1.0 "completion/cholesky" (fun () -> ignore (Inl.complete ctx ~partial))
  in
  Printf.printf "completion search cost (first row pinned): %s\n" (ns_pretty t)

(* ---- E13: the six Cholesky variants — cache misses and wall clock ---- *)

let e13 () =
  section "E13" "Six Cholesky orders: same result, different performance (Section 1)";
  let cfg = Cachesim.set_associative ~capacity_bytes:8192 ~line_bytes:64 ~assoc:2 in
  let base = Inl.Parser.parse_exn Px.cholesky_kji in
  List.iter
    (fun (name, src) ->
      let prog = Inl.Parser.parse_exn src in
      match Interp.equivalent base prog ~params:[ ("N", 10) ] with
      | Ok () -> ()
      | Error d -> Printf.printf "  %s NOT EQUIVALENT: %s\n" name d)
    Px.cholesky_ir_variants;
  Printf.printf "cache-simulated miss rates (IR traces; 8KiB 2-way 64B lines):\n";
  Printf.printf "  %-5s" "order";
  let sizes = [ 24; 32; 48; 64 ] in
  List.iter (fun n -> Printf.printf "  N=%-3d miss%%" n) sizes;
  Printf.printf "\n";
  List.iter
    (fun (name, src) ->
      let prog = Inl.Parser.parse_exn src in
      Printf.printf "  %-5s" name;
      List.iter
        (fun n ->
          let s = Cachesim.simulate_program cfg [ ("A", [ n; n ]) ] prog ~params:[ ("N", n) ] in
          Printf.printf "  %9.2f%%" (100.0 *. Cachesim.miss_rate s))
        sizes;
      Printf.printf "\n")
    Px.cholesky_ir_variants;
  let n2 = 128 in
  Printf.printf "\nnative kernels, Bechamel OLS ns/run at N=%d:\n" n2;
  let a0 = Cholesky.random_spd n2 in
  List.iter
    (fun (v : Cholesky.variant) ->
      let t =
        measure_ns ~quota:1.0
          ("cholesky/" ^ v.name)
          (fun () ->
            let a = Cholesky.copy_matrix a0 in
            v.run a)
      in
      Printf.printf "  %-5s %-32s %12s\n" v.name v.family (ns_pretty t))
    Cholesky.variants;
  (* the same story on LU *)
  let lu0 = Inl_kernels.Lu.diagonally_dominant n2 in
  Printf.printf "\nnative LU at N=%d:\n" n2;
  List.iter
    (fun (name, run) ->
      let t =
        measure_ns ~quota:1.0 ("lu/" ^ name) (fun () ->
            let a = Array.map Array.copy lu0 in
            run a)
      in
      Printf.printf "  %-5s %12s\n" name (ns_pretty t))
    [ ("kij", Inl_kernels.Lu.kij); ("jki", Inl_kernels.Lu.jki) ];
  let nlu = 40 in
  let lu_ir = Inl.Parser.parse_exn Px.lu in
  let s = Cachesim.simulate_program cfg [ ("A", [ nlu; nlu ]) ] lu_ir ~params:[ ("N", nlu) ] in
  Printf.printf "\nLU (right-looking IR) miss rate at N=%d: %.2f%%\n" nlu
    (100.0 *. Cachesim.miss_rate s)

(* ---- E14: what the baselines can and cannot do ---- *)

let e14 () =
  section "E14" "Baselines: perfect-nest framework, distribution, sinking (Section 1)";
  let simple = Inl.analyze_source Px.simplified_cholesky in
  Printf.printf "perfect-nest-only framework on simplified Cholesky: %s\n"
    (match Baseline.perfect_only simple.Inl.program (Mat.identity 4) with
    | Baseline.Not_perfect -> "REJECTED (not perfectly nested)"
    | _ -> "accepted?!");
  (match Baseline.Distribution.legal simple.Inl.layout simple.Inl.deps ~at:1 with
  | Error msg -> Printf.printf "loop distribution on simplified Cholesky: ILLEGAL\n  (%s)\n" msg
  | Ok () -> Printf.printf "loop distribution: legal?!\n");
  (match Baseline.Sinking.sink_into_following_loop simple.Inl.program with
  | Error msg -> Printf.printf "sinking: %s\n" msg
  | Ok sunk -> (
      match Interp.equivalent simple.Inl.program sunk ~params:[ ("N", 4) ] with
      | Ok () -> Printf.printf "sinking: equivalent (unexpected)\n"
      | Error d ->
          Printf.printf "statement sinking produces WRONG code (inner loop empty at I=N):\n  %s\n"
            d));
  let m =
    Inl.Tmat.compose
      (Inl.Tmat.interchange simple.Inl.layout "I" "J")
      (Inl.Tmat.reorder simple.Inl.layout ~parent:[ 0 ] ~perm:[ 1; 0 ])
  in
  let ok = verify_equiv simple (Inl.transform_exn simple m) [ 1; 4; 9 ] in
  Printf.printf "this framework: loop permutation generated and verified equivalent: %b\n" ok

(* ---- E15: framework costs and ablations ---- *)

let coarsen (iv : Interval.t) : Interval.t =
  (* the classical {d, +, -, *} lattice: keep points, collapse everything
     else to sign information *)
  match Interval.is_point iv with
  | Some _ -> iv
  | None ->
      if Interval.definitely_positive iv then Interval.plus
      else if Interval.definitely_negative iv then Interval.minus
      else Interval.top

let e15 () =
  section "E15" "Framework cost and ablations (Section 7's efficiency claim)";
  let ctx = Inl.analyze_source Px.cholesky in
  let m = Mat.of_int_lists Px.corrected_c_rows in
  let t_analysis = measure_ns "analysis" (fun () -> ignore (Analysis.dependences ctx.Inl.layout)) in
  let t_legality = measure_ns "legality" (fun () -> ignore (Inl.check ctx m)) in
  let t_codegen = measure_ns "codegen" (fun () -> ignore (Inl.transform_exn ctx m)) in
  Printf.printf "dependence analysis: %12s\n" (ns_pretty t_analysis);
  Printf.printf "legality check:      %12s\n" (ns_pretty t_legality);
  Printf.printf "code generation:     %12s\n" (ns_pretty t_codegen);

  let partial = [ Vec.of_int_list [ 0; 0; 0; 0; 0; 1; 0 ] ] in
  let t_completion =
    measure_ns ~quota:1.0 "completion(pruned)" (fun () -> ignore (Inl.complete ctx ~partial))
  in
  let naive () =
    (* enumerate structures x unit-row assignments with no pruning, then
       run the full legality check on each candidate *)
    let loop_cols = [ 0; 4; 5; 6 ] in
    let structures = Inl.Completion.reorder_matrices ctx.Inl.layout in
    let tried = ref 0 in
    let found = ref None in
    List.iter
      (fun r ->
        if !found = None then
          match Inl.Blockstruct.infer ctx.Inl.layout r with
          | Error _ -> ()
          | Ok st ->
              let o2n = st.Inl.Blockstruct.old_to_new in
              let rows = List.map (fun p -> o2n.(p)) loop_cols in
              let rec fill mm = function
                | [] ->
                    incr tried;
                    if
                      Inl_linalg.Gauss.is_nonsingular mm
                      &&
                      match Inl.check ctx mm with Inl.Legality.Legal _ -> true | _ -> false
                    then found := Some (Mat.copy mm)
                | row :: rest ->
                    if !found = None then
                      List.iter
                        (fun c ->
                          if !found = None then begin
                            let m' = Mat.copy mm in
                            m'.(row) <- Vec.unit 7 c;
                            fill m' rest
                          end)
                        loop_cols
              in
              let m0 = Mat.copy r in
              m0.(o2n.(0)) <- List.hd partial;
              fill m0 (List.filter (fun r' -> r' <> o2n.(0)) rows))
      structures;
    !tried
  in
  let t0 = Unix.gettimeofday () in
  let tried = naive () in
  let t_naive = (Unix.gettimeofday () -. t0) *. 1e9 in
  Printf.printf "completion (pruned search):   %12s\n" (ns_pretty t_completion);
  Printf.printf "naive enumeration:            %12s (%d candidates fully checked)\n"
    (ns_pretty t_naive) tried;

  let deps_coarse =
    List.map (fun (d : Dep.t) -> { d with Dep.vector = Array.map coarsen d.vector }) ctx.Inl.deps
  in
  let verdict deps mm =
    match Inl.Legality.check ctx.Inl.layout mm deps with
    | Inl.Legality.Legal _ -> true
    | Inl.Legality.Illegal _ -> false
  in
  let candidates =
    List.concat_map
      (fun r -> [ r; Mat.mul (Mat.copy r) (Mat.of_int_lists Px.corrected_c_rows) ])
      (Inl.Completion.reorder_matrices ctx.Inl.layout)
  in
  let disagreements =
    List.length (List.filter (fun mm -> verdict ctx.Inl.deps mm <> verdict deps_coarse mm) candidates)
  in
  Printf.printf
    "\nablation (direction lattice {d,+,-,*} vs intervals): %d/%d legality verdicts differ\n"
    disagreements (List.length candidates);

  let zctx = Inl.analyze_source ~padding:Layout.Zero Px.cholesky in
  let diag_ok = verdict ctx.Inl.deps m in
  let zero_ok =
    match Inl.Legality.check zctx.Inl.layout m zctx.Inl.deps with
    | Inl.Legality.Legal _ -> true
    | Inl.Legality.Illegal _ -> false
  in
  Printf.printf "ablation (padding): corrected C legal under diagonal=%b zero=%b\n" diag_ok zero_ok

(* ---- E16: distribution/fusion in the completion procedure (S7) ---- *)

let e16 () =
  section "E16" "Extension: distribution and fusion in the completion procedure (Section 7)";
  let mixed =
    Inl.analyze_source
      "params N\ndo I = 1..N\n S1: B(I) = B(I-1) + 1\n S2: A(I) = A(I) + 2\nenddo\n"
  in
  let module Ext = Inl.Completion_ext in
  let s2_reversed (v : Ext.variant) (mm : Mat.t) =
    match Inl.Legality.check v.Ext.layout mm v.Ext.deps with
    | Inl.Legality.Illegal _ -> false
    | Inl.Legality.Legal { structure; _ } ->
        let p = Inl.Perstmt.of_structure structure "S2" in
        Mat.rows p.Inl.Perstmt.matrix = 1
        && Inl_num.Mpz.equal (Mat.get p.Inl.Perstmt.matrix 0 0) Inl_num.Mpz.minus_one
  in
  (match
     Inl.Completion.complete mixed.Inl.layout mixed.Inl.deps ~partial:[]
       ~goal:(fun mm ->
         s2_reversed
           {
             Ext.restructuring = Ext.Original;
             program = mixed.Inl.program;
             layout = mixed.Inl.layout;
             deps = mixed.Inl.deps;
           }
           mm)
   with
  | None -> Printf.printf "goal 'reverse S2's loop' without restructuring: impossible\n"
  | Some _ -> Printf.printf "goal reachable without restructuring (unexpected)\n");
  (match Ext.complete_with_restructuring mixed.Inl.layout mixed.Inl.deps ~goal:s2_reversed with
  | Some (v, mm) ->
      Printf.printf "with restructuring: found via %s\n" (Ext.describe v.Ext.restructuring);
      let vctx = Inl.analyze v.Ext.program in
      let prog = Inl.transform_exn vctx mm in
      Printf.printf "%s\n" (Inl.Pp.program_to_string prog);
      let ok =
        match Interp.equivalent mixed.Inl.program prog ~params:[ ("N", 8) ] with
        | Ok () -> true
        | Error _ -> false
      in
      Printf.printf "equivalent to the original: %b\n" ok
  | None -> Printf.printf "extension failed (unexpected)\n");
  let two =
    Inl.analyze_source
      "params N\ndo I = 1..N\n S1: A(I) = 2 * I\nenddo\ndo I2 = 1..N\n S2: B(I2) = A(I2) + 1\nenddo\n"
  in
  let module E = Inl.Completion_ext in
  let vs = E.variants two.Inl.layout two.Inl.deps in
  Printf.printf "\ntwo-loop producer/consumer: variants = [%s]\n"
    (String.concat "; " (List.map (fun v -> E.describe v.E.restructuring) vs))

let () =
  Printf.printf "Transformations for Imperfectly Nested Loops — experiment harness\n";
  Printf.printf "(Kodukula & Pingali, SC 1996; see EXPERIMENTS.md for the index)\n";
  e3 ();
  e4_e7 ();
  e9_e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  Printf.printf "\nAll experiment sections completed.\n"
