examples/quickstart.mli:
