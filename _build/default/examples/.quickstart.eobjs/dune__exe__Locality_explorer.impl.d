examples/locality_explorer.ml: Inl Inl_cachesim Inl_interp Inl_kernels List Printf Sys
