examples/lu_row_factorization.mli:
