examples/cholesky_left_looking.mli:
