examples/lu_row_factorization.ml: Format Inl Inl_interp Inl_kernels Inl_linalg List Printf
