examples/skew_and_augment.ml: Format Inl Inl_interp Inl_kernels Inl_linalg List Printf
