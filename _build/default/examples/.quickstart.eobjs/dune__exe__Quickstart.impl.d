examples/quickstart.ml: Format Inl Inl_interp Inl_kernels List Printf
