examples/cholesky_left_looking.ml: Format Inl Inl_interp Inl_kernels List Printf
