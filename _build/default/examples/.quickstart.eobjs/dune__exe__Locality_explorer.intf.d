examples/locality_explorer.mli:
