examples/skew_and_augment.mli:
