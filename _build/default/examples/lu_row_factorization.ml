(* Deriving row-wise LU from right-looking LU with the completion
   procedure — a second factorization worked end to end, showing both a
   success (outer = I yields the ikj "bordering" form) and the
   framework's honest refusals (the I<->J interchange and the outer = J
   form are rejected by the distance/direction abstraction).

   Run with:  dune exec examples/lu_row_factorization.exe *)

module Px = Inl_kernels.Paper_examples
module Vec = Inl_linalg.Vec
module Interp = Inl_interp.Interp

let () =
  let ctx = Inl.analyze_source Px.lu in
  print_endline "=== right-looking LU (kij) ===";
  print_string Px.lu;

  print_endline "\n=== dependence matrix ===";
  Format.printf "%a@." Inl.Dep.pp_matrix ctx.Inl.deps;

  (* the interchange is rejected: the padded-J coordinate of the
     division statement becomes a '*' direction *)
  (match Inl.check ctx (Inl.Tmat.interchange ctx.Inl.layout "I" "J") with
  | Inl.Legality.Illegal msg -> Printf.printf "I<->J interchange rejected:\n  %s\n" msg
  | Inl.Legality.Legal _ -> print_endline "I<->J legal (unexpected)");

  let n = Inl.Layout.size ctx.Inl.layout in
  let pos v = Inl.Tmat.loop_position ctx.Inl.layout v in

  (* outer = J: no legal completion (the column divisions happen too early) *)
  (match Inl.complete ctx ~partial:[ Vec.unit n (pos "J") ] with
  | None -> print_endline "\nouter = J: no legal completion (column LU is out of reach)"
  | Some _ -> print_endline "\nouter = J completed (unexpected)");

  (* outer = I: the row-wise (bordering) LU *)
  match Inl.complete ctx ~partial:[ Vec.unit n (pos "I") ] with
  | None -> print_endline "outer = I: completion failed (unexpected)"
  | Some m ->
      print_endline "\n=== completed matrix for outer = I ===";
      Format.printf "%a@." Inl.Mat.pp m;
      let prog = Inl.transform_exn ctx m in
      print_endline "=== derived row-wise LU ===";
      print_endline (Inl.Pp.program_to_string prog);
      List.iter
        (fun nn ->
          match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", nn) ] with
          | Ok () -> Printf.printf "N = %2d: equivalent\n" nn
          | Error d -> Printf.printf "N = %2d: DIFFERS (%s)\n" nn d)
        [ 1; 4; 9 ]
