(* The paper's running code-generation example (Sections 5.4-5.5): a
   skew collapses all instances of statement S1 into one iteration of the
   new outer loop, so the per-statement transformation is singular and an
   extra loop must be added around S1 by the completion procedure of
   Figure 7.

   Run with:  dune exec examples/skew_and_augment.exe *)

module Px = Inl_kernels.Paper_examples
module Interp = Inl_interp.Interp
module Mat = Inl_linalg.Mat

let () =
  let ctx = Inl.analyze_source Px.augmentation_example in
  print_endline "=== source (Section 5.4) ===";
  print_string Px.augmentation_example;

  print_endline "\n=== dependence matrix ===";
  Format.printf "%a@." Inl.Dep.pp_matrix ctx.Inl.deps;

  let m = Mat.of_int_lists Px.section55_matrix_rows in
  print_endline "=== transformation matrix (skew + statement swap) ===";
  Format.printf "%a@." Inl.Mat.pp m;

  (match Inl.check ctx m with
  | Inl.Legality.Illegal msg -> Printf.printf "illegal: %s\n" msg
  | Inl.Legality.Legal { structure; unsatisfied } ->
      Printf.printf "\nlegal; %d unsatisfied self-dependence(s) to be carried by extra loops\n"
        (List.length unsatisfied);
      List.iter
        (fun label ->
          let p = Inl.Perstmt.of_structure structure label in
          Format.printf "per-statement transformation of %s:@ %a (rank %d)@." label Inl.Mat.pp
            p.Inl.Perstmt.matrix (Inl.Perstmt.rank p))
        [ "S1"; "S2" ]);

  print_endline "\n=== generated code, before simplification ===";
  print_endline (Inl.Pp.program_to_string (Inl.transform_exn ctx ~simplify:false m));

  print_endline "\n=== generated code, after the standard optimizations ===";
  let prog = Inl.transform_exn ctx m in
  print_endline (Inl.Pp.program_to_string prog);

  List.iter
    (fun n ->
      match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
      | Ok () -> Printf.printf "N = %2d: equivalent\n" n
      | Error d -> Printf.printf "N = %2d: DIFFERS (%s)\n" n d)
    [ 1; 5; 12 ]
