(* Deriving left-looking Cholesky from the right-looking form with the
   completion procedure (Section 6, Figure 8).

   The paper fixes the first row of the transformation and completes the
   rest automatically.  We do the same (with the corrected first row —
   see EXPERIMENTS.md E12 on the paper's J/L mix-up), print the derived
   left-looking code, and verify it numerically.

   Run with:  dune exec examples/cholesky_left_looking.exe *)

module Px = Inl_kernels.Paper_examples
module Interp = Inl_interp.Interp

let () =
  let ctx = Inl.analyze_source Px.cholesky in
  print_endline "=== right-looking Cholesky (the paper's source form) ===";
  print_string Px.cholesky;

  print_endline "\n=== dependence matrix ===";
  Format.printf "%a@." Inl.Dep.pp_matrix ctx.Inl.deps;

  (* Ask for a new outermost loop enumerating the old L values. *)
  let partial = [ Inl.Vec.of_int_list [ 0; 0; 0; 0; 0; 1; 0 ] ] in
  (match Inl.complete ctx ~partial with
  | None -> print_endline "completion failed!"
  | Some m ->
      print_endline "=== completed transformation matrix ===";
      Format.printf "%a@." Inl.Mat.pp m;
      let prog = Inl.transform_exn ctx m in
      print_endline "\n=== derived left-looking Cholesky ===";
      print_endline (Inl.Pp.program_to_string prog);
      List.iter
        (fun n ->
          match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
          | Ok () -> Printf.printf "N = %2d: equivalent\n" n
          | Error d -> Printf.printf "N = %2d: DIFFERS (%s)\n" n d)
        [ 1; 3; 8 ]);

  (* The paper's printed first row (old J position) cannot be completed:
     its outer coordinate already reverses the update->divide dependence. *)
  let printed = [ Inl.Vec.of_int_list [ 0; 0; 0; 0; 1; 0; 0 ] ] in
  match Inl.complete ctx ~partial:printed with
  | None ->
      print_endline
        "\nthe paper's printed partial row [0 0 0 0 1 0 0] has no legal completion\n\
         (its own final code corresponds to the corrected row; see EXPERIMENTS.md E12)"
  | Some _ -> print_endline "\nunexpected: printed partial row completed"
