test/test_blockstruct.mli:
