test/test_presburger.mli:
