test/test_interval.ml: Alcotest Inl_num Inl_presburger List QCheck2 QCheck_alcotest
