test/test_completion.mli:
