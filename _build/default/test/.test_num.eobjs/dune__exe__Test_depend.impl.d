test/test_depend.ml: Alcotest Array Format Inl_depend Inl_instance Inl_ir Inl_num Inl_presburger List Printf QCheck2 QCheck_alcotest String
