test/test_completion.ml: Alcotest Array Inl Inl_instance Inl_interp Inl_ir Inl_linalg Inl_num List QCheck2 QCheck_alcotest String
