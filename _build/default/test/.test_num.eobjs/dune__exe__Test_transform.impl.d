test/test_transform.ml: Alcotest Inl Inl_depend Inl_instance Inl_interp Inl_ir Inl_linalg Inl_num List String
