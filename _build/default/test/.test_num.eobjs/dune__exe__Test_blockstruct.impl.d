test/test_blockstruct.ml: Alcotest Array Inl Inl_instance Inl_ir Inl_kernels Inl_linalg Inl_num List String
