test/test_codegen_prop.mli:
