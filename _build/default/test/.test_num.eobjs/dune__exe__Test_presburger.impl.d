test/test_presburger.ml: Alcotest Inl_num Inl_presburger List QCheck2 QCheck_alcotest Set String
