test/test_completion_ext.mli:
