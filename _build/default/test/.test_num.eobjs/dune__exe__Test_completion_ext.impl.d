test/test_completion_ext.ml: Alcotest Inl Inl_instance Inl_interp Inl_ir Inl_kernels Inl_linalg Inl_num List
