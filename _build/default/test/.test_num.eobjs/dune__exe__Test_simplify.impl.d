test/test_simplify.ml: Alcotest Format Inl Inl_interp Inl_ir Inl_num Inl_presburger List
