test/test_lu.ml: Alcotest Array Hashtbl Inl Inl_depend Inl_interp Inl_ir Inl_kernels Inl_linalg List Printf
