test/test_num.ml: Alcotest Inl_num List Printf QCheck2 QCheck_alcotest
