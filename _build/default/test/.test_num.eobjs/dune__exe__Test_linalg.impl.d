test/test_linalg.ml: Alcotest Array Inl_linalg Inl_num List QCheck2 QCheck_alcotest
