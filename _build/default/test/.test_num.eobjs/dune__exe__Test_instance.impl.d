test/test_instance.ml: Alcotest Array Inl_instance Inl_ir Inl_linalg Inl_num List QCheck2 QCheck_alcotest
