test/test_systems.ml: Alcotest Array Hashtbl Inl Inl_baseline Inl_cachesim Inl_depend Inl_instance Inl_interp Inl_ir Inl_kernels Inl_linalg List Printf Result
