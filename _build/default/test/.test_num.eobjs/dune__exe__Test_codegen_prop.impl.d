test/test_codegen_prop.ml: Alcotest Inl Inl_instance Inl_interp Inl_ir Inl_linalg List Printf QCheck2 QCheck_alcotest
