(* Unit and property tests for the bignum substrate (Mpz, Q).

   The property tests check Mpz arithmetic against native-int arithmetic on
   operands small enough that the native computation cannot overflow, plus
   targeted unit tests at the native-int boundaries. *)

module Mpz = Inl_num.Mpz
module Q = Inl_num.Q

let z = Mpz.of_int
let mpz_testable = Alcotest.testable Mpz.pp Mpz.equal
let q_testable = Alcotest.testable Q.pp Q.equal

(* ---- unit tests ---- *)

let test_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (Mpz.to_int (z n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 31; -(1 lsl 31) ]

let test_to_string () =
  Alcotest.(check string) "zero" "0" (Mpz.to_string Mpz.zero);
  Alcotest.(check string) "neg" "-12345" (Mpz.to_string (z (-12345)));
  Alcotest.(check string) "max_int" (string_of_int max_int) (Mpz.to_string (z max_int));
  Alcotest.(check string) "min_int" (string_of_int min_int) (Mpz.to_string (z min_int))

let test_of_string () =
  Alcotest.(check mpz_testable) "roundtrip" (z 987654321) (Mpz.of_string "987654321");
  Alcotest.(check mpz_testable) "neg" (z (-17)) (Mpz.of_string "-17");
  Alcotest.(check mpz_testable) "plus" (z 17) (Mpz.of_string "+17");
  let big = "123456789012345678901234567890" in
  Alcotest.(check string) "big roundtrip" big (Mpz.to_string (Mpz.of_string big));
  Alcotest.check_raises "empty" (Invalid_argument "Mpz.of_string: empty string") (fun () ->
      ignore (Mpz.of_string ""));
  Alcotest.check_raises "junk" (Invalid_argument "Mpz.of_string: bad digit") (fun () ->
      ignore (Mpz.of_string "12x"))

let test_big_arithmetic () =
  (* (2^200 + 1) - 2^200 = 1; 2^100 * 2^100 = 2^200 *)
  let p100 = Mpz.pow Mpz.two 100 in
  let p200 = Mpz.pow Mpz.two 200 in
  Alcotest.(check mpz_testable) "mul pow" p200 (Mpz.mul p100 p100);
  Alcotest.(check mpz_testable) "sub" Mpz.one (Mpz.sub (Mpz.succ p200) p200);
  let q, r = Mpz.divmod p200 p100 in
  Alcotest.(check mpz_testable) "div quotient" p100 q;
  Alcotest.(check mpz_testable) "div remainder" Mpz.zero r;
  let q, r = Mpz.divmod (Mpz.succ p200) p100 in
  Alcotest.(check mpz_testable) "div q2" p100 q;
  Alcotest.(check mpz_testable) "div r2" Mpz.one r

let test_divmod_signs () =
  (* truncated semantics: remainder has the sign of the dividend *)
  let check a b eq er =
    let q, r = Mpz.divmod (z a) (z b) in
    Alcotest.(check mpz_testable) (Printf.sprintf "%d/%d q" a b) (z eq) q;
    Alcotest.(check mpz_testable) (Printf.sprintf "%d/%d r" a b) (z er) r
  in
  check 7 2 3 1;
  check (-7) 2 (-3) (-1);
  check 7 (-2) (-3) 1;
  check (-7) (-2) 3 (-1)

let test_floor_ceil_div () =
  let check a b fq cq =
    Alcotest.(check mpz_testable) (Printf.sprintf "fdiv %d %d" a b) (z fq) (Mpz.fdiv (z a) (z b));
    Alcotest.(check mpz_testable) (Printf.sprintf "cdiv %d %d" a b) (z cq) (Mpz.cdiv (z a) (z b))
  in
  check 7 2 3 4;
  check (-7) 2 (-4) (-3);
  check 6 2 3 3;
  check (-6) 2 (-3) (-3);
  check 7 (-2) (-4) (-3);
  check (-7) (-2) 3 4

let test_gcd_lcm () =
  Alcotest.(check mpz_testable) "gcd" (z 6) (Mpz.gcd (z 12) (z (-18)));
  Alcotest.(check mpz_testable) "gcd 0" (z 5) (Mpz.gcd (z 0) (z 5));
  Alcotest.(check mpz_testable) "gcd 0 0" Mpz.zero (Mpz.gcd Mpz.zero Mpz.zero);
  Alcotest.(check mpz_testable) "lcm" (z 36) (Mpz.lcm (z 12) (z (-18)));
  Alcotest.(check mpz_testable) "lcm 0" Mpz.zero (Mpz.lcm Mpz.zero (z 7))

let test_division_by_zero () =
  Alcotest.check_raises "divmod" Division_by_zero (fun () -> ignore (Mpz.divmod Mpz.one Mpz.zero));
  Alcotest.check_raises "q make" Division_by_zero (fun () -> ignore (Q.make Mpz.one Mpz.zero))

let test_q_canonical () =
  Alcotest.(check q_testable) "reduce" (Q.of_ints 2 3) (Q.of_ints (-4) (-6));
  Alcotest.(check q_testable) "sign moves" (Q.of_ints (-2) 3) (Q.of_ints 2 (-3));
  Alcotest.(check bool) "integer" true (Q.is_integer (Q.of_ints 8 4));
  Alcotest.(check mpz_testable) "to_mpz" (z 2) (Q.to_mpz_exn (Q.of_ints 8 4))

let test_q_floor_ceil () =
  Alcotest.(check mpz_testable) "floor 7/2" (z 3) (Q.floor (Q.of_ints 7 2));
  Alcotest.(check mpz_testable) "ceil 7/2" (z 4) (Q.ceil (Q.of_ints 7 2));
  Alcotest.(check mpz_testable) "floor -7/2" (z (-4)) (Q.floor (Q.of_ints (-7) 2));
  Alcotest.(check mpz_testable) "ceil -7/2" (z (-3)) (Q.ceil (Q.of_ints (-7) 2))

(* ---- property tests against native ints ---- *)

let small = QCheck2.Gen.int_range (-1_000_000) 1_000_000
let pair2 = QCheck2.Gen.pair small small

let prop name ?(count = 500) gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let props =
  [
    prop "add matches int" pair2 (fun (a, b) -> Mpz.to_int (Mpz.add (z a) (z b)) = a + b);
    prop "sub matches int" pair2 (fun (a, b) -> Mpz.to_int (Mpz.sub (z a) (z b)) = a - b);
    prop "mul matches int" pair2 (fun (a, b) -> Mpz.to_int (Mpz.mul (z a) (z b)) = a * b);
    prop "compare matches int" pair2 (fun (a, b) -> Mpz.compare (z a) (z b) = compare a b);
    prop "divmod matches int" pair2 (fun (a, b) ->
        b = 0
        ||
        let q, r = Mpz.divmod (z a) (z b) in
        Mpz.to_int q = a / b && Mpz.to_int r = a mod b);
    prop "string roundtrip" small (fun a -> Mpz.equal (z a) (Mpz.of_string (Mpz.to_string (z a))));
    prop "gcd divides both" pair2 (fun (a, b) ->
        let g = Mpz.gcd (z a) (z b) in
        if Mpz.is_zero g then a = 0 && b = 0
        else a mod Mpz.to_int g = 0 && b mod Mpz.to_int g = 0);
    prop "fdiv/cdiv defining inequalities" pair2 (fun (a, b) ->
        b = 0
        ||
        (* floor: remainder a - q*b lies in [0,b) for b>0 and (b,0] for b<0 *)
        let rf = a - (Mpz.to_int (Mpz.fdiv (z a) (z b)) * b) in
        let rc = a - (Mpz.to_int (Mpz.cdiv (z a) (z b)) * b) in
        let floor_ok = if b > 0 then 0 <= rf && rf < b else b < rf && rf <= 0 in
        let ceil_ok = if b > 0 then -b < rc && rc <= 0 else 0 <= rc && rc < -b in
        floor_ok && ceil_ok
        && Mpz.to_int (Mpz.fmod (z a) (z b)) = rf);
    prop "big mul associativity" (QCheck2.Gen.triple small small small) (fun (a, b, c) ->
        let x = Mpz.mul (Mpz.mul (z a) (z b)) (z c) in
        let y = Mpz.mul (z a) (Mpz.mul (z b) (z c)) in
        Mpz.equal x y);
    prop "q field laws" (QCheck2.Gen.quad small small small small) (fun (a, b, c, d) ->
        b = 0 || d = 0
        ||
        let x = Q.of_ints a b and y = Q.of_ints c d in
        Q.equal (Q.add x y) (Q.add y x)
        && Q.equal (Q.sub (Q.add x y) y) x
        && (Q.is_zero y || Q.equal (Q.mul (Q.div x y) y) x));
    prop "q compare antisym" (QCheck2.Gen.quad small small small small) (fun (a, b, c, d) ->
        b = 0 || d = 0
        ||
        let x = Q.of_ints a b and y = Q.of_ints c d in
        Q.compare x y = -Q.compare y x);
  ]

(* big-operand division: reconstruct a = q*b + r with |r| < |b| on
   random ~200-bit operands built from native pieces *)
let gen_big =
  let open QCheck2.Gen in
  let* chunks = list_size (return 4) (int_range 0 max_int) in
  let* sign = bool in
  let v =
    List.fold_left (fun acc c -> Mpz.add (Mpz.mul acc (z max_int)) (z c)) Mpz.one chunks
  in
  return (if sign then Mpz.neg v else v)

let big_props =
  [
    prop "big divmod reconstructs" ~count:200 (QCheck2.Gen.pair gen_big gen_big) (fun (a, b) ->
        Mpz.is_zero b
        ||
        let q, r = Mpz.divmod a b in
        Mpz.equal a (Mpz.add (Mpz.mul q b) r)
        && Mpz.compare (Mpz.abs r) (Mpz.abs b) < 0
        && (Mpz.is_zero r || Mpz.sign r = Mpz.sign a));
    prop "big gcd divides and is maximal-ish" ~count:100 (QCheck2.Gen.pair gen_big gen_big)
      (fun (a, b) ->
        let g = Mpz.gcd a b in
        (not (Mpz.is_zero g))
        && Mpz.is_zero (snd (Mpz.divmod a g))
        && Mpz.is_zero (snd (Mpz.divmod b g)));
    prop "big string roundtrip" ~count:100 gen_big (fun a ->
        Mpz.equal a (Mpz.of_string (Mpz.to_string a)));
    prop "distributivity at scale" ~count:100 (QCheck2.Gen.triple gen_big gen_big gen_big)
      (fun (a, b, c) ->
        Mpz.equal (Mpz.mul a (Mpz.add b c)) (Mpz.add (Mpz.mul a b) (Mpz.mul a c)));
    prop "pow matches repeated mul" ~count:50 (QCheck2.Gen.int_range 0 40) (fun n ->
        let rec go acc k = if k = 0 then acc else go (Mpz.mul acc (z 3)) (k - 1) in
        Mpz.equal (Mpz.pow (z 3) n) (go Mpz.one n));
  ]

let () =
  Alcotest.run "num"
    [
      ( "mpz",
        [
          Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_to_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "big arithmetic" `Quick test_big_arithmetic;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "floor/ceil division" `Quick test_floor_ceil_div;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
        ] );
      ( "q",
        [
          Alcotest.test_case "canonical form" `Quick test_q_canonical;
          Alcotest.test_case "floor/ceil" `Quick test_q_floor_ceil;
        ] );
      ("properties", props);
      ("big operands", big_props);
    ]
