  $ cat > chol.loop <<'EOF'
  > params N
  > do I = 1..N
  >   S1: A(I) = sqrt(A(I))
  >   do J = I+1..N
  >     S2: A(J) = A(J) / A(I)
  >   enddo
  > enddo
  > EOF
  $ inltool show chol.loop
  $ inltool apply chol.loop --interchange I,J 2>&1 | tail -1
  $ inltool apply chol.loop --reorder 0:1,0 --interchange I,J --verify 6 | tail -9
  $ inltool deps chol.loop | head -6
  $ inltool complete chol.loop --row 0,0,0,1 --verify 5 | tail -9
  $ cat > tiny.loop <<'EOF'
  > params N
  > do I = 1..N
  >   S1: A(I) = 2 * I
  > enddo
  > EOF
  $ inltool run tiny.loop -N 3
  $ inltool apply tiny.loop --scale I,3 --no-simplify | tail -9
