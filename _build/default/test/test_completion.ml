(* Tests for the completion procedure (Section 6) on full Cholesky
   factorization, and for the Section 5.1 claim that all six permutations
   of the three Cholesky loops are legal.

   Every completed or hand-built matrix is validated twice: by the
   legality test and by generating code and checking semantic equivalence
   against the original program in the interpreter. *)

module Mpz = Inl_num.Mpz
module Vec = Inl_linalg.Vec
module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout
module Interp = Inl_interp.Interp

let cholesky_src = {|
params N
do K = 1..N
  S1: A[K][K] = sqrt(A[K][K])
  do I = K+1..N
    S2: A[I][K] = A[I][K] / A[K][K]
  enddo
  do J = K+1..N
    do L = K+1..J
      S3: A[J][L] = A[J][L] - A[J][K] * A[L][K]
    enddo
  enddo
enddo
|}

let ctx = Inl.analyze_source cholesky_src

let check_equivalent ?(sizes = [ 1; 2; 3; 5 ]) m =
  let prog = Inl.transform_exn ctx m in
  List.iter
    (fun n ->
      match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
      | Ok () -> ()
      | Error d -> Alcotest.failf "not equivalent at N=%d: %s" n d)
    sizes;
  prog

(* E12a: the paper's Section 6 matrices.

   The paper prints a completion matrix C whose first row selects the old
   J position.  Under the paper's own instance-vector convention that
   matrix is ILLEGAL: it maps the update A[i][k'] (statement S3, new
   outer iteration i) after the division A[i][k']/A[k'][k'] it feeds
   (statement S2, new outer iteration k' < i) — our legality test rejects
   it, naming exactly that flow dependence.  The paper's own printed
   final code (traditional left-looking Cholesky) corresponds to the
   corrected matrix whose first row selects the old L position; the
   paper's dependence matrix cannot discriminate the two (its J and L
   rows are identical).  See EXPERIMENTS.md E12. *)
let paper_c_printed =
  Mat.of_int_lists
    [
      [ 0; 0; 0; 0; 1; 0; 0 ];
      [ 0; 0; 1; 0; 0; 0; 0 ];
      [ 0; 0; 0; 1; 0; 0; 0 ];
      [ 0; 1; 0; 0; 0; 0; 0 ];
      [ 1; 0; 0; 0; 0; 0; 0 ];
      [ 0; 0; 0; 0; 0; 1; 0 ];
      [ 0; 0; 0; 0; 0; 0; 1 ];
    ]

let corrected_c =
  Mat.of_int_lists
    [
      [ 0; 0; 0; 0; 0; 1; 0 ];
      [ 0; 0; 1; 0; 0; 0; 0 ];
      [ 0; 0; 0; 1; 0; 0; 0 ];
      [ 0; 1; 0; 0; 0; 0; 0 ];
      [ 0; 0; 0; 0; 0; 0; 1 ];
      [ 0; 0; 0; 0; 1; 0; 0 ];
      [ 1; 0; 0; 0; 0; 0; 0 ];
    ]

let test_paper_matrix_legal () =
  (match Inl.check ctx paper_c_printed with
  | Inl.Legality.Legal _ -> Alcotest.fail "the printed C reverses the S3->S2 flow dependence"
  | Inl.Legality.Illegal _ -> ());
  match Inl.check ctx corrected_c with
  | Inl.Legality.Legal { unsatisfied; _ } ->
      Alcotest.(check int) "no augmentation needed" 0 (List.length unsatisfied)
  | Inl.Legality.Illegal msg -> Alcotest.failf "corrected C should be legal: %s" msg

let test_paper_matrix_codegen () =
  let prog = check_equivalent corrected_c in
  (* the transformed AST has the Fig 8 child order: J-nest, S1, I-loop *)
  match prog.Ast.nest with
  | [ Ast.Loop l ] -> (
      match l.Ast.body with
      | [ Ast.Loop _; _; _ ] -> ()
      | _ -> Alcotest.fail "expected the J-nest first under the outer loop")
  | _ -> Alcotest.fail "expected a single outer loop"

(* E12b: completing the corrected partial transformation (first row
   selecting the old L position) yields a legal matrix with equivalent
   code; the printed partial row (old J) admits NO legal completion,
   since its very first coordinate already reverses a dependence. *)
let test_completion_from_partial () =
  let partial = [ Vec.of_int_list [ 0; 0; 0; 0; 0; 1; 0 ] ] in
  (match Inl.complete ctx ~partial with
  | None -> Alcotest.fail "completion failed"
  | Some m ->
      Alcotest.(check bool) "first row kept" true
        (Vec.equal (Mat.row m 0) (List.hd partial));
      Alcotest.(check bool) "legal" true
        (match Inl.check ctx m with Inl.Legality.Legal _ -> true | _ -> false);
      ignore (check_equivalent m));
  let bad_partial = [ Vec.of_int_list [ 0; 0; 0; 0; 1; 0; 0 ] ] in
  Alcotest.(check bool) "printed partial row has no legal completion" true
    (Inl.complete ctx ~partial:bad_partial = None)

(* E12c: per-statement transformations under C are non-singular for every
   statement (the paper's remark that no augmentation is necessary). *)
let test_perstmt_nonsingular () =
  match Inl.check ctx corrected_c with
  | Inl.Legality.Illegal msg -> Alcotest.fail msg
  | Inl.Legality.Legal { structure; _ } ->
      List.iter
        (fun label ->
          let p = Inl.Perstmt.of_structure structure label in
          Alcotest.(check bool) (label ^ " non-singular") false (Inl.Perstmt.is_singular p))
        [ "S1"; "S2"; "S3" ]

(* E11: the six permutations of the Cholesky loops.

   For the update statement's 3-deep nest taken alone (a perfect nest),
   all six loop permutations are legal — the paper's introductory claim,
   verified below.  For the full 3-statement factorization, exactly four
   of the six orders are certifiable with unit loop rows under the
   distance/direction (interval) abstraction: the two J-outer forms (jik,
   jki) require the division statement to run at outer iteration I, which
   a single shared outer row can only express as the combination
   J + I - K; its image under the interval abstraction is "*", so the
   paper's own dependence abstraction cannot certify it.  See
   EXPERIMENTS.md E11. *)
let loop_pos v = Inl.Tmat.loop_position ctx.Inl.layout v

let all_perms3 = [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 0; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ]; [ 2; 1; 0 ] ]

let find_legal_for_permutation (sigma : int list) : Mat.t option =
  let kjl = [ loop_pos "K"; loop_pos "J"; loop_pos "L" ] in
  let n = 7 in
  (* target: row at K's new position = e_{kjl[sigma0]}, etc. *)
  let sources = List.map (fun i -> List.nth kjl i) sigma in
  let structures = Inl.Completion.reorder_matrices ctx.Inl.layout in
  let candidates_for_i = [ loop_pos "I"; loop_pos "K"; loop_pos "J"; loop_pos "L" ] in
  let rec try_structures = function
    | [] -> None
    | r :: rest -> (
        match Inl.Blockstruct.infer ctx.Inl.layout r with
        | Error _ -> try_structures rest
        | Ok st ->
            let o2n = st.Inl.Blockstruct.old_to_new in
            let m0 = Mat.copy r in
            (* overwrite the loop rows *)
            List.iter2
              (fun v src ->
                let row = o2n.(loop_pos v) in
                m0.(row) <- Vec.unit n src)
              [ "K"; "J"; "L" ] sources;
            let i_row = o2n.(loop_pos "I") in
            let rec try_i = function
              | [] -> try_structures rest
              | c :: more ->
                  let m = Mat.copy m0 in
                  m.(i_row) <- Vec.unit n c;
                  if
                    Inl_linalg.Gauss.is_nonsingular m
                    && match Inl.check ctx m with Inl.Legality.Legal _ -> true | _ -> false
                  then Some m
                  else try_i more
            in
            try_i candidates_for_i)
  in
  try_structures structures

(* full Cholesky: K-outer and L-outer forms certifiable, J-outer not *)
let certifiable = [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 2; 0; 1 ]; [ 2; 1; 0 ] ]
let uncertifiable = [ [ 1; 0; 2 ]; [ 1; 2; 0 ] ]

let test_all_six_permutations () =
  List.iter
    (fun sigma ->
      match find_legal_for_permutation sigma with
      | None ->
          Alcotest.failf "no legal transformation for permutation [%s]"
            (String.concat ";" (List.map string_of_int sigma))
      | Some m -> ignore (check_equivalent ~sizes:[ 1; 2; 4 ] m))
    certifiable;
  List.iter
    (fun sigma ->
      match find_legal_for_permutation sigma with
      | None -> ()
      | Some _ ->
          Alcotest.failf "J-outer permutation [%s] should not be box-certifiable"
            (String.concat ";" (List.map string_of_int sigma)))
    uncertifiable

(* the update kernel alone: a perfect nest, all six permutations legal *)
let test_kernel_all_six () =
  let kernel =
    Inl.analyze_source
      "params N\ndo K = 1..N\n do J = K+1..N\n  do L = K+1..J\n   S3: A(J,L) = A(J,L) - A(J,K) * A(L,K)\n  enddo\n enddo\nenddo"
  in
  let lp v = Inl.Tmat.loop_position kernel.Inl.layout v in
  List.iter
    (fun sigma ->
      let srcs = List.map (fun i -> List.nth [ lp "K"; lp "J"; lp "L" ] i) sigma in
      let m = Mat.make 3 3 in
      List.iteri
        (fun row src -> m.(List.nth [ lp "K"; lp "J"; lp "L" ] row) <- Vec.unit 3 src)
        srcs;
      (match Inl.check kernel m with
      | Inl.Legality.Legal _ -> ()
      | Inl.Legality.Illegal msg ->
          Alcotest.failf "kernel permutation [%s] illegal: %s"
            (String.concat ";" (List.map string_of_int sigma))
            msg);
      let prog = Inl.transform_exn kernel m in
      List.iter
        (fun n ->
          match Interp.equivalent kernel.Inl.program prog ~params:[ ("N", n) ] with
          | Ok () -> ()
          | Error d -> Alcotest.failf "kernel N=%d: %s" n d)
        [ 1; 3; 5 ])
    all_perms3

(* Completion on the simplified Cholesky: ask for the J loop outermost;
   the search must discover the required statement reordering. *)
let test_completion_simplified () =
  let sctx =
    Inl.analyze_source
      "params N\ndo I = 1..N\n S1: A(I) = sqrt(A(I))\n do J = I+1..N\n  S2: A(J) = A(J) / A(I)\n enddo\nenddo"
  in
  let partial = [ Vec.of_int_list [ 0; 0; 0; 1 ] ] in
  match Inl.complete sctx ~partial with
  | None -> Alcotest.fail "completion failed"
  | Some m ->
      let prog = Inl.transform_exn sctx m in
      List.iter
        (fun n ->
          match Interp.equivalent sctx.Inl.program prog ~params:[ ("N", n) ] with
          | Ok () -> ()
          | Error d -> Alcotest.failf "N=%d: %s" n d)
        [ 1; 2; 3; 6 ]

(* Negative: no completion can reverse the outer loop of a true recurrence. *)
let test_completion_impossible () =
  let sctx = Inl.analyze_source "params N\ndo I = 1..N\n S1: B(I) = B(I-1) + 1\nenddo" in
  (* first row = -I: demand the loop run backwards *)
  let partial = [ Vec.of_int_list [ -1 ] ] in
  Alcotest.(check bool) "no legal completion" true (Inl.complete sctx ~partial = None)

(* Property: whatever the completion returns is legal and generates
   equivalent code, across random programs and random pinned first rows. *)
let gen_case =
  let open QCheck2.Gen in
  let* prog_kind = int_range 0 2 in
  let* pin = int_range 0 3 in
  let src =
    match prog_kind with
    | 0 ->
        "params N\ndo I = 1..N\n S1: C(I) = C(I-1) + 1\n do J = I..N\n  S2: A(I,J) = C(I)\n enddo\nenddo"
    | 1 ->
        "params N\ndo I = 1..N\n S1: B(I) = 2 * B(I)\n do J = 1..N\n  S2: A(I,J) = A(I,J) + B(I)\n enddo\nenddo"
    | _ ->
        "params N\ndo I = 1..N\n do J = I..N\n  S2: A(J) = A(J) + 1\n enddo\n S3: D(I) = A(I)\nenddo"
  in
  return (src, pin)

let completion_soundness =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"completions are legal and equivalent" ~count:60 gen_case
       (fun (src, pin) ->
         let sctx = Inl.analyze_source src in
         let n = Inl.Layout.size sctx.Inl.layout in
         let partial = [ Vec.unit n (pin mod n) ] in
         match Inl.complete sctx ~partial with
         | None -> true (* nothing claimed *)
         | Some m -> (
             (match Inl.check sctx m with
             | Inl.Legality.Legal _ -> ()
             | Inl.Legality.Illegal msg -> Alcotest.failf "completion returned illegal: %s" msg);
             let prog = Inl.transform_exn sctx m in
             List.for_all
               (fun nn -> Interp.equivalent sctx.Inl.program prog ~params:[ ("N", nn) ] = Ok ())
               [ 1; 3; 5 ])))

let () =
  Alcotest.run "completion"
    [
      ( "paper",
        [
          Alcotest.test_case "C is legal (Fig 8)" `Quick test_paper_matrix_legal;
          Alcotest.test_case "C generates equivalent code" `Quick test_paper_matrix_codegen;
          Alcotest.test_case "per-statement transforms non-singular" `Quick test_perstmt_nonsingular;
          Alcotest.test_case "completion from the partial row" `Quick test_completion_from_partial;
        ] );
      ( "claims",
        [
          Alcotest.test_case "Cholesky permutations: 4 of 6 certifiable" `Slow
            test_all_six_permutations;
          Alcotest.test_case "update kernel: all six legal (5.1)" `Quick test_kernel_all_six;
          Alcotest.test_case "completion reorders simplified Cholesky" `Quick
            test_completion_simplified;
          Alcotest.test_case "impossible completion rejected" `Quick test_completion_impossible;
          completion_soundness;
        ] );
    ]
