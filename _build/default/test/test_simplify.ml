(* Unit tests for the cleanup pass (Section 5.5's "standard
   optimizations"): let inlining, guard pruning by exact implication,
   divisibility-guard pruning, dominated bound terms — each checked both
   structurally and for semantic preservation. *)

module Mpz = Inl_num.Mpz
module Linexpr = Inl_presburger.Linexpr
module Ast = Inl_ir.Ast
module Parser = Inl_ir.Parser
module Pp = Inl_ir.Pp
module Simplify = Inl.Simplify
module Interp = Inl_interp.Interp

let le = Linexpr.of_terms

let count_nodes pred prog =
  let n = ref 0 in
  let rec go node =
    if pred node then incr n;
    match node with
    | Ast.Stmt _ -> ()
    | Ast.If (_, b) | Ast.Let (_, _, b) -> List.iter go b
    | Ast.Loop l -> List.iter go l.Ast.body
  in
  List.iter go prog.Ast.nest;
  !n

let is_if = function Ast.If _ -> true | _ -> false
let is_let = function Ast.Let _ -> true | _ -> false

let check_semantics prog prog' =
  List.iter
    (fun n ->
      match Interp.equivalent prog prog' ~params:[ ("N", n) ] with
      | Ok () -> ()
      | Error d -> Alcotest.failf "simplification changed semantics at N=%d: %s" n d)
    [ 1; 3; 7 ]

(* an If whose guard restates the loop bounds disappears *)
let test_redundant_guard () =
  let base = Parser.parse_exn "params N\ndo I = 1..N\n S: A(I) = I\nenddo" in
  let guarded =
    match base.Ast.nest with
    | [ Ast.Loop l ] ->
        {
          base with
          Ast.nest =
            [
              Ast.Loop
                {
                  l with
                  Ast.body =
                    [ Ast.If ([ Ast.Gcmp (`Ge, le [ (1, "I") ] (-1)) ], l.Ast.body) ];
                };
            ];
        }
    | _ -> assert false
  in
  let simplified = Simplify.simplify guarded in
  Alcotest.(check int) "guard dropped" 0 (count_nodes is_if simplified);
  check_semantics guarded simplified

(* a guard NOT implied stays *)
let test_live_guard_kept () =
  let base = Parser.parse_exn "params N\ndo I = 1..N\n S: A(I) = I\nenddo" in
  let guarded =
    match base.Ast.nest with
    | [ Ast.Loop l ] ->
        {
          base with
          Ast.nest =
            [
              Ast.Loop
                { l with Ast.body = [ Ast.If ([ Ast.Gcmp (`Ge, le [ (1, "I") ] (-3)) ], l.Ast.body) ] };
            ];
        }
    | _ -> assert false
  in
  let simplified = Simplify.simplify guarded in
  Alcotest.(check int) "guard kept" 1 (count_nodes is_if simplified);
  check_semantics guarded simplified

(* integral lets are substituted away; non-integral ones stay *)
let test_let_inlining () =
  let base = Parser.parse_exn "params N\ndo I = 1..N\n S: A(I) = I\nenddo" in
  let wrap den =
    match base.Ast.nest with
    | [ Ast.Loop l ] ->
        let body =
          [
            Ast.Let
              ( "V",
                { Ast.num = Linexpr.scale_int den (Linexpr.var "I"); den = Mpz.of_int den },
                [ Ast.Stmt { Ast.label = "S"; lhs = { Ast.array = "A"; index = [ Linexpr.var "V" ] }; rhs = Ast.Evar "V" } ] );
          ]
        in
        { base with Ast.nest = [ Ast.Loop { l with Ast.body = body } ] }
    | _ -> assert false
  in
  let p1 = Simplify.simplify (wrap 1) in
  Alcotest.(check int) "integral let inlined" 0 (count_nodes is_let p1);
  check_semantics (wrap 1) p1;
  (* denominator 2 with numerator 2*I is exact but non-unit: kept *)
  let p2 = Simplify.simplify (wrap 2) in
  Alcotest.(check int) "non-unit let kept" 1 (count_nodes is_let p2);
  check_semantics (wrap 2) p2

(* divisibility guards implied by a let equality are removed *)
let test_divisibility_pruning () =
  let src = "params N\ndo I = 1..N\n S: A(2*I) = I\nenddo" in
  let base = Parser.parse_exn src in
  let guarded =
    match base.Ast.nest with
    | [ Ast.Loop l ] ->
        {
          base with
          Ast.nest =
            [
              Ast.Loop
                {
                  l with
                  Ast.body =
                    [
                      (* 2 | 2*I always holds *)
                      Ast.If ([ Ast.Gdiv (Mpz.two, le [ (2, "I") ] 0) ], l.Ast.body);
                    ];
                };
            ];
        }
    | _ -> assert false
  in
  let simplified = Simplify.simplify guarded in
  Alcotest.(check int) "trivial divisibility dropped" 0 (count_nodes is_if simplified);
  (* 2 | I does not always hold: kept *)
  let guarded2 =
    match base.Ast.nest with
    | [ Ast.Loop l ] ->
        {
          base with
          Ast.nest =
            [
              Ast.Loop
                { l with Ast.body = [ Ast.If ([ Ast.Gdiv (Mpz.two, Linexpr.var "I") ], l.Ast.body) ] };
            ];
        }
    | _ -> assert false
  in
  let s2 = Simplify.simplify guarded2 in
  Alcotest.(check int) "live divisibility kept" 1 (count_nodes is_if s2);
  check_semantics guarded2 s2

(* dominated bound terms vanish: max(1, 2) -> 2, min(N, N+3) -> N *)
let test_bound_dominance () =
  let lower : Ast.bound =
    { Ast.combine = `Max; terms = [ Ast.bterm_int 1; Ast.bterm_int 2 ] }
  in
  let upper : Ast.bound =
    {
      Ast.combine = `Min;
      terms = [ Ast.bterm (Linexpr.var "N"); Ast.bterm (le [ (1, "N") ] 3) ];
    }
  in
  let prog =
    {
      Ast.params = [ "N" ];
      nest =
        [
          Ast.Loop
            {
              Ast.var = "I";
              lower;
              upper;
              step = Mpz.one;
              body =
                [ Ast.Stmt { Ast.label = "S"; lhs = { Ast.array = "A"; index = [ Linexpr.var "I" ] }; rhs = Ast.Econst 1. } ];
            };
        ];
    }
  in
  let s = Simplify.simplify prog in
  (match s.Ast.nest with
  | [ Ast.Loop l ] ->
      Alcotest.(check int) "single lower term" 1 (List.length l.Ast.lower.Ast.terms);
      Alcotest.(check int) "single upper term" 1 (List.length l.Ast.upper.Ast.terms);
      Alcotest.(check string) "lower is 2" "2"
        (Format.asprintf "%a" Pp.pp_affine (List.hd l.Ast.lower.Ast.terms).Ast.num);
      Alcotest.(check string) "upper is N" "N"
        (Format.asprintf "%a" Pp.pp_affine (List.hd l.Ast.upper.Ast.terms).Ast.num)
  | _ -> Alcotest.fail "shape");
  check_semantics prog s

(* incomparable bound terms survive *)
let test_bound_incomparable () =
  let upper : Ast.bound =
    {
      Ast.combine = `Min;
      terms = [ Ast.bterm (Linexpr.var "N"); Ast.bterm (Linexpr.var "M") ];
    }
  in
  let prog =
    {
      Ast.params = [ "N"; "M" ];
      nest =
        [
          Ast.Loop
            {
              Ast.var = "I";
              lower = { Ast.combine = `Max; terms = [ Ast.bterm_int 1 ] };
              upper;
              step = Mpz.one;
              body =
                [ Ast.Stmt { Ast.label = "S"; lhs = { Ast.array = "A"; index = [ Linexpr.var "I" ] }; rhs = Ast.Econst 1. } ];
            };
        ];
    }
  in
  match (Simplify.simplify prog).Ast.nest with
  | [ Ast.Loop l ] -> Alcotest.(check int) "both terms kept" 2 (List.length l.Ast.upper.Ast.terms)
  | _ -> Alcotest.fail "shape"

(* stride recovery: scaling a loop yields a strided loop, not a guard *)
let test_stride_recovery () =
  let ctx = Inl.analyze_source "params N\ndo I = 1..N\n S1: A(I) = 2 * I\nenddo" in
  let m = Inl.Tmat.scaling ctx.Inl.layout "I" 3 in
  let prog = Inl.transform_exn ctx m in
  (match prog.Ast.nest with
  | [ Ast.Loop l ] ->
      Alcotest.(check int) "step 3" 3 (Mpz.to_int l.Ast.step);
      Alcotest.(check int) "no residual guard" 0 (count_nodes is_if prog)
  | _ -> Alcotest.fail "shape");
  List.iter
    (fun n ->
      match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
      | Ok () -> ()
      | Error d -> Alcotest.failf "N=%d: %s" n d)
    [ 1; 4; 9 ]

let () =
  Alcotest.run "simplify"
    [
      ( "simplify",
        [
          Alcotest.test_case "redundant guard dropped" `Quick test_redundant_guard;
          Alcotest.test_case "live guard kept" `Quick test_live_guard_kept;
          Alcotest.test_case "let inlining" `Quick test_let_inlining;
          Alcotest.test_case "divisibility pruning" `Quick test_divisibility_pruning;
          Alcotest.test_case "bound dominance" `Quick test_bound_dominance;
          Alcotest.test_case "incomparable bounds kept" `Quick test_bound_incomparable;
          Alcotest.test_case "stride recovery" `Quick test_stride_recovery;
        ] );
    ]
