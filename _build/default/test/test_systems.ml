(* Tests for the supporting systems: interpreter, cache simulator, native
   kernels, and the baseline comparators (E13/E14 machinery). *)

module Ast = Inl_ir.Ast
module Parser = Inl_ir.Parser
module Layout = Inl_instance.Layout
module Analysis = Inl_depend.Analysis
module Interp = Inl_interp.Interp
module Cachesim = Inl_cachesim.Cachesim
module Cholesky = Inl_kernels.Cholesky
module Lu = Inl_kernels.Lu
module Px = Inl_kernels.Paper_examples
module Baseline = Inl_baseline.Baseline

(* ---- interpreter ---- *)

let test_interp_basic () =
  let prog = Parser.parse_exn "params N\ndo I = 1..N\n S1: A(I) = 2 * I + 1\nenddo" in
  let store = Interp.run prog ~params:[ ("N", 4) ] in
  for i = 1 to 4 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "A(%d)" i)
      (float_of_int ((2 * i) + 1))
      (Hashtbl.find store ("A", [ i ]))
  done

let test_interp_recurrence () =
  (* B(I) = B(I-1) + 1 accumulates; B(0) is an input cell *)
  let prog = Parser.parse_exn "params N\ndo I = 1..N\n S1: B(I) = B(I-1) + 1\nenddo" in
  let init name idx = if name = "B" && idx = [ 0 ] then 10.0 else 0.0 in
  let store = Interp.run ~init prog ~params:[ ("N", 5) ] in
  Alcotest.(check (float 1e-12)) "B(5)" 15.0 (Hashtbl.find store ("B", [ 5 ]))

let test_interp_guards_lets () =
  let prog =
    Parser.parse_exn "params N\ndo I = 1..N\n S1: A(I) = I\nenddo"
  in
  (* hand-build: if (I mod 2 = 0) then via Let quotient *)
  ignore prog;
  let src = Interp.run (Parser.parse_exn "params N\ndo I = 1..N\n A(2*I) = I\nenddo") ~params:[ ("N", 3) ] in
  Alcotest.(check (float 1e-12)) "A(4)" 2.0 (Hashtbl.find src ("A", [ 4 ]))

let test_interp_calls_deterministic () =
  let p = Parser.parse_exn "params N\ndo I = 1..N\n A(I) = f(I) + g()\nenddo" in
  let s1 = Interp.run p ~params:[ ("N", 3) ] and s2 = Interp.run p ~params:[ ("N", 3) ] in
  Alcotest.(check bool) "deterministic" true (Interp.stores_equal s1 s2)

let test_interp_equivalence_detects () =
  let p1 = Parser.parse_exn "params N\ndo I = 1..N\n A(I) = I\nenddo" in
  let p2 = Parser.parse_exn "params N\ndo I = 1..N\n A(I) = I + 1\nenddo" in
  Alcotest.(check bool) "different programs differ" true
    (Interp.equivalent p1 p2 ~params:[ ("N", 2) ] |> Result.is_error)

(* interpreting the simplified-Cholesky IR matches the native kernel *)
let test_interp_matches_native () =
  let n = 6 in
  let a0 = Cholesky.random_spd n in
  let prog = Parser.parse_exn Px.cholesky in
  let init name idx =
    match (name, idx) with
    | "A", [ i; j ] -> a0.(i - 1).(j - 1)
    | _ -> 0.0
  in
  let store = Interp.run ~init prog ~params:[ ("N", n) ] in
  let native = Cholesky.copy_matrix a0 in
  Cholesky.kji native;
  for i = 1 to n do
    for j = 1 to i do
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "L(%d,%d)" i j)
        native.(i - 1).(j - 1)
        (Hashtbl.find store ("A", [ i; j ]))
    done
  done

(* all six Cholesky IR variants are exactly equivalent programs *)
let test_ir_variants_equivalent () =
  let base = Parser.parse_exn Px.cholesky_kji in
  List.iter
    (fun (name, src) ->
      let p = Parser.parse_exn src in
      match Interp.equivalent base p ~params:[ ("N", 7) ] with
      | Ok () -> ()
      | Error d -> Alcotest.failf "%s differs: %s" name d)
    Px.cholesky_ir_variants

(* ---- native kernels ---- *)

let test_cholesky_variants_agree () =
  let a0 = Cholesky.random_spd 24 in
  let reference = Cholesky.copy_matrix a0 in
  Cholesky.kji reference;
  Alcotest.(check bool) "residual small" true (Cholesky.residual a0 reference < 1e-8);
  List.iter
    (fun (v : Cholesky.variant) ->
      let m = Cholesky.copy_matrix a0 in
      v.run m;
      Alcotest.(check (float 0.0)) (v.name ^ " identical to kji") 0.0
        (Cholesky.max_abs_diff reference m))
    Cholesky.variants

let test_lu_variants_agree () =
  let a0 = Lu.diagonally_dominant 16 in
  let x = Array.map Array.copy a0 and y = Array.map Array.copy a0 in
  Lu.kij x;
  Lu.jki y;
  Alcotest.(check (float 0.0)) "kij = jki exactly" 0.0 (Lu.max_abs_diff x y)

(* ---- cache simulator ---- *)

let test_cache_basics () =
  let c = Cachesim.create (Cachesim.direct_mapped ~capacity_bytes:128 ~line_bytes:32) in
  Alcotest.(check bool) "cold miss" false (Cachesim.access c 0);
  Alcotest.(check bool) "same line hits" true (Cachesim.access c 24);
  Alcotest.(check bool) "next line misses" false (Cachesim.access c 32);
  (* 4 sets; address 0 and 128 conflict in a direct-mapped cache *)
  Alcotest.(check bool) "conflict evicts" false (Cachesim.access c 128);
  Alcotest.(check bool) "original evicted" false (Cachesim.access c 0);
  let s = Cachesim.stats c in
  Alcotest.(check int) "accesses" 5 s.Cachesim.accesses;
  Alcotest.(check int) "hits" 1 s.Cachesim.hits

let test_cache_associativity () =
  (* two-way: 0 and 128 can coexist in the same set *)
  let c = Cachesim.create (Cachesim.set_associative ~capacity_bytes:256 ~line_bytes:32 ~assoc:2) in
  ignore (Cachesim.access c 0);
  ignore (Cachesim.access c 128);
  Alcotest.(check bool) "0 still resident" true (Cachesim.access c 0);
  Alcotest.(check bool) "128 still resident" true (Cachesim.access c 128)

let test_cache_lru () =
  let c = Cachesim.create (Cachesim.set_associative ~capacity_bytes:64 ~line_bytes:32 ~assoc:2) in
  (* one set, two ways; touch a, b, a, then c evicts b (LRU) *)
  ignore (Cachesim.access c 0);
  ignore (Cachesim.access c 32);
  ignore (Cachesim.access c 0);
  ignore (Cachesim.access c 64);
  Alcotest.(check bool) "a resident" true (Cachesim.access c 0);
  Alcotest.(check bool) "b evicted" false (Cachesim.access c 32)

let test_address_map () =
  let m = Cachesim.Address_map.create [ ("A", [ 3; 3 ]); ("B", [ 7 ]) ] in
  Alcotest.(check int) "A(0,0)" 0 (Cachesim.Address_map.address m "A" [ 0; 0 ]);
  Alcotest.(check int) "A(1,0)" 32 (Cachesim.Address_map.address m "A" [ 1; 0 ]);
  Alcotest.(check int) "B base after A" (16 * 8) (Cachesim.Address_map.address m "B" [ 0 ]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Address_map: A subscript 4 out of [0,3]") (fun () ->
      ignore (Cachesim.Address_map.address m "A" [ 4; 0 ]))

let test_simulate_locality () =
  (* row-major traversal has far fewer misses than column-major *)
  let row = Parser.parse_exn "params N\ndo I = 0..N\n do J = 0..N\n  A(I,J) = 1\n enddo\nenddo" in
  let col = Parser.parse_exn "params N\ndo J = 0..N\n do I = 0..N\n  A(I,J) = 1\n enddo\nenddo" in
  let n = 63 in
  let cfg = Cachesim.direct_mapped ~capacity_bytes:1024 ~line_bytes:64 in
  let arrays = [ ("A", [ n; n ]) ] in
  let sr = Cachesim.simulate_program cfg arrays row ~params:[ ("N", n) ] in
  let sc = Cachesim.simulate_program cfg arrays col ~params:[ ("N", n) ] in
  Alcotest.(check bool) "row-major misses less" true
    (sr.Cachesim.misses * 4 < sc.Cachesim.misses)

(* ---- baselines ---- *)

let test_perfect_only_rejects_imperfect () =
  let prog = Parser.parse_exn Px.simplified_cholesky in
  let t = Inl_linalg.Mat.identity 4 in
  Alcotest.(check bool) "rejected" true (Baseline.perfect_only prog t = Baseline.Not_perfect)

let test_perfect_only_on_perfect () =
  let prog = Parser.parse_exn Px.cholesky_update_kernel in
  let ident = Inl_linalg.Mat.identity 3 in
  Alcotest.(check bool) "identity legal" true (Baseline.perfect_only prog ident = Baseline.Perfect_legal);
  let layout = Layout.of_program prog in
  let rev_k = Inl.Tmat.reversal layout "K" in
  (match Baseline.perfect_only prog rev_k with
  | Baseline.Perfect_illegal _ -> ()
  | _ -> Alcotest.fail "reversing K must be illegal")

(* E14: distribution is illegal on simplified Cholesky but legal on an
   independent pair. *)
let test_distribution () =
  let ctx = Inl.analyze_source Px.simplified_cholesky in
  (match Baseline.Distribution.legal ctx.Inl.layout ctx.Inl.deps ~at:1 with
  | Ok () -> Alcotest.fail "distribution must be illegal on Cholesky"
  | Error _ -> ());
  let indep =
    Inl.analyze_source "params N\ndo I = 1..N\n S1: B(I) = 2 * B(I)\n do J = 1..N\n  S2: A(I,J) = A(I,J) + 1\n enddo\nenddo"
  in
  (match Baseline.Distribution.legal indep.Inl.layout indep.Inl.deps ~at:1 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "distribution should be legal: %s" msg);
  (* and the distributed program is equivalent *)
  let dist = Baseline.Distribution.apply indep.Inl.layout ~at:1 in
  match Interp.equivalent indep.Inl.program dist ~params:[ ("N", 5) ] with
  | Ok () -> ()
  | Error d -> Alcotest.failf "distributed program differs: %s" d

(* E14: sinking loses the I = N iteration of S1 in simplified Cholesky
   (the inner loop J = I+1..N is empty there), while the direct framework
   transforms the program correctly. *)
let test_sinking_defect () =
  let ctx = Inl.analyze_source Px.simplified_cholesky in
  match Baseline.Sinking.sink_into_following_loop ctx.Inl.program with
  | Error msg -> Alcotest.failf "sinking construction failed: %s" msg
  | Ok sunk -> (
      match Interp.equivalent ctx.Inl.program sunk ~params:[ ("N", 4) ] with
      | Ok () -> Alcotest.fail "sinking should lose the sqrt at I = N"
      | Error _ -> ())

let () =
  Alcotest.run "systems"
    [
      ( "interp",
        [
          Alcotest.test_case "basic" `Quick test_interp_basic;
          Alcotest.test_case "recurrence" `Quick test_interp_recurrence;
          Alcotest.test_case "strided writes" `Quick test_interp_guards_lets;
          Alcotest.test_case "uninterpreted calls deterministic" `Quick test_interp_calls_deterministic;
          Alcotest.test_case "equivalence detects differences" `Quick test_interp_equivalence_detects;
          Alcotest.test_case "IR Cholesky matches native" `Quick test_interp_matches_native;
          Alcotest.test_case "six IR variants equivalent" `Quick test_ir_variants_equivalent;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "six Cholesky variants agree exactly" `Quick test_cholesky_variants_agree;
          Alcotest.test_case "LU variants agree exactly" `Quick test_lu_variants_agree;
        ] );
      ( "cachesim",
        [
          Alcotest.test_case "hits, misses, conflicts" `Quick test_cache_basics;
          Alcotest.test_case "associativity" `Quick test_cache_associativity;
          Alcotest.test_case "LRU replacement" `Quick test_cache_lru;
          Alcotest.test_case "address map" `Quick test_address_map;
          Alcotest.test_case "row- vs column-major locality" `Quick test_simulate_locality;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "perfect-only framework rejects imperfect nests" `Quick
            test_perfect_only_rejects_imperfect;
          Alcotest.test_case "perfect-only framework on the update kernel" `Quick
            test_perfect_only_on_perfect;
          Alcotest.test_case "distribution legality (E14)" `Quick test_distribution;
          Alcotest.test_case "sinking loses iterations (E14)" `Quick test_sinking_defect;
        ] );
    ]
