(* The end-to-end property: for random imperfectly nested programs and
   random transformation pipelines, every matrix the legality test
   accepts generates code that is exactly equivalent to the source under
   interpretation (at several sizes), both before and after
   simplification.  This exercises the whole stack — layout, dependence
   analysis, block structure, per-statement transformations,
   augmentation, bound generation, guards, let-reconstruction, cleanup —
   against the execution oracle.

   The test also records that the pipeline accepts a healthy fraction of
   candidates (an all-rejecting legality test would pass vacuously). *)

module Mat = Inl_linalg.Mat
module Ast = Inl_ir.Ast
module Layout = Inl_instance.Layout
module Interp = Inl_interp.Interp

(* ---- program generator ---- *)

(* Small structured generator: an outer loop with up to two statements and
   an inner loop, with varied bounds and access patterns; every program is
   valid and every statement's subscripts stay in a small box. *)
let gen_program : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* pre = int_range 0 2 in
  let* post = int_range 0 1 in
  let* inner_lo = oneofl [ "1"; "I"; "I+1" ] in
  let* inner_hi = oneofl [ "N"; "I"; "I+2" ] in
  let* body = int_range 0 3 in
  let* acc = int_range 0 2 in
  let pre_s =
    match pre with
    | 0 -> ""
    | 1 -> " P1: C(I) = C(I) + 1\n"
    | _ -> " P1: C(I) = C(I-1) + 1\n"
  in
  let post_s = if post = 1 then " Q1: D(I) = C(I) * 2\n" else "" in
  let body_s =
    match body with
    | 0 -> "  S: A(I,J) = 1\n"
    | 1 -> "  S: A(I,J) = A(I,J) + C(I)\n"
    | 2 -> "  S: A(J,I) = A(J,I) + 1\n"
    | _ -> "  S: B(J) = B(J) + C(I)\n"
  in
  let extra =
    match acc with 0 -> "" | 1 -> "  S2: E(I,J) = A(I,J) + 1\n" | _ -> "  S2: E(J,I) = 3\n"
  in
  let* three_level = int_range 0 3 in
  if three_level = 0 then
    (* a 3-deep imperfect nest with statements at all three levels *)
    return
      ("params N\ndo I = 1..N\n" ^ pre_s ^ " do J = " ^ inner_lo ^ ".." ^ inner_hi
     ^ "\n  S5: F(I,J) = 1\n  do K = J..N\n   S6: G(I,K) = G(I,K) + F(I,J)\n  enddo\n enddo\n"
     ^ post_s ^ "enddo\n")
  else
    return
      ("params N\ndo I = 1..N\n" ^ pre_s ^ " do J = " ^ inner_lo ^ ".." ^ inner_hi ^ "\n" ^ body_s
     ^ extra ^ " enddo\n" ^ post_s ^ "enddo\n")

(* ---- pipeline generator ---- *)

type op = Interchange | ReverseInner | ReverseOuter | SkewIn | SkewOut | Scale | Reorder of int

let gen_ops : op list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let op =
    oneofl
      [ Interchange; ReverseInner; ReverseOuter; SkewIn; SkewOut; Scale; Reorder 0; Reorder 1 ]
  in
  list_size (int_range 1 3) op

(* Apply ops left to right, rebuilding the layout after each step. *)
let matrix_of_ops (ctx : Inl.context) (ops : op list) : Mat.t option =
  let outer, inner =
    match Ast.loop_vars ctx.Inl.program with
    | [ a; b ] -> if a = "I" then (a, b) else (b, a)
    | vars when List.mem "K" vars -> ("J", "K") (* transform the inner pair *)
    | _ -> ("I", "J")
  in
  try
    let total, _ =
      List.fold_left
        (fun (acc, layout) op ->
          let m =
            match op with
            | Interchange -> Inl.Tmat.interchange layout outer inner
            | ReverseInner -> Inl.Tmat.reversal layout inner
            | ReverseOuter -> Inl.Tmat.reversal layout outer
            | SkewIn -> Inl.Tmat.skew layout ~target:inner ~source:outer ~factor:1
            | SkewOut -> Inl.Tmat.skew layout ~target:outer ~source:inner ~factor:(-1)
            | Scale -> Inl.Tmat.scaling layout inner 2
            | Reorder k ->
                let sites =
                  (* multi-child nodes of the current program *)
                  let prog = layout.Layout.program in
                  let acc = ref [] in
                  let rec go prefix nodes =
                    if List.length nodes >= 2 then acc := (prefix, List.length nodes) :: !acc;
                    List.iteri
                      (fun i n ->
                        match n with
                        | Ast.Loop l -> go (prefix @ [ i ]) l.Ast.body
                        | Ast.If (_, b) | Ast.Let (_, _, b) -> go (prefix @ [ i ]) b
                        | Ast.Stmt _ -> ())
                      nodes
                  in
                  go [] prog.Ast.nest;
                  List.rev !acc
                in
                if sites = [] then Mat.identity (Layout.size layout)
                else begin
                  let path, m = List.nth sites (k mod List.length sites) in
                  (* rotate the children by one *)
                  let perm = List.init m (fun i -> (i + 1) mod m) in
                  Inl.Tmat.reorder layout ~parent:path ~perm
                end
          in
          let acc' = Mat.mul m acc in
          match Inl.Blockstruct.infer layout m with
          | Ok st -> (acc', st.Inl.Blockstruct.new_layout)
          | Error _ -> raise Exit)
        (Mat.identity (Layout.size ctx.Inl.layout), ctx.Inl.layout)
        ops
    in
    Some total
  with Exit | Not_found | Failure _ -> None

let accepted = ref 0
let rejected = ref 0

let prop (src, ops) =
  let ctx = Inl.analyze_source src in
  match matrix_of_ops ctx ops with
  | None -> true
  | Some m -> (
      match Inl.check ctx m with
      | Inl.Legality.Illegal _ ->
          incr rejected;
          true
      | Inl.Legality.Legal _ ->
          incr accepted;
          let check prog =
            List.for_all
              (fun n ->
                match Interp.equivalent ctx.Inl.program prog ~params:[ ("N", n) ] with
                | Ok () -> true
                | Error _ -> false)
              [ 1; 2; 3; 5 ]
          in
          check (Inl.transform_exn ctx ~simplify:false m) && check (Inl.transform_exn ctx m))

let equivalence_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"legal pipelines generate equivalent code" ~count:600
       QCheck2.Gen.(pair gen_program gen_ops)
       prop)

let test_acceptance_rate () =
  (* run after the property: the legality test must accept a meaningful
     fraction, otherwise the property is vacuous *)
  Alcotest.(check bool)
    (Printf.sprintf "accepted %d, rejected %d" !accepted !rejected)
    true
    (!accepted >= 80)

let () =
  Alcotest.run "codegen-prop"
    [
      ( "property",
        [ equivalence_prop; Alcotest.test_case "acceptance rate" `Quick test_acceptance_rate ] );
    ]
